(* Sensor network: the distributed side of the paper (section 3).

   A field of battery-powered sensors measured into a decay space runs
   three fully distributed protocols on the simulated SINR channel:

   - local broadcast (every node's message to its decay-ball neighbours),
   - the no-regret transmit/sleep capacity game,
   - tree aggregation to a sink.

   We run the same protocols on an open field and inside a cluttered hall
   and watch the round counts move with the fading parameter gamma.

   Run with:  dune exec examples/sensor_network.exe *)

module D = Core.Decay.Decay_space
module T = Core.Prelude.Table

let percentile_decay space p =
  let n = D.n space in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then acc := D.decay space i j :: !acc
    done
  done;
  Core.Prelude.Stats.percentile (Array.of_list !acc) p

let run_site name space table =
  let radius = percentile_decay space 25. in
  let gamma =
    Core.Decay.Fading.gamma
      ~ctx:(Core.Decay.Ctx.make ~exact_limit:14 ())
      space ~r:radius
  in
  let lb =
    Core.Distrib.Local_broadcast.run ~max_rounds:6000
      (Core.Prelude.Rng.create 21) space ~radius
  in
  let zeta = Core.Decay.Metricity.zeta space in
  let inst =
    Core.Sinr.Instance.random_links_in_space ~zeta (Core.Prelude.Rng.create 22)
      ~n_links:8 ~max_decay:(D.max_decay space) space
  in
  let game = Core.Distrib.Regret.run ~rounds:600 (Core.Prelude.Rng.create 23) inst in
  let agg =
    Core.Distrib.Aggregation.run ~power:(2. *. D.max_decay space) ~beta:1.5
      ~noise:1. space ~sink:0
  in
  T.add_row table
    [ T.S name; T.F4 gamma; T.I lb.Core.Distrib.Local_broadcast.rounds;
      T.S (string_of_bool lb.Core.Distrib.Local_broadcast.completed);
      T.F2 game.Core.Distrib.Regret.avg_successes;
      T.I agg.Core.Distrib.Aggregation.reached;
      T.I agg.Core.Distrib.Aggregation.slots ]

let () =
  let rng = Core.Prelude.Rng.create 7 in
  let points = Core.Decay.Spaces.random_points rng ~n:24 ~side:35. in
  let nodes = Core.Radio.Node.of_points points in
  let table =
    T.create ~title:"sensor field: distributed protocols across environments"
      [ "site"; "gamma(r)"; "LB rounds"; "LB done"; "game thpt";
        "agg reach"; "agg slots" ]
  in
  (* Open field: plain log-distance decay. *)
  let open_field =
    Core.Radio.Measure.decay_space ~seed:31
      ~config:{ Core.Radio.Propagation.default with
                Core.Radio.Propagation.walls = false; shadowing_sigma_db = 2. }
      (Core.Radio.Environment.empty ~side:36.)
      nodes
  in
  run_site "open field" open_field table;
  (* Cluttered hall: same sensors, heavy walls and shadowing. *)
  let hall =
    Core.Radio.Measure.decay_space ~seed:31
      ~config:{ Core.Radio.Propagation.default with
                Core.Radio.Propagation.shadowing_sigma_db = 7. }
      (Core.Radio.Environment.random_clutter (Core.Prelude.Rng.create 32)
         ~side:36. ~n_walls:30
         [ Core.Radio.Material.concrete; Core.Radio.Material.brick ])
      nodes
  in
  run_site "cluttered hall" hall table;
  (* The adversarial star of section 3.4, as a stress test. *)
  run_site "star k=20 (sec 3.4)" (Core.Decay.Spaces.star ~k:20 ~r:4.) table;
  T.print table;
  print_endline
    "Reading: the protocols never look at coordinates — only at decays —";
  print_endline
    "so they run unchanged everywhere; their round counts track the fading";
  print_endline "parameter, exactly the currency section 3 prices them in."
