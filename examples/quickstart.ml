(* Quickstart: the five-minute tour of the decay-space API.

   1. Build a small indoor environment and measure its decay space.
   2. Ask how metric-like it is (the paper's zeta / phi / dimensions).
   3. Drop some links into it and maximize capacity with Algorithm 1.
   4. Schedule everything into feasible slots.

   Run with:  dune exec examples/quickstart.exe *)

module D = Core.Decay.Decay_space

let () =
  (* A 2x2 office with drywall partitions, eight radios scattered in it. *)
  let env =
    Core.Radio.Environment.office ~rooms_x:2 ~rooms_y:2 ~room_size:8.
      Core.Radio.Material.drywall
  in
  let rng = Core.Prelude.Rng.create 2024 in
  let points = Core.Decay.Spaces.random_points rng ~n:12 ~side:15. in
  let nodes = Core.Radio.Node.of_points points in
  let space = Core.Radio.Measure.decay_space ~seed:1 env nodes in
  Format.printf "Measured decay space: %a@." D.pp space;

  (* Step 2: how far from geometry is this environment? *)
  let report =
    Core.Analysis.run
      ~config:{ Core.Analysis.default with Core.Analysis.gamma_at = [ 1e5 ] }
      space
  in
  Core.Prelude.Table.print (Core.Analysis.to_table report);

  (* Step 3: a workload of six links, capacity via the paper's Algorithm 1.
     The instance carries the metricity so quasi-distance separation tests
     make sense. *)
  let inst =
    Core.Sinr.Instance.random_links_in_space ~zeta:report.Core.Analysis.zeta
      (Core.Prelude.Rng.create 7) ~n_links:6 ~max_decay:(D.max_decay space)
      space
  in
  let selected = Core.Solve.capacity ~algo:Core.Solve.Alg1 inst in
  Printf.printf "Algorithm 1 admits %d of %d links simultaneously:\n"
    (List.length selected) 6;
  List.iter
    (fun l ->
      Printf.printf "  link %d: node %d -> node %d  (decay %.3g)\n"
        l.Core.Sinr.Link.id l.Core.Sinr.Link.sender l.Core.Sinr.Link.receiver
        (Core.Sinr.Link.self_decay space l))
    selected;
  Printf.printf "SINR-feasible: %b\n\n"
    (Core.Sinr.Feasibility.is_feasible inst (Core.Sinr.Power.uniform 1.) selected);

  (* Step 4: schedule the whole workload. *)
  let schedule = Core.Solve.schedule inst in
  Printf.printf "First-fit schedule uses %d slot(s):\n"
    (Core.Sched.Scheduler.length schedule);
  List.iteri
    (fun i slot ->
      Printf.printf "  slot %d: links %s\n" i
        (String.concat ", "
           (List.map (fun l -> string_of_int l.Core.Sinr.Link.id) slot)))
    schedule;
  Printf.printf "schedule valid: %b\n"
    (Core.Sched.Scheduler.verify inst schedule)
