(* Measurement campaign: from raw RSSI samples to a working decay space.

   The paper's practicality pitch (section 2.2) is that decay spaces "are
   relatively easily obtained by measurements".  This example walks the
   full pipeline a deployment would run:

     1. sample RSSI K times per link under Rayleigh fading,
     2. average in the power domain into a decay estimate,
     3. sanity-check the estimate (statistics, effective path-loss fit),
     4. compute the space's parameters,
     5. dump the matrix as CSV for the `bg` CLI.

   Run with:  dune exec examples/measurement_campaign.exe *)

module D = Core.Decay.Decay_space
module T = Core.Prelude.Table

let () =
  (* The (unknown, to the campaign) ground truth: an office floor. *)
  let env =
    Core.Radio.Environment.office ~rooms_x:3 ~rooms_y:2 ~room_size:7.
      Core.Radio.Material.brick
  in
  let pts =
    Core.Decay.Spaces.random_points (Core.Prelude.Rng.create 81) ~n:14 ~side:20.
  in
  let nodes = Core.Radio.Node.of_points pts in
  let cfg =
    { Core.Radio.Propagation.default with
      Core.Radio.Propagation.fading = Core.Radio.Propagation.Rayleigh }
  in
  let truth =
    Core.Radio.Measure.decay_space ~seed:5
      ~config:{ cfg with Core.Radio.Propagation.fading = Core.Radio.Propagation.No_fading }
      env nodes
  in

  (* Step 1+2: the campaign, at three sampling budgets. *)
  let t = T.create ~title:"estimator error vs sampling budget"
      [ "K samples/link"; "median err (dB)"; "p95 err (dB)" ]
  in
  List.iter
    (fun k ->
      let est =
        Core.Radio.Sampling.estimate_decay_space ~seed:5 ~config:cfg ~samples:k
          env nodes
      in
      let med, p95 = Core.Radio.Sampling.error_db ~truth ~estimate:est in
      T.add_row t [ T.I k; T.F2 med; T.F2 p95 ])
    [ 4; 32; 256 ];
  T.print t;

  (* Step 3: what did we measure? *)
  let measured =
    Core.Radio.Sampling.estimate_decay_space ~seed:5 ~config:cfg ~samples:256
      env nodes
  in
  let s = Core.Decay.Statistics.summarize measured in
  Printf.printf
    "measured space: %d nodes, decays %.1f..%.1f dB (range %.1f dB)\n"
    s.Core.Decay.Statistics.n s.Core.Decay.Statistics.min_db
    s.Core.Decay.Statistics.max_db s.Core.Decay.Statistics.dynamic_range_db;
  let fit =
    Core.Decay.Statistics.effective_alpha ~positions:(Array.of_list pts) measured
  in
  Printf.printf
    "geometric fit: decay ~ d^%.2f with r^2 = %.2f — geometry explains %.0f%% of the variance\n\n"
    fit.Core.Prelude.Stats.slope fit.Core.Prelude.Stats.r2
    (100. *. fit.Core.Prelude.Stats.r2);

  (* Step 4: the parameters every algorithm needs. *)
  let report = Core.Analysis.run measured in
  Core.Prelude.Table.print (Core.Analysis.to_table report);

  (* Step 5: hand off to the CLI. *)
  let path = Filename.temp_file "campaign" ".csv" in
  Core.Decay.Decay_io.save measured path;
  Printf.printf "matrix written to %s — try:  bg analyze %s\n" path path
