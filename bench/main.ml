(* The reproduction harness: runs every claim experiment (E1-E14, DESIGN.md
   section 5) and then the micro-benchmarks.

   Usage:
     bench/main.exe                     run everything
     bench/main.exe E7 E8               run selected experiments only
     bench/main.exe --no-micro          skip the bechamel micro-benchmarks
     bench/main.exe --no-kernels        skip the flat-kernel benchmark
     bench/main.exe --kernels-only      run only the flat-kernel benchmark
     bench/main.exe --kernels-max-n N   cap the kernel benchmark size
     bench/main.exe --trace FILE        write a JSONL observability trace
     bench/main.exe --metrics           print the metrics registry at exit *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let no_micro = List.mem "--no-micro" args in
  let no_kernels = List.mem "--no-kernels" args in
  let kernels_only = List.mem "--kernels-only" args in
  let metrics = List.mem "--metrics" args in
  let find_val flag default parse =
    let rec find = function
      | f :: v :: _ when f = flag -> parse v
      | _ :: rest -> find rest
      | [] -> default
    in
    find args
  in
  let kernels_max_n = find_val "--kernels-max-n" 512 int_of_string in
  (match find_val "--trace" None (fun v -> Some v) with
  | Some path -> Core.Prelude.Obs.set_trace_file path
  | None -> ());
  let finish code =
    Core.Prelude.Obs.flush_metrics ();
    if metrics then Core.Prelude.Obs.print_summary ();
    exit code
  in
  if kernels_only then begin
    Benchkit.Kernels.run ~max_n:kernels_max_n ();
    finish 0
  end;
  let selected =
    let rec drop_flags = function
      | ("--kernels-max-n" | "--trace") :: _ :: rest -> drop_flags rest
      | a :: rest when String.length a >= 2 && String.sub a 0 2 = "--" ->
          drop_flags rest
      | a :: rest -> a :: drop_flags rest
      | [] -> []
    in
    drop_flags args
  in
  print_endline "Beyond Geometry (PODC 2014) — claim-reproduction harness";
  print_endline
    "Each experiment reproduces a numbered claim of the paper; see DESIGN.md section 5 and EXPERIMENTS.md.";
  print_newline ();
  let verdicts =
    match selected with
    | [] -> Bg_experiments.Registry.run_all ()
    | ids ->
        List.map
          (fun id ->
            match Bg_experiments.Registry.find id with
            | Some e ->
                Printf.printf "--- %s: %s ---\n%!" e.Bg_experiments.Registry.id
                  e.Bg_experiments.Registry.claim;
                (e.Bg_experiments.Registry.id, e.Bg_experiments.Registry.run ())
            | None -> failwith ("unknown experiment id: " ^ id))
          ids
  in
  print_endline "=== experiment verdicts ===";
  Bg_experiments.Registry.print_verdicts verdicts;
  print_newline ();
  if not no_micro then begin
    Micro.run ();
    Micro.run_parallel ()
  end;
  if not no_kernels then Benchkit.Kernels.run ~max_n:kernels_max_n ();
  finish (if Bg_experiments.Registry.all_pass verdicts then 0 else 1)
