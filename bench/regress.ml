(* The perf-history and regression gate behind `bg bench --record` /
   `--check` / `--write-baseline`.

   A fixed suite of small, stable kernels is timed with mean/stddev over
   several repetitions (unlike the kernel bench's best-of, which tracks
   the floor: the gate needs the noise estimate too).  Samples are
   appended to BENCH_history.jsonl with the git sha, and compared
   against a committed baselines file with noise-aware thresholds built
   from the baseline mean and stddev:

     soft regression   best-of-reps > base mean + max(3 sigma, 15% of base)
     hard regression   best-of-reps > base mean + max(3 sigma, 50% of base)

   A sub-threshold delta is noise, not a finding.  The thresholds are
   per-benchmark; the overall verdict is the worst row.  Baselines are
   machine-specific — re-record with --write-baseline when the reference
   hardware changes; CI additionally self-calibrates (records a fresh
   baseline on the runner before checking) so the gate measures the
   code, not the machine. *)

module D = Core.Decay.Decay_space
module Met = Core.Decay.Metricity
module Fad = Core.Decay.Fading
module Incr = Core.Decay.Incremental
module Obs = Core.Prelude.Obs
module T = Core.Prelude.Table
module J = Obs_tools.Jsonl

type sample = {
  name : string;
  reps : int;
  mean_s : float;
  stddev_s : float;
  best_s : float;
}

let measure ~name ~reps f =
  ignore (f ()); (* warm caches and allocators outside the timed reps *)
  let times =
    Array.init (max 1 reps) (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        Unix.gettimeofday () -. t0)
  in
  let n = Array.length times in
  let mean = Array.fold_left ( +. ) 0. times /. float_of_int n in
  let var =
    if n < 2 then 0.
    else
      Array.fold_left (fun acc t -> acc +. ((t -. mean) ** 2.)) 0. times
      /. float_of_int (n - 1)
  in
  {
    name;
    reps = n;
    mean_s = mean;
    stddev_s = sqrt var;
    best_s = Array.fold_left Float.min infinity times;
  }

(* ---------------------------------------------------------------- suite *)

let geo_space n =
  D.of_points ~alpha:3.
    (Core.Decay.Spaces.random_points (Core.Prelude.Rng.create 2024) ~n
       ~side:30.)

(* A synthetic ~160-line trace for the parser benchmark: representative
   span lines without needing a file on disk. *)
let synthetic_trace =
  lazy
    (String.concat "\n"
       (List.init 160 (fun i ->
            Printf.sprintf
              "{\"type\":\"span\",\"id\":%d,\"parent\":%d,\"domain\":0,\
               \"name\":\"zeta_sweep\",\"start_s\":%.6f,\"dur_s\":%.6f,\
               \"ok\":true,\"attrs\":{\"n\":%d,\"jobs\":1}}"
              (i + 1)
              (if i = 0 then 0 else 1 + (i / 2))
              (1e9 +. (0.001 *. float_of_int i))
              0.0005 (64 + i))))

let seq_uncached = Core.Decay.Ctx.make ~jobs:1 ~cache:false ()
let seq_cached = Core.Decay.Ctx.make ~jobs:1 ()

(* k evenly spread dirty rows, and a next-space that rewrites exactly the
   cells touching them (pure hash of the pair, so rebuilding is
   deterministic) while keeping every clean cell bit-identical — the
   caller contract of Incremental.step. *)
let dirty_rows ~n ~k = Array.init k (fun i -> i * (max 1 (n / k)))

let perturbed_space ?(salt = 7) base ~dirty =
  let n = D.n base in
  let in_dirty = Array.make n false in
  Array.iter (fun i -> in_dirty.(i) <- true) dirty;
  D.of_fn ~name:"bench-perturbed" n (fun i j ->
      if i = j then 0.
      else if in_dirty.(i) || in_dirty.(j) then
        let h =
          ((i * 73856093) lxor (j * 19349663) lxor (salt * 83492791))
          land 0xFFFF
        in
        1. +. (float_of_int h /. 64.)
      else D.decay base i j)

let run_suite ?(reps = 5) ?(large = false) () =
  let s96 = geo_space 96 and s64 = geo_space 64 in
  let zeta_seq =
    measure ~name:"zeta_seq_n96" ~reps (fun () ->
        Met.zeta_witness ~ctx:seq_uncached s96)
  in
  let phi_seq =
    measure ~name:"phi_seq_n64" ~reps (fun () ->
        Met.phi ~ctx:seq_uncached s64)
  in
  let gamma =
    measure ~name:"gamma_n64_r4" ~reps (fun () ->
        Fad.gamma ~ctx:seq_uncached s64 ~r:4.)
  in
  let cached =
    (* A single digest-keyed hit is sub-microsecond — below clock
       granularity — so each rep times a 1k-lookup loop. *)
    Met.clear_caches ();
    ignore (Met.zeta_witness ~ctx:seq_cached s96);
    measure ~name:"zeta_cached_1k_n96" ~reps (fun () ->
        for _ = 1 to 1_000 do
          ignore (Met.zeta_witness ~ctx:seq_cached s96)
        done)
  in
  let parse =
    let text = Lazy.force synthetic_trace in
    measure ~name:"jsonl_parse_160" ~reps (fun () -> J.parse_lines text)
  in
  let span_off =
    (* 100k disabled-span calls per rep: the per-call cost is a few ns,
       far below one clock read. *)
    let k = ref 0 in
    measure ~name:"span_off_100k" ~reps (fun () ->
        for _ = 1 to 100_000 do
          Obs.with_span "noop" (fun () -> incr k)
        done)
  in
  let serve =
    (* The serving path end to end, in process: parse + admission +
       digest-coalescing batches + store lookups + WAL journaling over a
       zipf trace.  A fresh engine and store (with a real on-disk WAL —
       the gate must price the journal's write path) per rep keeps every
       rep cold. *)
    let reqs =
      Bg_serve.Loadgen.generate
        { Bg_serve.Loadgen.seed = 17; requests = 400; spaces = 60;
          nodes = 10; zipf_s = 1.1 }
    in
    measure ~name:"serve_inproc_400" ~reps (fun () ->
        let dir = Filename.temp_file "bg-bench-store" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o700;
        let path = Filename.concat dir "store.jsonl" in
        Fun.protect
          ~finally:(fun () ->
            Array.iter
              (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
              (Sys.readdir dir);
            try Unix.rmdir dir with _ -> ())
          (fun () ->
            let store = Bg_serve.Store.open_ ~path () in
            let t =
              Bg_serve.Server.create
                {
                  Bg_serve.Server.ctx = seq_uncached;
                  batch_size = 32;
                  max_queue = 256;
                  request_timeout_s = None;
                  store = Some store;
                  degrade = None;
                  chaos = None;
                  slo = None;
                  telemetry = None;
                  lineage = None;
                }
            in
            let r = Bg_serve.Loadgen.drive_inproc ~window:32 t reqs in
            Bg_serve.Store.close store;
            if r.Bg_serve.Loadgen.answered <> r.Bg_serve.Loadgen.sent then
              failwith "serve_inproc_400: dropped requests"))
  in
  let incr_step, full_sweep =
    (* The incremental-vs-full kernel pair: one dirty-row step of the
       Incremental engine against a full uncached zeta+phi sweep of the
       same perturbed space.  The engine state is built once outside the
       timed region (it is the amortized asset the step exploits);
       repeated steps with the same (dirty, next) do identical work, so
       the reps time a steady-state patch pass. *)
    let base128 = geo_space 128 in
    let dirty = dirty_rows ~n:128 ~k:4 in
    let next = perturbed_space base128 ~dirty in
    let state = Incr.create ~ctx:seq_uncached base128 in
    ( measure ~name:"incr_step_n128_k4" ~reps (fun () ->
          ignore (Incr.step state ~dirty next)),
      measure ~name:"full_sweep_n128" ~reps (fun () ->
          ignore (Met.zeta_witness ~ctx:seq_uncached next);
          ignore (Met.phi ~ctx:seq_uncached next)) )
  in
  let base =
    [ zeta_seq; phi_seq; gamma; cached; parse; span_off; serve; incr_step;
      full_sweep ]
  in
  if not large then base
  else begin
    (* Large-n smoke entries (`bg bench --large`): the tiled exact kernels
       at n = 2048 under the same noise-aware gate.  Parallel over the
       ambient pool and uncached — these time the sweep, not the memo
       table.  Fewer reps: each sweep is seconds, so clock quantization is
       irrelevant and the gate's 3-sigma band stays meaningful. *)
    let uncached = Core.Decay.Ctx.uncached in
    let s2048 = geo_space 2048 in
    let large_reps = max 1 (min reps 3) in
    let zeta_large =
      measure ~name:"zeta_par_n2048" ~reps:large_reps (fun () ->
          Met.zeta_witness ~ctx:uncached s2048)
    in
    let phi_large =
      measure ~name:"phi_par_n2048" ~reps:large_reps (fun () ->
          Met.phi ~ctx:uncached s2048)
    in
    base @ [ zeta_large; phi_large ]
  end

let samples_table ~title samples =
  let t =
    T.create ~title [ "benchmark"; "reps"; "mean (ms)"; "stddev (ms)"; "best (ms)" ]
  in
  List.iter
    (fun s ->
      T.add_row t
        [ T.S s.name; T.I s.reps; T.F4 (s.mean_s *. 1e3);
          T.F4 (s.stddev_s *. 1e3); T.F4 (s.best_s *. 1e3) ])
    samples;
  t

(* ----------------------------------------------------------------- JSON *)

let sample_to_json s =
  J.Obj
    [ ("name", J.Str s.name); ("reps", J.Num (float_of_int s.reps));
      ("mean_s", J.Num s.mean_s); ("stddev_s", J.Num s.stddev_s);
      ("best_s", J.Num s.best_s) ]

let sample_of_json j =
  match
    ( J.mem_str "name" j, J.mem_num "reps" j, J.mem_num "mean_s" j,
      J.mem_num "stddev_s" j, J.mem_num "best_s" j )
  with
  | Some name, Some reps, Some mean_s, Some stddev_s, Some best_s ->
      { name; reps = int_of_float reps; mean_s; stddev_s; best_s }
  | _ -> failwith "bench baselines: malformed sample entry"

let git_sha () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some sha when sha <> "" -> sha
  | _ -> (
      try
        let read path =
          String.trim (In_channel.with_open_text path In_channel.input_all)
        in
        let head = read ".git/HEAD" in
        match String.split_on_char ' ' head with
        | [ "ref:"; r ] -> read (Filename.concat ".git" r)
        | _ -> head
      with _ -> "unknown")

let write_baselines path samples =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"version\": 1,\n";
  Printf.fprintf oc "  \"recorded_unix\": %.0f,\n" (Unix.time ());
  Printf.fprintf oc "  \"sha\": %s,\n" (J.to_string (J.Str (git_sha ())));
  Printf.fprintf oc "  \"benchmarks\": [\n";
  List.iteri
    (fun i s ->
      Printf.fprintf oc "    %s%s\n"
        (J.to_string (sample_to_json s))
        (if i = List.length samples - 1 then "" else ","))
    samples;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let load_baselines path =
  let j = J.parse (J.read_file path) in
  match J.member "benchmarks" j with
  | Some (J.Arr entries) -> List.map sample_of_json entries
  | _ -> failwith (path ^ ": no \"benchmarks\" array")

let append_history ~path samples =
  let line =
    J.to_string
      (J.Obj
         [ ("type", J.Str "bench_history"); ("sha", J.Str (git_sha ()));
           ("unix_time", J.Num (Unix.time ()));
           ("jobs", J.Num (float_of_int (Core.Prelude.Parallel.default_jobs ())));
           ("samples", J.Arr (List.map sample_to_json samples)) ])
  in
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  output_string oc line;
  output_char oc '\n';
  close_out oc

(* ------------------------------------------------------------- checking *)

type verdict = Pass | Soft | Hard

type check_row = {
  r_name : string;
  base : sample option;
  cur : sample;
  soft_at : float; (* absolute mean threshold, nan without a baseline *)
  hard_at : float;
  row_verdict : verdict;
}

(* 20 us absolute floor: below that, gettimeofday quantization and
   scheduler jitter dominate any real signal. *)
let noise_floor_s = 20e-6

let threshold base frac =
  base.mean_s
  +. Float.max noise_floor_s
       (Float.max (3. *. base.stddev_s) (frac *. base.mean_s))

let compare_samples ~baseline ~current =
  List.map
    (fun cur ->
      match List.find_opt (fun b -> b.name = cur.name) baseline with
      | None ->
          {
            r_name = cur.name;
            base = None;
            cur;
            soft_at = Float.nan;
            hard_at = Float.nan;
            row_verdict = Pass;
          }
      | Some b ->
          let soft_at = threshold b 0.15 and hard_at = threshold b 0.50 in
          {
            r_name = cur.name;
            base = Some b;
            cur;
            soft_at;
            hard_at;
            row_verdict =
              (* Judged on the best-of-reps floor, not the mean: a real
                 slowdown lifts the whole distribution including the
                 floor, while one scheduler-preempted rep only inflates
                 the mean (and would flag a self-comparison on a busy
                 1-core runner). *)
              (if cur.best_s > hard_at then Hard
               else if cur.best_s > soft_at then Soft
               else Pass);
          })
    current

let overall rows =
  List.fold_left
    (fun acc r ->
      match (acc, r.row_verdict) with
      | Hard, _ | _, Hard -> Hard
      | Soft, _ | _, Soft -> Soft
      | Pass, Pass -> Pass)
    Pass rows

let exit_code = function Pass -> 0 | Soft -> 3 | Hard -> 4

let verdict_name = function
  | Pass -> "ok"
  | Soft -> "SOFT REGRESSION"
  | Hard -> "HARD REGRESSION"

(* ------------------------------------------------- BENCH_evolve report *)

type evolve_case = {
  e_k : int;
  e_incr_s : float;
  e_full_s : float;
  e_swept : int;
  e_full_equiv : int;
  e_savings : float;
}

(* The O(k·n²) claim, measured: for each k, one incremental step over a
   k-row perturbation of an n-node geometric space, timed against a full
   uncached zeta+phi recompute of the same space, with the sweep-work
   savings read off the engine's own triple counters.  Runs over the
   ambient job pool (both sides equally). *)
let evolve_cases ?(n = 512) ?(ks = [ 1; 8; 64 ]) () =
  let uncached = Core.Decay.Ctx.uncached in
  let base = geo_space n in
  List.map
    (fun k ->
      let dirty = dirty_rows ~n ~k in
      let next = perturbed_space ~salt:(11 * k) base ~dirty in
      let state = Incr.create ~ctx:uncached base in
      let t0 = Unix.gettimeofday () in
      ignore (Incr.step state ~dirty next);
      let e_incr_s = Unix.gettimeofday () -. t0 in
      let t0 = Unix.gettimeofday () in
      ignore (Met.zeta_witness ~ctx:uncached next);
      ignore (Met.phi_witness ~ctx:uncached next);
      let e_full_s = Unix.gettimeofday () -. t0 in
      let st = Incr.stats state in
      {
        e_k = k;
        e_incr_s;
        e_full_s;
        e_swept = st.Incr.triples_swept;
        e_full_equiv = st.Incr.triples_full;
        e_savings = Incr.savings st;
      })
    ks

let evolve_case_to_json ~n c =
  J.Obj
    [ ("n", J.Num (float_of_int n)); ("k", J.Num (float_of_int c.e_k));
      ("incr_step_s", J.Num c.e_incr_s); ("full_sweep_s", J.Num c.e_full_s);
      ("speedup_wall", J.Num (c.e_full_s /. Float.max 1e-12 c.e_incr_s));
      ("triples_swept", J.Num (float_of_int c.e_swept));
      ("triples_full_equiv", J.Num (float_of_int c.e_full_equiv));
      ("savings_work", J.Num c.e_savings) ]

let write_evolve_report ?(n = 512) ?(ks = [ 1; 8; 64 ]) path =
  let cases = evolve_cases ~n ~ks () in
  let j =
    J.Obj
      [ ("type", J.Str "bench_evolve"); ("sha", J.Str (git_sha ()));
        ("unix_time", J.Num (Unix.time ()));
        ("jobs",
         J.Num (float_of_int (Core.Prelude.Parallel.default_jobs ())));
        ("cases", J.Arr (List.map (evolve_case_to_json ~n) cases)) ]
  in
  let oc = open_out path in
  output_string oc (J.to_string j);
  output_char oc '\n';
  close_out oc;
  let t =
    T.create ~title:(Printf.sprintf "incremental vs full (n = %d)" n)
      [ "k"; "incr step (ms)"; "full sweep (ms)"; "wall speedup";
        "triples swept"; "full equiv"; "work savings" ]
  in
  List.iter
    (fun c ->
      T.add_row t
        [ T.I c.e_k; T.F4 (c.e_incr_s *. 1e3); T.F4 (c.e_full_s *. 1e3);
          T.F2 (c.e_full_s /. Float.max 1e-12 c.e_incr_s); T.I c.e_swept;
          T.I c.e_full_equiv; T.F2 c.e_savings ])
    cases;
  T.print t;
  cases

let check_table rows =
  let t =
    T.create
      ~title:
        "perf regression check (soft: best > base + max(3s, 15%); hard: +50%)"
      [ "benchmark"; "base mean (ms)"; "mean (ms)"; "best (ms)"; "ratio";
        "soft at (ms)"; "verdict" ]
  in
  List.iter
    (fun r ->
      match r.base with
      | None ->
          T.add_row t
            [ T.S r.r_name; T.S "-"; T.F4 (r.cur.mean_s *. 1e3);
              T.F4 (r.cur.best_s *. 1e3); T.S "-"; T.S "-";
              T.S "no baseline" ]
      | Some b ->
          T.add_row t
            [ T.S r.r_name; T.F4 (b.mean_s *. 1e3);
              T.F4 (r.cur.mean_s *. 1e3); T.F4 (r.cur.best_s *. 1e3);
              T.F2 (r.cur.best_s /. Float.max 1e-12 b.mean_s);
              T.F4 (r.soft_at *. 1e3); T.S (verdict_name r.row_verdict) ])
    rows;
  t
