(* The flat/log-domain kernel benchmark: naive row-matrix sweep vs the
   optimized flat-layout sweep (sequential and parallel) on GEO-SINR
   spaces of growing n, plus the digest-keyed analysis cache.  Emits a
   table and machine-readable BENCH_kernels.json so the speedup, pruning
   hit-rate and cache behaviour are tracked across PRs.

   The naive kernel below is the pre-optimization sweep kept verbatim
   (same shape as test/naive_ref.ml): bounds-checked [Decay_space.matrix]
   rows, inline [log]s in the bisection predicate, no pruning tables.  Its
   witness must stay bit-for-bit equal to the optimized kernels' at every
   size — the [identical] column asserts that on each run. *)

module D = Core.Decay.Decay_space
module Met = Core.Decay.Metricity
module Ctx = Core.Decay.Ctx
module KS = Core.Decay.Kernel_stats
module Num = Core.Prelude.Numerics
module Obs = Core.Prelude.Obs
module T = Core.Prelude.Table

type witness = Met.witness = { x : int; y : int; z : int; value : float }

let naive_triple_holds ~fxy ~fxz ~fzy z =
  let t = 1. /. z in
  exp (t *. log fxz) +. exp (t *. log fzy) >= exp (t *. log fxy)

let naive_zeta_triple ?(tol = 1e-9) fxy fxz fzy =
  if fxy <= fxz +. fzy then 1.
  else begin
    let m = Float.min fxz fzy in
    let p = naive_triple_holds ~fxy ~fxz ~fzy in
    if p 1. then 1.
    else begin
      let lo = ref 1.
      and hi = ref (Float.max 1.5 (Num.log2 (fxy /. m) +. 1e-6)) in
      let iters = ref 0 in
      while
        !hi -. !lo > tol *. Float.max 1. (Float.abs !hi) && !iters < 200
      do
        incr iters;
        let mid = 0.5 *. (!lo +. !hi) in
        if p mid then hi := mid else lo := mid
      done;
      !lo
    end
  end

let naive_zeta_witness d =
  let n = D.n d in
  let f = D.matrix d in
  let best = ref { x = 0; y = 1; z = 2; value = 1. } in
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      if y <> x then
        for z = 0 to n - 1 do
          if z <> x && z <> y then begin
            let fxy = f.(x).(y) and fxz = f.(x).(z) and fzy = f.(z).(y) in
            if fxy <= fxz +. fzy then ()
            else if naive_triple_holds ~fxy ~fxz ~fzy !best.value then ()
            else begin
              let v = naive_zeta_triple fxy fxz fzy in
              if v > !best.value then best := { x; y; z; value = v }
            end
          end
        done
    done
  done;
  !best

(* Per-call cost of [Obs.with_span] with no trace sink installed: the
   price every instrumented hot path pays when observability is off.
   The budget below is three orders of magnitude above the expected cost
   (a few ns: one atomic load and a branch) — it exists to catch an
   accidental allocation or lock on the fast path, not to measure the
   machine.  Meaningless (and skipped) when a sink is installed. *)
let span_off_budget_ns = 1000.

let span_off_overhead_ns () =
  let sink = ref 0 in
  let cost =
    Timing.per_call_ns ~iters:200_000 (fun () ->
        Obs.with_span "noop" (fun () -> incr sink))
  in
  ignore !sink;
  cost

let geo_space n =
  D.of_points ~alpha:3.
    (Core.Decay.Spaces.random_points (Core.Prelude.Rng.create 2024) ~n
       ~side:30.)

type entry = {
  n : int;
  naive_s : float;
  opt_seq_s : float;
  opt_par_s : float;
  seq_speedup : float;
  par_speedup : float;
  identical : bool;
  pruned_fraction : float;
  exp_evals : int;
  bisections : int;
  cached_s : float;
}

let run ?(par_jobs = 4) ?(max_n = 512) ?(json_path = "BENCH_kernels.json") ()
    =
  let table =
    T.create
      ~title:
        (Printf.sprintf
           "flat log-domain kernels: zeta sweep, naive vs optimized \
            (par jobs=%d)"
           par_jobs)
      [ "n"; "naive (ms)"; "opt seq (ms)"; "opt par (ms)"; "seq speedup";
        "par speedup"; "pruned"; "cached (us)"; "identical" ]
  in
  let sizes = List.filter (fun n -> n <= max_n) [ 64; 128; 256; 512 ] in
  let entries =
    List.map
      (fun n ->
        let space = geo_space n in
        let reps = if n >= 256 then 2 else 3 in
        let naive_reps = if n >= 256 then 1 else 2 in
        let w_naive, naive_s =
          Timing.time_best ~reps:naive_reps (fun () -> naive_zeta_witness space)
        in
        KS.reset ();
        let w_seq, opt_seq_s =
          Timing.time_best ~reps (fun () ->
              Met.zeta_witness ~ctx:(Ctx.make ~jobs:1 ~cache:false ()) space)
        in
        let stats = KS.snapshot () in
        let w_par, opt_par_s =
          Timing.time_best ~reps (fun () ->
              Met.zeta_witness ~ctx:(Ctx.make ~jobs:par_jobs ~cache:false ()) space)
        in
        (* Cached lookup: first call populates (a miss), second is the
           digest-keyed hit we time. *)
        Met.clear_caches ();
        ignore (Met.zeta_witness space);
        let w_cached, cached_s =
          Timing.time_best ~reps:3 (fun () -> Met.zeta_witness space)
        in
        let identical = w_naive = w_seq && w_seq = w_par && w_par = w_cached in
        let seq_speedup = naive_s /. Float.max 1e-9 opt_seq_s in
        let par_speedup = naive_s /. Float.max 1e-9 opt_par_s in
        let pruned_fraction = KS.pruned_fraction stats in
        T.add_row table
          [ T.I n; T.F2 (naive_s *. 1e3); T.F2 (opt_seq_s *. 1e3);
            T.F2 (opt_par_s *. 1e3); T.F2 seq_speedup; T.F2 par_speedup;
            T.F2 pruned_fraction; T.F2 (cached_s *. 1e6);
            T.S (string_of_bool identical) ];
        {
          n;
          naive_s;
          opt_seq_s;
          opt_par_s;
          seq_speedup;
          par_speedup;
          identical;
          pruned_fraction;
          exp_evals = stats.KS.exp_evals;
          bisections = stats.KS.bisections;
          cached_s;
        })
      sizes
  in
  T.print table;
  let span_off_ns = if Obs.tracing () then None else Some (span_off_overhead_ns ()) in
  (match span_off_ns with
  | Some c ->
      Printf.printf "disabled-span overhead: %.1f ns/call (budget %g)\n%!" c
        span_off_budget_ns
  | None ->
      print_endline
        "disabled-span overhead: skipped (a trace sink is installed)");
  let mh, mm = Met.cache_stats () in
  let oc = open_out json_path in
  Printf.fprintf oc "{\n  \"benchmark\": \"flat_logdomain_kernels\",\n";
  Printf.fprintf oc "  \"sweep\": \"zeta\",\n";
  Printf.fprintf oc "  \"jobs_parallel\": %d,\n" par_jobs;
  Printf.fprintf oc "  \"domains_available\": %d,\n"
    (Core.Prelude.Parallel.auto_jobs ());
  Printf.fprintf oc "  \"span_off_overhead_ns\": %s,\n"
    (match span_off_ns with
    | Some c -> Printf.sprintf "%.1f" c
    | None -> "null");
  Printf.fprintf oc "  \"cache\": {\"hits\": %d, \"misses\": %d},\n" mh mm;
  Printf.fprintf oc "  \"results\": [\n";
  List.iteri
    (fun i e ->
      Printf.fprintf oc
        "    {\"n\": %d, \"naive_s\": %.6f, \"opt_seq_s\": %.6f, \
         \"opt_par_s\": %.6f, \"seq_speedup\": %.3f, \"par_speedup\": \
         %.3f, \"pruned_fraction\": %.4f, \"exp_evals\": %d, \
         \"bisections\": %d, \"cached_lookup_s\": %.9f, \"identical\": \
         %b}%s\n"
        e.n e.naive_s e.opt_seq_s e.opt_par_s e.seq_speedup e.par_speedup
        e.pruned_fraction e.exp_evals e.bisections e.cached_s e.identical
        (if i = List.length entries - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "kernel bench written to %s\n%!" json_path;
  if not (List.for_all (fun e -> e.identical) entries) then begin
    prerr_endline "FATAL: optimized kernel witness diverged from naive sweep";
    exit 1
  end;
  match span_off_ns with
  | Some c when c > span_off_budget_ns ->
      Printf.eprintf
        "FATAL: disabled-span overhead %.1f ns/call exceeds %g ns budget\n"
        c span_off_budget_ns;
      exit 1
  | _ -> ()
