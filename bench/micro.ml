(* Bechamel micro-benchmarks for the library's hot paths: metricity
   computation, capacity algorithms, feasibility checks, the fading
   estimator and the radio pipeline.  One OLS-estimated cost per operation,
   rendered as a table. *)

open Bechamel

let planar_instance n_links =
  Core.Sinr.Instance.random_planar (Core.Prelude.Rng.create 77) ~n_links
    ~side:30. ~alpha:3. ~lmin:1. ~lmax:2.

let tests () =
  let pts30 =
    Core.Decay.Spaces.random_points (Core.Prelude.Rng.create 1) ~n:30 ~side:20.
  in
  let space30 = Core.Decay.Decay_space.of_points ~alpha:3. pts30 in
  let inst40 = planar_instance 40 in
  let inst16 = planar_instance 16 in
  let links40 = Array.to_list inst40.Core.Sinr.Instance.links in
  let power = Core.Sinr.Power.uniform 1. in
  let rng = Core.Prelude.Rng.create 3 in
  let env =
    Core.Radio.Environment.office ~rooms_x:3 ~rooms_y:3 ~room_size:6.
      Core.Radio.Material.drywall
  in
  let nodes =
    Core.Radio.Node.of_points
      (Core.Decay.Spaces.random_points (Core.Prelude.Rng.create 4) ~n:20 ~side:17.)
  in
  Test.make_grouped ~name:"bg"
    [
      Test.make ~name:"zeta exact (n=30)"
        (Staged.stage (fun () -> Core.Decay.Metricity.zeta space30));
      Test.make ~name:"zeta sampled (2k triples, n=30)"
        (Staged.stage (fun () ->
             Core.Decay.Estimators.zeta_triples ~samples:2000 rng
               (Core.Decay.Estimators.of_space space30)));
      Test.make ~name:"phi (n=30)"
        (Staged.stage (fun () -> Core.Decay.Metricity.phi space30));
      Test.make ~name:"alg1 (40 links)"
        (Staged.stage (fun () -> Core.Capacity.Alg1.run inst40));
      Test.make ~name:"affectance greedy (40 links)"
        (Staged.stage (fun () -> Core.Capacity.Greedy.affectance_greedy inst40));
      Test.make ~name:"exact capacity (16 links)"
        (Staged.stage (fun () -> Core.Capacity.Exact.capacity inst16));
      Test.make ~name:"feasibility check (40 links)"
        (Staged.stage (fun () ->
             Core.Sinr.Feasibility.is_feasible inst40 power links40));
      Test.make ~name:"gamma(r=1) greedy (n=30)"
        (Staged.stage (fun () ->
             Core.Decay.Fading.gamma
               ~ctx:(Core.Decay.Ctx.make ~exact_limit:0 ())
               space30 ~r:1.));
      Test.make ~name:"radio decay matrix (20 nodes)"
        (Staged.stage (fun () -> Core.Radio.Measure.decay_space env nodes));
      Test.make ~name:"first-fit schedule (40 links)"
        (Staged.stage (fun () -> Core.Sched.Scheduler.first_fit inst40));
      Test.make ~name:"weighted exact (16 links)"
        (Staged.stage
           (let w = Array.make 16 1.5 in
            fun () -> Core.Capacity.Weighted.exact inst16 w));
      Test.make ~name:"auction w/ payments (16 links)"
        (Staged.stage
           (let bids =
              Array.init 16 (fun i -> 1. +. float_of_int (i mod 5))
            in
            fun () -> Core.Capacity.Auction.run inst16 ~bids));
      Test.make ~name:"conflict graph build (40 links)"
        (Staged.stage (fun () -> Core.Sched.Conflict_graph.build inst40));
      Test.make ~name:"rayleigh success prob (40 interferers)"
        (Staged.stage (fun () ->
             Core.Sinr.Rayleigh.success_probability inst40 power
               ~interferers:links40 (List.hd links40)));
      Test.make ~name:"zeta subsampled (8 x 12 of 30)"
        (Staged.stage (fun () ->
             Core.Decay.Estimators.zeta ~replicates:8 ~nodes:12 rng
               (Core.Decay.Estimators.of_space space30)));
      Test.make ~name:"min connectivity power (n=30)"
        (Staged.stage (fun () ->
             Core.Distrib.Connectivity.min_uniform_power space30 ~beta:1.5
               ~noise:0.5));
    ]

let run () =
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second 0.4) ~kde:None ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] (tests ()) in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table =
    Core.Prelude.Table.create ~title:"micro-benchmarks (monotonic clock, OLS)"
      [ "operation"; "time/op"; "r^2" ]
  in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> e
        | _ -> Float.nan
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with Some r -> r | None -> Float.nan
      in
      let human =
        if estimate >= 1e9 then Printf.sprintf "%.2f s" (estimate /. 1e9)
        else if estimate >= 1e6 then Printf.sprintf "%.2f ms" (estimate /. 1e6)
        else if estimate >= 1e3 then Printf.sprintf "%.2f us" (estimate /. 1e3)
        else Printf.sprintf "%.0f ns" estimate
      in
      Core.Prelude.Table.add_row table
        [ Core.Prelude.Table.S name; Core.Prelude.Table.S human;
          Core.Prelude.Table.F2 r2 ])
    (List.sort compare rows);
  Core.Prelude.Table.print table

(* ------------------------------------------------- parallel-engine bench *)

(* Sequential vs parallel triple sweeps on GEO-SINR spaces of growing n,
   reported as a table and as machine-readable BENCH_parallel.json so the
   perf trajectory is tracked across PRs.  Wall-clock best-of-[reps];
   results are asserted equal between job counts before timing counts. *)

let time_best = Benchkit.Timing.time_best

let run_parallel ?(par_jobs = 4) ?(json_path = "BENCH_parallel.json") () =
  let table =
    Core.Prelude.Table.create
      ~title:
        (Printf.sprintf
           "parallel engine: zeta triple sweep, jobs=1 vs jobs=%d" par_jobs)
      [ "n"; "seq (ms)"; "par (ms)"; "speedup"; "identical" ]
  in
  let entries =
    List.map
      (fun n ->
        let space =
          Core.Decay.Decay_space.of_points ~alpha:3.
            (Core.Decay.Spaces.random_points
               (Core.Prelude.Rng.create 2024)
               ~n ~side:30.)
        in
        let reps = if n >= 256 then 2 else 3 in
        (* [~cache:false]: timing must exercise the sweep, not the
           digest-keyed analysis cache. *)
        let w_seq, t_seq =
          time_best ~reps (fun () ->
              Core.Decay.Metricity.zeta_witness
                ~ctx:(Core.Decay.Ctx.make ~jobs:1 ~cache:false ())
                space)
        in
        let w_par, t_par =
          time_best ~reps (fun () ->
              Core.Decay.Metricity.zeta_witness
                ~ctx:(Core.Decay.Ctx.make ~jobs:par_jobs ~cache:false ())
                space)
        in
        let identical = w_seq = w_par in
        let speedup = t_seq /. Float.max 1e-9 t_par in
        Core.Prelude.Table.add_row table
          [ Core.Prelude.Table.I n;
            Core.Prelude.Table.F2 (t_seq *. 1e3);
            Core.Prelude.Table.F2 (t_par *. 1e3);
            Core.Prelude.Table.F2 speedup;
            Core.Prelude.Table.S (string_of_bool identical) ];
        (n, t_seq, t_par, speedup, identical))
      [ 64; 128; 256 ]
  in
  Core.Prelude.Table.print table;
  let oc = open_out json_path in
  Printf.fprintf oc "{\n  \"benchmark\": \"zeta_triple_sweep\",\n";
  Printf.fprintf oc "  \"jobs_parallel\": %d,\n" par_jobs;
  Printf.fprintf oc "  \"domains_available\": %d,\n"
    (Core.Prelude.Parallel.auto_jobs ());
  Printf.fprintf oc "  \"pool_workers\": %d,\n"
    (Core.Prelude.Parallel.num_domains (Core.Prelude.Parallel.get_default ()));
  Printf.fprintf oc "  \"results\": [\n";
  List.iteri
    (fun i (n, t_seq, t_par, speedup, identical) ->
      Printf.fprintf oc
        "    {\"n\": %d, \"seq_s\": %.6f, \"par_s\": %.6f, \"speedup\": \
         %.3f, \"identical\": %b}%s\n"
        n t_seq t_par speedup identical
        (if i = List.length entries - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "parallel bench written to %s\n%!" json_path
