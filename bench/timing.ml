(* Wall-clock best-of-N timing, shared by the kernel and parallel
   benches and by the `bg bench` subcommand.  Best-of (not mean) because
   the quantity tracked across PRs is the code's floor, not the
   machine's jitter. *)

let time_best ~reps f =
  let best = ref infinity in
  let last = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let v = f () in
    let dt = Unix.gettimeofday () -. t0 in
    last := Some v;
    if dt < !best then best := dt
  done;
  (Option.get !last, !best)

(* Per-call cost, in nanoseconds, of a thunk cheap enough to need many
   iterations per clock read. *)
let per_call_ns ~iters f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    f ()
  done;
  let dt = Unix.gettimeofday () -. t0 in
  dt /. float_of_int iters *. 1e9
