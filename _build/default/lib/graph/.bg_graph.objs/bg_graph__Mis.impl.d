lib/graph/mis.ml: Array Graph List
