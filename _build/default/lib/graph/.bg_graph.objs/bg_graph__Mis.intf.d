lib/graph/mis.mli: Graph
