lib/graph/graph.mli: Bg_prelude
