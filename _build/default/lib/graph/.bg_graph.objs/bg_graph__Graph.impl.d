lib/graph/graph.ml: Array Bg_prelude List
