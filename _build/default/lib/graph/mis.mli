(** Maximum independent set.

    Theorems 3 and 6 of the paper reduce MAX INDEPENDENT SET to CAPACITY; we
    need exact MIS on the small graphs that parameterize those constructions
    to certify the one-to-one correspondence and to measure approximation
    gaps against the true optimum. *)

val greedy : Graph.t -> int list
(** Minimum-degree greedy independent set (a standard approximation);
    deterministic. *)

val exact : ?limit:int -> Graph.t -> int list
(** Exact maximum independent set by branch and bound (branch on a
    maximum-degree vertex, prune with a greedy clique-cover upper bound).
    [limit] caps the vertex count (default 64) to guard against accidental
    exponential blowups; raises [Invalid_argument] beyond it. *)

val independence_number : Graph.t -> int
(** Size of a maximum independent set (via {!exact}). *)
