type t = { n : int; adj : bool array array }

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { n; adj = Array.make_matrix n n false }

let n g = g.n

let check g u =
  if u < 0 || u >= g.n then invalid_arg "Graph: vertex out of range"

let add_edge g u v =
  check g u;
  check g v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  g.adj.(u).(v) <- true;
  g.adj.(v).(u) <- true

let remove_edge g u v =
  check g u;
  check g v;
  g.adj.(u).(v) <- false;
  g.adj.(v).(u) <- false

let has_edge g u v =
  check g u;
  check g v;
  g.adj.(u).(v)

let degree g u =
  check g u;
  let d = ref 0 in
  for v = 0 to g.n - 1 do
    if g.adj.(u).(v) then incr d
  done;
  !d

let neighbours g u =
  check g u;
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    if g.adj.(u).(v) then acc := v :: !acc
  done;
  !acc

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    for v = g.n - 1 downto u + 1 do
      if g.adj.(u).(v) then acc := (u, v) :: !acc
    done
  done;
  !acc

let edge_count g = List.length (edges g)

let complement g =
  let c = create g.n in
  for u = 0 to g.n - 1 do
    for v = 0 to g.n - 1 do
      if u <> v && not g.adj.(u).(v) then c.adj.(u).(v) <- true
    done
  done;
  c

let is_independent g vs =
  let rec check_pairs = function
    | [] -> true
    | u :: rest -> List.for_all (fun v -> not (has_edge g u v)) rest && check_pairs rest
  in
  check_pairs vs

let is_clique g vs =
  let rec check_pairs = function
    | [] -> true
    | u :: rest -> List.for_all (fun v -> has_edge g u v) rest && check_pairs rest
  in
  check_pairs vs

let random rng n p =
  let g = create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Bg_prelude.Rng.bernoulli rng p then add_edge g u v
    done
  done;
  g

let cycle n =
  if n < 3 then invalid_arg "Graph.cycle: need n >= 3";
  let g = create n in
  for i = 0 to n - 1 do
    add_edge g i ((i + 1) mod n)
  done;
  g

let path n =
  let g = create n in
  for i = 0 to n - 2 do
    add_edge g i (i + 1)
  done;
  g

let complete n =
  let g = create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      add_edge g u v
    done
  done;
  g

let star n =
  if n < 1 then invalid_arg "Graph.star: need n >= 1";
  let g = create n in
  for i = 1 to n - 1 do
    add_edge g 0 i
  done;
  g

let complete_bipartite a b =
  let g = create (a + b) in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      add_edge g u v
    done
  done;
  g

let disjoint_union g1 g2 =
  let g = create (g1.n + g2.n) in
  List.iter (fun (u, v) -> add_edge g u v) (edges g1);
  List.iter (fun (u, v) -> add_edge g (u + g1.n) (v + g1.n)) (edges g2);
  g
