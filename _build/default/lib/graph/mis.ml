(* Vertex sets are represented as sorted int lists at the API boundary and as
   boolean masks internally. *)

let greedy g =
  let n = Graph.n g in
  let alive = Array.make n true in
  let result = ref [] in
  let remaining = ref n in
  while !remaining > 0 do
    (* Pick the alive vertex of minimum alive-degree. *)
    let best = ref (-1) and best_deg = ref max_int in
    for u = 0 to n - 1 do
      if alive.(u) then begin
        let d = ref 0 in
        for v = 0 to n - 1 do
          if alive.(v) && Graph.has_edge g u v then incr d
        done;
        if !d < !best_deg then begin
          best := u;
          best_deg := !d
        end
      end
    done;
    let u = !best in
    result := u :: !result;
    alive.(u) <- false;
    decr remaining;
    for v = 0 to n - 1 do
      if alive.(v) && Graph.has_edge g u v then begin
        alive.(v) <- false;
        decr remaining
      end
    done
  done;
  List.sort compare !result

(* Greedy clique cover of the alive vertices: the number of cliques is an
   upper bound on the independence number of the induced subgraph. *)
let clique_cover_bound g alive =
  let n = Graph.n g in
  let used = Array.make n false in
  let cliques = ref 0 in
  for u = 0 to n - 1 do
    if alive.(u) && not used.(u) then begin
      incr cliques;
      used.(u) <- true;
      let members = ref [ u ] in
      for v = u + 1 to n - 1 do
        if
          alive.(v)
          && (not used.(v))
          && List.for_all (fun w -> Graph.has_edge g v w) !members
        then begin
          used.(v) <- true;
          members := v :: !members
        end
      done
    end
  done;
  !cliques

let exact ?(limit = 64) g =
  let n = Graph.n g in
  if n > limit then invalid_arg "Mis.exact: graph exceeds size limit";
  let best = ref (greedy g) in
  let best_size = ref (List.length !best) in
  let alive = Array.make n true in
  let chosen = Array.make n false in
  let rec go alive_count chosen_count =
    if chosen_count > !best_size then begin
      best_size := chosen_count;
      let acc = ref [] in
      for u = n - 1 downto 0 do
        if chosen.(u) then acc := u :: !acc
      done;
      best := !acc
    end;
    if alive_count > 0 && chosen_count + clique_cover_bound g alive > !best_size
    then begin
      (* Branch on a maximum-degree alive vertex. *)
      let pick = ref (-1) and pick_deg = ref (-1) in
      for u = 0 to n - 1 do
        if alive.(u) then begin
          let d = ref 0 in
          for v = 0 to n - 1 do
            if alive.(v) && Graph.has_edge g u v then incr d
          done;
          if !d > !pick_deg then begin
            pick := u;
            pick_deg := !d
          end
        end
      done;
      let u = !pick in
      (* Include u: kill u and its alive neighbourhood. *)
      let killed = ref [ u ] in
      alive.(u) <- false;
      for v = 0 to n - 1 do
        if alive.(v) && Graph.has_edge g u v then begin
          alive.(v) <- false;
          killed := v :: !killed
        end
      done;
      chosen.(u) <- true;
      go (alive_count - List.length !killed) (chosen_count + 1);
      chosen.(u) <- false;
      List.iter (fun v -> alive.(v) <- true) !killed;
      (* Exclude u. *)
      alive.(u) <- false;
      go (alive_count - 1) chosen_count;
      alive.(u) <- true
    end
  in
  go n 0;
  List.sort compare !best

let independence_number g = List.length (exact g)
