(** Simple undirected graphs on vertices [0 .. n-1].

    Backed by an adjacency matrix (the graphs in this repository are small:
    they parameterize the paper's hardness constructions, Theorems 3 and 6,
    where a decay space is built from a graph so that feasible link sets
    correspond to independent sets). *)

type t

val create : int -> t
(** [create n] is the empty graph on [n] vertices. *)

val n : t -> int
(** Number of vertices. *)

val add_edge : t -> int -> int -> unit
(** Add an undirected edge; self-loops are rejected. *)

val remove_edge : t -> int -> int -> unit
(** Remove an edge if present. *)

val has_edge : t -> int -> int -> bool
(** Adjacency test. *)

val degree : t -> int -> int
(** Number of neighbours. *)

val neighbours : t -> int -> int list
(** Sorted neighbour list. *)

val edges : t -> (int * int) list
(** All edges as [(u, v)] with [u < v]. *)

val edge_count : t -> int
(** Number of edges. *)

val complement : t -> t
(** Graph complement. *)

val is_independent : t -> int list -> bool
(** Whether a vertex set induces no edge. *)

val is_clique : t -> int list -> bool
(** Whether a vertex set induces all edges. *)

(** {2 Generators} *)

val random : Bg_prelude.Rng.t -> int -> float -> t
(** [random rng n p] is an Erdős–Rényi G(n, p) sample. *)

val cycle : int -> t
(** The n-cycle (n >= 3). *)

val path : int -> t
(** The n-vertex path. *)

val complete : int -> t
(** The clique K_n. *)

val star : int -> t
(** Star with centre [0] and [n-1] leaves. *)

val complete_bipartite : int -> int -> t
(** [complete_bipartite a b] is K_{a,b}: vertices [0..a-1] on one side. *)

val disjoint_union : t -> t -> t
(** Disjoint union; the second graph's vertices are shifted by [n g1]. *)
