(** Algorithm 1 of the paper: CAPACITY with uniform power in bounded-growth
    decay spaces (Theorem 5).

    Processes links in non-decreasing decay order; admits a link when it is
    [zeta/2]-separated from the accepted set and the mutual affectance
    headroom [a_v(X) + a_X(v) <= 1/2] holds; finally keeps the accepted
    links with [a_X(v) <= 1].  Theorem 5: this is a [zeta^{O(1)}]
    approximation in bounded-growth spaces — on the plane [O(alpha^4)], the
    first capacity bound sub-exponential in the path-loss exponent. *)

val run : ?power:Bg_sinr.Power.t -> Bg_sinr.Instance.t -> Bg_sinr.Link.t list
(** The selected feasible set.  [power] defaults to uniform 1; the
    algorithm is specified for uniform power.  The returned set is
    guaranteed feasible in the affectance sense (a final safety filter
    drops any link whose in-affectance exceeds 1, which the analysis
    already ensures). *)

val run_with_trace :
  ?power:Bg_sinr.Power.t -> Bg_sinr.Instance.t ->
  Bg_sinr.Link.t list * [ `Accepted | `Not_separated | `No_headroom ] array
(** The selection plus, for each link id, why it was (not) admitted —
    used by the experiment drivers to report rejection profiles. *)

val run_configured :
  ?power:Bg_sinr.Power.t -> ?eta:float -> ?headroom:float ->
  ?final_filter:bool -> Bg_sinr.Instance.t -> Bg_sinr.Link.t list
(** Ablation surface: the same pass with each design choice exposed.
    [eta] is the separation requirement (default [zeta/2]; [0.] disables
    the separation test), [headroom] the bidirectional affectance budget
    (default 1/2; [infinity] disables it), [final_filter] the closing
    in-affectance <= 1 sweep (default on).  [run] is
    [run_configured] with the paper's parameters.  NOTE: with choices
    disabled the output may be SINR-infeasible — that is the point of the
    ablation (experiment E28 measures how often). *)
