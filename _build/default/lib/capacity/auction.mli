(** Secondary spectrum auctions over decay spaces — the [38], [37] family
    that Proposition 1 transfers.

    Bidders are links; a bid is a willingness to pay for transmitting in
    the allocated round.  The mechanism is the canonical monotone greedy:
    process bids in descending order, allocate when the winner set stays
    SINR-feasible, and charge every winner its critical bid (the infimum
    bid at which it would still win, others fixed) — a deterministic
    truthful mechanism by Myerson monotonicity.  Welfare approximability
    again degrades with the metricity, which experiment E18 measures. *)

type outcome = {
  winners : Bg_sinr.Link.t list;
  payments : (int * float) list;  (** (link id, critical payment) *)
  welfare : float;  (** sum of winning bids *)
}

val greedy_allocation :
  ?power:Bg_sinr.Power.t -> Bg_sinr.Instance.t -> bids:float array ->
  Bg_sinr.Link.t list
(** The allocation rule alone: descending-bid greedy with exact
    feasibility checks (ties broken by link id, so the rule is
    deterministic and monotone in each bid). *)

val run :
  ?power:Bg_sinr.Power.t -> Bg_sinr.Instance.t -> bids:float array -> outcome
(** Allocation plus critical payments (computed by re-running the rule on
    the other bidders' bid levels).  O(n^2) allocation re-runs. *)

val is_winner_monotone :
  ?power:Bg_sinr.Power.t -> Bg_sinr.Instance.t -> bids:float array ->
  Bg_sinr.Link.t -> bool
(** Spot check of Myerson monotonicity for one winner: raising its bid
    (doubling) keeps it winning. *)
