(** Exact maximum feasible subset under a fixed power assignment.

    Feasibility under fixed power is downward closed, so branch-and-bound
    enumeration with candidate filtering is exact: a link that breaks
    feasibility with the current prefix can never rejoin on that branch.
    Exponential in the worst case — intended for the <= ~26-link instances
    on which the experiments measure true approximation ratios. *)

val capacity :
  ?power:Bg_sinr.Power.t -> ?limit:int -> ?node_budget:int ->
  Bg_sinr.Instance.t -> Bg_sinr.Link.t list
(** A maximum-cardinality feasible subset.  [limit] (default 30) caps the
    number of links; [node_budget] (default 5_000_000) caps search nodes —
    on exhaustion the incumbent is returned and {!was_exact} reports
    [false].
    @raise Invalid_argument when the instance exceeds [limit]. *)

val was_exact : unit -> bool
(** Whether the most recent {!capacity} call completed its search within
    the node budget (i.e. the result is certified optimal). *)

val capacity_power_control :
  ?limit:int -> ?node_budget:int -> Bg_sinr.Instance.t -> Bg_sinr.Link.t list
(** Maximum subset feasible under *some* power assignment (spectral-radius
    test; also downward closed).  Used to certify the "arbitrary power
    control" clauses of Theorems 3 and 6. *)
