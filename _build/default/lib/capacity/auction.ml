module I = Bg_sinr.Instance
module F = Bg_sinr.Feasibility

type outcome = {
  winners : Bg_sinr.Link.t list;
  payments : (int * float) list;
  welfare : float;
}

let bid_of bids (l : Bg_sinr.Link.t) =
  if l.Bg_sinr.Link.id < 0 || l.Bg_sinr.Link.id >= Array.length bids then
    invalid_arg "Auction: link id out of bid range";
  let b = bids.(l.Bg_sinr.Link.id) in
  if b < 0. then invalid_arg "Auction: bids must be non-negative";
  b

let greedy_allocation ?(power = Bg_sinr.Power.uniform 1.) (t : I.t) ~bids =
  let ordered =
    List.sort
      (fun a b ->
        let c = Float.compare (bid_of bids b) (bid_of bids a) in
        if c <> 0 then c else compare a.Bg_sinr.Link.id b.Bg_sinr.Link.id)
      (Array.to_list t.I.links)
  in
  List.rev
    (List.fold_left
       (fun acc l ->
         if bid_of bids l > 0. && F.is_feasible t power (l :: acc) then l :: acc
         else acc)
       [] ordered)

let wins ?power t ~bids l =
  List.exists
    (fun w -> w.Bg_sinr.Link.id = l.Bg_sinr.Link.id)
    (greedy_allocation ?power t ~bids)

let critical_payment ?power (t : I.t) ~bids l =
  (* The allocation changes only when l's bid crosses another bidder's bid
     level: re-run at each candidate level (just above it via tie-break
     order, which favours lower ids at equality, so equality itself is the
     boundary we test). *)
  let others =
    Array.to_list t.I.links
    |> List.filter_map (fun w ->
           if w.Bg_sinr.Link.id = l.Bg_sinr.Link.id then None
           else Some bids.(w.Bg_sinr.Link.id))
  in
  let levels = List.sort_uniq Float.compare (0. :: others) in
  let try_level b =
    let bids' = Array.copy bids in
    bids'.(l.Bg_sinr.Link.id) <- b;
    wins ?power t ~bids:bids' l
  in
  (* Find the smallest level at which l still wins; the payment is that
     level (winning is monotone in own bid for greedy-by-bid rules).  We
     nudge strictly above the level to sidestep tie-break asymmetry. *)
  let eps = 1e-9 in
  let rec scan = function
    | [] -> bid_of bids l
    | b :: rest -> if try_level (b +. eps) then b +. eps else scan rest
  in
  scan levels

let run ?power (t : I.t) ~bids =
  let winners = greedy_allocation ?power t ~bids in
  let payments =
    List.map
      (fun l -> (l.Bg_sinr.Link.id, critical_payment ?power t ~bids l))
      winners
  in
  let welfare = List.fold_left (fun acc l -> acc +. bid_of bids l) 0. winners in
  { winners; payments; welfare }

let is_winner_monotone ?power (t : I.t) ~bids l =
  if not (wins ?power t ~bids l) then
    invalid_arg "Auction.is_winner_monotone: link is not a winner";
  let bids' = Array.copy bids in
  bids'.(l.Bg_sinr.Link.id) <- (2. *. bids.(l.Bg_sinr.Link.id)) +. 1.;
  wins ?power t ~bids:bids' l
