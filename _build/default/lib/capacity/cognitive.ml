module I = Bg_sinr.Instance
module F = Bg_sinr.Feasibility

let admission_is_safe ?(power = Bg_sinr.Power.uniform 1.) (t : I.t) ~primaries
    ~admitted =
  F.is_feasible t power (primaries @ admitted)

let check_primaries ?(power = Bg_sinr.Power.uniform 1.) t primaries =
  if not (F.is_feasible t power primaries) then
    invalid_arg "Cognitive: primaries are not feasible by themselves"

let greedy ?(power = Bg_sinr.Power.uniform 1.) (t : I.t) ~primaries
    ~secondaries =
  check_primaries ~power t primaries;
  let ordered =
    List.sort (Bg_sinr.Link.compare_by_decay t.I.space) secondaries
  in
  List.rev
    (List.fold_left
       (fun acc l ->
         if admission_is_safe ~power t ~primaries ~admitted:(l :: acc) then
           l :: acc
         else acc)
       [] ordered)

let exact ?(power = Bg_sinr.Power.uniform 1.) ?(limit = 30)
    ?(node_budget = 5_000_000) (t : I.t) ~primaries ~secondaries =
  check_primaries ~power t primaries;
  if List.length secondaries > limit then
    invalid_arg "Cognitive.exact: too many secondaries";
  let budget = ref node_budget in
  let best = ref [] in
  let feasible admitted = admission_is_safe ~power t ~primaries ~admitted in
  let rec go current size cands =
    decr budget;
    if !budget > 0 then begin
      if size > List.length !best then best := current;
      match cands with
      | [] -> ()
      | l :: rest ->
          if size + List.length cands > List.length !best then begin
            let with_l = l :: current in
            let filtered = List.filter (fun w -> feasible (w :: with_l)) rest in
            go with_l (size + 1) filtered;
            go current size rest
          end
    end
  in
  let initial = List.filter (fun l -> feasible [ l ]) secondaries in
  go [] 0 initial;
  List.rev !best
