(** Cognitive-radio admission ([33]: "wireless capacity and admission
    control in cognitive radio", from Proposition 1's transfer list).

    Primary links hold licenses and must remain SINR-feasible no matter
    what; secondary links may be admitted only if the combined set keeps
    every primary *and* every admitted secondary feasible.  This is
    CAPACITY with a protected base set — still downward closed in the
    secondaries, so both a greedy rule and an exact solver apply. *)

val greedy :
  ?power:Bg_sinr.Power.t -> Bg_sinr.Instance.t ->
  primaries:Bg_sinr.Link.t list -> secondaries:Bg_sinr.Link.t list ->
  Bg_sinr.Link.t list
(** Admit secondaries in non-decreasing decay order whenever primaries and
    admitted secondaries all stay feasible.
    @raise Invalid_argument if the primaries alone are infeasible. *)

val exact :
  ?power:Bg_sinr.Power.t -> ?limit:int -> ?node_budget:int ->
  Bg_sinr.Instance.t -> primaries:Bg_sinr.Link.t list ->
  secondaries:Bg_sinr.Link.t list -> Bg_sinr.Link.t list
(** Maximum admissible secondary set (branch and bound over secondaries
    with the primaries pinned). *)

val admission_is_safe :
  ?power:Bg_sinr.Power.t -> Bg_sinr.Instance.t ->
  primaries:Bg_sinr.Link.t list -> admitted:Bg_sinr.Link.t list -> bool
(** The defining predicate: primaries plus admitted secondaries all clear
    the threshold. *)
