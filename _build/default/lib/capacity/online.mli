(** Online capacity maximization (Fanghänel–Geulen–Hoefer–Vöcking [15],
    from the paper's §3.3 transfer list): links arrive one at a time and
    must be irrevocably accepted or rejected; the accepted set must stay
    feasible at all times.

    Two admission rules:
    - [feasibility_only]: accept iff the set stays SINR-feasible — greedy,
      no guarantee (an early weak link can block everything after it);
    - [guarded]: accept iff the set stays feasible *and* the newcomer is
      [eta]-separated from the accepted set with affectance headroom
      [headroom] — the separation-based rule whose competitive analysis
      the annulus argument powers; robust to adversarial orders. *)

val feasibility_only :
  ?power:Bg_sinr.Power.t -> Bg_sinr.Instance.t -> arrival:Bg_sinr.Link.t list ->
  Bg_sinr.Link.t list
(** Process [arrival] in order; returns the accepted set (arrival order). *)

val guarded :
  ?power:Bg_sinr.Power.t -> ?eta:float -> ?headroom:float ->
  Bg_sinr.Instance.t -> arrival:Bg_sinr.Link.t list -> Bg_sinr.Link.t list
(** Separation-guarded admission.  [eta] defaults to [zeta/2], [headroom]
    to 1/2 (mirroring Algorithm 1's offline test). *)

val competitive_ratio :
  ?power:Bg_sinr.Power.t -> Bg_sinr.Instance.t ->
  accepted:Bg_sinr.Link.t list -> float
(** [|OPT| / |accepted|] against the offline exact optimum of the whole
    instance (small instances only — runs the branch-and-bound solver). *)
