module I = Bg_sinr.Instance
module A = Bg_sinr.Affectance

type report = {
  subset : Bg_sinr.Link.t list;
  shrinkage : float;
  max_out_affectance : float;
  separated_classes : int;
}

let extract ?(power = Bg_sinr.Power.uniform 1.) (t : I.t) ~feasible =
  if feasible = [] then
    { subset = []; shrinkage = 1.; max_out_affectance = 0.; separated_classes = 0 }
  else begin
    let classes =
      Bg_sinr.Partition.sparsify t power ~eta:t.I.zeta feasible
    in
    let s_hat = Bg_sinr.Partition.largest classes in
    (* Keep the low-out-affectance half: links whose total affectance onto
       the rest of the class is at most 2 (at least half qualify, since the
       average out-affectance of a feasible set is at most 1). *)
    let s' =
      List.filter (fun lv -> A.out_affectance t power lv s_hat <= 2.) s_hat
    in
    let max_out =
      Array.fold_left
        (fun acc lv -> Float.max acc (A.out_affectance t power lv s'))
        0. t.I.links
    in
    {
      subset = s';
      shrinkage =
        float_of_int (List.length feasible)
        /. float_of_int (max 1 (List.length s'));
      max_out_affectance = max_out;
      separated_classes = List.length classes;
    }
  end
