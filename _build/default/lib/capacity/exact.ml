module I = Bg_sinr.Instance

let exact_flag = ref true
let was_exact () = !exact_flag

(* Generic maximum downward-closed subset search.  [feasible] must be
   monotone: subsets of feasible sets are feasible. *)
let max_subset ~feasible ~node_budget links =
  let budget = ref node_budget in
  let best = ref [] in
  exact_flag := true;
  let rec go current current_size cands =
    decr budget;
    if !budget <= 0 then exact_flag := false
    else begin
      if current_size > List.length !best then best := current;
      match cands with
      | [] -> ()
      | l :: rest ->
          if current_size + List.length cands > List.length !best then begin
            (* Include l (cands are pre-filtered: current @ [l] feasible),
               then keep only candidates that survive alongside l. *)
            let with_l = l :: current in
            let filtered =
              List.filter (fun w -> feasible (w :: with_l)) rest
            in
            go with_l (current_size + 1) filtered;
            (* Exclude l. *)
            go current current_size rest
          end
    end
  in
  let initial = List.filter (fun l -> feasible [ l ]) links in
  go [] 0 initial;
  !best

let order_links (t : I.t) =
  List.sort (Bg_sinr.Link.compare_by_decay t.I.space) (Array.to_list t.I.links)

let capacity ?(power = Bg_sinr.Power.uniform 1.) ?(limit = 30)
    ?(node_budget = 5_000_000) (t : I.t) =
  if Array.length t.I.links > limit then
    invalid_arg "Exact.capacity: instance exceeds size limit";
  max_subset
    ~feasible:(fun set -> Bg_sinr.Feasibility.is_feasible t power set)
    ~node_budget (order_links t)

let capacity_power_control ?(limit = 30) ?(node_budget = 5_000_000) (t : I.t) =
  if Array.length t.I.links > limit then
    invalid_arg "Exact.capacity_power_control: instance exceeds size limit";
  max_subset
    ~feasible:(fun set -> Bg_sinr.Power_control.is_feasible t set)
    ~node_budget (order_links t)
