(** Amicability (Definition 4.2) measured constructively.

    A link set [L] is h-amicable if every feasible subset [S] contains a
    subset [S'] of size [Omega(|S| / h)] such that every link of [L] has
    bounded out-affectance onto [S'].  Theorem 4: in a decay space with
    independence dimension [D] and quasi-metric doubling dimension [A'],
    [L] is [O(D * zeta^{2A'})]-amicable.  This module runs the theorem's
    constructive proof on a concrete feasible set and reports the measured
    shrinkage and affectance constants (experiment E6). *)

type report = {
  subset : Bg_sinr.Link.t list;  (** the extracted [S'] *)
  shrinkage : float;  (** [|S| / |S'|] — the measured [h] *)
  max_out_affectance : float;
      (** [max_{v in L} a_v(S')] — the measured constant [c] *)
  separated_classes : int;  (** classes used by the Lemma 4.1 partition *)
}

val extract :
  ?power:Bg_sinr.Power.t -> Bg_sinr.Instance.t -> feasible:Bg_sinr.Link.t list ->
  report
(** Run the proof of Theorem 4: sparsify the feasible set into
    zeta-separated classes (Lemma 4.1), take the largest class, keep its
    links of out-affectance at most 2 within the class, and measure the
    resulting amicability parameters against the whole instance. *)
