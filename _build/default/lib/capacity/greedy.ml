module I = Bg_sinr.Instance
module A = Bg_sinr.Affectance
module F = Bg_sinr.Feasibility

let affectance_greedy ?(power = Bg_sinr.Power.uniform 1.) ?(threshold = 0.5)
    (t : I.t) =
  let ordered =
    List.sort (Bg_sinr.Link.compare_by_decay t.I.space)
      (Array.to_list t.I.links)
  in
  let x =
    List.fold_left
      (fun x lv ->
        if
          A.out_affectance t power lv x +. A.in_affectance t power x lv
          <= threshold
        then lv :: x
        else x)
      [] ordered
  in
  List.rev (List.filter (fun lv -> A.in_affectance t power x lv <= 1.) x)

let admit_in_order power t ordered =
  let x =
    List.fold_left
      (fun x lv -> if F.is_feasible t power (lv :: x) then lv :: x else x)
      [] ordered
  in
  List.rev x

let strongest_first ?(power = Bg_sinr.Power.uniform 1.) (t : I.t) =
  admit_in_order power t
    (List.sort (Bg_sinr.Link.compare_by_decay t.I.space)
       (Array.to_list t.I.links))

let random_order ?(power = Bg_sinr.Power.uniform 1.) rng (t : I.t) =
  let arr = Array.copy t.I.links in
  Bg_prelude.Rng.shuffle rng arr;
  admit_in_order power t (Array.to_list arr)
