lib/capacity/auction.ml: Array Bg_sinr Float List
