lib/capacity/online.mli: Bg_sinr
