lib/capacity/cognitive.ml: Bg_sinr List
