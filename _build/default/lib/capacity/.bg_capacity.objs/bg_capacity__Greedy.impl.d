lib/capacity/greedy.ml: Array Bg_prelude Bg_sinr List
