lib/capacity/greedy.mli: Bg_prelude Bg_sinr
