lib/capacity/auction.mli: Bg_sinr
