lib/capacity/alg1.mli: Bg_sinr
