lib/capacity/amicability.ml: Array Bg_sinr Float List
