lib/capacity/exact.ml: Array Bg_sinr List
