lib/capacity/weighted.ml: Array Bg_sinr Float Fun List
