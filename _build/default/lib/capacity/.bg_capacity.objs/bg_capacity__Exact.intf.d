lib/capacity/exact.mli: Bg_sinr
