lib/capacity/amicability.mli: Bg_sinr
