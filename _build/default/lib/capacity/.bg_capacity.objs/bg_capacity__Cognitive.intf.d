lib/capacity/cognitive.mli: Bg_sinr
