lib/capacity/online.ml: Bg_sinr Exact List
