lib/capacity/weighted.mli: Bg_sinr
