lib/capacity/alg1.ml: Array Bg_sinr List
