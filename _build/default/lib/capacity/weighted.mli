(** Weighted CAPACITY — maximize total weight (utility, rate, bid) of a
    feasible subset.  The weighted problem underlies the spectrum-auction
    and cognitive-radio applications ([38], [33]) that Proposition 1
    transfers to decay spaces; approximability again degrades with the
    metricity through the same affectance machinery. *)

type weights = float array
(** Indexed by link id; all weights must be positive. *)

val greedy :
  ?power:Bg_sinr.Power.t -> ?threshold:float -> Bg_sinr.Instance.t ->
  weights -> Bg_sinr.Link.t list
(** Weight-density greedy: process links in non-increasing weight order,
    admit on the usual bidirectional affectance-headroom test (default
    threshold 1/2), final in-affectance filter.  Output is feasible in the
    affectance sense. *)

val exact :
  ?power:Bg_sinr.Power.t -> ?limit:int -> ?node_budget:int ->
  Bg_sinr.Instance.t -> weights -> Bg_sinr.Link.t list
(** Maximum-weight feasible subset by branch and bound (suffix-weight-sum
    pruning; feasibility downward closure).  Small instances only.
    @raise Invalid_argument beyond [limit] links (default 30). *)

val total : weights -> Bg_sinr.Link.t list -> float
(** Sum of the weights of a link set. *)
