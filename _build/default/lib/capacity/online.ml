module I = Bg_sinr.Instance
module F = Bg_sinr.Feasibility
module A = Bg_sinr.Affectance
module S = Bg_sinr.Separation

let feasibility_only ?(power = Bg_sinr.Power.uniform 1.) (t : I.t) ~arrival =
  List.rev
    (List.fold_left
       (fun acc l -> if F.is_feasible t power (l :: acc) then l :: acc else acc)
       [] arrival)

let guarded ?(power = Bg_sinr.Power.uniform 1.) ?eta ?(headroom = 0.5)
    (t : I.t) ~arrival =
  let eta = match eta with Some e -> e | None -> t.I.zeta /. 2. in
  List.rev
    (List.fold_left
       (fun acc l ->
         let ok =
           S.is_separated_from t ~eta l acc
           && List.for_all (fun w -> S.is_separated_from t ~eta w [ l ]) acc
           && A.out_affectance t power l acc +. A.in_affectance t power acc l
              <= headroom
           && F.is_feasible t power (l :: acc)
         in
         if ok then l :: acc else acc)
       [] arrival)

let competitive_ratio ?power (t : I.t) ~accepted =
  let opt = List.length (Exact.capacity ?power t) in
  float_of_int opt /. float_of_int (max 1 (List.length accepted))
