(** Greedy capacity algorithms that work in arbitrary decay spaces.

    [affectance_greedy] is the general-metric algorithm family of
    Halldórsson–Mitra [30] transplanted per Proposition 1: process links in
    non-decreasing decay order and admit on an affectance-headroom test.
    Its approximation guarantee in decay spaces is exponential in the
    metricity (3^zeta after [24]'s refinement) — the foil against which
    Algorithm 1's polynomial-in-zeta behaviour is measured.

    [strongest_first] is the naive baseline: sort by decay and admit
    whenever the set stays SINR-feasible. *)

val affectance_greedy :
  ?power:Bg_sinr.Power.t -> ?threshold:float -> Bg_sinr.Instance.t ->
  Bg_sinr.Link.t list
(** Admit [l_v] when [a_v(X) + a_X(v) <= threshold] (default 1/2), then
    keep links with in-affectance at most 1.  Works with any monotone
    power assignment (default uniform 1). *)

val strongest_first :
  ?power:Bg_sinr.Power.t -> Bg_sinr.Instance.t -> Bg_sinr.Link.t list
(** Admit in non-decreasing decay order whenever the accepted set remains
    feasible (exact SINR check).  Always returns a feasible set; no
    approximation guarantee. *)

val random_order :
  ?power:Bg_sinr.Power.t -> Bg_prelude.Rng.t -> Bg_sinr.Instance.t ->
  Bg_sinr.Link.t list
(** Control baseline: like {!strongest_first} but in a random order. *)
