module I = Bg_sinr.Instance
module A = Bg_sinr.Affectance
module F = Bg_sinr.Feasibility

type weights = float array

let weight_of weights (l : Bg_sinr.Link.t) =
  if l.Bg_sinr.Link.id < 0 || l.Bg_sinr.Link.id >= Array.length weights then
    invalid_arg "Weighted: link id out of weight range";
  let w = weights.(l.Bg_sinr.Link.id) in
  if w <= 0. then invalid_arg "Weighted: weights must be positive";
  w

let total weights set =
  List.fold_left (fun acc l -> acc +. weight_of weights l) 0. set

let greedy ?(power = Bg_sinr.Power.uniform 1.) ?(threshold = 0.5) (t : I.t)
    weights =
  let ordered =
    List.sort
      (fun a b -> Float.compare (weight_of weights b) (weight_of weights a))
      (Array.to_list t.I.links)
  in
  let x =
    List.fold_left
      (fun x lv ->
        if
          A.out_affectance t power lv x +. A.in_affectance t power x lv
          <= threshold
        then lv :: x
        else x)
      [] ordered
  in
  List.rev (List.filter (fun lv -> A.in_affectance t power x lv <= 1.) x)

let exact ?(power = Bg_sinr.Power.uniform 1.) ?(limit = 30)
    ?(node_budget = 5_000_000) (t : I.t) weights =
  if Array.length t.I.links > limit then
    invalid_arg "Weighted.exact: instance exceeds size limit";
  let ordered =
    List.sort
      (fun a b -> Float.compare (weight_of weights b) (weight_of weights a))
      (Array.to_list t.I.links)
  in
  let feasible set = F.is_feasible t power set in
  let candidates = List.filter (fun l -> feasible [ l ]) ordered in
  let arr = Array.of_list candidates in
  let k = Array.length arr in
  let suffix = Array.make (k + 1) 0. in
  for i = k - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) +. weight_of weights arr.(i)
  done;
  let budget = ref node_budget in
  let best = ref [] and best_w = ref 0. in
  (* cands is a list of candidate indices (into arr), in order. *)
  let rec go current current_w cands =
    decr budget;
    if !budget > 0 then begin
      if current_w > !best_w then begin
        best_w := current_w;
        best := current
      end;
      match cands with
      | [] -> ()
      | i :: rest ->
          if current_w +. suffix.(i) > !best_w then begin
            let l = arr.(i) in
            let with_l = l :: current in
            let filtered =
              List.filter (fun j -> feasible (arr.(j) :: with_l)) rest
            in
            go with_l (current_w +. weight_of weights l) filtered;
            go current current_w rest
          end
    end
  in
  let initial = List.init k Fun.id in
  go [] 0. initial;
  List.rev !best
