module I = Bg_sinr.Instance
module A = Bg_sinr.Affectance
module S = Bg_sinr.Separation

let run_with_trace ?(power = Bg_sinr.Power.uniform 1.) (t : I.t) =
  let links = Array.to_list t.I.links in
  let ordered =
    List.sort (Bg_sinr.Link.compare_by_decay t.I.space) links
  in
  let eta = t.I.zeta /. 2. in
  (* Indexed by link id, which need not be dense (sub-instances keep the
     original ids). *)
  let max_id =
    Array.fold_left (fun m l -> max m l.Bg_sinr.Link.id) (-1) t.I.links
  in
  let verdicts = Array.make (max_id + 1) `Not_separated in
  let x =
    List.fold_left
      (fun x lv ->
        if not (S.is_separated_from t ~eta lv x) then begin
          verdicts.(lv.Bg_sinr.Link.id) <- `Not_separated;
          x
        end
        else if
          A.out_affectance t power lv x +. A.in_affectance t power x lv > 0.5
        then begin
          verdicts.(lv.Bg_sinr.Link.id) <- `No_headroom;
          x
        end
        else begin
          verdicts.(lv.Bg_sinr.Link.id) <- `Accepted;
          lv :: x
        end)
      [] ordered
  in
  let s = List.filter (fun lv -> A.in_affectance t power x lv <= 1.) x in
  (List.rev s, verdicts)

let run ?power t = fst (run_with_trace ?power t)

let run_configured ?(power = Bg_sinr.Power.uniform 1.) ?eta ?(headroom = 0.5)
    ?(final_filter = true) (t : I.t) =
  let eta = match eta with Some e -> e | None -> t.I.zeta /. 2. in
  let ordered =
    List.sort (Bg_sinr.Link.compare_by_decay t.I.space)
      (Array.to_list t.I.links)
  in
  let x =
    List.fold_left
      (fun x lv ->
        let separated = eta <= 0. || S.is_separated_from t ~eta lv x in
        let headroom_ok =
          headroom = infinity
          || A.out_affectance t power lv x +. A.in_affectance t power x lv
             <= headroom
        in
        if separated && headroom_ok then lv :: x else x)
      [] ordered
  in
  let s =
    if final_filter then
      List.filter (fun lv -> A.in_affectance t power x lv <= 1.) x
    else x
  in
  List.rev s
