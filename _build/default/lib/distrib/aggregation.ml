type result = {
  tree_edges : (int * int) list;
  reached : int;
  slots : int;
  schedule : Bg_sinr.Link.t list list;
}

let communication_graph space ~power ~beta ~noise =
  let n = Bg_decay.Decay_space.n space in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for u = 0 to n - 1 do
      if u <> v then begin
        let signal = power /. Bg_decay.Decay_space.decay space v u in
        let ok = if noise = 0. then true else signal /. noise >= beta in
        if ok then edges := (v, u) :: !edges
      end
    done
  done;
  !edges

let run ?(power = 1.) ?(beta = 1.) ?(noise = 0.) space ~sink =
  let n = Bg_decay.Decay_space.n space in
  if sink < 0 || sink >= n then invalid_arg "Aggregation.run: sink out of range";
  (* Adjacency for BFS *toward* the sink: parent u can hear child v, so we
     explore reverse edges from the sink outward. *)
  let hears = Array.make_matrix n n false in
  List.iter
    (fun (v, u) -> hears.(u).(v) <- true)
    (communication_graph space ~power ~beta ~noise);
  let parent = Array.make n (-1) in
  let visited = Array.make n false in
  visited.(sink) <- true;
  let queue = Queue.create () in
  Queue.add sink queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    for v = 0 to n - 1 do
      (* u can hear v: v may forward its aggregate to u. *)
      if (not visited.(v)) && hears.(u).(v) then begin
        visited.(v) <- true;
        parent.(v) <- u;
        Queue.add v queue
      end
    done
  done;
  let tree_edges = ref [] in
  for v = n - 1 downto 0 do
    if parent.(v) >= 0 then tree_edges := (v, parent.(v)) :: !tree_edges
  done;
  let reached = Array.fold_left (fun a b -> if b then a + 1 else a) 0 visited in
  (* Schedule tree edges as links, deepest levels first, first-fit into
     feasible slots. *)
  let depth = Array.make n 0 in
  let rec depth_of v =
    if v = sink || parent.(v) < 0 then 0
    else begin
      if depth.(v) = 0 then depth.(v) <- 1 + depth_of parent.(v);
      depth.(v)
    end
  in
  let edges_by_depth =
    List.sort
      (fun (v1, _) (v2, _) -> compare (depth_of v2) (depth_of v1))
      !tree_edges
  in
  let instance =
    Bg_sinr.Instance.make ~noise ~beta ~zeta:1. space edges_by_depth
  in
  let pw = Bg_sinr.Power.uniform power in
  let slots : Bg_sinr.Link.t list list ref = ref [] in
  let place lv =
    let rec try_slots acc = function
      | [] -> slots := List.rev ([ lv ] :: acc)
      | s :: rest ->
          if Bg_sinr.Feasibility.is_feasible instance pw (lv :: s) then
            slots := List.rev_append acc ((lv :: s) :: rest)
          else try_slots (s :: acc) rest
    in
    try_slots [] !slots
  in
  Array.iter place instance.Bg_sinr.Instance.links;
  { tree_edges = !tree_edges; reached; slots = List.length !slots; schedule = !slots }
