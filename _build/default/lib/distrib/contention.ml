module I = Bg_sinr.Instance
module Rng = Bg_prelude.Rng

type policy = Fixed of float | Backoff of float

type result = {
  rounds : int;
  completed : bool;
  successes_by_round : int list;
}

let run ?(power = Bg_sinr.Power.uniform 1.) ?(max_rounds = 10_000) ~policy rng
    (t : I.t) =
  let links = t.I.links in
  let n = Array.length links in
  (match policy with
  | Fixed p | Backoff p ->
      if p <= 0. || p > 1. then invalid_arg "Contention.run: p out of (0,1]");
  let pending = Array.make n true in
  let prob =
    Array.make n (match policy with Fixed p | Backoff p -> p)
  in
  let remaining = ref n in
  let rounds = ref 0 in
  let history = ref [] in
  while !remaining > 0 && !rounds < max_rounds do
    incr rounds;
    let transmitting = ref [] in
    for i = n - 1 downto 0 do
      if pending.(i) && Rng.bernoulli rng prob.(i) then
        transmitting := i :: !transmitting
    done;
    let tx_links = List.map (fun i -> links.(i)) !transmitting in
    List.iter
      (fun i ->
        if Bg_sinr.Feasibility.sinr t power tx_links links.(i) >= t.I.beta
        then begin
          pending.(i) <- false;
          decr remaining
        end
        else
          match policy with
          | Backoff _ -> prob.(i) <- Float.max 1e-4 (prob.(i) /. 2.)
          | Fixed _ -> ())
      !transmitting;
    history := (n - !remaining) :: !history
  done;
  {
    rounds = !rounds;
    completed = !remaining = 0;
    successes_by_round = List.rev !history;
  }
