module Rng = Bg_prelude.Rng
module D = Bg_decay.Decay_space

type result = {
  rounds : int;
  completed : bool;
  colors : int array;
  palette : int;
  proper : bool;
}

(* Symmetrized decay-ball adjacency: u and v are neighbours when either can
   be in the other's ball (conflicts matter both ways). *)
let adjacency space ~radius =
  let n = D.n space in
  let adj = Array.make_matrix n n false in
  for v = 0 to n - 1 do
    List.iter
      (fun u ->
        adj.(v).(u) <- true;
        adj.(u).(v) <- true)
      (Sim.neighbourhood space ~radius v)
  done;
  adj

let max_degree space ~radius =
  let adj = adjacency space ~radius in
  let n = D.n space in
  let best = ref 0 in
  for v = 0 to n - 1 do
    let d = ref 0 in
    for u = 0 to n - 1 do
      if adj.(v).(u) then incr d
    done;
    if !d > !best then best := !d
  done;
  !best

(* Each round every node announces its (committed or proposed) color with a
   density-scaled probability.  A proposer that hears a neighbour claim its
   color re-proposes; it commits only after [commit_streak] of its own
   announcements went out without any conflicting claim heard in between —
   the verification-epoch pattern of the distributed coloring literature,
   proper w.h.p. *)
let run ?power ?(beta = 1.) ?(noise = 0.) ?(max_rounds = 5000) rng space
    ~radius =
  let n = D.n space in
  let power =
    match power with
    | Some p -> p
    | None -> if noise > 0. then beta *. noise *. radius *. 4. else 1.
  in
  let adj = adjacency space ~radius in
  let delta = max_degree space ~radius in
  let palette_size = delta + 1 in
  let commit_streak = 6 in
  let degree v =
    let d = ref 0 in
    for u = 0 to n - 1 do
      if adj.(v).(u) then incr d
    done;
    !d
  in
  let prob = Array.init n (fun v -> 1. /. float_of_int (1 + degree v)) in
  let committed = Array.make n (-1) in
  (* Colors known to be committed by some neighbour: forbidden. *)
  let forbidden = Array.make n [] in
  let fresh_proposal v =
    let free =
      List.filter
        (fun c -> not (List.mem c forbidden.(v)))
        (List.init palette_size Fun.id)
    in
    match free with
    | [] -> Rng.int rng palette_size (* cannot happen: |forbidden| <= Delta *)
    | _ -> List.nth free (Rng.int rng (List.length free))
  in
  let proposal = Array.init n (fun v -> fresh_proposal v) in
  let streak = Array.make n 0 in
  let uncolored = ref n in
  let rounds = ref 0 in
  while !uncolored > 0 && !rounds < max_rounds do
    incr rounds;
    let transmitters = ref [] in
    for v = n - 1 downto 0 do
      if Rng.bernoulli rng prob.(v) then transmitters := v :: !transmitters
    done;
    let txs = !transmitters in
    (* Reception: claims are (color, committed-flag) read off the sender's
       state at transmission time. *)
    if txs <> [] then
      for u = 0 to n - 1 do
        match
          Sim.decodes ~space ~noise ~beta ~power ~transmitters:txs ~receiver:u
        with
        | Some s when adj.(u).(s) ->
            let c_committed = committed.(s) >= 0 in
            let c = if c_committed then committed.(s) else proposal.(s) in
            if c_committed && not (List.mem c forbidden.(u)) then
              forbidden.(u) <- c :: forbidden.(u);
            if committed.(u) < 0 && proposal.(u) = c then begin
              (* Conflict heard: back off to a fresh color. *)
              proposal.(u) <- fresh_proposal u;
              streak.(u) <- 0
            end
            else if
              committed.(u) < 0 && List.mem proposal.(u) forbidden.(u)
            then begin
              proposal.(u) <- fresh_proposal u;
              streak.(u) <- 0
            end
        | Some _ | None -> ()
      done;
    (* A proposer that got on the air extends its verification streak. *)
    List.iter
      (fun v ->
        if committed.(v) < 0 then begin
          streak.(v) <- streak.(v) + 1;
          if streak.(v) >= commit_streak then begin
            committed.(v) <- proposal.(v);
            decr uncolored
          end
        end)
      txs
  done;
  let proper = ref true in
  for v = 0 to n - 1 do
    for u = v + 1 to n - 1 do
      if adj.(v).(u) && committed.(v) >= 0 && committed.(v) = committed.(u) then
        proper := false
    done
  done;
  let palette =
    List.length
      (List.sort_uniq compare
         (List.filter (fun c -> c >= 0) (Array.to_list committed)))
  in
  {
    rounds = !rounds;
    completed = !uncolored = 0;
    colors = committed;
    palette;
    proper = !proper;
  }
