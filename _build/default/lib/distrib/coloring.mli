(** Distributed (Delta+1)-coloring in the physical model — the [67] family
    of §3.3: every node must end with a color different from all its
    decay-ball neighbours, learning about conflicts only through SINR
    reception.

    Protocol (randomized, Luby-style over the simulated channel): an
    uncolored node proposes a random color from [0 .. Delta] and announces
    it with the usual density-scaled probability; a node that *hears* a
    neighbour's announcement records the claim; a proposal is committed in
    the next round unless a heard neighbour claimed the same color
    earlier.  Correctness (properness) is verified against the decay-ball
    graph after the run. *)

type result = {
  rounds : int;
  completed : bool;  (** every node committed a color *)
  colors : int array;  (** committed color per node; -1 if uncolored *)
  palette : int;  (** number of distinct colors used *)
  proper : bool;  (** no two decay-ball neighbours share a color *)
}

val run :
  ?power:float -> ?beta:float -> ?noise:float -> ?max_rounds:int ->
  Bg_prelude.Rng.t -> Bg_decay.Decay_space.t -> radius:float -> result
(** Run until every node is colored or [max_rounds] (default 5000). *)

val max_degree : Bg_decay.Decay_space.t -> radius:float -> int
(** Delta of the decay-ball graph (with symmetrized adjacency). *)
