(** Global (multi-hop) broadcast over a decay space — the [13] family from
    §3.3: one source's message must reach every node, relayed by informed
    nodes transmitting with density-scaled probabilities under thresholded
    SINR.  The round count is governed by the network diameter of the
    decay-ball graph and the fading parameter. *)

type result = {
  rounds : int;  (** rounds until everyone was informed (or budget) *)
  completed : bool;
  informed : int;  (** nodes holding the message at the end *)
  per_round_informed : int list;
      (** cumulative informed counts, one entry per round (newest last) *)
}

val run :
  ?power:float -> ?beta:float -> ?noise:float -> ?max_rounds:int ->
  Bg_prelude.Rng.t -> Bg_decay.Decay_space.t -> source:int -> radius:float ->
  result
(** Flood from [source].  [radius] defines the decay-ball neighbourhoods
    used for the density estimate (and hence transmission probabilities);
    reception itself is pure SINR.  Defaults as in
    {!Local_broadcast.run}. *)

val eccentricity : Bg_decay.Decay_space.t -> radius:float -> int -> int option
(** Hop eccentricity of a node in the decay-ball graph ([None] if some
    node is unreachable) — the lower bound any broadcast must pay. *)
