(** Connectivity of decay-space deployments (the [51], [34], [31] family).

    Two nodes are linked at uniform power [P] when each can decode the
    other transmitting alone against the noise; the deployment is connected
    when the resulting undirected graph is.  The minimum power for
    connectivity is a pure function of the decay matrix — no geometry —
    and seeds the aggregation / connectivity-scheduling pipeline. *)

val bidirectional_graph :
  Bg_decay.Decay_space.t -> power:float -> beta:float -> noise:float ->
  (int * int) list
(** Undirected edges [(u, v)], [u < v], decodable solo in both
    directions. *)

val is_connected :
  Bg_decay.Decay_space.t -> power:float -> beta:float -> noise:float -> bool
(** Whether the bidirectional graph is connected (union-find). *)

val min_uniform_power :
  Bg_decay.Decay_space.t -> beta:float -> noise:float -> float option
(** The smallest uniform power connecting the deployment: binary search
    over the candidate powers [beta * noise * max(f(u,v), f(v,u))].
    [None] only for [noise <= 0] (any positive power connects) or an empty
    space; requires at least 2 nodes otherwise trivially connected. *)

val components :
  Bg_decay.Decay_space.t -> power:float -> beta:float -> noise:float ->
  int list list
(** Connected components (each sorted) of the bidirectional graph. *)
