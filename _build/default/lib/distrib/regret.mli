(** Distributed capacity by no-regret dynamics (the [14],[1] family that
    Proposition 1 transfers to decay spaces).

    Every link independently runs multiplicative weights over the two
    actions transmit / sleep: transmitting pays 1 on success and [-penalty]
    on failure, sleeping pays 0.  Each link only observes its own outcome —
    fully distributed.  The dynamics converge (in the amicability-governed
    sense of §4.1) to a state whose per-round successful-transmission count
    is a constant fraction of the optimum; the experiments track throughput
    and convergence time as the decay space's parameters grow. *)

type result = {
  rounds : int;  (** rounds simulated *)
  avg_successes : float;
      (** mean successful transmissions per round over the last quarter *)
  final_active : Bg_sinr.Link.t list;
      (** links whose transmit probability ended above 1/2 *)
  active_feasible : bool;  (** whether that active set is SINR-feasible *)
  convergence_round : int option;
      (** first round after which the active set never changed *)
}

val run :
  ?power:Bg_sinr.Power.t -> ?rounds:int -> ?learning_rate:float ->
  ?penalty:float -> ?jam_prob:float -> Bg_prelude.Rng.t ->
  Bg_sinr.Instance.t -> result
(** Simulate the dynamics.  Defaults: 800 rounds, learning rate 0.25,
    penalty 0.6.  [jam_prob] (default 0) lets an oblivious jammer destroy
    each transmission independently with that probability — the
    jamming-resistant-learning setting of [11] that the paper notes
    carries over to decay spaces; no-regret dynamics degrade gracefully
    rather than collapse.  Deterministic given the generator. *)
