module D = Bg_decay.Decay_space
module Uf = Bg_prelude.Union_find

(* Compare in the same form the candidate thresholds are computed in
   (power >= beta * noise * f), so a candidate power includes its own
   edge exactly. *)
let decodes_solo space ~power ~beta ~noise u v =
  noise <= 0. || power >= beta *. noise *. D.decay space u v

let bidirectional_graph space ~power ~beta ~noise =
  let n = D.n space in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if
        decodes_solo space ~power ~beta ~noise u v
        && decodes_solo space ~power ~beta ~noise v u
      then edges := (u, v) :: !edges
    done
  done;
  !edges

let union_of space ~power ~beta ~noise =
  let n = D.n space in
  let uf = Uf.create n in
  List.iter
    (fun (u, v) -> ignore (Uf.union uf u v))
    (bidirectional_graph space ~power ~beta ~noise);
  uf

let is_connected space ~power ~beta ~noise =
  D.n space <= 1 || Uf.count (union_of space ~power ~beta ~noise) = 1

let min_uniform_power space ~beta ~noise =
  let n = D.n space in
  if n = 0 then None
  else if n = 1 then Some 0.
  else if noise <= 0. then None
  else begin
    (* Candidate thresholds: the power at which each (unordered) pair's
       worse direction becomes decodable. *)
    let cands = ref [] in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        cands :=
          beta *. noise *. Float.max (D.decay space u v) (D.decay space v u)
          :: !cands
      done
    done;
    let sorted = List.sort_uniq Float.compare !cands in
    let arr = Array.of_list sorted in
    if not (is_connected space ~power:arr.(Array.length arr - 1) ~beta ~noise)
    then None
    else begin
      (* Binary search: connectivity is monotone in power. *)
      let lo = ref 0 and hi = ref (Array.length arr - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if is_connected space ~power:arr.(mid) ~beta ~noise then hi := mid
        else lo := mid + 1
      done;
      Some arr.(!lo)
    end
  end

let components space ~power ~beta ~noise =
  let n = D.n space in
  let uf = union_of space ~power ~beta ~noise in
  let tbl = Hashtbl.create 8 in
  for v = n - 1 downto 0 do
    let root = Uf.find uf v in
    let existing = Option.value ~default:[] (Hashtbl.find_opt tbl root) in
    Hashtbl.replace tbl root (v :: existing)
  done;
  Hashtbl.fold (fun _ vs acc -> vs :: acc) tbl []
  |> List.sort compare
