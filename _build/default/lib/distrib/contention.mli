(** Distributed contention resolution (Kesselheim–Vöcking [45], §2.3):
    every link holds one packet; each round a pending link transmits with
    its current probability, exits on success, and otherwise adapts.  The
    total time until all links have succeeded is the distributed analogue
    of a schedule, and the analysis transfers to decay spaces with the
    usual parameter pricing.

    Two probability policies:
    - [Fixed p]: constant transmission probability;
    - [Backoff]: start at [p0] and halve after each failed transmission
      (decay-space-oblivious exponential backoff; resets are not needed
      because links leave on success). *)

type policy = Fixed of float | Backoff of float

type result = {
  rounds : int;  (** rounds until all links succeeded (or budget ran out) *)
  completed : bool;
  successes_by_round : int list;
      (** cumulative count of finished links per round *)
}

val run :
  ?power:Bg_sinr.Power.t -> ?max_rounds:int -> policy:policy ->
  Bg_prelude.Rng.t -> Bg_sinr.Instance.t -> result
