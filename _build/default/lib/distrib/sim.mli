(** Synchronous-round SINR network simulator over a decay space.

    Each round a set of senders transmit simultaneously; reception is
    decided by the thresholded SINR computed from the decay matrix (§2.1) —
    exactly the physical model the distributed algorithms of §3 are
    analysed in.  Both a link-level view (does link v's own transmission
    get through?) and a node-level view (which transmitter, if any, does a
    listening node decode?) are provided. *)

val link_outcomes :
  Bg_sinr.Instance.t -> Bg_sinr.Power.t -> transmitting:Bg_sinr.Link.t list ->
  (Bg_sinr.Link.t * bool) list
(** For every transmitting link, whether its receiver decodes it against
    the interference of all the others. *)

val decodes :
  space:Bg_decay.Decay_space.t -> noise:float -> beta:float -> power:float ->
  transmitters:int list -> receiver:int -> int option
(** Node-level capture: among uniform-power [transmitters], the one the
    [receiver] decodes ([None] if no SINR clears [beta]).  A receiver that
    is itself transmitting decodes nothing (half-duplex). *)

val neighbourhood :
  Bg_decay.Decay_space.t -> radius:float -> int -> int list
(** Nodes whose decay *from* the given node is at most [radius] — the
    communication neighbourhood used by local broadcast (excludes the node
    itself). *)
