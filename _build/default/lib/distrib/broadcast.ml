module Rng = Bg_prelude.Rng
module D = Bg_decay.Decay_space

type result = {
  rounds : int;
  completed : bool;
  informed : int;
  per_round_informed : int list;
}

let eccentricity space ~radius v =
  let n = D.n space in
  let dist = Array.make n (-1) in
  dist.(v) <- 0;
  let queue = Queue.create () in
  Queue.add v queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun w ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(u) + 1;
          Queue.add w queue
        end)
      (Sim.neighbourhood space ~radius u)
  done;
  if Array.exists (fun d -> d < 0) dist then None
  else Some (Array.fold_left max 0 dist)

let run ?power ?(beta = 1.) ?(noise = 0.) ?(max_rounds = 5000) rng space
    ~source ~radius =
  let n = D.n space in
  if source < 0 || source >= n then invalid_arg "Broadcast.run: source range";
  let power =
    match power with
    | Some p -> p
    | None -> if noise > 0. then beta *. noise *. radius *. 4. else 1.
  in
  let neighbours = Array.init n (Sim.neighbourhood space ~radius) in
  let prob =
    Array.init n (fun v -> 1. /. float_of_int (1 + List.length neighbours.(v)))
  in
  let informed = Array.make n false in
  informed.(source) <- true;
  let informed_count = ref 1 in
  let rounds = ref 0 in
  let history = ref [] in
  while !informed_count < n && !rounds < max_rounds do
    incr rounds;
    let transmitters = ref [] in
    for v = n - 1 downto 0 do
      if informed.(v) && Rng.bernoulli rng prob.(v) then
        transmitters := v :: !transmitters
    done;
    let txs = !transmitters in
    if txs <> [] then
      for u = 0 to n - 1 do
        if not informed.(u) then
          match
            Sim.decodes ~space ~noise ~beta ~power ~transmitters:txs ~receiver:u
          with
          | Some _ ->
              informed.(u) <- true;
              incr informed_count
          | None -> ()
      done;
    history := !informed_count :: !history
  done;
  {
    rounds = !rounds;
    completed = !informed_count = n;
    informed = !informed_count;
    per_round_informed = List.rev !history;
  }
