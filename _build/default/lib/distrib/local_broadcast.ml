module Rng = Bg_prelude.Rng

type result = {
  rounds : int;
  completed : bool;
  deliveries : int;
  pairs : int;
}

let run ?power ?(beta = 1.) ?(noise = 0.) ?(max_rounds = 5000) rng space
    ~radius =
  let n = Bg_decay.Decay_space.n space in
  let power =
    match power with
    | Some p -> p
    | None -> if noise > 0. then beta *. noise *. radius *. 4. else 1.
  in
  let neighbours = Array.init n (Sim.neighbourhood space ~radius) in
  (* Transmission probability: keep the expected number of transmitters in
     each neighbourhood around one — the constant-density invariant of the
     randomized local-broadcast algorithms. *)
  let prob =
    Array.init n (fun v -> 1. /. float_of_int (1 + List.length neighbours.(v)))
  in
  let pending = Hashtbl.create 64 in
  Array.iteri
    (fun v ns -> List.iter (fun u -> Hashtbl.replace pending (v, u) ()) ns)
    neighbours;
  let pairs = Hashtbl.length pending in
  let rounds = ref 0 in
  while Hashtbl.length pending > 0 && !rounds < max_rounds do
    incr rounds;
    let transmitters = ref [] in
    for v = n - 1 downto 0 do
      if Rng.bernoulli rng prob.(v) then transmitters := v :: !transmitters
    done;
    let txs = !transmitters in
    if txs <> [] then
      for u = 0 to n - 1 do
        match
          Sim.decodes ~space ~noise ~beta ~power ~transmitters:txs ~receiver:u
        with
        | Some s when Hashtbl.mem pending (s, u) -> Hashtbl.remove pending (s, u)
        | Some _ | None -> ()
      done
  done;
  {
    rounds = !rounds;
    completed = Hashtbl.length pending = 0;
    deliveries = pairs - Hashtbl.length pending;
    pairs;
  }
