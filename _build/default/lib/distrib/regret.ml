module I = Bg_sinr.Instance
module Rng = Bg_prelude.Rng

type result = {
  rounds : int;
  avg_successes : float;
  final_active : Bg_sinr.Link.t list;
  active_feasible : bool;
  convergence_round : int option;
}

let run ?(power = Bg_sinr.Power.uniform 1.) ?(rounds = 800)
    ?(learning_rate = 0.25) ?(penalty = 0.6) ?(jam_prob = 0.) rng (t : I.t) =
  if jam_prob < 0. || jam_prob > 1. then
    invalid_arg "Regret.run: jam_prob out of [0,1]";
  let n = Array.length t.I.links in
  (* Weight of the transmit action; sleep is fixed at weight 1. *)
  let w = Array.make n 1. in
  let prob i = w.(i) /. (w.(i) +. 1.) in
  let successes_tail = ref 0 and tail_rounds = ref 0 in
  let last_active : bool array = Array.make n false in
  let last_change = ref 0 in
  for round = 1 to rounds do
    let transmitting =
      Array.to_list t.I.links
      |> List.filter (fun l -> Rng.bernoulli rng (prob l.Bg_sinr.Link.id))
    in
    let outcomes = Sim.link_outcomes t power ~transmitting in
    let outcomes =
      if jam_prob = 0. then outcomes
      else
        List.map
          (fun (l, ok) -> (l, ok && not (Rng.bernoulli rng jam_prob)))
          outcomes
    in
    List.iter
      (fun (l, ok) ->
        let i = l.Bg_sinr.Link.id in
        let payoff = if ok then 1. else -.penalty in
        w.(i) <- w.(i) *. exp (learning_rate *. payoff);
        (* Keep weights in a sane dynamic range. *)
        w.(i) <- Bg_prelude.Numerics.clamp ~lo:1e-6 ~hi:1e6 w.(i))
      outcomes;
    (* Track the active-set trajectory. *)
    for i = 0 to n - 1 do
      let active = prob i > 0.5 in
      if active <> last_active.(i) then begin
        last_active.(i) <- active;
        last_change := round
      end
    done;
    if round > 3 * rounds / 4 then begin
      incr tail_rounds;
      successes_tail :=
        !successes_tail + List.length (List.filter snd outcomes)
    end
  done;
  let final_active =
    Array.to_list t.I.links
    |> List.filter (fun l -> prob l.Bg_sinr.Link.id > 0.5)
  in
  {
    rounds;
    avg_successes =
      (if !tail_rounds = 0 then 0.
       else float_of_int !successes_tail /. float_of_int !tail_rounds);
    final_active;
    active_feasible = Bg_sinr.Feasibility.is_feasible t power final_active;
    convergence_round = (if !last_change < rounds then Some !last_change else None);
  }
