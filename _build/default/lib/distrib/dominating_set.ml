module Rng = Bg_prelude.Rng
module D = Bg_decay.Decay_space

type result = {
  rounds : int;
  completed : bool;
  leaders : int list;
  dominating : bool;
  size_ratio : float;
}

let closed_ball space ~radius v = v :: Sim.neighbourhood space ~radius v

let greedy_centralized space ~radius =
  let n = D.n space in
  let balls = Array.init n (closed_ball space ~radius) in
  (* Coverage is symmetrized: u covers v if v in ball(u) or u in ball(v). *)
  let covers = Array.make_matrix n n false in
  for u = 0 to n - 1 do
    List.iter
      (fun v ->
        covers.(u).(v) <- true;
        covers.(v).(u) <- true)
      balls.(u)
  done;
  let uncovered = Hashtbl.create n in
  for v = 0 to n - 1 do
    Hashtbl.replace uncovered v ()
  done;
  let leaders = ref [] in
  while Hashtbl.length uncovered > 0 do
    let best = ref (-1) and best_gain = ref (-1) in
    for u = 0 to n - 1 do
      let gain = ref 0 in
      Hashtbl.iter (fun v () -> if covers.(u).(v) then incr gain) uncovered;
      if !gain > !best_gain then begin
        best := u;
        best_gain := !gain
      end
    done;
    let u = !best in
    leaders := u :: !leaders;
    let drop = ref [] in
    Hashtbl.iter (fun v () -> if covers.(u).(v) then drop := v :: !drop) uncovered;
    List.iter (Hashtbl.remove uncovered) !drop
  done;
  List.sort compare !leaders

let run ?power ?(beta = 1.) ?(noise = 0.) ?(max_rounds = 5000) rng space
    ~radius =
  let n = D.n space in
  let power =
    match power with
    | Some p -> p
    | None -> if noise > 0. then beta *. noise *. radius *. 4. else 1.
  in
  let neighbours = Array.init n (Sim.neighbourhood space ~radius) in
  let adj = Array.make_matrix n n false in
  Array.iteri
    (fun v ns ->
      List.iter
        (fun u ->
          adj.(v).(u) <- true;
          adj.(u).(v) <- true)
        ns)
    neighbours;
  let prob =
    Array.init n (fun v -> 1. /. float_of_int (1 + List.length neighbours.(v)))
  in
  (* States: `Undecided | `Nominee of streak | `Leader | `Dominated.  The
     protocol runs until every node is a leader or dominated — nominees
     are still unresolved. *)
  let state = Array.make n `Undecided in
  let commit_streak = 5 in
  let pending () =
    Array.exists
      (fun s -> match s with `Undecided | `Nominee _ -> true | _ -> false)
      state
  in
  let rounds = ref 0 in
  while pending () && !rounds < max_rounds do
    incr rounds;
    (* Undecided nodes nominate themselves with probability p. *)
    for v = 0 to n - 1 do
      if state.(v) = `Undecided && Rng.bernoulli rng prob.(v) then
        state.(v) <- `Nominee 0
    done;
    let transmitters = ref [] in
    for v = n - 1 downto 0 do
      match state.(v) with
      | `Nominee _ | `Leader ->
          if Rng.bernoulli rng prob.(v) then transmitters := v :: !transmitters
      | `Undecided | `Dominated -> ()
    done;
    let txs = !transmitters in
    if txs <> [] then
      for u = 0 to n - 1 do
        match
          Sim.decodes ~space ~noise ~beta ~power ~transmitters:txs ~receiver:u
        with
        | Some s when adj.(u).(s) -> begin
            match state.(u) with
            | `Undecided ->
                (* Only a committed leader dominates; a nominee may still
                   lose the race and be dominated itself. *)
                if state.(s) = `Leader then state.(u) <- `Dominated
            | `Nominee _ -> begin
                (* Defer to a heard leader; also defer to a heard nominee
                   with smaller id (deterministic tie-break). *)
                match state.(s) with
                | `Leader ->
                    state.(u) <- `Dominated
                | `Nominee _ when s < u ->
                    state.(u) <- `Nominee 0
                    (* reset streak; stays in the race *)
                | _ -> ()
              end
            | `Leader | `Dominated -> ()
          end
        | Some _ | None -> ()
      done;
    (* Surviving nominees that transmitted extend their streak. *)
    List.iter
      (fun v ->
        match state.(v) with
        | `Nominee k ->
            if k + 1 >= commit_streak then state.(v) <- `Leader
            else state.(v) <- `Nominee (k + 1)
        | `Leader | `Undecided | `Dominated -> ())
      txs
  done;
  let leaders = ref [] in
  for v = n - 1 downto 0 do
    match state.(v) with
    | `Leader | `Nominee _ -> leaders := v :: !leaders
    | `Undecided | `Dominated -> ()
  done;
  let leaders = !leaders in
  let dominated_ok v =
    List.mem v leaders || List.exists (fun u -> adj.(v).(u)) leaders
  in
  let dominating = List.for_all dominated_ok (List.init n Fun.id) in
  let greedy = greedy_centralized space ~radius in
  {
    rounds = !rounds;
    completed = not (pending ());
    leaders;
    dominating;
    size_ratio =
      float_of_int (List.length leaders)
      /. float_of_int (max 1 (List.length greedy));
  }
