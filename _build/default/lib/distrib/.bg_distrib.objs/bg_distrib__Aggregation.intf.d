lib/distrib/aggregation.mli: Bg_decay Bg_sinr
