lib/distrib/coloring.mli: Bg_decay Bg_prelude
