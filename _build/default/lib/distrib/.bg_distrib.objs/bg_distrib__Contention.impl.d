lib/distrib/contention.ml: Array Bg_prelude Bg_sinr Float List
