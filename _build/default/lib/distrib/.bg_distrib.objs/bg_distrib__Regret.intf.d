lib/distrib/regret.mli: Bg_prelude Bg_sinr
