lib/distrib/local_broadcast.mli: Bg_decay Bg_prelude
