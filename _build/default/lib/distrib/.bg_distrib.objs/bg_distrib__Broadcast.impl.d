lib/distrib/broadcast.ml: Array Bg_decay Bg_prelude List Queue Sim
