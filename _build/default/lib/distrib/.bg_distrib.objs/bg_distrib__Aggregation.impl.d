lib/distrib/aggregation.ml: Array Bg_decay Bg_sinr List Queue
