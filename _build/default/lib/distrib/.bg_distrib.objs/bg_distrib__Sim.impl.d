lib/distrib/sim.ml: Bg_decay Bg_sinr List
