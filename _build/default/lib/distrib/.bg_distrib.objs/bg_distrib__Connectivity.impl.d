lib/distrib/connectivity.ml: Array Bg_decay Bg_prelude Float Hashtbl List Option
