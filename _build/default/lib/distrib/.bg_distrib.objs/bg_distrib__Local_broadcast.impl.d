lib/distrib/local_broadcast.ml: Array Bg_decay Bg_prelude Hashtbl List Sim
