lib/distrib/dominating_set.mli: Bg_decay Bg_prelude
