lib/distrib/regret.ml: Array Bg_prelude Bg_sinr List Sim
