lib/distrib/contention.mli: Bg_prelude Bg_sinr
