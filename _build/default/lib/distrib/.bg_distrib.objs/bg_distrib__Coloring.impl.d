lib/distrib/coloring.ml: Array Bg_decay Bg_prelude Fun List Sim
