lib/distrib/broadcast.mli: Bg_decay Bg_prelude
