lib/distrib/sim.mli: Bg_decay Bg_sinr
