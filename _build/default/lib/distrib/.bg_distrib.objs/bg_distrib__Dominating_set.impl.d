lib/distrib/dominating_set.ml: Array Bg_decay Bg_prelude Fun Hashtbl List Sim
