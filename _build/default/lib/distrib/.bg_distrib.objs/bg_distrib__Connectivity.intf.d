lib/distrib/connectivity.mli: Bg_decay
