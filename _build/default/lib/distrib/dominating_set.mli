(** Distributed dominating set under the physical model — the [55] family
    of §3.3: elect a small set of leaders such that every node has a
    leader in its decay-ball neighbourhood, using only SINR reception.

    Protocol: undecided nodes self-nominate with a density-scaled
    probability and announce; a node that hears a nominated neighbour
    becomes dominated; a nominee that survives [streak] announcements
    without hearing an earlier leader in its ball becomes a leader.
    Domination is verified against the decay-ball graph after the run. *)

type result = {
  rounds : int;
  completed : bool;  (** every node is a leader or hears one *)
  leaders : int list;
  dominating : bool;  (** verified against the ball graph *)
  size_ratio : float;
      (** |leaders| / (greedy centralized dominating set size) *)
}

val run :
  ?power:float -> ?beta:float -> ?noise:float -> ?max_rounds:int ->
  Bg_prelude.Rng.t -> Bg_decay.Decay_space.t -> radius:float -> result

val greedy_centralized : Bg_decay.Decay_space.t -> radius:float -> int list
(** Classical greedy set-cover dominating set on the ball graph — the
    comparison baseline. *)
