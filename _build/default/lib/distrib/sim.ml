module I = Bg_sinr.Instance

let link_outcomes (t : I.t) power ~transmitting =
  List.map
    (fun lv ->
      (lv, Bg_sinr.Feasibility.sinr t power transmitting lv >= t.I.beta))
    transmitting

let decodes ~space ~noise ~beta ~power ~transmitters ~receiver =
  if List.mem receiver transmitters then None
  else begin
    let strengths =
      List.map
        (fun s -> (s, power /. Bg_decay.Decay_space.decay space s receiver))
        transmitters
    in
    let total = List.fold_left (fun a (_, p) -> a +. p) 0. strengths in
    let best =
      List.fold_left
        (fun acc (s, p) ->
          match acc with
          | Some (_, bp) when bp >= p -> acc
          | _ -> Some (s, p))
        None strengths
    in
    match best with
    | None -> None
    | Some (s, p) ->
        let interference = noise +. (total -. p) in
        let sinr = if interference = 0. then infinity else p /. interference in
        if sinr >= beta then Some s else None
  end

let neighbourhood space ~radius v =
  let n = Bg_decay.Decay_space.n space in
  let acc = ref [] in
  for u = n - 1 downto 0 do
    if u <> v && Bg_decay.Decay_space.decay space v u <= radius then
      acc := u :: !acc
  done;
  !acc
