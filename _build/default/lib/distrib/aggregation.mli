(** Data aggregation (convergecast) over a decay space — the
    connectivity-and-aggregation family ([6], [34], [31]) that §3 transfers
    to decay spaces.

    Builds a shortest-path (in hop count) aggregation tree over the
    "solo-decodable" graph — [u] can hear [v] when [v] transmits alone —
    then schedules the tree edges into SINR-feasible slots, leaves first.
    The number of slots is the aggregation latency. *)

type result = {
  tree_edges : (int * int) list;  (** (child, parent) pairs, all nodes reached *)
  reached : int;  (** nodes connected to the sink (including it) *)
  slots : int;  (** feasible slots used to flush the tree *)
  schedule : Bg_sinr.Link.t list list;  (** the slot contents *)
}

val communication_graph :
  Bg_decay.Decay_space.t -> power:float -> beta:float -> noise:float ->
  (int * int) list
(** Directed edges [(v, u)] such that [u] decodes [v] transmitting alone. *)

val run :
  ?power:float -> ?beta:float -> ?noise:float -> Bg_decay.Decay_space.t ->
  sink:int -> result
(** Aggregate everything to [sink].  Unreachable nodes are reported via
    [reached] < n. *)
