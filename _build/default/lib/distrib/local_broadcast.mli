(** Randomized local broadcast on a decay space (the annulus-argument
    algorithm family of §3.3: [22, 68, 69, 32]).

    Every node holds one message and must deliver it to every node of its
    decay-ball neighbourhood [B(v, radius)].  Nodes transmit independently
    each round with a density-scaled probability (the expected number of
    transmitters per neighbourhood stays constant — the invariant whose
    interference analysis is exactly Theorem 2's annulus argument); a
    delivery happens when the receiver decodes the sender under thresholded
    SINR.  The round count until completion is governed by the fading
    parameter [gamma(radius)] of the space. *)

type result = {
  rounds : int;  (** rounds until every neighbour pair was served *)
  completed : bool;  (** false if [max_rounds] ran out first *)
  deliveries : int;  (** number of (sender, neighbour) pairs served *)
  pairs : int;  (** total neighbour pairs to serve *)
}

val run :
  ?power:float -> ?beta:float -> ?noise:float -> ?max_rounds:int ->
  Bg_prelude.Rng.t -> Bg_decay.Decay_space.t -> radius:float -> result
(** Simulate until completion or [max_rounds] (default 5000).  [power]
    defaults to [beta * noise * radius * 4] when noise is positive (enough
    margin to decode across the neighbourhood), else 1. *)
