module Rng = Bg_prelude.Rng

let uniform n = Decay_space.of_fn ~name:"uniform" n (fun _ _ -> 1.)

let star ~k ~r =
  if k < 1 then invalid_arg "Spaces.star: need k >= 1";
  if r <= 0. then invalid_arg "Spaces.star: need r > 0";
  (* Index 0: centre x0.  Index 1: the close leaf x_{-1} at distance r.
     Indices 2 .. k+1: far leaves at distance k^2.  Leaf-to-leaf distances
     go through the centre (star metric). *)
  let far = float_of_int (k * k) in
  let leg i = if i = 1 then r else far in
  Decay_space.of_fn ~name:"star" (k + 2) (fun i j ->
      if i = 0 then leg j else if j = 0 then leg i else leg i +. leg j)

let welzl ~n ~eps =
  if n < 1 then invalid_arg "Spaces.welzl: need n >= 1";
  if eps <= 0. || eps > 0.25 then
    invalid_arg "Spaces.welzl: need 0 < eps <= 1/4";
  (* Index 0 plays v_{-1}; index i+1 plays v_i for i = 0..n. *)
  let dist i j =
    (* i < j in construction index space (v order). *)
    let hi = max i j and lo = min i j in
    if lo = 0 then (2. ** float_of_int (hi - 1)) -. eps
    else 2. ** float_of_int (hi - 1)
  in
  Decay_space.of_fn ~name:"welzl" (n + 2) dist

let three_point ~q =
  if q <= 0. then invalid_arg "Spaces.three_point: q must be positive";
  let f = [| [| 0.; 1.; 2. *. q |]; [| 1.; 0.; q |]; [| 2. *. q; q; 0. |] |] in
  Decay_space.of_matrix ~name:"three-point" f

let mis_construction g =
  let n = Bg_graph.Graph.n g in
  if n < 2 then invalid_arg "Spaces.mis_construction: need >= 2 vertices";
  (* Edge pairs interfere at twice the signal strength (decay 1/2 < f_vv),
     so they can never coexist — not even under power control, since the
     product of their mutual normalized gains is 4 > 1.  Non-edge pairs
     interfere at 1/n of the signal, so any independent set is feasible
     under uniform power.  (The arXiv text lists the two constants with the
     roles of gain and decay swapped; this is the reading under which the
     theorem's proof arithmetic goes through.) *)
  let cross i j =
    if Bg_graph.Graph.has_edge g i j then 0.5 else float_of_int n
  in
  (* Node u < n is sender s_u; node n + u is receiver r_u.  All decays
     between distinct nodes follow the edge pattern of the underlying
     vertices, with the link decay f(s_i, r_i) = 1. *)
  let vertex u = if u < n then u else u - n in
  let space =
    Decay_space.of_fn ~name:"thm3-mis" (2 * n) (fun u v ->
        let i = vertex u and j = vertex v in
        if i = j then 1. else cross i j)
  in
  let links = List.init n (fun i -> (i, n + i)) in
  (space, links)

let two_line g ~alpha' ?(delta = 0.25) () =
  let n = Bg_graph.Graph.n g in
  if n < 2 then invalid_arg "Spaces.two_line: need >= 2 vertices";
  if alpha' < 1. then invalid_arg "Spaces.two_line: need alpha' >= 1";
  if delta <= 0. || delta >= 0.5 then
    invalid_arg "Spaces.two_line: need 0 < delta < 1/2";
  let fn = float_of_int n in
  let same_line i j = float_of_int (abs (i - j)) ** alpha' in
  let cross i j =
    if i = j then fn ** alpha'
    else if Bg_graph.Graph.has_edge g i j then (fn ** alpha') -. delta
    else fn ** (alpha' +. 1.)
  in
  (* Node u < n is sender s_u on the left line; node n + u is receiver r_u
     on the right line. *)
  let space =
    Decay_space.of_fn ~name:"thm6-two-line" (2 * n) (fun u v ->
        match (u < n, v < n) with
        | true, true -> same_line u v
        | false, false -> same_line (u - n) (v - n)
        | true, false -> cross u (v - n)
        | false, true -> cross v (u - n))
  in
  let links = List.init n (fun i -> (i, n + i)) in
  (space, links)

let random_points rng ~n ~side =
  List.init n (fun _ ->
      Bg_geom.Point.make (Rng.float rng side) (Rng.float rng side))

let grid_points ~rows ~cols ~spacing =
  List.concat_map
    (fun r ->
      List.init cols (fun c ->
          Bg_geom.Point.make (float_of_int c *. spacing) (float_of_int r *. spacing)))
    (List.init rows Fun.id)

let line_points ~n ~spacing =
  List.init n (fun i -> Bg_geom.Point.make (float_of_int i *. spacing) 0.)

let clustered_points rng ~clusters ~per_cluster ~side ~spread =
  List.concat_map
    (fun _ ->
      let cx = Rng.float rng side and cy = Rng.float rng side in
      List.init per_cluster (fun _ ->
          Bg_geom.Point.make
            (cx +. Rng.gaussian ~sigma:spread rng)
            (cy +. Rng.gaussian ~sigma:spread rng)))
    (List.init clusters Fun.id)

let random_points_3d rng ~n ~side =
  List.init n (fun _ ->
      Bg_geom.Point3.make (Rng.float rng side) (Rng.float rng side)
        (Rng.float rng side))

let of_points_3d ?(name = "space-3d") ~alpha points =
  Decay_space.of_metric ~name ~alpha (Bg_geom.Metric.of_points3 points)

let exponential_line ~n =
  if n < 2 then invalid_arg "Spaces.exponential_line: need n >= 2";
  let coord i = 2. ** float_of_int i in
  Decay_space.of_fn ~name:"exp-line" n (fun i j ->
      Float.abs (coord i -. coord j))

let perturbed rng ~alpha ~sigma points =
  let base = Decay_space.of_points ~name:"perturbed" ~alpha points in
  if sigma = 0. then base
  else
    Decay_space.map
      (fun _ _ f -> f *. Rng.lognormal ~mu:0. ~sigma rng)
      base
