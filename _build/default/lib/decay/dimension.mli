(** Dimension parameters of decay spaces.

    Three growth measures appear in the paper: the Assouad (doubling)
    dimension of the decay space itself (Definition 3.2, used by Theorem 2),
    the doubling dimension of the induced quasi-metric (used by Theorems 4
    and 5 as [A']), and the independence dimension (Definition 4.1, Welzl's
    guards).  All are estimated over all (or sampled) centres and the radii
    occurring in the space. *)

(** {2 Assouad dimension of the decay space} *)

val packing_growth :
  ?exact_limit:int -> ?centres:int list -> Decay_space.t -> q:float -> int
(** [packing_growth d ~q] estimates [g_D(q)]: the largest [r/q]-packing
    fitting in any ball [B(x, r)], maximized over centres [x] (all by
    default) and over ball radii drawn from the decay values around each
    centre. *)

val assouad : ?exact_limit:int -> ?qs:float list -> Decay_space.t -> float
(** Assouad dimension estimate: the log-log regression slope of [g(q)]
    against [q] over a grid of [q] values (default [2;4;8;16]) — the
    exponent [A] in [g(q) = C * q^A], absorbing the constant that
    Definition 3.2 carries explicitly.  For geometric decay [f = d^alpha]
    on large planar sets this tends to [2/alpha]; a fading space is one
    with [A < 1] (Definition 3.3). *)

val assouad_max : ?exact_limit:int -> ?qs:float list -> c:float -> Decay_space.t -> float
(** Definition 3.2 verbatim: [max_q log_q (g(q) / c)] for an explicitly
    chosen constant [c].  Sensitive to [c] at small [q]; prefer {!assouad}
    for estimation and this form for checking a claimed (A, C) pair. *)

(** {2 Doubling dimension of the induced quasi-metric} *)

val quasi_doubling : ?zeta:float -> Decay_space.t -> float
(** [log2] of the empirical doubling constant of the quasi-metric
    [f^(1/zeta)] — the parameter [A'] in Theorems 4 and 5. *)

(** {2 Independence dimension and guards (Definition 4.1)} *)

val is_independent_wrt : Decay_space.t -> x:int -> int list -> bool
(** Whether the given nodes are independent with respect to [x]: every
    member is strictly farther from every other member than it is from [x]
    (for all distinct [z], [y] in the set, [f(y,z) > f(z,x)]).  Strictness
    is the reading under which the paper's examples work out: the uniform
    space gets dimension 1, dual to its single-guard cover (guards use the
    closed inequality). *)

val independence_wrt :
  ?exact_limit:int -> Decay_space.t -> x:int -> int list
(** A maximum (exact for small spaces, greedy otherwise) independent set
    with respect to [x]. *)

val independence_dimension : ?exact_limit:int -> Decay_space.t -> int
(** [max_x |independence_wrt x|] — at most the kissing number 6 for planar
    Euclidean decay spaces (generically 5, by the >60-degree argument of
    §4.1), 1 for the uniform space, unbounded for the Welzl construction. *)

val is_guard_set : Decay_space.t -> x:int -> int list -> bool
(** Whether [guards] guard [x]: every node [z <> x] has some guard [y] with
    [f(z,y) <= f(z,x)]. *)

val greedy_guards : Decay_space.t -> x:int -> int list
(** A small guard set for [x] by greedy set cover (within a [ln n] factor of
    the minimum, which Welzl shows equals the independence dimension). *)

val max_guard_count : Decay_space.t -> int
(** Largest greedy guard-set size over all nodes — the quantity bounded by 6
    in the plane via the 60-degree sector construction. *)
