(** Decay balls and packings (§3.1).

    The t-ball [B(y,t) = { x | f(x,y) < t }] collects the nodes whose decay
    *to* [y] is below [t]; a set [Y] is a t-packing when all pairwise decays
    exceed [2t] (so the t-balls around its members are disjoint).  Packing
    numbers drive the Assouad-dimension estimate and the annulus argument of
    Theorem 2. *)

val members : Decay_space.t -> centre:int -> radius:float -> int list
(** Nodes of the (open) decay ball around [centre], including the centre
    itself. *)

val is_packing : Decay_space.t -> radius:float -> int list -> bool
(** Whether all pairwise decays (both directions) strictly exceed
    [2 * radius]. *)

val max_packing :
  ?exact_limit:int -> Decay_space.t -> within:int list -> radius:float -> int list
(** Largest [radius]-packing using only nodes of [within]: exact via
    branch-and-bound MIS when [|within| <= exact_limit] (default 30),
    greedy otherwise (then a maximal — not maximum — packing, i.e. a lower
    bound). *)

val packing_number :
  ?exact_limit:int -> Decay_space.t -> centre:int -> ball_radius:float ->
  packing_radius:float -> int
(** [P(B(centre, ball_radius), packing_radius)]: the size of the largest
    packing that fits inside the ball — Definition 3.2's building block. *)
