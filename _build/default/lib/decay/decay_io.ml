let to_csv d =
  let n = Decay_space.n d in
  let buf = Buffer.create (n * n * 8) in
  Buffer.add_string buf ("# name: " ^ Decay_space.name d ^ "\n");
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if j > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%.17g" (Decay_space.decay d i j))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let of_csv ?(name = "csv") text =
  let lines = String.split_on_char '\n' text in
  let name = ref name in
  let rows =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if line = "" then None
        else if String.length line > 0 && line.[0] = '#' then begin
          let prefix = "# name:" in
          if String.length line > String.length prefix
             && String.sub line 0 (String.length prefix) = prefix
          then
            name :=
              String.trim
                (String.sub line (String.length prefix)
                   (String.length line - String.length prefix));
          None
        end
        else
          Some
            (String.split_on_char ',' line
            |> List.map (fun cell ->
                   match float_of_string_opt (String.trim cell) with
                   | Some v -> v
                   | None ->
                       invalid_arg
                         ("Decay_io.of_csv: not a number: " ^ String.trim cell))))
      lines
  in
  let matrix = Array.of_list (List.map Array.of_list rows) in
  Decay_space.of_matrix ~name:!name matrix

let save d path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv d))

let load path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_csv ~name:(Filename.basename path) text
