module Num = Bg_prelude.Numerics

type witness = { x : int; y : int; z : int; value : float }

(* Validity of a given zeta for one triple.  Working in log space avoids
   repeated [**] on huge decays. *)
let triple_holds ~fxy ~fxz ~fzy z =
  let t = 1. /. z in
  exp (t *. log fxz) +. exp (t *. log fzy) >= exp (t *. log fxy)

let zeta_triple ?(tol = 1e-9) fxy fxz fzy =
  if fxy <= fxz +. fzy then 1.
  else begin
    (* zeta >= lg (fxy / min side) always suffices: at that zeta the larger
       side alone is within a factor 2^(1/zeta) and the two sides add up. *)
    let m = Float.min fxz fzy in
    let hi = Float.max 1.5 (Num.log2 (fxy /. m) +. 1e-6) in
    Num.bisect ~tol ~lo:1. ~hi (triple_holds ~fxy ~fxz ~fzy)
  end

let fold_triples d init step =
  let n = Decay_space.n d in
  let f = Decay_space.matrix d in
  let acc = ref init in
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      if y <> x then
        for z = 0 to n - 1 do
          if z <> x && z <> y then
            acc := step !acc ~x ~y ~z ~fxy:f.(x).(y) ~fxz:f.(x).(z) ~fzy:f.(z).(y)
        done
    done
  done;
  !acc

let zeta_witness ?(tol = 1e-9) d =
  if Decay_space.n d < 3 then { x = 0; y = 0; z = 0; value = 1. }
  else
    fold_triples d
      { x = 0; y = 1; z = 2; value = 1. }
      (fun best ~x ~y ~z ~fxy ~fxz ~fzy ->
        (* Fast path: if the inequality already holds at the incumbent zeta,
           this triple cannot raise the maximum (validity is monotone). *)
        if fxy <= fxz +. fzy then best
        else if triple_holds ~fxy ~fxz ~fzy best.value then best
        else begin
          let v = zeta_triple ~tol fxy fxz fzy in
          if v > best.value then { x; y; z; value = v } else best
        end)

let zeta ?tol d = (zeta_witness ?tol d).value

let zeta_sampled ?(tol = 1e-9) ~samples rng d =
  let n = Decay_space.n d in
  if n < 3 then invalid_arg "Metricity.zeta_sampled: need at least 3 nodes";
  let best = ref 1. in
  for _ = 1 to samples do
    let x = Bg_prelude.Rng.int rng n in
    let y = ref (Bg_prelude.Rng.int rng n) in
    while !y = x do
      y := Bg_prelude.Rng.int rng n
    done;
    let z = ref (Bg_prelude.Rng.int rng n) in
    while !z = x || !z = !y do
      z := Bg_prelude.Rng.int rng n
    done;
    let fxy = Decay_space.decay d x !y
    and fxz = Decay_space.decay d x !z
    and fzy = Decay_space.decay d !z !y in
    if fxy > fxz +. fzy && not (triple_holds ~fxy ~fxz ~fzy !best) then begin
      let v = zeta_triple ~tol fxy fxz fzy in
      if v > !best then best := v
    end
  done;
  !best

let zeta_subsampled ?tol ?(rounds = 8) ~nodes rng d =
  let n = Decay_space.n d in
  if nodes < 3 || nodes > n then
    invalid_arg "Metricity.zeta_subsampled: need 3 <= nodes <= n";
  let all = Array.init n Fun.id in
  let best = ref 1. in
  for _ = 1 to rounds do
    let idx = Bg_prelude.Rng.sample rng nodes all in
    let sub = Decay_space.sub_space d idx in
    let w = zeta_witness ?tol sub in
    if w.value > !best then best := w.value
  done;
  !best

let zeta_upper_bound d =
  if Decay_space.n d < 2 then 1.
  else Float.max 1. (Num.log2 (Decay_space.max_decay d /. Decay_space.min_decay d))

let holds_at d z =
  Decay_space.n d < 3
  || fold_triples d true (fun ok ~x:_ ~y:_ ~z:_ ~fxy ~fxz ~fzy ->
         ok
         && (fxy <= fxz +. fzy
            || triple_holds ~fxy ~fxz ~fzy (z +. 1e-7)))

let phi_witness d =
  if Decay_space.n d < 3 then { x = 0; y = 0; z = 0; value = 1. }
  else begin
    (* phi compares f(x,z) against f(x,y) + f(y,z): outer pair (x,z) with
       midpoint y.  The triple iterator hands us exactly that inequality's
       decays with its roles named (x, y, z) = (start, end, midpoint), so
       the witness stores the iterator's z as the midpoint field y. *)
    fold_triples d
      { x = 0; y = 2; z = 1; value = 1. }
      (fun best ~x ~y ~z ~fxy ~fxz ~fzy ->
        let v = fxy /. (fxz +. fzy) in
        if v > best.value then { x; y = z; z = y; value = v } else best)
  end

let phi d = (phi_witness d).value
let phi_log d = Num.log2 (phi d)
