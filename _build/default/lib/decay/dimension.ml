let packing_growth ?exact_limit ?centres d ~q =
  if q <= 1. then invalid_arg "Dimension.packing_growth: q must exceed 1";
  let n = Decay_space.n d in
  let centres = match centres with Some cs -> cs | None -> List.init n Fun.id in
  let best = ref 0 in
  List.iter
    (fun x ->
      (* Candidate ball radii: the distinct decays into x (open balls, so
         nudge just above each decay value to include that node). *)
      let radii = ref [] in
      for y = 0 to n - 1 do
        if y <> x then radii := (Decay_space.decay d y x *. (1. +. 1e-9)) :: !radii
      done;
      let radii = List.sort_uniq compare !radii in
      List.iter
        (fun r ->
          let p =
            Ball.packing_number ?exact_limit d ~centre:x ~ball_radius:r
              ~packing_radius:(r /. q)
          in
          if p > !best then best := p)
        radii)
    centres;
  !best

let assouad ?exact_limit ?(qs = [ 2.; 4.; 8.; 16. ]) d =
  let qs = Array.of_list qs in
  let gs =
    Array.map (fun q -> float_of_int (packing_growth ?exact_limit d ~q)) qs
  in
  if Array.exists (fun g -> g <= 0.) gs then 0.
  else begin
    let fit = Bg_prelude.Stats.loglog_fit qs gs in
    Float.max 0. fit.Bg_prelude.Stats.slope
  end

let assouad_max ?exact_limit ?(qs = [ 2.; 4.; 8.; 16. ]) ~c d =
  List.fold_left
    (fun acc q ->
      let g = float_of_int (packing_growth ?exact_limit d ~q) in
      if g <= 0. then acc else Float.max acc (log (g /. c) /. log q))
    0. qs

let quasi_doubling ?zeta d =
  let m, _ = Quasi_metric.induce ?zeta d in
  Bg_prelude.Numerics.log2 (float_of_int (Bg_geom.Metric.doubling_constant m))

let is_independent_wrt d ~x nodes =
  let ok = ref true in
  List.iter
    (fun z ->
      if z = x then invalid_arg "Dimension.is_independent_wrt: set contains x";
      List.iter
        (fun y ->
          if y <> z && Decay_space.decay d y z <= Decay_space.decay d z x then
            ok := false)
        nodes)
    nodes;
  !ok

(* Conflict graph on V \ {x}: an (unordered) pair conflicts when either
   member fails to be strictly farther from the other than the other is
   from x.  (Strictness matters: the uniform space must get independence
   dimension 1, matching the guard-count duality — a single guard covers
   everything there via the closed inequality.) *)
let independence_conflicts d ~x =
  let n = Decay_space.n d in
  let others = List.filter (fun v -> v <> x) (List.init n Fun.id) in
  let arr = Array.of_list others in
  let k = Array.length arr in
  let g = Bg_graph.Graph.create k in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let z = arr.(i) and y = arr.(j) in
      if
        Decay_space.decay d y z <= Decay_space.decay d z x
        || Decay_space.decay d z y <= Decay_space.decay d y x
      then Bg_graph.Graph.add_edge g i j
    done
  done;
  (g, arr)

let independence_wrt ?(exact_limit = 30) d ~x =
  let g, arr = independence_conflicts d ~x in
  let chosen =
    if Array.length arr <= exact_limit then Bg_graph.Mis.exact g
    else Bg_graph.Mis.greedy g
  in
  List.map (fun i -> arr.(i)) chosen

let independence_dimension ?exact_limit d =
  let n = Decay_space.n d in
  let best = ref 0 in
  for x = 0 to n - 1 do
    let k = List.length (independence_wrt ?exact_limit d ~x) in
    if k > !best then best := k
  done;
  !best

let is_guard_set d ~x guards =
  let n = Decay_space.n d in
  let ok = ref true in
  for z = 0 to n - 1 do
    if z <> x then begin
      let fzx = Decay_space.decay d z x in
      if not (List.exists (fun y -> y = z || Decay_space.decay d z y <= fzx) guards)
      then ok := false
    end
  done;
  !ok

let greedy_guards d ~x =
  let n = Decay_space.n d in
  let uncovered = Hashtbl.create 16 in
  for z = 0 to n - 1 do
    if z <> x then Hashtbl.replace uncovered z ()
  done;
  let covers y z =
    y = z || Decay_space.decay d z y <= Decay_space.decay d z x
  in
  let guards = ref [] in
  while Hashtbl.length uncovered > 0 do
    (* Pick the candidate guard covering the most uncovered nodes. *)
    let best = ref (-1) and best_count = ref (-1) in
    for y = 0 to n - 1 do
      if y <> x then begin
        let count = ref 0 in
        Hashtbl.iter (fun z () -> if covers y z then incr count) uncovered;
        if !count > !best_count then begin
          best := y;
          best_count := !count
        end
      end
    done;
    let y = !best in
    if !best_count <= 0 then
      (* Cannot happen: every node covers itself. *)
      assert false;
    guards := y :: !guards;
    let to_remove = ref [] in
    Hashtbl.iter (fun z () -> if covers y z then to_remove := z :: !to_remove) uncovered;
    List.iter (Hashtbl.remove uncovered) !to_remove
  done;
  List.sort compare !guards

let max_guard_count d =
  let n = Decay_space.n d in
  let best = ref 0 in
  for x = 0 to n - 1 do
    let k = List.length (greedy_guards d ~x) in
    if k > !best then best := k
  done;
  !best
