type t = { n : int; f : float array array; name : string }

let validate name f =
  let n = Array.length f in
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg (name ^ ": decay matrix is not square"))
    f;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let v = f.(i).(j) in
      if not (Float.is_finite v) then
        invalid_arg (name ^ ": non-finite decay");
      if i = j && v <> 0. then invalid_arg (name ^ ": nonzero diagonal decay");
      if i <> j && v <= 0. then
        invalid_arg (name ^ ": nonpositive decay between distinct nodes")
    done
  done

let of_matrix ?(name = "decay") m =
  validate name m;
  { n = Array.length m; f = Array.map Array.copy m; name }

let of_fn ?(name = "decay") n fn =
  let f =
    Array.init n (fun i -> Array.init n (fun j -> if i = j then 0. else fn i j))
  in
  validate name f;
  { n; f; name }

let of_metric ?(name = "geo") ~alpha (m : Bg_geom.Metric.t) =
  if alpha <= 0. then invalid_arg "Decay_space.of_metric: alpha must be positive";
  of_fn ~name m.Bg_geom.Metric.n (fun i j -> m.Bg_geom.Metric.d.(i).(j) ** alpha)

let of_points ?(name = "plane") ~alpha points =
  of_metric ~name ~alpha (Bg_geom.Metric.of_points points)

let n d = d.n
let name d = d.name
let rename name d = { d with name }

let decay d p q =
  if p < 0 || p >= d.n || q < 0 || q >= d.n then
    invalid_arg "Decay_space.decay: node out of range";
  d.f.(p).(q)

let gain d p q =
  let f = decay d p q in
  if f = 0. then infinity else 1. /. f

let matrix d = Array.map Array.copy d.f

let is_symmetric ?(eps = 1e-9) d =
  let ok = ref true in
  for i = 0 to d.n - 1 do
    for j = i + 1 to d.n - 1 do
      if not (Bg_prelude.Numerics.feq ~eps d.f.(i).(j) d.f.(j).(i)) then
        ok := false
    done
  done;
  !ok

let off_diagonal_fold op init d =
  if d.n < 2 then invalid_arg "Decay_space: need at least two nodes";
  let acc = ref init in
  for i = 0 to d.n - 1 do
    for j = 0 to d.n - 1 do
      if i <> j then acc := op !acc d.f.(i).(j)
    done
  done;
  !acc

let min_decay d = off_diagonal_fold Float.min infinity d
let max_decay d = off_diagonal_fold Float.max 0. d

let scale k d =
  if k <= 0. then invalid_arg "Decay_space.scale: factor must be positive";
  { d with f = Array.map (Array.map (fun x -> k *. x)) d.f }

let pow e d =
  if e <= 0. then invalid_arg "Decay_space.pow: exponent must be positive";
  { d with f = Array.map (Array.map (fun x -> if x = 0. then 0. else x ** e)) d.f }

let symmetrize d =
  of_fn ~name:(d.name ^ "/sym") d.n (fun i j -> Float.max d.f.(i).(j) d.f.(j).(i))

let sub_space d idx =
  Array.iter
    (fun i ->
      if i < 0 || i >= d.n then invalid_arg "Decay_space.sub_space: index range")
    idx;
  of_fn ~name:(d.name ^ "/sub") (Array.length idx) (fun i j ->
      d.f.(idx.(i)).(idx.(j)))

let map fn d =
  of_fn ~name:d.name d.n (fun i j -> fn i j d.f.(i).(j))

let pp fmt d =
  if d.n < 2 then Format.fprintf fmt "%s: %d node(s)" d.name d.n
  else
    Format.fprintf fmt "%s: %d nodes, decays in [%g, %g]" d.name d.n
      (min_decay d) (max_decay d)
