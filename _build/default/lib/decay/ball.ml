let members d ~centre ~radius =
  let acc = ref [] in
  for x = Decay_space.n d - 1 downto 0 do
    if x = centre || Decay_space.decay d x centre < radius then acc := x :: !acc
  done;
  !acc

let separated d ~radius x y =
  Decay_space.decay d x y > 2. *. radius
  && Decay_space.decay d y x > 2. *. radius

let is_packing d ~radius nodes =
  let rec pairs = function
    | [] -> true
    | x :: rest -> List.for_all (separated d ~radius x) rest && pairs rest
  in
  pairs nodes

let conflict_graph d ~radius nodes =
  let arr = Array.of_list nodes in
  let k = Array.length arr in
  let g = Bg_graph.Graph.create k in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if not (separated d ~radius arr.(i) arr.(j)) then
        Bg_graph.Graph.add_edge g i j
    done
  done;
  (g, arr)

let max_packing ?(exact_limit = 30) d ~within ~radius =
  let g, arr = conflict_graph d ~radius within in
  let chosen =
    if Array.length arr <= exact_limit then Bg_graph.Mis.exact g
    else Bg_graph.Mis.greedy g
  in
  List.map (fun i -> arr.(i)) chosen

let packing_number ?exact_limit d ~centre ~ball_radius ~packing_radius =
  let body = members d ~centre ~radius:ball_radius in
  List.length (max_packing ?exact_limit d ~within:body ~radius:packing_radius)
