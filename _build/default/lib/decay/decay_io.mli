(** Loading and saving decay matrices.

    The on-disk format is plain CSV: row [i] holds the decays from node [i]
    to every node (diagonal entries must be 0).  Lines starting with [#]
    are comments; the optional header comment carries the space's name.
    This is the interchange point with real measurement campaigns: dump
    RSSI-derived decays from any tool and analyze them with [bg analyze]. *)

val to_csv : Decay_space.t -> string
(** Render as CSV with a [# name: ...] header comment. *)

val of_csv : ?name:string -> string -> Decay_space.t
(** Parse CSV text (comments and blank lines ignored; a [# name:] header
    overrides [name]).
    @raise Invalid_argument on malformed input or an invalid matrix. *)

val save : Decay_space.t -> string -> unit
(** Write to a file path. *)

val load : string -> Decay_space.t
(** Read from a file path; the name defaults to the basename. *)
