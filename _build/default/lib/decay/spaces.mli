(** A zoo of decay spaces: every named construction in the paper plus the
    generators used by the experiments.

    Constructions returning link endpoints do so as [(sender, receiver)]
    index pairs into the decay space; the SINR layer turns them into links. *)

val uniform : int -> Decay_space.t
(** All decays equal 1 — independence dimension 1 but unbounded doubling
    dimension (§4.1). *)

val star : k:int -> r:float -> Decay_space.t
(** §3.4's example: a star metric with centre [x0] (index 0), a close leaf
    [x-1] (index 1) at distance [r], and [k] far leaves at distance [k^2];
    decay equals distance ([zeta = 1]).  Doubling dimension is unbounded in
    [k] yet the interference at [x-1] from the far leaves is only [1/k]. *)

val welzl : n:int -> eps:float -> Decay_space.t
(** Welzl's construction (§4.1): [n+2] points [v_{-1}, v_0, ..., v_n] with
    [d(v_{-1}, v_i) = 2^i - eps] and [d(v_j, v_i) = 2^i] for [j < i],
    [j <> -1]; requires [0 < eps <= 1/4].  Doubling dimension 1 but
    independence dimension [n+1] (all of [V minus v_{-1}] is independent
    with respect to [v_{-1}]). *)

val three_point : q:float -> Decay_space.t
(** §4.2's separator of the two metricity parameters: decays
    [f_ab = 1, f_bc = q, f_ac = 2q] (symmetric).  Then [phi <= 2] while
    [zeta = Theta(log q / log log q)] grows without bound. *)

val mis_construction :
  Bg_graph.Graph.t -> Decay_space.t * (int * int) list
(** Theorem 3's hardness construction.  For a graph on [n] vertices, builds
    a decay space on [2n] nodes (senders [0..n-1], receivers [n..2n-1]) with
    unit link decays [f(s_i, r_i) = 1] and cross decays [1/2] for edges,
    [n] for non-edges; returns the space and the [n] link endpoint pairs.
    (The arXiv text states the two constants as gains; we store decays.)
    Feasible link sets correspond one-to-one to independent sets of the
    graph — under uniform power and under arbitrary power control alike —
    and [zeta <= lg (2n)]. *)

val two_line :
  Bg_graph.Graph.t -> alpha':float -> ?delta:float -> unit ->
  Decay_space.t * (int * int) list
(** Theorem 6's bounded-growth hardness construction: senders on the
    vertical segment [(0,0)..(0,n)], receivers on [(n,0)..(n,n)].  On-line
    decays are [|i-j|^alpha']; cross decays are [n^alpha'] on the diagonal,
    [n^alpha' - delta] for edges and [n^(alpha'+1)] for non-edges
    (default [delta = 1/4]).  [phi = Theta(n)] while the space remains
    doubling (decay balls, A <= 2) with independence dimension 3. *)

(** {2 Planar generators} *)

val random_points :
  Bg_prelude.Rng.t -> n:int -> side:float -> Bg_geom.Point.t list
(** [n] points uniform in the [side x side] square. *)

val grid_points : rows:int -> cols:int -> spacing:float -> Bg_geom.Point.t list
(** Regular grid. *)

val line_points : n:int -> spacing:float -> Bg_geom.Point.t list
(** [n] points on a horizontal line — chain/backhaul topologies. *)

val clustered_points :
  Bg_prelude.Rng.t -> clusters:int -> per_cluster:int -> side:float ->
  spread:float -> Bg_geom.Point.t list
(** Cluster centres uniform in the square, members Gaussian around them
    with standard deviation [spread] — the hotspot deployments where
    capacity algorithms earn their keep. *)

val random_points_3d :
  Bg_prelude.Rng.t -> n:int -> side:float -> Bg_geom.Point3.t list
(** [n] points uniform in the [side^3] cube — volumetric deployments. *)

val of_points_3d :
  ?name:string -> alpha:float -> Bg_geom.Point3.t list -> Decay_space.t
(** GEO-SINR decay over a 3-D point set: [zeta = alpha], Assouad dimension
    ~[3/alpha], independence dimension at most the R^3 kissing number 12. *)

val exponential_line : n:int -> Decay_space.t
(** Points at coordinates [2^0, 2^1, ..., 2^(n-1)] with decay = distance:
    a doubling chain with geometric scale spread (dimension-1 stress
    case). *)

val perturbed :
  Bg_prelude.Rng.t -> alpha:float -> sigma:float -> Bg_geom.Point.t list ->
  Decay_space.t
(** Geometric decay [d^alpha] multiplied by i.i.d. log-normal shadowing of
    log-stddev [sigma] (in nats) — the cheapest "realistic" departure from
    geometry; [sigma = 0] recovers GEO-SINR exactly. *)
