let distance ~zeta d p q =
  let f = Decay_space.decay d p q in
  if f = 0. then 0. else f ** (1. /. zeta)

let induce ?zeta d =
  let z = match zeta with Some z -> z | None -> Metricity.zeta d in
  let n = Decay_space.n d in
  let m =
    Array.init n (fun i -> Array.init n (fun j -> distance ~zeta:z d i j))
  in
  (Bg_geom.Metric.of_matrix m, z)

let round_trip ~zeta (m : Bg_geom.Metric.t) =
  Decay_space.of_metric ~name:"quasi^zeta" ~alpha:zeta m
