(** Quasi-distances induced by a decay space (§2.2).

    With [zeta = zeta(D)], the quasi-distances [d(p,q) = f(p,q)^(1/zeta)]
    satisfy the triangle inequality by construction; they form a metric iff
    [D] is symmetric.  This is the bridge behind Proposition 1 (theory
    transfer): run any metric-space SINR algorithm on the induced
    quasi-metric with path-loss exponent [zeta]. *)

val induce : ?zeta:float -> Decay_space.t -> Bg_geom.Metric.t * float
(** [induce d] computes (or accepts) the metricity and returns the induced
    quasi-distance matrix together with the [zeta] used.  The returned
    structure satisfies the triangle inequality up to the metricity
    tolerance; symmetry is inherited from [d]. *)

val distance : zeta:float -> Decay_space.t -> int -> int -> float
(** Pointwise quasi-distance [f(p,q)^(1/zeta)] without materializing the
    matrix. *)

val round_trip : zeta:float -> Bg_geom.Metric.t -> Decay_space.t
(** Inverse operation: decay space [f = d^zeta] over a quasi-metric.
    [induce] followed by [round_trip] reproduces the original decays. *)
