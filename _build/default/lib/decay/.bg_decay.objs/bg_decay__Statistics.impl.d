lib/decay/statistics.ml: Array Bg_geom Bg_prelude Decay_space Float
