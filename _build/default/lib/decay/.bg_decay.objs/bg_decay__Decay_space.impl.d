lib/decay/decay_space.ml: Array Bg_geom Bg_prelude Float Format
