lib/decay/dimension.ml: Array Ball Bg_geom Bg_graph Bg_prelude Decay_space Float Fun Hashtbl List Quasi_metric
