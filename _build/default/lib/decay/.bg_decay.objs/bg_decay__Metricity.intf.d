lib/decay/metricity.mli: Bg_prelude Decay_space
