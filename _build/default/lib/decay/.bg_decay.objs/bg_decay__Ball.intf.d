lib/decay/ball.mli: Decay_space
