lib/decay/spaces.mli: Bg_geom Bg_graph Bg_prelude Decay_space
