lib/decay/dimension.mli: Decay_space
