lib/decay/fading.ml: Array Bg_prelude Decay_space Float Fun List
