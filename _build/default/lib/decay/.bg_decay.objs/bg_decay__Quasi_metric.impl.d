lib/decay/quasi_metric.ml: Array Bg_geom Decay_space Metricity
