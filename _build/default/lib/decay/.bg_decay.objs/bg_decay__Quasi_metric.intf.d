lib/decay/quasi_metric.mli: Bg_geom Decay_space
