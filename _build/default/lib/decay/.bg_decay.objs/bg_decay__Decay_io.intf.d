lib/decay/decay_io.mli: Decay_space
