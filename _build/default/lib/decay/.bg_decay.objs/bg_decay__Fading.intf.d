lib/decay/fading.mli: Decay_space
