lib/decay/decay_space.mli: Bg_geom Format
