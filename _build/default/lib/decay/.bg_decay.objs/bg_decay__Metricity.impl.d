lib/decay/metricity.ml: Array Bg_prelude Decay_space Float Fun
