lib/decay/ball.ml: Array Bg_graph Decay_space List
