lib/decay/statistics.mli: Bg_geom Bg_prelude Decay_space
