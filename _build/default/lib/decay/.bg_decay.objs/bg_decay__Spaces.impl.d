lib/decay/spaces.ml: Bg_geom Bg_graph Bg_prelude Decay_space Float Fun List
