lib/decay/decay_io.ml: Array Buffer Decay_space Filename Fun List Printf String
