(** Descriptive statistics and simple regression, used by every experiment
    driver to summarize measured quantities and to fit scaling exponents. *)

val mean : float array -> float
(** Arithmetic mean; [nan] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); [0.] for fewer than two
    samples. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val geometric_mean : float array -> float
(** Geometric mean of strictly positive samples. *)

val min_max : float array -> float * float
(** Smallest and largest sample.  Raises on empty input. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100], linear interpolation between
    order statistics.  Does not modify [xs]. *)

val median : float array -> float
(** 50th percentile. *)

val pearson : float array -> float array -> float
(** Pearson linear correlation coefficient of two equal-length samples.
    Returns [0.] if either sample is constant. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation (Pearson on midranks; ties averaged).  The
    statistic behind the paper's "link quality is not correlated with
    distance" discussion. *)

type fit = { slope : float; intercept : float; r2 : float }
(** Least-squares line [y = slope*x + intercept] with coefficient of
    determination. *)

val linear_fit : float array -> float array -> fit
(** Ordinary least squares on the given points. *)

val loglog_fit : float array -> float array -> fit
(** [loglog_fit xs ys] fits [log ys ~ slope * log xs + intercept]; the slope
    estimates the polynomial degree of a power-law relation.  All inputs
    must be strictly positive. *)

type histogram = { lo : float; hi : float; counts : int array }
(** Equal-width histogram over [lo, hi]. *)

val histogram : bins:int -> float array -> histogram
(** Build a histogram; samples outside the data range cannot occur since the
    range is taken from the data itself.  [bins >= 1]. *)

val summary : float array -> string
(** One-line human-readable summary: mean, stddev, min, median, max. *)
