(** ASCII table rendering for experiment output.

    Every experiment in [bench/main.exe] prints its rows through this module
    so that the "paper-style" tables recorded in EXPERIMENTS.md have a
    uniform, diff-friendly shape.  Also provides CSV output for downstream
    plotting. *)

type cell = S of string | I of int | F of float | F2 of float | F4 of float
(** A table cell: string, integer, or float rendered with [%g], two or four
    decimal places respectively. *)

type t

val create : title:string -> string list -> t
(** [create ~title headers] starts a table with the given column headers. *)

val add_row : t -> cell list -> unit
(** Append a row; must match the header arity. *)

val render : t -> string
(** Render with aligned columns, a title line and a separator. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val to_csv : t -> string
(** Comma-separated rendering (header row first, commas in cells escaped by
    double quotes). *)

val cell_to_string : cell -> string
(** Rendering of a single cell, as used by {!render}. *)
