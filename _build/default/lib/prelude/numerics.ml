let log2 x = log x /. log 2.

(* Direct summation up to [cut], then the Euler-Maclaurin tail
     sum_{n>cut} n^-s  ~  cut^{1-s}/(s-1) + cut^{-s}/2 + s*cut^{-s-1}/12 - ...
   Three correction terms give ~1e-12 at cut = 100 for s >= 1.05. *)
let riemann_zeta s =
  if s <= 1. then invalid_arg "Numerics.riemann_zeta: requires s > 1";
  let cut = 100 in
  let acc = ref 0. in
  for n = 1 to cut - 1 do
    acc := !acc +. (float_of_int n ** -.s)
  done;
  let c = float_of_int cut in
  let tail =
    (c ** (1. -. s)) /. (s -. 1.)
    +. ((c ** -.s) /. 2.)
    +. (s *. (c ** (-.s -. 1.)) /. 12.)
    -. (s *. (s +. 1.) *. (s +. 2.) *. (c ** (-.s -. 3.)) /. 720.)
  in
  !acc +. tail

let bisect ?(tol = 1e-9) ?(max_iter = 200) ~lo ~hi p =
  if not (p hi) then invalid_arg "Numerics.bisect: predicate false at hi";
  if p lo then lo
  else begin
    let lo = ref lo and hi = ref hi in
    let iters = ref 0 in
    while !hi -. !lo > tol *. Float.max 1. (Float.abs !hi) && !iters < max_iter do
      incr iters;
      let mid = 0.5 *. (!lo +. !hi) in
      if p mid then hi := mid else lo := mid
    done;
    !hi
  end

let solve_increasing ?(tol = 1e-9) ?(max_iter = 200) ~lo ~hi f =
  bisect ~tol ~max_iter ~lo ~hi (fun x -> f x >= 0.)

let feq ?(eps = 1e-9) a b =
  Float.abs (a -. b) <= eps *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let spectral_radius ?(iters = 200) ?(tol = 1e-12) m =
  let n = Array.length m in
  if n = 0 then 0.
  else begin
    let v = Array.make n 1. in
    let w = Array.make n 0. in
    let lambda = ref 0. in
    (try
       for _ = 1 to iters do
         for i = 0 to n - 1 do
           let acc = ref 0. in
           for j = 0 to n - 1 do
             acc := !acc +. (m.(i).(j) *. v.(j))
           done;
           w.(i) <- !acc
         done;
         let norm = Array.fold_left (fun a x -> a +. Float.abs x) 0. w in
         if norm = 0. then begin
           lambda := 0.;
           raise Exit
         end;
         let prev = !lambda in
         lambda := norm /. Array.fold_left (fun a x -> a +. Float.abs x) 0. v;
         Array.blit w 0 v 0 n;
         (* Renormalize to avoid overflow. *)
         if norm > 1e100 || norm < 1e-100 then
           for i = 0 to n - 1 do
             v.(i) <- v.(i) /. norm
           done;
         if Float.abs (!lambda -. prev) <= tol *. Float.max 1. !lambda then
           raise Exit
       done
     with Exit -> ());
    !lambda
  end

let harmonic n =
  let acc = ref 0. in
  for i = 1 to n do
    acc := !acc +. (1. /. float_of_int i)
  done;
  !acc

let clamp ~lo ~hi x = Float.min hi (Float.max lo x)
