type cell = S of string | I of int | F of float | F2 of float | F4 of float

type t = { title : string; headers : string list; mutable rows : cell list list }

let create ~title headers = { title; headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let cell_to_string = function
  | S s -> s
  | I i -> string_of_int i
  | F x -> Printf.sprintf "%g" x
  | F2 x -> Printf.sprintf "%.2f" x
  | F4 x -> Printf.sprintf "%.4f" x

let render t =
  let rows = List.rev t.rows in
  let string_rows = List.map (List.map cell_to_string) rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i s -> widths.(i) <- max widths.(i) (String.length s)) row
  in
  measure t.headers;
  List.iter measure string_rows;
  let pad i s = s ^ String.make (widths.(i) - String.length s) ' ' in
  let fmt_row row = "| " ^ String.concat " | " (List.mapi pad row) ^ " |" in
  let sep =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (sep ^ "\n");
  Buffer.add_string buf (fmt_row t.headers ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (fmt_row r ^ "\n")) string_rows;
  Buffer.add_string buf sep;
  Buffer.contents buf

let print t =
  print_endline (render t);
  print_newline ()

let escape_csv s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let rows = List.rev t.rows in
  let line cells = String.concat "," (List.map escape_csv cells) in
  let body = List.map (fun r -> line (List.map cell_to_string r)) rows in
  String.concat "\n" (line t.headers :: body)
