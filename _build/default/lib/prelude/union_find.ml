type t = { parent : int array; rank : int array; mutable classes : int }

let create n =
  { parent = Array.init n Fun.id; rank = Array.make n 0; classes = n }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then false
  else begin
    t.classes <- t.classes - 1;
    if t.rank.(rx) < t.rank.(ry) then t.parent.(rx) <- ry
    else if t.rank.(rx) > t.rank.(ry) then t.parent.(ry) <- rx
    else begin
      t.parent.(ry) <- rx;
      t.rank.(rx) <- t.rank.(rx) + 1
    end;
    true
  end

let connected t x y = find t x = find t y
let count t = t.classes
