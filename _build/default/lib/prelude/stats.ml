let mean xs =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let geometric_mean xs =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else begin
    let acc =
      Array.fold_left
        (fun a x ->
          if x <= 0. then invalid_arg "Stats.geometric_mean: nonpositive sample"
          else a +. log x)
        0. xs
    in
    exp (acc /. float_of_int n)
  end

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let w = rank -. float_of_int lo in
    ((1. -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

let median xs = percentile xs 50.

let pearson xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.pearson: length mismatch";
  if n < 2 then 0.
  else begin
    let mx = mean xs and my = mean ys in
    let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx = 0. || !syy = 0. then 0. else !sxy /. sqrt (!sxx *. !syy)
  end

(* Midranks: ties get the average of the ranks they span. *)
let midranks xs =
  let n = Array.length xs in
  let order = Array.init n Fun.id in
  Array.sort (fun i j -> Float.compare xs.(i) xs.(j)) order;
  let ranks = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(order.(!j + 1)) = xs.(order.(!i)) do
      incr j
    done;
    let avg = float_of_int (!i + !j) /. 2. +. 1. in
    for k = !i to !j do
      ranks.(order.(k)) <- avg
    done;
    i := !j + 1
  done;
  ranks

let spearman xs ys = pearson (midranks xs) (midranks ys)

type fit = { slope : float; intercept : float; r2 : float }

let linear_fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.linear_fit: length mismatch";
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0. then { slope = 0.; intercept = my; r2 = 0. }
  else begin
    let slope = !sxy /. !sxx in
    let intercept = my -. (slope *. mx) in
    let r2 = if !syy = 0. then 1. else !sxy *. !sxy /. (!sxx *. !syy) in
    { slope; intercept; r2 }
  end

let loglog_fit xs ys =
  let check a =
    Array.iter
      (fun x -> if x <= 0. then invalid_arg "Stats.loglog_fit: nonpositive value")
      a
  in
  check xs;
  check ys;
  linear_fit (Array.map log xs) (Array.map log ys)

type histogram = { lo : float; hi : float; counts : int array }

let histogram ~bins xs =
  if bins < 1 then invalid_arg "Stats.histogram: bins must be >= 1";
  if Array.length xs = 0 then invalid_arg "Stats.histogram: empty array";
  let lo, hi = min_max xs in
  let counts = Array.make bins 0 in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1. in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = if b >= bins then bins - 1 else if b < 0 then 0 else b in
      counts.(b) <- counts.(b) + 1)
    xs;
  { lo; hi; counts }

let summary xs =
  if Array.length xs = 0 then "(empty)"
  else begin
    let lo, hi = min_max xs in
    Printf.sprintf "mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g n=%d" (mean xs)
      (stddev xs) lo (median xs) hi (Array.length xs)
  end
