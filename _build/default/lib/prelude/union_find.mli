(** Disjoint-set forest with union by rank and path compression.  Used for
    connectivity experiments on decay graphs. *)

type t

val create : int -> t
(** [create n] makes [n] singleton classes [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of an element's class. *)

val union : t -> int -> int -> bool
(** Merge two classes; returns [true] iff they were distinct. *)

val connected : t -> int -> int -> bool
(** Whether two elements share a class. *)

val count : t -> int
(** Number of distinct classes. *)
