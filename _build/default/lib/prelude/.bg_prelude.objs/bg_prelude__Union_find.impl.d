lib/prelude/union_find.ml: Array Fun
