lib/prelude/stats.ml: Array Float Fun Printf
