lib/prelude/rng.mli:
