lib/prelude/stats.mli:
