lib/prelude/numerics.mli:
