lib/prelude/table.mli:
