lib/prelude/union_find.mli:
