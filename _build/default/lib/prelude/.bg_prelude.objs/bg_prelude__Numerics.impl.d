lib/prelude/numerics.ml: Array Float
