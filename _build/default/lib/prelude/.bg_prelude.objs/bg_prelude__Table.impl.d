lib/prelude/table.ml: Array Buffer List Printf String
