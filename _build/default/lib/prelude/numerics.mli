(** Small numerical toolkit: special functions and root finding used by the
    decay-space analysis (Riemann zeta for Theorem 2's bound, bisection for
    the per-triple metricity solve). *)

val log2 : float -> float
(** Base-2 logarithm. *)

val riemann_zeta : float -> float
(** [riemann_zeta s] evaluates the Riemann zeta function
    [sum_{n>=1} n^-s] for [s > 1], via direct summation with an
    Euler–Maclaurin tail correction.  Accurate to ~1e-10 for [s >= 1.05].
    Raises [Invalid_argument] for [s <= 1] (the series diverges). *)

val bisect :
  ?tol:float -> ?max_iter:int -> lo:float -> hi:float -> (float -> bool) -> float
(** [bisect ~lo ~hi p] finds the threshold of a monotone predicate: [p] must
    be false at [lo] and true at [hi] (or become true somewhere in between
    and stay true).  Returns the smallest [x] with [p x], to within [tol]
    (default [1e-9] relative).  Raises [Invalid_argument] if [p hi] is
    false. *)

val solve_increasing :
  ?tol:float -> ?max_iter:int -> lo:float -> hi:float -> (float -> float) -> float
(** [solve_increasing ~lo ~hi f] returns a root of the increasing function
    [f] in [lo, hi] by bisection ([f lo <= 0 <= f hi]). *)

val feq : ?eps:float -> float -> float -> bool
(** Approximate float equality with combined absolute/relative tolerance
    (default [eps = 1e-9]). *)

val spectral_radius : ?iters:int -> ?tol:float -> float array array -> float
(** [spectral_radius m] estimates the Perron (largest-magnitude) eigenvalue
    of the non-negative square matrix [m] by power iteration.  Used for the
    power-control feasibility test.  Returns [0.] for the zero matrix. *)

val harmonic : int -> float
(** [harmonic n] is the n-th harmonic number [sum_{i=1..n} 1/i]. *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp a float into a closed interval. *)
