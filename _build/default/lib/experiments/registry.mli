(** The experiment registry: every claim-reproduction experiment of
    DESIGN.md section 5, addressable by id ("E1" .. "E17").  Used by
    [bench/main.exe] (runs everything) and by the [bg experiment] CLI
    subcommand (runs one). *)

type entry = { id : string; claim : string; run : unit -> bool }

val all : entry list
(** E1 through E17 in order (E15+ are extension ablations). *)

val find : string -> entry option
(** Case-insensitive lookup by id. *)

val run_all : unit -> (string * bool) list
(** Run every experiment in order (tables go to stdout); returns the
    per-experiment verdicts. *)
