lib/experiments/exp_ablation.mli:
