lib/experiments/exp_flow.mli:
