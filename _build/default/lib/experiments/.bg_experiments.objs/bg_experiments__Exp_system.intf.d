lib/experiments/exp_system.mli:
