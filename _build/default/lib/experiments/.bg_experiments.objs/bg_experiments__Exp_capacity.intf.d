lib/experiments/exp_capacity.mli:
