lib/experiments/exp_dimension3.ml: Bg_geom Core List
