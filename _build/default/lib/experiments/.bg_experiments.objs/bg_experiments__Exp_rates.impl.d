lib/experiments/exp_rates.ml: Array Core List
