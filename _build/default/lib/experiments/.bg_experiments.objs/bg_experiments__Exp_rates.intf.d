lib/experiments/exp_rates.mli:
