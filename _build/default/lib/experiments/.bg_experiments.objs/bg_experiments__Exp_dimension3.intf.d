lib/experiments/exp_dimension3.mli:
