lib/experiments/registry.ml: Exp_ablation Exp_applications Exp_capacity Exp_dimension3 Exp_extensions Exp_flow Exp_model Exp_online Exp_rates Exp_scaling Exp_system List Printf String
