lib/experiments/exp_ablation.ml: Array Core List Printf
