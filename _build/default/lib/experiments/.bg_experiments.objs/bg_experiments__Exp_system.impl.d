lib/experiments/exp_system.ml: Array Core Float List Printf
