lib/experiments/exp_extensions.mli:
