lib/experiments/registry.mli:
