lib/experiments/exp_model.ml: Array Core Float List Option Printf
