lib/experiments/exp_scaling.mli:
