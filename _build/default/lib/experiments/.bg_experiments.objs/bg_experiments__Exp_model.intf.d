lib/experiments/exp_model.mli:
