lib/experiments/exp_extensions.ml: Array Core Float List Printf
