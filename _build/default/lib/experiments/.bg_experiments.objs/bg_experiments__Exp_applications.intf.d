lib/experiments/exp_applications.mli:
