lib/experiments/exp_capacity.ml: Array Core Float List Printf
