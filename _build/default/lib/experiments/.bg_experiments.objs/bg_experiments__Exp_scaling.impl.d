lib/experiments/exp_scaling.ml: Core List Unix
