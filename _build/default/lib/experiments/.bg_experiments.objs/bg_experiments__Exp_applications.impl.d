lib/experiments/exp_applications.ml: Array Core Float List
