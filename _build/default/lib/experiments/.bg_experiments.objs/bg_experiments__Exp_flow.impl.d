lib/experiments/exp_flow.ml: Array Core Float List Printf
