lib/experiments/exp_online.ml: Array Core List
