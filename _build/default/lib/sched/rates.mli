(** Scheduling with flexible data rates (Kesselheim, ESA 2012 [43]) — named
    explicitly in Proposition 1's transfer list.

    Instead of the binary threshold, a transmission in a slot carries
    Shannon-style rate [log2 (1 + SINR)]; each link has a demand (bits, in
    the same normalized units) and the goal is a short slot sequence after
    which every link has accumulated its demand.  Thresholded scheduling is
    the special case of unit demands served only at [SINR >= beta]. *)

val rate : Bg_sinr.Instance.t -> Bg_sinr.Power.t -> Bg_sinr.Link.t list ->
  Bg_sinr.Link.t -> float
(** Instantaneous rate [log2 (1 + SINR_v)] of a link when the given set
    transmits. *)

type result = {
  slots : int;  (** slots used (or budget, if not completed) *)
  completed : bool;
  residual : float array;  (** remaining demand per link id *)
  transcript : Bg_sinr.Link.t list list;  (** who transmitted each slot *)
}

val schedule :
  ?power:Bg_sinr.Power.t -> ?max_slots:int -> demands:float array ->
  Bg_sinr.Instance.t -> result
(** Greedy rate scheduler: each slot, admit unsatisfied links in
    non-decreasing decay order whenever admission does not lower the
    slot's *total* rate; credit everyone's achieved rate against their
    demand.  [demands] indexed by link id; [max_slots] default 10000. *)

val verify :
  ?power:Bg_sinr.Power.t -> Bg_sinr.Instance.t -> demands:float array ->
  result -> bool
(** Recompute every slot's rates (under the same power assignment the
    schedule used) and check the accumulated credit covers each demand;
    [false] for incomplete results. *)
