(** Multi-hop flow throughput (the [8], [62] family of Proposition 1's
    list: "flow-based throughput", "throughput maximization (via flow)").

    End-to-end sessions are routed over the solo-decodable communication
    graph (minimum-hop paths), the resulting hop links are scheduled into
    SINR-feasible slots, and the schedule is pipelined: the sustainable
    per-session throughput is [1 / slots] packets per slot per session.
    Everything is computed from the decay matrix alone. *)

type session = { src : int; dst : int }

type result = {
  routed : int;  (** sessions with a route *)
  unroutable : session list;
  hop_links : (int * int) list;  (** de-duplicated directed hops used *)
  slots : int;  (** feasible slots to serve every hop once *)
  throughput : float;  (** 1 / slots, or 0 when nothing was routed *)
  schedule : Bg_sinr.Link.t list list;
}

val route :
  Bg_decay.Decay_space.t -> power:float -> beta:float -> noise:float ->
  session -> int list option
(** Minimum-hop path (node list, src first) in the directed solo-decodable
    graph, or [None]. *)

val run :
  ?beta:float -> ?noise:float -> power:float -> Bg_decay.Decay_space.t ->
  sessions:session list -> result
(** Route every session, fuse the hop sets, schedule with first-fit under
    uniform [power].  [beta] defaults to 1, [noise] to 0 (then every hop
    of distinct nodes is routable in one hop — pass noise to make
    multi-hop meaningful). *)
