module I = Bg_sinr.Instance
module F = Bg_sinr.Feasibility

type schedule = Bg_sinr.Link.t list list

let first_fit ?(power = Bg_sinr.Power.uniform 1.) (t : I.t) =
  let ordered =
    List.sort (Bg_sinr.Link.compare_by_decay t.I.space)
      (Array.to_list t.I.links)
  in
  let slots : Bg_sinr.Link.t list list ref = ref [] in
  let place lv =
    let rec try_slots acc = function
      | [] -> slots := List.rev ([ lv ] :: acc)
      | s :: rest ->
          if F.is_feasible t power (lv :: s) then
            slots := List.rev_append acc ((lv :: s) :: rest)
          else try_slots (s :: acc) rest
    in
    try_slots [] !slots
  in
  List.iter place ordered;
  !slots

let via_capacity ?(algorithm = fun t -> Bg_capacity.Alg1.run t) (t : I.t) =
  let rec go remaining acc =
    if remaining = [] then List.rev acc
    else begin
      let sub = I.with_links t (Array.of_list remaining) in
      let slot = algorithm sub in
      match slot with
      | [] ->
          (* Degenerate fallback: schedule one link alone. *)
          let l, rest =
            match remaining with
            | l :: rest -> (l, rest)
            | [] -> assert false
          in
          go rest ([ l ] :: acc)
      | _ ->
          let in_slot l =
            List.exists (fun l' -> l'.Bg_sinr.Link.id = l.Bg_sinr.Link.id) slot
          in
          let rest = List.filter (fun l -> not (in_slot l)) remaining in
          go rest (slot :: acc)
    end
  in
  go (Array.to_list t.I.links) []

let length s = List.length s

let verify ?(power = Bg_sinr.Power.uniform 1.) (t : I.t) schedule =
  let all_feasible = List.for_all (F.is_feasible t power) schedule in
  let scheduled = List.concat schedule in
  let ids = List.sort compare (List.map (fun l -> l.Bg_sinr.Link.id) scheduled) in
  let expected =
    List.sort compare
      (Array.to_list (Array.map (fun l -> l.Bg_sinr.Link.id) t.I.links))
  in
  all_feasible && ids = expected
