(** Link scheduling: partition all links into SINR-feasible slots, the
    SCHEDULING problem whose GEO-SINR algorithms Proposition 1 transfers to
    decay spaces (schedule lengths degrade with [zeta] the way the original
    analyses degrade with [alpha]). *)

type schedule = Bg_sinr.Link.t list list
(** Slots in transmission order; every slot is feasible. *)

val first_fit :
  ?power:Bg_sinr.Power.t -> Bg_sinr.Instance.t -> schedule
(** Process links in non-decreasing decay order; put each into the first
    slot that remains feasible (exact SINR check), opening slots as
    needed. *)

val via_capacity :
  ?algorithm:(Bg_sinr.Instance.t -> Bg_sinr.Link.t list) ->
  Bg_sinr.Instance.t -> schedule
(** Repeatedly extract a feasible set with a capacity algorithm (default
    Algorithm 1) and schedule it as one slot; the classical
    capacity-to-scheduling reduction.  Falls back to singleton slots if the
    algorithm returns an empty set on a non-empty remainder. *)

val length : schedule -> int
(** Number of slots. *)

val verify : ?power:Bg_sinr.Power.t -> Bg_sinr.Instance.t -> schedule -> bool
(** Every slot feasible, and every link scheduled exactly once. *)
