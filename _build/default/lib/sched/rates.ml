module I = Bg_sinr.Instance
module F = Bg_sinr.Feasibility

let rate (t : I.t) power set lv =
  let s = F.sinr t power set lv in
  if s = infinity then 30. (* cap the solo-rate at ~30 bits/symbol *)
  else Bg_prelude.Numerics.log2 (1. +. s)

type result = {
  slots : int;
  completed : bool;
  residual : float array;
  transcript : Bg_sinr.Link.t list list;
}

let schedule ?(power = Bg_sinr.Power.uniform 1.) ?(max_slots = 10_000)
    ~demands (t : I.t) =
  let links = t.I.links in
  Array.iter
    (fun l ->
      let id = l.Bg_sinr.Link.id in
      if id >= Array.length demands then
        invalid_arg "Rates.schedule: demands too short";
      if demands.(id) <= 0. then
        invalid_arg "Rates.schedule: demands must be positive")
    links;
  let residual = Array.copy demands in
  let unsatisfied () =
    Array.to_list links
    |> List.filter (fun l -> residual.(l.Bg_sinr.Link.id) > 1e-9)
  in
  let slots = ref 0 in
  let transcript = ref [] in
  let progress = ref true in
  while unsatisfied () <> [] && !slots < max_slots && !progress do
    incr slots;
    let pending =
      List.sort (Bg_sinr.Link.compare_by_decay t.I.space) (unsatisfied ())
    in
    (* Build the slot: admit a link when it does not lower the total
       *useful* rate — rate capped by each member's residual demand, so a
       nearly-done link cannot hog a slot with surplus solo rate. *)
    let useful set =
      List.fold_left
        (fun acc lv ->
          acc
          +. Float.min (rate t power set lv) residual.(lv.Bg_sinr.Link.id))
        0. set
    in
    let slot =
      List.fold_left
        (fun acc l ->
          let with_l = l :: acc in
          if useful with_l >= useful acc then with_l else acc)
        [] pending
    in
    let slot = match slot with [] -> [ List.hd pending ] | s -> s in
    progress := false;
    List.iter
      (fun l ->
        let r = rate t power slot l in
        if r > 1e-12 then progress := true;
        let id = l.Bg_sinr.Link.id in
        residual.(id) <- Float.max 0. (residual.(id) -. r))
      slot;
    transcript := slot :: !transcript
  done;
  {
    slots = !slots;
    completed = unsatisfied () = [];
    residual;
    transcript = List.rev !transcript;
  }

let verify ?(power = Bg_sinr.Power.uniform 1.) (t : I.t) ~demands result =
  result.completed
  && begin
       let credit = Array.make (Array.length demands) 0. in
       List.iter
         (fun slot ->
           List.iter
             (fun l ->
               credit.(l.Bg_sinr.Link.id) <-
                 credit.(l.Bg_sinr.Link.id) +. rate t power slot l)
             slot)
         result.transcript;
       Array.for_all
         (fun l ->
           credit.(l.Bg_sinr.Link.id) >= demands.(l.Bg_sinr.Link.id) -. 1e-6)
         t.I.links
     end
