(** Dynamic packet scheduling (the [2], [3], [44] family of §2.3): packets
    arrive stochastically at each link; each slot a policy picks a feasible
    transmission set; a success drains one packet.  The question is
    stability — do queues stay bounded — and at which fraction of the
    capacity region a policy stabilizes, which Proposition 1 transfers to
    decay spaces with the usual zeta-dependence.

    Policies:
    - [Longest_queue_first]: sort backlogged links by queue length and
      admit greedily under an exact SINR check (the classical max-weight
      heuristic).
    - [Random_access p]: each backlogged link transmits independently with
      probability [p] (the decentralized baseline). *)

type policy = Longest_queue_first | Random_access of float

type process =
  | Bernoulli  (** one packet with probability [rate] per slot *)
  | Batch of int
      (** [Batch k]: an arrival event with probability [rate / k] brings
          [k] packets — same mean, burstier *)
  | On_off of { burst : float; idle : float }
      (** two-state Markov modulation with mean burst/idle lengths;
          arrivals only during bursts, scaled to preserve the mean rate *)

type result = {
  slots : int;
  delivered : int;  (** total packets drained *)
  arrived : int;  (** total packets that arrived *)
  mean_backlog : float;  (** time-average of the total queue length *)
  final_backlog : int;
  drift : float;
      (** mean total backlog over the last quarter minus the second
          quarter; near zero for stable systems, strongly positive for
          unstable ones *)
  stable : bool;  (** heuristic verdict: [drift] below one packet per link *)
}

val run :
  ?power:Bg_sinr.Power.t -> ?slots:int -> ?process:process -> policy:policy ->
  arrival_rates:float array -> Bg_prelude.Rng.t -> Bg_sinr.Instance.t ->
  result
(** Simulate [slots] slots (default 2000); [arrival_rates] indexed by link
    id, each in [0, 1], interpreted by [process] (default {!Bernoulli}). *)
