lib/sched/scheduler.ml: Array Bg_capacity Bg_sinr List
