lib/sched/flow.ml: Array Bg_decay Bg_sinr Hashtbl List Queue Scheduler
