lib/sched/dynamic.ml: Array Bg_prelude Bg_sinr Float Fun List
