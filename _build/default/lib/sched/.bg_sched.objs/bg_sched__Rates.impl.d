lib/sched/rates.ml: Array Bg_prelude Bg_sinr Float List
