lib/sched/conflict_graph.ml: Array Bg_graph Bg_sinr Fun List
