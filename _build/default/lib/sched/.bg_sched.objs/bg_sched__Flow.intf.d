lib/sched/flow.mli: Bg_decay Bg_sinr
