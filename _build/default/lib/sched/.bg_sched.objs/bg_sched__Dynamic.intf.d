lib/sched/dynamic.mli: Bg_prelude Bg_sinr
