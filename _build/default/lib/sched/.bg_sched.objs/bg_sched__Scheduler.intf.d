lib/sched/scheduler.mli: Bg_sinr
