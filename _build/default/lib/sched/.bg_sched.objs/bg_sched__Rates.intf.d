lib/sched/rates.mli: Bg_sinr
