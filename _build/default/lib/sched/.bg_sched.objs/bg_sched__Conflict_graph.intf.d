lib/sched/conflict_graph.mli: Bg_graph Bg_sinr
