module D = Bg_decay.Decay_space

type session = { src : int; dst : int }

type result = {
  routed : int;
  unroutable : session list;
  hop_links : (int * int) list;
  slots : int;
  throughput : float;
  schedule : Bg_sinr.Link.t list list;
}

let decodes_solo space ~power ~beta ~noise u v =
  noise <= 0. || power >= beta *. noise *. D.decay space u v

let route space ~power ~beta ~noise { src; dst } =
  let n = D.n space in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Flow.route: endpoint out of range";
  if src = dst then invalid_arg "Flow.route: src equals dst";
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  seen.(src) <- true;
  let queue = Queue.create () in
  Queue.add src queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    for v = 0 to n - 1 do
      if
        (not seen.(v))
        && v <> u
        && decodes_solo space ~power ~beta ~noise u v
      then begin
        seen.(v) <- true;
        parent.(v) <- u;
        if v = dst then found := true else Queue.add v queue
      end
    done
  done;
  if not !found then None
  else begin
    let rec back acc v = if v = src then src :: acc else back (v :: acc) parent.(v) in
    Some (back [] dst)
  end

let run ?(beta = 1.) ?(noise = 0.) ~power space ~sessions =
  let routed = ref 0 in
  let unroutable = ref [] in
  let hops = Hashtbl.create 32 in
  List.iter
    (fun s ->
      match route space ~power ~beta ~noise s with
      | None -> unroutable := s :: !unroutable
      | Some path ->
          incr routed;
          let rec walk = function
            | u :: (v :: _ as rest) ->
                Hashtbl.replace hops (u, v) ();
                walk rest
            | _ -> ()
          in
          walk path)
    sessions;
  let hop_links = Hashtbl.fold (fun k () acc -> k :: acc) hops [] in
  let hop_links = List.sort compare hop_links in
  if hop_links = [] then
    {
      routed = !routed;
      unroutable = List.rev !unroutable;
      hop_links;
      slots = 0;
      throughput = 0.;
      schedule = [];
    }
  else begin
    let inst = Bg_sinr.Instance.make ~noise ~beta ~zeta:1. space hop_links in
    let schedule =
      Scheduler.first_fit ~power:(Bg_sinr.Power.uniform power) inst
    in
    let slots = List.length schedule in
    {
      routed = !routed;
      unroutable = List.rev !unroutable;
      hop_links;
      slots;
      throughput = (if slots = 0 then 0. else 1. /. float_of_int slots);
      schedule;
    }
  end
