(** Conflict-graph approximations of SINR feasibility (Tonoyan [61], [60];
    §3.3 "bounds on the utility of conflict graphs").

    A conflict graph declares two links in conflict when the *pair* is
    SINR-infeasible; graph-based scheduling then treats any independent set
    as a slot.  Because interference is additive, an independent set of the
    conflict graph may still be infeasible — the fidelity gap the paper's
    cited works bound in terms of the space's parameters.  This module
    builds the graph, schedules through it, and measures that gap. *)

val build : ?power:Bg_sinr.Power.t -> Bg_sinr.Instance.t -> Bg_graph.Graph.t
(** Vertex [i] is the i-th link of the instance (array order); edge iff the
    two links are not simultaneously feasible (exact pairwise SINR check). *)

val schedule :
  ?power:Bg_sinr.Power.t -> Bg_sinr.Instance.t -> Bg_sinr.Link.t list list
(** First-fit colouring of {!build} in non-decreasing decay order; slots
    are conflict-graph-independent but only *approximately* SINR-feasible. *)

val graph_capacity : ?power:Bg_sinr.Power.t -> Bg_sinr.Instance.t -> int
(** Maximum independent set of the conflict graph — the graph model's
    (over-)estimate of one-shot capacity. *)

val fidelity :
  ?power:Bg_sinr.Power.t -> Bg_sinr.Instance.t -> float
(** Fraction of {!schedule}'s slots that are genuinely SINR-feasible —
    1.0 means the graph abstraction lost nothing on this instance. *)
