module I = Bg_sinr.Instance
module F = Bg_sinr.Feasibility
module Rng = Bg_prelude.Rng

type policy = Longest_queue_first | Random_access of float

type process =
  | Bernoulli
  | Batch of int
  | On_off of { burst : float; idle : float }

type result = {
  slots : int;
  delivered : int;
  arrived : int;
  mean_backlog : float;
  final_backlog : int;
  drift : float;
  stable : bool;
}

let run ?(power = Bg_sinr.Power.uniform 1.) ?(slots = 2000)
    ?(process = Bernoulli) ~policy ~arrival_rates rng (t : I.t) =
  let links = t.I.links in
  let n = Array.length links in
  Array.iter
    (fun l ->
      let id = l.Bg_sinr.Link.id in
      if id >= Array.length arrival_rates then
        invalid_arg "Dynamic.run: arrival_rates too short";
      let r = arrival_rates.(id) in
      if r < 0. || r > 1. then invalid_arg "Dynamic.run: rate out of [0,1]")
    links;
  (match process with
  | Batch k when k < 1 -> invalid_arg "Dynamic.run: batch size must be >= 1"
  | On_off { burst; idle } when burst <= 0. || idle <= 0. ->
      invalid_arg "Dynamic.run: burst/idle lengths must be positive"
  | Bernoulli | Batch _ | On_off _ -> ());
  let queue = Array.make n 0 in
  (* queue is indexed by position in [links], not by link id. *)
  (* On/off modulation state, one per link (all start in a burst). *)
  let in_burst = Array.make n true in
  let arrivals_for i rate =
    match process with
    | Bernoulli -> if Rng.bernoulli rng rate then 1 else 0
    | Batch k -> if Rng.bernoulli rng (rate /. float_of_int k) then k else 0
    | On_off { burst; idle } ->
        (* Flip the modulation, then arrive only during bursts at a rate
           scaled to preserve the long-run mean. *)
        let flip_p = if in_burst.(i) then 1. /. burst else 1. /. idle in
        if Rng.bernoulli rng flip_p then in_burst.(i) <- not in_burst.(i);
        if in_burst.(i) then begin
          let duty = burst /. (burst +. idle) in
          if Rng.bernoulli rng (Float.min 1. (rate /. duty)) then 1 else 0
        end
        else 0
  in
  let delivered = ref 0 and arrived = ref 0 in
  let backlog_sum = ref 0. in
  let quarter = slots / 4 in
  let q2_sum = ref 0. and q4_sum = ref 0. in
  for slot = 1 to slots do
    (* Arrivals. *)
    Array.iteri
      (fun i l ->
        let k = arrivals_for i arrival_rates.(l.Bg_sinr.Link.id) in
        if k > 0 then begin
          queue.(i) <- queue.(i) + k;
          arrived := !arrived + k
        end)
      links;
    (* Pick the transmission set. *)
    let backlogged =
      List.filter (fun i -> queue.(i) > 0) (List.init n Fun.id)
    in
    let transmitting =
      match policy with
      | Longest_queue_first ->
          let order =
            List.sort (fun a b -> compare queue.(b) queue.(a)) backlogged
          in
          List.rev
            (List.fold_left
               (fun acc i ->
                 let candidate =
                   links.(i) :: List.map (fun j -> links.(j)) acc
                 in
                 if F.is_feasible t power candidate then i :: acc else acc)
               [] order)
      | Random_access p ->
          List.filter (fun _ -> Rng.bernoulli rng p) backlogged
    in
    (* Outcomes: under LQF the set is feasible by construction, but we
       evaluate SINR per link anyway so Random_access collisions fail
       honestly. *)
    let tx_links = List.map (fun i -> links.(i)) transmitting in
    List.iter
      (fun i ->
        if F.sinr t power tx_links links.(i) >= t.I.beta then begin
          queue.(i) <- queue.(i) - 1;
          incr delivered
        end)
      transmitting;
    let total = Array.fold_left ( + ) 0 queue in
    backlog_sum := !backlog_sum +. float_of_int total;
    if slot > quarter && slot <= 2 * quarter then
      q2_sum := !q2_sum +. float_of_int total;
    if slot > 3 * quarter then q4_sum := !q4_sum +. float_of_int total
  done;
  let final_backlog = Array.fold_left ( + ) 0 queue in
  let drift =
    (!q4_sum /. float_of_int (max 1 (slots - (3 * quarter))))
    -. (!q2_sum /. float_of_int (max 1 quarter))
  in
  {
    slots;
    delivered = !delivered;
    arrived = !arrived;
    mean_backlog = !backlog_sum /. float_of_int slots;
    final_backlog;
    drift;
    stable = drift < float_of_int n;
  }
