module I = Bg_sinr.Instance
module F = Bg_sinr.Feasibility

let build ?(power = Bg_sinr.Power.uniform 1.) (t : I.t) =
  let links = t.I.links in
  let n = Array.length links in
  let g = Bg_graph.Graph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (F.is_feasible t power [ links.(i); links.(j) ]) then
        Bg_graph.Graph.add_edge g i j
    done
  done;
  g

let schedule ?power (t : I.t) =
  let g = build ?power t in
  let links = t.I.links in
  let n = Array.length links in
  let order =
    List.sort
      (fun i j -> Bg_sinr.Link.compare_by_decay t.I.space links.(i) links.(j))
      (List.init n Fun.id)
  in
  let color = Array.make n (-1) in
  let ncolors = ref 0 in
  List.iter
    (fun i ->
      let used = Array.make (!ncolors + 1) false in
      for j = 0 to n - 1 do
        if color.(j) >= 0 && Bg_graph.Graph.has_edge g i j then
          used.(color.(j)) <- true
      done;
      let c = ref 0 in
      while !c < !ncolors && used.(!c) do
        incr c
      done;
      color.(i) <- !c;
      if !c = !ncolors then incr ncolors)
    order;
  List.init !ncolors (fun c ->
      List.filteri (fun i _ -> color.(i) = c) (Array.to_list links))

let graph_capacity ?power (t : I.t) =
  List.length (Bg_graph.Mis.exact ~limit:64 (build ?power t))

let fidelity ?power (t : I.t) =
  let slots = schedule ?power t in
  if slots = [] then 1.
  else begin
    let p =
      match power with Some p -> p | None -> Bg_sinr.Power.uniform 1.
    in
    let good =
      List.length (List.filter (fun s -> F.is_feasible t p s) slots)
    in
    float_of_int good /. float_of_int (List.length slots)
  end
