(** Points in 3-space.  The paper's dimension story generalizes off the
    plane — independence dimension is bounded by the ambient kissing number
    (12 in R^3) and the Assouad dimension of [d^alpha] decay is
    [3 / alpha] — so the library carries a 3-D substrate for multi-floor /
    volumetric deployments. *)

type t = { x : float; y : float; z : float }

val make : float -> float -> float -> t
val origin : t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val dot : t -> t -> float

val cross : t -> t -> t
(** 3-D cross product. *)

val norm : t -> float
val dist : t -> t -> float
val dist2 : t -> t -> float

val lerp : t -> t -> float -> t
val equal : ?eps:float -> t -> t -> bool

val angle_between : t -> t -> float
(** Unsigned angle in radians between non-zero vectors. *)

val pp : Format.formatter -> t -> unit
