(** Points and vectors in the plane.

    The paper's baseline (GEO-SINR) lives in Euclidean space; we use 2-D
    points both for planar instances and as the substrate the radio
    simulator attenuates through walls. *)

type t = { x : float; y : float }

val make : float -> float -> t
val origin : t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val dot : t -> t -> float
(** Euclidean inner product. *)

val cross : t -> t -> float
(** 2-D cross product (signed area of the parallelogram). *)

val norm : t -> float
(** Euclidean length. *)

val dist : t -> t -> float
(** Euclidean distance. *)

val dist2 : t -> t -> float
(** Squared Euclidean distance (no square root). *)

val angle_between : t -> t -> float
(** Unsigned angle in radians between two non-zero vectors, in [0, pi]. *)

val rotate : float -> t -> t
(** Rotate a vector by an angle (radians, counter-clockwise). *)

val lerp : t -> t -> float -> t
(** [lerp a b t] is the affine interpolation [(1-t)a + t b]. *)

val equal : ?eps:float -> t -> t -> bool
(** Componentwise approximate equality. *)

val pp : Format.formatter -> t -> unit
(** Prints as [(x, y)]. *)
