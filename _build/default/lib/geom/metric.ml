type t = { n : int; d : float array array }

let of_matrix m =
  let n = Array.length m in
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Metric.of_matrix: not square")
    m;
  for i = 0 to n - 1 do
    if m.(i).(i) <> 0. then invalid_arg "Metric.of_matrix: nonzero diagonal";
    for j = 0 to n - 1 do
      if m.(i).(j) < 0. then invalid_arg "Metric.of_matrix: negative distance";
      if i <> j && m.(i).(j) = 0. then
        invalid_arg "Metric.of_matrix: zero distance between distinct points"
    done
  done;
  { n; d = Array.map Array.copy m }

let of_points points =
  let pts = Array.of_list points in
  let n = Array.length pts in
  let d = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then d.(i).(j) <- Point.dist pts.(i) pts.(j)
    done
  done;
  { n; d }

let of_points3 points =
  let pts = Array.of_list points in
  let n = Array.length pts in
  let d = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then d.(i).(j) <- Point3.dist pts.(i) pts.(j)
    done
  done;
  { n; d }

let uniform n =
  let d = Array.make_matrix n n 1. in
  for i = 0 to n - 1 do
    d.(i).(i) <- 0.
  done;
  { n; d }

let line coords =
  let xs = Array.of_list coords in
  let n = Array.length xs in
  let d = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      d.(i).(j) <- Float.abs (xs.(i) -. xs.(j))
    done
  done;
  { n; d }

let scale k m =
  if k <= 0. then invalid_arg "Metric.scale: factor must be positive";
  { n = m.n; d = Array.map (Array.map (fun x -> k *. x)) m.d }

let check_symmetry m =
  let ok = ref true in
  for i = 0 to m.n - 1 do
    for j = 0 to m.n - 1 do
      if m.d.(i).(j) <> m.d.(j).(i) then ok := false
    done
  done;
  !ok

let check_triangle ?(eps = 1e-9) m =
  let ok = ref true in
  for i = 0 to m.n - 1 do
    for j = 0 to m.n - 1 do
      for k = 0 to m.n - 1 do
        let slack = eps *. Float.max 1. m.d.(i).(j) in
        if m.d.(i).(j) > m.d.(i).(k) +. m.d.(k).(j) +. slack then ok := false
      done
    done
  done;
  !ok

let is_metric m = check_symmetry m && check_triangle m

let shortest_paths m =
  let d = Array.map Array.copy m.d in
  let n = m.n in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let via = d.(i).(k) +. d.(k).(j) in
        if via < d.(i).(j) then d.(i).(j) <- via
      done
    done
  done;
  { n; d }

(* Greedy cover of ball B(c, r) by balls of radius r/2 centred at points of
   the space: repeatedly pick an uncovered point of the ball as a new centre. *)
let cover_count m c r =
  let members = ref [] in
  for i = m.n - 1 downto 0 do
    if m.d.(c).(i) <= r then members := i :: !members
  done;
  let covered = Hashtbl.create 16 in
  let count = ref 0 in
  List.iter
    (fun p ->
      if not (Hashtbl.mem covered p) then begin
        incr count;
        List.iter
          (fun q -> if m.d.(p).(q) <= r /. 2. then Hashtbl.replace covered q ())
          !members
      end)
    !members;
  !count

let doubling_constant m =
  if m.n = 0 then 1
  else begin
    (* Candidate radii: all distinct pairwise distances. *)
    let radii = Hashtbl.create 64 in
    for i = 0 to m.n - 1 do
      for j = 0 to m.n - 1 do
        if i <> j then Hashtbl.replace radii m.d.(i).(j) ()
      done
    done;
    let best = ref 1 in
    Hashtbl.iter
      (fun r () ->
        for c = 0 to m.n - 1 do
          let k = cover_count m c r in
          if k > !best then best := k
        done)
      radii;
    !best
  end
