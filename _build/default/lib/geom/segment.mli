(** Line segments, used to model walls in the radio environment: the
    multi-wall propagation model charges an attenuation per wall a link's
    line-of-sight path crosses, so segment intersection is the geometric
    primitive of the simulator. *)

type t = { a : Point.t; b : Point.t }

val make : Point.t -> Point.t -> t
val length : t -> float
val midpoint : t -> Point.t

val intersects : t -> t -> bool
(** Proper or touching intersection of two closed segments. *)

val intersection : t -> t -> Point.t option
(** Intersection point of two non-parallel segments, if they intersect;
    [None] for parallel/collinear or disjoint segments. *)

val dist_point : t -> Point.t -> float
(** Euclidean distance from a point to the (closed) segment. *)

val crossings : t -> t list -> int
(** [crossings path walls] counts how many of [walls] the segment [path]
    intersects — the wall count in the multi-wall model. *)
