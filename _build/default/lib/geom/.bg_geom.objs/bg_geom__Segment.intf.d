lib/geom/segment.mli: Point
