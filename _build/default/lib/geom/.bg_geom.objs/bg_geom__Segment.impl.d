lib/geom/segment.ml: Bg_prelude Float List Point
