lib/geom/point3.ml: Bg_prelude Float Format
