lib/geom/point.mli: Format
