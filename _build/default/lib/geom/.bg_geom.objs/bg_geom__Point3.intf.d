lib/geom/point3.mli: Format
