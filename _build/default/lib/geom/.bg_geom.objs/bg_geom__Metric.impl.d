lib/geom/metric.ml: Array Float Hashtbl List Point Point3
