lib/geom/point.ml: Bg_prelude Float Format
