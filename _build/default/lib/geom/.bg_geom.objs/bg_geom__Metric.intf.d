lib/geom/metric.mli: Point Point3
