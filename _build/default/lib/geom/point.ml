type t = { x : float; y : float }

let make x y = { x; y }
let origin = { x = 0.; y = 0. }
let add a b = { x = a.x +. b.x; y = a.y +. b.y }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y }
let scale k a = { x = k *. a.x; y = k *. a.y }
let dot a b = (a.x *. b.x) +. (a.y *. b.y)
let cross a b = (a.x *. b.y) -. (a.y *. b.x)
let norm a = sqrt (dot a a)

let dist2 a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  (dx *. dx) +. (dy *. dy)

let dist a b = sqrt (dist2 a b)

let angle_between a b =
  let na = norm a and nb = norm b in
  if na = 0. || nb = 0. then invalid_arg "Point.angle_between: zero vector";
  let c = dot a b /. (na *. nb) in
  acos (Bg_prelude.Numerics.clamp ~lo:(-1.) ~hi:1. c)

let rotate theta a =
  let c = cos theta and s = sin theta in
  { x = (c *. a.x) -. (s *. a.y); y = (s *. a.x) +. (c *. a.y) }

let lerp a b t = add (scale (1. -. t) a) (scale t b)

let equal ?(eps = 1e-9) a b =
  Float.abs (a.x -. b.x) <= eps && Float.abs (a.y -. b.y) <= eps

let pp fmt a = Format.fprintf fmt "(%g, %g)" a.x a.y
