(** Finite metric (and quasi-metric) spaces as explicit distance matrices.

    Decay spaces generalize metrics; this module provides the metric side:
    constructions, axiom checking, and classical instances used throughout
    the paper (Euclidean point sets, the uniform metric of independence
    dimension 1, shortest-path metrics). *)

type t = { n : int; d : float array array }
(** A finite (quasi-)metric: [d.(i).(j)] is the distance from [i] to [j]. *)

val of_matrix : float array array -> t
(** Wrap a square matrix; validates shape, non-negativity and zero
    diagonal. *)

val of_points : Point.t list -> t
(** Euclidean metric of a planar point set. *)

val of_points3 : Point3.t list -> t
(** Euclidean metric of a 3-D point set. *)

val uniform : int -> t
(** All distances 1: the uniform metric (independence dimension 1 but
    unbounded doubling dimension — §4.1 of the paper). *)

val line : float list -> t
(** Points on the real line at the given coordinates. *)

val scale : float -> t -> t
(** Multiply all distances by a positive constant. *)

val check_symmetry : t -> bool
(** Whether [d(i,j) = d(j,i)] for all pairs. *)

val check_triangle : ?eps:float -> t -> bool
(** Whether the triangle inequality holds for all ordered triples (within a
    relative tolerance). *)

val is_metric : t -> bool
(** Symmetry + triangle inequality + identity of indiscernibles. *)

val shortest_paths : t -> t
(** Metric closure via Floyd–Warshall: the largest metric dominated by the
    input weights. *)

val doubling_constant : t -> int
(** Empirical doubling constant: the maximum over (centre, radius) drawn
    from the pairwise distances of the minimum number of half-radius balls
    needed to cover a ball (greedy cover, so an upper-bound estimate).
    The doubling dimension is [log2] of this value. *)
