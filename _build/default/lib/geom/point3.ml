type t = { x : float; y : float; z : float }

let make x y z = { x; y; z }
let origin = { x = 0.; y = 0.; z = 0. }
let add a b = { x = a.x +. b.x; y = a.y +. b.y; z = a.z +. b.z }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y; z = a.z -. b.z }
let scale k a = { x = k *. a.x; y = k *. a.y; z = k *. a.z }
let dot a b = (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)

let cross a b =
  {
    x = (a.y *. b.z) -. (a.z *. b.y);
    y = (a.z *. b.x) -. (a.x *. b.z);
    z = (a.x *. b.y) -. (a.y *. b.x);
  }

let norm a = sqrt (dot a a)

let dist2 a b =
  let d = sub a b in
  dot d d

let dist a b = sqrt (dist2 a b)

let lerp a b t = add (scale (1. -. t) a) (scale t b)

let equal ?(eps = 1e-9) a b =
  Float.abs (a.x -. b.x) <= eps
  && Float.abs (a.y -. b.y) <= eps
  && Float.abs (a.z -. b.z) <= eps

let angle_between a b =
  let na = norm a and nb = norm b in
  if na = 0. || nb = 0. then invalid_arg "Point3.angle_between: zero vector";
  acos (Bg_prelude.Numerics.clamp ~lo:(-1.) ~hi:1. (dot a b /. (na *. nb)))

let pp fmt a = Format.fprintf fmt "(%g, %g, %g)" a.x a.y a.z
