type t = { a : Point.t; b : Point.t }

let make a b = { a; b }
let length s = Point.dist s.a s.b
let midpoint s = Point.lerp s.a s.b 0.5

(* Robust-enough orientation test for our synthetic floor plans. *)
let orientation p q r =
  let v = Point.cross (Point.sub q p) (Point.sub r p) in
  if v > 1e-12 then 1 else if v < -1e-12 then -1 else 0

let on_segment p q r =
  (* Assuming p, q, r collinear: does q lie on [p, r]? *)
  Float.min p.Point.x r.Point.x <= q.Point.x
  && q.Point.x <= Float.max p.Point.x r.Point.x
  && Float.min p.Point.y r.Point.y <= q.Point.y
  && q.Point.y <= Float.max p.Point.y r.Point.y

let intersects s1 s2 =
  let p1 = s1.a and q1 = s1.b and p2 = s2.a and q2 = s2.b in
  let o1 = orientation p1 q1 p2 in
  let o2 = orientation p1 q1 q2 in
  let o3 = orientation p2 q2 p1 in
  let o4 = orientation p2 q2 q1 in
  if o1 <> o2 && o3 <> o4 then true
  else
    (o1 = 0 && on_segment p1 p2 q1)
    || (o2 = 0 && on_segment p1 q2 q1)
    || (o3 = 0 && on_segment p2 p1 q2)
    || (o4 = 0 && on_segment p2 q1 q2)

let intersection s1 s2 =
  let d1 = Point.sub s1.b s1.a and d2 = Point.sub s2.b s2.a in
  let denom = Point.cross d1 d2 in
  if Float.abs denom < 1e-12 then None
  else begin
    let diff = Point.sub s2.a s1.a in
    let t = Point.cross diff d2 /. denom in
    let u = Point.cross diff d1 /. denom in
    if t >= 0. && t <= 1. && u >= 0. && u <= 1. then
      Some (Point.add s1.a (Point.scale t d1))
    else None
  end

let dist_point s p =
  let d = Point.sub s.b s.a in
  let len2 = Point.dot d d in
  if len2 = 0. then Point.dist s.a p
  else begin
    let t =
      Bg_prelude.Numerics.clamp ~lo:0. ~hi:1.
        (Point.dot (Point.sub p s.a) d /. len2)
    in
    Point.dist p (Point.add s.a (Point.scale t d))
  end

let crossings path walls =
  List.fold_left (fun acc w -> if intersects path w then acc + 1 else acc) 0 walls
