(** SINR feasibility of simultaneous transmissions (§2.1).

    A set [S] transmits successfully iff every link's SINR clears the
    threshold:  [SINR_v = (P_v / f_vv) / (N + sum_{w in S, w<>v} P_w / f_wv)
    >= beta].  Feasibility under a fixed power assignment is downward
    closed (removing links only removes interference), which the exact
    capacity solver exploits. *)

val sinr : Instance.t -> Power.t -> Link.t list -> Link.t -> float
(** SINR of one link when the given set transmits ([infinity] with no noise
    and no interferers).  The set may include the link itself. *)

val is_feasible : Instance.t -> Power.t -> Link.t list -> bool
(** Whether every link in the set clears [beta] (SINR form). *)

val is_feasible_affectance : ?k:float -> Instance.t -> Power.t -> Link.t list -> bool
(** Affectance form: [a_S(v) <= 1/k] for all [v] (default [k = 1.]).
    Equivalent to {!is_feasible} when no term clips; used by the
    K-feasibility arguments. *)

val worst_sinr : Instance.t -> Power.t -> Link.t list -> float
(** Minimum SINR over the set ([infinity] for the empty set). *)

val max_in_affectance : Instance.t -> Power.t -> Link.t list -> float
(** [max_v a_S(v)] over the set — the quantity the schedulers bound. *)
