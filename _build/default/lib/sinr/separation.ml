let is_separated_from t ~eta lv set =
  let dvv = Instance.link_length t lv in
  List.for_all
    (fun lw ->
      lw.Link.id = lv.Link.id || Instance.link_dist t lv lw >= eta *. dvv)
    set

let is_separated_set t ~eta set =
  List.for_all (fun lv -> is_separated_from t ~eta lv set) set

let separation t a b =
  let m = Float.max (Instance.link_length t a) (Instance.link_length t b) in
  Instance.link_dist t a b /. m

let min_separation t set =
  let rec go acc = function
    | [] -> acc
    | lv :: rest ->
        let acc =
          List.fold_left (fun m lw -> Float.min m (separation t lv lw)) acc rest
        in
        go acc rest
  in
  go infinity set
