(** Constructive versions of the paper's sparsification lemmas.

    - Lemma B.1 (signal strengthening, from [35]): any p-feasible set splits
      into at most [ceil(2q/p)^2] q-feasible sets.
    - Lemma B.3: a tau-separated set splits into [O((eta/tau)^A')]
      eta-separated sets (first-fit colouring of the rho-inductive
      length order).
    - Lemma 4.1: their composition — a feasible set splits into
      [O(zeta^(2A'))] zeta-separated sets.

    The implementations are first-fit constructions whose *outputs are
    correct by construction* (each class passes the defining predicate);
    the class *counts* are what the lemmas bound, and the experiment suite
    compares measured counts against the stated bounds. *)

val strengthen :
  Instance.t -> Power.t -> q:float -> Link.t list -> Link.t list list
(** Partition into q-feasible classes (every class satisfies
    [a_C(v) <= 1/q] for each member): first-fit over links in
    non-increasing decay order, opening a new class when no existing class
    admits the link with in- and out-affectance headroom [1/(2q)]. *)

val separate :
  Instance.t -> eta:float -> Link.t list -> Link.t list list
(** Partition into [eta]-separated classes by first-fit colouring in
    non-increasing length order. *)

val sparsify :
  Instance.t -> Power.t -> ?q:float -> eta:float -> Link.t list ->
  Link.t list list
(** Lemma 4.1's composition: signal-strengthen to [q]-feasibility (default
    [q = e^2 / beta]), then split every class into [eta]-separated classes.
    Returns the flat list of classes; each is both q-feasible and
    eta-separated. *)

val largest : 'a list list -> 'a list
(** The biggest class of a partition (empty list for an empty partition). *)
