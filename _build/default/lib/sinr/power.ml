type t =
  | Uniform of float
  | Scaled of { coeff : float; tau : float }
  | Custom of float array

let uniform p =
  if p <= 0. then invalid_arg "Power.uniform: power must be positive";
  Uniform p

let linear ~coeff = Scaled { coeff; tau = 1. }
let mean ~coeff = Scaled { coeff; tau = 0.5 }

let value t space link =
  match t with
  | Uniform p -> p
  | Scaled { coeff; tau } -> coeff *. (Link.self_decay space link ** tau)
  | Custom arr ->
      if link.Link.id < 0 || link.Link.id >= Array.length arr then
        invalid_arg "Power.value: link id out of range of custom powers";
      arr.(link.Link.id)

let is_monotone t space links =
  let ok = ref true in
  Array.iter
    (fun lv ->
      Array.iter
        (fun lw ->
          let fv = Link.self_decay space lv and fw = Link.self_decay space lw in
          if fv <= fw then begin
            let pv = value t space lv and pw = value t space lw in
            (* Powers non-decreasing, received strengths non-increasing. *)
            if pv > pw *. (1. +. 1e-9) then ok := false;
            if pw /. fw > pv /. fv *. (1. +. 1e-9) then ok := false
          end)
        links)
    links;
  !ok
