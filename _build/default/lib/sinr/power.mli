(** Power assignments (§2.4).

    The paper's monotone power assignments require, for links ordered by
    non-decreasing signal decay [f_vv]: powers non-decreasing
    ([P_v <= P_w]) and received signal strengths non-increasing
    ([P_w / f_ww <= P_v / f_vv]).  The one-parameter family
    [P_v = coeff * f_vv^tau] with [tau in 0..1] spans the standard schemes:
    [tau = 0] uniform, [tau = 1/2] mean (square-root) power, [tau = 1]
    linear power. *)

type t =
  | Uniform of float  (** every sender uses this power *)
  | Scaled of { coeff : float; tau : float }
      (** [P_v = coeff * f_vv^tau]; monotone iff [0 <= tau <= 1] *)
  | Custom of float array  (** explicit per-link powers, indexed by link id *)

val uniform : float -> t
val linear : coeff:float -> t
val mean : coeff:float -> t

val value : t -> Bg_decay.Decay_space.t -> Link.t -> float
(** The transmission power a link uses under the assignment. *)

val is_monotone : t -> Bg_decay.Decay_space.t -> Link.t array -> bool
(** Check the two monotonicity conditions over all link pairs. *)
