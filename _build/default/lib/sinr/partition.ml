let by_decreasing_decay (t : Instance.t) links =
  List.sort
    (fun a b -> Link.compare_by_decay t.Instance.space b a)
    links

let strengthen t power ~q links =
  if q <= 0. then invalid_arg "Partition.strengthen: q must be positive";
  let budget = 1. /. (2. *. q) in
  let classes : Link.t list list ref = ref [] in
  let place lv =
    let rec try_classes acc = function
      | [] -> classes := List.rev ([ lv ] :: acc)
      | c :: rest ->
          let fits =
            Affectance.in_affectance t power c lv <= budget
            && List.for_all
                 (fun lw ->
                   Affectance.in_affectance t power (lv :: c) lw <= 1. /. q)
                 c
          in
          if fits then classes := List.rev_append acc ((lv :: c) :: rest)
          else try_classes (c :: acc) rest
    in
    try_classes [] !classes
  in
  List.iter place (by_decreasing_decay t links);
  !classes

let separate t ~eta links =
  let classes : Link.t list list ref = ref [] in
  let place lv =
    let rec try_classes acc = function
      | [] -> classes := List.rev ([ lv ] :: acc)
      | c :: rest ->
          if
            Separation.is_separated_from t ~eta lv c
            && List.for_all
                 (fun lw -> Separation.is_separated_from t ~eta lw [ lv ])
                 c
          then classes := List.rev_append acc ((lv :: c) :: rest)
          else try_classes (c :: acc) rest
    in
    try_classes [] !classes
  in
  List.iter place (by_decreasing_decay t links);
  !classes

let sparsify t power ?q ~eta links =
  let q =
    match q with
    | Some q -> q
    | None -> Float.exp 2. /. t.Instance.beta
  in
  let strengthened = strengthen t power ~q links in
  List.concat_map (fun c -> separate t ~eta c) strengthened

let largest classes =
  List.fold_left
    (fun best c -> if List.length c > List.length best then c else best)
    [] classes
