(** Communication links: ordered sender/receiver pairs of decay-space nodes
    (§2.1).  A link [l_v = (s_v, r_v)] has signal decay
    [f_vv = f(s_v, r_v)]; the interference-relevant decay from link [l_w]
    onto [l_v] is [f_wv = f(s_w, r_v)]. *)

type t = { id : int; sender : int; receiver : int }

val make : id:int -> sender:int -> receiver:int -> t
(** Sender and receiver must be distinct nodes. *)

val of_pairs : (int * int) list -> t array
(** Number a list of (sender, receiver) endpoint pairs with ids [0..]. *)

val self_decay : Bg_decay.Decay_space.t -> t -> float
(** [f_vv = f(s_v, r_v)], the decay of the link's own signal. *)

val cross_decay : Bg_decay.Decay_space.t -> from_:t -> to_:t -> float
(** [f_wv = f(s_w, r_v)], decay of [from_]'s signal at [to_]'s receiver. *)

val compare_by_decay : Bg_decay.Decay_space.t -> t -> t -> int
(** The total order of §2.4: non-decreasing [f_vv], ties by id. *)
