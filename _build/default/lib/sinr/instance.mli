(** A CAPACITY/SCHEDULING problem instance: a decay space, a set of links
    living in it, the ambient noise [N] and the SINR threshold [beta >= 1],
    together with the space's metricity (computed once; every
    quasi-distance-based algorithm needs it). *)

type t = private {
  space : Bg_decay.Decay_space.t;
  links : Link.t array;
  noise : float;
  beta : float;
  zeta : float;
}

val make :
  ?noise:float -> ?beta:float -> ?zeta:float ->
  Bg_decay.Decay_space.t -> (int * int) list -> t
(** Build an instance from a decay space and link endpoint pairs.  Defaults:
    [noise = 0.], [beta = 1.]; [zeta] is computed exactly from the space
    when not supplied (O(n^3) — supply it for big spaces). *)

val with_links : t -> Link.t array -> t
(** Same space and parameters, different link subset. *)

val n_links : t -> int

val link : t -> int -> Link.t
(** Link by id. *)

val quasi_dist : t -> int -> int -> float
(** Quasi-distance [f(p,q)^(1/zeta)] between two nodes. *)

val link_length : t -> Link.t -> float
(** [d_vv]: the quasi-length of a link. *)

val link_dist : t -> Link.t -> Link.t -> float
(** [d(l_v, l_w) = min] over the four endpoint quasi-distances (§2.4). *)

(** {2 Generators} *)

val random_planar :
  ?noise:float -> ?beta:float -> Bg_prelude.Rng.t -> n_links:int ->
  side:float -> alpha:float -> lmin:float -> lmax:float -> t
(** GEO-SINR instance: [n_links] links with senders uniform in a square and
    receivers at uniform angle and length in [lmin, lmax]; decay is
    Euclidean [d^alpha] (so [zeta = alpha], set without recomputation). *)

val equi_decay_of_space :
  ?noise:float -> ?beta:float -> ?zeta:float ->
  Bg_decay.Decay_space.t -> (int * int) list -> t
(** Instance over an existing space whose links are checked to have equal
    self-decays (the "equi-decay links" of Theorems 3 and 6).
    @raise Invalid_argument if self-decays differ by more than 1e-6
    relative. *)

val random_links_in_space :
  ?noise:float -> ?beta:float -> ?zeta:float -> Bg_prelude.Rng.t ->
  n_links:int -> max_decay:float -> Bg_decay.Decay_space.t -> t
(** Sample sender/receiver pairs (distinct nodes, without reuse of nodes)
    whose self-decay is at most [max_decay] — how we extract a link workload
    from a measured/simulated decay space.  Fails if the space cannot host
    that many disjoint links under the decay cap. *)
