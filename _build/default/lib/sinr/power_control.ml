let gain_matrix (t : Instance.t) set =
  let links = Array.of_list set in
  let k = Array.length links in
  let space = t.Instance.space in
  Array.init k (fun v ->
      Array.init k (fun w ->
          if v = w then 0.
          else
            t.Instance.beta
            *. Link.self_decay space links.(v)
            /. Link.cross_decay space ~from_:links.(w) ~to_:links.(v)))

let spectral_radius t set =
  Bg_prelude.Numerics.spectral_radius (gain_matrix t set)

let is_feasible ?(margin = 1e-9) t set =
  match set with
  | [] -> true
  | [ lv ] ->
      (* A single link is feasible iff it overcomes noise with some finite
         power, which is always possible when N = 0, or at any power above
         beta * N * f_vv. *)
      ignore lv;
      true
  | _ -> spectral_radius t set < 1. -. margin

let min_powers (t : Instance.t) set =
  if set = [] then Some [||]
  else if not (is_feasible t set) then None
  else begin
    let b = gain_matrix t set in
    let links = Array.of_list set in
    let k = Array.length links in
    let space = t.Instance.space in
    (* With zero noise the problem is scale-free and the fixed point of
       P = BP is 0; substitute a unit drive (u = 1) — the fixed point of
       P = BP + 1 is strictly positive, clears beta with slack, and is
       rescaled afterwards. *)
    let zero_noise = t.Instance.noise = 0. in
    let u =
      if zero_noise then Array.make k 1.
      else
        Array.map
          (fun lv ->
            t.Instance.beta *. t.Instance.noise *. Link.self_decay space lv)
          links
    in
    let p = Array.make k 1. in
    let next = Array.make k 0. in
    for _ = 1 to 1000 do
      for v = 0 to k - 1 do
        let acc = ref u.(v) in
        for w = 0 to k - 1 do
          acc := !acc +. (b.(v).(w) *. p.(w))
        done;
        next.(v) <- !acc
      done;
      Array.blit next 0 p 0 k
    done;
    if zero_noise then begin
      let m = Array.fold_left Float.max 0. p in
      if m > 0. then
        for v = 0 to k - 1 do
          p.(v) <- p.(v) /. m
        done
    end;
    Some p
  end
