let sinr (t : Instance.t) power set lv =
  let space = t.Instance.space in
  let pv = Power.value power space lv in
  let signal = pv /. Link.self_decay space lv in
  let interference =
    List.fold_left
      (fun acc lw ->
        if lw.Link.id = lv.Link.id then acc
        else
          acc
          +. Power.value power space lw
             /. Link.cross_decay space ~from_:lw ~to_:lv)
      0. set
  in
  let denom = t.Instance.noise +. interference in
  if denom = 0. then infinity else signal /. denom

let is_feasible t power set =
  List.for_all (fun lv -> sinr t power set lv >= t.Instance.beta) set

let is_feasible_affectance ?(k = 1.) t power set =
  List.for_all (fun lv -> Affectance.in_affectance t power set lv <= 1. /. k) set

let worst_sinr t power set =
  List.fold_left (fun acc lv -> Float.min acc (sinr t power set lv)) infinity set

let max_in_affectance t power set =
  List.fold_left
    (fun acc lv -> Float.max acc (Affectance.in_affectance t power set lv))
    0. set
