lib/sinr/affectance.ml: Float Instance Link List Power
