lib/sinr/link.mli: Bg_decay
