lib/sinr/affectance.mli: Instance Link Power
