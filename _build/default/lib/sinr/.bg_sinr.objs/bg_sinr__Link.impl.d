lib/sinr/link.ml: Array Bg_decay Float List
