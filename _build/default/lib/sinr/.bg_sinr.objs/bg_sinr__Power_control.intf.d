lib/sinr/power_control.mli: Instance Link
