lib/sinr/inductive.mli: Bg_prelude Instance Link Power
