lib/sinr/power_control.ml: Array Bg_prelude Float Instance Link
