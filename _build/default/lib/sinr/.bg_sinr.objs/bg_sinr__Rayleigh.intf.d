lib/sinr/rayleigh.mli: Bg_prelude Instance Link Power
