lib/sinr/separation.ml: Float Instance Link List
