lib/sinr/inductive.ml: Affectance Array Bg_prelude Feasibility Instance Link List
