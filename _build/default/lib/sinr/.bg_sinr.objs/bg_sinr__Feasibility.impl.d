lib/sinr/feasibility.ml: Affectance Float Instance Link List Power
