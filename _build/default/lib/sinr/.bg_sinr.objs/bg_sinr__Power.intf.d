lib/sinr/power.mli: Bg_decay Link
