lib/sinr/instance.ml: Array Bg_decay Bg_geom Bg_prelude Float Link List
