lib/sinr/feasibility.mli: Instance Link Power
