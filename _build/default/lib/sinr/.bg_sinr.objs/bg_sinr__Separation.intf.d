lib/sinr/separation.mli: Instance Link
