lib/sinr/power.ml: Array Link
