lib/sinr/partition.mli: Instance Link Power
