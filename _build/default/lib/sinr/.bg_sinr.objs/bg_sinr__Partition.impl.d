lib/sinr/partition.ml: Affectance Float Instance Link List Separation
