lib/sinr/instance.mli: Bg_decay Bg_prelude Link
