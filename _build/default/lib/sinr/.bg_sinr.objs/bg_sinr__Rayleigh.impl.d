lib/sinr/rayleigh.ml: Bg_prelude Instance Link List Power
