module P = Bg_geom.Point

type t = {
  space : Bg_decay.Decay_space.t;
  links : Link.t array;
  noise : float;
  beta : float;
  zeta : float;
}

let make ?(noise = 0.) ?(beta = 1.) ?zeta space pairs =
  if noise < 0. then invalid_arg "Instance.make: negative noise";
  if beta < 1. then invalid_arg "Instance.make: beta must be >= 1";
  let zeta =
    match zeta with Some z -> z | None -> Bg_decay.Metricity.zeta space
  in
  { space; links = Link.of_pairs pairs; noise; beta; zeta }

let with_links t links = { t with links }
let n_links t = Array.length t.links

let link t id =
  match Array.find_opt (fun l -> l.Link.id = id) t.links with
  | Some l -> l
  | None -> invalid_arg "Instance.link: no such id"

let quasi_dist t p q = Bg_decay.Quasi_metric.distance ~zeta:t.zeta t.space p q
let link_length t l = quasi_dist t l.Link.sender l.Link.receiver

let link_dist t a b =
  let s1 = a.Link.sender and r1 = a.Link.receiver in
  let s2 = b.Link.sender and r2 = b.Link.receiver in
  Float.min
    (Float.min (quasi_dist t s1 r2) (quasi_dist t s2 r1))
    (Float.min (quasi_dist t s1 s2) (quasi_dist t r1 r2))

let random_planar ?noise ?beta rng ~n_links ~side ~alpha ~lmin ~lmax =
  if lmin <= 0. || lmax < lmin then
    invalid_arg "Instance.random_planar: need 0 < lmin <= lmax";
  let points = ref [] and pairs = ref [] in
  for i = 0 to n_links - 1 do
    let sx = Bg_prelude.Rng.float rng side
    and sy = Bg_prelude.Rng.float rng side in
    let len = Bg_prelude.Rng.uniform rng lmin lmax in
    let theta = Bg_prelude.Rng.float rng (2. *. Float.pi) in
    let s = P.make sx sy in
    let r = P.make (sx +. (len *. cos theta)) (sy +. (len *. sin theta)) in
    points := r :: s :: !points;
    pairs := (2 * i, (2 * i) + 1) :: !pairs
  done;
  let space =
    Bg_decay.Decay_space.of_points ~name:"planar-instance" ~alpha
      (List.rev !points)
  in
  make ?noise ?beta ~zeta:alpha space (List.rev !pairs)

let equi_decay_of_space ?noise ?beta ?zeta space pairs =
  let t = make ?noise ?beta ?zeta space pairs in
  if Array.length t.links > 0 then begin
    let f0 = Link.self_decay space t.links.(0) in
    Array.iter
      (fun l ->
        let f = Link.self_decay space l in
        if Float.abs (f -. f0) > 1e-6 *. Float.max 1. f0 then
          invalid_arg "Instance.equi_decay_of_space: unequal link decays")
      t.links
  end;
  t

let random_links_in_space ?noise ?beta ?zeta rng ~n_links ~max_decay space =
  let n = Bg_decay.Decay_space.n space in
  let used = Array.make n false in
  let pairs = ref [] in
  let found = ref 0 in
  let attempts = ref 0 in
  let max_attempts = 1000 * n_links in
  while !found < n_links && !attempts < max_attempts do
    incr attempts;
    let s = Bg_prelude.Rng.int rng n in
    let r = Bg_prelude.Rng.int rng n in
    if
      s <> r
      && (not used.(s))
      && (not used.(r))
      && Bg_decay.Decay_space.decay space s r <= max_decay
    then begin
      used.(s) <- true;
      used.(r) <- true;
      pairs := (s, r) :: !pairs;
      incr found
    end
  done;
  if !found < n_links then
    invalid_arg
      "Instance.random_links_in_space: could not place the requested links";
  make ?noise ?beta ?zeta space (List.rev !pairs)
