(* With Rayleigh fading, the desired received power is S = X_v * P_v/f_vv
   and each interfering power is I_w = X_w * P_w/f_wv, all X i.i.d. Exp(1).
   Success means S >= beta (N + sum I_w).  Conditioning on the X_w and
   integrating X_v's exponential tail gives the product closed form. *)

let success_probability (t : Instance.t) power ~interferers lv =
  let space = t.Instance.space in
  let pv = Power.value power space lv in
  let fvv = Link.self_decay space lv in
  let signal = pv /. fvv in
  let noise_term = exp (-.t.Instance.beta *. t.Instance.noise /. signal) in
  List.fold_left
    (fun acc lw ->
      if lw.Link.id = lv.Link.id then acc
      else begin
        let iw =
          Power.value power space lw /. Link.cross_decay space ~from_:lw ~to_:lv
        in
        acc /. (1. +. (t.Instance.beta *. iw /. signal))
      end)
    noise_term interferers

let expected_successes t power set =
  List.fold_left
    (fun acc lv -> acc +. success_probability t power ~interferers:set lv)
    0. set

let simulate_success_rate ?(samples = 10_000) rng (t : Instance.t) power
    ~interferers lv =
  let space = t.Instance.space in
  let pv = Power.value power space lv in
  let fvv = Link.self_decay space lv in
  let others =
    List.filter (fun lw -> lw.Link.id <> lv.Link.id) interferers
  in
  let hits = ref 0 in
  for _ = 1 to samples do
    let s = Bg_prelude.Rng.exponential rng 1. *. pv /. fvv in
    let interference =
      List.fold_left
        (fun acc lw ->
          let iw =
            Power.value power space lw
            /. Link.cross_decay space ~from_:lw ~to_:lv
          in
          acc +. (Bg_prelude.Rng.exponential rng 1. *. iw))
        t.Instance.noise others
    in
    if interference = 0. || s /. interference >= t.Instance.beta then incr hits
  done;
  float_of_int !hits /. float_of_int samples

let feasible_with_probability t power ~p set =
  if p < 0. || p > 1. then
    invalid_arg "Rayleigh.feasible_with_probability: p out of range";
  List.for_all
    (fun lv -> success_probability t power ~interferers:set lv >= p)
    set
