type t = { id : int; sender : int; receiver : int }

let make ~id ~sender ~receiver =
  if sender = receiver then invalid_arg "Link.make: sender equals receiver";
  { id; sender; receiver }

let of_pairs pairs =
  Array.of_list
    (List.mapi (fun id (sender, receiver) -> make ~id ~sender ~receiver) pairs)

let self_decay space l = Bg_decay.Decay_space.decay space l.sender l.receiver

let cross_decay space ~from_ ~to_ =
  Bg_decay.Decay_space.decay space from_.sender to_.receiver

let compare_by_decay space a b =
  let c = Float.compare (self_decay space a) (self_decay space b) in
  if c <> 0 then c else compare a.id b.id
