(** Inductive independence (Kesselheim–Vöcking [45], Hoefer et al. [38]) —
    the paper singles it out (§2.2, §4.2) as a decay-space parameter in its
    own right: the smallest [rho] such that for every feasible set [S] and
    every link [l_v], the bidirectional affectance between [l_v] and the
    members of [S] that come *after* it in the decay order is at most
    [rho].  Bounded-growth spaces have small [rho]; the parameter drives
    spectrum auctions, dynamic scheduling and distributed scheduling
    results.

    Computing [rho] exactly quantifies over all feasible sets; we report a
    sampled lower-bound estimate from greedily generated feasible suffix
    sets, which is how the parameter is used empirically. *)

val against_set : Instance.t -> Power.t -> Link.t -> Link.t list -> float
(** [against_set t p lv s] is [sum_{w in s} (a_v(w) + a_w(v))] restricted
    to the members of [s] succeeding [lv] in the decay order. *)

val estimate :
  ?samples:int -> Bg_prelude.Rng.t -> Instance.t -> Power.t -> float
(** Lower-bound estimate of the inductive independence number: for every
    link, build [samples] (default 20) greedy feasible sets from random
    orders of its decay-order suffix and take the largest
    {!against_set} value observed. *)
