(** Feasibility under optimal power control.

    A link set admits *some* positive power vector making every SINR clear
    [beta] iff the spectral radius of the normalized gain matrix
    [B_{vw} = beta * f_vv / f_wv] (zero diagonal) is below 1; the minimal
    power vector then solves [P = B P + u] with [u_v = beta * N * f_vv].
    Theorems 3 and 6 claim their constructions are hard "even if the
    algorithm is allowed arbitrary power control" — this module is what
    verifies those claims on concrete instances. *)

val gain_matrix : Instance.t -> Link.t list -> float array array
(** The matrix [B] above, indexed in list order. *)

val spectral_radius : Instance.t -> Link.t list -> float
(** Perron eigenvalue of [B]. *)

val is_feasible : ?margin:float -> Instance.t -> Link.t list -> bool
(** Whether the set is feasible under some power assignment:
    [spectral_radius < 1 - margin] (default margin [1e-9]). *)

val min_powers : Instance.t -> Link.t list -> float array option
(** The (componentwise minimal) feasible power vector via fixed-point
    iteration, or [None] when infeasible.  With zero noise the problem is
    scale-free; powers are then normalized to maximum 1. *)
