(** Affectance (§2.4): interference normalized to received signal strength.

    [a_w(v) = min(1, c_v * (P_w * f_vv) / (P_v * f_wv))] with the noise
    constant [c_v = beta / (1 - beta * N * f_vv / P_v)], so that for a set
    [S] (with no clipped terms) [a_S(v) <= 1  iff  SINR_v >= beta].
    A link that cannot overcome noise alone ([P_v <= beta * N * f_vv]) gets
    [c_v = infinity]; every affectance onto it clips to 1. *)

val noise_constant : Instance.t -> Power.t -> Link.t -> float
(** [c_v] as above; [infinity] if the link fails on noise alone. *)

val affectance : Instance.t -> Power.t -> from_:Link.t -> to_:Link.t -> float
(** [a_w(v)] — clipped to [0, 1]; [a_v(v) = 0] by convention. *)

val affectance_unclipped :
  Instance.t -> Power.t -> from_:Link.t -> to_:Link.t -> float
(** The raw ratio before the [min(1, .)] clip — the quantity summed by the
    SINR-equivalence identity; may exceed 1 or be [infinity]. *)

val in_affectance : Instance.t -> Power.t -> Link.t list -> Link.t -> float
(** [a_S(v)]: total (clipped) affectance of a set onto one link; the set
    may contain [v] itself (contributing zero). *)

val out_affectance : Instance.t -> Power.t -> Link.t -> Link.t list -> float
(** [a_v(S)]: total (clipped) affectance of one link onto a set. *)
