(** Link separation in quasi-distance (§2.4): [l_v] is [eta]-separated from
    a set [L] when [d(l_v, l_w) >= eta * d_vv] for every [l_w in L]; a set
    is [eta]-separated when each member is separated from the rest.  This
    is the structural notion behind the sparsification lemmas (B.2, B.3,
    4.1) and Algorithm 1's admission test. *)

val is_separated_from : Instance.t -> eta:float -> Link.t -> Link.t list -> bool
(** Whether the link is [eta]-separated from every member of the list
    (members equal to the link itself are skipped). *)

val is_separated_set : Instance.t -> eta:float -> Link.t list -> bool
(** Whether the whole set is [eta]-separated. *)

val separation : Instance.t -> Link.t -> Link.t -> float
(** The largest [eta] for which the unordered pair is mutually
    [eta]-separated: [d(l_v,l_w) / max(d_vv, d_ww)]. *)

val min_separation : Instance.t -> Link.t list -> float
(** Smallest pairwise {!separation} of a set ([infinity] for sets of size
    < 2). *)
