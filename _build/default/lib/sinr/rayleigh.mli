(** Rayleigh-fading reception (the Dams–Hoefer–Kesselheim reduction [10]
    the paper cites in §2.1).

    Under Rayleigh fading the received powers are independent exponential
    random variables around the deterministic decay model, and the success
    probability of a transmission has a closed form:

    [P(success) = exp(-beta N f_vv / P_v)
                  * prod_w 1 / (1 + beta (P_w f_vv) / (P_v f_wv))].

    [10] shows SINR-threshold algorithms can simulate this model with an
    O(log n) factor; here the closed form lets decay-space algorithms be
    scored under fading directly, and the threshold model is recovered as
    the no-fading limit. *)

val success_probability :
  Instance.t -> Power.t -> interferers:Link.t list -> Link.t -> float
(** Closed-form probability that the link's receiver decodes it when the
    interferers transmit simultaneously, with Rayleigh fading on the
    desired signal and on each interfering signal. *)

val expected_successes :
  Instance.t -> Power.t -> Link.t list -> float
(** Sum of per-link success probabilities when the whole set transmits —
    the expected one-shot throughput under fading. *)

val simulate_success_rate :
  ?samples:int -> Bg_prelude.Rng.t -> Instance.t -> Power.t ->
  interferers:Link.t list -> Link.t -> float
(** Monte-Carlo estimate of {!success_probability} (independent Exp(1)
    multipliers on every received power); used to validate the closed
    form. *)

val feasible_with_probability :
  Instance.t -> Power.t -> p:float -> Link.t list -> bool
(** Whether every link in the set succeeds with probability at least [p]
    under fading — the fading analogue of feasibility. *)
