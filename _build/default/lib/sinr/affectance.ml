let noise_constant (t : Instance.t) power lv =
  let pv = Power.value power t.Instance.space lv in
  let fvv = Link.self_decay t.Instance.space lv in
  let denom = 1. -. (t.Instance.beta *. t.Instance.noise *. fvv /. pv) in
  if denom <= 0. then infinity else t.Instance.beta /. denom

let affectance_unclipped (t : Instance.t) power ~from_ ~to_ =
  if from_.Link.id = to_.Link.id then 0.
  else begin
    let space = t.Instance.space in
    let cv = noise_constant t power to_ in
    let pw = Power.value power space from_ in
    let pv = Power.value power space to_ in
    let fvv = Link.self_decay space to_ in
    let fwv = Link.cross_decay space ~from_ ~to_ in
    cv *. pw *. fvv /. (pv *. fwv)
  end

let affectance t power ~from_ ~to_ =
  Float.min 1. (affectance_unclipped t power ~from_ ~to_)

let in_affectance t power set lv =
  List.fold_left
    (fun acc lw -> acc +. affectance t power ~from_:lw ~to_:lv)
    0. set

let out_affectance t power lv set =
  List.fold_left
    (fun acc lw -> acc +. affectance t power ~from_:lv ~to_:lw)
    0. set
