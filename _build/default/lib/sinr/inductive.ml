let against_set (t : Instance.t) power lv s =
  let space = t.Instance.space in
  List.fold_left
    (fun acc lw ->
      if Link.compare_by_decay space lv lw < 0 then
        acc
        +. Affectance.affectance t power ~from_:lv ~to_:lw
        +. Affectance.affectance t power ~from_:lw ~to_:lv
      else acc)
    0. s

let estimate ?(samples = 20) rng (t : Instance.t) power =
  let links = Array.to_list t.Instance.links in
  let space = t.Instance.space in
  let best = ref 0. in
  List.iter
    (fun lv ->
      let suffix =
        List.filter (fun lw -> Link.compare_by_decay space lv lw < 0) links
      in
      let arr = Array.of_list suffix in
      for _ = 1 to samples do
        Bg_prelude.Rng.shuffle rng arr;
        let feasible_set =
          Array.fold_left
            (fun acc lw ->
              if Feasibility.is_feasible t power (lw :: acc) then lw :: acc
              else acc)
            [] arr
        in
        let v = against_set t power lv feasible_set in
        if v > !best then best := v
      done)
    links;
  !best
