module P = Bg_geom.Point

type model =
  | Free_space
  | Log_distance of { exponent : float }
  | Two_ray of { tx_height : float; rx_height : float }

type fading = No_fading | Rayleigh | Rician of float

type config = {
  model : model;
  wavelength : float;
  ref_loss_db : float;
  ref_distance : float;
  walls : bool;
  shadowing_sigma_db : float;
  fading : fading;
}

let default =
  {
    model = Log_distance { exponent = 3.0 };
    wavelength = 0.125;
    ref_loss_db = 40.;
    ref_distance = 1.;
    walls = true;
    shadowing_sigma_db = 6.;
    fading = No_fading;
  }

let free_space_config =
  {
    model = Free_space;
    wavelength = 0.125;
    ref_loss_db = 40.;
    ref_distance = 0.1;
    walls = false;
    shadowing_sigma_db = 0.;
    fading = No_fading;
  }

let model_loss_db config d =
  let d = Float.max d config.ref_distance in
  match config.model with
  | Free_space -> 20. *. log10 (4. *. Float.pi *. d /. config.wavelength)
  | Log_distance { exponent } ->
      config.ref_loss_db +. (10. *. exponent *. log10 (d /. config.ref_distance))
  | Two_ray { tx_height; rx_height } ->
      (* Exact two-ray: direct path plus ground reflection with
         coefficient -1.  Amplitude gain relative to unit distance FSPL:
         lambda/(4 pi) * | e^{-jk l1}/l1 - e^{-jk l2}/l2 |. *)
      let l1 = sqrt ((d *. d) +. ((tx_height -. rx_height) ** 2.)) in
      let l2 = sqrt ((d *. d) +. ((tx_height +. rx_height) ** 2.)) in
      let k = 2. *. Float.pi /. config.wavelength in
      let re = (cos (k *. l1) /. l1) -. (cos (k *. l2) /. l2) in
      let im = (sin (k *. l1) /. l1) -. (sin (k *. l2) /. l2) in
      let amp = config.wavelength /. (4. *. Float.pi) *. sqrt ((re *. re) +. (im *. im)) in
      (* Clamp deep nulls at 60 dB below free space to keep decays finite. *)
      let fspl_amp = config.wavelength /. (4. *. Float.pi *. l1) in
      let amp = Float.max amp (fspl_amp *. 1e-3) in
      -20. *. log10 amp

let large_scale_loss_db config env a b =
  let loss = model_loss_db config (P.dist a b) in
  if config.walls then loss +. Environment.wall_loss_db env a b else loss

let fading_multiplier fading rng =
  match fading with
  | No_fading -> 1.
  | Rayleigh ->
      (* Power of a unit-mean Rayleigh envelope is Exp(1). *)
      Bg_prelude.Rng.exponential rng 1.
  | Rician k ->
      if k < 0. then invalid_arg "Propagation: Rician K must be >= 0";
      (* Dominant component of power k/(k+1) plus complex Gaussian scatter
         of power 1/(k+1). *)
      let scatter = 1. /. (k +. 1.) in
      let mean_re = sqrt (k /. (k +. 1.)) in
      let re = mean_re +. Bg_prelude.Rng.gaussian ~sigma:(sqrt (scatter /. 2.)) rng in
      let im = Bg_prelude.Rng.gaussian ~sigma:(sqrt (scatter /. 2.)) rng in
      (re *. re) +. (im *. im)

let sample_loss_db config env rng a b =
  let loss = large_scale_loss_db config env a b in
  let loss =
    if config.shadowing_sigma_db > 0. then
      loss +. Bg_prelude.Rng.gaussian ~sigma:config.shadowing_sigma_db rng
    else loss
  in
  match config.fading with
  | No_fading -> loss
  | f -> loss -. (10. *. log10 (Float.max 1e-12 (fading_multiplier f rng)))

let loss_to_decay loss_db = 10. ** (loss_db /. 10.)
let decay_to_loss decay = 10. *. log10 decay
