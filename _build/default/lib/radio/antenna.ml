type t =
  | Isotropic
  | Sector of { beamwidth : float; gain_db : float; back_db : float }
  | Cardioid of { max_gain_db : float }

let isotropic = Isotropic

let sector ~beamwidth ~gain_db ~back_db =
  if beamwidth <= 0. || beamwidth > 2. *. Float.pi then
    invalid_arg "Antenna.sector: beamwidth out of range";
  Sector { beamwidth; gain_db; back_db }

let cardioid ~max_gain_db = Cardioid { max_gain_db }

let wrap_angle a =
  let two_pi = 2. *. Float.pi in
  let a = Float.rem a two_pi in
  if a > Float.pi then a -. two_pi
  else if a < -.Float.pi then a +. two_pi
  else a

let gain_db t angle =
  let a = Float.abs (wrap_angle angle) in
  match t with
  | Isotropic -> 0.
  | Sector { beamwidth; gain_db; back_db } ->
      if a <= beamwidth /. 2. then gain_db else back_db
  | Cardioid { max_gain_db } ->
      max_gain_db +. (20. *. log10 (((1. +. cos a) /. 2.) +. 0.05))
