lib/radio/measure.ml: Array Bg_decay Bg_geom Bg_prelude Float Node Propagation
