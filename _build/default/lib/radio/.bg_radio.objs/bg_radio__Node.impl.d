lib/radio/node.ml: Antenna Array Bg_geom Bg_prelude Float List
