lib/radio/node.mli: Antenna Bg_geom Bg_prelude
