lib/radio/material.ml:
