lib/radio/propagation.mli: Bg_geom Bg_prelude Environment
