lib/radio/diagram.ml: Array Bg_geom Bg_prelude Environment Float Hashtbl List Option Propagation
