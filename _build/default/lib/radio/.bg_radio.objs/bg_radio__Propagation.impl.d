lib/radio/propagation.ml: Bg_geom Bg_prelude Environment Float
