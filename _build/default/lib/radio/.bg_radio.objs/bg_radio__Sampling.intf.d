lib/radio/sampling.mli: Bg_decay Environment Node Propagation
