lib/radio/diagram.mli: Bg_geom Environment Propagation
