lib/radio/antenna.mli:
