lib/radio/material.mli:
