lib/radio/antenna.ml: Float
