lib/radio/sampling.ml: Array Bg_decay Bg_prelude Float Measure Propagation
