lib/radio/measure.mli: Bg_decay Bg_prelude Environment Node Propagation
