lib/radio/environment.mli: Bg_geom Bg_prelude Material
