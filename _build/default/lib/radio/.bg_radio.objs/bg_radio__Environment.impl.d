lib/radio/environment.ml: Array Bg_geom Bg_prelude Float List Material
