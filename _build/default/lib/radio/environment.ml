module P = Bg_geom.Point
module S = Bg_geom.Segment

type wall = { segment : S.t; material : Material.t }
type t = { side : float; walls : wall list }

let empty ~side =
  if side <= 0. then invalid_arg "Environment.empty: side must be positive";
  { side; walls = [] }

let create ~side walls =
  if side <= 0. then invalid_arg "Environment.create: side must be positive";
  { side; walls }

let walls t = t.walls
let side t = t.side
let add_wall t w = { t with walls = w :: t.walls }

let wall_loss_db t a b =
  let path = S.make a b in
  List.fold_left
    (fun acc w ->
      if S.intersects path w.segment then acc +. w.material.Material.attenuation_db
      else acc)
    0. t.walls

let crossings t a b =
  let path = S.make a b in
  List.fold_left
    (fun acc w -> if S.intersects path w.segment then acc + 1 else acc)
    0 t.walls

(* A wall segment from (x1,y1) to (x2,y2) with a centred gap of the given
   width: returns the two sub-segments (or the whole wall for zero gap). *)
let with_door a b door_width material =
  let len = P.dist a b in
  if door_width <= 0. || door_width >= len then
    [ { segment = S.make a b; material } ]
  else begin
    let t0 = 0.5 -. (door_width /. (2. *. len)) in
    let t1 = 0.5 +. (door_width /. (2. *. len)) in
    [ { segment = S.make a (P.lerp a b t0); material };
      { segment = S.make (P.lerp a b t1) b; material } ]
  end

let office ~rooms_x ~rooms_y ~room_size ?door_width material =
  if rooms_x < 1 || rooms_y < 1 then invalid_arg "Environment.office: rooms >= 1";
  if room_size <= 0. then invalid_arg "Environment.office: room_size > 0";
  let door =
    match door_width with Some w -> w | None -> room_size /. 5.
  in
  let w = float_of_int rooms_x *. room_size in
  let h = float_of_int rooms_y *. room_size in
  let side = Float.max w h in
  let walls = ref [] in
  let solid a b = walls := { segment = S.make a b; material } :: !walls in
  let doored a b = walls := with_door a b door material @ !walls in
  (* Outer boundary: solid. *)
  solid (P.make 0. 0.) (P.make w 0.);
  solid (P.make w 0.) (P.make w h);
  solid (P.make w h) (P.make 0. h);
  solid (P.make 0. h) (P.make 0. 0.);
  (* Interior vertical walls, one doored span per room row. *)
  for i = 1 to rooms_x - 1 do
    let x = float_of_int i *. room_size in
    for j = 0 to rooms_y - 1 do
      let y0 = float_of_int j *. room_size in
      doored (P.make x y0) (P.make x (y0 +. room_size))
    done
  done;
  (* Interior horizontal walls. *)
  for j = 1 to rooms_y - 1 do
    let y = float_of_int j *. room_size in
    for i = 0 to rooms_x - 1 do
      let x0 = float_of_int i *. room_size in
      doored (P.make x0 y) (P.make (x0 +. room_size) y)
    done
  done;
  { side; walls = !walls }

let corridor ~rooms ~room_size ~corridor_width material =
  if rooms < 1 then invalid_arg "Environment.corridor: rooms >= 1";
  let w = float_of_int rooms *. room_size in
  let h = room_size +. corridor_width in
  let walls = ref [] in
  let solid a b = walls := { segment = S.make a b; material } :: !walls in
  let doored a b =
    walls := with_door a b (room_size /. 5.) material @ !walls
  in
  (* Boundary. *)
  solid (P.make 0. 0.) (P.make w 0.);
  solid (P.make w 0.) (P.make w h);
  solid (P.make w h) (P.make 0. h);
  solid (P.make 0. h) (P.make 0. 0.);
  (* Rooms along the bottom; corridor on top.  Front walls have doors. *)
  for i = 0 to rooms - 1 do
    let x0 = float_of_int i *. room_size in
    doored (P.make x0 room_size) (P.make (x0 +. room_size) room_size);
    if i > 0 then solid (P.make x0 0.) (P.make x0 room_size)
  done;
  { side = Float.max w h; walls = !walls }

let random_clutter rng ~side ~n_walls ?(min_len = 0.) ?(max_len = 0.) materials =
  if materials = [] then invalid_arg "Environment.random_clutter: no materials";
  if side <= 0. then invalid_arg "Environment.random_clutter: side > 0";
  let min_len = if min_len > 0. then min_len else side /. 10. in
  let max_len = if max_len > 0. then max_len else side /. 3. in
  let mats = Array.of_list materials in
  let walls =
    List.init n_walls (fun _ ->
        let cx = Bg_prelude.Rng.float rng side in
        let cy = Bg_prelude.Rng.float rng side in
        let len = Bg_prelude.Rng.uniform rng min_len max_len in
        let theta = Bg_prelude.Rng.float rng (2. *. Float.pi) in
        let dx = len /. 2. *. cos theta and dy = len /. 2. *. sin theta in
        { segment = S.make (P.make (cx -. dx) (cy -. dy)) (P.make (cx +. dx) (cy +. dy));
          material = Bg_prelude.Rng.choice rng mats })
  in
  { side; walls }
