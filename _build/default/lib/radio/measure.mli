(** Populating decay spaces from the simulated environment — the "truth on
    the ground" of §2.2, plus the measurement channel (RSSI) through which
    real deployments would observe it.

    Shadowing is frozen per unordered node pair (the same wall/obstacle
    configuration attenuates both directions equally), so the resulting
    decay space is static and symmetric unless anisotropic antennas are in
    play; small-scale fading, when enabled, is drawn per ordered pair.  All
    draws are keyed on [seed] and the pair indices: the same seed always
    yields the same space. *)

val decay_space :
  ?seed:int -> ?config:Propagation.config -> ?name:string ->
  Environment.t -> Node.t array -> Bg_decay.Decay_space.t
(** The ground-truth decay space of a deployment: for each ordered pair,
    link-budget loss (model + walls + frozen shadowing + antenna gains at
    both ends [+ fading]) converted to a decay. *)

val rssi_dbm :
  tx_power_dbm:float -> loss_db:float -> float
(** Received signal strength of a transmission. *)

val measured_decay_space :
  ?quantization_db:float -> ?noise_floor_dbm:float -> tx_power_dbm:float ->
  Bg_decay.Decay_space.t -> Bg_decay.Decay_space.t
(** What a cheap node would report: RSSI quantized to [quantization_db]
    steps (default 1 dB) and censored at the noise floor (default -95 dBm;
    weaker signals saturate at the corresponding maximal decay).  This is
    the measurement pipeline the paper argues suffices to populate decay
    spaces in practice. *)

val prr :
  ?samples:int -> Bg_prelude.Rng.t -> beta:float -> mean_sinr:float ->
  fading:Propagation.fading -> float
(** Monte-Carlo packet reception rate at a given long-term mean SINR under
    the thresholding rule [SINR >= beta], with small-scale fading applied to
    the desired signal.  With [No_fading] this is the exact step function;
    with fading it is the smooth S-curve whose near-threshold shape
    experimental studies report (experiment E13). *)

val distance_decay_correlation :
  Environment.t -> Node.t array -> Bg_decay.Decay_space.t -> float
(** Spearman rank correlation between inter-node distance and decay — the
    statistic behind "link quality is not correlated with distance"
    (experiment E14). *)
