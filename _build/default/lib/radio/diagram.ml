module P = Bg_geom.Point

type cell = { transmitter : int; points : P.t list }

(* Which transmitter (if any) does a probe point decode under the
   deterministic large-scale model? *)
let decoder ~beta ~noise ~power env config txs point =
  let gains =
    Array.map
      (fun tx ->
        let loss = Propagation.large_scale_loss_db config env tx point in
        power /. Propagation.loss_to_decay loss)
      txs
  in
  let total = Array.fold_left ( +. ) 0. gains in
  let best = ref (-1) and best_gain = ref 0. in
  Array.iteri
    (fun i g ->
      if g > !best_gain then begin
        best := i;
        best_gain := g
      end)
    gains;
  if !best < 0 then None
  else begin
    let interference = noise +. (total -. !best_gain) in
    if interference <= 0. || !best_gain /. interference >= beta then Some !best
    else None
  end

let reception_cells ?(beta = 1.5) ?(noise = 1e-10) ?(power = 1.) ?(grid = 40)
    env config txs =
  if Array.length txs = 0 then invalid_arg "Diagram: no transmitters";
  let side = Environment.side env in
  let step = side /. float_of_int grid in
  let buckets = Hashtbl.create 8 in
  for gx = 0 to grid - 1 do
    for gy = 0 to grid - 1 do
      let p =
        P.make ((float_of_int gx +. 0.5) *. step) ((float_of_int gy +. 0.5) *. step)
      in
      match decoder ~beta ~noise ~power env config txs p with
      | Some i ->
          let existing = Option.value ~default:[] (Hashtbl.find_opt buckets i) in
          Hashtbl.replace buckets i (p :: existing)
      | None -> ()
    done
  done;
  Hashtbl.fold
    (fun transmitter points acc -> { transmitter; points } :: acc)
    buckets []
  |> List.sort (fun a b -> compare a.transmitter b.transmitter)

let convexity_defect cell ~loses_to =
  let pts = Array.of_list cell.points in
  let k = Array.length pts in
  if k < 2 then 0.
  else begin
    let outside = ref 0 and total = ref 0 in
    for i = 0 to k - 1 do
      for j = i + 1 to k - 1 do
        incr total;
        let mid = P.lerp pts.(i) pts.(j) 0.5 in
        if loses_to mid then incr outside
      done
    done;
    if !total = 0 then 0. else float_of_int !outside /. float_of_int !total
  end

let convexity_of_cells ?(beta = 1.5) ?(noise = 1e-10) ?(power = 1.)
    ?(samples = 200) env config txs cells =
  let rng = Bg_prelude.Rng.create 9 in
  List.fold_left
    (fun worst cell ->
      let pts = Array.of_list cell.points in
      let k = Array.length pts in
      if k < 3 then worst
      else begin
        let outside = ref 0 in
        for _ = 1 to samples do
          let a = pts.(Bg_prelude.Rng.int rng k) in
          let b = pts.(Bg_prelude.Rng.int rng k) in
          let mid = P.lerp a b 0.5 in
          match decoder ~beta ~noise ~power env config txs mid with
          | Some i when i = cell.transmitter -> ()
          | Some _ | None -> incr outside
        done;
        Float.max worst (float_of_int !outside /. float_of_int samples)
      end)
    0. cells
