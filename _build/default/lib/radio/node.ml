module P = Bg_geom.Point

type t = { pos : P.t; antenna : Antenna.t; orientation : float }

let make ?(antenna = Antenna.isotropic) ?(orientation = 0.) pos =
  { pos; antenna; orientation }

let of_points points = Array.of_list (List.map (fun p -> make p) points)

let random_oriented rng antenna points =
  Array.of_list
    (List.map
       (fun p ->
         make ~antenna
           ~orientation:(Bg_prelude.Rng.float rng (2. *. Float.pi))
           p)
       points)

let gain_towards_db t target =
  let d = P.sub target t.pos in
  if P.norm d = 0. then Antenna.gain_db t.antenna 0.
  else begin
    let bearing = atan2 d.P.y d.P.x in
    Antenna.gain_db t.antenna (bearing -. t.orientation)
  end
