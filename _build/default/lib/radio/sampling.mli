(** The measurement campaign: estimating a decay space from repeated RSSI
    samples under small-scale fading.

    The paper's practicality argument (§2.2) is that decay spaces "are
    relatively easily obtained by measurements".  In a fading channel one
    RSSI sample is a noisy draw; averaging [k] samples in the linear power
    domain converges to the large-scale decay.  This module runs that
    estimator and quantifies its error, closing the loop between the
    simulator's ground truth and what a deployment would actually know. *)

val estimate_decay_space :
  ?seed:int -> ?config:Propagation.config -> ?samples:int ->
  Environment.t -> Node.t array -> Bg_decay.Decay_space.t
(** Per ordered pair, average [samples] (default 16) independent fading
    draws of the received linear power and invert to a decay estimate.
    The non-fading parts of [config] (default: log-distance with walls and
    shadowing, plus Rayleigh fading for the per-sample draws) are frozen
    per pair as in {!Measure.decay_space}.  With [samples -> infinity] the
    estimate converges to the no-fading decay. *)

val error_db :
  truth:Bg_decay.Decay_space.t -> estimate:Bg_decay.Decay_space.t ->
  float * float
(** (median, 95th percentile) absolute estimation error in dB over all
    ordered pairs. *)

val estimate_from_prr :
  ?seed:int -> ?packets:int -> ?power:float -> ?beta:float -> ?noise:float ->
  Bg_decay.Decay_space.t -> Bg_decay.Decay_space.t
(** The paper's second channel (§2.2): "They can also be inferred by
    packet reception rates."  Simulate [packets] (default 200) solo probe
    transmissions per ordered pair under Rayleigh fading — success
    probability [exp (-beta * noise * f / power)] — and invert the observed
    rate to a decay estimate.  Pairs with zero observed successes are
    censored at the decay whose expected successes would be ~1 packet;
    pairs that never fail are censored at the all-success boundary.
    Needs [noise > 0] (the inversion is noise-referenced). *)
