(** SINR diagrams (Avin et al. [4]) — the paper's §2.3 names them as a
    result that does **not** carry over to decay spaces, because reception
    zones' convexity is an intrinsically Euclidean-topological property.
    This module exists to demonstrate that negative claim: it computes
    reception zones over a probe grid and tests their convexity, which
    holds in free space (as [4] proves) and breaks behind walls. *)

type cell = {
  transmitter : int;  (** index into the transmitter array *)
  points : Bg_geom.Point.t list;  (** probe points that decode it *)
}

val reception_cells :
  ?beta:float -> ?noise:float -> ?power:float -> ?grid:int ->
  Environment.t -> Propagation.config -> Bg_geom.Point.t array -> cell list
(** Partition a [grid x grid] probe lattice over the environment among the
    transmitters by thresholded SINR (using the deterministic large-scale
    loss); probe points decoding nothing are dropped.  Default grid 40,
    [beta] 1.5, [noise] 1e-10, [power] 1. *)

val convexity_defect :
  cell -> loses_to:(Bg_geom.Point.t -> bool) -> float
(** Fraction of sampled midpoints of same-cell point pairs that fall
    outside the cell (per the [loses_to] predicate): 0 for convex zones. *)

val convexity_of_cells :
  ?beta:float -> ?noise:float -> ?power:float -> ?samples:int ->
  Environment.t -> Propagation.config -> Bg_geom.Point.t array -> cell list ->
  float
(** Worst convexity defect over all cells with at least 3 points:
    midpoints are re-tested with the same SINR rule.  [samples] pairs per
    cell (default 200). *)
