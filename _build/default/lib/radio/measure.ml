module Rng = Bg_prelude.Rng

(* Freeze per-pair randomness: derive a generator from the seed and the
   pair.  Unordered keys give symmetric draws (shadowing); ordered keys give
   direction-specific draws (fading). *)
let pair_rng ~seed ~ordered i j =
  let a, b = if ordered || i <= j then (i, j) else (j, i) in
  Rng.create ((seed * 1_000_003) + (a * 7919) + b)

let decay_space ?(seed = 0) ?(config = Propagation.default) ?(name = "radio")
    env nodes =
  let n = Array.length nodes in
  Bg_decay.Decay_space.of_fn ~name n (fun i j ->
      let ni = nodes.(i) and nj = nodes.(j) in
      let loss =
        Propagation.large_scale_loss_db config env ni.Node.pos nj.Node.pos
      in
      let loss =
        if config.Propagation.shadowing_sigma_db > 0. then begin
          let rng = pair_rng ~seed ~ordered:false i j in
          loss +. Rng.gaussian ~sigma:config.Propagation.shadowing_sigma_db rng
        end
        else loss
      in
      let loss =
        match config.Propagation.fading with
        | Propagation.No_fading -> loss
        | f ->
            let rng = pair_rng ~seed:(seed + 17) ~ordered:true i j in
            loss
            -. (10.
               *. log10 (Float.max 1e-12 (Propagation.fading_multiplier f rng)))
      in
      let loss =
        loss
        -. Node.gain_towards_db ni nj.Node.pos
        -. Node.gain_towards_db nj ni.Node.pos
      in
      Propagation.loss_to_decay loss)

let rssi_dbm ~tx_power_dbm ~loss_db = tx_power_dbm -. loss_db

let measured_decay_space ?(quantization_db = 1.) ?(noise_floor_dbm = -95.)
    ~tx_power_dbm space =
  Bg_decay.Decay_space.map
    (fun _ _ f ->
      let loss = Propagation.decay_to_loss f in
      let rssi = rssi_dbm ~tx_power_dbm ~loss_db:loss in
      (* Censor below the noise floor, then quantize. *)
      let rssi = Float.max rssi noise_floor_dbm in
      let rssi = Float.round (rssi /. quantization_db) *. quantization_db in
      Propagation.loss_to_decay (tx_power_dbm -. rssi))
    space

let prr ?(samples = 2000) rng ~beta ~mean_sinr ~fading =
  if beta <= 0. then invalid_arg "Measure.prr: beta must be positive";
  match fading with
  | Propagation.No_fading -> if mean_sinr >= beta then 1. else 0.
  | f ->
      let ok = ref 0 in
      for _ = 1 to samples do
        let m = Propagation.fading_multiplier f rng in
        if mean_sinr *. m >= beta then incr ok
      done;
      float_of_int !ok /. float_of_int samples

let distance_decay_correlation _env nodes space =
  let n = Array.length nodes in
  let dists = ref [] and decays = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        dists :=
          Bg_geom.Point.dist nodes.(i).Node.pos nodes.(j).Node.pos :: !dists;
        decays := Bg_decay.Decay_space.decay space i j :: !decays
      end
    done
  done;
  Bg_prelude.Stats.spearman (Array.of_list !dists) (Array.of_list !decays)
