(** Radio nodes: a position, an antenna and its boresight orientation. *)

type t = { pos : Bg_geom.Point.t; antenna : Antenna.t; orientation : float }

val make : ?antenna:Antenna.t -> ?orientation:float -> Bg_geom.Point.t -> t
(** Defaults: isotropic antenna, orientation 0. *)

val of_points : Bg_geom.Point.t list -> t array
(** Isotropic nodes at the given positions. *)

val random_oriented :
  Bg_prelude.Rng.t -> Antenna.t -> Bg_geom.Point.t list -> t array
(** Nodes with the given antenna and uniformly random boresights — the
    anisotropic deployments of the paper's motivation. *)

val gain_towards_db : t -> Bg_geom.Point.t -> float
(** Antenna gain of this node in the direction of a target point. *)
