(** Antenna gain patterns.

    Anisotropic antennas are one of the effects the paper lists as breaking
    geometric decay: the same distance yields different gains in different
    directions.  Gains here are in dB relative to isotropic and depend only
    on the angle between the antenna's boresight and the direction of the
    peer. *)

type t

val isotropic : t
(** 0 dB in every direction. *)

val sector : beamwidth:float -> gain_db:float -> back_db:float -> t
(** Flat [gain_db] within [beamwidth] radians of boresight (total width),
    [back_db] (typically negative) elsewhere. *)

val cardioid : max_gain_db:float -> t
(** Smooth cardioid pattern [max_gain_db + 20 log10((1 + cos a)/2 + 0.05)],
    a gentle front-to-back ratio of ~26 dB. *)

val gain_db : t -> float -> float
(** [gain_db antenna angle] where [angle] is the offset from boresight in
    radians (any real; wrapped to [-pi, pi]). *)
