type t = { name : string; attenuation_db : float }

let glass = { name = "glass"; attenuation_db = 2. }
let drywall = { name = "drywall"; attenuation_db = 3. }
let wood = { name = "wood"; attenuation_db = 4. }
let brick = { name = "brick"; attenuation_db = 8. }
let concrete = { name = "concrete"; attenuation_db = 12. }
let metal = { name = "metal"; attenuation_db = 26. }

let custom ~name ~attenuation_db =
  if attenuation_db < 0. then
    invalid_arg "Material.custom: attenuation must be non-negative";
  { name; attenuation_db }
