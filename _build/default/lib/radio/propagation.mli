(** Radio propagation models.

    Composes a deterministic large-scale model (free space, log-distance, or
    two-ray ground reflection), per-wall penetration losses, log-normal
    shadowing, and optional small-scale fading (Rayleigh / Rician) into a
    link-budget loss in dB.  Together with {!Antenna} gains this is what
    populates "realistic" decay spaces: [decay f = 10^(loss_db / 10)]. *)

type model =
  | Free_space
      (** FSPL at the configured wavelength: exponent 2 plus the constant
          [20 log10 (4 pi d / lambda)]. *)
  | Log_distance of { exponent : float }
      (** [ref_loss_db + 10 * exponent * log10 (d / ref_distance)] — the
          standard empirical indoor model. *)
  | Two_ray of { tx_height : float; rx_height : float }
      (** Exact two-ray ground-reflection interference pattern (reflection
          coefficient -1): oscillatory at short range, [d^4] beyond the
          break distance. *)

type fading =
  | No_fading
  | Rayleigh  (** power multiplier ~ Exp(1) *)
  | Rician of float
      (** [Rician k] with linear K-factor [k >= 0]: dominant path plus
          scattered power [1/(k+1)]. *)

type config = {
  model : model;
  wavelength : float;  (** metres; 0.125 m = 2.4 GHz *)
  ref_loss_db : float;  (** loss at [ref_distance] for [Log_distance] *)
  ref_distance : float;
  walls : bool;  (** charge wall penetration losses *)
  shadowing_sigma_db : float;  (** 0 disables shadowing *)
  fading : fading;
}

val default : config
(** Log-distance exponent 3.0, 40 dB at 1 m, walls on, 6 dB shadowing, no
    fast fading — a typical indoor 2.4 GHz parameterization. *)

val free_space_config : config
(** Pure FSPL, no walls/shadowing/fading: recovers GEO-SINR with
    [alpha = 2] exactly. *)

val large_scale_loss_db : config -> Environment.t ->
  Bg_geom.Point.t -> Bg_geom.Point.t -> float
(** Deterministic part of the loss: model + walls.  Distance is floored at
    [ref_distance] to keep the near field sane. *)

val sample_loss_db :
  config -> Environment.t -> Bg_prelude.Rng.t ->
  Bg_geom.Point.t -> Bg_geom.Point.t -> float
(** One random link-budget sample: large-scale loss plus shadowing and
    fading drawn from [rng]. *)

val fading_multiplier : fading -> Bg_prelude.Rng.t -> float
(** One small-scale power multiplier sample (mean 1). *)

val loss_to_decay : float -> float
(** [10^(loss_db/10)] — the decay value a loss corresponds to. *)

val decay_to_loss : float -> float
(** Inverse of {!loss_to_decay}. *)
