module Rng = Bg_prelude.Rng

let estimate_decay_space ?(seed = 0) ?config ?(samples = 16) env nodes =
  if samples < 1 then invalid_arg "Sampling: need at least one sample";
  let config =
    match config with
    | Some c -> c
    | None -> { Propagation.default with Propagation.fading = Propagation.Rayleigh }
  in
  (* Ground truth without fading, then per-sample fading draws on top. *)
  let base_config = { config with Propagation.fading = Propagation.No_fading } in
  let truth = Measure.decay_space ~seed ~config:base_config ~name:"truth" env nodes in
  let fading = config.Propagation.fading in
  Bg_decay.Decay_space.rename "rssi-estimate"
  @@ Bg_decay.Decay_space.map
    (fun i j f ->
      match fading with
      | Propagation.No_fading -> f
      | _ ->
          let rng = Rng.create ((seed * 31) + (i * 1009) + j + 7) in
          let acc = ref 0. in
          for _ = 1 to samples do
            (* Received linear power is gain * fading multiplier; averaging
               in the power domain is the consistent estimator. *)
            acc := !acc +. (Propagation.fading_multiplier fading rng /. f)
          done;
          let mean_gain = !acc /. float_of_int samples in
          1. /. mean_gain)
    truth

let estimate_from_prr ?(seed = 0) ?(packets = 200) ?(power = 1.) ?(beta = 1.)
    ?(noise = 1e-6) space =
  if packets < 1 then invalid_arg "Sampling: need at least one packet";
  if noise <= 0. then
    invalid_arg "Sampling.estimate_from_prr: needs positive noise";
  let k = float_of_int packets in
  Bg_decay.Decay_space.rename "prr-estimate"
  @@ Bg_decay.Decay_space.map
       (fun i j f ->
         (* True solo success probability under Rayleigh fading against
            noise: P(X * power / f >= beta * noise), X ~ Exp(1). *)
         let p_true = exp (-.beta *. noise *. f /. power) in
         let rng = Rng.create ((seed * 97) + (i * 2011) + j + 13) in
         let successes = ref 0 in
         for _ = 1 to packets do
           if Rng.bernoulli rng p_true then incr successes
         done;
         (* Invert p_hat = exp(-beta N f / P), censoring the boundaries. *)
         let p_hat =
           Bg_prelude.Numerics.clamp ~lo:(0.5 /. k)
             ~hi:(1. -. (0.5 /. k))
             (float_of_int !successes /. k)
         in
         -.power *. log p_hat /. (beta *. noise))
       space

let error_db ~truth ~estimate =
  let n = Bg_decay.Decay_space.n truth in
  if n <> Bg_decay.Decay_space.n estimate then
    invalid_arg "Sampling.error_db: size mismatch";
  let errs = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let t = Bg_decay.Decay_space.decay truth i j in
        let e = Bg_decay.Decay_space.decay estimate i j in
        errs := Float.abs (10. *. log10 (e /. t)) :: !errs
      end
    done
  done;
  let arr = Array.of_list !errs in
  (Bg_prelude.Stats.median arr, Bg_prelude.Stats.percentile arr 95.)
