(** Wall materials and their per-crossing attenuation.

    Values are the customary single-wall penetration losses at 2.4 GHz from
    the empirical multi-wall (COST-231-style) model family the paper points
    to for populating decay spaces from environmental prediction. *)

type t = { name : string; attenuation_db : float }

val glass : t
(** ~2 dB per crossing. *)

val drywall : t
(** ~3 dB per crossing. *)

val wood : t
(** ~4 dB per crossing. *)

val brick : t
(** ~8 dB per crossing. *)

val concrete : t
(** ~12 dB per crossing. *)

val metal : t
(** ~26 dB per crossing. *)

val custom : name:string -> attenuation_db:float -> t
(** Any other material; attenuation must be non-negative. *)
