(** Static indoor environments: a floor plan of walls with materials.

    The paper's case for decay spaces is that real environments — "walls,
    ceilings and obstacles, as well as complex interactions" — break
    geometric path loss.  This module builds such environments; the
    propagation module charges a per-wall penetration loss for every wall a
    link's line of sight crosses (the multi-wall model). *)

type wall = { segment : Bg_geom.Segment.t; material : Material.t }

type t
(** An immutable environment. *)

val empty : side:float -> t
(** Free space over a [side x side] region (no walls). *)

val create : side:float -> wall list -> t
val walls : t -> wall list
val side : t -> float
val add_wall : t -> wall -> t

val wall_loss_db : t -> Bg_geom.Point.t -> Bg_geom.Point.t -> float
(** Total penetration loss (dB) of the straight path between two points:
    the sum of the attenuations of every wall it crosses. *)

val crossings : t -> Bg_geom.Point.t -> Bg_geom.Point.t -> int
(** Number of walls crossed by the straight path. *)

(** {2 Floor-plan builders} *)

val office :
  rooms_x:int -> rooms_y:int -> room_size:float -> ?door_width:float ->
  Material.t -> t
(** A grid of [rooms_x * rooms_y] square rooms of the given size, with a
    centred door gap (default width [room_size/5]) in every interior wall,
    enclosed by an outer wall of the same material. *)

val corridor :
  rooms:int -> room_size:float -> corridor_width:float -> Material.t -> t
(** A row of offices along one side of a corridor — the canonical
    "measurement campaign" topology. *)

val random_clutter :
  Bg_prelude.Rng.t -> side:float -> n_walls:int -> ?min_len:float ->
  ?max_len:float -> Material.t list -> t
(** [n_walls] randomly placed and oriented wall segments with materials
    drawn uniformly from the list — models an irregular factory floor. *)
