type capacity_algo = Alg1 | Affectance_greedy | Strongest_first | Exact

let capacity ?(algo = Alg1) ?power t =
  match algo with
  | Alg1 -> Bg_capacity.Alg1.run ?power t
  | Affectance_greedy -> Bg_capacity.Greedy.affectance_greedy ?power t
  | Strongest_first -> Bg_capacity.Greedy.strongest_first ?power t
  | Exact -> Bg_capacity.Exact.capacity ?power t

let capacity_algo_name = function
  | Alg1 -> "alg1"
  | Affectance_greedy -> "affectance-greedy"
  | Strongest_first -> "strongest-first"
  | Exact -> "exact"

let schedule ?(via = `First_fit) t =
  match via with
  | `First_fit -> Bg_sched.Scheduler.first_fit t
  | `Capacity algo ->
      Bg_sched.Scheduler.via_capacity ~algorithm:(fun t -> capacity ~algo t) t
