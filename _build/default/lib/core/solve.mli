(** High-level solver entry points: pick a capacity algorithm or a
    scheduler by name.  Wraps the algorithm libraries for the examples and
    the CLI. *)

type capacity_algo =
  | Alg1  (** the paper's Algorithm 1 (Theorem 5) *)
  | Affectance_greedy  (** general-metric greedy ([30] family) *)
  | Strongest_first  (** naive SINR-checked greedy *)
  | Exact  (** branch-and-bound optimum (small instances only) *)

val capacity :
  ?algo:capacity_algo -> ?power:Bg_sinr.Power.t -> Bg_sinr.Instance.t ->
  Bg_sinr.Link.t list
(** Run the chosen capacity algorithm (default [Alg1]). *)

val capacity_algo_name : capacity_algo -> string

val schedule :
  ?via:[ `First_fit | `Capacity of capacity_algo ] -> Bg_sinr.Instance.t ->
  Bg_sched.Scheduler.schedule
(** Schedule all links into feasible slots (default [`First_fit]). *)
