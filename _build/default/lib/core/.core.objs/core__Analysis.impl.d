lib/core/analysis.ml: Bg_decay Bg_prelude Format List Printf
