lib/core/core.ml: Analysis Bg_capacity Bg_decay Bg_distrib Bg_geom Bg_graph Bg_prelude Bg_radio Bg_sched Bg_sinr Solve
