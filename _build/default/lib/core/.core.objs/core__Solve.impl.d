lib/core/solve.ml: Bg_capacity Bg_sched
