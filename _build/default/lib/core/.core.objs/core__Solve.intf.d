lib/core/solve.mli: Bg_sched Bg_sinr
