lib/core/analysis.mli: Bg_decay Bg_prelude Format
