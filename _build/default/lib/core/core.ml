(** Beyond Geometry: decay-space wireless models (PODC 2014) — public API.

    The umbrella module: every substrate under a stable name, plus the
    {!Analysis} report and {!Solve} entry points.  Downstream code should
    depend on this library and open nothing. *)

module Prelude = Bg_prelude
module Geom = Bg_geom
module Graph = Bg_graph
module Decay = Bg_decay
module Radio = Bg_radio
module Sinr = Bg_sinr
module Capacity = Bg_capacity
module Sched = Bg_sched
module Distrib = Bg_distrib
module Analysis = Analysis
module Solve = Solve
