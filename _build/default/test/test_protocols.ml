(* Tests for the distributed-protocol and application extensions: global
   broadcast, distributed coloring, dominating sets, spectrum auctions,
   conflict graphs and the RSSI sampling estimator. *)

open Testutil
module D = Core.Decay.Decay_space
module Bc = Core.Distrib.Broadcast
module Col = Core.Distrib.Coloring
module Dom = Core.Distrib.Dominating_set
module Auc = Core.Capacity.Auction
module Cg = Core.Sched.Conflict_graph
module Samp = Core.Radio.Sampling
module I = Core.Sinr.Instance

let grid_space alpha =
  D.of_points ~alpha (Core.Decay.Spaces.grid_points ~rows:4 ~cols:4 ~spacing:1.)

(* ------------------------------------------------------------ Broadcast *)

let test_broadcast_completes () =
  let sp = grid_space 3. in
  let r = Bc.run (rng 1) sp ~source:0 ~radius:1.5 in
  check_true "completed" r.Bc.completed;
  check_int "all informed" 16 r.Bc.informed;
  check_true "history is monotone"
    (let rec mono = function
       | a :: (b :: _ as rest) -> a <= b && mono rest
       | _ -> true
     in
     mono r.Bc.per_round_informed)

let test_broadcast_respects_budget () =
  let sp = grid_space 3. in
  let r = Bc.run ~max_rounds:2 (rng 2) sp ~source:0 ~radius:1.5 in
  check_true "round budget" (r.Bc.rounds <= 2)

let test_broadcast_source_validation () =
  let sp = grid_space 3. in
  Alcotest.check_raises "source range"
    (Invalid_argument "Broadcast.run: source range") (fun () ->
      ignore (Bc.run (rng 3) sp ~source:99 ~radius:1.))

let test_broadcast_rounds_at_least_eccentricity () =
  (* With noise, solo reception is limited to decay <= power/(beta*noise);
     information travels at most one such hop per round, so the hop
     eccentricity in *that* graph lower-bounds the broadcast time. *)
  let sp = grid_space 3. in
  let beta = 1. and noise = 1. and power = 6. in
  let reach = power /. (beta *. noise) in
  match Bc.eccentricity sp ~radius:reach 0 with
  | Some e ->
      let r = Bc.run ~power ~beta ~noise (rng 4) sp ~source:0 ~radius:1.5 in
      check_true "completes" r.Bc.completed;
      check_true "rounds >= reception-hop eccentricity" (r.Bc.rounds >= e)
  | None -> Alcotest.fail "grid should be connected at the reception radius"

let test_eccentricity_disconnected () =
  let sp =
    D.of_matrix [| [| 0.; 1.; 9. |]; [| 1.; 0.; 9. |]; [| 9.; 9.; 0. |] |]
  in
  check_true "unreachable gives None" (Bc.eccentricity sp ~radius:2. 0 = None)

let test_eccentricity_values () =
  (* Path graph: 0 - 1 - 2 at unit decays, radius covering one hop. *)
  let sp =
    D.of_matrix [| [| 0.; 1.; 4. |]; [| 1.; 0.; 1. |]; [| 4.; 1.; 0. |] |]
  in
  (match Bc.eccentricity sp ~radius:2. 0 with
  | Some e -> check_int "ecc of endpoint" 2 e
  | None -> Alcotest.fail "connected");
  match Bc.eccentricity sp ~radius:2. 1 with
  | Some e -> check_int "ecc of middle" 1 e
  | None -> Alcotest.fail "connected"

(* ------------------------------------------------------------- Coloring *)

let test_coloring_proper_on_grid () =
  let sp = grid_space 3. in
  let r = Col.run (rng 5) sp ~radius:1.5 in
  check_true "completed" r.Col.completed;
  check_true "proper" r.Col.proper;
  check_true "palette within Delta+1"
    (r.Col.palette <= Col.max_degree sp ~radius:1.5 + 1)

let test_coloring_uniform_space () =
  (* Uniform space at radius 1.5: complete conflict graph — all distinct
     colors. *)
  let sp = Core.Decay.Spaces.uniform 7 in
  let r = Col.run (rng 6) sp ~radius:1.5 in
  check_true "completed" r.Col.completed;
  check_true "proper" r.Col.proper;
  check_int "clique needs n colors" 7 r.Col.palette

let test_coloring_isolated_nodes () =
  (* Radius below all decays: no conflicts; any colors work, protocol ends
     quickly. *)
  let sp = Core.Decay.Spaces.uniform 6 in
  let r = Col.run (rng 7) sp ~radius:0.5 in
  check_true "completed" r.Col.completed;
  check_true "proper" r.Col.proper

let test_coloring_proper_across_seeds () =
  let sp = grid_space 2.5 in
  List.iter
    (fun seed ->
      let r = Col.run (rng seed) sp ~radius:1.5 in
      check_true "proper" r.Col.proper)
    [ 11; 12; 13; 14; 15 ]

(* ------------------------------------------------------ Dominating set *)

let test_dominating_set_grid () =
  let sp = grid_space 3. in
  let r = Dom.run (rng 21) sp ~radius:1.5 in
  check_true "completed" r.Dom.completed;
  check_true "dominating" r.Dom.dominating;
  check_true "not everything is a leader" (List.length r.Dom.leaders < 16)

let test_dominating_set_uniform () =
  let sp = Core.Decay.Spaces.uniform 8 in
  let r = Dom.run (rng 22) sp ~radius:1.5 in
  check_true "dominating" r.Dom.dominating;
  (* One leader dominates everyone in the uniform space; the protocol may
     elect a couple before suppression kicks in. *)
  check_true "few leaders" (List.length r.Dom.leaders <= 4)

let test_greedy_dominating_baseline () =
  let sp = Core.Decay.Spaces.uniform 9 in
  check_int "uniform needs one centre" 1
    (List.length (Dom.greedy_centralized sp ~radius:1.5));
  let sp2 = grid_space 3. in
  let ds = Dom.greedy_centralized sp2 ~radius:1.5 in
  (* Greedy output must itself dominate. *)
  let dominated v =
    List.mem v ds
    || List.exists
         (fun u ->
           List.mem v (Core.Distrib.Sim.neighbourhood sp2 ~radius:1.5 u)
           || List.mem u (Core.Distrib.Sim.neighbourhood sp2 ~radius:1.5 v))
         ds
  in
  check_true "greedy dominates" (List.for_all dominated (List.init 16 Fun.id))

let test_dominating_ratio_reasonable () =
  let sp = grid_space 3. in
  let r = Dom.run (rng 23) sp ~radius:1.5 in
  check_true "within small factor of greedy" (r.Dom.size_ratio <= 6.)

(* -------------------------------------------------------------- Auction *)

let test_auction_welfare_and_winners () =
  let t = planar_instance ~n_links:8 31 in
  let g = rng 32 in
  let bids =
    Array.init (Array.length t.I.links) (fun _ ->
        1. +. Core.Prelude.Rng.float g 9.)
  in
  let o = Auc.run t ~bids in
  check_true "winners feasible"
    (Core.Sinr.Feasibility.is_feasible t (Core.Sinr.Power.uniform 1.) o.Auc.winners);
  check_float ~eps:1e-9 "welfare = sum of winning bids"
    (List.fold_left (fun a l -> a +. bids.(l.Core.Sinr.Link.id)) 0. o.Auc.winners)
    o.Auc.welfare;
  check_int "one payment per winner" (List.length o.Auc.winners)
    (List.length o.Auc.payments)

let test_auction_payments_below_bids () =
  let t = planar_instance ~n_links:8 33 in
  let g = rng 34 in
  let bids =
    Array.init (Array.length t.I.links) (fun _ ->
        1. +. Core.Prelude.Rng.float g 9.)
  in
  let o = Auc.run t ~bids in
  List.iter
    (fun (id, pay) ->
      check_true "payment <= bid" (pay <= bids.(id) +. 1e-6);
      check_true "payment >= 0" (pay >= 0.))
    o.Auc.payments

let test_auction_monotone () =
  let t = planar_instance ~n_links:8 35 in
  let g = rng 36 in
  let bids =
    Array.init (Array.length t.I.links) (fun _ ->
        1. +. Core.Prelude.Rng.float g 9.)
  in
  let o = Auc.run t ~bids in
  List.iter
    (fun l -> check_true "raising bid keeps winning" (Auc.is_winner_monotone t ~bids l))
    o.Auc.winners

let test_auction_payment_bid_independent () =
  (* A winner bidding anything above its payment still wins and pays the
     same — the heart of truthfulness. *)
  let t = planar_instance ~n_links:6 37 in
  let g = rng 38 in
  let bids =
    Array.init (Array.length t.I.links) (fun _ ->
        1. +. Core.Prelude.Rng.float g 9.)
  in
  let o = Auc.run t ~bids in
  match o.Auc.winners with
  | [] -> Alcotest.fail "expected winners"
  | w :: _ ->
      let pay = List.assoc w.Core.Sinr.Link.id o.Auc.payments in
      let bids' = Array.copy bids in
      bids'.(w.Core.Sinr.Link.id) <- pay +. 0.5;
      let o' = Auc.run t ~bids:bids' in
      check_true "still wins just above payment"
        (List.exists
           (fun l -> l.Core.Sinr.Link.id = w.Core.Sinr.Link.id)
           o'.Auc.winners);
      let pay' = List.assoc w.Core.Sinr.Link.id o'.Auc.payments in
      check_float ~eps:1e-5 "payment unchanged" pay pay'

let test_auction_zero_bids_lose () =
  let t = planar_instance ~n_links:4 39 in
  let bids = Array.make 4 0. in
  check_int "nobody wins with zero bids" 0
    (List.length (Auc.greedy_allocation t ~bids))

(* ------------------------------------------------------- Conflict graph *)

let test_conflict_graph_structure () =
  let t = planar_instance ~n_links:8 41 in
  let g = Cg.build t in
  check_int "one vertex per link" 8 (Core.Graph.Graph.n g);
  (* Edges correspond exactly to infeasible pairs. *)
  let links = t.I.links in
  let p = Core.Sinr.Power.uniform 1. in
  for i = 0 to 7 do
    for j = i + 1 to 7 do
      Alcotest.(check bool)
        "edge iff pair infeasible"
        (not (Core.Sinr.Feasibility.is_feasible t p [ links.(i); links.(j) ]))
        (Core.Graph.Graph.has_edge g i j)
    done
  done

let test_conflict_schedule_covers () =
  let t = planar_instance ~n_links:10 42 in
  let slots = Cg.schedule t in
  let total = List.fold_left (fun a s -> a + List.length s) 0 slots in
  check_int "covers all links" 10 total

let test_conflict_graph_capacity_upper_bounds () =
  List.iter
    (fun seed ->
      let t = planar_instance ~n_links:10 seed in
      let true_cap = List.length (Core.Capacity.Exact.capacity t) in
      check_true "graph capacity >= true capacity"
        (Cg.graph_capacity t >= true_cap))
    [ 43; 44; 45 ]

let test_conflict_fidelity_range () =
  let t = planar_instance ~n_links:10 46 in
  let f = Cg.fidelity t in
  check_true "fidelity in [0,1]" (f >= 0. && f <= 1.)

(* ------------------------------------------------------------- Sampling *)

let test_sampling_converges () =
  let env = Core.Radio.Environment.empty ~side:20. in
  let nodes =
    Core.Radio.Node.of_points
      (Core.Decay.Spaces.random_points (rng 51) ~n:6 ~side:18.)
  in
  let cfg =
    { Core.Radio.Propagation.default with
      Core.Radio.Propagation.walls = false;
      fading = Core.Radio.Propagation.Rayleigh }
  in
  let truth =
    Core.Radio.Measure.decay_space ~seed:3
      ~config:{ cfg with Core.Radio.Propagation.fading = Core.Radio.Propagation.No_fading }
      env nodes
  in
  let est k = Samp.estimate_decay_space ~seed:3 ~config:cfg ~samples:k env nodes in
  let med4, _ = Samp.error_db ~truth ~estimate:(est 4) in
  let med256, _ = Samp.error_db ~truth ~estimate:(est 256) in
  check_true "more samples, less error" (med256 < med4);
  check_true "256 samples within 1 dB" (med256 < 1.)

let test_sampling_no_fading_exact () =
  let env = Core.Radio.Environment.empty ~side:20. in
  let nodes =
    Core.Radio.Node.of_points
      (Core.Decay.Spaces.random_points (rng 52) ~n:5 ~side:18.)
  in
  let cfg =
    { Core.Radio.Propagation.default with
      Core.Radio.Propagation.walls = false;
      fading = Core.Radio.Propagation.No_fading }
  in
  let truth = Core.Radio.Measure.decay_space ~seed:4 ~config:cfg env nodes in
  let est = Samp.estimate_decay_space ~seed:4 ~config:cfg ~samples:2 env nodes in
  let med, p95 = Samp.error_db ~truth ~estimate:est in
  check_float ~eps:1e-9 "exact without fading (median)" 0. med;
  check_float ~eps:1e-9 "exact without fading (p95)" 0. p95

let test_sampling_validation () =
  let env = Core.Radio.Environment.empty ~side:10. in
  let nodes = Core.Radio.Node.of_points [ Core.Geom.Point.make 1. 1. ] in
  Alcotest.check_raises "sample count"
    (Invalid_argument "Sampling: need at least one sample") (fun () ->
      ignore (Samp.estimate_decay_space ~samples:0 env nodes))

let prop_broadcast_always_terminates_connected =
  qcheck ~count:20 "broadcast completes on connected grids" QCheck.small_int
    (fun seed ->
      let sp = grid_space 3. in
      (Bc.run (rng seed) sp ~source:(seed mod 16) ~radius:1.5).Bc.completed)

let prop_auction_winners_feasible =
  qcheck ~count:25 "auction winners always feasible" QCheck.small_int
    (fun seed ->
      let t = planar_instance ~n_links:7 seed in
      let g = rng (seed + 9) in
      let bids =
        Array.init (Array.length t.I.links) (fun _ ->
            Core.Prelude.Rng.float g 10.)
      in
      Core.Sinr.Feasibility.is_feasible t (Core.Sinr.Power.uniform 1.)
        (Auc.greedy_allocation t ~bids))

let suite =
  [
    ( "proto.broadcast",
      [
        case "completes" test_broadcast_completes;
        case "round budget" test_broadcast_respects_budget;
        case "source validation" test_broadcast_source_validation;
        case "rounds >= eccentricity" test_broadcast_rounds_at_least_eccentricity;
        case "eccentricity disconnected" test_eccentricity_disconnected;
        case "eccentricity values" test_eccentricity_values;
        prop_broadcast_always_terminates_connected;
      ] );
    ( "proto.coloring",
      [
        case "proper on grid" test_coloring_proper_on_grid;
        case "uniform clique" test_coloring_uniform_space;
        case "isolated nodes" test_coloring_isolated_nodes;
        case "proper across seeds" test_coloring_proper_across_seeds;
      ] );
    ( "proto.dominating",
      [
        case "grid" test_dominating_set_grid;
        case "uniform" test_dominating_set_uniform;
        case "greedy baseline" test_greedy_dominating_baseline;
        case "ratio" test_dominating_ratio_reasonable;
      ] );
    ( "proto.auction",
      [
        case "welfare and winners" test_auction_welfare_and_winners;
        case "payments below bids" test_auction_payments_below_bids;
        case "monotone" test_auction_monotone;
        case "payment bid-independent" test_auction_payment_bid_independent;
        case "zero bids lose" test_auction_zero_bids_lose;
        prop_auction_winners_feasible;
      ] );
    ( "proto.conflict_graph",
      [
        case "structure" test_conflict_graph_structure;
        case "schedule covers" test_conflict_schedule_covers;
        case "capacity upper bound" test_conflict_graph_capacity_upper_bounds;
        case "fidelity range" test_conflict_fidelity_range;
      ] );
    ( "proto.sampling",
      [
        case "converges" test_sampling_converges;
        case "no fading exact" test_sampling_no_fading_exact;
        case "validation" test_sampling_validation;
      ] );
  ]
