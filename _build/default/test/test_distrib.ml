open Testutil
module D = Core.Decay.Decay_space
module I = Core.Sinr.Instance
module Pw = Core.Sinr.Power
module Sim = Core.Distrib.Sim
module Regret = Core.Distrib.Regret
module LB = Core.Distrib.Local_broadcast
module Agg = Core.Distrib.Aggregation

(* ------------------------------------------------------------------ Sim *)

let test_link_outcomes () =
  let sp =
    D.of_fn ~name:"pair" 4 (fun i j ->
        match (i, j) with 0, 1 | 1, 0 | 2, 3 | 3, 2 -> 1. | _ -> 4.)
  in
  let t = I.make ~beta:2. ~zeta:1. sp [ (0, 1); (2, 3) ] in
  let links = Array.to_list t.I.links in
  let outcomes = Sim.link_outcomes t (Pw.uniform 1.) ~transmitting:links in
  (* SINR = 4 >= 2 for both. *)
  check_true "both succeed" (List.for_all snd outcomes);
  let t5 = I.make ~beta:5. ~zeta:1. sp [ (0, 1); (2, 3) ] in
  let links5 = Array.to_list t5.I.links in
  let o5 = Sim.link_outcomes t5 (Pw.uniform 1.) ~transmitting:links5 in
  check_true "both fail at beta 5" (List.for_all (fun (_, ok) -> not ok) o5)

let test_decodes_capture () =
  let sp =
    D.of_matrix
      [| [| 0.; 1.; 10. |]; [| 1.; 0.; 10. |]; [| 10.; 10.; 0. |] |]
  in
  (* Receiver 1: sender 0 at decay 1, sender 2 at decay 10: capture 0. *)
  (match
     Sim.decodes ~space:sp ~noise:0. ~beta:2. ~power:1. ~transmitters:[ 0; 2 ]
       ~receiver:1
   with
  | Some s -> check_int "captures strongest" 0 s
  | None -> Alcotest.fail "expected capture");
  (* Equal strengths: SINR = 1 < beta, no capture. *)
  (match
     Sim.decodes ~space:(Core.Decay.Spaces.uniform 3) ~noise:0. ~beta:2.
       ~power:1. ~transmitters:[ 0; 2 ] ~receiver:1
   with
  | Some _ -> Alcotest.fail "collision must not decode"
  | None -> ())

let test_decodes_half_duplex () =
  let sp = Core.Decay.Spaces.uniform 3 in
  check_true "transmitter cannot receive"
    (Sim.decodes ~space:sp ~noise:0. ~beta:1. ~power:1. ~transmitters:[ 0; 1 ]
       ~receiver:0
    = None)

let test_decodes_noise_limited () =
  let sp = Core.Decay.Spaces.uniform 3 in
  check_true "decodes over noise"
    (Sim.decodes ~space:sp ~noise:0.4 ~beta:2. ~power:1. ~transmitters:[ 0 ]
       ~receiver:1
    <> None);
  check_true "fails under noise"
    (Sim.decodes ~space:sp ~noise:0.6 ~beta:2. ~power:1. ~transmitters:[ 0 ]
       ~receiver:1
    = None)

let test_neighbourhood () =
  let sp =
    D.of_matrix
      [| [| 0.; 1.; 5. |]; [| 1.; 0.; 5. |]; [| 5.; 5.; 0. |] |]
  in
  Alcotest.(check (list int)) "radius 2" [ 1 ] (Sim.neighbourhood sp ~radius:2. 0);
  Alcotest.(check (list int)) "radius 6" [ 1; 2 ] (Sim.neighbourhood sp ~radius:6. 0)

(* --------------------------------------------------------------- Regret *)

let test_regret_two_compatible_links () =
  (* Two far-apart links: the dynamics should keep both active. *)
  let t = planar_instance ~n_links:2 ~side:100. 1 in
  let r = Regret.run (rng 2) t in
  check_true "both active" (List.length r.Regret.final_active = 2);
  check_true "active set feasible" r.Regret.active_feasible;
  check_true "throughput near 2" (r.Regret.avg_successes > 1.5)

let test_regret_conflicting_links () =
  (* Theorem 3 space on a single edge: the two links can never coexist;
     no-regret dynamics must not stabilize with both on. *)
  let g = Core.Graph.Graph.complete 2 in
  let sp, pairs = Core.Decay.Spaces.mis_construction g in
  let t = I.equi_decay_of_space sp pairs in
  let r = Regret.run ~rounds:1500 (rng 3) t in
  check_true "not both active" (List.length r.Regret.final_active <= 1);
  check_true "some throughput" (r.Regret.avg_successes > 0.3)

let test_regret_deterministic () =
  let t = planar_instance ~n_links:5 4 in
  let r1 = Regret.run (rng 9) t in
  let r2 = Regret.run (rng 9) t in
  check_float "reproducible" r1.Regret.avg_successes r2.Regret.avg_successes

let test_regret_feasible_active_on_planar () =
  List.iter
    (fun seed ->
      let t = planar_instance ~n_links:8 ~side:40. seed in
      let r = Regret.run ~rounds:1200 (rng (seed * 3)) t in
      check_true "active set feasible" r.Regret.active_feasible)
    [ 11; 12 ]

(* ------------------------------------------------------ Local broadcast *)

let test_local_broadcast_completes_small () =
  let sp = Core.Decay.Spaces.uniform 6 in
  let r = LB.run (rng 5) sp ~radius:1.5 in
  check_true "completes" r.LB.completed;
  check_int "all pairs" 30 r.LB.pairs;
  check_int "all delivered" 30 r.LB.deliveries

let test_local_broadcast_planar () =
  let pts = Core.Decay.Spaces.grid_points ~rows:3 ~cols:3 ~spacing:1. in
  let sp = D.of_points ~alpha:3. pts in
  let r = LB.run (rng 6) sp ~radius:1.5 in
  check_true "completes" r.LB.completed;
  check_true "took more than one round" (r.LB.rounds > 1)

let test_local_broadcast_radius_grows_pairs () =
  let pts = Core.Decay.Spaces.grid_points ~rows:3 ~cols:3 ~spacing:1. in
  let sp = D.of_points ~alpha:3. pts in
  let small = LB.run (rng 7) sp ~radius:1.5 in
  let large = LB.run (rng 7) sp ~radius:9. in
  check_true "larger radius, more pairs" (large.LB.pairs > small.LB.pairs)

let test_local_broadcast_max_rounds () =
  let sp = Core.Decay.Spaces.uniform 8 in
  let r = LB.run ~max_rounds:1 (rng 8) sp ~radius:1.5 in
  check_true "respects budget" (r.LB.rounds <= 1)

(* ---------------------------------------------------------- Aggregation *)

let test_communication_graph () =
  let sp =
    D.of_matrix [| [| 0.; 1.; 9. |]; [| 1.; 0.; 9. |]; [| 9.; 9.; 0. |] |]
  in
  let edges = Agg.communication_graph sp ~power:1. ~beta:2. ~noise:0.2 in
  (* Signal 1/1 = 1 vs noise 0.2: SINR 5 >= 2 for the near pair; 1/9/0.2
     = 0.55 < 2 for far pairs. *)
  check_true "near pair connected" (List.mem (0, 1) edges && List.mem (1, 0) edges);
  check_false "far pair not" (List.mem (0, 2) edges)

let test_aggregation_full_reach () =
  let pts = Core.Decay.Spaces.grid_points ~rows:3 ~cols:3 ~spacing:1. in
  let sp = D.of_points ~alpha:2. pts in
  let r = Agg.run ~power:1. ~beta:1.5 ~noise:0.3 sp ~sink:0 in
  check_int "all reached" 9 r.Agg.reached;
  check_int "spanning tree edges" 8 (List.length r.Agg.tree_edges);
  check_true "has slots" (r.Agg.slots >= 1);
  (* Slot contents cover exactly the tree edges. *)
  let scheduled = List.concat r.Agg.schedule in
  check_int "all edges scheduled" 8 (List.length scheduled)

let test_aggregation_disconnected () =
  (* Two clusters too far apart under noise: sink's cluster only. *)
  let sp =
    D.of_matrix
      [|
        [| 0.; 1.; 1e9; 1e9 |];
        [| 1.; 0.; 1e9; 1e9 |];
        [| 1e9; 1e9; 0.; 1. |];
        [| 1e9; 1e9; 1.; 0. |];
      |]
  in
  let r = Agg.run ~power:1. ~beta:2. ~noise:0.2 sp ~sink:0 in
  check_int "half reached" 2 r.Agg.reached

let test_aggregation_sink_range () =
  let sp = Core.Decay.Spaces.uniform 3 in
  Alcotest.check_raises "sink range"
    (Invalid_argument "Aggregation.run: sink out of range") (fun () ->
      ignore (Agg.run sp ~sink:5))

let prop_aggregation_schedule_feasible =
  qcheck ~count:20 "aggregation slots are SINR-feasible" QCheck.small_int
    (fun seed ->
      let pts = Core.Decay.Spaces.random_points (rng seed) ~n:8 ~side:4. in
      let sp = D.of_points ~alpha:2.5 pts in
      let r = Agg.run ~power:1. ~beta:1.2 ~noise:0.01 sp ~sink:0 in
      (* Re-check each slot's feasibility from scratch. *)
      List.for_all
        (fun slot ->
          let pairs =
            List.map
              (fun l -> (l.Core.Sinr.Link.sender, l.Core.Sinr.Link.receiver))
              slot
          in
          let sub = I.make ~noise:0.01 ~beta:1.2 ~zeta:2.5 sp pairs in
          Core.Sinr.Feasibility.is_feasible sub (Pw.uniform 1.)
            (Array.to_list sub.I.links))
        r.Agg.schedule)

let suite =
  [
    ( "distrib.sim",
      [
        case "link outcomes" test_link_outcomes;
        case "capture" test_decodes_capture;
        case "half duplex" test_decodes_half_duplex;
        case "noise limited" test_decodes_noise_limited;
        case "neighbourhood" test_neighbourhood;
      ] );
    ( "distrib.regret",
      [
        case "compatible links stay on" test_regret_two_compatible_links;
        case "conflicting links back off" test_regret_conflicting_links;
        case "deterministic" test_regret_deterministic;
        case "planar active sets feasible" test_regret_feasible_active_on_planar;
      ] );
    ( "distrib.local_broadcast",
      [
        case "uniform completes" test_local_broadcast_completes_small;
        case "planar grid completes" test_local_broadcast_planar;
        case "radius grows pairs" test_local_broadcast_radius_grows_pairs;
        case "round budget" test_local_broadcast_max_rounds;
      ] );
    ( "distrib.aggregation",
      [
        case "communication graph" test_communication_graph;
        case "full reach" test_aggregation_full_reach;
        case "disconnected" test_aggregation_disconnected;
        case "sink range" test_aggregation_sink_range;
        prop_aggregation_schedule_feasible;
      ] );
  ]
