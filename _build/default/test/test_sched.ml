open Testutil
module I = Core.Sinr.Instance
module Pw = Core.Sinr.Power
module Sch = Core.Sched.Scheduler

let test_first_fit_valid () =
  List.iter
    (fun seed ->
      let t = planar_instance ~n_links:14 seed in
      let s = Sch.first_fit t in
      check_true "valid schedule" (Sch.verify t s))
    [ 1; 2; 3 ]

let test_first_fit_dense_needs_more_slots () =
  (* Cramming links into a smaller area forces longer schedules. *)
  let sparse = planar_instance ~n_links:14 ~side:60. 4 in
  let dense = planar_instance ~n_links:14 ~side:6. 4 in
  check_true "denser => more slots"
    (Sch.length (Sch.first_fit dense) >= Sch.length (Sch.first_fit sparse))

let test_first_fit_singleton () =
  let t = planar_instance ~n_links:1 5 in
  check_int "one slot" 1 (Sch.length (Sch.first_fit t))

let test_via_capacity_valid () =
  List.iter
    (fun seed ->
      let t = planar_instance ~n_links:14 seed in
      let s = Sch.via_capacity t in
      check_true "valid schedule" (Sch.verify t s))
    [ 6; 7 ]

let test_via_capacity_custom_algorithm () =
  let t = planar_instance ~n_links:10 8 in
  let s =
    Sch.via_capacity ~algorithm:Core.Capacity.Greedy.strongest_first t
  in
  check_true "valid with greedy" (Sch.verify t s)

let test_verify_rejects_bad_schedules () =
  let t = planar_instance ~n_links:6 9 in
  let links = Array.to_list t.I.links in
  (* Missing a link. *)
  check_false "missing link" (Sch.verify t [ List.tl links ]);
  (* Duplicated link. *)
  check_false "duplicate link"
    (Sch.verify t [ links; [ List.hd links ] ])

let test_schedule_length_bounded_by_n () =
  let t = planar_instance ~n_links:12 10 in
  check_true "at most one slot per link" (Sch.length (Sch.first_fit t) <= 12)

let test_empty_instance () =
  let t = planar_instance ~n_links:2 11 in
  let t0 = I.with_links t [||] in
  check_int "no slots" 0 (Sch.length (Sch.first_fit t0));
  check_true "empty valid" (Sch.verify t0 (Sch.first_fit t0))

let prop_first_fit_always_valid =
  qcheck ~count:40 "first-fit schedules verify" QCheck.small_int (fun seed ->
      let t = planar_instance ~n_links:10 ~alpha:2.5 seed in
      Sch.verify t (Sch.first_fit t))

let prop_via_capacity_always_valid =
  qcheck ~count:25 "capacity-reduction schedules verify" QCheck.small_int
    (fun seed ->
      let t = planar_instance ~n_links:10 seed in
      Sch.verify t (Sch.via_capacity t))

let prop_schedules_on_random_decay_spaces =
  qcheck ~count:25 "schedules work on arbitrary decay spaces" QCheck.small_int
    (fun seed ->
      let sp = random_space ~n:16 ~range:30. seed in
      let t =
        I.random_links_in_space ~zeta:(Core.Decay.Metricity.zeta sp) (rng (seed + 7))
          ~n_links:5 ~max_decay:(Core.Decay.Decay_space.max_decay sp) sp
      in
      Sch.verify t (Sch.first_fit t))

let suite =
  [
    ( "sched.scheduler",
      [
        case "first-fit valid" test_first_fit_valid;
        case "density lengthens schedule" test_first_fit_dense_needs_more_slots;
        case "singleton" test_first_fit_singleton;
        case "via capacity valid" test_via_capacity_valid;
        case "via custom algorithm" test_via_capacity_custom_algorithm;
        case "verify rejects bad" test_verify_rejects_bad_schedules;
        case "length bounded" test_schedule_length_bounded_by_n;
        case "empty instance" test_empty_instance;
        prop_first_fit_always_valid;
        prop_via_capacity_always_valid;
        prop_schedules_on_random_decay_spaces;
      ] );
  ]
