open Testutil
module G = Core.Graph.Graph
module Mis = Core.Graph.Mis

let test_empty () =
  let g = G.create 4 in
  check_int "no edges" 0 (G.edge_count g);
  check_false "no adjacency" (G.has_edge g 0 1)

let test_add_remove () =
  let g = G.create 4 in
  G.add_edge g 0 1;
  check_true "added" (G.has_edge g 0 1);
  check_true "symmetric" (G.has_edge g 1 0);
  G.remove_edge g 1 0;
  check_false "removed" (G.has_edge g 0 1)

let test_self_loop_rejected () =
  let g = G.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> G.add_edge g 1 1)

let test_out_of_range () =
  let g = G.create 3 in
  Alcotest.check_raises "range" (Invalid_argument "Graph: vertex out of range")
    (fun () -> G.add_edge g 0 5)

let test_degree_neighbours () =
  let g = G.star 5 in
  check_int "centre degree" 4 (G.degree g 0);
  check_int "leaf degree" 1 (G.degree g 3);
  Alcotest.(check (list int)) "neighbours sorted" [ 1; 2; 3; 4 ] (G.neighbours g 0)

let test_edges_listing () =
  let g = G.cycle 4 in
  check_int "C4 edges" 4 (G.edge_count g);
  check_true "edges normalized"
    (List.for_all (fun (u, v) -> u < v) (G.edges g))

let test_complement () =
  let g = G.complete 4 in
  check_int "complement of K4 empty" 0 (G.edge_count (G.complement g));
  let e = G.create 3 in
  check_int "complement of empty is complete" 3 (G.edge_count (G.complement e))

let test_independent_clique () =
  let g = G.cycle 5 in
  check_true "alternating set independent" (G.is_independent g [ 0; 2 ]);
  check_false "adjacent not independent" (G.is_independent g [ 0; 1 ]);
  check_true "edge is clique" (G.is_clique g [ 0; 1 ]);
  check_false "non-edge not clique" (G.is_clique g [ 0; 2 ])

let test_generators () =
  check_int "path edges" 4 (G.edge_count (G.path 5));
  check_int "complete edges" 10 (G.edge_count (G.complete 5));
  check_int "bipartite edges" 6 (G.edge_count (G.complete_bipartite 2 3));
  let du = G.disjoint_union (G.complete 3) (G.cycle 3) in
  check_int "union vertices" 6 (G.n du);
  check_int "union edges" 6 (G.edge_count du);
  check_false "no cross edges" (G.has_edge du 0 3)

let test_random_graph_density () =
  let g = G.random (rng 5) 30 0.5 in
  let e = float_of_int (G.edge_count g) in
  let max_e = 30. *. 29. /. 2. in
  check_true "roughly half the edges" (e /. max_e > 0.35 && e /. max_e < 0.65)

(* ------------------------------------------------------------------ MIS *)

let test_mis_cycle_even () =
  check_int "alpha(C6) = 3" 3 (Mis.independence_number (G.cycle 6))

let test_mis_cycle_odd () =
  check_int "alpha(C7) = 3" 3 (Mis.independence_number (G.cycle 7))

let test_mis_complete () =
  check_int "alpha(K5) = 1" 1 (Mis.independence_number (G.complete 5))

let test_mis_empty_graph () =
  check_int "alpha(empty on 6) = 6" 6 (Mis.independence_number (G.create 6))

let test_mis_star () =
  check_int "alpha(star 8) = 7" 7 (Mis.independence_number (G.star 8))

let test_mis_bipartite () =
  check_int "alpha(K_{3,4}) = 4" 4 (Mis.independence_number (G.complete_bipartite 3 4))

let test_mis_is_independent () =
  let g = G.random (rng 7) 15 0.3 in
  check_true "exact result independent" (G.is_independent g (Mis.exact g));
  check_true "greedy result independent" (G.is_independent g (Mis.greedy g))

let test_mis_limit () =
  Alcotest.check_raises "limit" (Invalid_argument "Mis.exact: graph exceeds size limit")
    (fun () -> ignore (Mis.exact ~limit:3 (G.create 5)))

(* Brute-force MIS for cross-validation. *)
let brute_force_mis g =
  let n = G.n g in
  let best = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let vs = List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n Fun.id) in
    if G.is_independent g vs && List.length vs > !best then
      best := List.length vs
  done;
  !best

let prop_mis_matches_brute_force =
  qcheck ~count:40 "exact MIS = brute force (n<=10)"
    QCheck.(pair small_int (float_bound_exclusive 1.))
    (fun (seed, p) ->
      let g = G.random (rng seed) 10 p in
      Mis.independence_number g = brute_force_mis g)

let prop_greedy_bounded_by_exact =
  qcheck ~count:40 "greedy <= exact" QCheck.small_int (fun seed ->
      let g = G.random (rng seed) 14 0.3 in
      List.length (Mis.greedy g) <= List.length (Mis.exact g))

let prop_complement_involution =
  qcheck ~count:40 "complement twice is identity" QCheck.small_int (fun seed ->
      let g = G.random (rng seed) 10 0.4 in
      let cc = G.complement (G.complement g) in
      G.edges g = G.edges cc)

let suite =
  [
    ( "graph.basic",
      [
        case "empty" test_empty;
        case "add/remove" test_add_remove;
        case "self loop" test_self_loop_rejected;
        case "out of range" test_out_of_range;
        case "degree/neighbours" test_degree_neighbours;
        case "edges listing" test_edges_listing;
        case "complement" test_complement;
        case "independent/clique" test_independent_clique;
        case "generators" test_generators;
        case "random density" test_random_graph_density;
        prop_complement_involution;
      ] );
    ( "graph.mis",
      [
        case "C6" test_mis_cycle_even;
        case "C7" test_mis_cycle_odd;
        case "K5" test_mis_complete;
        case "empty graph" test_mis_empty_graph;
        case "star" test_mis_star;
        case "bipartite" test_mis_bipartite;
        case "results independent" test_mis_is_independent;
        case "size limit" test_mis_limit;
        prop_mis_matches_brute_force;
        prop_greedy_bounded_by_exact;
      ] );
  ]
