open Testutil
module D = Core.Decay.Decay_space
module L = Core.Sinr.Link
module Pw = Core.Sinr.Power
module I = Core.Sinr.Instance
module Aff = Core.Sinr.Affectance
module F = Core.Sinr.Feasibility
module Sep = Core.Sinr.Separation
module PC = Core.Sinr.Power_control
module Part = Core.Sinr.Partition

(* A simple fully-specified instance: two parallel unit links at controlled
   cross decay. *)
let two_link_space ~cross =
  D.of_fn ~name:"two-links" 4 (fun i j ->
      (* Nodes: s0=0, r0=1, s1=2, r1=3.  Link decays 1, cross decays
         [cross]. *)
      match (i, j) with
      | 0, 1 | 1, 0 | 2, 3 | 3, 2 -> 1.
      | _ -> cross)

let two_link_instance ?noise ?beta ~cross () =
  I.make ?noise ?beta ~zeta:1. (two_link_space ~cross) [ (0, 1); (2, 3) ]

(* ----------------------------------------------------------------- Link *)

let test_link_make_rejects_loop () =
  Alcotest.check_raises "loop" (Invalid_argument "Link.make: sender equals receiver")
    (fun () -> ignore (L.make ~id:0 ~sender:1 ~receiver:1))

let test_link_decays () =
  let sp = two_link_space ~cross:8. in
  let links = L.of_pairs [ (0, 1); (2, 3) ] in
  check_float "self decay" 1. (L.self_decay sp links.(0));
  check_float "cross decay" 8. (L.cross_decay sp ~from_:links.(0) ~to_:links.(1))

let test_link_ordering () =
  let sp = D.of_matrix [| [| 0.; 5.; 2. |]; [| 5.; 0.; 9. |]; [| 2.; 9.; 0. |] |] in
  let links = L.of_pairs [ (0, 1); (0, 2) ] in
  check_true "shorter first" (L.compare_by_decay sp links.(1) links.(0) < 0)

(* ---------------------------------------------------------------- Power *)

let test_power_values () =
  let sp = two_link_space ~cross:4. in
  let l = (L.of_pairs [ (0, 1) ]).(0) in
  check_float "uniform" 3. (Pw.value (Pw.uniform 3.) sp l);
  check_float "linear" 2. (Pw.value (Pw.linear ~coeff:2.) sp l);
  check_float "mean" 2. (Pw.value (Pw.mean ~coeff:2.) sp l);
  check_float "custom" 7. (Pw.value (Pw.Custom [| 7. |]) sp l)

let test_power_uniform_validation () =
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Power.uniform: power must be positive") (fun () ->
      ignore (Pw.uniform 0.))

let test_power_monotone_family () =
  let t = planar_instance ~n_links:6 1 in
  let links = t.I.links in
  check_true "uniform monotone" (Pw.is_monotone (Pw.uniform 1.) t.I.space links);
  check_true "linear monotone" (Pw.is_monotone (Pw.linear ~coeff:1.) t.I.space links);
  check_true "mean monotone" (Pw.is_monotone (Pw.mean ~coeff:1.) t.I.space links)

let test_power_nonmonotone_detected () =
  let t = planar_instance ~n_links:4 2 in
  (* Inverse assignment: shorter links get more power. *)
  let sp = t.I.space in
  let arr =
    Array.map (fun l -> 1. /. L.self_decay sp l) t.I.links
  in
  check_false "inverse power not monotone" (Pw.is_monotone (Pw.Custom arr) sp t.I.links)

(* ------------------------------------------------------------- Instance *)

let test_instance_defaults () =
  let t = two_link_instance ~cross:4. () in
  check_float "noise" 0. t.I.noise;
  check_float "beta" 1. t.I.beta;
  check_int "links" 2 (I.n_links t)

let test_instance_validation () =
  Alcotest.check_raises "beta < 1" (Invalid_argument "Instance.make: beta must be >= 1")
    (fun () -> ignore (I.make ~beta:0.5 (two_link_space ~cross:2.) [ (0, 1) ]));
  Alcotest.check_raises "negative noise"
    (Invalid_argument "Instance.make: negative noise") (fun () ->
      ignore (I.make ~noise:(-1.) (two_link_space ~cross:2.) [ (0, 1) ]))

let test_instance_link_lookup () =
  let t = two_link_instance ~cross:4. () in
  check_int "id 1" 1 (I.link t 1).L.id;
  Alcotest.check_raises "missing" (Invalid_argument "Instance.link: no such id")
    (fun () -> ignore (I.link t 5))

let test_quasi_dist_and_link_dist () =
  let t = two_link_instance ~cross:16. () in
  (* zeta = 1 was forced, so quasi distance = decay. *)
  check_float "quasi" 16. (I.quasi_dist t 0 2);
  let a = t.I.links.(0) and b = t.I.links.(1) in
  check_float "link length" 1. (I.link_length t a);
  check_float "link dist = min endpoint pair" 16. (I.link_dist t a b)

let test_random_planar_structure () =
  let t = planar_instance ~n_links:10 3 in
  check_int "10 links" 10 (I.n_links t);
  check_float "zeta = alpha" 3. t.I.zeta;
  Array.iter
    (fun l ->
      let len = I.link_length t l in
      check_true "length within [1,2]" (len >= 1. -. 1e-9 && len <= 2. +. 1e-9))
    t.I.links

let test_equi_decay_accepts_thm3 () =
  let g = Core.Graph.Graph.cycle 5 in
  let sp, pairs = Core.Decay.Spaces.mis_construction g in
  let t = I.equi_decay_of_space sp pairs in
  check_int "5 links" 5 (I.n_links t)

let test_equi_decay_rejects_unequal () =
  let t = planar_instance ~n_links:4 4 in
  let pairs =
    Array.to_list (Array.map (fun l -> (l.L.sender, l.L.receiver)) t.I.links)
  in
  Alcotest.check_raises "unequal"
    (Invalid_argument "Instance.equi_decay_of_space: unequal link decays")
    (fun () -> ignore (I.equi_decay_of_space ~zeta:3. t.I.space pairs))

let test_random_links_in_space () =
  let sp = random_space ~n:20 5 in
  let t =
    I.random_links_in_space ~zeta:2. (rng 6) ~n_links:5
      ~max_decay:(D.max_decay sp) sp
  in
  check_int "5 links" 5 (I.n_links t);
  (* Node-disjoint by construction. *)
  let nodes =
    Array.to_list t.I.links
    |> List.concat_map (fun l -> [ l.L.sender; l.L.receiver ])
  in
  check_int "disjoint endpoints" 10 (List.length (List.sort_uniq compare nodes))

(* ----------------------------------------------------------- Affectance *)

let test_noise_constant_no_noise () =
  let t = two_link_instance ~cross:4. () in
  let l = t.I.links.(0) in
  check_float "c_v = beta when N = 0" 1. (Aff.noise_constant t (Pw.uniform 1.) l)

let test_noise_constant_with_noise () =
  let t = two_link_instance ~noise:0.5 ~cross:4. () in
  let l = t.I.links.(0) in
  (* c_v = beta / (1 - beta N f/P) = 1 / (1 - 0.5) = 2. *)
  check_float ~eps:1e-9 "c_v" 2. (Aff.noise_constant t (Pw.uniform 1.) l)

let test_noise_constant_infeasible_link () =
  let t = two_link_instance ~noise:2. ~cross:4. () in
  let l = t.I.links.(0) in
  check_true "infinite c_v" (Aff.noise_constant t (Pw.uniform 1.) l = infinity)

let test_affectance_values () =
  let t = two_link_instance ~cross:4. () in
  let p = Pw.uniform 1. in
  let a = t.I.links.(0) and b = t.I.links.(1) in
  (* a_w(v) = c * (P f_vv)/(P f_wv) = 1 * 1/4. *)
  check_float "cross affectance" 0.25 (Aff.affectance t p ~from_:a ~to_:b);
  check_float "self affectance 0" 0. (Aff.affectance t p ~from_:a ~to_:a)

let test_affectance_clipping () =
  let t = two_link_instance ~cross:0.5 () in
  let p = Pw.uniform 1. in
  let a = t.I.links.(0) and b = t.I.links.(1) in
  check_float "clipped at 1" 1. (Aff.affectance t p ~from_:a ~to_:b);
  check_float "unclipped is 2" 2. (Aff.affectance_unclipped t p ~from_:a ~to_:b)

let test_in_out_affectance_sums () =
  let t = two_link_instance ~cross:4. () in
  let p = Pw.uniform 1. in
  let set = Array.to_list t.I.links in
  check_float "in" 0.25 (Aff.in_affectance t p set t.I.links.(0));
  check_float "out" 0.25 (Aff.out_affectance t p t.I.links.(0) set)

(* ---------------------------------------------------------- Feasibility *)

let test_sinr_values () =
  let t = two_link_instance ~cross:4. () in
  let p = Pw.uniform 1. in
  let set = Array.to_list t.I.links in
  (* signal 1, interference 1/4. *)
  check_float "sinr" 4. (F.sinr t p set t.I.links.(0));
  check_float "solo infinite" infinity (F.sinr t p [ t.I.links.(0) ] t.I.links.(0))

let test_feasibility_threshold () =
  let feasible = two_link_instance ~beta:3. ~cross:4. () in
  check_true "beta 3 feasible"
    (F.is_feasible feasible (Pw.uniform 1.) (Array.to_list feasible.I.links));
  let tight = two_link_instance ~beta:5. ~cross:4. () in
  check_false "beta 5 infeasible"
    (F.is_feasible tight (Pw.uniform 1.) (Array.to_list tight.I.links))

let test_feasibility_affectance_equivalence () =
  (* When nothing clips, SINR-form and affectance-form agree. *)
  List.iter
    (fun seed ->
      let t = planar_instance ~n_links:6 seed in
      let p = Pw.uniform 1. in
      let set = Array.to_list t.I.links in
      let no_clip =
        List.for_all
          (fun v ->
            List.for_all
              (fun w -> Aff.affectance_unclipped t p ~from_:w ~to_:v <= 1.)
              set)
          set
      in
      if no_clip then
        Alcotest.(check bool)
          "forms agree" (F.is_feasible t p set)
          (F.is_feasible_affectance t p set))
    [ 11; 12; 13; 14 ]

let test_feasibility_downward_closed () =
  let t = planar_instance ~n_links:8 15 in
  let p = Pw.uniform 1. in
  let all = Array.to_list t.I.links in
  if F.is_feasible t p all then
    check_true "subset feasible" (F.is_feasible t p (List.tl all))

let test_worst_sinr_and_max_affectance () =
  let t = two_link_instance ~cross:4. () in
  let p = Pw.uniform 1. in
  let set = Array.to_list t.I.links in
  check_float "worst sinr" 4. (F.worst_sinr t p set);
  check_float "max in-affectance" 0.25 (F.max_in_affectance t p set);
  check_float "empty set" infinity (F.worst_sinr t p [])

let test_noise_only_feasibility () =
  let t = two_link_instance ~noise:0.4 ~beta:2. ~cross:1e9 () in
  (* SINR = 1 / 0.4 = 2.5 >= 2 even with (negligible) cross interference. *)
  check_true "noise-limited feasible"
    (F.is_feasible t (Pw.uniform 1.) (Array.to_list t.I.links))

(* ----------------------------------------------------------- Separation *)

let test_separation_values () =
  let t = two_link_instance ~cross:16. () in
  let a = t.I.links.(0) and b = t.I.links.(1) in
  check_float "pair separation" 16. (Sep.separation t a b);
  check_true "4-separated set" (Sep.is_separated_set t ~eta:4. [ a; b ]);
  check_false "32-separated fails" (Sep.is_separated_set t ~eta:32. [ a; b ]);
  check_float "min separation" 16. (Sep.min_separation t [ a; b ]);
  check_float "singleton" infinity (Sep.min_separation t [ a ])

let test_separated_from_skips_self () =
  let t = two_link_instance ~cross:2. () in
  let a = t.I.links.(0) in
  check_true "self skipped" (Sep.is_separated_from t ~eta:100. a [ a ])

(* -------------------------------------------------------- Power control *)

let test_power_control_feasible_pair () =
  let t = two_link_instance ~beta:2. ~cross:4. () in
  let set = Array.to_list t.I.links in
  check_true "rho < 1" (PC.is_feasible t set);
  match PC.min_powers t set with
  | None -> Alcotest.fail "expected powers"
  | Some p ->
      check_int "two powers" 2 (Array.length p);
      Array.iter (fun x -> check_true "positive" (x > 0.)) p

let test_power_control_infeasible_pair () =
  (* Cross decay below link decay: product of normalized gains >= 1. *)
  let t = two_link_instance ~beta:2. ~cross:1. () in
  let set = Array.to_list t.I.links in
  check_false "rho >= 1" (PC.is_feasible t set);
  check_true "no powers" (PC.min_powers t set = None)

let test_power_control_helps () =
  (* A strongly asymmetric pair: infeasible under uniform power but
     feasible with power control. *)
  let sp =
    D.of_fn ~name:"asym" 4 (fun i j ->
        match (i, j) with
        | 0, 1 | 1, 0 -> 1.
        | 2, 3 | 3, 2 -> 100.
        | 0, 3 | 3, 0 -> 120.      (* strong link's sender near weak receiver *)
        | 2, 1 | 1, 2 -> 1000.
        | _ -> 1000.)
  in
  let t = I.make ~beta:1.5 ~zeta:3. sp [ (0, 1); (2, 3) ] in
  let set = Array.to_list t.I.links in
  check_false "uniform infeasible" (F.is_feasible t (Pw.uniform 1.) set);
  check_true "power control feasible" (PC.is_feasible t set);
  (match PC.min_powers t set with
  | Some p ->
      let custom = Pw.Custom p in
      check_true "returned powers work" (F.is_feasible t custom set)
  | None -> Alcotest.fail "expected powers")

let test_power_control_with_noise () =
  let t = two_link_instance ~noise:0.1 ~beta:2. ~cross:8. () in
  let set = Array.to_list t.I.links in
  check_true "feasible" (PC.is_feasible t set);
  match PC.min_powers t set with
  | Some p ->
      check_true "noise powers clear beta"
        (F.is_feasible t (Pw.Custom p) set)
  | None -> Alcotest.fail "expected powers"

let test_spectral_radius_matches () =
  let t = two_link_instance ~beta:1. ~cross:4. () in
  (* B = [[0, 1/4],[1/4, 0]] -> rho = 1/4. *)
  check_float ~eps:1e-6 "rho" 0.25 (PC.spectral_radius t (Array.to_list t.I.links))

(* ------------------------------------------------------------ Partition *)

let test_strengthen_outputs_q_feasible () =
  let t = planar_instance ~n_links:12 21 in
  let p = Pw.uniform 1. in
  let classes = Part.strengthen t p ~q:2. (Array.to_list t.I.links) in
  List.iter
    (fun c -> check_true "class is 2-feasible" (F.is_feasible_affectance ~k:2. t p c))
    classes;
  let total = List.fold_left (fun a c -> a + List.length c) 0 classes in
  check_int "partition covers all" 12 total

let test_separate_outputs_eta_separated () =
  let t = planar_instance ~n_links:12 22 in
  let classes = Part.separate t ~eta:2. (Array.to_list t.I.links) in
  List.iter
    (fun c -> check_true "class is 2-separated" (Sep.is_separated_set t ~eta:2. c))
    classes;
  let total = List.fold_left (fun a c -> a + List.length c) 0 classes in
  check_int "covers all" 12 total

let test_sparsify_composition () =
  let t = planar_instance ~n_links:10 23 in
  let p = Pw.uniform 1. in
  let feasible = Core.Capacity.Greedy.strongest_first t in
  let classes = Part.sparsify t p ~eta:t.I.zeta feasible in
  List.iter
    (fun c ->
      check_true "zeta-separated" (Sep.is_separated_set t ~eta:t.I.zeta c))
    classes;
  let total = List.fold_left (fun a c -> a + List.length c) 0 classes in
  check_int "covers the feasible set" (List.length feasible) total

let test_partition_largest () =
  check_int "largest" 3 (List.length (Part.largest [ [ 1 ]; [ 2; 3; 4 ]; [ 5; 6 ] ]));
  check_int "empty" 0 (List.length (Part.largest []))

(* --------------------------------------------------------------- QCheck *)

let prop_affectance_sinr_duality =
  qcheck ~count:60 "a_S(v) <= 1 iff SINR >= beta (no clipping)"
    QCheck.small_int
    (fun seed ->
      let t = planar_instance ~n_links:5 ~alpha:2.5 seed in
      let p = Pw.uniform 1. in
      let set = Array.to_list t.I.links in
      List.for_all
        (fun v ->
          let unclipped =
            List.fold_left
              (fun acc w -> acc +. Aff.affectance_unclipped t p ~from_:w ~to_:v)
              0. set
          in
          let clips =
            List.exists
              (fun w -> Aff.affectance_unclipped t p ~from_:w ~to_:v > 1.)
              set
          in
          clips
          || Bool.equal (unclipped <= 1. +. 1e-9)
               (F.sinr t p set v >= t.I.beta -. 1e-9))
        set)

let prop_feasibility_downward_closed =
  qcheck ~count:60 "feasibility downward closed" QCheck.small_int (fun seed ->
      let t = planar_instance ~n_links:7 seed in
      let p = Pw.uniform 1. in
      let g = rng (seed + 1000) in
      let all = Array.to_list t.I.links in
      let sub =
        List.filter (fun _ -> Core.Prelude.Rng.bool g) all
      in
      (not (F.is_feasible t p all)) || F.is_feasible t p sub)

let prop_power_control_at_least_uniform =
  qcheck ~count:60 "uniform-feasible implies power-control-feasible"
    QCheck.small_int
    (fun seed ->
      let t = planar_instance ~n_links:5 seed in
      let set = Array.to_list t.I.links in
      (not (F.is_feasible t (Pw.uniform 1.) set)) || PC.is_feasible t set)

let prop_strengthen_class_count =
  qcheck ~count:30 "strengthening class count within lemma bound"
    QCheck.small_int
    (fun seed ->
      (* Lemma B.1: a 1-feasible set splits into <= ceil(2q)^2 q-feasible
         classes.  Our first-fit should respect this bound on feasible
         inputs. *)
      let t = planar_instance ~n_links:10 seed in
      let p = Pw.uniform 1. in
      let feasible = Core.Capacity.Greedy.strongest_first t in
      let q = 2. in
      let classes = Part.strengthen t p ~q feasible in
      List.length classes <= int_of_float (Float.ceil (2. *. q)) * int_of_float (Float.ceil (2. *. q)))

let suite =
  [
    ( "sinr.link",
      [
        case "rejects loop" test_link_make_rejects_loop;
        case "decays" test_link_decays;
        case "ordering" test_link_ordering;
      ] );
    ( "sinr.power",
      [
        case "values" test_power_values;
        case "uniform validation" test_power_uniform_validation;
        case "monotone family" test_power_monotone_family;
        case "non-monotone detected" test_power_nonmonotone_detected;
      ] );
    ( "sinr.instance",
      [
        case "defaults" test_instance_defaults;
        case "validation" test_instance_validation;
        case "link lookup" test_instance_link_lookup;
        case "quasi/link distances" test_quasi_dist_and_link_dist;
        case "random planar" test_random_planar_structure;
        case "equi-decay thm3" test_equi_decay_accepts_thm3;
        case "equi-decay rejects" test_equi_decay_rejects_unequal;
        case "random links in space" test_random_links_in_space;
      ] );
    ( "sinr.affectance",
      [
        case "noise constant (N=0)" test_noise_constant_no_noise;
        case "noise constant (N>0)" test_noise_constant_with_noise;
        case "noise-infeasible link" test_noise_constant_infeasible_link;
        case "values" test_affectance_values;
        case "clipping" test_affectance_clipping;
        case "in/out sums" test_in_out_affectance_sums;
        prop_affectance_sinr_duality;
      ] );
    ( "sinr.feasibility",
      [
        case "sinr values" test_sinr_values;
        case "threshold" test_feasibility_threshold;
        case "affectance equivalence" test_feasibility_affectance_equivalence;
        case "downward closed" test_feasibility_downward_closed;
        case "worst sinr / max affectance" test_worst_sinr_and_max_affectance;
        case "noise-limited" test_noise_only_feasibility;
        prop_feasibility_downward_closed;
      ] );
    ( "sinr.separation",
      [
        case "values" test_separation_values;
        case "skips self" test_separated_from_skips_self;
      ] );
    ( "sinr.power_control",
      [
        case "feasible pair" test_power_control_feasible_pair;
        case "infeasible pair" test_power_control_infeasible_pair;
        case "control beats uniform" test_power_control_helps;
        case "with noise" test_power_control_with_noise;
        case "spectral radius" test_spectral_radius_matches;
        prop_power_control_at_least_uniform;
      ] );
    ( "sinr.partition",
      [
        case "strengthen q-feasible" test_strengthen_outputs_q_feasible;
        case "separate eta-separated" test_separate_outputs_eta_separated;
        case "sparsify composition" test_sparsify_composition;
        case "largest" test_partition_largest;
        prop_strengthen_class_count;
      ] );
  ]
