(* Tests for the "carries over" extension modules: Rayleigh fading,
   inductive independence, weighted capacity, connectivity, dynamic packet
   scheduling and jamming-resistant learning. *)

open Testutil
module I = Core.Sinr.Instance
module Pw = Core.Sinr.Power
module Ray = Core.Sinr.Rayleigh
module Ind = Core.Sinr.Inductive
module W = Core.Capacity.Weighted
module Conn = Core.Distrib.Connectivity
module Dyn = Core.Sched.Dynamic
module D = Core.Decay.Decay_space

(* ---------------------------------------------------------------- Rayleigh *)

let two_link_instance ?noise ?beta ~cross () =
  let sp =
    D.of_fn ~name:"two-links" 4 (fun i j ->
        match (i, j) with 0, 1 | 1, 0 | 2, 3 | 3, 2 -> 1. | _ -> cross)
  in
  I.make ?noise ?beta ~zeta:1. sp [ (0, 1); (2, 3) ]

let test_rayleigh_solo_no_noise () =
  let t = two_link_instance ~cross:4. () in
  let l = t.I.links.(0) in
  check_float ~eps:1e-9 "always succeeds alone" 1.
    (Ray.success_probability t (Pw.uniform 1.) ~interferers:[ l ] l)

let test_rayleigh_noise_only () =
  (* p = exp(-beta N f / P): beta=2, N=0.25, f=1, P=1 -> e^-0.5. *)
  let t = two_link_instance ~noise:0.25 ~beta:2. ~cross:1e9 () in
  let l = t.I.links.(0) in
  check_float ~eps:1e-6 "noise factor" (exp (-0.5))
    (Ray.success_probability t (Pw.uniform 1.) ~interferers:[ l ] l)

let test_rayleigh_interference_factor () =
  (* One interferer at relative strength I/S = 1/4, beta = 1:
     p = 1 / (1 + 1/4) = 0.8. *)
  let t = two_link_instance ~cross:4. () in
  let set = Array.to_list t.I.links in
  check_float ~eps:1e-9 "product factor" 0.8
    (Ray.success_probability t (Pw.uniform 1.) ~interferers:set t.I.links.(0))

let test_rayleigh_matches_monte_carlo () =
  let t = planar_instance ~n_links:5 3 in
  let set = Array.to_list t.I.links in
  let p = Pw.uniform 1. in
  List.iter
    (fun lv ->
      let closed = Ray.success_probability t p ~interferers:set lv in
      let mc = Ray.simulate_success_rate ~samples:20000 (rng 4) t p ~interferers:set lv in
      check_float ~eps:0.02 "closed form = MC" closed mc)
    [ List.hd set ]

let test_rayleigh_expected_successes () =
  let t = two_link_instance ~cross:4. () in
  let set = Array.to_list t.I.links in
  check_float ~eps:1e-9 "sum of probabilities" 1.6
    (Ray.expected_successes t (Pw.uniform 1.) set)

let test_rayleigh_threshold_limit () =
  (* Weak interference: fading success prob near 1 exactly when the
     threshold model also succeeds comfortably. *)
  let t = two_link_instance ~cross:1e6 () in
  let set = Array.to_list t.I.links in
  check_true "fading ~ threshold for strong links"
    (Ray.feasible_with_probability t (Pw.uniform 1.) ~p:0.99 set)

let test_rayleigh_probability_validation () =
  let t = two_link_instance ~cross:4. () in
  Alcotest.check_raises "p range"
    (Invalid_argument "Rayleigh.feasible_with_probability: p out of range")
    (fun () ->
      ignore
        (Ray.feasible_with_probability t (Pw.uniform 1.) ~p:1.5
           (Array.to_list t.I.links)))

(* ----------------------------------------------------------- Inductive *)

let test_inductive_nonnegative_and_bounded () =
  let t = planar_instance ~n_links:8 11 in
  let rho = Ind.estimate ~samples:5 (rng 12) t (Pw.uniform 1.) in
  check_true "rho >= 0" (rho >= 0.);
  (* Bidirectional affectance against a feasible set of later links is at
     most |S| * 2 trivially; sanity cap. *)
  check_true "rho sane" (rho < 32.)

let test_inductive_against_set_only_later () =
  let t = two_link_instance ~cross:4. () in
  let a = t.I.links.(0) and b = t.I.links.(1) in
  (* Equal decay: tie broken by id, so b counts for a but not vice versa. *)
  let p = Pw.uniform 1. in
  check_float ~eps:1e-9 "a vs {b}" 0.5 (Ind.against_set t p a [ b ]);
  check_float "b vs {a}" 0. (Ind.against_set t p b [ a ])

let test_inductive_grows_with_density () =
  let sparse = planar_instance ~n_links:8 ~side:80. 13 in
  let dense = planar_instance ~n_links:8 ~side:8. 13 in
  let p = Pw.uniform 1. in
  check_true "denser instances have larger rho"
    (Ind.estimate ~samples:8 (rng 14) dense p
    >= Ind.estimate ~samples:8 (rng 14) sparse p)

(* ------------------------------------------------------------- Weighted *)

let unit_weights t = Array.make (Array.length t.I.links) 1.

let test_weighted_exact_cardinality_case () =
  let t = planar_instance ~n_links:9 21 in
  let w = unit_weights t in
  check_int "unit weights = unweighted capacity"
    (List.length (Core.Capacity.Exact.capacity t))
    (List.length (W.exact t w))

let test_weighted_exact_dominates_greedy () =
  List.iter
    (fun seed ->
      let t = planar_instance ~n_links:9 seed in
      let g = rng (seed + 50) in
      let w =
        Array.init (Array.length t.I.links) (fun _ ->
            0.5 +. Core.Prelude.Rng.float g 10.)
      in
      check_true "exact >= greedy"
        (W.total w (W.exact t w) >= W.total w (W.greedy t w) -. 1e-9))
    [ 22; 23; 24 ]

let test_weighted_output_feasible () =
  let t = planar_instance ~n_links:9 25 in
  let g = rng 26 in
  let w =
    Array.init (Array.length t.I.links) (fun _ ->
        0.5 +. Core.Prelude.Rng.float g 5.)
  in
  check_true "exact feasible"
    (Core.Sinr.Feasibility.is_feasible t (Pw.uniform 1.) (W.exact t w));
  check_true "greedy feasible"
    (Core.Sinr.Feasibility.is_feasible t (Pw.uniform 1.) (W.greedy t w))

let test_weighted_prefers_heavy_link () =
  (* Two mutually exclusive links, one heavy: exact must take the heavy
     one. *)
  let t = two_link_instance ~beta:3. ~cross:1.5 () in
  (* At beta=3, cross 1.5: SINR = 1.5 < 3 together; solo fine. *)
  let w = [| 1.; 10. |] in
  let chosen = W.exact t w in
  check_int "picks one" 1 (List.length chosen);
  check_int "the heavy one" 1 (List.hd chosen).Core.Sinr.Link.id

let test_weighted_rejects_bad_weights () =
  let t = planar_instance ~n_links:3 27 in
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Weighted: weights must be positive") (fun () ->
      ignore (W.greedy t [| 1.; 0.; 1. |]))

let test_weighted_total () =
  let t = planar_instance ~n_links:3 28 in
  let w = [| 1.; 2.; 4. |] in
  check_float "total" 7. (W.total w (Array.to_list t.I.links))

(* --------------------------------------------------------- Connectivity *)

let test_connectivity_uniform () =
  let sp = Core.Decay.Spaces.uniform 6 in
  check_true "connected at adequate power"
    (Conn.is_connected sp ~power:2. ~beta:2. ~noise:1.);
  check_false "disconnected below threshold"
    (Conn.is_connected sp ~power:1.9 ~beta:2. ~noise:1.);
  match Conn.min_uniform_power sp ~beta:2. ~noise:1. with
  | Some p -> check_float ~eps:1e-9 "min power = beta*noise*f" 2. p
  | None -> Alcotest.fail "expected a power"

let test_connectivity_two_clusters () =
  let sp =
    D.of_matrix
      [|
        [| 0.; 1.; 100.; 100. |];
        [| 1.; 0.; 100.; 100. |];
        [| 100.; 100.; 0.; 1. |];
        [| 100.; 100.; 1.; 0. |];
      |]
  in
  let comps = Conn.components sp ~power:2. ~beta:1. ~noise:1. in
  check_int "two components" 2 (List.length comps);
  (match Conn.min_uniform_power sp ~beta:1. ~noise:1. with
  | Some p -> check_float ~eps:1e-9 "bridging power" 100. p
  | None -> Alcotest.fail "expected a power");
  check_true "connected at bridging power"
    (Conn.is_connected sp ~power:100. ~beta:1. ~noise:1.)

let test_connectivity_zero_noise () =
  let sp = Core.Decay.Spaces.uniform 4 in
  check_true "always connected without noise"
    (Conn.is_connected sp ~power:1e-9 ~beta:10. ~noise:0.);
  check_true "min power undefined without noise"
    (Conn.min_uniform_power sp ~beta:1. ~noise:0. = None)

let test_connectivity_asymmetric_edges () =
  (* Edge requires both directions: an asymmetric pair connects only at
     the worse direction's power. *)
  let sp = D.of_matrix [| [| 0.; 1. |]; [| 50.; 0. |] |] in
  check_false "one-way is not an edge"
    (Conn.is_connected sp ~power:2. ~beta:1. ~noise:1.);
  match Conn.min_uniform_power sp ~beta:1. ~noise:1. with
  | Some p -> check_float ~eps:1e-9 "worse direction" 50. p
  | None -> Alcotest.fail "expected a power"

let test_bidirectional_graph_normalized () =
  let sp = Core.Decay.Spaces.uniform 4 in
  let edges = Conn.bidirectional_graph sp ~power:2. ~beta:1. ~noise:1. in
  check_int "complete graph" 6 (List.length edges);
  check_true "u < v" (List.for_all (fun (u, v) -> u < v) edges)

(* ------------------------------------------------------------- Dynamic *)

let test_dynamic_stable_under_light_load () =
  let t = planar_instance ~n_links:6 ~side:60. 31 in
  let rates = Array.make 6 0.1 in
  let r =
    Dyn.run ~slots:1500 ~policy:Dyn.Longest_queue_first ~arrival_rates:rates
      (rng 32) t
  in
  check_true "stable" r.Dyn.stable;
  check_true "drains most arrivals"
    (float_of_int r.Dyn.delivered >= 0.9 *. float_of_int r.Dyn.arrived)

let test_dynamic_unstable_under_overload () =
  (* Conflicting links loaded at rate ~1 each cannot all be served. *)
  let g = Core.Graph.Graph.complete 3 in
  let sp, pairs = Core.Decay.Spaces.mis_construction g in
  let t = I.equi_decay_of_space sp pairs in
  let rates = Array.make 3 0.95 in
  let r =
    Dyn.run ~slots:1500 ~policy:Dyn.Longest_queue_first ~arrival_rates:rates
      (rng 33) t
  in
  check_false "unstable" r.Dyn.stable;
  check_true "backlog grows" (r.Dyn.final_backlog > 100)

let test_dynamic_lqf_beats_random_access () =
  let t = planar_instance ~n_links:8 ~side:12. 34 in
  let rates = Array.make 8 0.35 in
  let lqf =
    Dyn.run ~slots:1200 ~policy:Dyn.Longest_queue_first ~arrival_rates:rates
      (rng 35) t
  in
  let ra =
    Dyn.run ~slots:1200 ~policy:(Dyn.Random_access 0.3) ~arrival_rates:rates
      (rng 35) t
  in
  check_true "LQF backlog no worse" (lqf.Dyn.mean_backlog <= ra.Dyn.mean_backlog +. 1.)

let test_dynamic_validation () =
  let t = planar_instance ~n_links:3 36 in
  Alcotest.check_raises "rate range"
    (Invalid_argument "Dynamic.run: rate out of [0,1]") (fun () ->
      ignore
        (Dyn.run ~policy:Dyn.Longest_queue_first ~arrival_rates:[| 0.5; 2.; 0.1 |]
           (rng 37) t));
  Alcotest.check_raises "rates length"
    (Invalid_argument "Dynamic.run: arrival_rates too short") (fun () ->
      ignore
        (Dyn.run ~policy:Dyn.Longest_queue_first ~arrival_rates:[| 0.5 |]
           (rng 38) t))

let test_dynamic_accounting () =
  let t = planar_instance ~n_links:4 ~side:50. 39 in
  let rates = Array.make 4 0.2 in
  let r =
    Dyn.run ~slots:800 ~policy:Dyn.Longest_queue_first ~arrival_rates:rates
      (rng 40) t
  in
  check_int "conservation" r.Dyn.final_backlog (r.Dyn.arrived - r.Dyn.delivered)

(* -------------------------------------------------------------- Jamming *)

let test_jamming_degrades_gracefully () =
  let t = planar_instance ~n_links:4 ~side:60. 41 in
  let clean = Core.Distrib.Regret.run ~rounds:600 (rng 42) t in
  let jammed =
    Core.Distrib.Regret.run ~rounds:600 ~jam_prob:0.3 (rng 42) t
  in
  check_true "jamming reduces throughput"
    (jammed.Core.Distrib.Regret.avg_successes
    <= clean.Core.Distrib.Regret.avg_successes +. 0.1);
  check_true "but does not collapse it"
    (jammed.Core.Distrib.Regret.avg_successes
    >= 0.3 *. clean.Core.Distrib.Regret.avg_successes)

let test_jamming_validation () =
  let t = planar_instance ~n_links:2 43 in
  Alcotest.check_raises "jam prob range"
    (Invalid_argument "Regret.run: jam_prob out of [0,1]") (fun () ->
      ignore (Core.Distrib.Regret.run ~jam_prob:1.5 (rng 44) t))

(* --------------------------------------------------------------- QCheck *)

let prop_rayleigh_probability_range =
  qcheck ~count:40 "success probability in [0,1]" QCheck.small_int (fun seed ->
      let t = planar_instance ~n_links:6 seed in
      let set = Array.to_list t.I.links in
      List.for_all
        (fun lv ->
          let p = Ray.success_probability t (Pw.uniform 1.) ~interferers:set lv in
          p >= 0. && p <= 1.)
        set)

let prop_rayleigh_monotone_in_interferers =
  qcheck ~count:40 "more interferers, lower probability" QCheck.small_int
    (fun seed ->
      let t = planar_instance ~n_links:6 seed in
      let set = Array.to_list t.I.links in
      match set with
      | lv :: rest ->
          Ray.success_probability t (Pw.uniform 1.) ~interferers:rest lv
          >= Ray.success_probability t (Pw.uniform 1.) ~interferers:set lv -. 1e-12
      | [] -> true)

let prop_weighted_exact_at_least_heaviest_link =
  qcheck ~count:30 "exact >= heaviest singleton" QCheck.small_int (fun seed ->
      let t = planar_instance ~n_links:7 seed in
      let g = rng (seed + 1) in
      let w =
        Array.init (Array.length t.I.links) (fun _ ->
            0.5 +. Core.Prelude.Rng.float g 10.)
      in
      let best_single = Array.fold_left Float.max 0. w in
      W.total w (W.exact t w) >= best_single -. 1e-9)

let prop_min_power_is_minimal =
  qcheck ~count:30 "min connectivity power is tight" QCheck.small_int
    (fun seed ->
      let sp = random_space ~n:8 seed in
      match Conn.min_uniform_power sp ~beta:1.5 ~noise:0.5 with
      | None -> false
      | Some p ->
          Conn.is_connected sp ~power:p ~beta:1.5 ~noise:0.5
          && not (Conn.is_connected sp ~power:(p *. 0.999) ~beta:1.5 ~noise:0.5))

let suite =
  [
    ( "ext.rayleigh",
      [
        case "solo no noise" test_rayleigh_solo_no_noise;
        case "noise factor" test_rayleigh_noise_only;
        case "interference factor" test_rayleigh_interference_factor;
        case "matches monte carlo" test_rayleigh_matches_monte_carlo;
        case "expected successes" test_rayleigh_expected_successes;
        case "threshold limit" test_rayleigh_threshold_limit;
        case "p validation" test_rayleigh_probability_validation;
        prop_rayleigh_probability_range;
        prop_rayleigh_monotone_in_interferers;
      ] );
    ( "ext.inductive",
      [
        case "bounded" test_inductive_nonnegative_and_bounded;
        case "only later links" test_inductive_against_set_only_later;
        case "density monotone" test_inductive_grows_with_density;
      ] );
    ( "ext.weighted",
      [
        case "unit weights" test_weighted_exact_cardinality_case;
        case "exact dominates greedy" test_weighted_exact_dominates_greedy;
        case "outputs feasible" test_weighted_output_feasible;
        case "prefers heavy" test_weighted_prefers_heavy_link;
        case "weight validation" test_weighted_rejects_bad_weights;
        case "total" test_weighted_total;
        prop_weighted_exact_at_least_heaviest_link;
      ] );
    ( "ext.connectivity",
      [
        case "uniform space" test_connectivity_uniform;
        case "two clusters" test_connectivity_two_clusters;
        case "zero noise" test_connectivity_zero_noise;
        case "asymmetric edges" test_connectivity_asymmetric_edges;
        case "bidirectional graph" test_bidirectional_graph_normalized;
        prop_min_power_is_minimal;
      ] );
    ( "ext.dynamic",
      [
        case "stable under light load" test_dynamic_stable_under_light_load;
        case "unstable under overload" test_dynamic_unstable_under_overload;
        case "LQF vs random access" test_dynamic_lqf_beats_random_access;
        case "validation" test_dynamic_validation;
        case "packet conservation" test_dynamic_accounting;
      ] );
    ( "ext.jamming",
      [
        case "graceful degradation" test_jamming_degrades_gracefully;
        case "validation" test_jamming_validation;
      ] );
  ]
