open Testutil
module P = Core.Geom.Point
module S = Core.Geom.Segment
module M = Core.Geom.Metric

(* ---------------------------------------------------------------- Point *)

let test_add_sub () =
  let a = P.make 1. 2. and b = P.make 3. 5. in
  check_true "add" (P.equal (P.add a b) (P.make 4. 7.));
  check_true "sub" (P.equal (P.sub b a) (P.make 2. 3.))

let test_scale () =
  check_true "scale" (P.equal (P.scale 2. (P.make 1. (-2.))) (P.make 2. (-4.)))

let test_dot_cross () =
  let a = P.make 1. 0. and b = P.make 0. 1. in
  check_float "orthogonal dot" 0. (P.dot a b);
  check_float "cross" 1. (P.cross a b);
  check_float "cross antisymmetric" (-1.) (P.cross b a)

let test_norm_dist () =
  check_float "norm 3-4-5" 5. (P.norm (P.make 3. 4.));
  check_float "dist" 5. (P.dist (P.make 1. 1.) (P.make 4. 5.));
  check_float "dist2" 25. (P.dist2 (P.make 1. 1.) (P.make 4. 5.))

let test_angle () =
  check_float ~eps:1e-9 "right angle" (Float.pi /. 2.)
    (P.angle_between (P.make 1. 0.) (P.make 0. 1.));
  check_float ~eps:1e-9 "zero angle" 0.
    (P.angle_between (P.make 2. 0.) (P.make 5. 0.));
  check_float ~eps:1e-9 "opposite" Float.pi
    (P.angle_between (P.make 1. 0.) (P.make (-1.) 0.))

let test_angle_zero_vector () =
  Alcotest.check_raises "zero vector"
    (Invalid_argument "Point.angle_between: zero vector") (fun () ->
      ignore (P.angle_between P.origin (P.make 1. 0.)))

let test_rotate () =
  let r = P.rotate (Float.pi /. 2.) (P.make 1. 0.) in
  check_true "rotate 90" (P.equal ~eps:1e-9 r (P.make 0. 1.))

let test_lerp () =
  let m = P.lerp (P.make 0. 0.) (P.make 2. 4.) 0.5 in
  check_true "midpoint" (P.equal m (P.make 1. 2.))

(* -------------------------------------------------------------- Segment *)

let test_intersects_crossing () =
  let s1 = S.make (P.make 0. 0.) (P.make 2. 2.) in
  let s2 = S.make (P.make 0. 2.) (P.make 2. 0.) in
  check_true "X crossing" (S.intersects s1 s2)

let test_intersects_disjoint () =
  let s1 = S.make (P.make 0. 0.) (P.make 1. 0.) in
  let s2 = S.make (P.make 0. 1.) (P.make 1. 1.) in
  check_false "parallel disjoint" (S.intersects s1 s2)

let test_intersects_touching () =
  let s1 = S.make (P.make 0. 0.) (P.make 1. 1.) in
  let s2 = S.make (P.make 1. 1.) (P.make 2. 0.) in
  check_true "shared endpoint" (S.intersects s1 s2)

let test_intersects_collinear_overlap () =
  let s1 = S.make (P.make 0. 0.) (P.make 2. 0.) in
  let s2 = S.make (P.make 1. 0.) (P.make 3. 0.) in
  check_true "collinear overlap" (S.intersects s1 s2)

let test_intersects_collinear_disjoint () =
  let s1 = S.make (P.make 0. 0.) (P.make 1. 0.) in
  let s2 = S.make (P.make 2. 0.) (P.make 3. 0.) in
  check_false "collinear disjoint" (S.intersects s1 s2)

let test_intersection_point () =
  let s1 = S.make (P.make 0. 0.) (P.make 2. 2.) in
  let s2 = S.make (P.make 0. 2.) (P.make 2. 0.) in
  match S.intersection s1 s2 with
  | Some p -> check_true "at (1,1)" (P.equal ~eps:1e-9 p (P.make 1. 1.))
  | None -> Alcotest.fail "expected intersection"

let test_intersection_none () =
  let s1 = S.make (P.make 0. 0.) (P.make 1. 0.) in
  let s2 = S.make (P.make 0. 1.) (P.make 1. 1.) in
  check_true "no intersection" (S.intersection s1 s2 = None)

let test_length_midpoint () =
  let s = S.make (P.make 0. 0.) (P.make 6. 8.) in
  check_float "length" 10. (S.length s);
  check_true "midpoint" (P.equal (S.midpoint s) (P.make 3. 4.))

let test_dist_point () =
  let s = S.make (P.make 0. 0.) (P.make 10. 0.) in
  check_float "above middle" 2. (S.dist_point s (P.make 5. 2.));
  check_float "beyond end" 5. (S.dist_point s (P.make 13. 4.))

let test_crossings () =
  let path = S.make (P.make 0. 0.) (P.make 10. 0.) in
  let walls =
    [
      S.make (P.make 2. (-1.)) (P.make 2. 1.);
      S.make (P.make 5. (-1.)) (P.make 5. 1.);
      S.make (P.make 20. (-1.)) (P.make 20. 1.);
    ]
  in
  check_int "two of three" 2 (S.crossings path walls)

(* --------------------------------------------------------------- Metric *)

let test_of_points_metric () =
  let m = M.of_points [ P.make 0. 0.; P.make 1. 0.; P.make 0. 1. ] in
  check_true "is metric" (M.is_metric m);
  check_float ~eps:1e-9 "hypotenuse" (sqrt 2.) m.M.d.(1).(2)

let test_uniform_metric () =
  let m = M.uniform 5 in
  check_true "is metric" (M.is_metric m);
  check_float "unit distances" 1. m.M.d.(0).(4)

let test_line_metric () =
  let m = M.line [ 0.; 3.; 7. ] in
  check_float "line distance" 7. m.M.d.(0).(2);
  check_true "is metric" (M.is_metric m)

let test_of_matrix_validation () =
  Alcotest.check_raises "nonzero diagonal"
    (Invalid_argument "Metric.of_matrix: nonzero diagonal") (fun () ->
      ignore (M.of_matrix [| [| 1. |] |]))

let test_of_matrix_negative () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Metric.of_matrix: negative distance") (fun () ->
      ignore (M.of_matrix [| [| 0.; -1. |]; [| 1.; 0. |] |]))

let test_triangle_violation_detected () =
  let m = M.of_matrix [| [| 0.; 10.; 1. |]; [| 10.; 0.; 1. |]; [| 1.; 1.; 0. |] |] in
  check_false "triangle fails" (M.check_triangle m);
  check_true "symmetric" (M.check_symmetry m)

let test_shortest_paths () =
  let m = M.of_matrix [| [| 0.; 10.; 1. |]; [| 10.; 0.; 1. |]; [| 1.; 1.; 0. |] |] in
  let c = M.shortest_paths m in
  check_float "shortcut via 2" 2. c.M.d.(0).(1);
  check_true "closure is metric" (M.check_triangle c)

let test_scale_metric () =
  let m = M.scale 3. (M.uniform 3) in
  check_float "scaled" 3. m.M.d.(0).(1)

let test_doubling_constant_line () =
  (* A geometric line has small doubling constant. *)
  let m = M.line [ 1.; 2.; 4.; 8.; 16.; 32. ] in
  check_true "line doubles with few balls" (M.doubling_constant m <= 4)

let test_doubling_constant_uniform () =
  (* Uniform metric: a ball of radius 1+eps holds all points; half-radius
     balls are singletons. *)
  let m = M.uniform 8 in
  check_int "uniform needs n balls" 8 (M.doubling_constant m)

(* --------------------------------------------------------------- QCheck *)

let prop_euclidean_triangle =
  qcheck "euclidean point sets satisfy triangle inequality" QCheck.small_int
    (fun seed ->
      let g = rng seed in
      let pts =
        List.init 8 (fun _ ->
            P.make (Core.Prelude.Rng.float g 10.) (Core.Prelude.Rng.float g 10.))
      in
      M.check_triangle (M.of_points pts))

let prop_rotation_preserves_norm =
  qcheck "rotation preserves norm" QCheck.(pair small_int (float_bound_exclusive 6.28))
    (fun (seed, theta) ->
      let g = rng seed in
      let v = P.make (Core.Prelude.Rng.float g 5.) (Core.Prelude.Rng.float g 5.) in
      Float.abs (P.norm (P.rotate theta v) -. P.norm v) < 1e-9)

let prop_floyd_warshall_dominated =
  qcheck "metric closure never exceeds input" QCheck.small_int (fun seed ->
      let sp = random_space ~n:6 seed in
      let m = M.of_matrix (Core.Decay.Decay_space.matrix sp) in
      let c = M.shortest_paths m in
      let ok = ref true in
      for i = 0 to 5 do
        for j = 0 to 5 do
          if c.M.d.(i).(j) > m.M.d.(i).(j) +. 1e-9 then ok := false
        done
      done;
      !ok)

let suite =
  [
    ( "geom.point",
      [
        case "add/sub" test_add_sub;
        case "scale" test_scale;
        case "dot/cross" test_dot_cross;
        case "norm/dist" test_norm_dist;
        case "angles" test_angle;
        case "angle zero vector" test_angle_zero_vector;
        case "rotate" test_rotate;
        case "lerp" test_lerp;
        prop_rotation_preserves_norm;
      ] );
    ( "geom.segment",
      [
        case "crossing" test_intersects_crossing;
        case "disjoint" test_intersects_disjoint;
        case "touching" test_intersects_touching;
        case "collinear overlap" test_intersects_collinear_overlap;
        case "collinear disjoint" test_intersects_collinear_disjoint;
        case "intersection point" test_intersection_point;
        case "no intersection point" test_intersection_none;
        case "length/midpoint" test_length_midpoint;
        case "point distance" test_dist_point;
        case "crossings count" test_crossings;
      ] );
    ( "geom.metric",
      [
        case "euclidean" test_of_points_metric;
        case "uniform" test_uniform_metric;
        case "line" test_line_metric;
        case "diagonal validation" test_of_matrix_validation;
        case "negative validation" test_of_matrix_negative;
        case "triangle violation" test_triangle_violation_detected;
        case "shortest paths" test_shortest_paths;
        case "scale" test_scale_metric;
        case "doubling line" test_doubling_constant_line;
        case "doubling uniform" test_doubling_constant_uniform;
        prop_euclidean_triangle;
        prop_floyd_warshall_dominated;
      ] );
  ]
