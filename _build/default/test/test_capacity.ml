open Testutil
module I = Core.Sinr.Instance
module F = Core.Sinr.Feasibility
module Pw = Core.Sinr.Power
module Alg1 = Core.Capacity.Alg1
module Greedy = Core.Capacity.Greedy
module Exact = Core.Capacity.Exact
module Amic = Core.Capacity.Amicability

(* ----------------------------------------------------------- Algorithm 1 *)

let test_alg1_returns_feasible () =
  List.iter
    (fun seed ->
      let t = planar_instance ~n_links:15 seed in
      let s = Alg1.run t in
      check_true "feasible output" (F.is_feasible t (Pw.uniform 1.) s))
    [ 1; 2; 3; 4; 5 ]

let test_alg1_nonempty_on_nonempty () =
  let t = planar_instance ~n_links:10 7 in
  check_true "selects something" (List.length (Alg1.run t) >= 1)

let test_alg1_single_link () =
  let t = planar_instance ~n_links:1 8 in
  check_int "takes the only link" 1 (List.length (Alg1.run t))

let test_alg1_separated_output () =
  let t = planar_instance ~n_links:15 9 in
  let s = Alg1.run t in
  check_true "zeta/2-separated"
    (Core.Sinr.Separation.is_separated_set t ~eta:(t.I.zeta /. 2.) s)

let test_alg1_trace_verdicts () =
  let t = planar_instance ~n_links:12 10 in
  let s, verdicts = Alg1.run_with_trace t in
  let accepted =
    Array.to_list verdicts |> List.filter (fun v -> v = `Accepted) |> List.length
  in
  check_true "accepted >= |S|" (accepted >= List.length s)

(* --------------------------------------------------------------- Greedy *)

let test_affectance_greedy_feasible () =
  List.iter
    (fun seed ->
      let t = planar_instance ~n_links:15 seed in
      let s = Greedy.affectance_greedy t in
      check_true "feasible" (F.is_feasible t (Pw.uniform 1.) s))
    [ 11; 12; 13 ]

let test_strongest_first_feasible_maximal () =
  let t = planar_instance ~n_links:12 14 in
  let p = Pw.uniform 1. in
  let s = Greedy.strongest_first t in
  check_true "feasible" (F.is_feasible t p s);
  (* Maximality: no rejected link can be added back. *)
  let chosen = ids s in
  Array.iter
    (fun l ->
      if not (List.mem l.Core.Sinr.Link.id chosen) then
        check_false "maximal" (F.is_feasible t p (l :: s)))
    t.I.links

let test_random_order_feasible () =
  let t = planar_instance ~n_links:12 15 in
  let s = Greedy.random_order (rng 5) t in
  check_true "feasible" (F.is_feasible t (Pw.uniform 1.) s)

(* ---------------------------------------------------------------- Exact *)

let test_exact_beats_heuristics () =
  List.iter
    (fun seed ->
      let t = planar_instance ~n_links:10 seed in
      let opt = List.length (Exact.capacity t) in
      check_true "was exact" (Exact.was_exact ());
      check_true "opt >= alg1" (opt >= List.length (Alg1.run t));
      check_true "opt >= greedy" (opt >= List.length (Greedy.strongest_first t)))
    [ 21; 22; 23 ]

let test_exact_output_feasible () =
  let t = planar_instance ~n_links:10 24 in
  check_true "feasible" (F.is_feasible t (Pw.uniform 1.) (Exact.capacity t))

let test_exact_brute_force_small () =
  (* Cross-check against full enumeration on 2^8 subsets. *)
  let t = planar_instance ~n_links:8 ~side:6. 25 in
  let p = Pw.uniform 1. in
  let links = Array.to_list t.I.links in
  let arr = Array.of_list links in
  let best = ref 0 in
  for mask = 0 to 255 do
    let sub =
      List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list arr)
    in
    if F.is_feasible t p sub && List.length sub > !best then
      best := List.length sub
  done;
  check_int "matches brute force" !best (List.length (Exact.capacity t))

let test_exact_limit () =
  let t = planar_instance ~n_links:12 26 in
  Alcotest.check_raises "limit"
    (Invalid_argument "Exact.capacity: instance exceeds size limit") (fun () ->
      ignore (Exact.capacity ~limit:10 t))

let test_exact_power_control_thm3 () =
  (* Theorem 3: feasible sets (even under power control) = independent
     sets.  The exact power-control capacity must equal alpha(G). *)
  let g = Core.Graph.Graph.cycle 7 in
  let sp, pairs = Core.Decay.Spaces.mis_construction g in
  let t = I.equi_decay_of_space sp pairs in
  let cap = Exact.capacity_power_control t in
  check_int "capacity = alpha(C7) = 3" 3 (List.length cap);
  (* And uniform power achieves the same. *)
  let cap_u = Exact.capacity t in
  check_int "uniform capacity = 3" 3 (List.length cap_u)

let test_exact_power_control_thm3_random () =
  List.iter
    (fun seed ->
      let g = Core.Graph.Graph.random (rng seed) 8 0.4 in
      let alpha = Core.Graph.Mis.independence_number g in
      let sp, pairs = Core.Decay.Spaces.mis_construction g in
      let t = I.equi_decay_of_space sp pairs in
      check_int "pc capacity = alpha" alpha
        (List.length (Exact.capacity_power_control t));
      check_int "uniform capacity = alpha" alpha
        (List.length (Exact.capacity t)))
    [ 31; 32; 33 ]

let test_exact_power_control_thm6 () =
  List.iter
    (fun seed ->
      let g = Core.Graph.Graph.random (rng seed) 6 0.5 in
      let alpha = Core.Graph.Mis.independence_number g in
      let sp, pairs = Core.Decay.Spaces.two_line g ~alpha':2. () in
      let t = I.equi_decay_of_space ~zeta:30. sp pairs in
      check_int "thm6 pc capacity = alpha" alpha
        (List.length (Exact.capacity_power_control t));
      check_int "thm6 uniform capacity = alpha" alpha
        (List.length (Exact.capacity t)))
    [ 41; 42 ]

(* ----------------------------------------------------------- Amicability *)

let test_amicability_report () =
  let t = planar_instance ~n_links:14 51 in
  let feasible = Greedy.strongest_first t in
  let r = Amic.extract t ~feasible in
  check_true "subset nonempty" (List.length r.Amic.subset >= 1);
  check_true "subset of feasible"
    (List.for_all
       (fun l -> List.exists (fun m -> m.Core.Sinr.Link.id = l.Core.Sinr.Link.id) feasible)
       r.Amic.subset);
  check_true "shrinkage >= 1" (r.Amic.shrinkage >= 1.);
  check_true "out-affectance bounded"
    (r.Amic.max_out_affectance < 50.)

let test_amicability_empty () =
  let t = planar_instance ~n_links:5 52 in
  let r = Amic.extract t ~feasible:[] in
  check_int "empty subset" 0 (List.length r.Amic.subset);
  check_float "unit shrinkage" 1. r.Amic.shrinkage

let test_amicability_subset_separated () =
  let t = planar_instance ~n_links:12 53 in
  let feasible = Greedy.strongest_first t in
  let r = Amic.extract t ~feasible in
  check_true "S' is zeta-separated"
    (Core.Sinr.Separation.is_separated_set t ~eta:t.I.zeta r.Amic.subset)

(* --------------------------------------------------------- Alg1 ablation *)

let test_run_configured_defaults_match_run () =
  let t = planar_instance ~n_links:12 61 in
  Alcotest.(check (list int)) "defaults reproduce the paper variant"
    (ids (Alg1.run t))
    (ids (Alg1.run_configured t))

let test_run_configured_disabling_separation_admits_more () =
  let t = planar_instance ~n_links:14 ~side:10. 62 in
  check_true "no separation admits at least as many"
    (List.length (Alg1.run_configured ~eta:0. t)
    >= List.length (Alg1.run_configured t))

let test_run_configured_neither_test_admits_all () =
  let t = planar_instance ~n_links:9 63 in
  check_int "everything admitted" 9
    (List.length
       (Alg1.run_configured ~eta:0. ~headroom:infinity ~final_filter:false t))

let test_run_configured_tight_separation_separated () =
  let t = planar_instance ~n_links:12 64 in
  let s = Alg1.run_configured ~eta:t.I.zeta t in
  check_true "output eta-separated"
    (Core.Sinr.Separation.is_separated_set t ~eta:t.I.zeta s)

(* --------------------------------------------------------------- QCheck *)

let prop_alg1_feasible =
  qcheck ~count:40 "alg1 output always feasible" QCheck.small_int (fun seed ->
      let t = planar_instance ~n_links:10 ~alpha:2.8 seed in
      F.is_feasible t (Pw.uniform 1.) (Alg1.run t))

let prop_exact_dominates =
  qcheck ~count:25 "exact >= every heuristic" QCheck.small_int (fun seed ->
      let t = planar_instance ~n_links:9 seed in
      let opt = List.length (Exact.capacity t) in
      opt >= List.length (Alg1.run t)
      && opt >= List.length (Greedy.affectance_greedy t)
      && opt >= List.length (Greedy.strongest_first t))

let prop_alg1_ratio_bounded_on_plane =
  qcheck ~count:15 "alg1 within factor 6 of optimum on small planar"
    QCheck.small_int
    (fun seed ->
      (* Not a theorem (the guarantee is O(alpha^4)), but on these tiny
         instances the measured gap stays small; a regression canary. *)
      let t = planar_instance ~n_links:10 seed in
      let opt = List.length (Exact.capacity t) in
      let alg = max 1 (List.length (Alg1.run t)) in
      float_of_int opt /. float_of_int alg <= 6.)

let suite =
  [
    ( "capacity.alg1",
      [
        case "feasible" test_alg1_returns_feasible;
        case "nonempty" test_alg1_nonempty_on_nonempty;
        case "single link" test_alg1_single_link;
        case "separated output" test_alg1_separated_output;
        case "trace verdicts" test_alg1_trace_verdicts;
        case "configured defaults" test_run_configured_defaults_match_run;
        case "ablation: no separation" test_run_configured_disabling_separation_admits_more;
        case "ablation: neither test" test_run_configured_neither_test_admits_all;
        case "ablation: tight separation" test_run_configured_tight_separation_separated;
        prop_alg1_feasible;
      ] );
    ( "capacity.greedy",
      [
        case "affectance greedy feasible" test_affectance_greedy_feasible;
        case "strongest-first feasible+maximal" test_strongest_first_feasible_maximal;
        case "random order feasible" test_random_order_feasible;
      ] );
    ( "capacity.exact",
      [
        case "dominates heuristics" test_exact_beats_heuristics;
        case "output feasible" test_exact_output_feasible;
        case "matches brute force" test_exact_brute_force_small;
        case "size limit" test_exact_limit;
        case "thm3 C7 correspondence" test_exact_power_control_thm3;
        case "thm3 random graphs" test_exact_power_control_thm3_random;
        case "thm6 random graphs" test_exact_power_control_thm6;
        prop_exact_dominates;
        prop_alg1_ratio_bounded_on_plane;
      ] );
    ( "capacity.amicability",
      [
        case "report" test_amicability_report;
        case "empty input" test_amicability_empty;
        case "subset separated" test_amicability_subset_separated;
      ] );
  ]
