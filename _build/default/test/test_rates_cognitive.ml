(* Tests for flexible-data-rate scheduling, cognitive-radio admission, the
   extra space generators, and a degenerate-input battery across every
   algorithm entry point. *)

open Testutil
module D = Core.Decay.Decay_space
module I = Core.Sinr.Instance
module Pw = Core.Sinr.Power
module R = Core.Sched.Rates
module Cog = Core.Capacity.Cognitive
module Sp = Core.Decay.Spaces

(* ----------------------------------------------------------------- Rates *)

let test_rate_values () =
  let sp =
    D.of_fn ~name:"pair" 4 (fun i j ->
        match (i, j) with 0, 1 | 1, 0 | 2, 3 | 3, 2 -> 1. | _ -> 1. /. 0.25)
  in
  (* Cross decay 4 => SINR = 4 when both transmit... wait: f = 4. *)
  ignore sp;
  let sp =
    D.of_fn ~name:"pair" 4 (fun i j ->
        match (i, j) with 0, 1 | 1, 0 | 2, 3 | 3, 2 -> 1. | _ -> 4.)
  in
  let t = I.make ~zeta:1. sp [ (0, 1); (2, 3) ] in
  let set = Array.to_list t.I.links in
  (* SINR = 4 -> rate log2 5. *)
  check_float ~eps:1e-9 "rate log2(1+4)"
    (Core.Prelude.Numerics.log2 5.)
    (R.rate t (Pw.uniform 1.) set (List.hd set));
  (* Solo: capped. *)
  check_float "solo cap" 30. (R.rate t (Pw.uniform 1.) [ List.hd set ] (List.hd set))

let test_rates_schedule_completes () =
  let t = planar_instance ~n_links:8 1 in
  let demands = Array.make 8 5. in
  let r = R.schedule ~demands t in
  check_true "completed" r.R.completed;
  check_true "verifies" (R.verify t ~demands r);
  check_true "residuals zero"
    (Array.for_all (fun x -> x <= 1e-9) r.R.residual)

let test_rates_higher_demand_more_slots () =
  (* Use a dense instance so per-slot rates are interference-limited and
     demand actually shows up in the slot count. *)
  let t = planar_instance ~n_links:8 ~side:6. 2 in
  let low = R.schedule ~demands:(Array.make 8 2.) t in
  let high = R.schedule ~demands:(Array.make 8 40.) t in
  check_true "both complete" (low.R.completed && high.R.completed);
  check_true "demand scales slots" (high.R.slots > low.R.slots)

let test_rates_unequal_demands () =
  let t = planar_instance ~n_links:6 3 in
  let demands = Array.init 6 (fun i -> 1. +. (3. *. float_of_int i)) in
  let r = R.schedule ~demands t in
  check_true "completed" r.R.completed;
  check_true "verifies" (R.verify t ~demands r)

let test_rates_validation () =
  let t = planar_instance ~n_links:4 4 in
  Alcotest.check_raises "short demands"
    (Invalid_argument "Rates.schedule: demands too short") (fun () ->
      ignore (R.schedule ~demands:[| 1. |] t));
  Alcotest.check_raises "nonpositive demand"
    (Invalid_argument "Rates.schedule: demands must be positive") (fun () ->
      ignore (R.schedule ~demands:[| 1.; 0.; 1.; 1. |] t))

let test_rates_budget () =
  let t = planar_instance ~n_links:4 5 in
  let r = R.schedule ~max_slots:1 ~demands:(Array.make 4 100.) t in
  check_false "not completed in one slot" r.R.completed;
  check_int "one slot" 1 r.R.slots;
  check_false "verify rejects incomplete" (R.verify t ~demands:(Array.make 4 100.) r)

(* -------------------------------------------------------------- Cognitive *)

let split_instance seed =
  let t = planar_instance ~n_links:12 seed in
  let all = Array.to_list t.I.links in
  let rec take k = function
    | l :: rest when k > 0 ->
        let a, b = take (k - 1) rest in
        (l :: a, b)
    | rest -> ([], rest)
  in
  let primaries_all, secondaries = take 3 all in
  (* Keep only a feasible primary subset. *)
  let primaries =
    List.filteri
      (fun i _ -> i < 3)
      (Core.Capacity.Greedy.strongest_first (I.with_links t (Array.of_list primaries_all)))
  in
  (t, primaries, secondaries)

let test_cognitive_greedy_safe () =
  let t, primaries, secondaries = split_instance 11 in
  let admitted = Cog.greedy t ~primaries ~secondaries in
  check_true "safe" (Cog.admission_is_safe t ~primaries ~admitted)

let test_cognitive_exact_dominates () =
  let t, primaries, secondaries = split_instance 12 in
  let g = List.length (Cog.greedy t ~primaries ~secondaries) in
  let e = List.length (Cog.exact t ~primaries ~secondaries) in
  check_true "exact >= greedy" (e >= g)

let test_cognitive_exact_safe () =
  let t, primaries, secondaries = split_instance 13 in
  let admitted = Cog.exact t ~primaries ~secondaries in
  check_true "safe" (Cog.admission_is_safe t ~primaries ~admitted)

let test_cognitive_protects_primaries () =
  (* A secondary that would kill a primary must never be admitted. *)
  let sp =
    D.of_fn ~name:"protect" 4 (fun i j ->
        match (i, j) with
        | 0, 1 | 1, 0 -> 1.       (* primary link *)
        | 2, 3 | 3, 2 -> 1.       (* secondary link *)
        | 2, 1 | 1, 2 -> 0.5      (* secondary sender blasts primary rx *)
        | _ -> 100.)
  in
  let t = I.make ~beta:1.5 ~zeta:3. sp [ (0, 1); (2, 3) ] in
  let primaries = [ t.I.links.(0) ] and secondaries = [ t.I.links.(1) ] in
  check_int "greedy admits nothing" 0
    (List.length (Cog.greedy t ~primaries ~secondaries));
  check_int "exact admits nothing" 0
    (List.length (Cog.exact t ~primaries ~secondaries))

let test_cognitive_rejects_infeasible_primaries () =
  let g = Core.Graph.Graph.complete 2 in
  let sp, pairs = Sp.mis_construction g in
  let t = I.equi_decay_of_space sp pairs in
  let all = Array.to_list t.I.links in
  Alcotest.check_raises "primaries infeasible"
    (Invalid_argument "Cognitive: primaries are not feasible by themselves")
    (fun () -> ignore (Cog.greedy t ~primaries:all ~secondaries:[]))

let prop_cognitive_never_hurts_primaries =
  qcheck ~count:25 "admission always keeps primaries feasible" QCheck.small_int
    (fun seed ->
      let t, primaries, secondaries = split_instance seed in
      let admitted = Cog.greedy t ~primaries ~secondaries in
      Core.Sinr.Feasibility.is_feasible t (Pw.uniform 1.) (primaries @ admitted))

(* ------------------------------------------------------------- Zoo extras *)

let test_line_points () =
  let pts = Sp.line_points ~n:5 ~spacing:2. in
  check_int "count" 5 (List.length pts);
  let d = D.of_points ~alpha:1. pts in
  check_float "end to end" 8. (D.decay d 0 4)

let test_clustered_points () =
  let pts = Sp.clustered_points (rng 31) ~clusters:3 ~per_cluster:4 ~side:100. ~spread:0.5 in
  check_int "count" 12 (List.length pts);
  (* Cluster mates are much closer than cluster strangers (statistically). *)
  let arr = Array.of_list pts in
  let intra = Core.Geom.Point.dist arr.(0) arr.(1) in
  check_true "intra-cluster small" (intra < 5.)

let test_exponential_line () =
  let d = Sp.exponential_line ~n:6 in
  check_float "2^1 - 2^0" 1. (D.decay d 0 1);
  check_float "2^2 - 2^0" 3. (D.decay d 0 2);
  check_true "metric (zeta 1)" (Core.Decay.Metricity.zeta d <= 1. +. 1e-9);
  (* Doubling chain: quasi-doubling stays small despite geometric spread. *)
  check_true "small doubling"
    (Core.Decay.Dimension.quasi_doubling ~zeta:1. d <= 2.)

let test_exponential_line_validation () =
  Alcotest.check_raises "n >= 2"
    (Invalid_argument "Spaces.exponential_line: need n >= 2") (fun () ->
      ignore (Sp.exponential_line ~n:1))

(* --------------------------------------------------- Degenerate inputs *)

let empty_instance () =
  let t = planar_instance ~n_links:2 41 in
  I.with_links t [||]

let test_degenerate_capacity_algorithms () =
  let t0 = empty_instance () in
  check_int "alg1 empty" 0 (List.length (Core.Capacity.Alg1.run t0));
  check_int "greedy empty" 0 (List.length (Core.Capacity.Greedy.affectance_greedy t0));
  check_int "strongest empty" 0 (List.length (Core.Capacity.Greedy.strongest_first t0));
  check_int "exact empty" 0 (List.length (Core.Capacity.Exact.capacity t0));
  check_int "weighted empty" 0 (List.length (Core.Capacity.Weighted.exact t0 [||]))

let test_degenerate_schedulers () =
  let t0 = empty_instance () in
  check_int "first-fit empty" 0
    (Core.Sched.Scheduler.length (Core.Sched.Scheduler.first_fit t0));
  check_int "via-capacity empty" 0
    (Core.Sched.Scheduler.length (Core.Sched.Scheduler.via_capacity t0));
  let r = Core.Sched.Dynamic.run ~slots:10 ~policy:Core.Sched.Dynamic.Longest_queue_first
      ~arrival_rates:[||] (rng 42) t0 in
  check_int "dynamic empty" 0 r.Core.Sched.Dynamic.final_backlog

let test_degenerate_distributed () =
  let t0 = empty_instance () in
  let r = Core.Distrib.Regret.run ~rounds:5 (rng 43) t0 in
  check_int "regret empty" 0 (List.length r.Core.Distrib.Regret.final_active);
  let c = Core.Distrib.Contention.run ~policy:(Core.Distrib.Contention.Fixed 0.5) (rng 44) t0 in
  check_true "contention empty completes" c.Core.Distrib.Contention.completed

let test_degenerate_partitions () =
  let t0 = empty_instance () in
  check_int "strengthen empty" 0
    (List.length (Core.Sinr.Partition.strengthen t0 (Pw.uniform 1.) ~q:2. []));
  check_int "separate empty" 0
    (List.length (Core.Sinr.Partition.separate t0 ~eta:1. []))

let test_single_link_everything () =
  let t = planar_instance ~n_links:1 45 in
  check_int "alg1" 1 (List.length (Core.Capacity.Alg1.run t));
  check_int "exact" 1 (List.length (Core.Capacity.Exact.capacity t));
  check_int "schedule" 1
    (Core.Sched.Scheduler.length (Core.Sched.Scheduler.first_fit t));
  let r = R.schedule ~demands:[| 3. |] t in
  check_true "rates" r.R.completed

let suite =
  [
    ( "sched.rates",
      [
        case "rate values" test_rate_values;
        case "schedule completes" test_rates_schedule_completes;
        case "demand scales slots" test_rates_higher_demand_more_slots;
        case "unequal demands" test_rates_unequal_demands;
        case "validation" test_rates_validation;
        case "slot budget" test_rates_budget;
      ] );
    ( "capacity.cognitive",
      [
        case "greedy safe" test_cognitive_greedy_safe;
        case "exact dominates" test_cognitive_exact_dominates;
        case "exact safe" test_cognitive_exact_safe;
        case "protects primaries" test_cognitive_protects_primaries;
        case "rejects bad primaries" test_cognitive_rejects_infeasible_primaries;
        prop_cognitive_never_hurts_primaries;
      ] );
    ( "decay.spaces_extra",
      [
        case "line points" test_line_points;
        case "clustered points" test_clustered_points;
        case "exponential line" test_exponential_line;
        case "exp line validation" test_exponential_line_validation;
      ] );
    ( "robustness.degenerate",
      [
        case "capacity algorithms" test_degenerate_capacity_algorithms;
        case "schedulers" test_degenerate_schedulers;
        case "distributed" test_degenerate_distributed;
        case "partitions" test_degenerate_partitions;
        case "single link" test_single_link_everything;
      ] );
  ]
