(* Tests for the 3-D geometry substrate and the volumetric decay spaces. *)

open Testutil
module P3 = Core.Geom.Point3
module Sp = Core.Decay.Spaces

let test_arithmetic () =
  let a = P3.make 1. 2. 3. and b = P3.make 4. 5. 6. in
  check_true "add" (P3.equal (P3.add a b) (P3.make 5. 7. 9.));
  check_true "sub" (P3.equal (P3.sub b a) (P3.make 3. 3. 3.));
  check_true "scale" (P3.equal (P3.scale 2. a) (P3.make 2. 4. 6.))

let test_norm_dist () =
  check_float "norm" 3. (P3.norm (P3.make 1. 2. 2.));
  check_float "dist" 3. (P3.dist (P3.make 1. 1. 1.) (P3.make 2. 3. 3.));
  check_float "dist2" 9. (P3.dist2 (P3.make 1. 1. 1.) (P3.make 2. 3. 3.))

let test_cross_product () =
  let x = P3.make 1. 0. 0. and y = P3.make 0. 1. 0. in
  check_true "x cross y = z" (P3.equal (P3.cross x y) (P3.make 0. 0. 1.));
  check_true "anticommutes"
    (P3.equal (P3.cross y x) (P3.make 0. 0. (-1.)));
  (* Cross product is orthogonal to both factors. *)
  let a = P3.make 1. 2. 3. and b = P3.make (-2.) 0.5 4. in
  let c = P3.cross a b in
  check_float ~eps:1e-9 "orthogonal to a" 0. (P3.dot c a);
  check_float ~eps:1e-9 "orthogonal to b" 0. (P3.dot c b)

let test_angle () =
  check_float ~eps:1e-9 "right angle" (Float.pi /. 2.)
    (P3.angle_between (P3.make 1. 0. 0.) (P3.make 0. 0. 2.));
  Alcotest.check_raises "zero vector"
    (Invalid_argument "Point3.angle_between: zero vector") (fun () ->
      ignore (P3.angle_between P3.origin (P3.make 1. 0. 0.)))

let test_lerp () =
  let m = P3.lerp (P3.make 0. 0. 0.) (P3.make 2. 4. 6.) 0.5 in
  check_true "midpoint" (P3.equal m (P3.make 1. 2. 3.))

let test_metric_of_points3 () =
  let m =
    Core.Geom.Metric.of_points3
      [ P3.make 0. 0. 0.; P3.make 1. 0. 0.; P3.make 0. 1. 1. ]
  in
  check_true "is metric" (Core.Geom.Metric.is_metric m);
  check_float ~eps:1e-9 "sqrt 2" (sqrt 2.) m.Core.Geom.Metric.d.(0).(2)

let test_3d_decay_zeta () =
  let pts = Sp.random_points_3d (rng 1) ~n:12 ~side:10. in
  let d = Sp.of_points_3d ~alpha:3. pts in
  check_float ~eps:5e-3 "zeta ~ alpha in 3d" 3. (Core.Decay.Metricity.zeta d)

let test_3d_independence_exceeds_planar () =
  (* An octahedron around the origin: 6 points, pairwise distance sqrt2 * r
     > r — all independent w.r.t. the centre, impossible in the plane
     (strict reading caps the plane at 5). *)
  let r = 1. in
  let pts =
    [ P3.origin;
      P3.make r 0. 0.; P3.make (-.r) 0. 0.;
      P3.make 0. r 0.; P3.make 0. (-.r) 0.;
      P3.make 0. 0. r; P3.make 0. 0. (-.r) ]
  in
  let d = Sp.of_points_3d ~alpha:1. pts in
  check_true "octahedron independent wrt centre"
    (Core.Decay.Dimension.is_independent_wrt d ~x:0 [ 1; 2; 3; 4; 5; 6 ])

let prop_3d_triangle =
  qcheck ~count:25 "3-D euclidean satisfies the triangle inequality"
    QCheck.small_int
    (fun seed ->
      let pts = Sp.random_points_3d (rng seed) ~n:8 ~side:5. in
      Core.Geom.Metric.check_triangle (Core.Geom.Metric.of_points3 pts))

let suite =
  [
    ( "geom.point3",
      [
        case "arithmetic" test_arithmetic;
        case "norm/dist" test_norm_dist;
        case "cross product" test_cross_product;
        case "angle" test_angle;
        case "lerp" test_lerp;
        case "metric of points" test_metric_of_points3;
        case "3d zeta = alpha" test_3d_decay_zeta;
        case "octahedron independence" test_3d_independence_exceeds_planar;
        prop_3d_triangle;
      ] );
  ]
