test/test_rates_cognitive.ml: Alcotest Array Core List QCheck Testutil
