test/test_radio.ml: Alcotest Array Core Float List QCheck Testutil
