test/test_extensions.ml: Alcotest Array Core Float List QCheck Testutil
