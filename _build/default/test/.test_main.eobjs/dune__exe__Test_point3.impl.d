test/test_point3.ml: Alcotest Array Core Float QCheck Testutil
