test/test_prelude.ml: Alcotest Array Core Float Fun Gen List QCheck String Testutil
