test/test_protocols.ml: Alcotest Array Core Fun List QCheck Testutil
