test/test_flow_diagram.ml: Alcotest Array Core List QCheck Testutil
