test/test_integration.ml: Alcotest Array Core Float Fun List String Testutil
