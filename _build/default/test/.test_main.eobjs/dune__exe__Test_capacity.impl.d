test/test_capacity.ml: Alcotest Array Core List QCheck Testutil
