test/test_graph.ml: Alcotest Core Fun List QCheck Testutil
