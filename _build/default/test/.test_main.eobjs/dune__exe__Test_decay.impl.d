test/test_decay.ml: Alcotest Array Core Float Fun List Printf QCheck Testutil
