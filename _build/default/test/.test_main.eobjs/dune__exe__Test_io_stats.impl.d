test/test_io_stats.ml: Alcotest Array Core Filename Float Fun List QCheck Sys Testutil
