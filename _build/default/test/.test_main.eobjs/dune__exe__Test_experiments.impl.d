test/test_experiments.ml: Alcotest Bg_experiments List Testutil
