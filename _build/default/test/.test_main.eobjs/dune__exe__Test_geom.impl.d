test/test_geom.ml: Alcotest Array Core Float List QCheck Testutil
