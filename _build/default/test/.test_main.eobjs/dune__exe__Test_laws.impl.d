test/test_laws.ml: Alcotest Array Core Float Fun List QCheck Testutil
