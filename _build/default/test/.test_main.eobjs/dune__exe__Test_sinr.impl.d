test/test_sinr.ml: Alcotest Array Bool Core Float List QCheck Testutil
