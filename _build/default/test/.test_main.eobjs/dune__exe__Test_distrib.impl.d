test/test_distrib.ml: Alcotest Array Core List QCheck Testutil
