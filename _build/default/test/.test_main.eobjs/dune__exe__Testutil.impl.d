test/testutil.ml: Alcotest Core List QCheck QCheck_alcotest
