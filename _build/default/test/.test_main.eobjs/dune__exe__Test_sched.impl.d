test/test_sched.ml: Array Core List QCheck Testutil
