open Testutil
module Mat = Core.Radio.Material
module Env = Core.Radio.Environment
module Ant = Core.Radio.Antenna
module Prop = Core.Radio.Propagation
module Node = Core.Radio.Node
module Meas = Core.Radio.Measure
module P = Core.Geom.Point
module S = Core.Geom.Segment
module D = Core.Decay.Decay_space

(* ------------------------------------------------------------- Material *)

let test_material_ordering () =
  check_true "metal worse than glass"
    (Mat.metal.Mat.attenuation_db > Mat.glass.Mat.attenuation_db);
  check_true "concrete worse than drywall"
    (Mat.concrete.Mat.attenuation_db > Mat.drywall.Mat.attenuation_db)

let test_material_custom () =
  let m = Mat.custom ~name:"lead" ~attenuation_db:40. in
  check_float "attenuation" 40. m.Mat.attenuation_db;
  Alcotest.check_raises "negative"
    (Invalid_argument "Material.custom: attenuation must be non-negative")
    (fun () -> ignore (Mat.custom ~name:"x" ~attenuation_db:(-1.)))

(* ---------------------------------------------------------- Environment *)

let test_empty_environment () =
  let e = Env.empty ~side:10. in
  check_int "no walls" 0 (List.length (Env.walls e));
  check_float "no loss" 0. (Env.wall_loss_db e (P.make 0. 0.) (P.make 9. 9.))

let test_wall_loss_accumulates () =
  let w1 =
    { Env.segment = S.make (P.make 2. (-1.)) (P.make 2. 1.); material = Mat.concrete }
  in
  let w2 =
    { Env.segment = S.make (P.make 4. (-1.)) (P.make 4. 1.); material = Mat.glass }
  in
  let e = Env.create ~side:10. [ w1; w2 ] in
  check_float "both walls" 14. (Env.wall_loss_db e (P.make 0. 0.) (P.make 6. 0.));
  check_float "one wall" 12. (Env.wall_loss_db e (P.make 0. 0.) (P.make 3. 0.));
  check_int "crossings" 2 (Env.crossings e (P.make 0. 0.) (P.make 6. 0.))

let test_office_structure () =
  let e = Env.office ~rooms_x:2 ~rooms_y:2 ~room_size:5. Mat.drywall in
  check_true "has walls" (List.length (Env.walls e) > 4);
  (* Path across the interior wall at x = 5 away from the door gap. *)
  let loss = Env.wall_loss_db e (P.make 2.5 1.) (P.make 7.5 1.) in
  check_float "one drywall crossing" 3. loss;
  (* Path through the centred door gap at y = 2.5. *)
  let through_door = Env.wall_loss_db e (P.make 2.5 2.5) (P.make 7.5 2.5) in
  check_float "door gap is free" 0. through_door

let test_office_outer_solid () =
  let e = Env.office ~rooms_x:1 ~rooms_y:1 ~room_size:4. Mat.brick in
  (* From inside to outside must cross the boundary. *)
  check_true "boundary charged"
    (Env.wall_loss_db e (P.make 2. 2.) (P.make 10. 2.) >= 8.)

let test_corridor_builds () =
  let e = Env.corridor ~rooms:3 ~room_size:4. ~corridor_width:2. Mat.drywall in
  check_true "has walls" (List.length (Env.walls e) > 4)

let test_random_clutter_count () =
  let e = Env.random_clutter (rng 1) ~side:20. ~n_walls:15 [ Mat.concrete ] in
  check_int "wall count" 15 (List.length (Env.walls e))

let test_random_clutter_requires_materials () =
  Alcotest.check_raises "no materials"
    (Invalid_argument "Environment.random_clutter: no materials") (fun () ->
      ignore (Env.random_clutter (rng 1) ~side:20. ~n_walls:3 []))

(* -------------------------------------------------------------- Antenna *)

let test_isotropic () =
  check_float "0 dB everywhere" 0. (Ant.gain_db Ant.isotropic 1.7)

let test_sector () =
  let a = Ant.sector ~beamwidth:(Float.pi /. 2.) ~gain_db:10. ~back_db:(-20.) in
  check_float "boresight" 10. (Ant.gain_db a 0.);
  check_float "inside beam" 10. (Ant.gain_db a 0.7);
  check_float "outside beam" (-20.) (Ant.gain_db a 1.6);
  check_float "behind" (-20.) (Ant.gain_db a Float.pi)

let test_cardioid () =
  let a = Ant.cardioid ~max_gain_db:6. in
  check_true "front gain near max" (Ant.gain_db a 0. > 5.);
  check_true "back attenuated" (Ant.gain_db a Float.pi < Ant.gain_db a 0. -. 20.);
  check_true "monotone front-to-back"
    (Ant.gain_db a 0.5 > Ant.gain_db a 2.)

let test_angle_wrapping () =
  let a = Ant.cardioid ~max_gain_db:0. in
  check_float ~eps:1e-9 "wraps 2pi" (Ant.gain_db a 0.3)
    (Ant.gain_db a (0.3 +. (2. *. Float.pi)));
  check_float ~eps:1e-9 "wraps negative" (Ant.gain_db a 0.3) (Ant.gain_db a (-0.3))

(* ---------------------------------------------------------- Propagation *)

let test_free_space_slope () =
  (* FSPL: +20 dB per decade of distance. *)
  let cfg = Prop.free_space_config in
  let env = Env.empty ~side:1000. in
  let l1 = Prop.large_scale_loss_db cfg env (P.make 0. 0.) (P.make 10. 0.) in
  let l2 = Prop.large_scale_loss_db cfg env (P.make 0. 0.) (P.make 100. 0.) in
  check_float ~eps:1e-6 "20 dB per decade" 20. (l2 -. l1)

let test_log_distance_slope () =
  let cfg = { Prop.default with Prop.model = Prop.Log_distance { exponent = 3.5 };
              walls = false; shadowing_sigma_db = 0. } in
  let env = Env.empty ~side:1000. in
  let l1 = Prop.large_scale_loss_db cfg env (P.make 0. 0.) (P.make 10. 0.) in
  let l2 = Prop.large_scale_loss_db cfg env (P.make 0. 0.) (P.make 100. 0.) in
  check_float ~eps:1e-6 "35 dB per decade" 35. (l2 -. l1)

let test_log_distance_reference () =
  let cfg = { Prop.default with walls = false; shadowing_sigma_db = 0. } in
  let env = Env.empty ~side:10. in
  check_float ~eps:1e-9 "ref loss at ref distance" 40.
    (Prop.large_scale_loss_db cfg env (P.make 0. 0.) (P.make 1. 0.))

let test_near_field_floor () =
  let cfg = { Prop.default with walls = false; shadowing_sigma_db = 0. } in
  let env = Env.empty ~side:10. in
  check_float ~eps:1e-9 "clamped below ref distance" 40.
    (Prop.large_scale_loss_db cfg env (P.make 0. 0.) (P.make 0.01 0.))

let test_two_ray_far_field () =
  (* Beyond the break distance the two-ray model decays ~40 dB/decade. *)
  let cfg =
    { Prop.free_space_config with Prop.model = Prop.Two_ray { tx_height = 1.; rx_height = 1. } }
  in
  let env = Env.empty ~side:1e6 in
  let l1 = Prop.large_scale_loss_db cfg env (P.make 0. 0.) (P.make 1000. 0.) in
  let l2 = Prop.large_scale_loss_db cfg env (P.make 0. 0.) (P.make 10000. 0.) in
  check_float ~eps:1.5 "40 dB per decade" 40. (l2 -. l1)

let test_walls_charged () =
  let e =
    Env.create ~side:10.
      [ { Env.segment = S.make (P.make 5. 0.) (P.make 5. 10.); material = Mat.metal } ]
  in
  let cfg = { Prop.default with shadowing_sigma_db = 0. } in
  let open_loss = Prop.large_scale_loss_db { cfg with Prop.walls = false } e
      (P.make 1. 5.) (P.make 9. 5.) in
  let wall_loss = Prop.large_scale_loss_db cfg e (P.make 1. 5.) (P.make 9. 5.) in
  check_float ~eps:1e-9 "metal adds 26 dB" 26. (wall_loss -. open_loss)

let test_fading_multiplier_mean () =
  let g = rng 3 in
  let xs = Array.init 20000 (fun _ -> Prop.fading_multiplier Prop.Rayleigh g) in
  check_float ~eps:0.05 "rayleigh mean 1" 1. (Core.Prelude.Stats.mean xs);
  let ys = Array.init 20000 (fun _ -> Prop.fading_multiplier (Prop.Rician 5.) g) in
  check_float ~eps:0.05 "rician mean 1" 1. (Core.Prelude.Stats.mean ys)

let test_rician_concentrates () =
  let g = rng 5 in
  let sd k =
    Core.Prelude.Stats.stddev
      (Array.init 5000 (fun _ -> Prop.fading_multiplier (Prop.Rician k) g))
  in
  check_true "higher K, less variance" (sd 20. < sd 0.5)

let test_loss_decay_inverse () =
  check_float ~eps:1e-9 "round trip" 73.2
    (Prop.decay_to_loss (Prop.loss_to_decay 73.2))

(* -------------------------------------------------------------- Measure *)

let test_decay_space_deterministic () =
  let env = Env.office ~rooms_x:2 ~rooms_y:1 ~room_size:5. Mat.drywall in
  let nodes = Node.of_points (Core.Decay.Spaces.random_points (rng 7) ~n:6 ~side:9.) in
  let d1 = Meas.decay_space ~seed:42 env nodes in
  let d2 = Meas.decay_space ~seed:42 env nodes in
  check_true "same seed, same space"
    (D.matrix d1 = D.matrix d2);
  let d3 = Meas.decay_space ~seed:43 env nodes in
  check_false "different seed differs" (D.matrix d1 = D.matrix d3)

let test_decay_space_symmetric_shadowing () =
  let env = Env.empty ~side:10. in
  let nodes = Node.of_points (Core.Decay.Spaces.random_points (rng 8) ~n:6 ~side:9.) in
  let d = Meas.decay_space ~seed:1 env nodes in
  check_true "frozen shadowing is symmetric" (D.is_symmetric d)

let test_decay_space_free_space_geo () =
  (* Free-space config on isotropic nodes reproduces d^2 geometry exactly
     (up to the constant). *)
  let env = Env.empty ~side:100. in
  let pts = Core.Decay.Spaces.random_points (rng 9) ~n:8 ~side:50. in
  let nodes = Node.of_points pts in
  let d = Meas.decay_space ~config:Prop.free_space_config env nodes in
  check_float ~eps:2e-3 "zeta = 2 in free space" 2.
    (Core.Decay.Metricity.zeta d)

let test_anisotropic_reciprocity () =
  (* With the same pattern used for transmit and receive, the channel is
     reciprocal: anisotropy changes decays but keeps them symmetric. *)
  let env = Env.empty ~side:20. in
  let pts = [ P.make 1. 1.; P.make 10. 1.; P.make 5. 8. ] in
  let ant = Ant.sector ~beamwidth:1. ~gain_db:8. ~back_db:(-15.) in
  let nodes = Node.random_oriented (rng 10) ant pts in
  let cfg = { Prop.default with Prop.shadowing_sigma_db = 0.; walls = false } in
  let d = Meas.decay_space ~config:cfg env nodes in
  check_true "reciprocal despite anisotropy" (D.is_symmetric d);
  (* But anisotropy does break the pure distance-decay relation. *)
  let iso = Meas.decay_space ~config:cfg env (Node.of_points pts) in
  check_false "anisotropy changes decays" (D.matrix d = D.matrix iso)

let test_fading_breaks_symmetry () =
  let env = Env.empty ~side:20. in
  let pts = Core.Decay.Spaces.random_points (rng 20) ~n:5 ~side:15. in
  let cfg =
    { Prop.default with Prop.shadowing_sigma_db = 0.; walls = false;
      fading = Prop.Rayleigh }
  in
  let d = Meas.decay_space ~seed:4 ~config:cfg env (Node.of_points pts) in
  check_false "per-direction fading is asymmetric" (D.is_symmetric d)

let test_measured_quantization () =
  let env = Env.empty ~side:20. in
  let nodes = Node.of_points (Core.Decay.Spaces.random_points (rng 11) ~n:5 ~side:15.) in
  let truth = Meas.decay_space ~seed:2 env nodes in
  let meas = Meas.measured_decay_space ~tx_power_dbm:0. truth in
  (* Every measured loss is within half a quantization step of the truth. *)
  let ok = ref true in
  for i = 0 to 4 do
    for j = 0 to 4 do
      if i <> j then begin
        let lt = Prop.decay_to_loss (D.decay truth i j) in
        let lm = Prop.decay_to_loss (D.decay meas i j) in
        if lt < 95. && Float.abs (lt -. lm) > 0.5 +. 1e-9 then ok := false
      end
    done
  done;
  check_true "quantization bounded by half step" !ok

let test_measured_censoring () =
  let truth =
    D.of_matrix [| [| 0.; 1e13 |]; [| 1e13; 0. |] |]
  in
  let meas = Meas.measured_decay_space ~tx_power_dbm:0. ~noise_floor_dbm:(-95.) truth in
  check_float ~eps:1e-6 "censored at the floor" 95.
    (Prop.decay_to_loss (D.decay meas 0 1))

let test_prr_step_without_fading () =
  let g = rng 12 in
  check_float "above threshold" 1.
    (Meas.prr g ~beta:2. ~mean_sinr:3. ~fading:Prop.No_fading);
  check_float "below threshold" 0.
    (Meas.prr g ~beta:2. ~mean_sinr:1. ~fading:Prop.No_fading)

let test_prr_smooth_with_rayleigh () =
  let g = rng 13 in
  (* Rayleigh: PRR = exp(-beta/mean). *)
  let p = Meas.prr ~samples:20000 g ~beta:1. ~mean_sinr:2. ~fading:Prop.Rayleigh in
  check_float ~eps:0.02 "matches exp(-1/2)" (exp (-0.5)) p;
  let hi = Meas.prr ~samples:5000 g ~beta:1. ~mean_sinr:20. ~fading:Prop.Rayleigh in
  let lo = Meas.prr ~samples:5000 g ~beta:1. ~mean_sinr:0.1 ~fading:Prop.Rayleigh in
  check_true "S-curve orientation" (hi > 0.9 && lo < 0.1)

let test_distance_correlation_free_space () =
  let env = Env.empty ~side:50. in
  let nodes = Node.of_points (Core.Decay.Spaces.random_points (rng 14) ~n:10 ~side:40.) in
  let d = Meas.decay_space ~config:Prop.free_space_config env nodes in
  check_float ~eps:1e-6 "perfect rank correlation in free space" 1.
    (Meas.distance_decay_correlation env nodes d)

let test_clutter_lowers_correlation () =
  let pts = Core.Decay.Spaces.random_points (rng 15) ~n:12 ~side:18. in
  let nodes = Node.of_points pts in
  let free = Env.empty ~side:20. in
  let cluttered =
    Env.random_clutter (rng 16) ~side:20. ~n_walls:40 [ Mat.metal; Mat.concrete ]
  in
  let cfg = { Prop.default with Prop.shadowing_sigma_db = 8. } in
  let d_free =
    Meas.decay_space ~config:{ cfg with Prop.walls = false; shadowing_sigma_db = 0. }
      free nodes
  in
  let d_clut = Meas.decay_space ~seed:3 ~config:cfg cluttered nodes in
  let c_free = Meas.distance_decay_correlation free nodes d_free in
  let c_clut = Meas.distance_decay_correlation cluttered nodes d_clut in
  check_true "correlation drops with clutter" (c_clut < c_free -. 0.05)

let prop_radio_spaces_are_valid =
  qcheck ~count:20 "simulated decay spaces validate" QCheck.small_int
    (fun seed ->
      let env = Env.random_clutter (rng seed) ~side:15. ~n_walls:8 [ Mat.brick ] in
      let nodes =
        Node.of_points (Core.Decay.Spaces.random_points (rng (seed + 1)) ~n:5 ~side:14.)
      in
      let d = Meas.decay_space ~seed env nodes in
      D.n d = 5 && D.min_decay d > 0.)

let suite =
  [
    ( "radio.material",
      [ case "ordering" test_material_ordering; case "custom" test_material_custom ] );
    ( "radio.environment",
      [
        case "empty" test_empty_environment;
        case "wall loss accumulates" test_wall_loss_accumulates;
        case "office structure" test_office_structure;
        case "office outer wall" test_office_outer_solid;
        case "corridor builds" test_corridor_builds;
        case "random clutter count" test_random_clutter_count;
        case "clutter needs materials" test_random_clutter_requires_materials;
      ] );
    ( "radio.antenna",
      [
        case "isotropic" test_isotropic;
        case "sector" test_sector;
        case "cardioid" test_cardioid;
        case "angle wrapping" test_angle_wrapping;
      ] );
    ( "radio.propagation",
      [
        case "free space slope" test_free_space_slope;
        case "log distance slope" test_log_distance_slope;
        case "reference loss" test_log_distance_reference;
        case "near field floor" test_near_field_floor;
        case "two-ray far field" test_two_ray_far_field;
        case "walls charged" test_walls_charged;
        case "fading mean 1" test_fading_multiplier_mean;
        case "rician concentration" test_rician_concentrates;
        case "loss/decay inverse" test_loss_decay_inverse;
      ] );
    ( "radio.measure",
      [
        case "deterministic" test_decay_space_deterministic;
        case "symmetric shadowing" test_decay_space_symmetric_shadowing;
        case "free space is geo" test_decay_space_free_space_geo;
        case "antenna reciprocity" test_anisotropic_reciprocity;
        case "fading asymmetry" test_fading_breaks_symmetry;
        case "rssi quantization" test_measured_quantization;
        case "noise-floor censoring" test_measured_censoring;
        case "prr step" test_prr_step_without_fading;
        case "prr rayleigh s-curve" test_prr_smooth_with_rayleigh;
        case "free-space correlation 1" test_distance_correlation_free_space;
        case "clutter kills correlation" test_clutter_lowers_correlation;
        prop_radio_spaces_are_valid;
      ] );
  ]
