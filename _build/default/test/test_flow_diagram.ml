(* Tests for multi-hop flow scheduling and the SINR-diagram negative
   control. *)

open Testutil
module D = Core.Decay.Decay_space
module Flow = Core.Sched.Flow
module Diag = Core.Radio.Diagram
module P = Core.Geom.Point

(* A 4-node chain: 0 - 1 - 2 - 3 with unit hop decays and huge skips. *)
let chain_space =
  D.of_fn ~name:"chain" 4 (fun i j ->
      if abs (i - j) = 1 then 1. else 1000.)

let test_route_chain () =
  match
    Flow.route chain_space ~power:2. ~beta:1. ~noise:1.
      { Flow.src = 0; dst = 3 }
  with
  | Some path -> Alcotest.(check (list int)) "hop path" [ 0; 1; 2; 3 ] path
  | None -> Alcotest.fail "expected a route"

let test_route_direct_when_powerful () =
  match
    Flow.route chain_space ~power:2000. ~beta:1. ~noise:1.
      { Flow.src = 0; dst = 3 }
  with
  | Some path -> check_int "one hop" 2 (List.length path)
  | None -> Alcotest.fail "expected a route"

let test_route_unreachable () =
  check_true "no route at tiny power"
    (Flow.route chain_space ~power:0.5 ~beta:1. ~noise:1.
       { Flow.src = 0; dst = 3 }
    = None)

let test_route_validation () =
  Alcotest.check_raises "src = dst" (Invalid_argument "Flow.route: src equals dst")
    (fun () ->
      ignore
        (Flow.route chain_space ~power:1. ~beta:1. ~noise:0.
           { Flow.src = 1; dst = 1 }))

let test_flow_run_chain () =
  let r =
    Flow.run ~beta:1. ~noise:1. ~power:2. chain_space
      ~sessions:[ { Flow.src = 0; dst = 3 } ]
  in
  check_int "routed" 1 r.Flow.routed;
  check_int "three hops" 3 (List.length r.Flow.hop_links);
  check_true "positive throughput" (r.Flow.throughput > 0.);
  check_true "slots >= 2 (adjacent hops conflict)" (r.Flow.slots >= 2)

let test_flow_dedup_hops () =
  (* Two sessions sharing the 1-2 hop: the hop is scheduled once. *)
  let r =
    Flow.run ~beta:1. ~noise:1. ~power:2. chain_space
      ~sessions:[ { Flow.src = 0; dst = 2 }; { Flow.src = 1; dst = 3 } ]
  in
  check_int "routed both" 2 r.Flow.routed;
  check_int "three distinct hops" 3 (List.length r.Flow.hop_links)

let test_flow_unroutable_reported () =
  let r =
    Flow.run ~beta:1. ~noise:1. ~power:0.5 chain_space
      ~sessions:[ { Flow.src = 0; dst = 3 } ]
  in
  check_int "none routed" 0 r.Flow.routed;
  check_int "reported" 1 (List.length r.Flow.unroutable);
  check_float "zero throughput" 0. r.Flow.throughput

let prop_flow_schedule_slots_feasible =
  qcheck ~count:15 "flow slots are SINR-feasible" QCheck.small_int (fun seed ->
      let pts = Core.Decay.Spaces.random_points (rng seed) ~n:12 ~side:12. in
      let sp = D.of_points ~alpha:3. pts in
      let beta = 1.5 and noise = 1. in
      let power = beta *. noise *. 30. in
      let r =
        Flow.run ~beta ~noise ~power sp
          ~sessions:[ { Flow.src = 0; dst = 11 }; { Flow.src = 5; dst = 2 } ]
      in
      List.for_all
        (fun slot ->
          let pairs =
            List.map
              (fun l -> (l.Core.Sinr.Link.sender, l.Core.Sinr.Link.receiver))
              slot
          in
          let sub = Core.Sinr.Instance.make ~noise ~beta ~zeta:3. sp pairs in
          Core.Sinr.Feasibility.is_feasible sub
            (Core.Sinr.Power.uniform power)
            (Array.to_list sub.Core.Sinr.Instance.links))
        r.Flow.schedule)

(* ---------------------------------------------------------------- Diagram *)

let txs = [| P.make 5. 10.; P.make 15. 10. |]

let test_cells_partition_probes () =
  let env = Core.Radio.Environment.empty ~side:20. in
  let cells =
    Diag.reception_cells ~grid:10 env Core.Radio.Propagation.free_space_config txs
  in
  check_true "at most one cell per transmitter" (List.length cells <= 2);
  (* Every probe point decodes at most one transmitter: total <= 100. *)
  let total =
    List.fold_left (fun a c -> a + List.length c.Diag.points) 0 cells
  in
  check_true "total points bounded" (total <= 100);
  check_true "some points decode" (total > 0)

let test_free_space_zones_convex () =
  let env = Core.Radio.Environment.empty ~side:20. in
  let cfg = Core.Radio.Propagation.free_space_config in
  let cells = Diag.reception_cells ~grid:24 env cfg txs in
  let defect = Diag.convexity_of_cells env cfg txs cells in
  check_true "free-space zones convex" (defect < 0.02)

let test_walled_zones_not_convex () =
  (* A single full wall between the transmitters only yields two convex
     half-zones; scattered partial walls create shadow pockets where the
     far transmitter captures probes inside the near one's region. *)
  let env =
    Core.Radio.Environment.random_clutter (rng 91) ~side:20. ~n_walls:12
      [ Core.Radio.Material.metal ]
  in
  let cfg =
    { Core.Radio.Propagation.free_space_config with
      Core.Radio.Propagation.walls = true }
  in
  let cells = Diag.reception_cells ~grid:24 env cfg txs in
  let defect = Diag.convexity_of_cells env cfg txs cells in
  check_true "walls break convexity" (defect > 0.01)

let test_diagram_requires_transmitters () =
  let env = Core.Radio.Environment.empty ~side:10. in
  Alcotest.check_raises "no txs" (Invalid_argument "Diagram: no transmitters")
    (fun () ->
      ignore
        (Diag.reception_cells env Core.Radio.Propagation.free_space_config [||]))

let test_convexity_defect_direct () =
  (* An L-shaped point set has midpoints outside it. *)
  let cell =
    { Diag.transmitter = 0;
      points = [ P.make 0. 0.; P.make 2. 0.; P.make 0. 2. ] }
  in
  let inside p = List.exists (fun q -> P.dist p q < 0.1) cell.Diag.points in
  let defect = Diag.convexity_defect cell ~loses_to:(fun p -> not (inside p)) in
  check_true "L-shape has defect" (defect > 0.)

let suite =
  [
    ( "sched.flow",
      [
        case "route chain" test_route_chain;
        case "route direct" test_route_direct_when_powerful;
        case "route unreachable" test_route_unreachable;
        case "route validation" test_route_validation;
        case "run chain" test_flow_run_chain;
        case "dedup shared hops" test_flow_dedup_hops;
        case "unroutable reported" test_flow_unroutable_reported;
        prop_flow_schedule_slots_feasible;
      ] );
    ( "radio.diagram",
      [
        case "cells partition" test_cells_partition_probes;
        case "free space convex" test_free_space_zones_convex;
        case "walls break convexity" test_walled_zones_not_convex;
        case "needs transmitters" test_diagram_requires_transmitters;
        case "defect direct" test_convexity_defect_direct;
      ] );
  ]
