(* Shared helpers for the test suite. *)

let rng seed = Core.Prelude.Rng.create seed

let check_float ?(eps = 1e-6) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let check_true msg b = Alcotest.(check bool) msg true b
let check_false msg b = Alcotest.(check bool) msg false b
let check_int msg a b = Alcotest.(check int) msg a b

let case name fn = Alcotest.test_case name `Quick fn

let qcheck ?(count = 100) name gen law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen law)

(* A small random symmetric decay space with decays in [0.5, range]. *)
let random_space ?(n = 8) ?(range = 50.) seed =
  let g = rng seed in
  Core.Decay.Decay_space.of_fn ~name:"random" n (fun i j ->
      if i < j then 0.5 +. Core.Prelude.Rng.float g (range -. 0.5)
      else 0.5 +. Core.Prelude.Rng.float g (range -. 0.5))
  |> Core.Decay.Decay_space.symmetrize

(* A small random asymmetric decay space. *)
let random_asym_space ?(n = 8) ?(range = 50.) seed =
  let g = rng seed in
  Core.Decay.Decay_space.of_fn ~name:"random-asym" n (fun _ _ ->
      0.5 +. Core.Prelude.Rng.float g (range -. 0.5))

(* Random planar GEO-SINR instance. *)
let planar_instance ?(n_links = 8) ?(alpha = 3.) ?(side = 20.) seed =
  Core.Sinr.Instance.random_planar (rng seed) ~n_links ~side ~alpha ~lmin:1.
    ~lmax:2.

let ids links = List.sort compare (List.map (fun l -> l.Core.Sinr.Link.id) links)
