bench/main.mli:
