bench/micro.ml: Analyze Array Bechamel Benchmark Core Float Hashtbl List Measure Printf Staged Test Time Toolkit
