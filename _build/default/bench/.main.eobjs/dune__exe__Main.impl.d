bench/main.ml: Array Bg_experiments List Micro Printf String Sys
