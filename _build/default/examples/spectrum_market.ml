(* Spectrum market: sell one transmission round to competing links.

   A venue (say, a conference hall with heavy partitions) is measured into
   a decay space; exhibitors bid for the right to run their links in the
   next slot.  The venue runs the truthful greedy auction from the decay-
   space toolkit: winners are SINR-compatible, and each pays its critical
   bid — so nobody can gain by shading.

   Run with:  dune exec examples/spectrum_market.exe *)

module D = Core.Decay.Decay_space
module T = Core.Prelude.Table

let () =
  (* The venue. *)
  let env =
    Core.Radio.Environment.random_clutter (Core.Prelude.Rng.create 71)
      ~side:30. ~n_walls:18
      [ Core.Radio.Material.concrete; Core.Radio.Material.drywall ]
  in
  let pts = Core.Decay.Spaces.random_points (Core.Prelude.Rng.create 72) ~n:20 ~side:28. in
  let space = Core.Radio.Measure.decay_space ~seed:7 env (Core.Radio.Node.of_points pts) in
  let zeta = Core.Decay.Metricity.zeta space in
  Printf.printf "venue decay space: n=20, zeta = %.2f\n\n" zeta;

  (* Ten bidding links with private valuations. *)
  let inst =
    Core.Sinr.Instance.random_links_in_space ~zeta (Core.Prelude.Rng.create 73)
      ~n_links:10 ~max_decay:(D.max_decay space) space
  in
  let g = Core.Prelude.Rng.create 74 in
  let values =
    Array.init (Array.length inst.Core.Sinr.Instance.links) (fun _ ->
        Float.round ((2. +. Core.Prelude.Rng.float g 18.) *. 100.) /. 100.)
  in

  (* Truthful bidding (that is the point of the mechanism). *)
  let o = Core.Capacity.Auction.run inst ~bids:values in
  let t = T.create ~title:"auction outcome (truthful bids)"
      [ "link"; "value"; "won"; "pays"; "surplus" ]
  in
  Array.iter
    (fun l ->
      let id = l.Core.Sinr.Link.id in
      let won =
        List.exists (fun w -> w.Core.Sinr.Link.id = id) o.Core.Capacity.Auction.winners
      in
      let pay =
        Option.value ~default:0.
          (List.assoc_opt id o.Core.Capacity.Auction.payments)
      in
      T.add_row t
        [ T.I id; T.F2 values.(id); T.S (string_of_bool won); T.F2 pay;
          T.F2 (if won then values.(id) -. pay else 0.) ])
    inst.Core.Sinr.Instance.links;
  T.print t;
  Printf.printf "welfare: %.2f (revenue %.2f)\n" o.Core.Capacity.Auction.welfare
    (List.fold_left (fun a (_, p) -> a +. p) 0. o.Core.Capacity.Auction.payments);

  (* Compare against the exact welfare optimum. *)
  let opt = Core.Capacity.Weighted.exact inst values in
  Printf.printf "exact optimum welfare: %.2f (auction achieves %.0f%%)\n\n"
    (Core.Capacity.Weighted.total values opt)
    (100. *. o.Core.Capacity.Auction.welfare
    /. Core.Capacity.Weighted.total values opt);

  (* Demonstrate that shading a bid cannot help a winner. *)
  (match o.Core.Capacity.Auction.winners with
  | w :: _ ->
      let id = w.Core.Sinr.Link.id in
      let pay = List.assoc id o.Core.Capacity.Auction.payments in
      let shaded = Array.copy values in
      shaded.(id) <- pay /. 2.;
      let o' = Core.Capacity.Auction.run inst ~bids:shaded in
      let still_wins =
        List.exists (fun l -> l.Core.Sinr.Link.id = id) o'.Core.Capacity.Auction.winners
      in
      Printf.printf
        "link %d pays %.2f; bidding below that (%.2f) makes it lose: %b\n" id pay
        (pay /. 2.) (not still_wins)
  | [] -> ());
  print_endline
    "\nEverything above ran on measured decays — no coordinates were used."
