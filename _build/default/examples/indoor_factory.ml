(* Indoor factory: what happens to capacity algorithms as the environment
   hardens?

   We fix one deployment of machines-with-radios on a factory floor and
   sweep the amount of metal clutter.  For each environment we measure the
   decay space, report its metricity, and compare three capacity
   algorithms against the exact optimum — the practical version of the
   paper's question "how does approximability degrade with zeta?".

   Run with:  dune exec examples/indoor_factory.exe *)

module D = Core.Decay.Decay_space
module T = Core.Prelude.Table

let () =
  let side = 40. in
  let rng = Core.Prelude.Rng.create 99 in
  let points = Core.Decay.Spaces.random_points rng ~n:28 ~side:(side -. 2.) in
  let nodes = Core.Radio.Node.of_points points in
  let table =
    T.create ~title:"factory floor: capacity vs clutter (14-link workload, OPT via B&B)"
      [ "metal walls"; "zeta"; "dist-decay corr"; "OPT"; "Alg1"; "greedy";
        "strongest"; "Alg1 ratio" ]
  in
  List.iter
    (fun n_walls ->
      let env =
        if n_walls = 0 then Core.Radio.Environment.empty ~side
        else
          Core.Radio.Environment.random_clutter (Core.Prelude.Rng.create 5)
            ~side ~n_walls
            [ Core.Radio.Material.metal; Core.Radio.Material.concrete ]
      in
      let config =
        { Core.Radio.Propagation.default with
          Core.Radio.Propagation.shadowing_sigma_db = 5. }
      in
      let space = Core.Radio.Measure.decay_space ~seed:11 ~config env nodes in
      let zeta = Core.Decay.Metricity.zeta space in
      let corr = Core.Radio.Measure.distance_decay_correlation env nodes space in
      (* The same 14 links in every environment: machines talk to fixed
         controllers. *)
      let inst =
        Core.Sinr.Instance.random_links_in_space ~zeta
          (Core.Prelude.Rng.create 13) ~n_links:14
          ~max_decay:(D.max_decay space) space
      in
      let opt = List.length (Core.Capacity.Exact.capacity inst) in
      let alg1 = List.length (Core.Capacity.Alg1.run inst) in
      let greedy = List.length (Core.Capacity.Greedy.affectance_greedy inst) in
      let strongest = List.length (Core.Capacity.Greedy.strongest_first inst) in
      T.add_row table
        [ T.I n_walls; T.F2 zeta; T.F2 corr; T.I opt; T.I alg1; T.I greedy;
          T.I strongest; T.F2 (float_of_int opt /. float_of_int (max 1 alg1)) ])
    [ 0; 10; 25; 50 ];
  T.print table;
  print_endline
    "Reading: clutter decorrelates link quality from distance and raises zeta,";
  print_endline
    "yet the decay-space algorithms keep working — only their approximation";
  print_endline "slack (OPT / Alg1) moves, as the paper's theory predicts."
