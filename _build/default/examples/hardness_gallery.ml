(* Hardness gallery: a guided tour of every adversarial construction in the
   paper, with its parameters measured live.

   Exhibits:
     1. Theorem 3's MIS space       — capacity is exactly max independent set.
     2. Theorem 6's two-line space  — same, but inside a bounded-growth space.
     3. The three-point family      — phi bounded while zeta diverges.
     4. Welzl's space               — doubling 1, unbounded independence.
     5. The uniform space           — the opposite extreme.
     6. The star of section 3.4     — unbounded dimension, harmless fading.

   Run with:  dune exec examples/hardness_gallery.exe *)

module D = Core.Decay.Decay_space
module Met = Core.Decay.Metricity
module Dim = Core.Decay.Dimension
module T = Core.Prelude.Table

let headline title = Printf.printf "\n### %s\n\n" title

let () =
  headline "1. Theorem 3: capacity = MIS, even with power control";
  let g = Core.Graph.Graph.cycle 9 in
  let space, pairs = Core.Decay.Spaces.mis_construction g in
  let inst = Core.Sinr.Instance.equi_decay_of_space space pairs in
  let alpha_g = Core.Graph.Mis.independence_number g in
  Printf.printf "graph: C9, alpha(G) = %d\n" alpha_g;
  Printf.printf "zeta = %.4f  (paper: <= lg 2n = %.4f, tight)\n"
    (Met.zeta space)
    (Core.Prelude.Numerics.log2 18.);
  Printf.printf "capacity (uniform power)  = %d\n"
    (List.length (Core.Capacity.Exact.capacity inst));
  Printf.printf "capacity (power control)  = %d\n"
    (List.length (Core.Capacity.Exact.capacity_power_control inst));

  headline "2. Theorem 6: the same trap inside a bounded-growth space";
  let g6 = Core.Graph.Graph.random (Core.Prelude.Rng.create 5) 8 0.5 in
  let space6, pairs6 = Core.Decay.Spaces.two_line g6 ~alpha':2. () in
  let inst6 = Core.Sinr.Instance.equi_decay_of_space ~zeta:(Met.zeta space6) space6 pairs6 in
  Printf.printf "phi = %.2f (Theta(n) with n = 8)\n" (Met.phi space6);
  Printf.printf "independence dimension = %d (paper: 3)\n"
    (Dim.independence_dimension space6);
  Printf.printf "alpha(G) = %d, capacity (uniform) = %d, capacity (pc) = %d\n"
    (Core.Graph.Mis.independence_number g6)
    (List.length (Core.Capacity.Exact.capacity inst6))
    (List.length (Core.Capacity.Exact.capacity_power_control inst6));

  headline "3. The three-point family: phi and zeta part ways";
  let t = T.create ~title:"f_ab = 1, f_bc = q, f_ac = 2q"
      [ "q"; "zeta"; "phi"; "lg phi" ]
  in
  List.iter
    (fun q ->
      let s = Core.Decay.Spaces.three_point ~q in
      T.add_row t
        [ T.F q; T.F4 (Met.zeta s); T.F4 (Met.phi s); T.F4 (Met.phi_log s) ])
    [ 1e2; 1e4; 1e6; 1e8; 1e10 ];
  T.print t;

  headline "4. Welzl's space: doubling 1, independence n+1";
  let t = T.create ~title:"welzl(n, eps = 1/4)"
      [ "n"; "quasi-doubling"; "independence dim" ]
  in
  List.iter
    (fun n ->
      let s = Core.Decay.Spaces.welzl ~n ~eps:0.25 in
      T.add_row t
        [ T.I n; T.F4 (Dim.quasi_doubling ~zeta:1. s);
          T.I (Dim.independence_dimension ~exact_limit:40 s) ])
    [ 4; 8; 16 ];
  T.print t;

  headline "5. The uniform space: the mirror image";
  let u = Core.Decay.Spaces.uniform 12 in
  Printf.printf "independence dimension = %d (1: a single guard covers all)\n"
    (Dim.independence_dimension u);
  Printf.printf "quasi-doubling = %.2f (log n: unbounded)\n"
    (Dim.quasi_doubling ~zeta:1. u);

  headline "6. The star of section 3.4: dimension without danger";
  let t = T.create ~title:"star(k, r = 4)"
      [ "k"; "quasi-doubling"; "gamma_z at close leaf" ]
  in
  List.iter
    (fun k ->
      let s = Core.Decay.Spaces.star ~k ~r:4. in
      let gz, _ = Core.Decay.Fading.gamma_z ~exact_limit:80 s ~z:1 ~r:4. in
      T.add_row t [ T.I k; T.F4 (Dim.quasi_doubling ~zeta:1. s); T.F4 gz ])
    [ 8; 16; 32; 64 ];
  T.print t;
  print_endline
    "Doubling dimension grows without bound, but the fading value a listener";
  print_endline
    "actually experiences stays ~1: fading spaces are sufficient, not necessary."
