examples/spectrum_market.ml: Array Core Float List Option Printf
