examples/hardness_gallery.ml: Core List Printf
