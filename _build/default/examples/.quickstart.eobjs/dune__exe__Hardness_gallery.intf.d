examples/hardness_gallery.mli:
