examples/indoor_factory.ml: Core List
