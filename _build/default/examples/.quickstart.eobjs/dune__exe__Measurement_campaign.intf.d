examples/measurement_campaign.mli:
