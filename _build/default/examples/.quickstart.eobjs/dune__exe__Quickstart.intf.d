examples/quickstart.mli:
