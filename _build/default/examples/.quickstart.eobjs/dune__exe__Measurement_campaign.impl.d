examples/measurement_campaign.ml: Array Core Filename List Printf
