examples/quickstart.ml: Core Format List Printf String
