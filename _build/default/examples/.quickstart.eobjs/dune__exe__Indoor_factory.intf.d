examples/indoor_factory.mli:
