examples/spectrum_market.mli:
