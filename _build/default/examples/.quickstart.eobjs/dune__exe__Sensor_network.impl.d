examples/sensor_network.ml: Array Core
