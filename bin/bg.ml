(* bg — command-line front end for the Beyond Geometry library.

   Subcommands:
     bg analyze <file.csv>         full parameter report of a decay matrix
     bg generate <kind> ...        emit a decay matrix (zoo / radio) as CSV
     bg evolve ...                 mobility trace + incremental re-analysis
     bg capacity <file.csv> ...    run a capacity algorithm on random links
     bg experiment <id>            run one claim experiment (E1..E28)
     bg protocols <file.csv>       run the distributed protocol suite
     bg stats <file.csv>           measurement-style statistics
     bg trace report|flame|diff    analyze a --trace JSONL file offline
     bg bench [--record|--check]   kernel bench / perf-regression gate
     bg serve                      batched JSONL analysis daemon
     bg loadgen                    workload replayer / benchmark for serve
     bg top                        live daemon telemetry (socket or file)
     bg slo                        score recorded telemetry against SLOs
     bg zoo                        list the built-in constructions *)

open Cmdliner

(* Every user-facing failure — missing file, unreadable CSV, a validation
   reject — prints one clear line on stderr and exits 2, the same code
   Cmdliner's own CLI parse errors are mapped to below.  Backtraces are
   for bugs, not for bad input. *)
let user_error fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("bg: " ^ s);
      exit 2)
    fmt

let or_user_error f =
  try f () with
  | Invalid_argument msg | Failure msg -> user_error "%s" msg
  | Sys_error msg -> user_error "%s" msg
  | Obs_tools.Jsonl.Bad msg -> user_error "malformed JSON: %s" msg
  | Core.Prelude.Parallel.Timeout -> user_error "wall-clock budget exceeded"

let space_of_file path = or_user_error (fun () -> Core.Decay.Decay_io.load path)

(* Shared --timeout flag: cooperative wall-clock budget in seconds for the
   analysis sweeps; 0 (the default) means unlimited. *)
let timeout_arg =
  Arg.(
    value
    & opt float 0.
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget for the parameter sweeps (0 = unlimited). An \
           exceeded budget reports a clean error (exit 2) for analysis runs \
           and a TIMEOUT verdict for experiments.")

(* All resource flags are validated up front, before any file is opened
   or domain spawned: a nonsense value is a one-line exit-2 answer, not
   a crash (or silent misbehaviour) minutes into a run. *)
let validate_timeout timeout =
  if Float.is_nan timeout || timeout < 0. then
    user_error "--timeout must be a non-negative number of seconds (got %g)"
      timeout;
  timeout

let validate_retries retries =
  if retries < 0 then user_error "--retries must be non-negative (got %d)" retries;
  retries

let with_optional_timeout timeout f =
  if timeout > 0. then
    Core.Prelude.Parallel.with_deadline ~seconds:timeout f
  else f ()

(* Shared --jobs flag: omitted means "use the whole machine"
   (Domain.recommended_domain_count); any value below 1 — including the
   0 that used to be a hidden alias for auto — is rejected up front.
   The resolved count becomes the ambient default, so sweeps buried
   inside experiments pick it up too.  Results never depend on it. *)
let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel sweeps (default: one per \
           available core). Must be at least 1; the output is identical \
           at every job count.")

let apply_jobs jobs =
  let jobs =
    match jobs with
    | None -> Core.Prelude.Parallel.auto_jobs ()
    | Some j when j < 1 -> user_error "--jobs must be at least 1 (got %d)" j
    | Some j -> j
  in
  Core.Prelude.Parallel.set_default_jobs jobs;
  jobs

(* Shared observability flags (analyze / experiment / bench): --trace FILE
   installs the JSONL sink for the whole run, --metrics prints the
   metrics registry at the end.  [finish_obs] runs on every exit path of
   an observed subcommand, including the nonzero-exit ones. *)
let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a JSONL observability trace to $(docv): one event per \
           completed span (sweeps, cache lookups, experiments) plus a \
           final flush of the metrics registry. Off by default; the \
           instrumentation costs ~nothing when off.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the metrics registry (kernel pruning counters, cache \
           hits/misses, pool and repair statistics) as a table when the \
           command finishes.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "With --trace: also capture GC and CPU deltas on every span \
           (minor/major/promoted words, allocated bytes, collections, \
           CPU seconds) and give each parallel pool task its own span, \
           so `bg trace report` can attribute allocation per span kind \
           and per worker domain. No effect without --trace.")

(* An unwritable trace path must be a clean exit-2 error at startup, not
   a Sys_error escaping at first flush mid-run.  [append] is how a
   supervised worker respawn continues its predecessors' file. *)
let apply_obs ?(profile = false) ?(append = false) trace =
  Option.iter
    (fun path ->
      (try Core.Prelude.Obs.set_trace_file ~append path
       with Sys_error msg -> user_error "cannot open trace file: %s" msg);
      Core.Prelude.Obs.set_profile profile)
    trace

let finish_obs metrics =
  Core.Prelude.Obs.flush_metrics ();
  if metrics then Core.Prelude.Obs.print_summary ()

(* ------------------------------------------------------------- analyze *)

let gamma_at =
  Arg.(
    value
    & opt (list float) []
    & info [ "gamma-at" ] ~docv:"R,.."
        ~doc:"Also evaluate the fading parameter gamma(r) at these separations.")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Decay matrix CSV.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Recompute zeta/phi/gamma even when a digest-keyed cached result exists.")

let repair_arg =
  Arg.(
    value
    & opt
        (some
           (enum
              [ ("reject", `Reject); ("clamp", `Clamp);
                ("symmetrize", `Symmetrize); ("drop", `Drop) ]))
        None
    & info [ "repair" ] ~docv:"POLICY"
        ~doc:
          "Validate-and-repair the matrix before analysis. One of: reject \
           (diagnose only, fail on any defect), clamp (replace bad cells \
           with the worst observed decay), symmetrize (patch bad cells from \
           their mirror), drop (remove nodes with bad links). The repair \
           summary is printed to stderr; an unrepairable matrix is a clean \
           error (exit 2).")

let space_of_file_repaired file repair =
  match repair with
  | None -> space_of_file file
  | Some kind ->
      or_user_error (fun () ->
          let module V = Core.Decay.Validate in
          let module Io = Core.Decay.Decay_io in
          let text = In_channel.with_open_text file In_channel.input_all in
          let name = Filename.remove_extension (Filename.basename file) in
          (* The clamp value is data-driven: the worst decay actually
             observed in this file (see Validate.suggested_clamp). *)
          let policy =
            match kind with
            | `Reject -> V.Reject
            | `Clamp ->
                let _, raw = Io.parse ~name text in
                V.Clamp (V.suggested_clamp raw)
            | `Symmetrize -> V.Symmetrize
            | `Drop -> V.Drop_nodes
          in
          match Io.of_csv_repaired ~name ~policy text with
          | Ok (space, report) ->
              Printf.eprintf "bg: %s: %s\n%!" file (V.repair_to_string report);
              space
          | Error diag -> user_error "%s: %s" file (V.describe diag))

let analyze_cmd =
  let run file gamma_at jobs no_cache repair timeout trace profile metrics =
    let jobs = apply_jobs jobs in
    let timeout = validate_timeout timeout in
    apply_obs ~profile trace;
    let space = space_of_file_repaired file repair in
    let report =
      or_user_error (fun () ->
          with_optional_timeout timeout (fun () ->
              Core.Analysis.run
                ~config:
                  {
                    Core.Analysis.gamma_at;
                    ctx =
                      Core.Decay.Ctx.make ~jobs ~cache:(not no_cache) ();
                  }
                space))
    in
    Core.Prelude.Table.print (Core.Analysis.to_table report);
    finish_obs metrics
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Compute every decay-space parameter of a matrix.")
    Term.(
      const run $ file_arg $ gamma_at $ jobs_arg $ no_cache_arg $ repair_arg
      $ timeout_arg $ trace_arg $ profile_arg $ metrics_arg)

(* ------------------------------------------------------------ generate *)

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let nodes_arg =
  Arg.(value & opt int 16 & info [ "n" ] ~docv:"N" ~doc:"Number of nodes.")

let generate_cmd =
  let kind =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("uniform", `Uniform); ("star", `Star); ("welzl", `Welzl);
                  ("three-point", `Three_point); ("plane", `Plane);
                  ("office", `Office); ("clutter", `Clutter) ]))
          None
      & info [] ~docv:"KIND"
          ~doc:
            "One of: uniform, star, welzl, three-point, plane, office, clutter.")
  in
  let alpha =
    Arg.(value & opt float 3. & info [ "alpha" ] ~docv:"A" ~doc:"Path-loss exponent (plane).")
  in
  let q = Arg.(value & opt float 1e4 & info [ "q" ] ~docv:"Q" ~doc:"three-point q.") in
  let raw_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "raw" ] ~docv:"FILE"
          ~doc:
            "Write the matrix to $(docv) in the raw binary format \
             (Decay_io.save_raw) instead of CSV on stdout.  The plane \
             kind streams cells row by row without materializing the \
             matrix, so sizes far beyond RAM work; pair with bg estimate, \
             which memory-maps raw files.")
  in
  let run kind n seed alpha q raw =
    let rng = Core.Prelude.Rng.create seed in
    match (raw, kind) with
    | Some path, `Plane ->
        (* Out-of-core path: 2 floats per node in memory, one row at a
           time on the way out.  n = 50k (a 20 GB file) is fine. *)
        let pts =
          Array.of_list (Core.Decay.Spaces.random_points rng ~n ~side:25.)
        in
        Core.Decay.Decay_io.save_raw_fn ~n:(Array.length pts)
          (fun i j -> Core.Geom.Point.dist pts.(i) pts.(j) ** alpha)
          path
    | _ ->
        let space =
          match kind with
          | `Uniform -> Core.Decay.Spaces.uniform n
          | `Star -> Core.Decay.Spaces.star ~k:(max 1 (n - 2)) ~r:2.
          | `Welzl -> Core.Decay.Spaces.welzl ~n:(max 1 (n - 2)) ~eps:0.25
          | `Three_point -> Core.Decay.Spaces.three_point ~q
          | `Plane ->
              Core.Decay.Decay_space.of_points ~alpha
                (Core.Decay.Spaces.random_points rng ~n ~side:25.)
          | `Office ->
              let env =
                Core.Radio.Environment.office ~rooms_x:3 ~rooms_y:3 ~room_size:6.
                  Core.Radio.Material.drywall
              in
              let pts = Core.Decay.Spaces.random_points rng ~n ~side:17. in
              Core.Radio.Measure.decay_space ~seed env (Core.Radio.Node.of_points pts)
          | `Clutter ->
              let env =
                Core.Radio.Environment.random_clutter rng ~side:25. ~n_walls:30
                  [ Core.Radio.Material.concrete; Core.Radio.Material.metal ]
              in
              let pts = Core.Decay.Spaces.random_points rng ~n ~side:24. in
              Core.Radio.Measure.decay_space ~seed env (Core.Radio.Node.of_points pts)
        in
        (match raw with
        | Some path -> Core.Decay.Decay_io.save_raw space path
        | None -> print_string (Core.Decay.Decay_io.to_csv space))
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Emit a decay matrix from the construction zoo or the radio simulator.")
    Term.(const run $ kind $ nodes_arg $ seed_arg $ alpha $ q $ raw_out)

(* -------------------------------------------------------------- evolve *)

let evolve_cmd =
  let module Evolve = Core.Decay.Evolve in
  let module Incr = Core.Decay.Incremental in
  let module Met = Core.Decay.Metricity in
  let module J = Obs_tools.Jsonl in
  let steps_arg =
    Arg.(
      value & opt int 50
      & info [ "steps" ] ~docv:"T" ~doc:"Mobility steps to simulate.")
  in
  let dt_arg =
    Arg.(
      value & opt float 1.
      & info [ "dt" ] ~docv:"S" ~doc:"Seconds of motion per step.")
  in
  let speed_arg =
    Arg.(
      value
      & opt (pair ~sep:',' float float) (1., 3.)
      & info [ "speed" ] ~docv:"MIN,MAX"
          ~doc:
            "Waypoint speed range in m/s; 0,0 freezes every node (the \
             trace then re-emits one bit-identical space per step).")
  in
  let pause_arg =
    Arg.(
      value
      & opt (pair ~sep:',' float float) (2., 8.)
      & info [ "pause" ] ~docv:"MIN,MAX"
          ~doc:"Pause range in seconds at each reached waypoint.")
  in
  let corr_arg =
    Arg.(
      value & opt float 10.
      & info [ "corr-dist" ] ~docv:"D"
          ~doc:
            "Shadow-fading decorrelation distance in metres (the \
             Gudmundson mixing length).")
  in
  let shadow_arg =
    Arg.(
      value & opt float 4.
      & info [ "shadow" ] ~docv:"DB"
          ~doc:"Log-normal shadow-fading standard deviation in dB.")
  in
  let side_arg =
    Arg.(
      value & opt float 30.
      & info [ "side" ] ~docv:"L" ~doc:"Side of the square arena in metres.")
  in
  let r_arg =
    Arg.(
      value & opt float 4.
      & info [ "r" ] ~docv:"R"
          ~doc:
            "Also maintain the fading parameter gamma(R) incrementally \
             across the trace; 0 disables gamma.")
  in
  let env_arg =
    Arg.(
      value
      & opt (enum [ ("geometric", `Geo); ("office", `Office) ]) `Geo
      & info [ "env" ] ~docv:"KIND"
          ~doc:
            "Base decay model under the shadow/fading field: geometric \
             (pure power law on positions) or office (multi-wall radio \
             propagation over a 3x3 drywall floor plan).")
  in
  let diff_arg =
    Arg.(
      value & flag
      & info [ "differential" ]
          ~doc:
            "Differentially test every step: recompute zeta/phi/gamma \
             from scratch (uncached) and require the incremental results \
             — values, witnesses and all — to match bit for bit.  Any \
             mismatch makes the run exit 1.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the JSONL trace to $(docv) instead of stdout.")
  in
  let witness_eq (a : Met.witness) (b : Met.witness) =
    a.Met.x = b.Met.x && a.Met.y = b.Met.y && a.Met.z = b.Met.z
    && Int64.equal
         (Int64.bits_of_float a.Met.value)
         (Int64.bits_of_float b.Met.value)
  in
  let run n steps dt (speed_min, speed_max) (pause_min, pause_max) corr_dist
      shadow side seed r env differential out jobs timeout trace profile
      metrics =
    if n < 3 then user_error "--n must be at least 3 (got %d)" n;
    if steps < 0 then user_error "--steps must be non-negative (got %d)" steps;
    if not (dt > 0. && Float.is_finite dt) then
      user_error "--dt must be positive (got %g)" dt;
    if speed_min < 0. || speed_max < speed_min then
      user_error "--speed needs 0 <= MIN <= MAX (got %g,%g)" speed_min
        speed_max;
    if pause_min < 0. || pause_max < pause_min then
      user_error "--pause needs 0 <= MIN <= MAX (got %g,%g)" pause_min
        pause_max;
    if not (corr_dist > 0.) then
      user_error "--corr-dist must be positive (got %g)" corr_dist;
    if shadow < 0. then user_error "--shadow must be non-negative (got %g)" shadow;
    if not (side > 0.) then user_error "--side must be positive (got %g)" side;
    if r < 0. then user_error "--r must be non-negative (got %g)" r;
    let timeout = validate_timeout timeout in
    ignore (apply_jobs jobs);
    apply_obs ~profile trace;
    let cfg =
      {
        Evolve.default with
        n;
        side;
        speed_min;
        speed_max;
        pause_min;
        pause_max;
        dt;
        corr_dist;
        shadow_std_db = shadow;
      }
    in
    let ev =
      or_user_error (fun () ->
          match env with
          | `Geo -> Evolve.create ~name:"evolve" ~seed cfg
          | `Office ->
              let env =
                Core.Radio.Environment.office ~rooms_x:3 ~rooms_y:3
                  ~room_size:(side /. 3.) Core.Radio.Material.drywall
              in
              Core.Radio.Churn.evolve ~name:"evolve" ~seed env cfg)
    in
    let uctx = Core.Decay.Ctx.uncached in
    let r_opt = if r = 0. then None else Some r in
    let oc = match out with None -> stdout | Some p -> open_out p in
    let emit j =
      output_string oc (J.to_string j);
      output_char oc '\n'
    in
    let mismatches = ref 0 in
    let gamma_fields g dg =
      match (g : Incr.gamma_info option) with
      | None -> []
      | Some g ->
          [ ("gamma", J.Num g.Incr.g_value); ("dgamma", J.Num dg) ]
    in
    (* One full uncached recompute; true iff bit-identical to [res]. *)
    let differential_ok (res : Incr.result) space =
      witness_eq res.Incr.zeta (Met.zeta_witness ~ctx:uctx space)
      && witness_eq res.Incr.phi (Met.phi_witness ~ctx:uctx space)
      &&
      match (r_opt, res.Incr.gamma) with
      | None, None -> true
      | Some r, Some g ->
          Int64.equal
            (Int64.bits_of_float g.Incr.g_value)
            (Int64.bits_of_float (Core.Decay.Fading.gamma ~ctx:uctx space ~r))
      | _ -> false
    in
    Fun.protect
      ~finally:(fun () -> if out <> None then close_out oc)
      (fun () ->
        or_user_error (fun () ->
            with_optional_timeout timeout @@ fun () ->
            let inc = Incr.create ~ctx:uctx ?r:r_opt (Evolve.space ev) in
            let res0 = Incr.current inc in
            let zeta0 = res0.Incr.zeta.Met.value
            and phi0 = res0.Incr.phi.Met.value in
            let gamma0 =
              match res0.Incr.gamma with
              | Some g -> g.Incr.g_value
              | None -> 0.
            in
            let step_line s k (res : Incr.result) diff =
              emit
                (J.Obj
                   ([ ("type", J.Str "evolve_step"); ("step", J.Num (float_of_int s));
                      ("dirty", J.Num (float_of_int k));
                      ("zeta", J.Num res.Incr.zeta.Met.value);
                      ("phi", J.Num res.Incr.phi.Met.value) ]
                   @ gamma_fields res.Incr.gamma
                       (match res.Incr.gamma with
                       | Some g -> g.Incr.g_value -. gamma0
                       | None -> 0.)
                   @ [ ("dzeta", J.Num (res.Incr.zeta.Met.value -. zeta0));
                       ("dphi", J.Num (res.Incr.phi.Met.value -. phi0)) ]
                   @
                   match diff with
                   | None -> []
                   | Some ok ->
                       [ ("differential", J.Str (if ok then "ok" else "MISMATCH")) ]))
            in
            let check res space =
              if not differential then None
              else begin
                let ok = differential_ok res space in
                if not ok then incr mismatches;
                Some ok
              end
            in
            step_line 0 0 res0 (check res0 (Evolve.space ev));
            for s = 1 to steps do
              let space, dirty = Evolve.step ev in
              let res = Incr.step inc ~dirty space in
              step_line s (Array.length dirty) res (check res space)
            done;
            let st = Incr.stats inc in
            emit
              (J.Obj
                 [ ("type", J.Str "evolve_summary");
                   ("n", J.Num (float_of_int n));
                   ("steps", J.Num (float_of_int steps));
                   ("seed", J.Num (float_of_int seed));
                   ("dirty_rows", J.Num (float_of_int st.Incr.dirty_nodes));
                   ("pairs_full", J.Num (float_of_int st.Incr.pairs_full));
                   ("pairs_patched", J.Num (float_of_int st.Incr.pairs_patched));
                   ("triples_swept", J.Num (float_of_int st.Incr.triples_swept));
                   ("triples_full_equiv", J.Num (float_of_int st.Incr.triples_full));
                   ("savings_work", J.Num (Incr.savings st));
                   ("gamma_recomputed", J.Num (float_of_int st.Incr.gamma_recomputed));
                   ("gamma_total", J.Num (float_of_int st.Incr.gamma_total));
                   ("differential", J.Bool differential);
                   ("mismatches", J.Num (float_of_int !mismatches)) ])));
    finish_obs metrics;
    if !mismatches > 0 then begin
      Printf.eprintf
        "bg evolve: %d differential mismatch(es) — incremental results \
         differ from full recompute\n%!"
        !mismatches;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "evolve"
       ~doc:
         "Simulate a time-varying decay space (random-waypoint mobility \
          under a correlated shadow-fading field) and maintain \
          zeta/phi/gamma incrementally across the trace, emitting one \
          JSONL line per step plus a summary with the sweep-work \
          savings.  With --differential, every step is checked bit for \
          bit against a full recompute.")
    Term.(
      const run $ nodes_arg $ steps_arg $ dt_arg $ speed_arg $ pause_arg
      $ corr_arg $ shadow_arg $ side_arg $ seed_arg $ r_arg $ env_arg
      $ diff_arg $ out_arg $ jobs_arg $ timeout_arg $ trace_arg
      $ profile_arg $ metrics_arg)

(* ------------------------------------------------------------ capacity *)

let capacity_cmd =
  let algo =
    Arg.(
      value
      & opt
          (enum
             [ ("alg1", Core.Solve.Alg1);
               ("greedy", Core.Solve.Affectance_greedy);
               ("strongest", Core.Solve.Strongest_first);
               ("exact", Core.Solve.Exact) ])
          Core.Solve.Alg1
      & info [ "algo" ] ~docv:"ALGO" ~doc:"alg1 | greedy | strongest | exact.")
  in
  let links =
    Arg.(value & opt int 8 & info [ "links" ] ~docv:"K" ~doc:"Links to sample.")
  in
  let run file algo links seed =
    let space = space_of_file file in
    let zeta = Core.Decay.Metricity.zeta space in
    let inst =
      Core.Sinr.Instance.random_links_in_space ~zeta
        (Core.Prelude.Rng.create seed) ~n_links:links
        ~max_decay:(Core.Decay.Decay_space.max_decay space)
        space
    in
    let chosen = Core.Solve.capacity ~algo inst in
    Printf.printf "space: %s (n=%d, zeta=%.3f)\n"
      (Core.Decay.Decay_space.name space)
      (Core.Decay.Decay_space.n space)
      zeta;
    Printf.printf "algorithm: %s\n" (Core.Solve.capacity_algo_name algo);
    Printf.printf "selected %d / %d links:\n" (List.length chosen) links;
    List.iter
      (fun l ->
        Printf.printf "  link %d: %d -> %d (decay %.4g)\n" l.Core.Sinr.Link.id
          l.Core.Sinr.Link.sender l.Core.Sinr.Link.receiver
          (Core.Sinr.Link.self_decay space l))
      chosen;
    let feasible =
      Core.Sinr.Feasibility.is_feasible inst (Core.Sinr.Power.uniform 1.) chosen
    in
    Printf.printf "feasible: %b\n" feasible
  in
  Cmd.v
    (Cmd.info "capacity"
       ~doc:"Sample links in a decay matrix and run a capacity algorithm.")
    Term.(const run $ file_arg $ algo $ links $ seed_arg)

(* ---------------------------------------------------------- experiment *)

let experiment_cmd =
  (* Advertise the actual registered range rather than a hard-coded one. *)
  let id_range =
    match Bg_experiments.Registry.all with
    | [] -> "none registered"
    | first :: rest ->
        let last = List.fold_left (fun _ e -> e) first rest in
        Printf.sprintf "%s through %s" first.Bg_experiments.Registry.id
          last.Bg_experiments.Registry.id
  in
  let ids =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"ID"
          ~doc:(Printf.sprintf "Experiment ids, %s (or 'all')." id_range))
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"K"
          ~doc:
            "Retry a crashing experiment up to K times with exponential \
             backoff before recording it as CRASH.")
  in
  let run ids jobs timeout retries trace profile metrics =
    ignore (apply_jobs jobs);
    let timeout = validate_timeout timeout in
    let retries = validate_retries retries in
    apply_obs ~profile trace;
    let entries =
      if List.exists (fun s -> String.lowercase_ascii s = "all") ids then
        Bg_experiments.Registry.all
      else
        List.map
          (fun id ->
            match Bg_experiments.Registry.find id with
            | Some e -> e
            | None -> user_error "unknown experiment: %s" id)
          ids
    in
    (* Each experiment runs isolated: a crash or an exceeded budget becomes
       a CRASH/TIMEOUT row, the rest of the list still runs, and the exit
       code reflects every outcome. *)
    let timeout_s = if timeout > 0. then Some timeout else None in
    let results =
      Bg_experiments.Isolate.run_entries ?timeout_s ~retries entries
    in
    Bg_experiments.Isolate.print_results results;
    finish_obs metrics;
    let code = Bg_experiments.Isolate.exit_code results in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:
         "Run paper-claim experiments, each isolated so one crash or \
          timeout cannot lose the rest of the run.")
    Term.(
      const run $ ids $ jobs_arg $ timeout_arg $ retries_arg $ trace_arg
      $ profile_arg $ metrics_arg)

(* ---------------------------------------------------------------- stats *)

let stats_cmd =
  let run file =
    let space = space_of_file file in
    let s = Core.Decay.Statistics.summarize space in
    let t =
      Core.Prelude.Table.create
        ~title:("decay statistics: " ^ Core.Decay.Decay_space.name space)
        [ "statistic"; "value" ]
    in
    let open Core.Prelude.Table in
    add_row t [ S "nodes"; I s.Core.Decay.Statistics.n ];
    add_row t [ S "min decay (dB)"; F2 s.Core.Decay.Statistics.min_db ];
    add_row t [ S "median decay (dB)"; F2 s.Core.Decay.Statistics.median_db ];
    add_row t [ S "max decay (dB)"; F2 s.Core.Decay.Statistics.max_db ];
    add_row t
      [ S "dynamic range (dB)"; F2 s.Core.Decay.Statistics.dynamic_range_db ];
    add_row t [ S "worst asymmetry (dB)"; F2 s.Core.Decay.Statistics.asymmetry_db ];
    add_row t
      [ S "zeta upper bound";
        F2 (Core.Decay.Metricity.zeta_upper_bound space) ];
    print t
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print measurement-style statistics of a decay matrix.")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------ protocols *)

let protocols_cmd =
  let radius_pct =
    Arg.(
      value & opt float 25.
      & info [ "radius-percentile" ] ~docv:"P"
          ~doc:"Neighbourhood radius as a percentile of the decays.")
  in
  let run file radius_pct seed =
    let space = space_of_file file in
    let decays =
      Core.Decay.Statistics.decays_db space
      |> Array.map (fun db -> 10. ** (db /. 10.))
    in
    let radius = Core.Prelude.Stats.percentile decays radius_pct in
    let rng = Core.Prelude.Rng.create seed in
    Printf.printf "space: %s (n=%d), neighbourhood radius: decay <= %.4g\n\n"
      (Core.Decay.Decay_space.name space)
      (Core.Decay.Decay_space.n space)
      radius;
    let t =
      Core.Prelude.Table.create ~title:"distributed protocol suite"
        [ "protocol"; "rounds"; "outcome" ]
    in
    let open Core.Prelude.Table in
    let bc = Core.Distrib.Broadcast.run rng space ~source:0 ~radius in
    add_row t
      [ S "broadcast (from node 0)"; I bc.Core.Distrib.Broadcast.rounds;
        S (Printf.sprintf "informed %d" bc.Core.Distrib.Broadcast.informed) ];
    let lb = Core.Distrib.Local_broadcast.run rng space ~radius in
    add_row t
      [ S "local broadcast"; I lb.Core.Distrib.Local_broadcast.rounds;
        S (Printf.sprintf "%d/%d pairs" lb.Core.Distrib.Local_broadcast.deliveries
             lb.Core.Distrib.Local_broadcast.pairs) ];
    let col = Core.Distrib.Coloring.run rng space ~radius in
    add_row t
      [ S "coloring"; I col.Core.Distrib.Coloring.rounds;
        S (Printf.sprintf "%d colors, proper: %b" col.Core.Distrib.Coloring.palette
             col.Core.Distrib.Coloring.proper) ];
    let dom = Core.Distrib.Dominating_set.run rng space ~radius in
    add_row t
      [ S "dominating set"; I dom.Core.Distrib.Dominating_set.rounds;
        S (Printf.sprintf "%d leaders, dominating: %b"
             (List.length dom.Core.Distrib.Dominating_set.leaders)
             dom.Core.Distrib.Dominating_set.dominating) ];
    print t
  in
  Cmd.v
    (Cmd.info "protocols"
       ~doc:"Run the distributed protocol suite on a decay matrix.")
    Term.(const run $ file_arg $ radius_pct $ seed_arg)

(* ---------------------------------------------------------------- bench *)

let bench_cmd =
  let kernels_only_arg =
    Arg.(
      value & flag
      & info [ "kernels-only" ]
          ~doc:
            "Run only the kernel benchmark (currently the default and only \
             suite of this subcommand; the flag exists so the invocation \
             documented in EXPERIMENTS.md stays stable if more suites are \
             added).")
  in
  let max_n_arg =
    Arg.(
      value & opt int 512
      & info [ "kernels-max-n" ] ~docv:"N"
          ~doc:"Largest decay-space size the kernel benchmark sweeps.")
  in
  let json_arg =
    Arg.(
      value
      & opt string "BENCH_kernels.json"
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Where to write the machine-readable results.")
  in
  let record_arg =
    Arg.(
      value & flag
      & info [ "record" ]
          ~doc:
            "Run the perf-regression suite (mean/stddev over --reps \
             repetitions) and append one sample line — git sha, jobs, \
             per-benchmark mean/stddev — to the history file (see \
             --history).")
  in
  let history_arg =
    Arg.(
      value
      & opt string "BENCH_history.jsonl"
      & info [ "history" ] ~docv:"FILE"
          ~doc:"Where --record appends its JSONL history line.")
  in
  let check_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "check" ] ~docv:"BASELINE"
          ~doc:
            "Run the perf-regression suite and compare against the \
             baselines in $(docv) (e.g. bench/baselines.json). \
             Noise-aware: a benchmark regresses only beyond \
             max(3 sigma, 15%) of its baseline mean (soft, exit 3); \
             beyond max(3 sigma, 50%) it is a hard regression (exit 4).")
  in
  let write_baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "write-baseline" ] ~docv:"FILE"
          ~doc:
            "Run the perf-regression suite and write its samples as a \
             fresh baselines file for later --check runs.")
  in
  let reps_arg =
    Arg.(
      value & opt int 5
      & info [ "reps" ] ~docv:"N"
          ~doc:"Repetitions per benchmark for the regression suite.")
  in
  let large_arg =
    Arg.(
      value & flag
      & info [ "large" ]
          ~doc:
            "Include the large-n smoke entries in the regression suite:              exact zeta and phi sweeps at n = 2048 over the ambient pool.              Each sweep takes seconds, so this is opt-in; the gate treats              the extra entries like any other benchmark (a baseline              without them simply passes them).")
  in
  let evolve_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "evolve" ] ~docv:"FILE"
          ~doc:
            "Run the incremental-vs-full report instead: one \
             Incremental.step over k dirty rows (k in {1, 8, 64}) of an \
             n-node space against a full uncached zeta+phi recompute, \
             with wall times and the engine's own sweep-work counters. \
             Writes the JSON report to $(docv) (e.g. BENCH_evolve.json).")
  in
  let evolve_n_arg =
    Arg.(
      value & opt int 512
      & info [ "evolve-n" ] ~docv:"N"
          ~doc:"Space size for the --evolve report.")
  in
  let run kernels_only max_n json jobs record history check write_baseline
      reps large evolve evolve_n trace profile metrics =
    ignore kernels_only;
    ignore (apply_jobs jobs);
    apply_obs ~profile trace;
    match evolve with
    | Some path ->
        if evolve_n < 3 then user_error "--evolve-n must be at least 3";
        let cases =
          or_user_error (fun () ->
              Benchkit.Regress.write_evolve_report ~n:evolve_n path)
        in
        Printf.printf "evolve report written to %s\n%!" path;
        finish_obs metrics;
        (* The O(k n^2) claim is the point of the report: fail loudly if
           the smallest-k case does not clear a 5x work saving. *)
        (match cases with
        | c :: _ when c.Benchkit.Regress.e_savings < 5. ->
            Printf.eprintf
              "bg bench --evolve: k=%d work savings %.1fx below the 5x bar\n%!"
              c.Benchkit.Regress.e_k c.Benchkit.Regress.e_savings;
            exit 4
        | _ -> ())
    | None ->
    if record || check <> None || write_baseline <> None then begin
      (* The regression gate: one suite run serves --record, --check and
         --write-baseline in any combination. *)
      let samples =
        or_user_error (fun () -> Benchkit.Regress.run_suite ~reps ~large ())
      in
      Core.Prelude.Table.print
        (Benchkit.Regress.samples_table ~title:"perf-regression suite"
           samples);
      if record then begin
        or_user_error (fun () ->
            Benchkit.Regress.append_history ~path:history samples);
        Printf.printf "bench history appended to %s\n%!" history
      end;
      Option.iter
        (fun path ->
          or_user_error (fun () ->
              Benchkit.Regress.write_baselines path samples);
          Printf.printf "baselines written to %s\n%!" path)
        write_baseline;
      match check with
      | None -> finish_obs metrics
      | Some baseline_path ->
          let rows =
            or_user_error (fun () ->
                Benchkit.Regress.compare_samples
                  ~baseline:(Benchkit.Regress.load_baselines baseline_path)
                  ~current:samples)
          in
          Core.Prelude.Table.print (Benchkit.Regress.check_table rows);
          finish_obs metrics;
          let v = Benchkit.Regress.overall rows in
          (match v with
          | Benchkit.Regress.Pass -> ()
          | v ->
              Printf.eprintf "bg bench --check: %s against %s\n%!"
                (Benchkit.Regress.verdict_name v)
                baseline_path);
          exit (Benchkit.Regress.exit_code v)
    end
    else begin
      or_user_error (fun () -> Benchkit.Kernels.run ~max_n ~json_path:json ());
      finish_obs metrics
    end
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the flat log-domain kernel benchmark (naive vs optimized \
          zeta sweep, pruning hit-rates, cache behaviour, disabled-span \
          overhead) and record BENCH_kernels.json; or, with \
          --record/--check/--write-baseline, run the perf-regression \
          suite against committed baselines.")
    Term.(
      const run $ kernels_only_arg $ max_n_arg $ json_arg $ jobs_arg
      $ record_arg $ history_arg $ check_arg $ write_baseline_arg $ reps_arg
      $ large_arg $ evolve_arg $ evolve_n_arg $ trace_arg $ profile_arg
      $ metrics_arg)

(* ------------------------------------------------------------- estimate *)

let estimate_cmd =
  let module Est = Core.Decay.Estimators in
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "Decay matrix: CSV, or the raw binary format written by \
             Decay_io.save_raw (detected by its magic tag and \
             memory-mapped, so matrices far larger than RAM work).")
  in
  let kernel_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("zeta", `Zeta); ("phi", `Phi); ("gamma", `Gamma);
               ("zeta-triples", `Triples) ])
          `Zeta
      & info [ "kernel" ] ~docv:"K"
          ~doc:
            "Quantity to estimate: zeta / phi (sub-space replicates), \
             gamma (listener sampling; needs --r), or zeta-triples \
             (triple sampling).")
  in
  let nodes_arg =
    Arg.(
      value & opt int 48
      & info [ "nodes" ] ~docv:"K"
          ~doc:
            "Sub-space size per replicate (zeta/phi) or listeners per \
             replicate (gamma).")
  in
  let replicates_arg =
    Arg.(
      value & opt int 8
      & info [ "replicates" ] ~docv:"N" ~doc:"Replicates per estimate.")
  in
  let confidence_arg =
    Arg.(
      value & opt float 0.9
      & info [ "confidence" ] ~docv:"C"
          ~doc:"Nominal coverage of the reported interval, in (0, 1).")
  in
  let samples_arg =
    Arg.(
      value & opt int 20_000
      & info [ "samples" ] ~docv:"N"
          ~doc:"Total sampled triples (zeta-triples only).")
  in
  let r_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "r" ] ~docv:"R" ~doc:"Separation for gamma.")
  in
  let est_seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Random seed; equal seeds reproduce the estimate bit-for-bit \
             at every job count.")
  in
  (* Sniff the 8-byte magic: raw matrices are mmapped (out-of-core), CSV
     goes through the strict parser. *)
  let is_raw path =
    match In_channel.with_open_bin path (fun ic -> really_input_string ic 8) with
    | magic -> magic = "BGDECAY1"
    | exception End_of_file -> false
  in
  let load path =
    or_user_error (fun () ->
        if is_raw path then Core.Decay.Decay_io.load_raw_mmap path
        else Core.Decay.Decay_io.load path)
  in
  let run file kernel nodes replicates confidence samples r seed jobs trace
      profile metrics =
    let jobs = apply_jobs jobs in
    apply_obs ~profile trace;
    let space = load file in
    let o = Est.of_space space in
    let ctx = Core.Decay.Ctx.make ~jobs () in
    let rng = Core.Prelude.Rng.create seed in
    let name, e =
      or_user_error (fun () ->
          match kernel with
          | `Zeta -> ("zeta", Est.zeta ~ctx ~replicates ~confidence ~nodes rng o)
          | `Phi -> ("phi", Est.phi ~ctx ~replicates ~confidence ~nodes rng o)
          | `Triples ->
              ( "zeta",
                Est.zeta_triples ~replicates ~confidence ~samples rng o )
          | `Gamma -> (
              match r with
              | None -> user_error "--kernel gamma requires --r R"
              | Some r ->
                  ( Printf.sprintf "gamma(r = %g)" r,
                    Est.gamma ~ctx ~replicates ~confidence
                      ~listeners:nodes rng o ~r )))
    in
    Format.printf "%s >= %a  (n = %d, seed %d)@."
      name Est.pp_estimate e (Core.Decay.Decay_space.n space) seed;
    finish_obs metrics
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:
         "Estimate zeta, phi or gamma of a large decay matrix by \
          stratified sampling, with a certified lower bound and a \
          confidence interval — for sizes where the exact cubic kernels \
          of `bg analyze` are out of reach.  Raw binary matrices are \
          memory-mapped, so memory stays bounded regardless of n.")
    Term.(
      const run $ file_arg $ kernel_arg $ nodes_arg $ replicates_arg
      $ confidence_arg $ samples_arg $ r_arg $ est_seed_arg $ jobs_arg
      $ trace_arg $ profile_arg $ metrics_arg)

(* ---------------------------------------------------------------- trace *)

(* Offline consumers of --trace files: aggregate report, flame output,
   regression diff.  All parse/IO failures are clean exit-2 errors. *)

let trace_pos_arg ~at ~docv =
  Arg.(
    required
    & pos at (some file) None
    & info [] ~docv ~doc:"JSONL trace file (written by --trace FILE).")

let trace_files_arg =
  Arg.(
    non_empty & pos_all file []
    & info [] ~docv:"TRACE"
        ~doc:
          "JSONL trace file(s) (written by --trace FILE). Several files \
           — e.g. a loadgen client trace plus the daemon's — are merged \
           into one causal forest: span ids are remapped per process \
           and server spans re-parent under the client span whose id \
           rode the wire.")

let load_spans path =
  or_user_error (fun () ->
      let spans = Obs_tools.Trace.load path in
      if spans = [] then
        user_error "%s: no span events (is this a --trace file?)" path;
      spans)

let load_merged = function
  | [ path ] -> load_spans path
  | paths -> Obs_tools.Trace.merge (List.map load_spans paths)

let trace_report_cmd =
  let id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "id" ] ~docv:"TRACE_ID"
          ~doc:
            "Show one logical request's causal tree instead of the \
             aggregate: every span tagged with $(docv) (a loadgen p99 \
             exemplar, a client.request trace id) plus its descendants, \
             indented in start order.")
  in
  let run paths id =
    let spans = load_merged paths in
    match id with
    | Some tid ->
        let sub = Obs_tools.Trace.filter_trace ~id:tid spans in
        if sub = [] then
          user_error "trace id %s not found in %s" tid
            (String.concat ", " paths);
        Core.Prelude.Table.print
          (Obs_tools.Trace.tree_table
             ~title:(Printf.sprintf "causal tree: %s" tid)
             sub)
    | None ->
        Core.Prelude.Table.print
          (Obs_tools.Trace.report_table
             ~title:
               (Printf.sprintf "trace report: %s" (String.concat " + " paths))
             spans);
        Core.Prelude.Table.print (Obs_tools.Trace.critical_path_table spans)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Aggregate JSONL trace(s) into a per-span-kind table (count, \
          total/self/child wall time, allocation when recorded with \
          --profile, p50/p99 from log2 buckets) plus the critical path \
          of the slowest experiment. Multiple files merge into one \
          cross-process forest; --id renders a single request's causal \
          tree.")
    Term.(const run $ trace_files_arg $ id_arg)

let trace_flame_cmd =
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("folded", `Folded); ("speedscope", `Speedscope) ]) `Folded
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: folded (flamegraph.pl-compatible folded \
             stacks, self time in microseconds) or speedscope (evented \
             JSON profile, one per domain, for speedscope.app).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write to $(docv) instead of stdout.")
  in
  let run paths format out =
    let spans = load_merged paths in
    let name =
      String.concat "+" (List.map Filename.basename paths)
    in
    let text =
      match format with
      | `Folded -> Obs_tools.Trace.folded_to_string spans
      | `Speedscope -> Obs_tools.Trace.speedscope ~name spans ^ "\n"
    in
    match out with
    | None -> print_string text
    | Some f ->
        or_user_error (fun () ->
            Out_channel.with_open_text f (fun oc ->
                Out_channel.output_string oc text))
  in
  Cmd.v
    (Cmd.info "flame"
       ~doc:
         "Render JSONL trace(s) (merged when several) as folded stacks \
          (flamegraph.pl) or a speedscope profile.")
    Term.(const run $ trace_files_arg $ format_arg $ out_arg)

let trace_diff_cmd =
  let run old_path new_path =
    let old_spans = load_spans old_path and new_spans = load_spans new_path in
    (* Disjoint kind sets mean the traces describe different programs —
       a diff would be all "new"/"gone" noise; refuse cleanly. *)
    let new_kinds = Obs_tools.Trace.kinds new_spans in
    if
      not
        (List.exists
           (fun k -> List.mem k new_kinds)
           (Obs_tools.Trace.kinds old_spans))
    then
      user_error "%s and %s share no span kinds — nothing to compare"
        old_path new_path;
    Core.Prelude.Table.print
      (Obs_tools.Trace.diff_table ~old_spans ~new_spans)
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Per-span-kind regression table between two traces of the same \
          workload: count and total-time deltas, worst regressions \
          first.")
    Term.(
      const run
      $ trace_pos_arg ~at:0 ~docv:"OLD"
      $ trace_pos_arg ~at:1 ~docv:"NEW")

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:
         "Analyze observability traces offline: aggregate report, flame \
          output (folded stacks / speedscope), and trace-vs-trace \
          regression diff.")
    [ trace_report_cmd; trace_flame_cmd; trace_diff_cmd ]

(* ---------------------------------------------------------------- serve *)

let batch_size_arg =
  Arg.(
    value & opt int 32
    & info [ "batch-size" ] ~docv:"N"
        ~doc:"Requests taken per batch; duplicates within a batch coalesce.")

let max_queue_arg =
  Arg.(
    value & opt int 256
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "Admission bound: requests arriving at a full queue are answered \
           immediately with a typed 'rejected' response.")

let cache_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"FILE"
        ~doc:
          "Persist the result cache to $(docv) (a JSONL snapshot, written \
           atomically). Loaded on startup, so a restarted daemon answers \
           repeated requests from disk instead of recomputing.")

let cache_entries_arg =
  Arg.(
    value & opt int 4096
    & info [ "cache-entries" ] ~docv:"N"
        ~doc:"Result-cache capacity; least recently used entries evict.")

let request_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "request-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget per computed request; an overrun answers a \
           typed error instead of stalling the batch pipeline.")

let chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"SPEC"
        ~doc:
          "Seeded fault injection (testing only): a comma-separated spec \
           of torn=P, drop=P, corrupt=P, stall=P:SECONDS and \
           crash=POINT:N clauses (POINT one of mid-batch, pre-snapshot, \
           mid-snapshot). Equal spec and --chaos-seed replay identical \
           fault schedules.")

let chaos_seed_arg =
  Arg.(
    value & opt int 0
    & info [ "chaos-seed" ] ~docv:"N"
        ~doc:"Seed for the --chaos fault schedule.")

let degrade_watermark_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "degrade-watermark" ] ~docv:"N"
        ~doc:
          "Enable degraded mode: when the backlog behind a batch reaches \
           $(docv), cache-missing zeta/phi/gamma requests are answered \
           from the estimator tier (tagged degraded:true, with a \
           confidence interval) instead of waiting for exact sweeps.")

let degrade_above_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "degrade-above" ] ~docv:"N"
        ~doc:
          "Enable degraded mode for big spaces: requests on spaces with \
           at least $(docv) nodes always answer from the estimator tier.")

(* Validate the serve flag set up front (exit 2, before any daemon or
   store side effects) and return the builders the two modes share:
   [make_chaos] and [make_config] — --supervise must validate without
   opening the store in the parent. *)
let serve_settings ~batch_size ~max_queue ~cache ~cache_entries
    ~request_timeout ~chaos ~chaos_seed ~degrade_watermark ~degrade_above
    ~slo ~telemetry ~telemetry_interval =
  if batch_size < 1 then
    user_error "--batch-size must be at least 1 (got %d)" batch_size;
  if max_queue < 1 then
    user_error "--max-queue must be at least 1 (got %d)" max_queue;
  if cache_entries < 1 then
    user_error "--cache-entries must be at least 1 (got %d)" cache_entries;
  (match request_timeout with
  | Some t when not (t > 0.) ->
      user_error "--request-timeout must be positive (got %g)" t
  | _ -> ());
  let chaos_spec =
    match chaos with
    | None -> None
    | Some text -> (
        match Bg_serve.Chaos.parse text with
        | Ok spec -> Some spec
        | Error msg -> user_error "--chaos: %s" msg)
  in
  (match degrade_watermark with
  | Some w when w < 1 ->
      user_error "--degrade-watermark must be at least 1 (got %d)" w
  | _ -> ());
  (match degrade_above with
  | Some n when n < 3 -> user_error "--degrade-above must be at least 3 (got %d)" n
  | _ -> ());
  let degrade =
    match (degrade_watermark, degrade_above) with
    | None, None -> None
    | w, a ->
        let d = Bg_serve.Server.default_degrade in
        Some
          {
            d with
            Bg_serve.Server.queue_watermark =
              Option.value w ~default:d.Bg_serve.Server.queue_watermark;
            big_n = Option.value a ~default:d.Bg_serve.Server.big_n;
          }
  in
  let slo_spec =
    match slo with
    | None -> None
    | Some text -> (
        match Bg_serve.Slo.parse_spec text with
        | Ok spec -> Some spec
        | Error msg -> user_error "--slo: %s" msg)
  in
  if not (telemetry_interval > 0.) then
    user_error "--telemetry-interval must be positive (got %g)"
      telemetry_interval;
  let make_chaos () =
    Option.map
      (fun spec -> Bg_serve.Chaos.create ~seed:chaos_seed spec)
      chaos_spec
  in
  let make_config ~jobs () =
    let chaos = make_chaos () in
    let store =
      Bg_serve.Store.open_ ~max_entries:cache_entries ?path:cache ?chaos ()
    in
    let telemetry =
      Option.map
        (fun path ->
          try Bg_serve.Telemetry.create ~interval_s:telemetry_interval path
          with Sys_error msg ->
            user_error "cannot open telemetry file: %s" msg)
        telemetry
    in
    (* A supervised worker learns its lineage from the environment the
       supervisor exported before the spawn. *)
    let lineage =
      Option.map
        (fun (restarts, supervisor_started_s, prior_uptime_s) ->
          { Bg_serve.Server.restarts; supervisor_started_s; prior_uptime_s })
        (Bg_serve.Supervisor.read_lineage ())
    in
    {
      Bg_serve.Server.ctx = Core.Decay.Ctx.make ~jobs ();
      batch_size;
      max_queue;
      request_timeout_s = request_timeout;
      store = Some store;
      degrade;
      chaos;
      slo = Option.map (fun spec -> Bg_serve.Slo.create spec) slo_spec;
      telemetry;
      lineage;
    }
  in
  make_config

(* The stats summary goes to stderr: in stdio mode stdout carries the
   response stream and must stay clean JSONL. *)
let print_serve_summary (st : Bg_serve.Server.stats) =
  let module Obs = Core.Prelude.Obs in
  let h = Obs.histogram "serve.latency_s" in
  Printf.eprintf
    "bg serve: %d accepted, %d rejected, %d errors | %d computed, %d \
     cache hits, %d coalesced, %d degraded | %d batches, peak queue %d | \
     latency p50 %.4gs p99 %.4gs\n\
     %!"
    st.accepted st.rejected st.failed st.computed st.store_hits st.coalesced
    st.degraded st.batches st.peak_queue
    (Obs.histogram_quantile h 0.50)
    (Obs.histogram_quantile h 0.99)

let serve_slo_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "slo" ] ~docv:"SPEC"
        ~doc:
          "Track service-level objectives over a sliding window: a \
           comma-separated spec of latency-quantile bounds (p99<=0.05, \
           seconds) and error-rate bounds (err<=1%). Burn rates and a \
           health verdict are reported by every ping/metrics reply.")

let telemetry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:
          "Append periodic metric snapshots (counter/gauge/histogram \
           values and deltas) to $(docv) as a bounded JSONL ring. `bg \
           top --telemetry` tails it; `bg slo` replays it against an \
           SLO spec. Append-mode, so supervised respawns continue one \
           ring.")

let telemetry_interval_arg =
  Arg.(
    value & opt float 1.
    & info [ "telemetry-interval" ] ~docv:"SECONDS"
        ~doc:"Seconds between --telemetry snapshots.")

let trace_append_arg =
  Arg.(
    value & flag
    & info [ "trace-append" ]
        ~doc:
          "With --trace: append to the file instead of truncating it \
           (used by --supervise so every worker incarnation lands in \
           one file; span ids stay unambiguous because `bg trace` \
           remaps per process on merge).")

let supervise_arg =
  Arg.(
    value & flag
    & info [ "supervise" ]
        ~doc:
          "Run the daemon under a supervisor that respawns it after a \
           crash (capped exponential backoff). The worker inherits the \
           supervisor's stdio, so clients keep their pipes across \
           restarts; the WAL-backed --cache preserves every journaled \
           answer. Supervision ends on a clean exit or a usage error.")

let serve_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv) (any number of \
             concurrent clients) instead of stdin/stdout.")
  in
  let max_requests_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-requests" ] ~docv:"N"
          ~doc:
            "Socket mode: stop after answering $(docv) requests (smoke \
             tests and bounded sessions).")
  in
  let run socket max_requests batch_size max_queue cache cache_entries
      request_timeout chaos chaos_seed degrade_watermark degrade_above slo
      telemetry telemetry_interval trace_append supervise jobs trace profile
      metrics =
    let jobs = apply_jobs jobs in
    (match max_requests with
    | Some n when n < 1 ->
        user_error "--max-requests must be at least 1 (got %d)" n
    | _ -> ());
    let make_config =
      serve_settings ~batch_size ~max_queue ~cache ~cache_entries
        ~request_timeout ~chaos ~chaos_seed ~degrade_watermark ~degrade_above
        ~slo ~telemetry ~telemetry_interval
    in
    if supervise then begin
      (* Validation already ran above; the worker re-runs it cheaply.
         The store opens in the worker only, so each incarnation replays
         the WAL itself.  The workers also own the trace file — the
         supervisor truncates it exactly once here and hands the workers
         --trace-append, so one supervised run (however many respawns)
         yields one mergeable file. *)
      Option.iter
        (fun path ->
          try Out_channel.with_open_bin path (fun _ -> ())
          with Sys_error msg -> user_error "cannot open trace file: %s" msg)
        trace;
      let argv =
        Array.of_list
          ([ Sys.executable_name; "serve"; "--batch-size";
             string_of_int batch_size; "--max-queue";
             string_of_int max_queue; "--cache-entries";
             string_of_int cache_entries; "--jobs"; string_of_int jobs ]
          @ (match cache with Some f -> [ "--cache"; f ] | None -> [])
          @ (match request_timeout with
            | Some t -> [ "--request-timeout"; string_of_float t ]
            | None -> [])
          @ (match chaos with
            | Some s ->
                [ "--chaos"; s; "--chaos-seed"; string_of_int chaos_seed ]
            | None -> [])
          @ (match degrade_watermark with
            | Some w -> [ "--degrade-watermark"; string_of_int w ]
            | None -> [])
          @ (match degrade_above with
            | Some n -> [ "--degrade-above"; string_of_int n ]
            | None -> [])
          @ (match slo with Some s -> [ "--slo"; s ] | None -> [])
          @ (match telemetry with
            | Some f ->
                [ "--telemetry"; f; "--telemetry-interval";
                  string_of_float telemetry_interval ]
            | None -> [])
          @ (match trace with
            | Some f ->
                [ "--trace"; f; "--trace-append" ]
                @ (if profile then [ "--profile" ] else [])
            | None -> [])
          @ (match socket with Some p -> [ "--socket"; p ] | None -> [])
          @ (match max_requests with
            | Some n -> [ "--max-requests"; string_of_int n ]
            | None -> []))
      in
      let outcome = or_user_error (fun () -> Bg_serve.Supervisor.run argv) in
      Printf.eprintf "bg serve: supervisor exiting after %d restart(s)\n%!"
        outcome.Bg_serve.Supervisor.restarts;
      match outcome.Bg_serve.Supervisor.final_status with
      | Unix.WEXITED 0 -> finish_obs metrics
      | Unix.WEXITED c -> exit c
      | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> exit 1
    end
    else begin
      apply_obs ~profile ~append:trace_append trace;
      let config = make_config ~jobs () in
      let stats =
        or_user_error (fun () ->
            match socket with
            | None -> Bg_serve.Server.serve_stdio config
            | Some path ->
                Bg_serve.Server.serve_socket ?max_requests config path)
      in
      print_serve_summary stats;
      finish_obs metrics
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the batched analysis daemon: JSONL requests (zeta, phi, \
          gamma, summarize, estimate, ping) on stdin or a Unix socket, \
          JSONL responses out. Requests pass a bounded admission queue \
          (overload gets a typed rejection), batch-mates with the same \
          space digest coalesce onto one computation, and results land \
          in a crash-safe cache (WAL + snapshot) that persists across \
          restarts with --cache. Under load or on huge spaces, \
          --degrade-watermark/--degrade-above answer from the estimator \
          tier instead of shedding; --chaos injects seeded faults for \
          resilience testing; --supervise restarts a crashed daemon. \
          Observability: the metrics wire op answers a full registry \
          scrape at admission, --slo tracks latency/error objectives \
          with burn rates in every ping, --telemetry appends periodic \
          snapshot deltas for `bg top` / `bg slo`, and --trace records \
          spans that `bg trace report` merges with client traces into \
          per-request causal trees.")
    Term.(
      const run $ socket_arg $ max_requests_arg $ batch_size_arg
      $ max_queue_arg $ cache_file_arg $ cache_entries_arg
      $ request_timeout_arg $ chaos_arg $ chaos_seed_arg
      $ degrade_watermark_arg $ degrade_above_arg $ serve_slo_arg
      $ telemetry_arg $ telemetry_interval_arg $ trace_append_arg
      $ supervise_arg $ jobs_arg $ trace_arg $ profile_arg $ metrics_arg)

(* -------------------------------------------------------------- loadgen *)

let loadgen_cmd =
  let module L = Bg_serve.Loadgen in
  let requests_arg =
    Arg.(
      value & opt int L.default_workload.requests
      & info [ "requests" ] ~docv:"N" ~doc:"Total requests in the trace.")
  in
  let spaces_arg =
    Arg.(
      value & opt int L.default_workload.spaces
      & info [ "spaces" ] ~docv:"N" ~doc:"Distinct decay spaces in the pool.")
  in
  let lg_nodes_arg =
    Arg.(
      value & opt int L.default_workload.nodes
      & info [ "nodes" ] ~docv:"N" ~doc:"Nodes per generated space.")
  in
  let zipf_arg =
    Arg.(
      value & opt float L.default_workload.zipf_s
      & info [ "zipf" ] ~docv:"S"
          ~doc:
            "Skew of the space-popularity law (0 = uniform; larger \
             values concentrate the trace on a few hot spaces).")
  in
  let window_arg =
    Arg.(
      value & opt int 32
      & info [ "window" ] ~docv:"N"
          ~doc:"Closed-loop concurrency: requests in flight at once.")
  in
  let rate_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ] ~docv:"RPS"
          ~doc:
            "Open-loop cap: issue requests no faster than $(docv) per \
             second, even when the window has room.")
  in
  let json_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the machine-readable report (workload + results).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-request deadline: attempts unanswered after $(docv) \
             seconds are re-sent with jittered exponential backoff \
             (requests are idempotent by cache key, so retries are safe).")
  in
  let client_retries_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "client-retries" ] ~docv:"N"
          ~doc:
            "Retry budget per request beyond the first attempt; \
             exhausted requests are reported as given up.")
  in
  let lg_slo_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "slo" ] ~docv:"SPEC"
          ~doc:
            "Score the finished run against service-level objectives \
             (same grammar as `bg serve --slo`, e.g. p99<=0.05,err<=1%). \
             Requests that gave up count as failures. A violated \
             objective makes the run exit 3.")
  in
  let serve_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "serve-trace" ] ~docv:"FILE"
          ~doc:
            "Pass --trace $(docv) to the spawned daemon, so the run \
             leaves a server-side span file; together with this \
             command's own --trace (the client side), `bg trace report \
             FILE1 FILE2` merges them into per-request causal trees.")
  in
  let run requests spaces nodes zipf seed window rate json deadline
      client_retries slo serve_trace chaos chaos_seed supervise batch_size
      max_queue cache cache_entries request_timeout jobs trace profile
      metrics =
    apply_obs ~profile trace;
    let slo_spec =
      Option.map
        (fun text ->
          match Bg_serve.Slo.parse_spec text with
          | Ok spec -> spec
          | Error msg -> user_error "--slo: %s" msg)
        slo
    in
    if requests < 1 then
      user_error "--requests must be at least 1 (got %d)" requests;
    if spaces < 1 then user_error "--spaces must be at least 1 (got %d)" spaces;
    if nodes < 1 then user_error "--nodes must be at least 1 (got %d)" nodes;
    if window < 1 then user_error "--window must be at least 1 (got %d)" window;
    (match rate with
    | Some r when not (r > 0.) -> user_error "--rate must be positive (got %g)" r
    | _ -> ());
    (match jobs with
    | Some j when j < 1 -> user_error "--jobs must be at least 1 (got %d)" j
    | _ -> ());
    (match deadline with
    | Some d when not (d > 0.) ->
        user_error "--deadline must be positive (got %g)" d
    | _ -> ());
    (match client_retries with
    | Some n when n < 0 ->
        user_error "--client-retries must be nonnegative (got %d)" n
    | _ -> ());
    (* Parse the chaos spec here too: a bad spec should be this
       command's exit-2, not a cryptic child death mid-run. *)
    (match chaos with
    | Some text -> (
        match Bg_serve.Chaos.parse text with
        | Ok _ -> ()
        | Error msg -> user_error "--chaos: %s" msg)
    | None -> ());
    let client =
      match (deadline, client_retries) with
      | None, None -> None
      | d, r ->
          let c = Bg_serve.Client.default_config in
          let config =
            {
              c with
              Bg_serve.Client.deadline_s =
                (match d with
                | Some _ -> d
                | None -> c.Bg_serve.Client.deadline_s);
              max_retries = Option.value r ~default:c.Bg_serve.Client.max_retries;
            }
          in
          Some (Bg_serve.Client.create ~config ~seed ())
    in
    let workload = { L.seed; requests; spaces; nodes; zipf_s = zipf } in
    let trace_reqs = or_user_error (fun () -> L.generate workload) in
    (* The daemon under test is this very binary: loadgen spawns
       `bg serve` over pipes, so the benchmark measures the real wire
       path (parse, admission, batching, store) end to end. *)
    let argv =
      Array.of_list
        ([ Sys.executable_name; "serve"; "--batch-size";
           string_of_int batch_size; "--max-queue"; string_of_int max_queue;
           "--cache-entries"; string_of_int cache_entries ]
        @ (match cache with Some f -> [ "--cache"; f ] | None -> [])
        @ (match request_timeout with
          | Some t -> [ "--request-timeout"; string_of_float t ]
          | None -> [])
        @ (match jobs with
          | Some j -> [ "--jobs"; string_of_int j ]
          | None -> [])
        @ (match chaos with
          | Some s -> [ "--chaos"; s; "--chaos-seed"; string_of_int chaos_seed ]
          | None -> [])
        (* Under --supervise the daemon's own supervise branch truncates
           the file once and respawns workers in append mode. *)
        @ (match serve_trace with Some f -> [ "--trace"; f ] | None -> [])
        @ (if supervise then [ "--supervise" ] else []))
    in
    let report =
      or_user_error (fun () ->
          L.drive_subprocess ~window ?rate ?client argv trace_reqs)
    in
    Format.printf "%a@." L.pp_report report;
    let slo_statuses =
      Option.map
        (fun spec -> Bg_serve.Slo.eval_samples spec report.L.slo_samples)
        slo_spec
    in
    Option.iter
      (List.iter (fun st ->
           Format.printf "slo %s: %s  (burn %.2f, %d/%d bad)@."
             (Bg_serve.Slo.objective_name st.Bg_serve.Slo.objective)
             (if st.Bg_serve.Slo.healthy then "ok" else "VIOLATED")
             st.Bg_serve.Slo.window_burn st.Bg_serve.Slo.window_bad
             st.Bg_serve.Slo.window_total))
      slo_statuses;
    Option.iter
      (fun path ->
        or_user_error (fun () ->
            Core.Decay.Decay_io.with_atomic_out path (fun oc ->
                let j =
                  Obs_tools.Jsonl.Obj
                    ([ ("suite", Obs_tools.Jsonl.Str "serve");
                      ( "workload",
                        Obs_tools.Jsonl.Obj
                          [ ("seed", Obs_tools.Jsonl.Num (float_of_int seed));
                            ( "requests",
                              Obs_tools.Jsonl.Num (float_of_int requests) );
                            ( "spaces",
                              Obs_tools.Jsonl.Num (float_of_int spaces) );
                            ("nodes", Obs_tools.Jsonl.Num (float_of_int nodes));
                            ("zipf", Obs_tools.Jsonl.Num zipf);
                            ( "window",
                              Obs_tools.Jsonl.Num (float_of_int window) ) ] );
                      ( "resilience",
                        Obs_tools.Jsonl.Obj
                          ((match chaos with
                           | Some s ->
                               [ ("chaos", Obs_tools.Jsonl.Str s);
                                 ( "chaos_seed",
                                   Obs_tools.Jsonl.Num
                                     (float_of_int chaos_seed) ) ]
                           | None -> [])
                          @ (match deadline with
                            | Some d ->
                                [ ("deadline_s", Obs_tools.Jsonl.Num d) ]
                            | None -> [])
                          @ (match client_retries with
                            | Some n ->
                                [ ( "client_retries",
                                    Obs_tools.Jsonl.Num (float_of_int n) ) ]
                            | None -> [])
                          @ [ ("supervise", Obs_tools.Jsonl.Bool supervise) ])
                      );
                      ("report", L.report_to_json report) ]
                    @
                    match slo_statuses with
                    | None -> []
                    | Some statuses ->
                        [ ( "slo",
                            Obs_tools.Jsonl.Arr
                              (List.map Bg_serve.Slo.status_to_json statuses)
                          ) ])
                in
                output_string oc (Obs_tools.Jsonl.to_string j);
                output_char oc '\n'));
        Printf.printf "report written to %s\n%!" path)
      json;
    finish_obs metrics;
    (* Every request must be answered — computed, rejected or failed.
       A silently dropped request is a daemon bug and a benchmark lie. *)
    if report.L.answered < report.L.sent then begin
      Printf.eprintf "bg loadgen: %d of %d requests never answered\n%!"
        (report.L.sent - report.L.answered)
        report.L.sent;
      exit 1
    end;
    (* Exit 3 mirrors the perf gate's soft-fail: the run completed, the
       objective did not. *)
    Option.iter
      (fun statuses ->
        if Bg_serve.Slo.violated statuses then begin
          Printf.eprintf "bg loadgen: SLO violated (%s)\n%!"
            (String.concat ", "
               (List.filter_map
                  (fun st ->
                    if st.Bg_serve.Slo.healthy then None
                    else
                      Some
                        (Bg_serve.Slo.objective_name st.Bg_serve.Slo.objective))
                  statuses));
          exit 3
        end)
      slo_statuses
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Generate a reproducible production-shaped workload (zipf-skewed \
          repeats over a pool of decay spaces) and replay it against a \
          spawned `bg serve` daemon, closed-loop at --window concurrency \
          (optionally rate-capped). With --deadline/--client-retries the \
          driver retries lost or late answers under seeded backoff; \
          --chaos/--supervise pass fault injection and supervision \
          through to the daemon. Reports throughput, p50/p99 latency, \
          cache outcomes, p99 trace-id exemplars and resilience \
          counters; exits 1 if any request goes unanswered and 3 if a \
          --slo objective is violated.")
    Term.(
      const run $ requests_arg $ spaces_arg $ lg_nodes_arg $ zipf_arg
      $ seed_arg $ window_arg $ rate_arg $ json_out_arg $ deadline_arg
      $ client_retries_arg $ lg_slo_arg $ serve_trace_arg $ chaos_arg
      $ chaos_seed_arg $ supervise_arg $ batch_size_arg $ max_queue_arg
      $ cache_file_arg $ cache_entries_arg $ request_timeout_arg $ jobs_arg
      $ trace_arg $ profile_arg $ metrics_arg)

(* ------------------------------------------------------------------ top *)

(* Shared JSON digging for bg top / bg slo: every accessor degrades to a
   zero, never an exception — telemetry is observed, not validated. *)
let j_num j k =
  Option.value ~default:0. (Obs_tools.Jsonl.mem_num k j)

let j_obj j k =
  match Obs_tools.Jsonl.member k j with
  | Some (Obs_tools.Jsonl.Obj kvs) -> kvs
  | _ -> []

let top_cmd =
  let module J = Obs_tools.Jsonl in
  let module P = Bg_serve.Protocol in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Poll a live daemon's metrics wire op over its Unix socket \
             (answered at admission, so it works during overload).")
  in
  let telemetry_file_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:
            "Tail a --telemetry ring file instead of polling a socket \
             (works on a dead daemon's last snapshots too).")
  in
  let interval_arg =
    Arg.(
      value & opt float 1.
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Seconds between refreshes.")
  in
  let iterations_arg =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Stop after $(docv) refreshes (0 = run until interrupted).")
  in
  let prometheus_arg =
    Arg.(
      value & flag
      & info [ "prometheus" ]
          ~doc:
            "With --socket: print a Prometheus text-exposition scrape of \
             the polled registry instead of the table (counters and \
             gauges exactly; histograms as _sum/_count, bucket detail \
             lives in --telemetry files).")
  in
  (* One throughput sample needs two polls; remember the last one. *)
  let prev : (float * float) option ref = ref None in
  let render_wire result =
    let now = Core.Prelude.Obs.now_s () in
    let stats = j_obj result "stats" in
    let snum k = j_num (J.Obj stats) k in
    let served = snum "served" in
    let throughput =
      match !prev with
      | Some (ps, pt) when now > pt && served >= ps ->
          (served -. ps) /. (now -. pt)
      | _ -> 0.
    in
    prev := Some (served, now);
    let hist name =
      match List.assoc_opt name (j_obj result "histograms") with
      | Some h -> h
      | None -> J.Obj []
    in
    let counter name =
      int_of_float (j_num (J.Obj (j_obj result "counters")) name)
    in
    let lat = hist "serve.latency_s" in
    let hit_rate =
      if served > 0. then snum "store_hits" /. served else 0.
    in
    let t =
      Core.Prelude.Table.create ~title:"bg top" [ "metric"; "value" ]
    in
    let open Core.Prelude.Table in
    add_row t [ S "uptime"; S (Printf.sprintf "%.1fs" (j_num result "uptime_s")) ];
    add_row t
      [ S "restarts / total uptime";
        S
          (Printf.sprintf "%d / %.1fs"
             (int_of_float (j_num result "restarts"))
             (j_num result "total_uptime_s")) ];
    add_row t [ S "queue depth"; I (int_of_float (j_num result "queue_depth")) ];
    add_row t [ S "throughput"; S (Printf.sprintf "%.1f req/s" throughput) ];
    add_row t
      [ S "accepted / served";
        S (Printf.sprintf "%d / %d" (int_of_float (snum "accepted"))
             (int_of_float served)) ];
    add_row t [ S "hit rate"; S (Printf.sprintf "%.3f" hit_rate) ];
    add_row t
      [ S "rejected / failed";
        S (Printf.sprintf "%d / %d" (int_of_float (snum "rejected"))
             (int_of_float (snum "failed"))) ];
    add_row t
      [ S "degraded / coalesced";
        S (Printf.sprintf "%d / %d" (int_of_float (snum "degraded"))
             (int_of_float (snum "coalesced"))) ];
    add_row t
      [ S "latency p50 / p99";
        S (Printf.sprintf "%.4gs / %.4gs" (j_num lat "p50") (j_num lat "p99")) ];
    add_row t
      [ S "queue wait p99";
        S (Printf.sprintf "%.4gs" (j_num (hist "serve.queue_wait_s") "p99")) ];
    add_row t
      [ S "retries (client) / WAL appends";
        S (Printf.sprintf "%d / %d" (counter "client.retries")
             (counter "store.wal_appends")) ];
    add_row t
      [ S "WAL recovered / torn";
        S (Printf.sprintf "%d / %d" (counter "store.wal_recovered")
             (counter "store.wal_torn")) ];
    (match J.member "slo" result with
    | Some (J.Arr statuses) ->
        List.iter
          (fun st ->
            let name =
              Option.value ~default:"?" (J.mem_str "objective" st)
            in
            let burn = j_num (J.Obj (j_obj st "window")) "burn" in
            let healthy =
              Option.value ~default:true (J.mem_bool "healthy" st)
            in
            add_row t
              [ S (Printf.sprintf "slo %s" name);
                S
                  (Printf.sprintf "%s (burn %.2f)"
                     (if healthy then "ok" else "VIOLATED")
                     burn) ])
          statuses
    | _ -> ());
    print t
  in
  let render_telemetry path =
    let lines =
      or_user_error (fun () -> J.parse_lines (J.read_file path))
      |> List.filter (fun l -> J.mem_str "type" l = Some "telemetry")
    in
    match List.rev lines with
    | [] -> user_error "%s: no telemetry snapshots" path
    | last :: _ ->
        let t =
          Core.Prelude.Table.create
            ~title:
              (Printf.sprintf "bg top (telemetry seq %d)"
                 (int_of_float (j_num last "seq")))
            [ "metric"; "value"; "delta" ]
        in
        let open Core.Prelude.Table in
        add_row t
          [ S "uptime"; S (Printf.sprintf "%.1fs" (j_num last "uptime_s"));
            S "-" ];
        List.iter
          (fun (name, c) ->
            add_row t
              [ S name; I (int_of_float (j_num c "value"));
                S (Printf.sprintf "+%d" (int_of_float (j_num c "delta"))) ])
          (j_obj last "counters");
        List.iter
          (fun (name, g) ->
            match J.num g with
            | Some v -> add_row t [ S name; S (Printf.sprintf "%g" v); S "-" ]
            | None -> ())
          (j_obj last "gauges");
        List.iter
          (fun (name, h) ->
            add_row t
              [ S name;
                S
                  (Printf.sprintf "p50 %.4gs p99 %.4gs" (j_num h "p50")
                     (j_num h "p99"));
                S (Printf.sprintf "+%d" (int_of_float (j_num h "count_delta")))
              ])
          (j_obj last "histograms");
        print t
  in
  let run socket telemetry interval iterations prometheus =
    if not (interval > 0.) then
      user_error "--interval must be positive (got %g)" interval;
    if iterations < 0 then
      user_error "--iterations must be non-negative (got %d)" iterations;
    if prometheus && socket = None then
      user_error "--prometheus requires --socket";
    let poll =
      match (socket, telemetry) with
      | Some _, Some _ -> user_error "--socket and --telemetry are exclusive"
      | None, None -> user_error "one of --socket or --telemetry is required"
      | Some path, None ->
          let policy = Bg_serve.Client.create ~seed:0 () in
          let conn = Bg_serve.Client.connect policy path in
          fun () -> (
            match Bg_serve.Client.metrics conn with
            | Error e -> user_error "metrics poll failed: %s" e
            | Ok (P.Done { result; _ }) ->
                if prometheus then
                  (* Reconstruct a registry snapshot from the wire scrape:
                     counters and gauges map exactly; histograms keep
                     sum/count (bucket detail lives in telemetry files). *)
                  let snap =
                    List.map
                      (fun (n, v) ->
                        ( n,
                          Core.Prelude.Obs.Counter_snapshot
                            (int_of_float
                               (Option.value ~default:0. (J.num v))) ))
                      (j_obj result "counters")
                    @ List.map
                        (fun (n, v) ->
                          ( n,
                            Core.Prelude.Obs.Gauge_snapshot
                              (Option.value ~default:0. (J.num v)) ))
                        (j_obj result "gauges")
                    @ List.map
                        (fun (n, h) ->
                          ( n,
                            Core.Prelude.Obs.Histogram_snapshot
                              {
                                count = int_of_float (j_num h "count");
                                sum = j_num h "sum";
                                buckets = [];
                              } ))
                        (j_obj result "histograms")
                  in
                  print_string (Bg_serve.Telemetry.prometheus snap)
                else render_wire result
            | Ok (P.Rejected { reason; _ }) | Ok (P.Failed { reason; _ }) ->
                user_error "metrics poll rejected: %s" reason)
      | None, Some path -> fun () -> render_telemetry path
    in
    let clear () =
      if Unix.isatty Unix.stdout && not prometheus then
        print_string "\027[2J\027[H"
    in
    let rec loop i =
      clear ();
      poll ();
      flush stdout;
      if iterations = 0 || i < iterations then begin
        Unix.sleepf interval;
        loop (i + 1)
      end
    in
    loop 1
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live view of a serving daemon: poll the metrics wire op over \
          --socket (or tail a --telemetry ring file) and render a \
          refreshing table of throughput, hit rate, queue depth, \
          latency quantiles, degraded/retry/WAL/restart counters and \
          SLO burn rates. --prometheus emits a text-exposition scrape \
          instead.")
    Term.(
      const run $ socket_arg $ telemetry_file_arg $ interval_arg
      $ iterations_arg $ prometheus_arg)

(* ------------------------------------------------------------------ slo *)

let slo_cmd =
  let module J = Obs_tools.Jsonl in
  let spec_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "spec" ] ~docv:"SPEC"
          ~doc:
            "The objectives to score, same grammar as `bg serve --slo` \
             (e.g. p99<=0.05,err<=1%).")
  in
  let telemetry_pos_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TELEMETRY"
          ~doc:"A --telemetry ring file recorded by `bg serve`.")
  in
  let run spec_text path =
    let spec =
      match Bg_serve.Slo.parse_spec spec_text with
      | Ok s -> s
      | Error msg -> user_error "--spec: %s" msg
    in
    let lines =
      or_user_error (fun () -> J.parse_lines (J.read_file path))
      |> List.filter (fun l -> J.mem_str "type" l = Some "telemetry")
    in
    if lines = [] then user_error "%s: no telemetry snapshots" path;
    let counter_delta line name =
      match List.assoc_opt name (j_obj line "counters") with
      | Some c -> int_of_float (j_num c "delta")
      | None -> 0
    in
    let latency_hist line =
      List.assoc_opt "serve.latency_s" (j_obj line "histograms")
    in
    let buckets_delta h =
      List.filter_map
        (fun (k, v) ->
          match (int_of_string_opt k, J.num v) with
          | Some b, Some c -> Some (b, int_of_float c)
          | _ -> None)
        (j_obj h "buckets_delta")
    in
    (* Replay the ring: sum deltas per objective.  Latency objectives
       read the latency histogram at log2-bucket resolution; the error
       objective reads the admission counters (rejected and failed are
       bad, accepted + rejected is the request total). *)
    let statuses =
      List.map
        (fun objective ->
          let total = ref 0 and bad = ref 0 in
          List.iter
            (fun line ->
              match objective with
              | Bg_serve.Slo.Latency { threshold_s; _ } -> (
                  match latency_hist line with
                  | None -> ()
                  | Some h ->
                      total := !total + int_of_float (j_num h "count_delta");
                      bad :=
                        !bad
                        + Bg_serve.Slo.bad_latency_of_buckets ~threshold_s
                            (buckets_delta h))
              | Bg_serve.Slo.Error_rate _ ->
                  let rejected = counter_delta line "serve.rejected" in
                  total :=
                    !total + counter_delta line "serve.accepted" + rejected;
                  bad := !bad + counter_delta line "serve.failed" + rejected)
            lines;
          let budget =
            match objective with
            | Bg_serve.Slo.Latency { quantile; _ } -> 1. -. quantile
            | Bg_serve.Slo.Error_rate b -> b
          in
          let frac =
            if !total = 0 then 0.
            else float_of_int !bad /. float_of_int !total
          in
          let burn =
            if budget > 0. then frac /. budget
            else if !bad > 0 then infinity
            else 0.
          in
          {
            Bg_serve.Slo.objective;
            window_total = !total;
            window_bad = !bad;
            window_burn = burn;
            lifetime_total = !total;
            lifetime_bad = !bad;
            lifetime_burn = burn;
            healthy = burn <= 1.;
          })
        spec
    in
    let t =
      Core.Prelude.Table.create
        ~title:(Printf.sprintf "SLO report: %s over %s" spec_text path)
        [ "objective"; "events"; "bad"; "burn"; "verdict" ]
    in
    let open Core.Prelude.Table in
    List.iter
      (fun st ->
        add_row t
          [ S (Bg_serve.Slo.objective_name st.Bg_serve.Slo.objective);
            I st.Bg_serve.Slo.window_total; I st.Bg_serve.Slo.window_bad;
            F2 st.Bg_serve.Slo.window_burn;
            S (if st.Bg_serve.Slo.healthy then "ok" else "VIOLATED") ])
      statuses;
    print t;
    if Bg_serve.Slo.violated statuses then exit 3
  in
  Cmd.v
    (Cmd.info "slo"
       ~doc:
         "Score recorded telemetry against service-level objectives: \
          replay a --telemetry ring file, sum the latency-histogram and \
          admission-counter deltas per objective, and report burn rates \
          (latency at log2-bucket resolution). Exits 3 when an \
          objective is violated.")
    Term.(const run $ spec_arg $ telemetry_pos_arg)

(* ------------------------------------------------------------------ zoo *)

let zoo_cmd =
  let run () =
    let t =
      Core.Prelude.Table.create ~title:"construction zoo"
        [ "kind"; "paper reference"; "property" ]
    in
    let open Core.Prelude.Table in
    add_row t [ S "uniform"; S "Sec. 4.1"; S "independence dim 1, unbounded doubling" ];
    add_row t [ S "star"; S "Sec. 3.4"; S "unbounded doubling, bounded fading value" ];
    add_row t [ S "welzl"; S "Sec. 4.1"; S "doubling dim 1, unbounded independence" ];
    add_row t [ S "three-point"; S "Sec. 4.2"; S "phi < 2 while zeta unbounded" ];
    add_row t [ S "plane"; S "Sec. 2.2"; S "GEO-SINR: zeta = alpha" ];
    add_row t [ S "office / clutter"; S "Sec. 1"; S "multi-wall radio simulation" ];
    print t
  in
  Cmd.v (Cmd.info "zoo" ~doc:"List the built-in decay-space constructions.")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "bg" ~version:"1.0.0"
       ~doc:"Decay-space wireless models (Beyond Geometry, PODC 2014).")
    [ analyze_cmd; generate_cmd; evolve_cmd; capacity_cmd; experiment_cmd;
      stats_cmd; protocols_cmd; bench_cmd; estimate_cmd; trace_cmd;
      serve_cmd; loadgen_cmd; top_cmd; slo_cmd; zoo_cmd ]

let () =
  (* Cmdliner reports its own parse errors with Exit.cli_error (124);
     fold those into the same exit code 2 that user_error uses so every
     "you gave me bad input" path looks alike to scripts. *)
  let code = Cmd.eval main in
  exit (if code = Cmd.Exit.cli_error then 2 else code)
