let () =
  Alcotest.run "beyond-geometry"
    (Test_prelude.suite @ Test_geom.suite @ Test_graph.suite @ Test_decay.suite @ Test_radio.suite @ Test_sinr.suite @ Test_capacity.suite @ Test_sched.suite @ Test_distrib.suite @ Test_integration.suite @ Test_extensions.suite @ Test_protocols.suite @ Test_io_stats.suite @ Test_rates_cognitive.suite @ Test_laws.suite @ Test_flow_diagram.suite @ Test_experiments.suite @ Test_point3.suite @ Test_kernels.suite @ Test_estimators.suite @ Test_robustness.suite @ Test_obs.suite @ Test_trace_tools.suite @ Test_serve.suite)
