(* Verbatim pre-optimization kernels, kept as the reference implementation
   the optimized flat/log-domain kernels in [Bg_decay.Metricity] and
   [Bg_decay.Fading] are tested against.  Everything here works off
   [Decay_space.matrix] / [Decay_space.decay] (bounds-checked, row-copied)
   exactly as the shipped code did before the flat-layout rewrite; do not
   "improve" this module — its value is that it stays naive. *)

module Decay_space = Core.Decay.Decay_space
module Num = Core.Prelude.Numerics
module Par = Core.Prelude.Parallel

type witness = Core.Decay.Metricity.witness = {
  x : int;
  y : int;
  z : int;
  value : float;
}

let triple_holds ~fxy ~fxz ~fzy z =
  let t = 1. /. z in
  exp (t *. log fxz) +. exp (t *. log fzy) >= exp (t *. log fxy)

let zeta_triple ?(tol = 1e-9) fxy fxz fzy =
  if fxy <= fxz +. fzy then 1.
  else begin
    let m = Float.min fxz fzy in
    let p = triple_holds ~fxy ~fxz ~fzy in
    if p 1. then 1.
    else begin
      let lo = ref 1.
      and hi = ref (Float.max 1.5 (Num.log2 (fxy /. m) +. 1e-6)) in
      let iters = ref 0 in
      while
        !hi -. !lo > tol *. Float.max 1. (Float.abs !hi) && !iters < 200
      do
        incr iters;
        let mid = 0.5 *. (!lo +. !hi) in
        if p mid then hi := mid else lo := mid
      done;
      !lo
    end
  end

let fold_triples_range d ~x_lo ~x_hi init step =
  let n = Decay_space.n d in
  let f = Decay_space.matrix d in
  let acc = ref init in
  for x = x_lo to x_hi - 1 do
    for y = 0 to n - 1 do
      if y <> x then
        for z = 0 to n - 1 do
          if z <> x && z <> y then
            acc := step !acc ~x ~y ~z ~fxy:f.(x).(y) ~fxz:f.(x).(z) ~fzy:f.(z).(y)
        done
    done
  done;
  !acc

let better a b = if b.value > a.value then b else a

let zeta_witness ?(tol = 1e-9) ?jobs d =
  if Decay_space.n d < 3 then { x = 0; y = 0; z = 0; value = 1. }
  else begin
    let init = { x = 0; y = 1; z = 2; value = 1. } in
    let step best ~x ~y ~z ~fxy ~fxz ~fzy =
      if fxy <= fxz +. fzy then best
      else if triple_holds ~fxy ~fxz ~fzy best.value then best
      else begin
        let v = zeta_triple ~tol fxy fxz fzy in
        if v > best.value then { x; y; z; value = v } else best
      end
    in
    Par.map_reduce_chunks
      ~jobs:(Par.resolve_jobs jobs)
      ~lo:0 ~hi:(Decay_space.n d) ~neutral:init
      ~map:(fun x_lo x_hi -> fold_triples_range d ~x_lo ~x_hi init step)
      ~combine:better
  end

let zeta ?tol ?jobs d = (zeta_witness ?tol ?jobs d).value

let holds_at ?jobs d z =
  Decay_space.n d < 3
  || Par.map_reduce_chunks
       ~jobs:(Par.resolve_jobs jobs)
       ~lo:0 ~hi:(Decay_space.n d) ~neutral:true
       ~map:(fun x_lo x_hi ->
         fold_triples_range d ~x_lo ~x_hi true
           (fun ok ~x:_ ~y:_ ~z:_ ~fxy ~fxz ~fzy ->
             ok
             && (fxy <= fxz +. fzy
                || triple_holds ~fxy ~fxz ~fzy (z +. 1e-7))))
       ~combine:( && )

let phi_witness ?jobs d =
  if Decay_space.n d < 3 then { x = 0; y = 0; z = 0; value = 1. }
  else begin
    let init = { x = 0; y = 2; z = 1; value = 1. } in
    let step best ~x ~y ~z ~fxy ~fxz ~fzy =
      let v = fxy /. (fxz +. fzy) in
      if v > best.value then { x; y = z; z = y; value = v } else best
    in
    Par.map_reduce_chunks
      ~jobs:(Par.resolve_jobs jobs)
      ~lo:0 ~hi:(Decay_space.n d) ~neutral:init
      ~map:(fun x_lo x_hi -> fold_triples_range d ~x_lo ~x_hi init step)
      ~combine:better
  end

let phi ?jobs d = (phi_witness ?jobs d).value

(* ------------------------------------------------------------- fading *)

let weighted_mis ~weights ~compat =
  let k = Array.length weights in
  let order = Array.init k Fun.id in
  Array.sort (fun i j -> Float.compare weights.(j) weights.(i)) order;
  let greedy_pick = ref [] in
  Array.iter
    (fun i ->
      if List.for_all (fun j -> compat i j) !greedy_pick then
        greedy_pick := i :: !greedy_pick)
    order;
  let best_set = ref !greedy_pick in
  let best_val =
    ref (List.fold_left (fun a i -> a +. weights.(i)) 0. !greedy_pick)
  in
  let suffix_weight = Array.make (k + 1) 0. in
  for idx = k - 1 downto 0 do
    suffix_weight.(idx) <- suffix_weight.(idx + 1) +. weights.(order.(idx))
  done;
  let budget = ref 2_000_000 in
  let rec go idx current current_val =
    decr budget;
    if !budget > 0 && idx < k then begin
      if current_val +. suffix_weight.(idx) > !best_val then begin
        let i = order.(idx) in
        if List.for_all (fun j -> compat i j) current then begin
          let v = current_val +. weights.(i) in
          if v > !best_val then begin
            best_val := v;
            best_set := i :: current
          end;
          go (idx + 1) (i :: current) v
        end;
        go (idx + 1) current current_val
      end
    end
  in
  go 0 [] 0.;
  (!best_val, !best_set)

let gamma_z ?(exact_limit = 24) d ~z ~r =
  let n = Decay_space.n d in
  let candidates = ref [] in
  for x = n - 1 downto 0 do
    if x <> z && Decay_space.decay d x z >= r && Decay_space.decay d z x >= r
    then candidates := x :: !candidates
  done;
  let arr = Array.of_list !candidates in
  let k = Array.length arr in
  let weights = Array.map (fun x -> 1. /. Decay_space.decay d x z) arr in
  let compat i j =
    i = j
    || (Decay_space.decay d arr.(i) arr.(j) >= r
       && Decay_space.decay d arr.(j) arr.(i) >= r)
  in
  if k = 0 then (0., [])
  else begin
    let value, set =
      if k <= exact_limit then weighted_mis ~weights ~compat
      else begin
        let order = Array.init k Fun.id in
        Array.sort (fun i j -> Float.compare weights.(j) weights.(i)) order;
        let pick = ref [] in
        Array.iter
          (fun i ->
            if List.for_all (fun j -> compat i j) !pick then pick := i :: !pick)
          order;
        let v = List.fold_left (fun a i -> a +. weights.(i)) 0. !pick in
        (v, !pick)
      end
    in
    (r *. value, List.map (fun i -> arr.(i)) set)
  end

let gamma ?exact_limit ?jobs d ~r =
  Par.map_reduce_chunks
    ~jobs:(Par.resolve_jobs jobs)
    ~lo:0 ~hi:(Decay_space.n d) ~neutral:0.
    ~map:(fun lo hi ->
      let best = ref 0. in
      for z = lo to hi - 1 do
        let v, _ = gamma_z ?exact_limit d ~z ~r in
        if v > !best then best := v
      done;
      !best)
    ~combine:(fun a b -> if b > a then b else a)
