(* The optimized flat/log-domain kernels must be bit-for-bit the naive
   sweeps in [Naive_ref]: same witness triple, same value, at every job
   count, on every space family.  Plus: the digest-keyed analysis cache
   (second run = zero sweeps), Memo unit behaviour, and pruning-counter
   sanity. *)

module D = Core.Decay.Decay_space
module Met = Core.Decay.Metricity
module Fad = Core.Decay.Fading
module Sp = Core.Decay.Spaces
module KS = Core.Decay.Kernel_stats
module Memo = Core.Prelude.Memo
module Rng = Core.Prelude.Rng
module Ctx = Core.Decay.Ctx
open Testutil

(* Uncached kernel context at a given job count — what almost every
   identity check below wants. *)
let ctx_j jobs = Ctx.make ~jobs ~cache:false ()

let witness : Met.witness Alcotest.testable =
  let pp fmt (w : Met.witness) =
    Format.fprintf fmt "{x=%d; y=%d; z=%d; value=%h}" w.x w.y w.z w.value
  in
  Alcotest.testable pp (fun (a : Met.witness) b ->
      a.x = b.x && a.y = b.y && a.z = b.z && Float.equal a.value b.value)

let check_witness = Alcotest.check witness
let check_exact_float msg a b = check_true msg (Float.equal a b)

(* Every named construction the paper uses, including the tie-heavy ones
   (uniform, grid, star) where strict-improvement combine ordering is the
   only thing keeping the witness deterministic. *)
let families () =
  [
    ("random-sym", random_space ~n:11 3);
    ("random-asym", random_asym_space ~n:11 5);
    ("star", Sp.star ~k:8 ~r:4.);
    ("welzl", Sp.welzl ~n:8 ~eps:0.25);
    ("three-point", Sp.three_point ~q:5.);
    ("uniform", Sp.uniform 8);
    ("exp-line", Sp.exponential_line ~n:10);
    ( "geo-plane",
      D.of_points ~alpha:3. (Sp.random_points (Rng.create 7) ~n:12 ~side:30.)
    );
    ( "grid",
      D.of_points ~alpha:2.5 (Sp.grid_points ~rows:3 ~cols:4 ~spacing:2.) );
  ]

let test_zeta_matches_naive () =
  List.iter
    (fun (name, d) ->
      let reference = Naive_ref.zeta_witness ~jobs:1 d in
      List.iter
        (fun jobs ->
          check_witness
            (Printf.sprintf "zeta witness %s jobs=%d" name jobs)
            reference
            (Met.zeta_witness ~ctx:(ctx_j jobs) d))
        [ 1; 4 ])
    (families ())

let test_phi_matches_naive () =
  List.iter
    (fun (name, d) ->
      let reference = Naive_ref.phi_witness ~jobs:1 d in
      List.iter
        (fun jobs ->
          check_witness
            (Printf.sprintf "phi witness %s jobs=%d" name jobs)
            reference
            (Met.phi_witness ~ctx:(ctx_j jobs) d))
        [ 1; 4 ])
    (families ())

let test_gamma_matches_naive () =
  List.iter
    (fun (name, d) ->
      List.iter
        (fun r ->
          let reference = Naive_ref.gamma ~jobs:1 d ~r in
          List.iter
            (fun jobs ->
              check_exact_float
                (Printf.sprintf "gamma %s r=%g jobs=%d" name r jobs)
                reference
                (Fad.gamma ~ctx:(ctx_j jobs) d ~r))
            [ 1; 4 ])
        [ 0.5; 2.; 10. ])
    (families ())

let test_holds_at_matches_naive () =
  List.iter
    (fun (name, d) ->
      List.iter
        (fun z ->
          check_true
            (Printf.sprintf "holds_at %s z=%g" name z)
            (Bool.equal (Naive_ref.holds_at ~jobs:1 d z)
               (Met.holds_at ~jobs:2 d z)))
        [ 1.; 2.; 3.; 8. ])
    (families ())

let prop_random_witness_identity =
  qcheck ~count:40 "optimized zeta/phi witnesses = naive on random spaces"
    QCheck.(pair (int_range 0 10_000) bool)
    (fun (seed, sym) ->
      let d =
        if sym then random_space ~n:9 seed else random_asym_space ~n:9 seed
      in
      let zw = Naive_ref.zeta_witness ~jobs:1 d in
      let pw = Naive_ref.phi_witness ~jobs:1 d in
      List.for_all
        (fun jobs ->
          Met.zeta_witness ~ctx:(ctx_j jobs) d = zw
          && Met.phi_witness ~ctx:(ctx_j jobs) d = pw)
        [ 1; 4 ])

let prop_random_gamma_identity =
  qcheck ~count:25 "optimized gamma = naive on random spaces"
    QCheck.(pair (int_range 0 10_000) (float_range 0.5 20.))
    (fun (seed, r) ->
      let d = random_asym_space ~n:10 seed in
      let reference = Naive_ref.gamma ~jobs:1 d ~r in
      List.for_all
        (fun jobs -> Float.equal (Fad.gamma ~ctx:(ctx_j jobs) d ~r) reference)
        [ 1; 4 ])

(* ---------------------------------------------------- the analysis cache *)

let reset_all () =
  Met.clear_caches ();
  Fad.clear_caches ();
  KS.reset ()

let test_second_run_sweeps_nothing () =
  reset_all ();
  let d = random_space ~n:10 42 in
  let config =
    { Core.Analysis.gamma_at = [ 2. ]; ctx = Ctx.make ~jobs:2 () }
  in
  let r1 = Core.Analysis.run ~config d in
  let sweeps_after_first = (KS.snapshot ()).KS.sweeps in
  check_true "first run sweeps" (sweeps_after_first >= 3);
  let r2 = Core.Analysis.run ~config d in
  check_int "second run performs zero sweep work" sweeps_after_first
    (KS.snapshot ()).KS.sweeps;
  let mh, _ = Met.cache_stats () in
  let fh, _ = Fad.cache_stats () in
  check_true "zeta/phi/gamma all served from cache" (mh >= 2 && fh >= 1);
  check_witness "cached zeta witness identical" r1.zeta_witness
    r2.zeta_witness;
  check_exact_float "cached phi identical" r1.phi r2.phi;
  check_exact_float "cached gamma identical"
    (List.assoc 2. r1.gamma)
    (List.assoc 2. r2.gamma)

let test_cache_keys_on_content_not_name () =
  reset_all ();
  let d = random_space ~n:8 9 in
  let z1 = Met.zeta d in
  let z2 = Met.zeta (D.rename "same-bytes-other-name" d) in
  check_exact_float "renamed space hits the cache" z1 z2;
  let hits, misses = Met.cache_stats () in
  check_int "one miss" 1 misses;
  check_int "rename is a hit" 1 hits;
  ignore (Met.zeta (D.scale 2. d));
  let _, misses = Met.cache_stats () in
  check_int "different bytes miss" 2 misses

let test_jobs_excluded_from_cache_key () =
  reset_all ();
  let d = random_asym_space ~n:8 17 in
  let a = Met.zeta_witness ~ctx:(Ctx.make ~jobs:1 ()) d in
  let b = Met.zeta_witness ~ctx:(Ctx.make ~jobs:4 ()) d in
  check_witness "jobs=4 reuses jobs=1 result" a b;
  let hits, misses = Met.cache_stats () in
  check_int "second job count is a hit" 1 hits;
  check_int "single compute" 1 misses

(* -------------------------------------------------------------- Memo *)

let test_memo_basics () =
  let m : (int, int) Memo.t = Memo.create ~max_size:4 () in
  let computes = ref 0 in
  let f k =
    Memo.find_or_add m k (fun () ->
        incr computes;
        k * k)
  in
  check_int "computes" 9 (f 3);
  check_int "cached" 9 (f 3);
  check_int "computed once" 1 !computes;
  check_int "hits" 1 (Memo.hits m);
  check_int "misses" 1 (Memo.misses m);
  check_true "mem" (Memo.mem m 3);
  Memo.clear m;
  check_false "cleared" (Memo.mem m 3);
  check_int "recomputes after clear" 9 (f 3);
  check_int "computed twice total" 2 !computes

let test_memo_eviction_bounds_size () =
  let m : (int, int) Memo.t = Memo.create ~max_size:3 () in
  for k = 0 to 9 do
    ignore (Memo.find_or_add m k (fun () -> k))
  done;
  check_true "size stays bounded" (Memo.length m <= 3);
  (* Whatever survived eviction still answers correctly. *)
  check_int "values survive" 5 (Memo.find_or_add m 5 (fun () -> 5))

let test_memo_concurrent () =
  let m : (int, int) Memo.t = Memo.create () in
  let domains =
    Array.init 4 (fun i ->
        Domain.spawn (fun () ->
            let acc = ref 0 in
            for k = 0 to 99 do
              acc := !acc + Memo.find_or_add m (k mod 10) (fun () -> (k mod 10) * 7)
            done;
            ignore i;
            !acc))
  in
  let sums = Array.map Domain.join domains in
  Array.iter (fun s -> check_int "each domain sums identically" sums.(0) s)
    sums;
  check_int "ten distinct keys" 10 (Memo.length m)

(* ------------------------------------------- lazy views under the pool *)

let test_views_race_free_under_pool () =
  (* The derived views (logs, transpose, log-transpose) are built lazily
     behind an atomic-once guard, so kernels no longer pre-force them
     before fanning out — the first touch may happen concurrently inside
     pool tasks.  Each trial builds a fresh space and forces all four
     views from four workers at once; values must match the definition
     and repeated forcing must return the same buffer. *)
  let module F = D.Flat in
  let module Par = Core.Prelude.Parallel in
  for trial = 0 to 19 do
    let n = 40 in
    let f i j = float_of_int ((((i * 7) + (j * 3) + trial) mod 19) + 1) in
    let d = D.of_fn ~name:"race" n f in
    let got =
      Par.map_reduce_chunks ~jobs:4 ~lo:0 ~hi:n ~neutral:0.
        ~map:(fun lo hi ->
          let fl = F.data d and lg = F.logs d in
          let tr = F.transpose d and lt = F.log_transpose d in
          let acc = ref 0. in
          for i = lo to hi - 1 do
            for j = 0 to n - 1 do
              if j <> i then begin
                let k = (i * n) + j in
                acc :=
                  !acc +. F.get fl k +. F.get lg k +. F.get tr k +. F.get lt k
              end
            done
          done;
          !acc)
        ~combine:( +. )
    in
    let expected = ref 0. in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if j <> i then
          expected :=
            !expected +. f i j +. log (f i j) +. f j i +. log (f j i)
      done
    done;
    check_float ~eps:1e-9
      (Printf.sprintf "views correct under concurrent first touch (t%d)"
         trial)
      !expected got;
    check_true "repeated force returns the same buffer"
      (F.data d == F.data d && F.logs d == F.logs d
      && F.transpose d == F.transpose d
      && F.log_transpose d == F.log_transpose d)
  done

(* ----------------------------------------------------- counter sanity *)

let test_pruning_counters () =
  reset_all ();
  let d = random_space ~n:10 123 in
  ignore (Met.zeta_witness ~ctx:(ctx_j 1) d);
  let s = KS.snapshot () in
  let n = 10 in
  check_int "one sweep" 1 s.KS.sweeps;
  check_int "triple count" (n * (n - 1) * (n - 2)) s.KS.triples;
  check_true "visited <= triples"
    (s.KS.plain_skips + s.KS.cheap_skips + s.KS.deep <= s.KS.triples);
  check_true "bisections only on deep triples" (s.KS.bisections <= s.KS.deep);
  let fr = KS.pruned_fraction s in
  check_true "pruned fraction in [0,1]" (fr >= 0. && fr <= 1.)

let suite =
  [
    ( "kernels",
      [
        case "zeta witness = naive, all families" test_zeta_matches_naive;
        case "phi witness = naive, all families" test_phi_matches_naive;
        case "gamma = naive, all families" test_gamma_matches_naive;
        case "holds_at = naive" test_holds_at_matches_naive;
        prop_random_witness_identity;
        prop_random_gamma_identity;
        case "second Analysis.run sweeps nothing"
          test_second_run_sweeps_nothing;
        case "cache keyed on bytes, not name"
          test_cache_keys_on_content_not_name;
        case "jobs excluded from cache key" test_jobs_excluded_from_cache_key;
        case "memo basics" test_memo_basics;
        case "memo eviction" test_memo_eviction_bounds_size;
        case "memo concurrent" test_memo_concurrent;
        case "pruning counters" test_pruning_counters;
        case "lazy views race-free under pool"
          test_views_race_free_under_pool;
      ] );
  ]
