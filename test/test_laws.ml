(* Cross-cutting algebraic laws of the model, checked property-style: the
   invariants one would quote in a code review of the paper's definitions.
   Also covers the subsampled metricity estimator and the bursty arrival
   processes. *)

open Testutil
module D = Core.Decay.Decay_space
module Met = Core.Decay.Metricity
module Est = Core.Decay.Estimators
module I = Core.Sinr.Instance
module Pw = Core.Sinr.Power
module Aff = Core.Sinr.Affectance
module F = Core.Sinr.Feasibility

(* -------------------------------------------------------- Metricity laws *)

let prop_zeta_monotone_under_subspace =
  qcheck ~count:40 "zeta(sub-space) <= zeta(space)" QCheck.small_int
    (fun seed ->
      let d = random_asym_space ~n:8 seed in
      let g = rng (seed + 1) in
      let idx = Core.Prelude.Rng.sample g 5 (Array.init 8 Fun.id) in
      Met.zeta (D.sub_space d idx) <= Met.zeta d +. 1e-9)

let prop_phi_monotone_under_subspace =
  qcheck ~count:40 "phi(sub-space) <= phi(space)" QCheck.small_int
    (fun seed ->
      let d = random_asym_space ~n:8 seed in
      let g = rng (seed + 2) in
      let idx = Core.Prelude.Rng.sample g 5 (Array.init 8 Fun.id) in
      Met.phi (D.sub_space d idx) <= Met.phi d +. 1e-9)

let prop_zeta_subsampled_lower_bound =
  qcheck ~count:25 "subsampled zeta never exceeds exact" QCheck.small_int
    (fun seed ->
      let d = random_space ~n:10 seed in
      let e =
        Est.zeta ~replicates:4 ~nodes:6 (rng (seed + 3)) (Est.of_space d)
      in
      e.Est.point <= Met.zeta d +. 1e-9)

let prop_zeta_invariant_under_symmetrize_of_symmetric =
  qcheck ~count:25 "symmetrize is identity on symmetric spaces"
    QCheck.small_int
    (fun seed ->
      let d = random_space ~n:6 seed in
      D.matrix d = D.matrix (D.symmetrize d))

let prop_pow_scales_zeta =
  qcheck ~count:25 "zeta(f^e) = e * zeta(f) when both >= 1" QCheck.small_int
    (fun seed ->
      let d = random_space ~n:6 seed in
      let z = Met.zeta d in
      let e = 1.5 in
      (* Only exact when the base zeta is attained away from the floor. *)
      z <= 1.0001
      || Float.abs (Met.zeta (D.pow e d) -. (e *. z)) < 0.01 *. e *. z)

let prop_scale_bounds_zeta_change =
  qcheck ~count:25 "scaling by k >= 1 can only lower zeta toward 1"
    QCheck.small_int
    (fun seed ->
      (* f -> k*f with k >= 1 makes ratios closer to 1 in the exponent
         sense: zeta(k f) <= zeta(f) is NOT a theorem in general, but the
         upper bound certainly holds; check the a-priori bound only. *)
      let d = random_space ~n:6 seed in
      Met.zeta (D.scale 5. d) <= Met.zeta_upper_bound (D.scale 5. d) +. 1e-9)

(* ------------------------------------------------------- Affectance laws *)

let prop_affectance_additive_in_sets =
  qcheck ~count:30 "in-affectance is additive over disjoint sets"
    QCheck.small_int
    (fun seed ->
      let t = planar_instance ~n_links:8 seed in
      let p = Pw.uniform 1. in
      let all = Array.to_list t.I.links in
      match all with
      | lv :: rest ->
          let half1 = List.filteri (fun i _ -> i mod 2 = 0) rest in
          let half2 = List.filteri (fun i _ -> i mod 2 = 1) rest in
          let a1 = Aff.in_affectance t p half1 lv in
          let a2 = Aff.in_affectance t p half2 lv in
          let a = Aff.in_affectance t p rest lv in
          Float.abs (a -. (a1 +. a2)) < 1e-9
      | [] -> true)

let prop_affectance_scale_invariant_uniform_power =
  qcheck ~count:30 "affectance invariant under decay scaling (uniform power)"
    QCheck.small_int
    (fun seed ->
      let t = planar_instance ~n_links:5 seed in
      let p = Pw.uniform 1. in
      let pairs =
        Array.to_list
          (Array.map
             (fun l -> (l.Core.Sinr.Link.sender, l.Core.Sinr.Link.receiver))
             t.I.links)
      in
      let t2 = I.make ~zeta:t.I.zeta (D.scale 3. t.I.space) pairs in
      let a = t.I.links.(0) and b = t.I.links.(1) in
      let a2 = t2.I.links.(0) and b2 = t2.I.links.(1) in
      Float.abs
        (Aff.affectance t p ~from_:a ~to_:b
        -. Aff.affectance t2 p ~from_:a2 ~to_:b2)
      < 1e-9)

let prop_sinr_antitone_in_interferers =
  qcheck ~count:30 "SINR only drops as transmitters join" QCheck.small_int
    (fun seed ->
      let t = planar_instance ~n_links:6 seed in
      let p = Pw.uniform 1. in
      match Array.to_list t.I.links with
      | lv :: rest ->
          let rec prefixes acc = function
            | [] -> [ acc ]
            | l :: tl -> acc :: prefixes (l :: acc) tl
          in
          let chains = prefixes [ lv ] rest in
          let sinrs = List.map (fun set -> F.sinr t p set lv) chains in
          let rec decreasing = function
            | a :: (b :: _ as tl) -> a >= b -. 1e-9 && decreasing tl
            | _ -> true
          in
          decreasing sinrs
      | [] -> true)

(* ----------------------------------------------------------- Solver laws *)

let prop_alg1_subset_of_links =
  qcheck ~count:25 "alg1 output is a sub-multiset of the instance"
    QCheck.small_int
    (fun seed ->
      let t = planar_instance ~n_links:9 seed in
      let s = Core.Capacity.Alg1.run t in
      let ids_all = Array.to_list (Array.map (fun l -> l.Core.Sinr.Link.id) t.I.links) in
      List.for_all (fun l -> List.mem l.Core.Sinr.Link.id ids_all) s
      && List.length (List.sort_uniq compare (ids s)) = List.length s)

let prop_exact_invariant_under_link_order =
  qcheck ~count:15 "exact capacity size invariant under link permutation"
    QCheck.small_int
    (fun seed ->
      let t = planar_instance ~n_links:8 seed in
      let g = rng (seed + 5) in
      let arr = Array.copy t.I.links in
      Core.Prelude.Rng.shuffle g arr;
      let t2 = I.with_links t arr in
      List.length (Core.Capacity.Exact.capacity t)
      = List.length (Core.Capacity.Exact.capacity t2))

let prop_schedule_length_lower_bound =
  qcheck ~count:20 "slots >= n / max-slot-size" QCheck.small_int (fun seed ->
      let t = planar_instance ~n_links:10 seed in
      let sched = Core.Sched.Scheduler.first_fit t in
      let max_slot =
        List.fold_left (fun a s -> max a (List.length s)) 1 sched
      in
      Core.Sched.Scheduler.length sched * max_slot >= 10)

let prop_rayleigh_product_form =
  qcheck ~count:25 "success probability factorizes over interferers"
    QCheck.small_int
    (fun seed ->
      let t = planar_instance ~n_links:5 seed in
      let p = Pw.uniform 1. in
      match Array.to_list t.I.links with
      | lv :: i1 :: i2 :: _ ->
          let p0 = Core.Sinr.Rayleigh.success_probability t p ~interferers:[ lv ] lv in
          let p1 = Core.Sinr.Rayleigh.success_probability t p ~interferers:[ lv; i1 ] lv in
          let p2 = Core.Sinr.Rayleigh.success_probability t p ~interferers:[ lv; i2 ] lv in
          let p12 =
            Core.Sinr.Rayleigh.success_probability t p ~interferers:[ lv; i1; i2 ] lv
          in
          (* N = 0 here, so p0 = 1 and p12 = p1 * p2. *)
          Float.abs (p12 -. (p1 *. p2 /. Float.max 1e-12 p0)) < 1e-9
      | _ -> true)

(* ----------------------------------------------------- Arrival processes *)

let test_batch_process_mean () =
  let t = planar_instance ~n_links:4 ~side:100. 61 in
  let rates = Array.make 4 0.3 in
  let run process seed =
    Core.Sched.Dynamic.run ~slots:4000 ~process
      ~policy:Core.Sched.Dynamic.Longest_queue_first ~arrival_rates:rates
      (rng seed) t
  in
  let bern = run Core.Sched.Dynamic.Bernoulli 62 in
  let batch = run (Core.Sched.Dynamic.Batch 5) 63 in
  (* Same mean arrivals within sampling noise. *)
  let m1 = float_of_int bern.Core.Sched.Dynamic.arrived /. 4000. in
  let m2 = float_of_int batch.Core.Sched.Dynamic.arrived /. 4000. in
  check_float ~eps:0.1 "means agree" m1 m2;
  (* Burstier arrivals hurt backlog (weakly). *)
  check_true "batch backlog >= bernoulli"
    (batch.Core.Sched.Dynamic.mean_backlog
    >= bern.Core.Sched.Dynamic.mean_backlog -. 0.5)

let test_onoff_process_runs () =
  let t = planar_instance ~n_links:4 ~side:100. 64 in
  let rates = Array.make 4 0.2 in
  let r =
    Core.Sched.Dynamic.run ~slots:3000
      ~process:(Core.Sched.Dynamic.On_off { burst = 20.; idle = 60. })
      ~policy:Core.Sched.Dynamic.Longest_queue_first ~arrival_rates:rates
      (rng 65) t
  in
  let mean = float_of_int r.Core.Sched.Dynamic.arrived /. 3000. /. 4. in
  check_float ~eps:0.08 "on-off preserves mean rate" 0.2 mean;
  check_true "stable under light bursty load" r.Core.Sched.Dynamic.stable

let test_process_validation () =
  let t = planar_instance ~n_links:2 66 in
  Alcotest.check_raises "batch size"
    (Invalid_argument "Dynamic.run: batch size must be >= 1") (fun () ->
      ignore
        (Core.Sched.Dynamic.run ~process:(Core.Sched.Dynamic.Batch 0)
           ~policy:Core.Sched.Dynamic.Longest_queue_first
           ~arrival_rates:[| 0.1; 0.1 |] (rng 67) t));
  Alcotest.check_raises "burst length"
    (Invalid_argument "Dynamic.run: burst/idle lengths must be positive")
    (fun () ->
      ignore
        (Core.Sched.Dynamic.run
           ~process:(Core.Sched.Dynamic.On_off { burst = 0.; idle = 1. })
           ~policy:Core.Sched.Dynamic.Longest_queue_first
           ~arrival_rates:[| 0.1; 0.1 |] (rng 68) t))

(* --------------------------------------------------- Subsampled metricity *)

let test_zeta_subsampled_finds_concentrated_violation () =
  (* Embed a three-point violation inside an otherwise metric space:
     node-subsampling finds it once the triple is drawn together. *)
  let base = Core.Decay.Spaces.three_point ~q:1e6 in
  let n = 9 in
  let d =
    D.of_fn ~name:"hidden" n (fun i j ->
        if i < 3 && j < 3 then D.decay base i j else 1e6)
  in
  let est = Est.zeta ~replicates:60 ~nodes:5 (rng 71) (Est.of_space d) in
  check_true "finds the planted triple" (est.Est.point > 5.)

let test_zeta_subsampled_validation () =
  let d = random_space ~n:5 72 in
  Alcotest.check_raises "nodes range"
    (Invalid_argument "zeta_sub: need 3 <= nodes <= n")
    (fun () -> ignore (Est.zeta ~nodes:2 (rng 73) (Est.of_space d)))

let suite =
  [
    ( "laws.metricity",
      [
        prop_zeta_monotone_under_subspace;
        prop_phi_monotone_under_subspace;
        prop_zeta_subsampled_lower_bound;
        prop_zeta_invariant_under_symmetrize_of_symmetric;
        prop_pow_scales_zeta;
        prop_scale_bounds_zeta_change;
        case "subsample finds planted violation"
          test_zeta_subsampled_finds_concentrated_violation;
        case "subsample validation" test_zeta_subsampled_validation;
      ] );
    ( "laws.affectance",
      [
        prop_affectance_additive_in_sets;
        prop_affectance_scale_invariant_uniform_power;
        prop_sinr_antitone_in_interferers;
        prop_rayleigh_product_form;
      ] );
    ( "laws.solvers",
      [
        prop_alg1_subset_of_links;
        prop_exact_invariant_under_link_order;
        prop_schedule_length_lower_bound;
      ] );
    ( "laws.arrivals",
      [
        case "batch preserves mean" test_batch_process_mean;
        case "on-off preserves mean" test_onoff_process_runs;
        case "process validation" test_process_validation;
      ] );
  ]
