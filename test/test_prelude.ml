open Testutil
module Rng = Core.Prelude.Rng
module Num = Core.Prelude.Numerics
module Stats = Core.Prelude.Stats
module Uf = Core.Prelude.Union_find
module Table = Core.Prelude.Table

(* ------------------------------------------------------------------ Rng *)

let test_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check_true "different seeds diverge" (Rng.int64 a <> Rng.int64 b)

let test_split_independent () =
  let g = Rng.create 3 in
  let h = Rng.split g in
  check_true "split stream differs" (Rng.int64 g <> Rng.int64 h)

let test_copy_replays () =
  let g = Rng.create 11 in
  ignore (Rng.int64 g);
  let h = Rng.copy g in
  Alcotest.(check int64) "copy replays" (Rng.int64 g) (Rng.int64 h)

let test_int_bounds () =
  let g = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.int g 17 in
    check_true "0 <= x < 17" (x >= 0 && x < 17)
  done

let test_int_rejects_nonpositive () =
  let g = Rng.create 5 in
  Alcotest.check_raises "n = 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int g 0))

let test_float_range () =
  let g = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.float g 2.5 in
    check_true "0 <= x < 2.5" (x >= 0. && x < 2.5)
  done

let test_uniform_mean () =
  let g = Rng.create 9 in
  let xs = Array.init 20000 (fun _ -> Rng.uniform g 2. 6.) in
  check_float ~eps:0.1 "mean ~ 4" 4. (Stats.mean xs)

let test_gaussian_moments () =
  let g = Rng.create 13 in
  let xs = Array.init 20000 (fun _ -> Rng.gaussian ~mu:1.5 ~sigma:2. g) in
  check_float ~eps:0.1 "mean" 1.5 (Stats.mean xs);
  check_float ~eps:0.15 "stddev" 2. (Stats.stddev xs)

let test_exponential_mean () =
  let g = Rng.create 17 in
  let xs = Array.init 20000 (fun _ -> Rng.exponential g 0.5) in
  check_float ~eps:0.1 "mean = 1/lambda" 2. (Stats.mean xs)

let test_rayleigh_positive () =
  let g = Rng.create 19 in
  for _ = 1 to 100 do
    check_true "rayleigh > 0" (Rng.rayleigh g 1. > 0.)
  done

let test_lognormal_median () =
  let g = Rng.create 23 in
  let xs = Array.init 20001 (fun _ -> Rng.lognormal ~mu:0.7 ~sigma:0.5 g) in
  (* Median of lognormal is exp mu. *)
  check_float ~eps:0.1 "median = e^mu" (exp 0.7) (Stats.median xs)

let test_pareto_support () =
  let g = Rng.create 29 in
  for _ = 1 to 1000 do
    check_true "pareto >= x_min" (Rng.pareto g ~alpha:2. ~x_min:3. >= 3.)
  done

let test_bernoulli_rate () =
  let g = Rng.create 31 in
  let hits = ref 0 in
  for _ = 1 to 20000 do
    if Rng.bernoulli g 0.3 then incr hits
  done;
  check_float ~eps:0.02 "rate ~ 0.3" 0.3 (float_of_int !hits /. 20000.)

let test_backoff_equal_jitter () =
  let g = Rng.create 53 in
  for attempt = 0 to 8 do
    let nominal = Float.min 2. (0.05 *. (2. ** float_of_int attempt)) in
    let d = Rng.backoff g ~attempt ~base:0.05 ~cap:2. in
    check_true
      (Printf.sprintf "attempt %d in [nominal/2, nominal)" attempt)
      (d >= (nominal /. 2.) -. 1e-12 && d < nominal)
  done;
  (* Same seed, same schedule; bad arguments rejected. *)
  let sched seed =
    let g = Rng.create seed in
    List.init 5 (fun attempt -> Rng.backoff g ~attempt ~base:0.1 ~cap:1.)
  in
  check_true "seeded schedule replays" (sched 7 = sched 7);
  let invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | (_ : float) -> Alcotest.fail "accepted bad backoff arguments"
  in
  invalid (fun () -> Rng.backoff g ~attempt:(-1) ~base:0.1 ~cap:1.);
  invalid (fun () -> Rng.backoff g ~attempt:0 ~base:0. ~cap:1.);
  invalid (fun () -> Rng.backoff g ~attempt:0 ~base:0.5 ~cap:0.1)

let test_shuffle_permutes () =
  let g = Rng.create 37 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_sample_distinct () =
  let g = Rng.create 41 in
  let s = Rng.sample g 10 (Array.init 30 Fun.id) in
  check_int "size" 10 (Array.length s);
  let distinct = List.sort_uniq compare (Array.to_list s) in
  check_int "distinct" 10 (List.length distinct)

let test_sample_too_many () =
  let g = Rng.create 41 in
  Alcotest.check_raises "k > n"
    (Invalid_argument "Rng.sample: k exceeds array length") (fun () ->
      ignore (Rng.sample g 4 [| 1; 2; 3 |]))

(* ------------------------------------------------------------- Numerics *)

let test_zeta_2 () =
  check_float ~eps:1e-9 "zeta(2)" (Float.pi ** 2. /. 6.) (Num.riemann_zeta 2.)

let test_zeta_4 () =
  check_float ~eps:1e-9 "zeta(4)" (Float.pi ** 4. /. 90.) (Num.riemann_zeta 4.)

let test_zeta_monotone () =
  check_true "zeta decreasing" (Num.riemann_zeta 1.5 > Num.riemann_zeta 3.)

let test_zeta_diverges () =
  Alcotest.check_raises "s = 1"
    (Invalid_argument "Numerics.riemann_zeta: requires s > 1") (fun () ->
      ignore (Num.riemann_zeta 1.))

let test_bisect_sqrt () =
  let r = Num.bisect ~lo:0. ~hi:10. (fun x -> x *. x >= 2.) in
  check_float ~eps:1e-6 "sqrt 2" (sqrt 2.) r

let test_bisect_already_true () =
  check_float "p lo holds" 1. (Num.bisect ~lo:1. ~hi:5. (fun x -> x >= 0.))

let test_bisect_never_true () =
  Alcotest.check_raises "p hi false"
    (Invalid_argument "Numerics.bisect: predicate false at hi") (fun () ->
      ignore (Num.bisect ~lo:0. ~hi:1. (fun _ -> false)))

let test_solve_increasing () =
  let r = Num.solve_increasing ~lo:0. ~hi:4. (fun x -> (x *. x) -. 3.) in
  check_float ~eps:1e-6 "sqrt 3" (sqrt 3.) r

let test_feq () =
  check_true "equal" (Num.feq 1. (1. +. 1e-12));
  check_false "not equal" (Num.feq 1. 1.1)

let test_spectral_radius_diag () =
  let m = [| [| 0.5; 0. |]; [| 0.; 0.25 |] |] in
  check_float ~eps:1e-6 "diag" 0.5 (Num.spectral_radius m)

let test_spectral_radius_known () =
  (* [[0 1],[1 0]] has eigenvalues +-1. *)
  let m = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  check_float ~eps:1e-6 "permutation" 1. (Num.spectral_radius m)

let test_spectral_radius_zero () =
  check_float "zero matrix" 0. (Num.spectral_radius [| [| 0. |] |])

let test_harmonic () =
  check_float ~eps:1e-9 "H_4" (1. +. 0.5 +. (1. /. 3.) +. 0.25) (Num.harmonic 4)

let test_clamp () =
  check_float "below" 1. (Num.clamp ~lo:1. ~hi:2. 0.);
  check_float "above" 2. (Num.clamp ~lo:1. ~hi:2. 3.);
  check_float "inside" 1.5 (Num.clamp ~lo:1. ~hi:2. 1.5)

(* ---------------------------------------------------------------- Stats *)

let test_mean () = check_float "mean" 2. (Stats.mean [| 1.; 2.; 3. |])

let test_mean_empty () =
  check_true "nan on empty" (Float.is_nan (Stats.mean [||]))

let test_variance () =
  check_float "variance" 1. (Stats.variance [| 1.; 2.; 3. |])

let test_variance_singleton () =
  check_float "one sample" 0. (Stats.variance [| 5. |])

let test_geometric_mean () =
  check_float ~eps:1e-9 "gm" 2. (Stats.geometric_mean [| 1.; 2.; 4. |])

let test_percentile () =
  let xs = [| 10.; 20.; 30.; 40.; 50. |] in
  check_float "p0" 10. (Stats.percentile xs 0.);
  check_float "p50" 30. (Stats.percentile xs 50.);
  check_float "p100" 50. (Stats.percentile xs 100.);
  check_float "p25" 20. (Stats.percentile xs 25.)

let test_median_even () =
  check_float "median interpolates" 2.5 (Stats.median [| 1.; 2.; 3.; 4. |])

let test_pearson_perfect () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let ys = Array.map (fun x -> (2. *. x) +. 1.) xs in
  check_float ~eps:1e-9 "r = 1" 1. (Stats.pearson xs ys)

let test_pearson_anticorrelated () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let ys = Array.map (fun x -> -.x) xs in
  check_float ~eps:1e-9 "r = -1" (-1.) (Stats.pearson xs ys)

let test_pearson_constant () =
  check_float "constant gives 0" 0. (Stats.pearson [| 1.; 1. |] [| 2.; 3. |])

let test_spearman_monotone () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  let ys = Array.map (fun x -> exp x) xs in
  check_float ~eps:1e-9 "rank r = 1" 1. (Stats.spearman xs ys)

let test_spearman_ties () =
  let xs = [| 1.; 1.; 2.; 3. |] and ys = [| 1.; 1.; 2.; 3. |] in
  check_float ~eps:1e-9 "ties ok" 1. (Stats.spearman xs ys)

let test_linear_fit () =
  let xs = [| 0.; 1.; 2.; 3. |] in
  let ys = Array.map (fun x -> (3. *. x) -. 1. ) xs in
  let f = Stats.linear_fit xs ys in
  check_float ~eps:1e-9 "slope" 3. f.Stats.slope;
  check_float ~eps:1e-9 "intercept" (-1.) f.Stats.intercept;
  check_float ~eps:1e-9 "r2" 1. f.Stats.r2

let test_loglog_fit () =
  let xs = [| 1.; 2.; 4.; 8. |] in
  let ys = Array.map (fun x -> 5. *. (x ** 2.5)) xs in
  let f = Stats.loglog_fit xs ys in
  check_float ~eps:1e-9 "power-law exponent" 2.5 f.Stats.slope

let test_loglog_rejects_nonpositive () =
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Stats.loglog_fit: nonpositive value") (fun () ->
      ignore (Stats.loglog_fit [| 0.; 1. |] [| 1.; 2. |]))

let test_histogram () =
  let h = Stats.histogram ~bins:2 [| 0.; 1.; 2.; 3. |] in
  check_int "total count" 4 (Array.fold_left ( + ) 0 h.Stats.counts);
  check_int "bins" 2 (Array.length h.Stats.counts)

let test_summary_nonempty () =
  check_true "mentions mean"
    (String.length (Stats.summary [| 1.; 2. |]) > 10)

(* ----------------------------------------------------------- Union-find *)

let test_uf_basic () =
  let u = Uf.create 5 in
  check_int "initial classes" 5 (Uf.count u);
  check_true "union merges" (Uf.union u 0 1);
  check_false "re-union no-op" (Uf.union u 0 1);
  check_true "connected" (Uf.connected u 0 1);
  check_false "not connected" (Uf.connected u 0 2);
  check_int "classes after" 4 (Uf.count u)

let test_uf_transitive () =
  let u = Uf.create 4 in
  ignore (Uf.union u 0 1);
  ignore (Uf.union u 1 2);
  check_true "transitivity" (Uf.connected u 0 2);
  check_int "classes" 2 (Uf.count u)

(* ---------------------------------------------------------------- Table *)

let contains_substring s sub =
  let n = String.length sub in
  let rec find i =
    if i + n > String.length s then false
    else if String.sub s i n = sub then true
    else find (i + 1)
  in
  find 0

let test_table_render () =
  let t = Table.create ~title:"widths" [ "a"; "bb" ] in
  Table.add_row t [ Table.I 1; Table.F2 3.14159 ];
  let s = Table.render t in
  check_true "has title" (contains_substring s "widths");
  check_true "rounds to 2dp" (contains_substring s "3.14");
  check_true "no 3rd decimal" (not (contains_substring s "3.141"))

let test_table_arity () =
  let t = Table.create ~title:"t" [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ Table.I 1 ])

let test_table_csv () =
  let t = Table.create ~title:"t" [ "a"; "b" ] in
  Table.add_row t [ Table.S "x,y"; Table.I 2 ];
  let csv = Table.to_csv t in
  check_true "escapes comma"
    (String.length csv > 0
    && String.split_on_char '\n' csv |> List.length = 2)

let test_cell_to_string () =
  Alcotest.(check string) "F4" "0.1235" (Table.cell_to_string (Table.F4 0.12349));
  Alcotest.(check string) "I" "42" (Table.cell_to_string (Table.I 42));
  Alcotest.(check string) "S" "hi" (Table.cell_to_string (Table.S "hi"))

(* --------------------------------------------------------------- QCheck *)

let prop_percentile_bounds =
  qcheck "percentile within min..max" QCheck.(list_of_size Gen.(1 -- 40) (float_bound_exclusive 100.))
    (fun l ->
      let xs = Array.of_list l in
      let lo, hi = Stats.min_max xs in
      let p = Stats.percentile xs 37. in
      p >= lo -. 1e-9 && p <= hi +. 1e-9)

let prop_spearman_range =
  qcheck "spearman in [-1,1]" QCheck.(pair small_int small_int) (fun (s1, s2) ->
      let g = rng ((s1 * 1000) + s2) in
      let xs = Array.init 20 (fun _ -> Rng.float g 10.) in
      let ys = Array.init 20 (fun _ -> Rng.float g 10.) in
      let r = Stats.spearman xs ys in
      r >= -1.0000001 && r <= 1.0000001)

let prop_shuffle_preserves_multiset =
  qcheck "shuffle preserves multiset" QCheck.small_int (fun seed ->
      let g = rng seed in
      let arr = Array.init 30 (fun i -> i mod 7) in
      let before = List.sort compare (Array.to_list arr) in
      Rng.shuffle g arr;
      List.sort compare (Array.to_list arr) = before)

(* ------------------------------------------------------------- Parallel *)

module Par = Core.Prelude.Parallel

let test_par_run_order () =
  let results =
    Par.run (Array.init 17 (fun i () -> i * i))
  in
  Array.iteri
    (fun i v -> check_int (Printf.sprintf "slot %d" i) (i * i) v)
    results

let test_par_run_exn () =
  Alcotest.check_raises "first exception re-raised" Exit (fun () ->
      ignore
        (Par.run
           (Array.init 8 (fun i () -> if i = 3 then raise Exit else i))))

let test_par_mrc_cover () =
  (* Every index in [lo, hi) is mapped exactly once, whatever the job
     count: summing chunk widths and chunk sums must match the range. *)
  List.iter
    (fun jobs ->
      let total =
        Par.map_reduce_chunks ~jobs ~lo:3 ~hi:40 ~neutral:0
          ~map:(fun lo hi ->
            let s = ref 0 in
            for i = lo to hi - 1 do
              s := !s + i
            done;
            !s)
          ~combine:( + )
      in
      let expected = (39 * 40 / 2) - (2 * 3 / 2) in
      check_int (Printf.sprintf "sum at jobs=%d" jobs) expected total)
    [ 1; 2; 3; 4; 7; 64 ]

let test_par_mrc_empty () =
  check_int "empty range yields neutral" 42
    (Par.map_reduce_chunks ~jobs:4 ~lo:5 ~hi:5 ~neutral:42
       ~map:(fun _ _ -> 0)
       ~combine:( + ))

let test_par_mrc_deterministic () =
  (* Chunk-order folding: a non-commutative combine (list append) gives the
     same result at every jobs count. *)
  let collect jobs =
    Par.map_reduce_chunks ~jobs ~lo:0 ~hi:23 ~neutral:[]
      ~map:(fun lo hi -> List.init (hi - lo) (fun k -> lo + k))
      ~combine:( @ )
  in
  let seq = collect 1 in
  List.iter
    (fun jobs ->
      check_true
        (Printf.sprintf "order preserved at jobs=%d" jobs)
        (collect jobs = seq))
    [ 2; 4; 5; 23 ]

let test_par_pool_lifecycle () =
  let pool = Par.create ~num_domains:2 () in
  check_int "two workers" 2 (Par.num_domains pool);
  let r = Par.run ~pool (Array.init 5 (fun i () -> i + 1)) in
  check_int "pool computes" 5 r.(4);
  Par.shutdown pool;
  check_int "workers joined" 0 (Par.num_domains pool)

let test_par_resolve_jobs () =
  check_int "explicit wins" 6 (Par.resolve_jobs (Some 6));
  check_int "clamped to 1" 1 (Par.resolve_jobs (Some 0));
  let saved = Par.default_jobs () in
  Par.set_default_jobs 3;
  check_int "ambient default" 3 (Par.resolve_jobs None);
  Par.set_default_jobs saved

let suite =
  [
    ( "prelude.rng",
      [
        case "determinism" test_determinism;
        case "seed sensitivity" test_seed_sensitivity;
        case "split independence" test_split_independent;
        case "copy replays" test_copy_replays;
        case "int bounds" test_int_bounds;
        case "int rejects nonpositive" test_int_rejects_nonpositive;
        case "float range" test_float_range;
        case "uniform mean" test_uniform_mean;
        case "gaussian moments" test_gaussian_moments;
        case "exponential mean" test_exponential_mean;
        case "rayleigh positive" test_rayleigh_positive;
        case "lognormal median" test_lognormal_median;
        case "pareto support" test_pareto_support;
        case "bernoulli rate" test_bernoulli_rate;
        case "backoff equal jitter" test_backoff_equal_jitter;
        case "shuffle permutes" test_shuffle_permutes;
        case "sample distinct" test_sample_distinct;
        case "sample too many" test_sample_too_many;
        prop_shuffle_preserves_multiset;
      ] );
    ( "prelude.numerics",
      [
        case "riemann zeta(2)" test_zeta_2;
        case "riemann zeta(4)" test_zeta_4;
        case "zeta monotone" test_zeta_monotone;
        case "zeta diverges at 1" test_zeta_diverges;
        case "bisect sqrt2" test_bisect_sqrt;
        case "bisect immediate" test_bisect_already_true;
        case "bisect impossible" test_bisect_never_true;
        case "solve increasing" test_solve_increasing;
        case "feq" test_feq;
        case "spectral radius diagonal" test_spectral_radius_diag;
        case "spectral radius symmetric" test_spectral_radius_known;
        case "spectral radius zero" test_spectral_radius_zero;
        case "harmonic" test_harmonic;
        case "clamp" test_clamp;
      ] );
    ( "prelude.stats",
      [
        case "mean" test_mean;
        case "mean empty" test_mean_empty;
        case "variance" test_variance;
        case "variance singleton" test_variance_singleton;
        case "geometric mean" test_geometric_mean;
        case "percentile" test_percentile;
        case "median even" test_median_even;
        case "pearson perfect" test_pearson_perfect;
        case "pearson anticorrelated" test_pearson_anticorrelated;
        case "pearson constant" test_pearson_constant;
        case "spearman monotone" test_spearman_monotone;
        case "spearman ties" test_spearman_ties;
        case "linear fit" test_linear_fit;
        case "loglog fit" test_loglog_fit;
        case "loglog rejects nonpositive" test_loglog_rejects_nonpositive;
        case "histogram" test_histogram;
        case "summary" test_summary_nonempty;
        prop_percentile_bounds;
        prop_spearman_range;
      ] );
    ( "prelude.parallel",
      [
        case "run returns in order" test_par_run_order;
        case "run propagates exceptions" test_par_run_exn;
        case "map_reduce covers range once" test_par_mrc_cover;
        case "map_reduce neutral on empty" test_par_mrc_empty;
        case "map_reduce jobs-independent" test_par_mrc_deterministic;
        case "dedicated pool lifecycle" test_par_pool_lifecycle;
        case "resolve_jobs" test_par_resolve_jobs;
      ] );
    ( "prelude.union_find",
      [ case "basic" test_uf_basic; case "transitive" test_uf_transitive ] );
    ( "prelude.table",
      [
        case "render" test_table_render;
        case "arity" test_table_arity;
        case "csv" test_table_csv;
        case "cell to string" test_cell_to_string;
      ] );
  ]
