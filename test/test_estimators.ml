(* The estimator tier (Core.Decay.Estimators) is cross-validated against
   the exact kernels where both can run: point estimates are certified
   lower bounds (hard invariant, every trial), confidence intervals
   contain the exact value at no less than nominal-minus-5% over a fixed
   deterministic trial set, and every estimate is bit-reproducible from
   its seed at every job count. *)

open Testutil
module D = Core.Decay.Decay_space
module Met = Core.Decay.Metricity
module Fad = Core.Decay.Fading
module Sp = Core.Decay.Spaces
module Est = Core.Decay.Estimators
module Ctx = Core.Decay.Ctx
module Rng = Core.Prelude.Rng

let uncached = Ctx.uncached

(* A deterministic zoo of spaces the coverage claim is audited on: random
   symmetric/asymmetric matrices and geometric spaces, n <= 64 so the
   exact kernel stays cheap across ~60 trials. *)
let trial_space i =
  match i mod 3 with
  | 0 -> random_space ~n:(16 + (8 * (i mod 5))) (1000 + i)
  | 1 -> random_asym_space ~n:(16 + (8 * (i mod 5))) (2000 + i)
  | _ ->
      D.of_points ~alpha:3.
        (Sp.random_points (Rng.create (3000 + i)) ~n:(24 + (4 * (i mod 6)))
           ~side:30.)

let trials = 60
let confidence = 0.9

(* nominal - 5%: the acceptance bar from the issue.  The trial set and
   seeds are fixed, so this is a deterministic regression test, not a
   flaky statistical one — if calibration drifts, it fails reproducibly. *)
let required = int_of_float (ceil (float_of_int (trials) *. (confidence -. 0.05)))

let test_zeta_ci_coverage () =
  let covered = ref 0 in
  for i = 0 to trials - 1 do
    let d = trial_space i in
    let exact = Met.zeta ~ctx:uncached d in
    let e =
      Est.zeta ~confidence ~nodes:(D.n d / 2) (rng (100 + i))
        (Est.of_space d)
    in
    check_true "point is a lower bound" (e.Est.point <= exact +. 1e-9);
    check_true "lo = point" (e.Est.lo = e.Est.point);
    check_true "hi >= point" (e.Est.hi >= e.Est.point);
    if exact <= e.Est.hi then incr covered
  done;
  check_true
    (Printf.sprintf "zeta CI coverage %d/%d >= %d" !covered trials required)
    (!covered >= required)

let test_phi_ci_coverage () =
  let covered = ref 0 in
  for i = 0 to trials - 1 do
    let d = trial_space i in
    let exact = Met.phi ~ctx:uncached d in
    let e =
      Est.phi ~confidence ~nodes:(D.n d / 2) (rng (200 + i)) (Est.of_space d)
    in
    check_true "point is a lower bound" (e.Est.point <= exact +. 1e-9);
    if exact <= e.Est.hi then incr covered
  done;
  check_true
    (Printf.sprintf "phi CI coverage %d/%d >= %d" !covered trials required)
    (!covered >= required)

let test_gamma_ci_coverage () =
  let covered = ref 0 and n_trials = 20 in
  let req = int_of_float (ceil (float_of_int n_trials *. (confidence -. 0.05))) in
  for i = 0 to n_trials - 1 do
    let d = trial_space i in
    let r = D.min_decay d *. 2. in
    let exact = Fad.gamma ~ctx:uncached d ~r in
    let e =
      Est.gamma ~confidence ~listeners:(D.n d / 2) (rng (300 + i))
        (Est.of_space d) ~r
    in
    check_true "point is a lower bound" (e.Est.point <= exact +. 1e-9);
    if exact <= e.Est.hi then incr covered
  done;
  check_true
    (Printf.sprintf "gamma CI coverage %d/%d >= %d" !covered n_trials req)
    (!covered >= req)

let prop_zeta_triples_lower_bound =
  qcheck ~count:30 "zeta_triples point never exceeds exact" QCheck.small_int
    (fun seed ->
      let d = random_asym_space ~n:12 seed in
      let e = Est.zeta_triples ~samples:500 (rng (seed + 7)) (Est.of_space d) in
      e.Est.point <= Met.zeta ~ctx:uncached d +. 1e-9
      && e.Est.point >= 1. && e.Est.hi >= e.Est.point)

(* ---------------------------------------------- determinism across jobs *)

let prop_seed_determinism_across_jobs =
  qcheck ~count:15
    "estimates are bit-identical from a seed at every job count"
    QCheck.small_int
    (fun seed ->
      let d = random_asym_space ~n:20 seed in
      let o = Est.of_space d in
      let at jobs =
        let ctx = Ctx.make ~jobs () in
        ( Est.zeta ~ctx ~nodes:10 (rng (seed + 11)) o,
          Est.phi ~ctx ~nodes:8 (rng (seed + 13)) o,
          Est.gamma ~ctx ~listeners:6 (rng (seed + 17)) o
            ~r:(D.min_decay d *. 1.5),
          Est.zeta_triples ~samples:200 (rng (seed + 19)) o )
      in
      at 1 = at 4)

let test_rerun_identical () =
  (* Same seed, same call: the full estimate record reproduces, including
     the replicate array. *)
  let d = random_space ~n:24 99 in
  let o = Est.of_space d in
  let a = Est.zeta ~nodes:12 (rng 5) o and b = Est.zeta ~nodes:12 (rng 5) o in
  check_true "identical records" (a = b)

(* ------------------------------------------------------- oracle plumbing *)

let test_of_points_matches_materialized () =
  let pts = Sp.random_points (Rng.create 41) ~n:32 ~side:25. in
  let d = D.of_points ~alpha:3. pts in
  let o = Est.of_points ~alpha:3. pts in
  let a = Est.zeta ~nodes:16 (rng 6) o
  and b = Est.zeta ~nodes:16 (rng 6) (Est.of_space d) in
  (* of_points recomputes dist^alpha per probe; of_space reads the
     tabulated matrix built by the same formula — same floats, bit-equal
     replicates. *)
  check_true "oracle = materialized space" (a = b)

let test_planted_violation_found () =
  (* A severe violation on adjacent indices: invisible to purely
     index-stratified draws (two of the three nodes share a stratum), so
     this exercises the alternating uniform draws. *)
  let base = Sp.three_point ~q:1e6 in
  let n = 16 in
  let d =
    D.of_fn ~name:"hidden" n (fun i j ->
        if i < 3 && j < 3 then D.decay base i j else 1e6)
  in
  let e = Est.zeta ~replicates:40 ~nodes:6 (rng 51) (Est.of_space d) in
  check_true "planted triple found" (e.Est.point > 5.)

let test_validation () =
  let d = random_space ~n:6 1 in
  let o = Est.of_space d in
  Alcotest.check_raises "nodes too small"
    (Invalid_argument "zeta_sub: need 3 <= nodes <= n") (fun () ->
      ignore (Est.zeta ~nodes:2 (rng 1) o));
  Alcotest.check_raises "nodes beyond n"
    (Invalid_argument "phi_sub: need 3 <= nodes <= n") (fun () ->
      ignore (Est.phi ~nodes:7 (rng 1) o));
  Alcotest.check_raises "listeners range"
    (Invalid_argument "Estimators.gamma: need 1 <= listeners <= n")
    (fun () -> ignore (Est.gamma ~listeners:0 (rng 1) o ~r:1.));
  Alcotest.check_raises "samples vs replicates"
    (Invalid_argument "Estimators.zeta_triples: need samples >= replicates")
    (fun () -> ignore (Est.zeta_triples ~samples:3 ~replicates:8 (rng 1) o));
  Alcotest.check_raises "confidence range"
    (Invalid_argument "Estimators: confidence must be in (0, 1)") (fun () ->
      ignore (Est.zeta ~confidence:1. ~nodes:3 (rng 1) o))

let test_gamma_matches_exact_on_full_listener_set () =
  (* With every listener sampled (one stratum per node) and the same
     exact_limit, a replicate is exactly Fading.gamma. *)
  let d = random_asym_space ~n:10 7 in
  let r = D.min_decay d *. 1.5 in
  let exact = Fad.gamma ~ctx:uncached d ~r in
  let e = Est.gamma ~replicates:1 ~listeners:10 (rng 8) (Est.of_space d) ~r in
  check_float ~eps:0. "full listener set = exact gamma" exact e.Est.point

let suite =
  [
    ( "estimators",
      [
        case "zeta CI coverage on the trial zoo" test_zeta_ci_coverage;
        case "phi CI coverage" test_phi_ci_coverage;
        case "gamma CI coverage" test_gamma_ci_coverage;
        prop_zeta_triples_lower_bound;
        prop_seed_determinism_across_jobs;
        case "same-seed rerun is bit-identical" test_rerun_identical;
        case "point oracle = materialized space"
          test_of_points_matches_materialized;
        case "planted adjacent violation found" test_planted_violation_found;
        case "argument validation" test_validation;
        case "full listener set = exact gamma"
          test_gamma_matches_exact_on_full_listener_set;
      ] );
  ]
