(* Smoke-test the experiment registry: the sub-second experiments run
   inside the unit-test suite so a regression in any claim check is caught
   by `dune runtest`, not only by the bench harness.  (The full set runs in
   bench/main.exe; see EXPERIMENTS.md.) *)

open Testutil

let run_quiet id =
  (* The experiments print their tables; keep runtest output readable by
     swallowing stdout around the call. *)
  match Bg_experiments.Registry.find id with
  | None -> Alcotest.fail ("unknown experiment " ^ id)
  | Some e ->
      let o = e.Bg_experiments.Registry.run () in
      check_true (id ^ " verdict") o.Bg_experiments.Registry.pass;
      (* Structured outcomes: a recorded measured value must actually be on
         the right side of a recorded bound when the experiment passes with
         both present and a leq/geq reading; at minimum it must be finite. *)
      (match o.Bg_experiments.Registry.measured with
      | Some m -> check_true (id ^ " measured finite") (Float.is_finite m)
      | None -> ());
      check_true (id ^ " has detail")
        (String.length o.Bg_experiments.Registry.detail > 0)

let case_for id = case id (fun () -> run_quiet id)

let test_registry_complete () =
  check_int "30 experiments registered" 30
    (List.length Bg_experiments.Registry.all);
  (* Ids are unique and well-formed. *)
  let ids = List.map (fun e -> e.Bg_experiments.Registry.id) Bg_experiments.Registry.all in
  check_int "unique ids" 30 (List.length (List.sort_uniq compare ids));
  check_true "find is case-insensitive"
    (Bg_experiments.Registry.find "e7" <> None);
  check_true "unknown id" (Bg_experiments.Registry.find "E99" = None)

let suite =
  [
    ( "experiments.registry",
      [
        case "registry metadata" test_registry_complete;
        (* The fastest claim experiments, as regression canaries. *)
        case_for "E1";
        case_for "E3";
        case_for "E9";
        case_for "E10";
        case_for "E26";
      ] );
  ]
