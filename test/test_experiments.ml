(* Registry-level tests: the full experiment catalogue (E1..E31) runs
   inside `dune runtest` under the Isolate wrapper — every id must finish
   with a structured passing outcome, and the id sequence itself must be
   unique and dense.  (bench/main.exe runs the same registry unisolated;
   see EXPERIMENTS.md.) *)

open Testutil
module R = Bg_experiments.Registry
module Isolate = Bg_experiments.Isolate

let n_registered = List.length R.all

let test_registry_complete () =
  let ids = List.map (fun e -> e.R.id) R.all in
  check_int "unique ids" n_registered (List.length (List.sort_uniq compare ids));
  (* Dense: the ids are exactly E1..E<n>, in order. *)
  List.iteri
    (fun i id -> check_true (Printf.sprintf "id %d is E%d" i (i + 1))
        (String.equal id (Printf.sprintf "E%d" (i + 1))))
    ids;
  check_true "E31 is registered" (n_registered >= 31);
  check_true "find is case-insensitive" (R.find "e7" <> None);
  check_true "unknown id" (R.find (Printf.sprintf "E%d" (n_registered + 1)) = None)

(* Every registered experiment, under Isolate with a real timeout: the
   status must be Finished (not Crashed/Timed_out), the outcome must
   pass, any measured/bound must be finite, and detail must be
   non-empty.  This is the registry-wide structured-outcome contract. *)
let run_isolated (e : R.entry) () =
  let res = Isolate.run_entry ~timeout_s:120. ~retries:0 e in
  check_int (e.R.id ^ " single attempt") 1 res.Isolate.attempts;
  match res.Isolate.status with
  | Isolate.Crashed { exn; backtrace } ->
      Alcotest.fail (Printf.sprintf "%s crashed: %s\n%s" e.R.id exn backtrace)
  | Isolate.Timed_out budget ->
      Alcotest.fail (Printf.sprintf "%s timed out (%.0fs)" e.R.id budget)
  | Isolate.Finished o ->
      check_true (e.R.id ^ " verdict") o.R.pass;
      check_true (e.R.id ^ " isolate agrees") (Isolate.passed res);
      (match o.R.measured with
      | Some m -> check_true (e.R.id ^ " measured finite") (Float.is_finite m)
      | None -> ());
      (match o.R.bound with
      | Some b -> check_true (e.R.id ^ " bound finite") (Float.is_finite b)
      | None -> ());
      check_true (e.R.id ^ " has detail") (String.length o.R.detail > 0)

let suite =
  [
    ( "experiments.registry",
      case "registry metadata" test_registry_complete
      :: List.map
           (fun e -> case (e.R.id ^ " under Isolate") (run_isolated e))
           R.all );
  ]
