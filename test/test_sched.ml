open Testutil
module I = Core.Sinr.Instance
module Pw = Core.Sinr.Power
module Sch = Core.Sched.Scheduler

let test_first_fit_valid () =
  List.iter
    (fun seed ->
      let t = planar_instance ~n_links:14 seed in
      let s = Sch.first_fit t in
      check_true "valid schedule" (Sch.verify t s))
    [ 1; 2; 3 ]

let test_first_fit_dense_needs_more_slots () =
  (* Cramming links into a smaller area forces longer schedules. *)
  let sparse = planar_instance ~n_links:14 ~side:60. 4 in
  let dense = planar_instance ~n_links:14 ~side:6. 4 in
  check_true "denser => more slots"
    (Sch.length (Sch.first_fit dense) >= Sch.length (Sch.first_fit sparse))

let test_first_fit_singleton () =
  let t = planar_instance ~n_links:1 5 in
  check_int "one slot" 1 (Sch.length (Sch.first_fit t))

let test_via_capacity_valid () =
  List.iter
    (fun seed ->
      let t = planar_instance ~n_links:14 seed in
      let s = Sch.via_capacity t in
      check_true "valid schedule" (Sch.verify t s))
    [ 6; 7 ]

let test_via_capacity_custom_algorithm () =
  let t = planar_instance ~n_links:10 8 in
  let s =
    Sch.via_capacity ~algorithm:Core.Capacity.Greedy.strongest_first t
  in
  check_true "valid with greedy" (Sch.verify t s)

let test_verify_rejects_bad_schedules () =
  let t = planar_instance ~n_links:6 9 in
  let links = Array.to_list t.I.links in
  (* Missing a link. *)
  check_false "missing link" (Sch.verify t [ List.tl links ]);
  (* Duplicated link. *)
  check_false "duplicate link"
    (Sch.verify t [ links; [ List.hd links ] ])

let test_schedule_length_bounded_by_n () =
  let t = planar_instance ~n_links:12 10 in
  check_true "at most one slot per link" (Sch.length (Sch.first_fit t) <= 12)

let test_empty_instance () =
  let t = planar_instance ~n_links:2 11 in
  let t0 = I.with_links t [||] in
  check_int "no slots" 0 (Sch.length (Sch.first_fit t0));
  check_true "empty valid" (Sch.verify t0 (Sch.first_fit t0))

let prop_first_fit_always_valid =
  qcheck ~count:40 "first-fit schedules verify" QCheck.small_int (fun seed ->
      let t = planar_instance ~n_links:10 ~alpha:2.5 seed in
      Sch.verify t (Sch.first_fit t))

let prop_via_capacity_always_valid =
  qcheck ~count:25 "capacity-reduction schedules verify" QCheck.small_int
    (fun seed ->
      let t = planar_instance ~n_links:10 seed in
      Sch.verify t (Sch.via_capacity t))

let prop_schedules_on_random_decay_spaces =
  qcheck ~count:25 "schedules work on arbitrary decay spaces" QCheck.small_int
    (fun seed ->
      let sp = random_space ~n:16 ~range:30. seed in
      let t =
        I.random_links_in_space ~zeta:(Core.Decay.Metricity.zeta sp) (rng (seed + 7))
          ~n_links:5 ~max_decay:(Core.Decay.Decay_space.max_decay sp) sp
      in
      Sch.verify t (Sch.first_fit t))

(* ------------------------------------------------- slot re-verification *)

let test_first_fit_slots_individually_feasible () =
  (* [verify] checks the partition property and per-slot feasibility
     together; re-verify each slot independently against the raw SINR
     test so a verify bug cannot mask an infeasible slot. *)
  List.iter
    (fun seed ->
      let t = planar_instance ~n_links:14 seed in
      let p = Pw.uniform 1. in
      List.iteri
        (fun i slot ->
          check_true
            (Printf.sprintf "slot %d feasible (seed %d)" i seed)
            (Core.Sinr.Feasibility.is_feasible t p slot))
        (Sch.first_fit t))
    [ 21; 22; 23 ]

let prop_all_slots_feasible =
  qcheck ~count:25 "every slot of every schedule is SINR-feasible"
    QCheck.small_int
    (fun seed ->
      let t = planar_instance ~n_links:10 seed in
      let p = Pw.uniform 1. in
      List.for_all
        (fun sched ->
          List.for_all (Core.Sinr.Feasibility.is_feasible t p) sched)
        [ Sch.first_fit t; Sch.via_capacity t ])

(* ------------------------------------------------------- flexible rates *)

module R = Core.Sched.Rates

let test_rates_schedule_completes_and_verifies () =
  let t = planar_instance ~n_links:8 31 in
  let demands = Array.make 8 0.5 in
  let r = R.schedule ~demands t in
  check_true "completed" r.R.completed;
  check_true "verifies" (R.verify t ~demands r);
  check_int "one transcript entry per slot" r.R.slots
    (List.length r.R.transcript);
  Array.iteri
    (fun id res ->
      check_true
        (Printf.sprintf "demand of link %d served" id)
        (res <= 1e-9))
    r.R.residual

let test_rates_rejects_nonpositive_demands () =
  let t = planar_instance ~n_links:6 32 in
  Alcotest.check_raises "zero demand rejected"
    (Invalid_argument "Rates.schedule: demands must be positive") (fun () ->
      ignore (R.schedule ~demands:(Array.make 6 0.) t))

let test_rates_monotone_in_demands () =
  (* Serving more bits can never take fewer slots. *)
  let t = planar_instance ~n_links:8 33 in
  let slots_for d =
    let r = R.schedule ~demands:(Array.make 8 d) t in
    check_true "completed" r.R.completed;
    r.R.slots
  in
  let s1 = slots_for 0.25 in
  let s2 = slots_for 0.5 in
  let s4 = slots_for 1.0 in
  check_true "demand 2x => slots >=" (s2 >= s1);
  check_true "demand 4x => slots >=" (s4 >= s2)

let test_rates_budget_cuts_off () =
  (* An absurd demand cannot complete in one slot; the budget is honored
     and the incomplete result fails verification. *)
  let t = planar_instance ~n_links:8 34 in
  let demands = Array.make 8 1e6 in
  let r = R.schedule ~max_slots:1 ~demands t in
  check_false "not completed" r.R.completed;
  check_int "budget honored" 1 r.R.slots;
  check_false "incomplete result does not verify" (R.verify t ~demands r)

let test_rate_decreases_with_interference () =
  let t = planar_instance ~n_links:6 35 in
  let p = Pw.uniform 1. in
  let links = Array.to_list t.I.links in
  match links with
  | v :: u :: _ ->
      let alone = R.rate t p [ v ] v in
      let crowded = R.rate t p [ v; u ] v in
      check_true "positive rate alone" (alone > 0.);
      check_true "interference cannot raise the rate"
        (crowded <= alone +. 1e-12)
  | _ -> Alcotest.fail "instance too small"

let prop_rates_verify =
  qcheck ~count:15 "completed rate schedules verify" QCheck.small_int
    (fun seed ->
      let t = planar_instance ~n_links:7 seed in
      let demands = Array.make 7 (0.1 +. float_of_int (seed mod 5) *. 0.1) in
      let r = R.schedule ~demands t in
      (not r.R.completed) || R.verify t ~demands r)

let suite =
  [
    ( "sched.scheduler",
      [
        case "first-fit valid" test_first_fit_valid;
        case "density lengthens schedule" test_first_fit_dense_needs_more_slots;
        case "singleton" test_first_fit_singleton;
        case "via capacity valid" test_via_capacity_valid;
        case "via custom algorithm" test_via_capacity_custom_algorithm;
        case "verify rejects bad" test_verify_rejects_bad_schedules;
        case "length bounded" test_schedule_length_bounded_by_n;
        case "empty instance" test_empty_instance;
        prop_first_fit_always_valid;
        prop_via_capacity_always_valid;
        prop_schedules_on_random_decay_spaces;
        case "slots individually feasible"
          test_first_fit_slots_individually_feasible;
        prop_all_slots_feasible;
      ] );
    ( "sched.rates_invariants",
      [
        case "completes and verifies" test_rates_schedule_completes_and_verifies;
        case "rejects non-positive demands" test_rates_rejects_nonpositive_demands;
        case "monotone in demands" test_rates_monotone_in_demands;
        case "slot budget" test_rates_budget_cuts_off;
        case "interference lowers rate" test_rate_decreases_with_interference;
        prop_rates_verify;
      ] );
  ]
