open Testutil
module I = Core.Sinr.Instance
module F = Core.Sinr.Feasibility
module Pw = Core.Sinr.Power
module Alg1 = Core.Capacity.Alg1
module Greedy = Core.Capacity.Greedy
module Exact = Core.Capacity.Exact
module Amic = Core.Capacity.Amicability
module Auction = Core.Capacity.Auction
module Online = Core.Capacity.Online
module Weighted = Core.Capacity.Weighted

(* ----------------------------------------------------------- Algorithm 1 *)

let test_alg1_returns_feasible () =
  List.iter
    (fun seed ->
      let t = planar_instance ~n_links:15 seed in
      let s = Alg1.run t in
      check_true "feasible output" (F.is_feasible t (Pw.uniform 1.) s))
    [ 1; 2; 3; 4; 5 ]

let test_alg1_nonempty_on_nonempty () =
  let t = planar_instance ~n_links:10 7 in
  check_true "selects something" (List.length (Alg1.run t) >= 1)

let test_alg1_single_link () =
  let t = planar_instance ~n_links:1 8 in
  check_int "takes the only link" 1 (List.length (Alg1.run t))

let test_alg1_separated_output () =
  let t = planar_instance ~n_links:15 9 in
  let s = Alg1.run t in
  check_true "zeta/2-separated"
    (Core.Sinr.Separation.is_separated_set t ~eta:(t.I.zeta /. 2.) s)

let test_alg1_trace_verdicts () =
  let t = planar_instance ~n_links:12 10 in
  let s, verdicts = Alg1.run_with_trace t in
  let accepted =
    Array.to_list verdicts |> List.filter (fun v -> v = `Accepted) |> List.length
  in
  check_true "accepted >= |S|" (accepted >= List.length s)

(* --------------------------------------------------------------- Greedy *)

let test_affectance_greedy_feasible () =
  List.iter
    (fun seed ->
      let t = planar_instance ~n_links:15 seed in
      let s = Greedy.affectance_greedy t in
      check_true "feasible" (F.is_feasible t (Pw.uniform 1.) s))
    [ 11; 12; 13 ]

let test_strongest_first_feasible_maximal () =
  let t = planar_instance ~n_links:12 14 in
  let p = Pw.uniform 1. in
  let s = Greedy.strongest_first t in
  check_true "feasible" (F.is_feasible t p s);
  (* Maximality: no rejected link can be added back. *)
  let chosen = ids s in
  Array.iter
    (fun l ->
      if not (List.mem l.Core.Sinr.Link.id chosen) then
        check_false "maximal" (F.is_feasible t p (l :: s)))
    t.I.links

let test_random_order_feasible () =
  let t = planar_instance ~n_links:12 15 in
  let s = Greedy.random_order (rng 5) t in
  check_true "feasible" (F.is_feasible t (Pw.uniform 1.) s)

(* ---------------------------------------------------------------- Exact *)

let test_exact_beats_heuristics () =
  List.iter
    (fun seed ->
      let t = planar_instance ~n_links:10 seed in
      let opt = List.length (Exact.capacity t) in
      check_true "was exact" (Exact.was_exact ());
      check_true "opt >= alg1" (opt >= List.length (Alg1.run t));
      check_true "opt >= greedy" (opt >= List.length (Greedy.strongest_first t)))
    [ 21; 22; 23 ]

let test_exact_output_feasible () =
  let t = planar_instance ~n_links:10 24 in
  check_true "feasible" (F.is_feasible t (Pw.uniform 1.) (Exact.capacity t))

let test_exact_brute_force_small () =
  (* Cross-check against full enumeration on 2^8 subsets. *)
  let t = planar_instance ~n_links:8 ~side:6. 25 in
  let p = Pw.uniform 1. in
  let links = Array.to_list t.I.links in
  let arr = Array.of_list links in
  let best = ref 0 in
  for mask = 0 to 255 do
    let sub =
      List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list arr)
    in
    if F.is_feasible t p sub && List.length sub > !best then
      best := List.length sub
  done;
  check_int "matches brute force" !best (List.length (Exact.capacity t))

let test_exact_limit () =
  let t = planar_instance ~n_links:12 26 in
  Alcotest.check_raises "limit"
    (Invalid_argument "Exact.capacity: instance exceeds size limit") (fun () ->
      ignore (Exact.capacity ~limit:10 t))

let test_exact_power_control_thm3 () =
  (* Theorem 3: feasible sets (even under power control) = independent
     sets.  The exact power-control capacity must equal alpha(G). *)
  let g = Core.Graph.Graph.cycle 7 in
  let sp, pairs = Core.Decay.Spaces.mis_construction g in
  let t = I.equi_decay_of_space sp pairs in
  let cap = Exact.capacity_power_control t in
  check_int "capacity = alpha(C7) = 3" 3 (List.length cap);
  (* And uniform power achieves the same. *)
  let cap_u = Exact.capacity t in
  check_int "uniform capacity = 3" 3 (List.length cap_u)

let test_exact_power_control_thm3_random () =
  List.iter
    (fun seed ->
      let g = Core.Graph.Graph.random (rng seed) 8 0.4 in
      let alpha = Core.Graph.Mis.independence_number g in
      let sp, pairs = Core.Decay.Spaces.mis_construction g in
      let t = I.equi_decay_of_space sp pairs in
      check_int "pc capacity = alpha" alpha
        (List.length (Exact.capacity_power_control t));
      check_int "uniform capacity = alpha" alpha
        (List.length (Exact.capacity t)))
    [ 31; 32; 33 ]

let test_exact_power_control_thm6 () =
  List.iter
    (fun seed ->
      let g = Core.Graph.Graph.random (rng seed) 6 0.5 in
      let alpha = Core.Graph.Mis.independence_number g in
      let sp, pairs = Core.Decay.Spaces.two_line g ~alpha':2. () in
      let t = I.equi_decay_of_space ~zeta:30. sp pairs in
      check_int "thm6 pc capacity = alpha" alpha
        (List.length (Exact.capacity_power_control t));
      check_int "thm6 uniform capacity = alpha" alpha
        (List.length (Exact.capacity t)))
    [ 41; 42 ]

(* ----------------------------------------------------------- Amicability *)

let test_amicability_report () =
  let t = planar_instance ~n_links:14 51 in
  let feasible = Greedy.strongest_first t in
  let r = Amic.extract t ~feasible in
  check_true "subset nonempty" (List.length r.Amic.subset >= 1);
  check_true "subset of feasible"
    (List.for_all
       (fun l -> List.exists (fun m -> m.Core.Sinr.Link.id = l.Core.Sinr.Link.id) feasible)
       r.Amic.subset);
  check_true "shrinkage >= 1" (r.Amic.shrinkage >= 1.);
  check_true "out-affectance bounded"
    (r.Amic.max_out_affectance < 50.)

let test_amicability_empty () =
  let t = planar_instance ~n_links:5 52 in
  let r = Amic.extract t ~feasible:[] in
  check_int "empty subset" 0 (List.length r.Amic.subset);
  check_float "unit shrinkage" 1. r.Amic.shrinkage

let test_amicability_subset_separated () =
  let t = planar_instance ~n_links:12 53 in
  let feasible = Greedy.strongest_first t in
  let r = Amic.extract t ~feasible in
  check_true "S' is zeta-separated"
    (Core.Sinr.Separation.is_separated_set t ~eta:t.I.zeta r.Amic.subset)

(* --------------------------------------------------------- Alg1 ablation *)

let test_run_configured_defaults_match_run () =
  let t = planar_instance ~n_links:12 61 in
  Alcotest.(check (list int)) "defaults reproduce the paper variant"
    (ids (Alg1.run t))
    (ids (Alg1.run_configured t))

let test_run_configured_disabling_separation_admits_more () =
  let t = planar_instance ~n_links:14 ~side:10. 62 in
  check_true "no separation admits at least as many"
    (List.length (Alg1.run_configured ~eta:0. t)
    >= List.length (Alg1.run_configured t))

let test_run_configured_neither_test_admits_all () =
  let t = planar_instance ~n_links:9 63 in
  check_int "everything admitted" 9
    (List.length
       (Alg1.run_configured ~eta:0. ~headroom:infinity ~final_filter:false t))

let test_run_configured_tight_separation_separated () =
  let t = planar_instance ~n_links:12 64 in
  let s = Alg1.run_configured ~eta:t.I.zeta t in
  check_true "output eta-separated"
    (Core.Sinr.Separation.is_separated_set t ~eta:t.I.zeta s)

(* --------------------------------------------------------------- Auction *)

let random_bids ?(lo = 0.5) ?(hi = 10.) seed n =
  let g = rng seed in
  Array.init n (fun _ -> lo +. Core.Prelude.Rng.float g (hi -. lo))

let link_id l = l.Core.Sinr.Link.id

let test_auction_outcome_consistent () =
  let t = planar_instance ~n_links:10 71 in
  let bids = random_bids 72 10 in
  let o = Auction.run t ~bids in
  check_true "winners feasible"
    (F.is_feasible t (Pw.uniform 1.) o.Auction.winners);
  check_true "winners match the allocation rule"
    (ids o.Auction.winners = ids (Auction.greedy_allocation t ~bids));
  check_true "one payment per winner"
    (List.sort compare (List.map fst o.Auction.payments)
    = ids o.Auction.winners);
  check_float ~eps:1e-9 "welfare = sum of winning bids"
    (List.fold_left (fun acc l -> acc +. bids.(link_id l)) 0. o.Auction.winners)
    o.Auction.welfare

let test_auction_payment_le_bid () =
  (* Individual rationality of the critical-payment rule: a winner never
     pays more than it bid (and never a negative amount). *)
  List.iter
    (fun seed ->
      let t = planar_instance ~n_links:10 seed in
      let bids = random_bids (seed + 100) 10 in
      let o = Auction.run t ~bids in
      List.iter
        (fun (id, pay) ->
          check_true
            (Printf.sprintf "payment %g <= bid %g (link %d)" pay bids.(id) id)
            (pay <= bids.(id) +. 1e-9);
          check_true "payment non-negative" (pay >= 0.))
        o.Auction.payments)
    [ 73; 74; 75 ]

let test_auction_payment_bid_invariant () =
  (* Truthfulness backbone: a winner's critical payment depends only on
     the other bids — tripling its own bid changes neither the win nor
     the price. *)
  let t = planar_instance ~n_links:10 76 in
  let bids = random_bids 77 10 in
  let o = Auction.run t ~bids in
  check_true "auction has winners" (o.Auction.winners <> []);
  List.iter
    (fun w ->
      let id = link_id w in
      let pay = List.assoc id o.Auction.payments in
      let bids' = Array.copy bids in
      bids'.(id) <- bids.(id) *. 3.;
      let o' = Auction.run t ~bids:bids' in
      check_true "still wins after raising own bid"
        (List.exists (fun l -> link_id l = id) o'.Auction.winners);
      check_float ~eps:1e-9
        (Printf.sprintf "payment of link %d invariant in own bid" id)
        pay
        (List.assoc id o'.Auction.payments))
    o.Auction.winners

let test_auction_monotone () =
  let t = planar_instance ~n_links:12 78 in
  let bids = random_bids 79 12 in
  List.iter
    (fun w ->
      check_true "Myerson monotonicity spot check"
        (Auction.is_winner_monotone t ~bids w))
    (Auction.greedy_allocation t ~bids)

let prop_auction_rational =
  qcheck ~count:20 "auction: feasible winners, payments <= bids"
    QCheck.small_int
    (fun seed ->
      let t = planar_instance ~n_links:8 seed in
      let bids = random_bids (seed + 1000) 8 in
      let o = Auction.run t ~bids in
      F.is_feasible t (Pw.uniform 1.) o.Auction.winners
      && List.for_all
           (fun (id, pay) -> pay >= 0. && pay <= bids.(id) +. 1e-9)
           o.Auction.payments)

(* --------------------------------------------------------------- Online *)

let prefixes_feasible t accepted =
  let p = Pw.uniform 1. in
  let rec go prefix = function
    | [] -> true
    | l :: rest ->
        let prefix = prefix @ [ l ] in
        F.is_feasible t p prefix && go prefix rest
  in
  go [] accepted

let test_online_prefixes_feasible () =
  (* Irrevocable admission: the accepted set must be feasible after every
     single arrival, not only at the end. *)
  List.iter
    (fun seed ->
      let t = planar_instance ~n_links:12 seed in
      let arrival = Array.to_list t.I.links in
      check_true "feasibility_only prefixes feasible"
        (prefixes_feasible t (Online.feasibility_only t ~arrival));
      check_true "guarded prefixes feasible"
        (prefixes_feasible t (Online.guarded t ~arrival)))
    [ 81; 82; 83 ]

let test_online_guarded_separated () =
  let t = planar_instance ~n_links:12 84 in
  let accepted = Online.guarded t ~arrival:(Array.to_list t.I.links) in
  check_true "guarded set is eta-separated (default eta = zeta/2)"
    (Core.Sinr.Separation.is_separated_set t ~eta:(t.I.zeta /. 2.) accepted)

let test_online_competitive_ratio () =
  let t = planar_instance ~n_links:9 85 in
  let arrival = Array.to_list t.I.links in
  List.iter
    (fun accepted ->
      if accepted <> [] then begin
        let r = Online.competitive_ratio t ~accepted in
        (* The offline optimum dominates any feasible accepted set. *)
        check_true "ratio >= 1" (r >= 1. -. 1e-9);
        check_true "ratio finite" (Float.is_finite r)
      end)
    [ Online.feasibility_only t ~arrival; Online.guarded t ~arrival ]

let prop_online_prefix_feasible =
  qcheck ~count:20 "online acceptance keeps every prefix feasible"
    QCheck.small_int
    (fun seed ->
      let t = planar_instance ~n_links:9 seed in
      let arrival = Array.to_list t.I.links in
      prefixes_feasible t (Online.feasibility_only t ~arrival)
      && prefixes_feasible t (Online.guarded t ~arrival))

(* -------------------------------------------------------------- Weighted *)

let test_weighted_exact_dominates_greedy () =
  List.iter
    (fun seed ->
      let t = planar_instance ~n_links:9 seed in
      let w = random_bids (seed + 2000) 9 in
      let g = Weighted.greedy t w in
      let e = Weighted.exact t w in
      check_true "exact weight >= greedy weight"
        (Weighted.total w e >= Weighted.total w g -. 1e-9))
    [ 91; 92; 93 ]

let test_weighted_exact_feasible () =
  let t = planar_instance ~n_links:9 94 in
  let w = random_bids 95 9 in
  check_true "exact output feasible"
    (F.is_feasible t (Pw.uniform 1.) (Weighted.exact t w))

let test_weighted_unit_weights_match_capacity () =
  (* With unit weights the weighted optimum is exactly CAPACITY. *)
  List.iter
    (fun seed ->
      let t = planar_instance ~n_links:8 seed in
      let w = Array.make 8 1. in
      check_int "unit-weight optimum = capacity"
        (List.length (Exact.capacity t))
        (List.length (Weighted.exact t w)))
    [ 96; 97 ]

let test_weighted_total () =
  let t = planar_instance ~n_links:5 98 in
  let w = [| 1.; 2.; 3.; 4.; 5. |] in
  let all = Array.to_list t.I.links in
  check_float ~eps:1e-9 "total sums selected weights" 15.
    (Weighted.total w all);
  check_float "total of empty set" 0. (Weighted.total w [])

let prop_weighted_exact_dominates =
  qcheck ~count:15 "weighted exact dominates greedy" QCheck.small_int
    (fun seed ->
      let t = planar_instance ~n_links:8 seed in
      let w = random_bids (seed + 3000) 8 in
      Weighted.total w (Weighted.exact t w)
      >= Weighted.total w (Weighted.greedy t w) -. 1e-9)

(* --------------------------------------------------------------- QCheck *)

let prop_alg1_feasible =
  qcheck ~count:40 "alg1 output always feasible" QCheck.small_int (fun seed ->
      let t = planar_instance ~n_links:10 ~alpha:2.8 seed in
      F.is_feasible t (Pw.uniform 1.) (Alg1.run t))

let prop_exact_dominates =
  qcheck ~count:25 "exact >= every heuristic" QCheck.small_int (fun seed ->
      let t = planar_instance ~n_links:9 seed in
      let opt = List.length (Exact.capacity t) in
      opt >= List.length (Alg1.run t)
      && opt >= List.length (Greedy.affectance_greedy t)
      && opt >= List.length (Greedy.strongest_first t))

let prop_alg1_ratio_bounded_on_plane =
  qcheck ~count:15 "alg1 within factor 6 of optimum on small planar"
    QCheck.small_int
    (fun seed ->
      (* Not a theorem (the guarantee is O(alpha^4)), but on these tiny
         instances the measured gap stays small; a regression canary. *)
      let t = planar_instance ~n_links:10 seed in
      let opt = List.length (Exact.capacity t) in
      let alg = max 1 (List.length (Alg1.run t)) in
      float_of_int opt /. float_of_int alg <= 6.)

let suite =
  [
    ( "capacity.alg1",
      [
        case "feasible" test_alg1_returns_feasible;
        case "nonempty" test_alg1_nonempty_on_nonempty;
        case "single link" test_alg1_single_link;
        case "separated output" test_alg1_separated_output;
        case "trace verdicts" test_alg1_trace_verdicts;
        case "configured defaults" test_run_configured_defaults_match_run;
        case "ablation: no separation" test_run_configured_disabling_separation_admits_more;
        case "ablation: neither test" test_run_configured_neither_test_admits_all;
        case "ablation: tight separation" test_run_configured_tight_separation_separated;
        prop_alg1_feasible;
      ] );
    ( "capacity.greedy",
      [
        case "affectance greedy feasible" test_affectance_greedy_feasible;
        case "strongest-first feasible+maximal" test_strongest_first_feasible_maximal;
        case "random order feasible" test_random_order_feasible;
      ] );
    ( "capacity.exact",
      [
        case "dominates heuristics" test_exact_beats_heuristics;
        case "output feasible" test_exact_output_feasible;
        case "matches brute force" test_exact_brute_force_small;
        case "size limit" test_exact_limit;
        case "thm3 C7 correspondence" test_exact_power_control_thm3;
        case "thm3 random graphs" test_exact_power_control_thm3_random;
        case "thm6 random graphs" test_exact_power_control_thm6;
        prop_exact_dominates;
        prop_alg1_ratio_bounded_on_plane;
      ] );
    ( "capacity.amicability",
      [
        case "report" test_amicability_report;
        case "empty input" test_amicability_empty;
        case "subset separated" test_amicability_subset_separated;
      ] );
    ( "capacity.auction",
      [
        case "outcome consistent" test_auction_outcome_consistent;
        case "payments <= bids" test_auction_payment_le_bid;
        case "payment invariant in own bid" test_auction_payment_bid_invariant;
        case "winner monotone" test_auction_monotone;
        prop_auction_rational;
      ] );
    ( "capacity.online_invariants",
      [
        case "prefixes feasible" test_online_prefixes_feasible;
        case "guarded output separated" test_online_guarded_separated;
        case "competitive ratio >= 1" test_online_competitive_ratio;
        prop_online_prefix_feasible;
      ] );
    ( "capacity.weighted",
      [
        case "exact dominates greedy" test_weighted_exact_dominates_greedy;
        case "exact output feasible" test_weighted_exact_feasible;
        case "unit weights = capacity" test_weighted_unit_weights_match_capacity;
        case "total" test_weighted_total;
        prop_weighted_exact_dominates;
      ] );
  ]
