open Testutil
module D = Core.Decay.Decay_space
module I = Core.Sinr.Instance
module Pw = Core.Sinr.Power
module F = Core.Sinr.Feasibility

(* ------------------------------------------------- Analysis entry point *)

let test_analysis_geo () =
  let pts = Core.Decay.Spaces.grid_points ~rows:4 ~cols:4 ~spacing:2. in
  let d = D.of_points ~alpha:3. pts in
  let r = Core.Analysis.run d in
  check_float ~eps:2e-3 "zeta = 3" 3. r.Core.Analysis.zeta;
  check_true "symmetric" r.Core.Analysis.symmetric;
  check_true "fading space" r.Core.Analysis.is_fading_space;
  check_true "independence <= 6" (r.Core.Analysis.independence <= 6);
  check_true "phi_log <= zeta"
    (r.Core.Analysis.phi_log <= r.Core.Analysis.zeta +. 1e-6)

let test_analysis_gamma_field () =
  let d = Core.Decay.Spaces.uniform 6 in
  let r =
    Core.Analysis.run
      ~config:{ Core.Analysis.default with Core.Analysis.gamma_at = [ 0.5 ] }
      d
  in
  match r.Core.Analysis.gamma with
  | [ (sep, g) ] ->
      check_float "separation echoed" 0.5 sep;
      check_float "gamma" 2.5 g
  | _ -> Alcotest.fail "expected one gamma entry"

let test_kernel_compat_wrappers () =
  (* The historical optional-argument entry points must keep agreeing with
     the [?ctx] API while they are still exported.  The alert suppression
     is scoped to exactly these calls; everywhere else a deprecated use is
     a build error. *)
  let module Met = Core.Decay.Metricity in
  let module Fad = Core.Decay.Fading in
  let module St = Core.Decay.Statistics in
  let module Ctx = Core.Decay.Ctx in
  let d = random_asym_space ~n:14 31 in
  check_float "zeta wrapper"
    (Met.zeta ~ctx:(Ctx.make ~jobs:2 ~cache:false ()) d)
    ((Met.zeta_with [@alert "-deprecated"]) ~jobs:2 ~cache:false d);
  check_true "zeta_witness wrapper"
    (Met.zeta_witness ~ctx:Ctx.uncached d
    = (Met.zeta_witness_with [@alert "-deprecated"]) ~cache:false d);
  check_float "phi wrapper"
    (Met.phi ~ctx:Ctx.uncached d)
    ((Met.phi_with [@alert "-deprecated"]) ~cache:false d);
  check_float "gamma wrapper"
    (Fad.gamma ~ctx:(Ctx.make ~exact_limit:10 ~cache:false ()) d ~r:2.)
    ((Fad.gamma_with [@alert "-deprecated"]) ~exact_limit:10 ~cache:false d
       ~r:2.);
  check_true "summarize wrapper"
    (St.summarize ~ctx:(Ctx.make ~jobs:2 ()) d
    = (St.summarize_with [@alert "-deprecated"]) ~jobs:2 d)

let test_analysis_table_renders () =
  let d = Core.Decay.Spaces.uniform 5 in
  let r = Core.Analysis.run d in
  let s = Core.Prelude.Table.render (Core.Analysis.to_table r) in
  check_true "mentions metricity" (String.length s > 100)

(* ---------------------------------------------------- Solve entry point *)

let test_solve_all_algorithms () =
  let t = planar_instance ~n_links:10 1 in
  List.iter
    (fun algo ->
      let s = Core.Solve.capacity ~algo t in
      check_true
        (Core.Solve.capacity_algo_name algo ^ " feasible")
        (F.is_feasible t (Pw.uniform 1.) s))
    [ Core.Solve.Alg1; Core.Solve.Affectance_greedy; Core.Solve.Strongest_first;
      Core.Solve.Exact ]

let test_solve_schedule_modes () =
  let t = planar_instance ~n_links:10 2 in
  check_true "first fit verifies"
    (Core.Sched.Scheduler.verify t (Core.Solve.schedule ~via:`First_fit t));
  check_true "capacity mode verifies"
    (Core.Sched.Scheduler.verify t
       (Core.Solve.schedule ~via:(`Capacity Core.Solve.Alg1) t))

(* -------------------------------- End-to-end: environment to scheduling *)

let test_pipeline_indoor () =
  (* Build an office, deploy nodes, measure decays, analyze, extract a
     workload, solve capacity, schedule everything, and run the distributed
     game — the full stack on one instance. *)
  let env =
    Core.Radio.Environment.office ~rooms_x:3 ~rooms_y:2 ~room_size:6.
      Core.Radio.Material.drywall
  in
  let g = rng 42 in
  let pts = Core.Decay.Spaces.random_points g ~n:16 ~side:17. in
  let nodes = Core.Radio.Node.of_points pts in
  let cfg =
    { Core.Radio.Propagation.default with
      Core.Radio.Propagation.shadowing_sigma_db = 4. }
  in
  let space = Core.Radio.Measure.decay_space ~seed:7 ~config:cfg env nodes in
  let report = Core.Analysis.run space in
  check_true "indoor zeta above free-space alpha" (report.Core.Analysis.zeta > 2.);
  let t =
    I.random_links_in_space ~zeta:report.Core.Analysis.zeta (rng 8) ~n_links:6
      ~max_decay:(D.max_decay space) space
  in
  (* Capacity. *)
  let s = Core.Solve.capacity t in
  check_true "capacity feasible" (F.is_feasible t (Pw.uniform 1.) s);
  (* Scheduling. *)
  let sched = Core.Solve.schedule t in
  check_true "schedule valid" (Core.Sched.Scheduler.verify t sched);
  (* Distributed game: the no-regret guarantee is about sustained
     throughput (a constant fraction of the optimum), not feasibility of
     the thresholded active set. *)
  let r = Core.Distrib.Regret.run ~rounds:400 (rng 9) t in
  let opt = List.length (Core.Capacity.Exact.capacity t) in
  check_true "game sustains a constant fraction of optimum"
    (r.Core.Distrib.Regret.avg_successes >= 0.25 *. float_of_int opt)

let test_pipeline_measurement_loop () =
  (* The paper's measurement story: the quantized RSSI view of a space has
     nearly the same metricity as the truth. *)
  let env = Core.Radio.Environment.empty ~side:30. in
  let nodes =
    Core.Radio.Node.of_points
      (Core.Decay.Spaces.random_points (rng 10) ~n:10 ~side:25.)
  in
  let truth = Core.Radio.Measure.decay_space ~seed:3 env nodes in
  let measured =
    Core.Radio.Measure.measured_decay_space ~tx_power_dbm:20. truth
  in
  let zt = Core.Decay.Metricity.zeta truth in
  let zm = Core.Decay.Metricity.zeta measured in
  check_true "measured metricity close to truth" (Float.abs (zt -. zm) < 0.5)

(* --------------------------------------- Proposition 1: theory transfer *)

let test_prop1_quasi_metric_equivalence () =
  (* Running a metric-space algorithm on the induced quasi-metric with
     path-loss zeta is the same as running it directly on the decay space:
     decays, affectances and hence algorithm outputs coincide. *)
  let sp = random_space ~n:16 ~range:40. 20 in
  let t =
    I.random_links_in_space ~zeta:(Core.Decay.Metricity.zeta sp) (rng 21)
      ~n_links:6 ~max_decay:(D.max_decay sp) sp
  in
  let m, z = Core.Decay.Quasi_metric.induce sp in
  let sp' = Core.Decay.Quasi_metric.round_trip ~zeta:z m in
  let pairs =
    Array.to_list
      (Array.map
         (fun l -> (l.Core.Sinr.Link.sender, l.Core.Sinr.Link.receiver))
         t.I.links)
  in
  let t' = I.make ~zeta:z sp' pairs in
  let s = Core.Capacity.Alg1.run t in
  let s' = Core.Capacity.Alg1.run t' in
  Alcotest.(check (list int)) "same selection through the quasi-metric"
    (ids s) (ids s')

let test_prop1_geo_preserved () =
  (* On a GEO-SINR instance the decay-space pipeline changes nothing. *)
  let t = planar_instance ~n_links:12 22 in
  let computed_zeta = Core.Decay.Metricity.zeta t.I.space in
  let t' =
    I.make ~zeta:computed_zeta t.I.space
      (Array.to_list
         (Array.map
            (fun l -> (l.Core.Sinr.Link.sender, l.Core.Sinr.Link.receiver))
            t.I.links))
  in
  Alcotest.(check (list int)) "alg1 unchanged"
    (ids (Core.Capacity.Alg1.run t))
    (ids (Core.Capacity.Alg1.run t'))

(* ---------------------------------------------- Theorem 5 vs hardness *)

let test_alg1_reasonable_on_indoor () =
  (* Algorithm 1 stays within a small factor of optimum on a measured
     indoor space (bounded growth in practice). *)
  let env =
    Core.Radio.Environment.random_clutter (rng 30) ~side:40. ~n_walls:25
      [ Core.Radio.Material.concrete; Core.Radio.Material.drywall ]
  in
  let nodes =
    Core.Radio.Node.of_points
      (Core.Decay.Spaces.random_points (rng 31) ~n:24 ~side:38.)
  in
  let space = Core.Radio.Measure.decay_space ~seed:5 env nodes in
  let zeta = Core.Decay.Metricity.zeta space in
  let t =
    I.random_links_in_space ~zeta (rng 32) ~n_links:10
      ~max_decay:(Core.Prelude.Stats.percentile
                    (Array.of_list
                       (List.concat_map
                          (fun i ->
                            List.filteri (fun j _ -> j <> i)
                              (List.init 24 (fun j ->
                                   if i = j then 1. else D.decay space i j)))
                          (List.init 24 Fun.id)))
                    30.)
      space
  in
  let opt = List.length (Core.Capacity.Exact.capacity t) in
  let alg = List.length (Core.Capacity.Alg1.run t) in
  check_true "within factor 8 of optimum" (opt <= 8 * max 1 alg)

let suite =
  [
    ( "core.analysis",
      [
        case "geo report" test_analysis_geo;
        case "gamma field" test_analysis_gamma_field;
        case "deprecated kernel wrappers" test_kernel_compat_wrappers;
        case "table renders" test_analysis_table_renders;
      ] );
    ( "core.solve",
      [
        case "all capacity algorithms" test_solve_all_algorithms;
        case "schedule modes" test_solve_schedule_modes;
      ] );
    ( "integration.pipeline",
      [
        case "indoor end-to-end" test_pipeline_indoor;
        case "measurement loop" test_pipeline_measurement_loop;
        case "alg1 on indoor space" test_alg1_reasonable_on_indoor;
      ] );
    ( "integration.prop1",
      [
        case "quasi-metric equivalence" test_prop1_quasi_metric_equivalence;
        case "geo preserved" test_prop1_geo_preserved;
      ] );
  ]
