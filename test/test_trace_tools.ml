(* The offline trace toolkit (lib/obs_tools) and the perf-regression
   gate (Benchkit.Regress), tested against a committed golden trace — a
   real `bg analyze --gamma-at 2,4 --trace --profile --jobs 2` run — so
   the parser, the aggregation invariants (self + child = total), the
   flame outputs and the diff all exercise genuine Obs output, not
   hand-built fixtures.  Regenerate the goldens after an intentional
   format change:

     bg analyze g24.csv --gamma-at 2,4 --no-cache --jobs 2 \
        --trace test/golden_trace.jsonl --profile
     bg trace flame test/golden_trace.jsonl --format speedscope \
        -o test/golden_speedscope.json *)

module Trace = Obs_tools.Trace
module Jsonl = Obs_tools.Jsonl
module Regress = Benchkit.Regress
open Testutil

(* cwd is _build/default/test under `dune runtest`, the project root
   under `dune exec test/test_main.exe`. *)
let fixture name =
  if Sys.file_exists name then name else Filename.concat "test" name

let golden_spans () = Trace.load (fixture "golden_trace.jsonl")

let mk ?(id = 1) ?(parent = 0) ?(domain = 0) ?(name = "k") ?(start = 0.)
    ?(dur = 1.) ?(ok = true) ?(attrs = []) () =
  {
    Trace.id;
    parent;
    domain;
    name;
    start_s = start;
    dur_s = dur;
    ok;
    attrs;
  }

(* ------------------------------------------------------------- loading *)

let test_load_golden () =
  let spans = golden_spans () in
  check_true "golden trace has spans" (List.length spans > 4);
  let names = List.map (fun s -> s.Trace.name) spans in
  List.iter
    (fun k -> check_true (k ^ " span present") (List.mem k names))
    [ "analyze"; "zeta_sweep"; "phi_sweep"; "gamma_sweep"; "parallel.task" ];
  (* Non-span lines (the metrics flush) parse but are filtered out. *)
  let events = Trace.load_events (fixture "golden_trace.jsonl") in
  check_true "trace carries metric events too"
    (List.length events > List.length spans);
  (* The profiled run recorded GC deltas on the root span. *)
  let analyze = List.find (fun s -> s.Trace.name = "analyze") spans in
  check_true "profiled span has alloc bytes"
    (match Trace.alloc_bytes analyze with Some b -> b > 0. | None -> false);
  check_true "cpu_s recorded"
    (match Trace.attr_num analyze "cpu_s" with
    | Some c -> c >= 0.
    | None -> false)

(* ------------------------------------------------- report conservation *)

let test_aggregate_conserves_time () =
  let spans = golden_spans () in
  let kinds = Trace.aggregate spans in
  check_true "one row per kind"
    (List.length kinds
    = List.length
        (List.sort_uniq compare (List.map (fun s -> s.Trace.name) spans)));
  (* Acceptance: self + child = total per kind, within 1% (exact by
     construction, so assert far tighter). *)
  List.iter
    (fun k ->
      let open Trace in
      check_true
        (Printf.sprintf "%s: self+child=total" k.kind)
        (Float.abs (k.kself_s +. k.kchild_s -. k.total_s)
        <= 1e-9 *. Float.max 1. k.total_s);
      check_true (k.kind ^ ": self >= 0") (k.kself_s >= 0.);
      check_true (k.kind ^ ": p50 <= p99") (k.p50_s <= k.p99_s);
      check_true (k.kind ^ ": max <= total") (k.max_s <= k.total_s +. 1e-12))
    kinds;
  (* Kind totals partition the span durations. *)
  let sum_spans =
    List.fold_left (fun a s -> a +. s.Trace.dur_s) 0. spans
  in
  let sum_kinds =
    List.fold_left (fun a k -> a +. k.Trace.total_s) 0. kinds
  in
  check_float ~eps:1e-9 "kind totals partition the trace" sum_spans sum_kinds;
  check_true "report table renders"
    (String.length
       (Core.Prelude.Table.render (Trace.report_table spans))
    > 0)

let test_quantile_estimates () =
  (* 98 spans of ~1us and two of 1s: p50 must sit in the microsecond
     bucket (log2 estimate is within a factor of two), p99 in the
     second-scale bucket. *)
  let spans =
    List.init 100 (fun i ->
        mk ~id:(i + 1) ~name:"q" ~start:(float_of_int i)
          ~dur:(if i >= 98 then 1.0 else 1e-6)
          ())
  in
  match Trace.aggregate spans with
  | [ k ] ->
      check_true "p50 ~ 1us" (k.Trace.p50_s >= 0.5e-6 && k.Trace.p50_s <= 2e-6);
      check_true "p99 ~ 1s" (k.Trace.p99_s >= 0.5 && k.Trace.p99_s <= 2.)
  | l -> Alcotest.failf "expected one kind, got %d" (List.length l)

(* -------------------------------------------------------- critical path *)

let test_critical_path () =
  let spans = golden_spans () in
  let path = Trace.critical_path spans in
  check_true "path non-empty" (path <> []);
  let top = List.hd path in
  (* The golden trace has no experiment span, so the top is the slowest
     root. *)
  let roots = List.filter (fun s -> s.Trace.parent = 0) spans in
  List.iter
    (fun r ->
      check_true "top is the slowest root" (r.Trace.dur_s <= top.Trace.dur_s))
    roots;
  (* Each step descends into a child of the previous span. *)
  let rec steps = function
    | a :: (b :: _ as rest) ->
        check_int
          (Printf.sprintf "%s is a child of %s" b.Trace.name a.Trace.name)
          a.Trace.id b.Trace.parent;
        steps rest
    | _ -> ()
  in
  steps path;
  check_true "critical path table renders"
    (String.length (Core.Prelude.Table.render (Trace.critical_path_table spans))
    > 0)

(* -------------------------------------------------------- folded stacks *)

let test_folded_round_trips_nesting () =
  let spans = golden_spans () in
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.Trace.id s) spans;
  let rec path s =
    match Hashtbl.find_opt by_id s.Trace.parent with
    | Some p when s.Trace.parent <> 0 -> path p ^ ";" ^ s.Trace.name
    | _ -> s.Trace.name
  in
  let expected = List.sort_uniq compare (List.map path spans) in
  let folded = Trace.folded spans in
  Alcotest.(check (list string))
    "folded keys are exactly the span name paths" expected
    (List.map fst folded);
  (* Prefix closure: a stack's parent prefix is itself a stack (every
     ancestor span gets its own folded entry). *)
  List.iter
    (fun (stack, _) ->
      match String.rindex_opt stack ';' with
      | None -> ()
      | Some i ->
          let prefix = String.sub stack 0 i in
          check_true
            (prefix ^ " present for " ^ stack)
            (List.mem_assoc prefix folded))
    folded;
  (* Values are self time: their sum matches the spans' self time total
     within rounding (1 us per span). *)
  let folded_total = List.fold_left (fun a (_, v) -> a + v) 0 folded in
  let kinds = Trace.aggregate spans in
  let self_total =
    List.fold_left (fun a k -> a +. k.Trace.kself_s) 0. kinds
  in
  check_true "folded values sum to total self time"
    (Float.abs (float_of_int folded_total -. (self_total *. 1e6))
    <= float_of_int (List.length spans));
  (* The serialized form is one "stack value" line per entry. *)
  let lines =
    String.split_on_char '\n' (Trace.folded_to_string spans)
    |> List.filter (fun l -> l <> "")
  in
  check_int "one line per stack" (List.length folded) (List.length lines)

(* ----------------------------------------------------------- speedscope *)

let speedscope_check doc =
  let module J = Jsonl in
  check_true "schema url"
    (J.mem_str "$schema" doc
    = Some "https://www.speedscope.app/file-format-schema.json");
  let frames =
    match Option.bind (J.member "shared" doc) (J.member "frames") with
    | Some (J.Arr fs) -> fs
    | _ -> Alcotest.fail "shared.frames missing"
  in
  check_true "frames named"
    (List.for_all (fun f -> J.mem_str "name" f <> None) frames);
  let profiles =
    match J.member "profiles" doc with
    | Some (J.Arr ps) -> ps
    | _ -> Alcotest.fail "profiles missing"
  in
  check_true "at least one profile" (profiles <> []);
  List.iter
    (fun p ->
      check_true "evented profile" (J.mem_str "type" p = Some "evented");
      let end_value =
        match J.mem_num "endValue" p with
        | Some v -> v
        | None -> Alcotest.fail "endValue missing"
      in
      let events =
        match J.member "events" p with
        | Some (J.Arr es) -> es
        | _ -> Alcotest.fail "events missing"
      in
      (* Balanced, properly nested, nondecreasing timestamps, frame
         indices in range: exactly what speedscope validates on import. *)
      let depth = ref 0 and last = ref neg_infinity in
      List.iter
        (fun e ->
          let at =
            match J.mem_num "at" e with
            | Some a -> a
            | None -> Alcotest.fail "event without at"
          in
          check_true "timestamps nondecreasing" (at >= !last);
          last := at;
          check_true "at within [0, endValue]"
            (at >= 0. && at <= end_value +. 1e-12);
          (match J.mem_num "frame" e with
          | Some f ->
              check_true "frame index in range"
                (f >= 0. && f < float_of_int (List.length frames))
          | None -> Alcotest.fail "event without frame");
          match J.mem_str "type" e with
          | Some "O" -> incr depth
          | Some "C" ->
              decr depth;
              check_true "close matches an open" (!depth >= 0)
          | _ -> Alcotest.fail "event type not O/C")
        events;
      check_int "opens and closes balance" 0 !depth)
    profiles

let test_speedscope_valid_and_golden () =
  let spans = golden_spans () in
  let out = Trace.speedscope ~name:"golden_trace.jsonl" spans in
  let doc = Jsonl.parse out in
  speedscope_check doc;
  (* Pinned against the committed golden: a format change must be
     deliberate (regenerate with `bg trace flame --format speedscope`). *)
  let golden = Jsonl.parse (Jsonl.read_file (fixture "golden_speedscope.json")) in
  check_true "speedscope output matches the committed golden" (doc = golden)

let test_speedscope_multi_domain () =
  (* Two domains, each with its own root: one profile per domain, both
     structurally valid. *)
  let spans =
    [ mk ~id:1 ~name:"w0" ~domain:0 ~start:10. ~dur:1. ();
      mk ~id:2 ~name:"child" ~parent:1 ~domain:0 ~start:10.2 ~dur:0.5 ();
      mk ~id:3 ~name:"w1" ~domain:3 ~start:10.1 ~dur:2. () ]
  in
  let doc = Jsonl.parse (Trace.speedscope spans) in
  speedscope_check doc;
  match Jsonl.member "profiles" doc with
  | Some (Jsonl.Arr ps) -> check_int "one profile per domain" 2 (List.length ps)
  | _ -> Alcotest.fail "profiles missing"

(* ----------------------------------------------------------------- diff *)

let test_diff_self_is_zero () =
  let spans = golden_spans () in
  let rows = Trace.diff_rows ~old_spans:spans ~new_spans:spans in
  check_true "one row per kind" (rows <> []);
  List.iter
    (fun r ->
      let open Trace in
      check_int (r.d_kind ^ ": counts equal") r.old_count r.new_count;
      check_float (r.d_kind ^ ": zero delta") 0. r.delta_s;
      check_float (r.d_kind ^ ": zero pct") 0. r.delta_pct)
    rows;
  check_true "diff table renders"
    (String.length
       (Core.Prelude.Table.render
          (Trace.diff_table ~old_spans:spans ~new_spans:spans))
    > 0)

let test_diff_orders_regressions () =
  let old_spans =
    [ mk ~id:1 ~name:"a" ~dur:1.0 (); mk ~id:2 ~name:"b" ~start:2. ~dur:1.0 () ]
  in
  let new_spans =
    [ mk ~id:1 ~name:"a" ~dur:3.0 ();
      mk ~id:2 ~name:"b" ~start:4. ~dur:0.5 ();
      mk ~id:3 ~name:"c" ~start:9. ~dur:0.25 () ]
  in
  match Trace.diff_rows ~old_spans ~new_spans with
  | [ r1; r2; r3 ] ->
      let open Trace in
      check_true "worst regression first" (r1.d_kind = "a");
      check_float "a: +2s" 2.0 r1.delta_s;
      check_float "a: +200%" 200. r1.delta_pct;
      check_true "new kind reported" (r3.d_kind = "b" || r2.d_kind = "c");
      let c = List.find (fun r -> r.d_kind = "c") [ r1; r2; r3 ] in
      check_true "new kind has infinite pct" (c.delta_pct = infinity);
      check_int "new kind old count 0" 0 c.old_count
  | l -> Alcotest.failf "expected 3 rows, got %d" (List.length l)

(* ------------------------------------------------------ regression gate *)

let sample name mean stddev =
  {
    Regress.name;
    reps = 5;
    mean_s = mean;
    stddev_s = stddev;
    best_s = mean -. stddev;
  }

let test_check_self_comparison_passes () =
  let s = [ sample "zeta" 4.5e-3 5e-5; sample "phi" 0.8e-3 2e-5 ] in
  let rows = Regress.compare_samples ~baseline:s ~current:s in
  check_true "all rows pass"
    (List.for_all (fun r -> r.Regress.row_verdict = Regress.Pass) rows);
  check_int "exit 0 on self-comparison" 0
    (Regress.exit_code (Regress.overall rows))

let test_check_flags_synthetic_slowdown () =
  let baseline = [ sample "zeta" 4.5e-3 5e-5; sample "phi" 0.8e-3 2e-5 ] in
  (* 2x slowdown on zeta: beyond base + max(3 sigma, 50%), so hard. *)
  let current = [ sample "zeta" 9.0e-3 5e-5; sample "phi" 0.8e-3 2e-5 ] in
  let rows = Regress.compare_samples ~baseline ~current in
  let zeta = List.find (fun r -> r.Regress.r_name = "zeta") rows in
  check_true "2x slowdown is a hard regression"
    (zeta.Regress.row_verdict = Regress.Hard);
  check_int "exit 4 on hard regression" 4
    (Regress.exit_code (Regress.overall rows));
  (* 25% slowdown: beyond max(3 sigma, 15%) but within 50% — soft. *)
  let current = [ sample "zeta" 5.7e-3 5e-5; sample "phi" 0.8e-3 2e-5 ] in
  let rows = Regress.compare_samples ~baseline ~current in
  let zeta = List.find (fun r -> r.Regress.r_name = "zeta") rows in
  check_true "25% slowdown is a soft regression"
    (zeta.Regress.row_verdict = Regress.Soft);
  check_int "exit 3 on soft regression" 3
    (Regress.exit_code (Regress.overall rows));
  (* 10% is inside the noise band: not a finding. *)
  let current = [ sample "zeta" 4.95e-3 5e-5; sample "phi" 0.8e-3 2e-5 ] in
  let rows = Regress.compare_samples ~baseline ~current in
  check_int "10% is noise" 0 (Regress.exit_code (Regress.overall rows))

let test_check_noise_aware_threshold () =
  (* A noisy baseline (stddev 10% of mean) stretches the soft threshold
     to 3 sigma = 30%: a 25% delta that would fail a quiet baseline
     passes a noisy one. *)
  let noisy = [ sample "k" 1e-3 1e-4 ] in
  let cur = [ sample "k" 1.25e-3 1e-5 ] in
  let rows = Regress.compare_samples ~baseline:noisy ~current:cur in
  check_int "3 sigma dominates the 15% band" 0
    (Regress.exit_code (Regress.overall rows));
  (* No baseline entry: new benchmarks pass (annotated, not failed). *)
  let rows =
    Regress.compare_samples ~baseline:noisy
      ~current:[ sample "brand_new" 1. 0.1 ]
  in
  check_true "missing baseline passes"
    (List.for_all (fun r -> r.Regress.row_verdict = Regress.Pass) rows);
  check_true "check table renders"
    (String.length (Core.Prelude.Table.render (Regress.check_table rows)) > 0)

let test_baselines_round_trip () =
  let path = Filename.temp_file "bg_baselines" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let samples = [ sample "zeta" 4.5e-3 5e-5; sample "phi" 0.8e-3 2e-5 ] in
      Regress.write_baselines path samples;
      let back = Regress.load_baselines path in
      check_int "all samples round-trip" (List.length samples)
        (List.length back);
      List.iter2
        (fun a b ->
          check_true "name" (a.Regress.name = b.Regress.name);
          check_float ~eps:1e-15 "mean" a.Regress.mean_s b.Regress.mean_s;
          check_float ~eps:1e-15 "stddev" a.Regress.stddev_s
            b.Regress.stddev_s)
        samples back)

let test_history_appends () =
  let path = Filename.temp_file "bg_history" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let samples = [ sample "zeta" 4.5e-3 5e-5 ] in
      Regress.append_history ~path samples;
      Regress.append_history ~path samples;
      let lines = Jsonl.parse_lines (Jsonl.read_file path) in
      check_int "one line per record" 2 (List.length lines);
      List.iter
        (fun l ->
          check_true "typed line"
            (Jsonl.mem_str "type" l = Some "bench_history");
          check_true "sha recorded" (Jsonl.mem_str "sha" l <> None);
          match Jsonl.member "samples" l with
          | Some (Jsonl.Arr [ s ]) ->
              check_true "sample name kept"
                (Jsonl.mem_str "name" s = Some "zeta")
          | _ -> Alcotest.fail "samples array malformed")
        lines)

(* JSON emitter: parse . to_string = identity on the golden documents. *)
let test_jsonl_emitter_round_trip () =
  let doc = Jsonl.parse (Jsonl.read_file (fixture "golden_speedscope.json")) in
  check_true "emit/reparse is the identity"
    (Jsonl.parse (Jsonl.to_string doc) = doc);
  List.iter
    (fun line ->
      check_true "trace lines round-trip"
        (Jsonl.parse (Jsonl.to_string line) = line))
    (Jsonl.parse_lines (Jsonl.read_file (fixture "golden_trace.jsonl")))

(* ------------------------------------------------- cross-process merge *)

(* A two-process request: the client reserved span id 5 for its attempt
   and put it on the wire; the server's serve.request carries both the
   trace_id and that parent_span.  Both processes happen to reuse the
   same small span ids — the merge must keep them apart. *)
let client_spans =
  [
    mk ~id:5 ~parent:10 ~name:"client.attempt"
      ~attrs:[ ("trace_id", Jsonl.Str "t1") ]
      ~start:0.1 ~dur:0.4 ();
    mk ~id:10 ~parent:0 ~name:"client.request"
      ~attrs:[ ("trace_id", Jsonl.Str "t1") ]
      ~start:0.1 ~dur:0.5 ();
  ]

let server_spans =
  [
    mk ~id:3 ~parent:7 ~name:"serve.kernel" ~start:0.25 ~dur:0.1 ();
    (* Locally nested under the server's batch span: the wire parent
       must override this process-local grouping. *)
    mk ~id:7 ~parent:9 ~name:"serve.request"
      ~attrs:[ ("trace_id", Jsonl.Str "t1"); ("parent_span", Jsonl.Num 5.) ]
      ~start:0.2 ~dur:0.2 ();
    mk ~id:9 ~parent:0 ~name:"serve.batch" ~start:0.2 ~dur:0.3 ();
  ]

let find_span name spans = List.find (fun s -> s.Trace.name = name) spans

let test_merge_stitches_processes () =
  let merged = Trace.merge [ client_spans; server_spans ] in
  check_int "no span lost" 5 (List.length merged);
  let ids = List.map (fun s -> s.Trace.id) merged in
  check_int "remapped ids stay distinct" 5
    (List.length (List.sort_uniq compare ids));
  let attempt = find_span "client.attempt" merged in
  let request = find_span "client.request" merged in
  let serve = find_span "serve.request" merged in
  let kernel = find_span "serve.kernel" merged in
  check_int "wire parent_span overrides the local batch nesting"
    attempt.Trace.id serve.Trace.parent;
  check_int "local nesting survives the remap" request.Trace.id
    attempt.Trace.parent;
  check_int "server-local child follows its parent" serve.Trace.id
    kernel.Trace.parent;
  (* One tree with one root per request once filtered to its trace id. *)
  let t1 = Trace.filter_trace ~id:"t1" merged in
  check_int "request tree is complete" 4 (List.length t1);
  check_int "exactly one root per request" 1
    (List.length (List.filter (fun s -> s.Trace.parent = 0) t1))

let test_merge_degrades_without_target () =
  (* Server file alone: the wire parent lives in an absent client file —
     the span keeps its process-local parent instead of being dropped or
     orphaned. *)
  let merged = Trace.merge [ server_spans ] in
  check_int "nothing dropped" 3 (List.length merged);
  check_int "remote child keeps its local batch parent"
    (find_span "serve.batch" merged).Trace.id
    (find_span "serve.request" merged).Trace.parent

let test_filter_trace_follows_descendants () =
  let noise =
    [
      mk ~id:2 ~parent:0 ~name:"client.request"
        ~attrs:[ ("trace_id", Jsonl.Str "t2") ]
        ();
      mk ~id:4 ~parent:0 ~name:"analyze" ();
    ]
  in
  let merged = Trace.merge [ client_spans; server_spans; noise ] in
  let t1 = Trace.filter_trace ~id:"t1" merged in
  check_int "t1 keeps its four spans" 4 (List.length t1);
  check_true "untagged kernel child follows its parent"
    (List.exists (fun s -> s.Trace.name = "serve.kernel") t1);
  check_true "other traces excluded"
    (not (List.exists (fun s -> Trace.trace_id s = Some "t2") t1));
  check_int "t2 is just its root" 1
    (List.length (Trace.filter_trace ~id:"t2" merged));
  check_int "unknown trace id is empty" 0
    (List.length (Trace.filter_trace ~id:"zzz" merged))

let test_kinds_sorted_distinct () =
  check_true "kinds are sorted distinct names"
    (Trace.kinds (client_spans @ client_spans)
    = [ "client.attempt"; "client.request" ]);
  (* The disjoint check `bg trace diff` applies. *)
  let inter =
    List.filter
      (fun k -> List.mem k (Trace.kinds server_spans))
      (Trace.kinds client_spans)
  in
  check_int "client and server kinds are disjoint" 0 (List.length inter)

let test_tree_table_renders_merge () =
  let merged = Trace.merge [ client_spans; server_spans ] in
  let rendered =
    Core.Prelude.Table.render
      (Trace.tree_table ~title:"causal tree: t1"
         (Trace.filter_trace ~id:"t1" merged))
  in
  let contains needle =
    let nl = String.length needle and hl = String.length rendered in
    let rec go i =
      i + nl <= hl && (String.sub rendered i nl = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle -> check_true (needle ^ " rendered") (contains needle))
    [ "client.request"; "serve.kernel" ]

let suite =
  [
    ( "trace_tools.report",
      [
        case "golden trace loads" test_load_golden;
        case "self+child = total per kind" test_aggregate_conserves_time;
        case "log2-bucket quantile estimates" test_quantile_estimates;
        case "critical path descends heaviest children" test_critical_path;
      ] );
    ( "trace_tools.flame",
      [
        case "folded stacks round-trip nesting" test_folded_round_trips_nesting;
        case "speedscope valid + golden-pinned" test_speedscope_valid_and_golden;
        case "speedscope one profile per domain" test_speedscope_multi_domain;
      ] );
    ( "trace_tools.diff",
      [
        case "diff against itself is all-zero" test_diff_self_is_zero;
        case "diff orders regressions, marks new kinds"
          test_diff_orders_regressions;
      ] );
    ( "trace_tools.merge",
      [
        case "merge stitches client + server" test_merge_stitches_processes;
        case "merge degrades without its target"
          test_merge_degrades_without_target;
        case "filter_trace follows descendants"
          test_filter_trace_follows_descendants;
        case "kinds sorted, disjointness detectable"
          test_kinds_sorted_distinct;
        case "tree_table renders the causal tree"
          test_tree_table_renders_merge;
      ] );
    ( "trace_tools.regress",
      [
        case "self-comparison exits 0" test_check_self_comparison_passes;
        case "synthetic 2x slowdown exits nonzero"
          test_check_flags_synthetic_slowdown;
        case "thresholds are noise-aware" test_check_noise_aware_threshold;
        case "baselines round-trip" test_baselines_round_trip;
        case "history appends JSONL" test_history_appends;
        case "jsonl emitter round-trips" test_jsonl_emitter_round_trip;
      ] );
  ]
