(* Tests for decay-matrix I/O, decay statistics, online capacity and
   distributed contention resolution. *)

open Testutil
module D = Core.Decay.Decay_space
module Met = Core.Decay.Metricity
module Io = Core.Decay.Decay_io
module St = Core.Decay.Statistics
module On = Core.Capacity.Online
module Cont = Core.Distrib.Contention
module I = Core.Sinr.Instance
module Pw = Core.Sinr.Power
module Samp = Core.Radio.Sampling

(* -------------------------------------------------------------------- IO *)

let test_io_roundtrip () =
  let d = random_space ~n:7 1 in
  let d' = Io.of_csv (Io.to_csv d) in
  check_true "matrices equal" (D.matrix d = D.matrix d');
  Alcotest.(check string) "name preserved" (D.name d) (D.name d')

let test_io_asymmetric_roundtrip () =
  let d = random_asym_space ~n:5 2 in
  let d' = Io.of_csv (Io.to_csv d) in
  check_true "asymmetric preserved" (D.matrix d = D.matrix d')

let test_io_comments_and_blanks () =
  let text = "# a comment\n\n0,2\n\n# another\n3,0\n" in
  let d = Io.of_csv text in
  check_float "f(0,1)" 2. (D.decay d 0 1);
  check_float "f(1,0)" 3. (D.decay d 1 0)

let test_io_name_header () =
  let text = "# name: my-building\n0,1\n1,0\n" in
  Alcotest.(check string) "header name" "my-building" (D.name (Io.of_csv text))

let test_io_rejects_garbage () =
  Alcotest.check_raises "not a number"
    (Invalid_argument "Decay_io.of_csv: not a number: abc (line 1, column 2)")
    (fun () -> ignore (Io.of_csv "0,abc\n1,0\n"))

let test_io_rejects_invalid_matrix () =
  (* Valid CSV but invalid decay space (nonzero diagonal). *)
  let raised =
    try
      ignore (Io.of_csv "1,2\n2,1\n");
      false
    with Invalid_argument _ -> true
  in
  check_true "diagonal rejected" raised

let test_io_file_roundtrip () =
  let d = random_space ~n:6 3 in
  let path = Filename.temp_file "bgtest" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save d path;
      let d' = Io.load path in
      check_true "file roundtrip" (D.matrix d = D.matrix d'))

let prop_io_roundtrip =
  qcheck ~count:40 "csv roundtrip is lossless" QCheck.small_int (fun seed ->
      let d = random_asym_space ~n:6 seed in
      D.matrix d = D.matrix (Io.of_csv (Io.to_csv d)))

(* ------------------------------------------------------------ Statistics *)

let test_stats_summary () =
  let d = D.of_matrix [| [| 0.; 10. |]; [| 100.; 0. |] |] in
  let s = St.summarize d in
  check_int "n" 2 s.St.n;
  check_float ~eps:1e-9 "min dB" 10. s.St.min_db;
  check_float ~eps:1e-9 "max dB" 20. s.St.max_db;
  check_float ~eps:1e-9 "range" 10. s.St.dynamic_range_db;
  check_float ~eps:1e-9 "asymmetry" 10. s.St.asymmetry_db

let test_stats_symmetric_no_asymmetry () =
  let s = St.summarize (random_space ~n:6 4) in
  check_float ~eps:1e-9 "zero asymmetry" 0. s.St.asymmetry_db

let test_effective_alpha_geo () =
  let pts = Core.Decay.Spaces.random_points (rng 5) ~n:12 ~side:20. in
  let arr = Array.of_list pts in
  let d = D.of_points ~alpha:3.5 pts in
  let fit = St.effective_alpha ~positions:arr d in
  check_float ~eps:1e-6 "recovers alpha" 3.5 fit.Core.Prelude.Stats.slope;
  check_float ~eps:1e-6 "perfect fit" 1. fit.Core.Prelude.Stats.r2

let test_effective_alpha_indoor_poor_fit () =
  let pts = Core.Decay.Spaces.random_points (rng 6) ~n:12 ~side:20. in
  let arr = Array.of_list pts in
  let env =
    Core.Radio.Environment.random_clutter (rng 7) ~side:22. ~n_walls:40
      [ Core.Radio.Material.metal ]
  in
  let cfg =
    { Core.Radio.Propagation.default with
      Core.Radio.Propagation.shadowing_sigma_db = 8. }
  in
  let d =
    Core.Radio.Measure.decay_space ~seed:8 ~config:cfg env
      (Core.Radio.Node.of_points pts)
  in
  let fit = St.effective_alpha ~positions:arr d in
  check_true "geometry explains little indoors" (fit.Core.Prelude.Stats.r2 < 0.8)

let test_stats_validation () =
  Alcotest.check_raises "positions mismatch"
    (Invalid_argument "Statistics.effective_alpha: positions length mismatch")
    (fun () ->
      ignore
        (St.effective_alpha ~positions:[| Core.Geom.Point.origin |]
           (random_space ~n:4 9)))

(* --------------------------------------------------------------- Online *)

let test_online_feasibility_only () =
  let t = planar_instance ~n_links:10 11 in
  let arrival = Array.to_list t.I.links in
  let acc = On.feasibility_only t ~arrival in
  check_true "accepted set feasible"
    (Core.Sinr.Feasibility.is_feasible t (Pw.uniform 1.) acc);
  check_true "nonempty" (List.length acc >= 1)

let test_online_guarded_feasible () =
  let t = planar_instance ~n_links:10 12 in
  let arrival = Array.to_list t.I.links in
  let acc = On.guarded t ~arrival in
  check_true "accepted set feasible"
    (Core.Sinr.Feasibility.is_feasible t (Pw.uniform 1.) acc);
  check_true "separated"
    (Core.Sinr.Separation.is_separated_set t ~eta:(t.I.zeta /. 2.) acc)

let test_online_guarded_resists_bad_order () =
  (* Adversarial order: longest (weakest) links first.  The naive rule
     fills up on them; the guarded rule's headroom test keeps capacity for
     later short links at least as well. *)
  let t = planar_instance ~n_links:12 ~side:10. 13 in
  let arrival =
    List.sort
      (fun a b -> Core.Sinr.Link.compare_by_decay t.I.space b a)
      (Array.to_list t.I.links)
  in
  let naive = On.feasibility_only t ~arrival in
  let guarded = On.guarded t ~arrival in
  check_true "both feasible"
    (Core.Sinr.Feasibility.is_feasible t (Pw.uniform 1.) naive
    && Core.Sinr.Feasibility.is_feasible t (Pw.uniform 1.) guarded)

let test_online_competitive_ratio () =
  let t = planar_instance ~n_links:10 14 in
  let acc = On.feasibility_only t ~arrival:(Array.to_list t.I.links) in
  let r = On.competitive_ratio t ~accepted:acc in
  check_true "ratio >= 1" (r >= 1. -. 1e-9)

let prop_online_prefix_feasible =
  qcheck ~count:25 "every accepted prefix stays feasible" QCheck.small_int
    (fun seed ->
      let t = planar_instance ~n_links:8 seed in
      let g = rng (seed + 3) in
      let arr = Array.copy t.I.links in
      Core.Prelude.Rng.shuffle g arr;
      let acc = On.guarded t ~arrival:(Array.to_list arr) in
      (* Check all prefixes of the acceptance order. *)
      let rec prefixes pre = function
        | [] -> true
        | l :: rest ->
            let pre = l :: pre in
            Core.Sinr.Feasibility.is_feasible t (Pw.uniform 1.) pre
            && prefixes pre rest
      in
      prefixes [] acc)

(* ------------------------------------------------------------ Contention *)

let test_contention_completes_fixed () =
  let t = planar_instance ~n_links:8 ~side:40. 21 in
  let r = Cont.run ~policy:(Cont.Fixed 0.3) (rng 22) t in
  check_true "completed" r.Cont.completed;
  check_true "history monotone"
    (let rec mono = function
       | a :: (b :: _ as rest) -> a <= b && mono rest
       | _ -> true
     in
     mono r.Cont.successes_by_round)

let test_contention_completes_backoff () =
  let t = planar_instance ~n_links:8 ~side:8. 23 in
  let r = Cont.run ~policy:(Cont.Backoff 0.8) (rng 24) t in
  check_true "completed" r.Cont.completed

let test_contention_density_slows () =
  let sparse = planar_instance ~n_links:10 ~side:80. 25 in
  let dense = planar_instance ~n_links:10 ~side:8. 25 in
  let rs = Cont.run ~policy:(Cont.Fixed 0.25) (rng 26) sparse in
  let rd = Cont.run ~policy:(Cont.Fixed 0.25) (rng 26) dense in
  check_true "denser takes at least as long" (rd.Cont.rounds >= rs.Cont.rounds)

let test_contention_validation () =
  let t = planar_instance ~n_links:3 27 in
  Alcotest.check_raises "p range"
    (Invalid_argument "Contention.run: p out of (0,1]") (fun () ->
      ignore (Cont.run ~policy:(Cont.Fixed 0.) (rng 28) t))

let test_contention_budget () =
  let g = Core.Graph.Graph.complete 4 in
  let sp, pairs = Core.Decay.Spaces.mis_construction g in
  let t = I.equi_decay_of_space sp pairs in
  (* A clique: only one link can ever succeed per round; tiny budget fails. *)
  let r = Cont.run ~max_rounds:1 ~policy:(Cont.Fixed 0.9) (rng 29) t in
  check_true "budget respected" (r.Cont.rounds <= 1)

(* ------------------------------------------------------ PRR estimation *)

let test_prr_estimation_recovers_midrange () =
  (* Pick power/noise so true success probabilities sit away from the
     boundaries: decays around 1e5, beta*noise*f/power ~ 0.1..2. *)
  let g = rng 81 in
  let sp =
    D.of_fn ~name:"mid" 6 (fun i j ->
        if i < j then 5e4 +. Core.Prelude.Rng.float g 2e5 else 5e4 +. Core.Prelude.Rng.float g 2e5)
  in
  let est =
    Samp.estimate_from_prr ~seed:1 ~packets:5000 ~power:1. ~beta:1. ~noise:1e-5 sp
  in
  let med, _ = Samp.error_db ~truth:sp ~estimate:est in
  check_true "median error below 0.5 dB" (med < 0.5)

let test_prr_estimation_censors_boundaries () =
  (* A decay so large every packet fails: the estimate saturates rather
     than diverging; and one so small every packet succeeds. *)
  let sp = D.of_matrix [| [| 0.; 1e12 |]; [| 1e-6; 0. |] |] in
  let est = Samp.estimate_from_prr ~packets:100 ~power:1. ~beta:1. ~noise:1e-3 sp in
  check_true "all-fail censored finite"
    (Float.is_finite (D.decay est 0 1) && D.decay est 0 1 > 1e3);
  check_true "all-pass censored positive" (D.decay est 1 0 > 0.)

let test_prr_estimation_validation () =
  let sp = Core.Decay.Spaces.uniform 3 in
  Alcotest.check_raises "needs noise"
    (Invalid_argument "Sampling.estimate_from_prr: needs positive noise")
    (fun () -> ignore (Samp.estimate_from_prr ~noise:0. sp))

let test_prr_estimation_more_packets_better () =
  let g = rng 82 in
  let sp =
    D.of_fn ~name:"mid2" 6 (fun i j ->
        if i <= j then 1e5 +. Core.Prelude.Rng.float g 1e5 else 1e5 +. Core.Prelude.Rng.float g 1e5)
  in
  let err k =
    fst
      (Samp.error_db ~truth:sp
         ~estimate:(Samp.estimate_from_prr ~seed:2 ~packets:k ~noise:1e-5 sp))
  in
  check_true "convergence" (err 4000 < err 40 +. 1e-9)

(* ------------------------------------------------------ raw binary IO *)

let test_raw_roundtrip () =
  let d = random_asym_space ~n:13 77 in
  let path = Filename.temp_file "bgtest" ".bgd" in
  Io.save_raw d path;
  let d' = Io.load_raw path in
  check_int "n preserved" (D.n d) (D.n d');
  let ok = ref true in
  for i = 0 to D.n d - 1 do
    for j = 0 to D.n d - 1 do
      if not (Float.equal (D.decay d i j) (D.decay d' i j)) then ok := false
    done
  done;
  check_true "cells bit-identical" !ok;
  Sys.remove path

let test_raw_mmap_matches_load () =
  let d = random_space ~n:11 78 in
  let path = Filename.temp_file "bgtest" ".bgd" in
  Io.save_raw d path;
  let a = Io.load_raw path and b = Io.load_raw_mmap path in
  check_true "same digest through both doors"
    (D.digest a = D.digest b && D.digest a = D.digest d);
  (* The mapped space runs the full kernel stack unchanged. *)
  check_float ~eps:0. "zeta identical on mapped space"
    (Met.zeta ~ctx:Core.Decay.Ctx.uncached a)
    (Met.zeta ~ctx:Core.Decay.Ctx.uncached b);
  Sys.remove path

let test_raw_rejects_bad_magic () =
  let path = Filename.temp_file "bgtest" ".bgd" in
  let oc = open_out_bin path in
  output_string oc "NOTADECAYMATRIX.....................";
  close_out oc;
  check_true "bad magic rejected"
    (match Io.load_raw path with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Sys.remove path

let test_raw_rejects_truncation () =
  let d = random_space ~n:6 79 in
  let path = Filename.temp_file "bgtest" ".bgd" in
  Io.save_raw d path;
  let len = (Unix.stat path).Unix.st_size in
  Unix.truncate path (len - 8);
  check_true "truncated payload rejected (load)"
    (match Io.load_raw path with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_true "truncated payload rejected (mmap)"
    (match Io.load_raw_mmap path with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Sys.remove path

let test_raw_validate_catches_bad_cells () =
  (* Corrupt one off-diagonal cell to a negative value: the validating
     loader must reject it, the mmap door (validate:false) must not. *)
  let d = random_space ~n:5 80 in
  let path = Filename.temp_file "bgtest" ".bgd" in
  Io.save_raw d path;
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.LargeFile.lseek fd (Int64.of_int (16 + (8 * 1))) Unix.SEEK_SET);
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float (-3.5));
  ignore (Unix.write fd b 0 8);
  Unix.close fd;
  check_true "validating load rejects the bad cell"
    (match Io.load_raw path with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let lazy_space = Io.load_raw_mmap path in
  check_float ~eps:0. "unvalidated mmap serves the raw bytes" (-3.5)
    (D.decay lazy_space 0 1);
  Sys.remove path

let suite =
  [
    ( "io.csv",
      [
        case "roundtrip" test_io_roundtrip;
        case "asymmetric roundtrip" test_io_asymmetric_roundtrip;
        case "comments and blanks" test_io_comments_and_blanks;
        case "name header" test_io_name_header;
        case "rejects garbage" test_io_rejects_garbage;
        case "rejects invalid matrix" test_io_rejects_invalid_matrix;
        case "file roundtrip" test_io_file_roundtrip;
        prop_io_roundtrip;
      ] );
    ( "io.raw",
      [
        case "raw roundtrip" test_raw_roundtrip;
        case "mmap = load" test_raw_mmap_matches_load;
        case "bad magic" test_raw_rejects_bad_magic;
        case "truncation" test_raw_rejects_truncation;
        case "cell validation" test_raw_validate_catches_bad_cells;
      ] );
    ( "radio.prr_estimation",
      [
        case "inversion recovers" test_prr_estimation_recovers_midrange;
        case "boundary censoring" test_prr_estimation_censors_boundaries;
        case "validation" test_prr_estimation_validation;
        case "more packets better" test_prr_estimation_more_packets_better;
      ] );
    ( "decay.statistics",
      [
        case "summary" test_stats_summary;
        case "symmetric asymmetry 0" test_stats_symmetric_no_asymmetry;
        case "effective alpha (geo)" test_effective_alpha_geo;
        case "effective alpha (indoor)" test_effective_alpha_indoor_poor_fit;
        case "validation" test_stats_validation;
      ] );
    ( "capacity.online",
      [
        case "feasibility-only" test_online_feasibility_only;
        case "guarded feasible+separated" test_online_guarded_feasible;
        case "adversarial order" test_online_guarded_resists_bad_order;
        case "competitive ratio" test_online_competitive_ratio;
        prop_online_prefix_feasible;
      ] );
    ( "distrib.contention",
      [
        case "fixed completes" test_contention_completes_fixed;
        case "backoff completes" test_contention_completes_backoff;
        case "density slows" test_contention_density_slows;
        case "validation" test_contention_validation;
        case "budget" test_contention_budget;
      ] );
  ]
