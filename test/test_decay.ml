open Testutil
module D = Core.Decay.Decay_space
module Met = Core.Decay.Metricity
module QM = Core.Decay.Quasi_metric
module Ball = Core.Decay.Ball
module Dim = Core.Decay.Dimension
module Fad = Core.Decay.Fading
module Sp = Core.Decay.Spaces
module M = Core.Geom.Metric
module P = Core.Geom.Point
module Rng = Core.Prelude.Rng
module Ctx = Core.Decay.Ctx
module Est = Core.Decay.Estimators

let seq_of jobs = Ctx.make ~jobs ~cache:false ()
let el12 jobs = Ctx.make ~jobs ~cache:false ~exact_limit:12 ()

(* ---------------------------------------------------------- Decay_space *)

let test_of_matrix_valid () =
  let d = D.of_matrix [| [| 0.; 2. |]; [| 3.; 0. |] |] in
  check_float "f(0,1)" 2. (D.decay d 0 1);
  check_float "f(1,0)" 3. (D.decay d 1 0);
  check_float "gain" 0.5 (D.gain d 0 1)

(* Validation failures carry the offending cell's address and value. *)
let test_of_matrix_rejects_nonsquare () =
  Alcotest.check_raises "not square"
    (Invalid_argument
       "decay: row 0 has 2 cells, expected 1 (the square matrix has 1 rows)")
    (fun () -> ignore (D.of_matrix [| [| 0.; 1. |] |]))

let test_of_matrix_rejects_diagonal () =
  Alcotest.check_raises "diagonal"
    (Invalid_argument "decay: nonzero diagonal decay 1 at (0,0)") (fun () ->
      ignore (D.of_matrix [| [| 1. |] |]))

let test_of_matrix_rejects_zero_offdiag () =
  Alcotest.check_raises "zero off-diagonal"
    (Invalid_argument
       "decay: nonpositive decay 0 at (0,1) between distinct nodes")
    (fun () -> ignore (D.of_matrix [| [| 0.; 0. |]; [| 1.; 0. |] |]))

let test_of_matrix_rejects_nonfinite () =
  Alcotest.check_raises "inf"
    (Invalid_argument "decay: non-finite decay inf at (0,1)") (fun () ->
      ignore (D.of_matrix [| [| 0.; infinity |]; [| 1.; 0. |] |]))

let test_matrix_defensive_copy () =
  let m = [| [| 0.; 2. |]; [| 3.; 0. |] |] in
  let d = D.of_matrix m in
  m.(0).(1) <- 99.;
  check_float "input mutation isolated" 2. (D.decay d 0 1);
  let out = D.matrix d in
  out.(1).(0) <- 99.;
  check_float "output mutation isolated" 3. (D.decay d 1 0)

let test_symmetry_checks () =
  check_true "symmetric" (D.is_symmetric (random_space 3));
  check_false "asymmetric"
    (D.is_symmetric (D.of_matrix [| [| 0.; 1. |]; [| 2.; 0. |] |]))

let test_min_max_decay () =
  let d = D.of_matrix [| [| 0.; 2. |]; [| 5.; 0. |] |] in
  check_float "min" 2. (D.min_decay d);
  check_float "max" 5. (D.max_decay d)

let test_scale_pow () =
  let d = D.of_matrix [| [| 0.; 4. |]; [| 9.; 0. |] |] in
  check_float "scaled" 8. (D.decay (D.scale 2. d) 0 1);
  check_float "pow" 2. (D.decay (D.pow 0.5 d) 0 1);
  check_float "pow other entry" 3. (D.decay (D.pow 0.5 d) 1 0)

let test_symmetrize () =
  let d = D.symmetrize (D.of_matrix [| [| 0.; 1. |]; [| 7.; 0. |] |]) in
  check_float "takes max" 7. (D.decay d 0 1);
  check_true "symmetric" (D.is_symmetric d)

let test_sub_space () =
  let d = random_space ~n:6 1 in
  let s = D.sub_space d [| 4; 1; 0 |] in
  check_int "size" 3 (D.n s);
  check_float "entries permuted" (D.decay d 4 1) (D.decay s 0 1);
  check_float "entries permuted 2" (D.decay d 0 4) (D.decay s 2 0)

let test_map () =
  let d = D.of_matrix [| [| 0.; 2. |]; [| 3.; 0. |] |] in
  let e = D.map (fun _ _ f -> f +. 1.) d in
  check_float "mapped" 3. (D.decay e 0 1)

let test_of_metric_embeds_alpha () =
  let m = M.line [ 0.; 1.; 3. ] in
  let d = D.of_metric ~alpha:2. m in
  check_float "squared distance" 9. (D.decay d 0 2);
  check_float "squared distance 2" 4. (D.decay d 1 2)

(* ------------------------------------------------------------ Metricity *)

let test_zeta_triple_triangle_ok () =
  check_float "already metric" 1. (Met.zeta_triple 3. 2. 2.)

let test_zeta_triple_violation () =
  (* f_xy = 16, sides 2 and 2: need 16^t <= 2 * 2^t, i.e. 2^{4t} <= 2^{t+1}:
     t <= 1/3, zeta = 3. *)
  check_float ~eps:1e-6 "exact threshold" 3. (Met.zeta_triple 16. 2. 2.)

let test_zeta_geo_equals_alpha () =
  (* Random point sets approach zeta = alpha from below (equality needs
     collinear triples), so allow a small slack... *)
  List.iter
    (fun alpha ->
      let pts = Sp.random_points (rng 5) ~n:15 ~side:10. in
      let d = D.of_points ~alpha pts in
      check_float ~eps:2e-3
        (Printf.sprintf "zeta ~ alpha = %g" alpha)
        alpha (Met.zeta d))
    [ 2.; 2.5; 4. ];
  (* ...while a collinear triple attains it exactly. *)
  let collinear = [ P.make 0. 0.; P.make 1. 0.; P.make 2. 0. ] in
  check_float ~eps:1e-6 "collinear attains alpha" 3.
    (Met.zeta (D.of_points ~alpha:3. collinear))

let test_zeta_metric_is_one () =
  let pts = Sp.random_points (rng 6) ~n:12 ~side:10. in
  let d = D.of_points ~alpha:1. pts in
  check_float ~eps:1e-6 "alpha=1 gives zeta=1" 1. (Met.zeta d)

let test_zeta_within_upper_bound () =
  let d = random_space ~n:10 7 in
  check_true "zeta <= lg(max/min)" (Met.zeta d <= Met.zeta_upper_bound d +. 1e-6)

let test_zeta_witness_attains () =
  let d = random_space ~n:8 9 in
  let w = Met.zeta_witness d in
  check_float ~eps:1e-9 "witness value is zeta" (Met.zeta d) w.Met.value;
  if w.Met.value > 1. then begin
    let fxy = D.decay d w.Met.x w.Met.y
    and fxz = D.decay d w.Met.x w.Met.z
    and fzy = D.decay d w.Met.z w.Met.y in
    check_float ~eps:1e-6 "triple reproduces value" w.Met.value
      (Met.zeta_triple fxy fxz fzy)
  end

let test_zeta_sampled_lower_bound () =
  let d = random_space ~n:10 11 in
  let e = Est.zeta_triples ~samples:2000 (rng 1) (Est.of_space d) in
  check_true "sampled <= exact" (e.Est.point <= Met.zeta d +. 1e-9)

let test_holds_at () =
  let d = random_space ~n:8 13 in
  let z = Met.zeta d in
  check_true "holds at zeta" (Met.holds_at d z);
  if z > 1.05 then check_false "fails below zeta" (Met.holds_at d ((z /. 2.) +. 0.4999))

let test_zeta_pow_scales () =
  (* pow e on decays multiplies zeta by e (for results >= 1). *)
  let pts = [ P.make 0. 0.; P.make 1. 0.; P.make 2. 0.; P.make 0.5 1.3 ] in
  let d = D.of_points ~alpha:2. pts in
  check_float ~eps:1e-5 "pow 1.5 gives zeta 3" (1.5 *. Met.zeta d)
    (Met.zeta (D.pow 1.5 d))

let test_phi_three_point () =
  let d = Sp.three_point ~q:1000. in
  (* max f(x,z)/(f(x,y)+f(y,z)) = 2q/(1+q) -> just under 2. *)
  check_float ~eps:1e-3 "phi just under 2" (2000. /. 1001.) (Met.phi d);
  check_true "phi_log <= 1" (Met.phi_log d <= 1.)

let test_phi_log_leq_zeta () =
  (* Section 4.2: f_xz <= 2^zeta (f_xy + f_yz), so phi <= 2^zeta. *)
  List.iter
    (fun seed ->
      let d = random_space ~n:8 seed in
      check_true "phi_log <= zeta" (Met.phi_log d <= Met.zeta d +. 1e-6))
    [ 1; 2; 3; 4; 5 ]

let test_three_point_zeta_grows () =
  let z1 = Met.zeta (Sp.three_point ~q:100.) in
  let z2 = Met.zeta (Sp.three_point ~q:1e8) in
  check_true "zeta grows with q" (z2 > z1 +. 1.);
  check_true "phi stays below 2" (Met.phi (Sp.three_point ~q:1e8) < 2.)

let test_zeta_small_spaces () =
  check_float "n=2 trivially 1" 1. (Met.zeta (D.of_matrix [| [| 0.; 5. |]; [| 5.; 0. |] |]))

(* ----------------------------------------------------------- Quasi_metric *)

let test_induce_satisfies_triangle () =
  List.iter
    (fun seed ->
      let d = random_space ~n:8 seed in
      let m, z = QM.induce d in
      check_true "zeta >= 1" (z >= 1.);
      check_true "triangle holds" (M.check_triangle ~eps:1e-6 m))
    [ 21; 22; 23 ]

let test_induce_symmetric_gives_metric () =
  let d = random_space ~n:7 31 in
  let m, _ = QM.induce d in
  check_true "metric" (M.check_symmetry m)

let test_round_trip () =
  let d = random_space ~n:6 33 in
  let m, z = QM.induce d in
  let d' = QM.round_trip ~zeta:z m in
  let ok = ref true in
  for i = 0 to 5 do
    for j = 0 to 5 do
      if i <> j && not (Core.Prelude.Numerics.feq ~eps:1e-6 (D.decay d i j) (D.decay d' i j))
      then ok := false
    done
  done;
  check_true "round trip reproduces decays" !ok

let test_distance_pointwise () =
  let d = D.of_matrix [| [| 0.; 8. |]; [| 8.; 0. |] |] in
  check_float ~eps:1e-9 "f^(1/3)" 2. (QM.distance ~zeta:3. d 0 1)

(* ----------------------------------------------------------------- Ball *)

let test_ball_members () =
  let d = Sp.uniform 5 in
  Alcotest.(check (list int)) "radius below decay: singleton" [ 2 ]
    (Ball.members d ~centre:2 ~radius:0.5);
  check_int "radius above decay: everyone" 5
    (List.length (Ball.members d ~centre:2 ~radius:1.5))

let test_is_packing () =
  let d = D.of_matrix [| [| 0.; 10.; 10. |]; [| 10.; 0.; 1. |]; [| 10.; 1.; 0. |] |] in
  check_true "far nodes pack" (Ball.is_packing d ~radius:4. [ 0; 1 ]);
  check_false "near nodes do not" (Ball.is_packing d ~radius:4. [ 1; 2 ])

let test_max_packing_exact () =
  let d = Sp.uniform 6 in
  (* Pairwise decay 1 > 2t requires t < 0.5. *)
  check_int "all pack at small radius" 6
    (List.length (Ball.max_packing d ~within:[ 0; 1; 2; 3; 4; 5 ] ~radius:0.4));
  check_int "only one at large radius" 1
    (List.length (Ball.max_packing d ~within:[ 0; 1; 2; 3; 4; 5 ] ~radius:0.6))

let test_packing_number_monotone () =
  let pts = Sp.grid_points ~rows:4 ~cols:4 ~spacing:1. in
  let d = D.of_points ~alpha:2. pts in
  let p1 =
    Ball.packing_number d ~centre:0 ~ball_radius:50. ~packing_radius:4.
  in
  let p2 =
    Ball.packing_number d ~centre:0 ~ball_radius:50. ~packing_radius:1.
  in
  check_true "finer packing is larger" (p2 >= p1);
  check_true "nonempty" (p1 >= 1)

(* ------------------------------------------------------------ Dimension *)

let test_independence_uniform () =
  check_int "uniform space: 1" 1 (Dim.independence_dimension (Sp.uniform 8))

let test_independence_welzl () =
  let w = Sp.welzl ~n:7 ~eps:0.25 in
  check_int "welzl: n+1" 8 (Dim.independence_dimension w);
  (* The big independent set is specifically w.r.t. v_{-1} (index 0). *)
  check_int "witness at v_-1" 8 (List.length (Dim.independence_wrt w ~x:0))

let test_independence_plane_bounded () =
  List.iter
    (fun seed ->
      let pts = Sp.random_points (rng seed) ~n:14 ~side:10. in
      let d = D.of_points ~alpha:2. pts in
      check_true "planar independence <= 6" (Dim.independence_dimension d <= 6))
    [ 41; 42; 43 ]

let test_independence_hexagon () =
  (* Five points at 72 degrees around a centre: strictly independent. *)
  let centre = P.make 0. 0. in
  let ring =
    List.init 5 (fun i ->
        let a = 2. *. Float.pi *. float_of_int i /. 5. in
        P.make (cos a) (sin a))
  in
  let d = D.of_points ~alpha:1. (centre :: ring) in
  check_true "pentagon independent wrt centre"
    (Dim.is_independent_wrt d ~x:0 [ 1; 2; 3; 4; 5 ])

let test_is_independent_rejects_x () =
  let d = Sp.uniform 4 in
  Alcotest.check_raises "x in set"
    (Invalid_argument "Dimension.is_independent_wrt: set contains x") (fun () ->
      ignore (Dim.is_independent_wrt d ~x:1 [ 1; 2 ]))

let test_guards_cover () =
  List.iter
    (fun seed ->
      let d = random_space ~n:9 seed in
      for x = 0 to 2 do
        let g = Dim.greedy_guards d ~x in
        check_true "guards guard" (Dim.is_guard_set d ~x g)
      done)
    [ 51; 52 ]

let test_guards_uniform_single () =
  let d = Sp.uniform 7 in
  check_int "one guard suffices" 1 (List.length (Dim.greedy_guards d ~x:3));
  check_int "max over nodes" 1 (Dim.max_guard_count d)

let test_guards_plane_at_most_six () =
  List.iter
    (fun seed ->
      let pts = Sp.random_points (rng seed) ~n:16 ~side:10. in
      let d = D.of_points ~alpha:2. pts in
      check_true "<= 6 guards on the plane" (Dim.max_guard_count d <= 6))
    [ 61; 62; 63 ]

let test_quasi_doubling_welzl () =
  check_float ~eps:0.01 "welzl doubling dim 1" 1.
    (Dim.quasi_doubling ~zeta:1. (Sp.welzl ~n:8 ~eps:0.25))

let test_assouad_decreases_with_alpha () =
  let pts = Sp.grid_points ~rows:5 ~cols:5 ~spacing:1. in
  let a2 = Dim.assouad (D.of_points ~alpha:2. pts) in
  let a4 = Dim.assouad (D.of_points ~alpha:4. pts) in
  check_true "A ~ 2/alpha decreasing" (a4 < a2);
  check_true "alpha=4 grid is a fading space" (a4 < 1.)

let test_packing_growth_positive () =
  let d = random_space ~n:8 71 in
  check_true "g(2) >= 1" (Dim.packing_growth d ~q:2. >= 1)

let test_packing_growth_rejects_q () =
  let d = Sp.uniform 3 in
  Alcotest.check_raises "q <= 1"
    (Invalid_argument "Dimension.packing_growth: q must exceed 1") (fun () ->
      ignore (Dim.packing_growth d ~q:1.))

(* --------------------------------------------------------------- Fading *)

let test_separated_predicate () =
  let d = Sp.uniform 5 in
  check_true "uniform 1-separated" (Fad.is_separated d ~r:1. [ 0; 1; 2 ]);
  check_false "not 2-separated" (Fad.is_separated d ~r:2. [ 0; 1 ])

let test_interference_sum () =
  let d = D.of_matrix [| [| 0.; 2.; 4. |]; [| 2.; 0.; 4. |]; [| 4.; 4.; 0. |] |] in
  check_float ~eps:1e-9 "I = P/2 + P/4" 0.75
    (Fad.interference_at d ~z:0 ~senders:[ 1; 2 ] ~power:1.)

let test_gamma_star_example () =
  (* Section 3.4: star with k far leaves.  The r-separated senders around
     x_{-1} are the centre (at decay r) plus all k far leaves (at decay
     k^2 + r), so gamma_z = r * (1/r + k/(k^2 + r)) = 1 + o(1): bounded
     even though the doubling dimension grows with k. *)
  let k = 20 and r = 4. in
  let d = Sp.star ~k ~r in
  let v, witness = Fad.gamma_z ~exact_limit:30 d ~z:1 ~r in
  let kf = float_of_int k in
  let expected = 1. +. (r *. kf /. ((kf *. kf) +. r)) in
  check_float ~eps:1e-6 "gamma_z(x_-1) matches closed form" expected v;
  check_int "witness has centre plus leaves" (k + 1) (List.length witness);
  (* Leaves alone contribute only ~r/k: the paper's vanishing-interference
     point. *)
  let leaves = List.filter (fun x -> x >= 2) witness in
  let leaf_sum = r *. Fad.interference_at d ~z:1 ~senders:leaves ~power:1. in
  check_true "far-leaf share vanishes" (leaf_sum < 2. *. r /. kf)

let test_gamma_zero_when_no_candidates () =
  let d = Sp.uniform 4 in
  let v, set = Fad.gamma_z d ~z:0 ~r:5. in
  check_float "no separated senders" 0. v;
  check_int "empty witness" 0 (List.length set)

let test_gamma_monotone_in_r_scaled () =
  (* gamma(r) = r * max-sum: for the uniform space with r <= 1 every subset
     qualifies, so gamma(r) = r * (n-1). *)
  let d = Sp.uniform 6 in
  check_float ~eps:1e-9 "uniform gamma" 2.5 (Fad.gamma d ~r:0.5)

let test_theorem2_bound_on_grid () =
  (* Planar grid with alpha = 4: A ~ 1/2 < 1; Theorem 2's bound with the
     empirical constant should dominate the measured gamma. *)
  let pts = Sp.grid_points ~rows:5 ~cols:5 ~spacing:1. in
  let d = D.of_points ~alpha:4. pts in
  let measured = Fad.gamma ~ctx:(Ctx.make ~exact_limit:20 ()) d ~r:1. in
  let bound = Fad.theorem2_bound ~c:6. ~a:0.5 in
  check_true "bound dominates" (measured <= bound)

let test_theorem2_bound_requires_fading () =
  Alcotest.check_raises "A >= 1"
    (Invalid_argument "Fading.theorem2_bound: requires A < 1") (fun () ->
      ignore (Fad.theorem2_bound ~c:1. ~a:1.))

let test_gamma_witness_is_separated () =
  let d = random_space ~n:10 81 in
  let r = D.min_decay d *. 2. in
  let _, set = Fad.gamma_z d ~z:0 ~r in
  check_true "witness is r-separated" (Fad.is_separated d ~r set)

(* --------------------------------------------------------------- Spaces *)

let test_uniform_space () =
  let d = Sp.uniform 5 in
  check_float "all ones" 1. (D.decay d 0 4);
  check_float "zeta 1" 1. (Met.zeta d)

let test_star_distances () =
  let d = Sp.star ~k:5 ~r:2. in
  check_float "centre to close leaf" 2. (D.decay d 0 1);
  check_float "centre to far leaf" 25. (D.decay d 0 3);
  check_float "leaf to leaf through centre" 27. (D.decay d 1 3);
  check_float "star metric is metric" 1. (Met.zeta d)

let test_welzl_structure () =
  let d = Sp.welzl ~n:5 ~eps:0.25 in
  (* d(v_-1, v_i) = 2^i - eps, d(v_j, v_i) = 2^i for j < i. *)
  check_float "v-1 to v0" 0.75 (D.decay d 0 1);
  check_float "v-1 to v3" 7.75 (D.decay d 0 4);
  check_float "v0 to v3" 8. (D.decay d 1 4);
  check_true "symmetric" (D.is_symmetric d)

let test_welzl_validation () =
  Alcotest.check_raises "eps too big"
    (Invalid_argument "Spaces.welzl: need 0 < eps <= 1/4") (fun () ->
      ignore (Sp.welzl ~n:3 ~eps:0.3))

let test_three_point_values () =
  let d = Sp.three_point ~q:10. in
  check_float "fab" 1. (D.decay d 0 1);
  check_float "fbc" 10. (D.decay d 1 2);
  check_float "fac" 20. (D.decay d 0 2)

let test_mis_construction_structure () =
  let g = Core.Graph.Graph.cycle 5 in
  let d, links = Sp.mis_construction g in
  check_int "2n nodes" 10 (D.n d);
  check_int "n links" 5 (List.length links);
  (* Link decay is 1; edges decay 1/2 (strong interference); non-edges n
     (weak interference). *)
  check_float "link decay" 1. (D.decay d 0 5);
  check_float "edge decay" 0.5 (D.decay d 0 6);
  check_float "non-edge decay" 5. (D.decay d 0 7);
  (* zeta <= lg(2n) and tight-ish. *)
  check_true "zeta <= lg 2n"
    (Met.zeta d <= Core.Prelude.Numerics.log2 (2. *. 10.) +. 1e-6)

let test_two_line_structure () =
  let g = Core.Graph.Graph.path 4 in
  let d, links = Sp.two_line g ~alpha':2. () in
  check_int "2n nodes" 8 (D.n d);
  check_int "n links" 4 (List.length links);
  check_float "diagonal decay n^a'" 16. (D.decay d 0 4);
  check_float "edge decay n^a' - delta" 15.75 (D.decay d 0 5);
  check_float "non-edge decay n^(a'+1)" 64. (D.decay d 0 6);
  check_float "same line |i-j|^a'" 4. (D.decay d 0 2);
  (* phi = Theta(n): here the worst ratio is n^(a'+1) / small sums. *)
  check_true "phi is large" (Met.phi d > 2.);
  (* Decay-ball doubling of the construction stays small (A <= 2 claimed). *)
  check_true "independence dimension small"
    (Dim.independence_dimension d <= 4)

let test_grid_points_count () =
  check_int "rows*cols" 12 (List.length (Sp.grid_points ~rows:3 ~cols:4 ~spacing:1.))

let test_perturbed_sigma_zero () =
  let pts = Sp.random_points (rng 91) ~n:6 ~side:5. in
  let d0 = Sp.perturbed (rng 1) ~alpha:3. ~sigma:0. pts in
  let dg = D.of_points ~alpha:3. pts in
  let ok = ref true in
  for i = 0 to 5 do
    for j = 0 to 5 do
      if D.decay d0 i j <> D.decay dg i j then ok := false
    done
  done;
  check_true "sigma 0 recovers geometry" !ok

let test_perturbed_increases_zeta () =
  let pts = Sp.random_points (rng 92) ~n:12 ~side:10. in
  let d = Sp.perturbed (rng 2) ~alpha:2. ~sigma:1.5 pts in
  check_true "shadowing raises metricity" (Met.zeta d > 2.)

(* --------------------------------------------------------------- QCheck *)

let prop_zeta_monotone_validity =
  qcheck "inequality valid at any z >= zeta" QCheck.small_int (fun seed ->
      let d = random_space ~n:6 seed in
      let z = Met.zeta d in
      Met.holds_at d (z +. 0.5) && Met.holds_at d (2. *. z))

let prop_quasi_metric_triangle =
  qcheck ~count:50 "induced quasi-metric satisfies triangle" QCheck.small_int
    (fun seed ->
      let d = random_asym_space ~n:6 seed in
      let m, _ = QM.induce d in
      (* Asymmetric spaces: check the directed triangle inequality. *)
      let ok = ref true in
      for i = 0 to 5 do
        for j = 0 to 5 do
          for k = 0 to 5 do
            if m.M.d.(i).(j) > m.M.d.(i).(k) +. m.M.d.(k).(j) +. 1e-6 then
              ok := false
          done
        done
      done;
      !ok)

let prop_phi_log_leq_zeta =
  qcheck ~count:50 "phi_log <= zeta everywhere" QCheck.small_int (fun seed ->
      let d = random_asym_space ~n:6 seed in
      Met.phi_log d <= Met.zeta d +. 1e-6)

let prop_scale_preserves_zeta_within_bound =
  qcheck ~count:30 "scaling decays leaves zeta close" QCheck.small_int
    (fun seed ->
      (* Scaling changes zeta in general (it is not scale-invariant), but
         scaled spaces stay within the a-priori upper bound. *)
      let d = random_space ~n:6 seed in
      let s = D.scale 10. d in
      Met.zeta s <= Met.zeta_upper_bound s +. 1e-6)

let prop_mis_space_zeta_bound =
  qcheck ~count:20 "thm3 spaces: zeta <= lg 2n" QCheck.small_int (fun seed ->
      let g = Core.Graph.Graph.random (rng seed) 7 0.4 in
      let d, _ = Sp.mis_construction g in
      Met.zeta d <= Core.Prelude.Numerics.log2 14. +. 1e-6)

let prop_ball_packing_disjointness =
  qcheck ~count:30 "packings have pairwise decay > 2r" QCheck.small_int
    (fun seed ->
      let d = random_space ~n:8 seed in
      let r = D.min_decay d in
      let p = Ball.max_packing d ~within:(List.init 8 Fun.id) ~radius:r in
      Ball.is_packing d ~radius:r p)

let prop_parallel_equals_sequential =
  qcheck ~count:25 "zeta/phi/gamma identical at jobs=1 and jobs=4"
    QCheck.small_int (fun seed ->
      (* Exact witness equality, not just value equality: chunked parallel
         sweeps must reproduce the sequential tie-breaking bit-for-bit on
         every space family. *)
      let spaces =
        [ random_space ~n:9 seed;
          random_asym_space ~n:9 (seed + 1);
          Sp.star ~k:(4 + (seed mod 5)) ~r:2.;
          Sp.welzl ~n:(4 + (seed mod 4)) ~eps:0.25;
          Sp.three_point ~q:(10. ** float_of_int (2 + (seed mod 6))) ]
      in
      List.for_all
        (fun d ->
          Met.zeta_witness ~ctx:(seq_of 1) d
          = Met.zeta_witness ~ctx:(seq_of 4) d
          && Met.phi_witness ~ctx:(seq_of 1) d
             = Met.phi_witness ~ctx:(seq_of 4) d
          && Met.zeta_upper_bound ~jobs:1 d = Met.zeta_upper_bound ~jobs:4 d
          &&
          let r = D.min_decay d *. 1.5 in
          Fad.gamma ~ctx:(el12 1) d ~r = Fad.gamma ~ctx:(el12 4) d ~r)
        spaces)

let suite =
  [
    ( "decay.space",
      [
        case "of_matrix valid" test_of_matrix_valid;
        case "rejects non-square" test_of_matrix_rejects_nonsquare;
        case "rejects diagonal" test_of_matrix_rejects_diagonal;
        case "rejects zero off-diagonal" test_of_matrix_rejects_zero_offdiag;
        case "rejects non-finite" test_of_matrix_rejects_nonfinite;
        case "defensive copies" test_matrix_defensive_copy;
        case "symmetry checks" test_symmetry_checks;
        case "min/max decay" test_min_max_decay;
        case "scale/pow" test_scale_pow;
        case "symmetrize" test_symmetrize;
        case "sub space" test_sub_space;
        case "map" test_map;
        case "of_metric" test_of_metric_embeds_alpha;
      ] );
    ( "decay.metricity",
      [
        case "triple: triangle ok" test_zeta_triple_triangle_ok;
        case "triple: exact threshold" test_zeta_triple_violation;
        case "geo-sinr: zeta = alpha" test_zeta_geo_equals_alpha;
        case "metric: zeta = 1" test_zeta_metric_is_one;
        case "a-priori upper bound" test_zeta_within_upper_bound;
        case "witness attains" test_zeta_witness_attains;
        case "sampled lower bound" test_zeta_sampled_lower_bound;
        case "holds_at" test_holds_at;
        case "pow multiplies zeta" test_zeta_pow_scales;
        case "phi on three-point" test_phi_three_point;
        case "phi_log <= zeta" test_phi_log_leq_zeta;
        case "three-point: zeta grows, phi bounded" test_three_point_zeta_grows;
        case "two-node space" test_zeta_small_spaces;
        prop_zeta_monotone_validity;
        prop_phi_log_leq_zeta;
        prop_parallel_equals_sequential;
        prop_scale_preserves_zeta_within_bound;
      ] );
    ( "decay.quasi_metric",
      [
        case "triangle inequality" test_induce_satisfies_triangle;
        case "symmetric input" test_induce_symmetric_gives_metric;
        case "round trip" test_round_trip;
        case "pointwise distance" test_distance_pointwise;
        prop_quasi_metric_triangle;
      ] );
    ( "decay.ball",
      [
        case "members" test_ball_members;
        case "is_packing" test_is_packing;
        case "max packing exact" test_max_packing_exact;
        case "packing number monotone" test_packing_number_monotone;
        prop_ball_packing_disjointness;
      ] );
    ( "decay.dimension",
      [
        case "independence: uniform = 1" test_independence_uniform;
        case "independence: welzl = n+1" test_independence_welzl;
        case "independence: plane <= 6" test_independence_plane_bounded;
        case "independence: pentagon" test_independence_hexagon;
        case "independence: rejects x" test_is_independent_rejects_x;
        case "guards cover" test_guards_cover;
        case "guards: uniform needs 1" test_guards_uniform_single;
        case "guards: plane <= 6" test_guards_plane_at_most_six;
        case "quasi-doubling welzl" test_quasi_doubling_welzl;
        case "assouad vs alpha" test_assouad_decreases_with_alpha;
        case "packing growth positive" test_packing_growth_positive;
        case "packing growth q check" test_packing_growth_rejects_q;
      ] );
    ( "decay.fading",
      [
        case "separated predicate" test_separated_predicate;
        case "interference sum" test_interference_sum;
        case "star example (3.4)" test_gamma_star_example;
        case "no candidates" test_gamma_zero_when_no_candidates;
        case "uniform closed form" test_gamma_monotone_in_r_scaled;
        case "theorem 2 bound on grid" test_theorem2_bound_on_grid;
        case "theorem 2 requires A < 1" test_theorem2_bound_requires_fading;
        case "witness separated" test_gamma_witness_is_separated;
      ] );
    ( "decay.spaces",
      [
        case "uniform" test_uniform_space;
        case "star distances" test_star_distances;
        case "welzl structure" test_welzl_structure;
        case "welzl validation" test_welzl_validation;
        case "three-point values" test_three_point_values;
        case "thm3 construction" test_mis_construction_structure;
        case "thm6 construction" test_two_line_structure;
        case "grid points" test_grid_points_count;
        case "perturbed sigma=0" test_perturbed_sigma_zero;
        case "perturbed raises zeta" test_perturbed_increases_zeta;
        prop_mis_space_zeta_bound;
      ] );
  ]
