(* The serving layer: wire protocol round-trips, the zipf workload
   generator (skew, bit-reproducibility, analytic cache floor), the
   batching engine (coalescing, overload shedding, error isolation,
   serve-vs-direct result identity), the persistent store (LRU cap,
   corruption tolerance, warm-restart hit rate) and the end-to-end pipe
   driver against a real spawned daemon. *)

module P = Bg_serve.Protocol
module Server = Bg_serve.Server
module Store = Bg_serve.Store
module L = Bg_serve.Loadgen
module J = Obs_tools.Jsonl
module D = Core.Decay.Decay_space
module Met = Core.Decay.Metricity
module Fad = Core.Decay.Fading
module Ctx = Core.Decay.Ctx
module Memo = Core.Prelude.Memo
module Rng = Core.Prelude.Rng
module Obs = Core.Prelude.Obs
open Testutil

let check_exact_float msg a b = check_true msg (Float.equal a b)

let tiny_matrix = [| [| 0.; 1.5; 2. |]; [| 1.2; 0.; 3. |]; [| 2.; 1.; 0. |] |]

let req ?(id = "r1") op =
  { P.id; op; space = Some (P.Inline ("tiny", tiny_matrix)); trace = None }

let engine ?(batch_size = 32) ?(max_queue = 256) ?request_timeout_s ?store
    ?degrade ?chaos ?slo ?lineage () =
  Server.create
    {
      Server.ctx = Ctx.make ~jobs:1 ~cache:false ();
      batch_size;
      max_queue;
      request_timeout_s;
      store;
      degrade;
      chaos;
      slo;
      telemetry = None;
      lineage;
    }

(* Feed requests through the engine one batch at a time (no windowing);
   returns responses in order. *)
let serve_all ?store reqs =
  let t = engine ?store () in
  let now = Obs.now_s () in
  List.concat_map
    (fun batch -> Server.process_batch t (List.map (fun r -> (r, now)) batch))
    [ reqs ]

(* ------------------------------------------------------------ protocol *)

let test_request_round_trip () =
  let reqs =
    [
      req P.Zeta;
      req ~id:"p" P.Phi;
      req ~id:"g" (P.Gamma 4.);
      req ~id:"s" P.Summarize;
      req ~id:"e" (P.Estimate { nodes = 8; replicates = 3; seed = 9 });
      { P.id = "c"; op = P.Zeta; space = Some (P.Csv "0,2\n2,0"); trace = None };
      { P.id = "f"; op = P.Phi; space = Some (P.File "/tmp/x.csv"); trace = None };
      { P.id = "hp"; op = P.Ping; space = None; trace = None };
    ]
  in
  List.iter
    (fun r ->
      match P.request_of_string (P.request_to_string r) with
      | Error e -> Alcotest.failf "round-trip failed: %s" e
      | Ok r' ->
          check_true "round-trip preserves the request" (r = r'))
    reqs

let test_request_rejects_garbage () =
  let bad line =
    match P.request_of_string line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" line
  in
  bad "not json";
  bad {|{"op":"zeta","space":{"csv":"0"}}|};
  (* no id *)
  bad {|{"id":"x","space":{"csv":"0"}}|};
  (* no op *)
  bad {|{"id":"x","op":"zeta"}|};
  (* no space *)
  bad {|{"id":"x","op":"warp","space":{"csv":"0"}}|};
  bad {|{"id":"x","op":"gamma","space":{"csv":"0"}}|};
  (* gamma needs r *)
  bad {|{"id":"x","op":"gamma","r":-1,"space":{"csv":"0"}}|};
  bad {|{"id":"x","op":"zeta","space":{}}|}

let test_response_round_trip () =
  let resps =
    [
      P.Done
        {
          id = "a";
          op_name = "zeta";
          result = J.Obj [ ("zeta", J.Num 1.5) ];
          cache = P.Coalesced;
          queue_wait_s = 0.25;
          batch = 7;
          elapsed_s = 0.5;
          degraded = false;
          trace = Some { P.trace_id = "t1-r000001"; parent_span = 12 };
        };
      P.Done
        {
          id = "d";
          op_name = "zeta";
          result = J.Obj [ ("zeta_lower", J.Num 1.2) ];
          cache = P.Miss;
          queue_wait_s = 0.;
          batch = 9;
          elapsed_s = 0.01;
          degraded = true;
          trace = None;
        };
      P.Rejected { id = "b"; reason = "queue full (8 pending)"; trace = None };
      P.Failed { id = "c"; reason = "boom"; trace = None };
    ]
  in
  List.iter
    (fun r ->
      match P.response_of_string (P.response_to_string r) with
      | Error e -> Alcotest.failf "round-trip failed: %s" e
      | Ok r' -> check_true "round-trip preserves the response" (r = r'))
    resps

(* The op key must separate different questions about the same space. *)
let test_op_key_separates_params () =
  check_true "gamma keys differ by r" (P.op_key (P.Gamma 2.) <> P.op_key (P.Gamma 4.));
  check_true "estimate keys differ by design"
    (P.op_key (P.Estimate { nodes = 8; replicates = 3; seed = 0 })
    <> P.op_key (P.Estimate { nodes = 8; replicates = 4; seed = 0 }));
  check_true "ops key apart" (P.op_key P.Zeta <> P.op_key P.Phi)

(* ---------------------------------------------------------------- zipf *)

let test_zipf_cdf_shape () =
  let cdf = L.zipf_cdf ~s:1.1 ~n:50 in
  check_int "cdf length" 50 (Array.length cdf);
  check_float ~eps:1e-12 "cdf ends at 1" 1. cdf.(49);
  for i = 1 to 49 do
    check_true "cdf is increasing" (cdf.(i) > cdf.(i - 1))
  done;
  (* Uniform special case: s = 0 gives equal mass. *)
  let u = L.zipf_cdf ~s:0. ~n:4 in
  check_float ~eps:1e-12 "s=0 is uniform" 0.25 u.(0)

(* Empirical skew matches the nominal exponent: regress log(count) on
   log(rank) over the well-populated head and compare the slope. *)
let test_zipf_skew_matches_exponent () =
  let s = 1.2 and n = 50 and draws = 200_000 in
  let cdf = L.zipf_cdf ~s ~n in
  let g = rng 42 in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let k = L.zipf_pick g cdf in
    counts.(k) <- counts.(k) + 1
  done;
  let head = 15 in
  let xs = Array.init head (fun k -> log (float_of_int (k + 1))) in
  let ys = Array.init head (fun k -> log (float_of_int counts.(k))) in
  let mean a = Array.fold_left ( +. ) 0. a /. float_of_int head in
  let mx = mean xs and my = mean ys in
  let num = ref 0. and den = ref 0. in
  for i = 0 to head - 1 do
    num := !num +. ((xs.(i) -. mx) *. (ys.(i) -. my));
    den := !den +. ((xs.(i) -. mx) *. (xs.(i) -. mx))
  done;
  let slope = !num /. !den in
  check_true
    (Printf.sprintf "fitted slope %.3f within 0.1 of -%.1f" slope s)
    (Float.abs (slope +. s) < 0.1)

let test_zipf_pick_is_deterministic () =
  let cdf = L.zipf_cdf ~s:1.1 ~n:20 in
  let draw seed = List.init 100 (fun _ -> L.zipf_pick (rng seed) cdf) in
  check_true "same seed, same picks" (draw 5 = draw 5);
  check_true "picks in range"
    (List.for_all (fun k -> k >= 0 && k < 20) (draw 5))

(* ------------------------------------------------------------ workload *)

let small_workload =
  { L.seed = 3; requests = 120; spaces = 15; nodes = 8; zipf_s = 1.1 }

let test_generate_is_bit_reproducible () =
  let lines w = List.map P.request_to_string (L.generate w) in
  let a = lines small_workload and b = lines small_workload in
  check_true "identical request lines from one seed" (a = b);
  let c = lines { small_workload with seed = 4 } in
  check_true "different seed, different trace" (a <> c)

let test_generate_validates () =
  let bad w =
    match L.generate w with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "accepted a bad workload"
  in
  bad { small_workload with requests = 0 };
  bad { small_workload with spaces = 0 };
  bad { small_workload with nodes = 2 };
  bad { small_workload with zipf_s = -1. }

(* Replay is reproducible at any concurrency: the same trace driven at
   window 1 and window 16 yields the same id -> result mapping. *)
let test_replay_reproducible_at_any_concurrency () =
  let reqs = L.generate small_workload in
  let results window =
    let t = engine ~store:(Store.open_ ()) () in
    ignore (L.drive_inproc ~window t reqs : L.report);
    ()
  in
  ignore results;
  let run window =
    let t = engine ~store:(Store.open_ ()) () in
    let tbl = Hashtbl.create 64 in
    let lines = List.map P.request_to_string reqs in
    let remaining = ref lines in
    let inflight = ref 0 in
    let read ~block:_ =
      match !remaining with
      | [] -> `Eof
      | line :: rest ->
          if !inflight >= window then `Nothing
          else begin
            remaining := rest;
            incr inflight;
            `Req
              ( line,
                fun resp ->
                  decr inflight;
                  match P.response_of_string resp with
                  | Ok (P.Done { id; result; _ }) ->
                      Hashtbl.replace tbl id (J.to_string result)
                  | _ -> () )
          end
    in
    ignore (Server.run_loop t { Server.read; flush = (fun () -> ()) });
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  check_true "window 1 and window 16 give identical results"
    (run 1 = run 16)

(* Duplicate-heavy trace: misses = distinct cache keys, everything else
   answered from the store or coalesced — so the hit floor is exactly
   1 - distinct/requests, minus what coalescing absorbed. *)
let test_hit_rate_meets_analytic_floor () =
  let w = { small_workload with requests = 200 } in
  let reqs = L.generate w in
  let distinct =
    List.sort_uniq compare
      (List.map
         (fun r ->
           match r.P.space with
           | Some (P.Inline (name, _)) -> name ^ "/" ^ P.op_key r.P.op
           | _ -> assert false)
         reqs)
    |> List.length
  in
  let t = engine ~store:(Store.open_ ()) () in
  let report = L.drive_inproc ~window:16 t reqs in
  check_int "all answered" report.L.sent report.L.answered;
  check_int "all ok" report.L.sent report.L.ok;
  check_int "misses = distinct keys" distinct report.L.misses;
  check_int "hits + coalesced cover every repeat"
    (report.L.sent - distinct)
    (report.L.hits + report.L.coalesced);
  let floor =
    float_of_int (report.L.sent - distinct - report.L.coalesced)
    /. float_of_int report.L.sent
  in
  check_true
    (Printf.sprintf "hit rate %.3f >= analytic floor %.3f"
       (L.hit_rate report) floor)
    (L.hit_rate report >= floor -. 1e-9)

(* -------------------------------------------------------------- engine *)

let test_serve_matches_direct_computation () =
  let space = D.of_matrix ~name:"tiny" tiny_matrix in
  let ctx = Ctx.make ~jobs:1 ~cache:false () in
  let get_num field = function
    | P.Done { result; _ } -> Option.get (J.mem_num field result)
    | _ -> Alcotest.fail "expected an ok response"
  in
  match serve_all [ req P.Zeta; req ~id:"g" (P.Gamma 4.) ] with
  | [ zeta_resp; gamma_resp ] ->
      check_exact_float "zeta equals the direct sweep"
        (Met.zeta_witness ~ctx space).value
        (get_num "zeta" zeta_resp);
      check_exact_float "gamma equals the direct kernel"
        (Fad.gamma ~ctx space ~r:4.)
        (get_num "gamma" gamma_resp)
  | other -> Alcotest.failf "expected 2 responses, got %d" (List.length other)

let test_batch_coalesces_duplicates () =
  let reqs = List.init 5 (fun i -> req ~id:(Printf.sprintf "d%d" i) P.Zeta) in
  let responses = serve_all reqs in
  let outcomes =
    List.filter_map
      (function P.Done { cache; _ } -> Some cache | _ -> None)
      responses
  in
  check_int "five answers" 5 (List.length outcomes);
  check_int "exactly one miss" 1
    (List.length (List.filter (( = ) P.Miss) outcomes));
  check_int "four coalesced" 4
    (List.length (List.filter (( = ) P.Coalesced) outcomes))

(* One poisoned request (estimate on a space smaller than its design)
   answers a typed error; its batch-mates are unaffected. *)
let test_error_isolated_to_its_request () =
  let poisoned =
    req ~id:"bad" (P.Estimate { nodes = 64; replicates = 2; seed = 0 })
  in
  match serve_all [ req P.Zeta; poisoned; req ~id:"z2" P.Phi ] with
  | [ P.Done _; P.Failed { id = "bad"; _ }; P.Done _ ] -> ()
  | other ->
      Alcotest.failf "unexpected shapes: %s"
        (String.concat " | " (List.map P.response_to_string other))

(* Unresolvable spaces (bad matrix, missing file) answer errors too. *)
let test_bad_space_answers_error () =
  let bad_matrix =
    { P.id = "m"; op = P.Zeta;
      space = Some (P.Inline ("bad", [| [| 0.; -1. |]; [| 1.; 0. |] |]));
      trace = None }
  in
  let bad_file =
    { P.id = "f"; op = P.Zeta; space = Some (P.File "/nonexistent/nope.csv");
      trace = None }
  in
  match serve_all [ bad_matrix; bad_file; req P.Zeta ] with
  | [ P.Failed { id = "m"; _ }; P.Failed { id = "f"; _ }; P.Done _ ] -> ()
  | other ->
      Alcotest.failf "unexpected shapes: %s"
        (String.concat " | " (List.map P.response_to_string other))

(* Overload: with a tiny queue and an eager client, surplus requests are
   shed with typed rejections, every id is answered exactly once, and
   the queue never exceeds its bound. *)
let test_overload_sheds_with_typed_rejections () =
  let max_queue = 8 in
  let t = engine ~batch_size:4 ~max_queue () in
  let total = 100 in
  let lines =
    List.init total (fun i ->
        P.request_to_string (req ~id:(Printf.sprintf "o%d" i) P.Zeta))
  in
  let remaining = ref lines in
  let answered : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let read ~block:_ =
    match !remaining with
    | [] -> `Eof
    | line :: rest ->
        remaining := rest;
        `Req
          ( line,
            fun resp ->
              match P.response_of_string resp with
              | Ok r ->
                  let id = P.response_id r in
                  if Hashtbl.mem answered id then
                    Alcotest.failf "id %s answered twice" id;
                  Hashtbl.replace answered id
                    (match r with
                    | P.Done _ -> "ok"
                    | P.Rejected _ -> "rejected"
                    | P.Failed _ -> "error")
              | Error e -> Alcotest.failf "bad response line: %s" e )
  in
  let stats = Server.run_loop t { Server.read; flush = (fun () -> ()) } in
  check_int "every id answered exactly once" total (Hashtbl.length answered);
  check_true "some requests were shed" (stats.Server.rejected > 0);
  check_int "accepted + rejected = sent" total
    (stats.Server.accepted + stats.Server.rejected);
  check_true
    (Printf.sprintf "peak queue %d within bound %d" stats.Server.peak_queue
       max_queue)
    (stats.Server.peak_queue <= max_queue);
  check_int "rejections are typed"
    stats.Server.rejected
    (Hashtbl.fold
       (fun _ v acc -> if v = "rejected" then acc + 1 else acc)
       answered 0)

(* Malformed lines answer an error and the stream keeps flowing. *)
let test_malformed_line_does_not_stop_the_stream () =
  let t = engine () in
  let inputs =
    [ "this is not json"; P.request_to_string (req P.Zeta);
      {|{"id":"q","op":"warp","space":{"csv":"0"}}|} ]
  in
  let remaining = ref inputs in
  let got = ref [] in
  let read ~block:_ =
    match !remaining with
    | [] -> `Eof
    | line :: rest ->
        remaining := rest;
        `Req (line, fun resp -> got := resp :: !got)
  in
  ignore (Server.run_loop t { Server.read; flush = (fun () -> ()) });
  (* Parse errors are answered at admission, before batch-mates compute,
     so only the multiset of outcomes is specified — not their order. *)
  let statuses =
    List.rev_map
      (fun line ->
        match P.response_of_string line with
        | Ok (P.Done _) -> "ok"
        | Ok (P.Failed _) -> "error"
        | Ok (P.Rejected _) -> "rejected"
        | Error _ -> "unparseable")
      !got
    |> List.sort compare
  in
  check_true "two errors and one ok" (statuses = [ "error"; "error"; "ok" ])

(* A request that overruns the per-request budget answers a typed error
   while the rest of its batch completes. *)
let test_request_timeout_answers_error () =
  let t = engine ~request_timeout_s:1e-9 () in
  let big =
    let g = rng 11 in
    Array.init 48 (fun i ->
        Array.init 48 (fun j ->
            if i = j then 0. else 0.5 +. Rng.float g 10.))
  in
  let reqs =
    [ { P.id = "slow"; op = P.Zeta; space = Some (P.Inline ("big", big));
        trace = None } ]
  in
  let now = Obs.now_s () in
  match Server.process_batch t (List.map (fun r -> (r, now)) reqs) with
  | [ P.Failed { id = "slow"; reason; _ } ] ->
      check_true "reason mentions the budget"
        (String.length reason > 0)
  | other ->
      Alcotest.failf "unexpected: %s"
        (String.concat " | " (List.map P.response_to_string other))

(* --------------------------------------------------------------- store *)

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "bg_serve_test_%d_%s" (Unix.getpid ()) name)

let with_tmp name f =
  let path = tmp_path name in
  let rm p = try Sys.remove p with Sys_error _ -> () in
  Fun.protect
    ~finally:(fun () ->
      rm path;
      rm (path ^ ".wal"))
    (fun () -> f path)

let test_store_persists_across_reopen () =
  with_tmp "persist.jsonl" (fun path ->
      let s = Store.open_ ~path () in
      Store.add s "k1" (J.Num 1.);
      Store.add s "k2" (J.Obj [ ("v", J.Str "two") ]);
      Store.flush s;
      let s' = Store.open_ ~path () in
      check_int "both entries restored" 2 (Store.loaded s');
      check_true "k1 round-trips" (Store.find s' "k1" = Some (J.Num 1.));
      check_true "k2 round-trips"
        (Store.find s' "k2" = Some (J.Obj [ ("v", J.Str "two") ])))

let test_store_tolerates_corruption () =
  with_tmp "corrupt.jsonl" (fun path ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc
            ("{\"type\":\"bg-serve-store\",\"version\":1}\n"
           ^ "{\"key\":\"good\",\"result\":{\"zeta\":2}}\n"
           ^ "this line is garbage\n" ^ "{\"key\":\"truncated\"\n"
           ^ "{\"no_key\":true}\n"
           ^ "{\"key\":\"also-good\",\"result\":3}\n"));
      let s = Store.open_ ~path () in
      check_int "good entries loaded" 2 (Store.loaded s);
      check_int "damaged lines counted" 3 (Store.corrupt_dropped s);
      check_true "good entry readable"
        (Store.find s "good" = Some (J.Obj [ ("zeta", J.Num 2.) ]));
      (* Missing file is an empty store, not a crash. *)
      let s2 = Store.open_ ~path:(tmp_path "never-written.jsonl") () in
      check_int "missing file loads empty" 0 (Store.loaded s2))

let test_store_lru_cap_and_snapshot_order () =
  with_tmp "lru.jsonl" (fun path ->
      let s = Store.open_ ~max_entries:3 ~path () in
      List.iter
        (fun k -> Store.add s k (J.Str k))
        [ "a"; "b"; "c" ];
      (* Touch a so b is now the least recently used. *)
      ignore (Store.find s "a");
      Store.add s "d" (J.Str "d");
      check_int "capped at 3" 3 (Store.length s);
      check_true "b was evicted (LRU)" (Store.find s "b" = None);
      check_true "a survived (recently used)" (Store.find s "a" <> None);
      check_true "evictions counted" (Store.evictions s >= 1);
      Store.flush s;
      (* The snapshot reproduces both content and LRU order. *)
      let s' = Store.open_ ~max_entries:3 ~path () in
      check_int "reloaded the capped set" 3 (Store.loaded s');
      check_true "d present after reload" (Store.find s' "d" <> None))

(* Per-entry LRU in the underlying Memo: recently used entries survive
   an overflowing insert; only the stalest is dropped. *)
let test_memo_per_entry_lru () =
  let m = Memo.create ~max_size:3 () in
  Memo.set m "a" 1;
  Memo.set m "b" 2;
  Memo.set m "c" 3;
  ignore (Memo.find_opt m "a");
  Memo.set m "d" 4;
  check_int "still 3 entries" 3 (Memo.length m);
  check_true "b (least recently used) evicted" (Memo.find_opt m "b" = None);
  check_true "a survived" (Memo.find_opt m "a" = Some 1);
  check_true "d inserted" (Memo.find_opt m "d" = Some 4);
  check_int "one eviction" 1 (Memo.evictions m);
  (* to_alist is LRU-first: the next victim leads. *)
  let order = List.map fst (Memo.to_alist m) in
  check_int "alist covers the table" 3 (List.length order)

(* -------------------------------------------------------- warm restart *)

let test_warm_restart_hits_persisted_cache () =
  with_tmp "warm.jsonl" (fun path ->
      let reqs = L.generate small_workload in
      let cold =
        L.drive_inproc ~window:8 (engine ~store:(Store.open_ ~path ()) ()) reqs
      in
      check_int "cold run all ok" cold.L.sent cold.L.ok;
      check_true "cold run computed something" (cold.L.misses > 0);
      (* "Restart": a fresh engine + store loaded from the snapshot. *)
      let warm =
        L.drive_inproc ~window:8 (engine ~store:(Store.open_ ~path ()) ()) reqs
      in
      check_int "warm run all ok" warm.L.sent warm.L.ok;
      check_int "warm run recomputes nothing" 0 warm.L.misses;
      check_true
        (Printf.sprintf "warm hit rate %.3f >= 0.9" (L.hit_rate warm))
        (L.hit_rate warm >= 0.9))

(* --------------------------------------------------------------- chaos *)

module Chaos = Bg_serve.Chaos
module Client = Bg_serve.Client

let test_chaos_spec_parse_round_trip () =
  let ok s =
    match Chaos.parse s with
    | Ok sp -> sp
    | Error e -> Alcotest.failf "rejected %s: %s" s e
  in
  let sp =
    ok "torn=0.1,drop=0.05,corrupt=0.2,stall=0.5:0.001,crash=mid-batch:3"
  in
  check_true "crash clause parsed" (sp.Chaos.crash = Some (Chaos.Mid_batch, 3));
  check_exact_float "torn parsed" 0.1 sp.Chaos.torn;
  check_true "canonical form round-trips" (ok (Chaos.spec_to_string sp) = sp);
  check_true "none renders as none" (Chaos.spec_to_string Chaos.none = "none");
  let bad s =
    match Chaos.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" s
  in
  bad "torn=1.5";
  bad "drop=-0.1";
  bad "warp=1";
  bad "crash=nowhere:1";
  bad "crash=mid-batch:0";
  bad "stall=0.5";
  bad "torn=abc";
  bad "torn"

let test_chaos_mangle_is_seeded () =
  let spec = { Chaos.none with Chaos.torn = 0.3; drop = 0.2; corrupt = 0.3 } in
  let run seed =
    let c = Chaos.create ~action:Chaos.Raise ~seed spec in
    List.init 200 (fun i ->
        match Chaos.mangle c (Printf.sprintf {|{"id":"x%d","v":12345}|} i) with
        | `Deliver s -> "d:" ^ s
        | `Drop -> "drop"
        | `Drop_keep_carry -> "torn")
  in
  check_true "same seed, same fault schedule" (run 9 = run 9);
  check_true "different seed, different schedule" (run 9 <> run 10);
  let faults = run 9 in
  check_true "some lines dropped" (List.mem "drop" faults);
  check_true "some lines torn" (List.mem "torn" faults);
  (* Corruption / torn carry must change some delivered payloads. *)
  let originals =
    List.init 200 (fun i -> "d:" ^ Printf.sprintf {|{"id":"x%d","v":12345}|} i)
  in
  check_true "some deliveries mangled"
    (List.exists
       (fun s -> String.starts_with ~prefix:"d:" s && not (List.mem s originals))
       faults)

let test_chaos_crash_at_nth_arrival () =
  let spec = { Chaos.none with Chaos.crash = Some (Chaos.Pre_snapshot, 3) } in
  let c = Chaos.create ~action:Chaos.Raise ~seed:1 spec in
  Chaos.at c Chaos.Pre_snapshot;
  Chaos.at c Chaos.Mid_batch;
  (* other points don't advance the count *)
  Chaos.at c Chaos.Pre_snapshot;
  match Chaos.at c Chaos.Pre_snapshot with
  | exception Chaos.Injected_crash p ->
      check_true "crash names its point" (p = "pre-snapshot")
  | () -> Alcotest.fail "no crash at the 3rd arrival"

(* ----------------------------------------------------------------- wal *)

let test_wal_survives_power_cut () =
  with_tmp "wal.jsonl" (fun path ->
      let s = Store.open_ ~path ~flush_every:1_000_000 () in
      Store.add s "k1" (J.Num 1.);
      Store.add s "k2" (J.Str "two");
      Store.sync s;
      (* No flush, no close: a power cut.  Only the journal survives. *)
      let s' = Store.open_ ~path () in
      check_int "journal replayed" 2 (Store.wal_recovered s');
      check_true "k1 recovered" (Store.find s' "k1" = Some (J.Num 1.));
      check_true "k2 recovered" (Store.find s' "k2" = Some (J.Str "two"));
      (* Compaction moves entries into the snapshot and empties the
         journal. *)
      Store.flush s';
      let s'' = Store.open_ ~path () in
      check_int "journal empty after compaction" 0 (Store.wal_recovered s'');
      check_int "snapshot holds them" 2 (Store.loaded s''))

let test_wal_recovers_longest_valid_prefix () =
  with_tmp "torn.jsonl" (fun path ->
      let s = Store.open_ ~path ~flush_every:1_000_000 () in
      List.iter (fun k -> Store.add s k (J.Str k)) [ "a"; "b"; "c" ];
      Store.sync s;
      (* A torn append: half a record, no newline, bad checksum. *)
      let oc = open_out_gen [ Open_append ] 0o644 (path ^ ".wal") in
      output_string oc {|{"key":"d","result":"d","md5":"dead|};
      close_out oc;
      let s' = Store.open_ ~path () in
      check_int "valid prefix recovered" 3 (Store.wal_recovered s');
      check_int "torn tail counted" 1 (Store.wal_torn s');
      check_true "last good entry present" (Store.find s' "c" = Some (J.Str "c"));
      check_true "torn entry absent" (Store.find s' "d" = None))

(* The crash-safety property, exhaustively: truncate the journal at
   EVERY byte offset (every possible kill point of an append) and
   reopen.  Recovery must always yield exactly the fully-written records
   before the cut — never a crash, never a torn record surfacing. *)
let test_wal_recovery_at_every_byte_prefix () =
  let keys = [| "a"; "b"; "c"; "d"; "e" |] in
  let full =
    with_tmp "prefix_src.jsonl" (fun path ->
        let s = Store.open_ ~path ~flush_every:1_000_000 () in
        Array.iteri (fun i k -> Store.add s k (J.Num (float_of_int i))) keys;
        Store.sync s;
        In_channel.with_open_bin (path ^ ".wal") In_channel.input_all)
  in
  let len = String.length full in
  check_true "journal has content" (len > 0);
  for cut = 0 to len do
    with_tmp (Printf.sprintf "prefix_%d.jsonl" cut) (fun path ->
        Out_channel.with_open_bin (path ^ ".wal") (fun oc ->
            Out_channel.output_string oc (String.sub full 0 cut));
        let s = Store.open_ ~path () in
        (* Every fully-terminated record before the cut must recover; a
           complete record merely missing its newline may also recover
           (its checksum proves it intact); a genuinely torn record must
           vanish — never a crash, never a damaged entry surfacing. *)
        let terminated =
          String.fold_left
            (fun acc ch -> if ch = '\n' then acc + 1 else acc)
            0 (String.sub full 0 cut)
        in
        let r = Store.wal_recovered s in
        check_true
          (Printf.sprintf
             "cut at byte %d: recovered %d in [%d, %d]" cut r terminated
             (terminated + 1))
          (r >= terminated && r <= terminated + 1);
        for i = 0 to r - 1 do
          check_true "recovered entry intact"
            (Store.find s keys.(i) = Some (J.Num (float_of_int i)))
        done;
        if r < Array.length keys then
          check_true "entry after the cut absent" (Store.find s keys.(r) = None);
        Store.close s)
  done

(* ------------------------------------------------------------- degrade *)

let test_degraded_answers_under_load () =
  let d =
    { Server.default_degrade with
      Server.queue_watermark = 1; nodes = 3; replicates = 2 }
  in
  let t = engine ~store:(Store.open_ ()) ~degrade:d () in
  let now = Obs.now_s () in
  (match Server.process_batch ~queue_depth:5 t [ (req P.Zeta, now) ] with
  | [ P.Done { degraded = true; result; _ } ] ->
      let num f = Option.get (J.mem_num f result) in
      check_true "interval ordered"
        (num "lo" <= num "zeta_lower" && num "zeta_lower" <= num "hi");
      check_true "confidence present" (num "confidence" > 0.)
  | other ->
      Alcotest.failf "expected a degraded answer: %s"
        (String.concat " | " (List.map P.response_to_string other)));
  (* Degraded answers are never cached: the next calm request computes
     the exact value as a fresh miss. *)
  (match Server.process_batch ~queue_depth:0 t [ (req P.Zeta, now) ] with
  | [ P.Done { degraded = false; cache = P.Miss; result; _ } ] ->
      check_true "exact zeta" (J.mem_num "zeta" result <> None)
  | _ -> Alcotest.fail "expected an exact recompute");
  (* A cached key stays exact even over the watermark. *)
  match Server.process_batch ~queue_depth:5 t [ (req P.Zeta, now) ] with
  | [ P.Done { degraded = false; cache = P.Hit; _ } ] -> ()
  | _ -> Alcotest.fail "expected an exact cache hit under load"

let test_degraded_big_space_without_backlog () =
  let d = { Server.default_degrade with Server.big_n = 3; nodes = 3 } in
  let t = engine ~store:(Store.open_ ()) ~degrade:d () in
  match Server.process_batch t [ (req P.Phi, Obs.now_s ()) ] with
  | [ P.Done { degraded = true; result; _ } ] ->
      check_true "phi lower bound" (J.mem_num "phi_lower" result <> None)
  | _ -> Alcotest.fail "n >= big_n should degrade even with an empty queue"

let test_ping_health_op () =
  let t = engine () in
  let ping = { P.id = "hp"; op = P.Ping; space = None; trace = None } in
  match Server.process_batch t [ (ping, Obs.now_s ()) ] with
  | [ P.Done { op_name = "ping"; degraded = false; result; _ } ] ->
      check_true "uptime reported"
        (Option.get (J.mem_num "uptime_s" result) >= 0.);
      check_true "queue depth reported" (J.mem_num "queue_depth" result <> None);
      check_true "hit rate reported" (J.mem_num "hit_rate" result <> None);
      check_true "degrade status reported"
        (J.mem_bool "degrade_enabled" result = Some false)
  | other ->
      Alcotest.failf "unexpected ping answer: %s"
        (String.concat " | " (List.map P.response_to_string other))

(* -------------------------------------------------------------- client *)

let test_client_breaker_lifecycle () =
  let cfg =
    { Client.default_config with
      Client.breaker_threshold = 3; breaker_cooldown_s = 0.05 }
  in
  let c = Client.create ~config:cfg ~seed:5 () in
  check_true "starts closed" (Client.breaker_state c = Client.Closed);
  let now = 1000. in
  Client.record_failure c ~now;
  Client.record_failure c ~now;
  check_true "under threshold stays closed"
    (Client.breaker_state c = Client.Closed);
  check_true "closed admits" (Client.admit c ~now);
  Client.record_failure c ~now;
  check_true "opens at the threshold" (Client.breaker_state c = Client.Open);
  check_int "opens counted" 1 (Client.breaker_opens c);
  check_false "open rejects inside the cooldown"
    (Client.admit c ~now:(now +. 0.01));
  check_true "half-open probe after the cooldown"
    (Client.admit c ~now:(now +. 0.1));
  check_true "probing is half-open"
    (Client.breaker_state c = Client.Half_open);
  Client.record_failure c ~now:(now +. 0.1);
  check_true "failed probe re-opens" (Client.breaker_state c = Client.Open);
  check_false "cooldown restarts" (Client.admit c ~now:(now +. 0.12));
  check_true "second probe" (Client.admit c ~now:(now +. 0.2));
  Client.record_success c;
  check_true "success closes" (Client.breaker_state c = Client.Closed);
  check_true "closed again admits" (Client.admit c ~now:(now +. 0.2))

let test_client_backoff_schedule () =
  let cfg =
    { Client.default_config with
      Client.backoff_base_s = 0.1; backoff_cap_s = 0.4 }
  in
  let schedule seed =
    let c = Client.create ~config:cfg ~seed () in
    List.init 6 (fun attempt -> Client.backoff_s c ~attempt)
  in
  check_true "seeded schedule replays" (schedule 3 = schedule 3);
  check_true "distinct seeds de-synchronize" (schedule 3 <> schedule 4);
  List.iteri
    (fun attempt d ->
      let nominal = Float.min 0.4 (0.1 *. (2. ** float_of_int attempt)) in
      check_true
        (Printf.sprintf "attempt %d delay %.4f inside equal-jitter bounds"
           attempt d)
        (d >= (nominal /. 2.) -. 1e-12 && d < nominal))
    (schedule 3)

(* Chaotic wire, retrying driver: every id answered exactly once, no
   corrupt line ever scored as an answer. *)
let test_chaotic_replies_recovered_by_retries () =
  let spec = { Chaos.none with Chaos.drop = 0.15; torn = 0.1; corrupt = 0.1 } in
  let chaos = Chaos.create ~action:Chaos.Raise ~seed:41 spec in
  let client =
    Client.create
      ~config:
        { Client.default_config with
          Client.deadline_s = None; max_retries = 10 }
      ~seed:6 ()
  in
  let w = { L.seed = 8; requests = 80; spaces = 12; nodes = 8; zipf_s = 1.1 } in
  let t = engine ~batch_size:16 ~store:(Store.open_ ()) ~chaos () in
  let r = L.drive_inproc ~window:16 ~client t (L.generate w) in
  check_int "every id answered exactly once" r.L.sent r.L.answered;
  check_int "all ok" r.L.sent r.L.ok;
  check_int "nothing abandoned" 0 r.L.gave_up;
  check_true "faults actually fired" (r.L.retries > 0)

(* ------------------------------------------------- end-to-end daemon *)

(* Under `dune runtest` the cwd is _build/default/test (the dep puts the
   binary one level up); under `dune exec` from the root it is the
   project root. *)
let bg_exe =
  List.find_opt Sys.file_exists
    [ "../bin/bg.exe"; "_build/default/bin/bg.exe" ]
  |> Option.value ~default:"../bin/bg.exe"

let test_pipe_driver_against_real_daemon () =
  if not (Sys.file_exists bg_exe) then
    Alcotest.skip ()
  else begin
    let w = { L.seed = 5; requests = 60; spaces = 10; nodes = 8; zipf_s = 1.1 } in
    let reqs = L.generate w in
    let report =
      L.drive_subprocess ~window:8
        [| bg_exe; "serve"; "--batch-size"; "8"; "--jobs"; "2" |]
        reqs
    in
    check_int "every request answered" report.L.sent report.L.answered;
    check_int "all ok" report.L.sent report.L.ok;
    check_true "throughput measured" (report.L.throughput_rps > 0.);
    check_true "p99 covers p50" (report.L.p99_s >= report.L.p50_s)
  end

(* CLI validation (satellite): nonsense resource flags are one-line
   exit-2 answers, before any work starts. *)
let test_cli_rejects_bad_resource_flags () =
  if not (Sys.file_exists bg_exe) then Alcotest.skip ()
  else begin
    let exit_of args =
      match
        Unix.system
          (Filename.quote_command bg_exe args ~stdin:"/dev/null"
             ~stdout:"/dev/null" ~stderr:"/dev/null")
      with
      | Unix.WEXITED c -> c
      | _ -> -1
    in
    check_int "--jobs 0 rejected" 2 (exit_of [ "bench"; "--jobs"; "0" ]);
    check_int "--jobs -3 rejected" 2 (exit_of [ "bench"; "--jobs=-3" ]);
    check_int "negative timeout rejected" 2
      (exit_of [ "experiment"; "E1"; "--timeout=-1" ]);
    check_int "negative retries rejected" 2
      (exit_of [ "experiment"; "E1"; "--retries=-2" ]);
    check_int "serve --batch-size 0 rejected" 2
      (exit_of [ "serve"; "--batch-size"; "0" ]);
    check_int "serve --max-queue 0 rejected" 2
      (exit_of [ "serve"; "--max-queue"; "0" ]);
    check_int "serve bad --chaos rejected" 2
      (exit_of [ "serve"; "--chaos"; "torn=2" ]);
    check_int "serve --degrade-watermark 0 rejected" 2
      (exit_of [ "serve"; "--degrade-watermark"; "0" ]);
    check_int "loadgen --window 0 rejected" 2
      (exit_of [ "loadgen"; "--window"; "0" ]);
    check_int "loadgen --requests 0 rejected" 2
      (exit_of [ "loadgen"; "--requests"; "0" ]);
    check_int "loadgen --spaces -1 rejected" 2
      (exit_of [ "loadgen"; "--spaces=-1" ]);
    check_int "loadgen --nodes 0 rejected" 2
      (exit_of [ "loadgen"; "--nodes"; "0" ]);
    check_int "loadgen NaN --rate rejected" 2
      (exit_of [ "loadgen"; "--rate"; "nan" ]);
    check_int "loadgen --rate 0 rejected" 2
      (exit_of [ "loadgen"; "--rate"; "0" ]);
    check_int "loadgen --deadline 0 rejected" 2
      (exit_of [ "loadgen"; "--deadline"; "0" ]);
    check_int "loadgen --client-retries -1 rejected" 2
      (exit_of [ "loadgen"; "--client-retries=-1" ])
  end

(* Regression: a socket client vanishing mid-request must be logged and
   dropped while a second client is served normally. *)
let test_socket_disconnect_mid_request () =
  if not (Sys.file_exists bg_exe) then Alcotest.skip ()
  else begin
    let sock = tmp_path "disc.sock" in
    let errf = tmp_path "disc.err" in
    let cleanup () =
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ sock; errf ]
    in
    Fun.protect ~finally:cleanup @@ fun () ->
    let errfd =
      Unix.openfile errf [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    let pid =
      Unix.create_process bg_exe
        [| bg_exe; "serve"; "--socket"; sock; "--max-requests"; "1" |]
        Unix.stdin Unix.stdout errfd
    in
    Unix.close errfd;
    let rec await n =
      if n = 0 then Alcotest.fail "daemon socket never appeared"
      else if Sys.file_exists sock then ()
      else begin
        Unix.sleepf 0.05;
        await (n - 1)
      end
    in
    await 100;
    let connect () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      fd
    in
    let send fd s =
      let b = Bytes.of_string s in
      let rec go off =
        if off < Bytes.length b then
          go (off + Unix.write fd b off (Bytes.length b - off))
      in
      go 0
    in
    let recv_line fd =
      let buf = Buffer.create 256 in
      let one = Bytes.create 1 in
      let rec go () =
        match Unix.read fd one 0 1 with
        | 0 -> Buffer.contents buf
        | _ ->
            if Bytes.get one 0 = '\n' then Buffer.contents buf
            else begin
              Buffer.add_char buf (Bytes.get one 0);
              go ()
            end
      in
      go ()
    in
    (* Client A: half a request line, then gone. *)
    let a = connect () in
    send a {|{"id":"half","op":"zeta|};
    Unix.close a;
    (* Client B: a full request; must be answered normally. *)
    let b = connect () in
    send b (P.request_to_string (req ~id:"whole" P.Zeta) ^ "\n");
    let line = recv_line b in
    (match P.response_of_string line with
    | Ok (P.Done { id = "whole"; _ }) -> ()
    | _ -> Alcotest.failf "client B got %S" line);
    Unix.close b;
    (match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> ()
    | _, st ->
        Alcotest.failf "daemon exit: %s"
          (match st with
          | Unix.WEXITED c -> Printf.sprintf "exit %d" c
          | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
          | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
    let log = In_channel.with_open_text errf In_channel.input_all in
    let contains ~sub s =
      let n = String.length sub and m = String.length s in
      let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    check_true "partial line logged as a disconnect"
      (contains ~sub:"disconnected mid-request" log)
  end

(* A supervised daemon that chaos-SIGKILLs itself mid-batch: the
   supervisor restarts it on the same pipes, the client's deadline
   retries recover the lost batch, and the WAL-backed cache carries
   answers across incarnations.  Every request still answered once. *)
let test_supervised_restart_rides_out_crashes () =
  if not (Sys.file_exists bg_exe) then Alcotest.skip ()
  else
    with_tmp "sup_cache.jsonl" (fun cache ->
        let w =
          { L.seed = 9; requests = 60; spaces = 10; nodes = 8; zipf_s = 1.1 }
        in
        let client =
          Client.create
            ~config:
              { Client.default_config with
                Client.deadline_s = Some 1.0;
                max_retries = 8;
                backoff_base_s = 0.05;
                backoff_cap_s = 0.2;
                breaker_threshold = 1000 }
            ~seed:4 ()
        in
        let r =
          L.drive_subprocess ~window:8 ~client
            [| bg_exe; "serve"; "--supervise"; "--batch-size"; "8"; "--cache";
               cache; "--chaos"; "crash=mid-batch:3"; "--chaos-seed"; "11";
               "--jobs"; "1" |]
            (L.generate w)
        in
        check_int "every request answered" r.L.sent r.L.answered;
        check_int "all ok" r.L.sent r.L.ok;
        check_int "nothing abandoned" 0 r.L.gave_up;
        check_true "the crash actually cost retries" (r.L.retries > 0))

(* ------------------------------------------------------- observability *)

let test_trace_context_on_the_wire () =
  let r =
    { P.id = "w"; op = P.Ping; space = None;
      trace = Some { P.trace_id = "t9-r000042"; parent_span = 17 } }
  in
  let j = P.request_to_json r in
  check_true "trace_id is a top-level wire field"
    (J.mem_str "trace_id" j = Some "t9-r000042");
  check_true "parent_span is a top-level wire field"
    (J.mem_num "parent_span" j = Some 17.);
  (match P.request_of_string (P.request_to_string r) with
  | Ok r' -> check_true "request trace round-trips" (r = r')
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (* parent_span = 0 means "no remote parent" and stays off the wire. *)
  let root =
    { r with trace = Some { P.trace_id = "t9-r000042"; parent_span = 0 } }
  in
  check_true "zero parent_span omitted"
    (J.mem_num "parent_span" (P.request_to_json root) = None);
  (match P.request_of_string (P.request_to_string root) with
  | Ok r' -> check_true "omitted parent reads back as 0" (root = r')
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (* The server echoes the context; response_trace reads it back. *)
  let resp =
    P.Failed { id = "w"; reason = "x"; trace = r.P.trace }
  in
  (match P.response_of_string (P.response_to_string resp) with
  | Ok r' -> check_true "response echo read back" (P.response_trace r' = r.P.trace)
  | Error e -> Alcotest.failf "round-trip failed: %s" e)

let test_metrics_op_scrape () =
  let slo = Bg_serve.Slo.create [ Bg_serve.Slo.Error_rate 0.5 ] in
  let lineage =
    { Server.restarts = 2;
      supervisor_started_s = Obs.now_s () -. 10.;
      prior_uptime_s = 5. }
  in
  let t = engine ~store:(Store.open_ ()) ~slo ~lineage () in
  let now = Obs.now_s () in
  ignore (Server.process_batch t [ (req P.Zeta, now) ]);
  match Server.process_batch ~queue_depth:3 t
          [ ({ P.id = "m"; op = P.Metrics; space = None; trace = None }, now) ]
  with
  | [ P.Done { op_name = "metrics"; result; _ } ] ->
      check_true "queue depth echoed"
        (J.mem_num "queue_depth" result = Some 3.);
      let stats = Option.get (J.member "stats" result) in
      check_true "computed count present"
        (J.mem_num "computed" stats = Some 1.);
      (match J.member "counters" result with
      | Some (J.Obj kvs) ->
          check_true "registry counters scraped"
            (List.mem_assoc "serve.accepted" kvs)
      | _ -> Alcotest.fail "counters object missing");
      (match J.member "histograms" result with
      | Some (J.Obj kvs) -> (
          match List.assoc_opt "serve.latency_s" kvs with
          | Some h ->
              check_true "latency histogram has quantiles"
                (J.mem_num "p99" h <> None)
          | None -> Alcotest.fail "serve.latency_s missing")
      | _ -> Alcotest.fail "histograms object missing");
      check_true "supervisor lineage included"
        (J.mem_num "restarts" result = Some 2.);
      check_true "prior incarnations counted"
        (Option.get (J.mem_num "total_uptime_s" result) >= 5.);
      (match J.member "slo" result with
      | Some (J.Arr (_ :: _)) -> ()
      | _ -> Alcotest.fail "slo statuses missing");
      check_true "slo verdict summarized"
        (J.mem_bool "slo_healthy" result = Some true)
  | other ->
      Alcotest.failf "unexpected metrics answer: %s"
        (String.concat " | " (List.map P.response_to_string other))

let test_lineage_in_ping () =
  let lineage =
    { Server.restarts = 3;
      supervisor_started_s = Obs.now_s () -. 60.;
      prior_uptime_s = 42. }
  in
  let t = engine ~lineage () in
  let ping = { P.id = "hp"; op = P.Ping; space = None; trace = None } in
  match Server.process_batch t [ (ping, Obs.now_s ()) ] with
  | [ P.Done { result; _ } ] ->
      check_true "restart count rides every ping"
        (J.mem_num "restarts" result = Some 3.);
      check_true "supervisor uptime reported"
        (Option.get (J.mem_num "supervisor_uptime_s" result) >= 59.);
      check_true "total uptime spans incarnations"
        (Option.get (J.mem_num "total_uptime_s" result) >= 42.)
  | _ -> Alcotest.fail "expected a ping answer"

let test_supervisor_lineage_env_round_trip () =
  Unix.putenv Bg_serve.Supervisor.lineage_env "4";
  Unix.putenv Bg_serve.Supervisor.started_env "123.5";
  Unix.putenv Bg_serve.Supervisor.prior_uptime_env "7.25";
  (match Bg_serve.Supervisor.read_lineage () with
  | Some (4, 123.5, 7.25) -> ()
  | Some (r, s, p) ->
      Alcotest.failf "lineage misread: %d %g %g" r s p
  | None -> Alcotest.fail "lineage env not read");
  (* Malformed values degrade to zero, never to an exception. *)
  Unix.putenv Bg_serve.Supervisor.started_env "not-a-float";
  (match Bg_serve.Supervisor.read_lineage () with
  | Some (4, 0., 7.25) -> ()
  | _ -> Alcotest.fail "malformed float should degrade to 0");
  Unix.putenv Bg_serve.Supervisor.lineage_env ""

let test_slo_spec_and_burn () =
  (* Grammar: quantile + threshold, error rate with % sugar. *)
  (match Bg_serve.Slo.parse_spec "p99<=0.05,err<=10%" with
  | Ok [ Bg_serve.Slo.Latency { quantile; threshold_s };
         Bg_serve.Slo.Error_rate e ] ->
      check_float ~eps:1e-9 "p99 quantile" 0.99 quantile;
      check_float ~eps:1e-9 "threshold seconds" 0.05 threshold_s;
      check_float ~eps:1e-9 "percent sugar" 0.1 e
  | Ok _ -> Alcotest.fail "wrong objectives"
  | Error e -> Alcotest.failf "spec rejected: %s" e);
  check_true "empty spec is an error"
    (match Bg_serve.Slo.parse_spec "" with Error _ -> true | Ok _ -> false);
  check_true "nonsense rejected"
    (match Bg_serve.Slo.parse_spec "p99<=fast" with
    | Error _ -> true
    | Ok _ -> false);
  (* 100 samples, 2 slow ones against a p99 objective: the 1% budget is
     being burned at exactly 2x. *)
  let samples =
    List.init 100 (fun i -> if i < 2 then (1., true) else (0.001, true))
  in
  (match Bg_serve.Slo.parse_spec "p99<=0.05" with
  | Ok spec -> (
      match Bg_serve.Slo.eval_samples spec samples with
      | [ st ] ->
          check_int "bad events" 2 st.Bg_serve.Slo.window_bad;
          check_float ~eps:1e-9 "burn rate 2x" 2. st.Bg_serve.Slo.window_burn;
          check_true "2x burn is a violation"
            (Bg_serve.Slo.violated [ st ]);
          (* A failed request is bad for latency objectives too. *)
          (match Bg_serve.Slo.eval_samples spec [ (0.001, false) ] with
          | [ st ] -> check_int "failure counts as bad" 1 st.Bg_serve.Slo.window_bad
          | _ -> Alcotest.fail "one objective expected")
      | _ -> Alcotest.fail "one objective expected")
  | Error e -> Alcotest.failf "spec rejected: %s" e);
  (* Bucket-resolution scoring for recorded telemetry. *)
  let b_slow = Obs.bucket_of 1.0 and b_fast = Obs.bucket_of 0.001 in
  check_int "buckets above the threshold count as bad" 3
    (Bg_serve.Slo.bad_latency_of_buckets ~threshold_s:0.05
       [ (b_fast, 97); (b_slow, 3) ]);
  check_int "threshold's own bucket counts as good" 0
    (Bg_serve.Slo.bad_latency_of_buckets ~threshold_s:1.5 [ (b_slow, 3) ])

let test_telemetry_ring_and_deltas () =
  check_int "monotonic counter delta" 5 (Bg_serve.Telemetry.delta ~prev:10 ~cur:15);
  check_int "reset counter yields the new count" 3
    (Bg_serve.Telemetry.delta ~prev:10 ~cur:3);
  check_float ~eps:1e-9 "float accumulator reset clamps" 0.5
    (Bg_serve.Telemetry.delta_f ~prev:2. ~cur:0.5);
  let path = Filename.temp_file "bg_telemetry_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let c = Obs.counter "test.serve.telemetry_ring" in
      let tel = Bg_serve.Telemetry.create ~interval_s:0.001 path in
      Obs.add c 2;
      Bg_serve.Telemetry.force_snapshot tel;
      Obs.add c 3;
      Bg_serve.Telemetry.force_snapshot tel;
      Bg_serve.Telemetry.close tel;
      let lines =
        J.parse_lines (J.read_file path)
        |> List.filter (fun l -> J.mem_str "type" l = Some "telemetry")
      in
      check_int "two snapshots recorded" 2 (List.length lines);
      let counter_of line =
        match J.member "counters" line with
        | Some (J.Obj kvs) -> List.assoc "test.serve.telemetry_ring" kvs
        | _ -> Alcotest.fail "counters missing"
      in
      match lines with
      | [ a; b ] ->
          check_true "seq increments"
            (J.mem_num "seq" b > J.mem_num "seq" a);
          check_true "first snapshot carries the full count as delta"
            (J.mem_num "delta" (counter_of a) = Some 2.);
          check_true "second snapshot carries only the new activity"
            (J.mem_num "delta" (counter_of b) = Some 3.);
          check_true "cumulative value rides along"
            (J.mem_num "value" (counter_of b) = Some 5.)
      | _ -> Alcotest.fail "expected two lines")

let test_prometheus_rendering () =
  let text =
    Bg_serve.Telemetry.prometheus
      [ ("serve.accepted", Obs.Counter_snapshot 7);
        ("serve.queue_depth", Obs.Gauge_snapshot 2.5);
        ( "serve.latency_s",
          Obs.Histogram_snapshot { count = 2; sum = 0.25; buckets = [] } ) ]
  in
  let has needle =
    let nl = String.length needle and hl = String.length text in
    let rec go i =
      i + nl <= hl && (String.sub text i nl = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle -> check_true (needle ^ " present") (has needle))
    [ "# TYPE serve_accepted counter"; "serve_accepted 7";
      "serve_queue_depth 2.5"; "serve_latency_s_count 2";
      "serve_latency_s_sum 0.25"; "serve_latency_s_bucket{le=\"+Inf\"} 0" ]

let suite =
  [
    ( "serve.protocol",
      [
        case "request round-trip" test_request_round_trip;
        case "garbage rejected with reasons" test_request_rejects_garbage;
        case "response round-trip" test_response_round_trip;
        case "op keys separate parameters" test_op_key_separates_params;
      ] );
    ( "serve.zipf",
      [
        case "cdf shape" test_zipf_cdf_shape;
        case "empirical skew matches exponent" test_zipf_skew_matches_exponent;
        case "picks deterministic and in range" test_zipf_pick_is_deterministic;
      ] );
    ( "serve.workload",
      [
        case "bit-reproducible from seed" test_generate_is_bit_reproducible;
        case "bad workloads rejected" test_generate_validates;
        case "replay identical at any concurrency"
          test_replay_reproducible_at_any_concurrency;
        case "hit rate meets the analytic floor"
          test_hit_rate_meets_analytic_floor;
      ] );
    ( "serve.engine",
      [
        case "results equal direct computation"
          test_serve_matches_direct_computation;
        case "duplicates coalesce in a batch" test_batch_coalesces_duplicates;
        case "compute error isolated to its request"
          test_error_isolated_to_its_request;
        case "bad spaces answer typed errors" test_bad_space_answers_error;
        case "overload sheds with typed rejections"
          test_overload_sheds_with_typed_rejections;
        case "malformed line does not stop the stream"
          test_malformed_line_does_not_stop_the_stream;
        case "request timeout answers typed error"
          test_request_timeout_answers_error;
      ] );
    ( "serve.store",
      [
        case "persists across reopen" test_store_persists_across_reopen;
        case "tolerates snapshot corruption" test_store_tolerates_corruption;
        case "LRU cap and snapshot order" test_store_lru_cap_and_snapshot_order;
        case "memo evicts per entry, LRU first" test_memo_per_entry_lru;
      ] );
    ( "serve.chaos",
      [
        case "spec parses and round-trips" test_chaos_spec_parse_round_trip;
        case "fault schedule is seeded" test_chaos_mangle_is_seeded;
        case "crash fires at the Nth arrival" test_chaos_crash_at_nth_arrival;
      ] );
    ( "serve.wal",
      [
        case "synced appends survive a power cut" test_wal_survives_power_cut;
        case "torn tail: longest valid prefix wins"
          test_wal_recovers_longest_valid_prefix;
        case "recovery clean at every byte prefix"
          test_wal_recovery_at_every_byte_prefix;
      ] );
    ( "serve.degrade",
      [
        case "backlog over the watermark degrades"
          test_degraded_answers_under_load;
        case "big spaces degrade without backlog"
          test_degraded_big_space_without_backlog;
        case "ping reports daemon health" test_ping_health_op;
      ] );
    ( "serve.client",
      [
        case "breaker lifecycle" test_client_breaker_lifecycle;
        case "backoff is seeded equal jitter" test_client_backoff_schedule;
        case "retries recover chaotic replies"
          test_chaotic_replies_recovered_by_retries;
      ] );
    ( "serve.restart",
      [
        case "warm restart hits the persisted cache"
          test_warm_restart_hits_persisted_cache;
      ] );
    ( "serve.observability",
      [
        case "trace context on the wire" test_trace_context_on_the_wire;
        case "metrics op scrapes the registry" test_metrics_op_scrape;
        case "lineage rides every ping" test_lineage_in_ping;
        case "supervisor lineage env round-trips"
          test_supervisor_lineage_env_round_trip;
        case "slo spec grammar and burn rates" test_slo_spec_and_burn;
        case "telemetry ring deltas, reset clamp"
          test_telemetry_ring_and_deltas;
        case "prometheus text rendering" test_prometheus_rendering;
      ] );
    ( "serve.e2e",
      [
        case "pipe driver against a spawned daemon"
          test_pipe_driver_against_real_daemon;
        case "CLI rejects bad resource flags"
          test_cli_rejects_bad_resource_flags;
        case "mid-request disconnect is logged and isolated"
          test_socket_disconnect_mid_request;
        case "supervised restart rides out chaos crashes"
          test_supervised_restart_rides_out_crashes;
      ] );
  ]
