(* The observability layer itself is load-bearing (the kernels, the pool
   and the CLI all report through it), so it gets the same treatment as
   any subsystem: unit tests for the registry semantics, QCheck laws for
   the histogram bucketing and span nesting, determinism checks for the
   metrics that must not depend on the job count, and a committed golden
   file for the E1 trace shape. *)

module Obs = Core.Prelude.Obs
module Par = Core.Prelude.Parallel
module Met = Core.Decay.Metricity
module Ctx = Core.Decay.Ctx
module Fad = Core.Decay.Fading
module KS = Core.Decay.Kernel_stats
module Jsonl = Obs_tools.Jsonl
open Testutil

(* Run [f] with a fresh temp-file trace sink installed and return the
   parsed JSONL events it produced.  The sink is always closed and the
   file removed, also on exceptional exit. *)
let trace_to_events f =
  let path = Filename.temp_file "bg_obs_test" ".jsonl" in
  Obs.set_trace_file path;
  let cleanup () =
    Obs.close_trace ();
    if Sys.file_exists path then Sys.remove path
  in
  match f () with
  | () ->
      Obs.close_trace ();
      let text = Jsonl.read_file path in
      Sys.remove path;
      Jsonl.parse_lines text
  | exception e ->
      cleanup ();
      raise e

let spans_of events =
  List.filter (fun e -> Jsonl.mem_str "type" e = Some "span") events

let req what = function
  | Some v -> v
  | None -> Alcotest.failf "missing %s in trace event" what

let span_id s = int_of_float (req "id" (Jsonl.mem_num "id" s))
let span_parent s = int_of_float (req "parent" (Jsonl.mem_num "parent" s))
let span_name s = req "name" (Jsonl.mem_str "name" s)
let span_attrs s =
  match Jsonl.member "attrs" s with Some (Jsonl.Obj kvs) -> kvs | _ -> []

(* --------------------------------------------------- metrics registry *)

let test_counter_basics () =
  let c = Obs.counter "test.obs.counter_basics" in
  let v0 = Obs.counter_value c in
  Obs.incr c;
  Obs.add c 41;
  check_int "incr + add" (v0 + 42) (Obs.counter_value c);
  check_true "name round-trips"
    (Obs.counter_name c = "test.obs.counter_basics");
  Obs.reset_counter c;
  check_int "reset_counter zeroes" 0 (Obs.counter_value c)

let test_registry_idempotent () =
  let a = Obs.counter "test.obs.idem" in
  Obs.incr a;
  let b = Obs.counter "test.obs.idem" in
  (* Same name -> same underlying metric. *)
  Obs.incr b;
  check_int "one shared counter" (Obs.counter_value a) (Obs.counter_value b);
  check_true "registered name listed"
    (List.mem "test.obs.idem" (Obs.metric_names ()));
  (* Re-registering under a different kind is a programming error. *)
  check_true "kind mismatch raises"
    (match Obs.gauge "test.obs.idem" with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_true "histogram kind mismatch raises"
    (match Obs.histogram "test.obs.idem" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_gauge () =
  let g = Obs.gauge "test.obs.gauge" in
  Obs.set_gauge g 2.5;
  check_float "gauge holds last value" 2.5 (Obs.gauge_value g);
  Obs.set_gauge g (-7.);
  check_float "gauge overwritten" (-7.) (Obs.gauge_value g)

let test_histogram_basics () =
  let h = Obs.histogram "test.obs.hist_basics" in
  List.iter (Obs.observe h) [ 1.0; 2.0; 0.5; 1e-9; 0.; -3.; Float.nan ];
  check_int "count = observations" 7 (Obs.histogram_count h);
  (* NaN contributes nothing to the sum; sum over the finite values. *)
  check_float ~eps:1e-9 "sum over finite non-NaN values" 0.5
    (Obs.histogram_sum h -. (1.0 +. 2.0 +. 1e-9 +. 0. +. -3.));
  (* Non-positive and NaN all land in bucket 0. *)
  check_int "bucket 0 holds non-positive + NaN" 3 (Obs.histogram_bucket h 0)

let test_bucket_of_specials () =
  check_int "zero -> bucket 0" 0 (Obs.bucket_of 0.);
  check_int "negative -> bucket 0" 0 (Obs.bucket_of (-1.));
  check_int "NaN -> bucket 0" 0 (Obs.bucket_of Float.nan);
  check_int "-inf -> bucket 0" 0 (Obs.bucket_of Float.neg_infinity);
  check_int "+inf -> overflow bucket" (Obs.num_buckets - 1)
    (Obs.bucket_of Float.infinity);
  check_int "huge -> overflow bucket" (Obs.num_buckets - 1)
    (Obs.bucket_of 1e300);
  check_int "denormal -> lowest positive bucket" 1 (Obs.bucket_of 5e-324);
  check_int "1.0 -> bucket 31" 31 (Obs.bucket_of 1.0);
  check_float "bucket 31 lower bound is 1" 1. (Obs.bucket_lower_bound 31)

let fuzz_bucket_bounds =
  qcheck ~count:500 "bucket_of agrees with bucket_lower_bound edges"
    QCheck.(float)
    (fun v ->
      let b = Obs.bucket_of v in
      if b < 0 || b >= Obs.num_buckets then false
      else if not (v > 0.) then b = 0
      else if b = Obs.num_buckets - 1 then v >= Obs.bucket_lower_bound b
      else
        v >= Obs.bucket_lower_bound b && v < Obs.bucket_lower_bound (b + 1))

let fuzz_histogram_conservation =
  qcheck ~count:200 "histogram bucket counts sum to observation count"
    QCheck.(pair small_nat (list float))
    (fun (tag, vs) ->
      (* A per-case metric name keeps cases independent despite the
         process-global registry. *)
      let h =
        Obs.histogram (Printf.sprintf "test.obs.fuzz_conserv_%d" (tag mod 8))
      in
      let before = Obs.histogram_count h in
      List.iter (Obs.observe h) vs;
      let bucket_total = ref 0 in
      for i = 0 to Obs.num_buckets - 1 do
        bucket_total := !bucket_total + Obs.histogram_bucket h i
      done;
      Obs.histogram_count h = before + List.length vs
      && !bucket_total = Obs.histogram_count h)

let test_summary_table_covers_registry () =
  ignore (Obs.counter "test.obs.summary");
  let names = Obs.metric_names () in
  check_true "metric_names sorted"
    (names = List.sort compare names);
  (* The summary table renders without raising and is non-trivial; its
     exact formatting is covered by the Table tests. *)
  let t = Obs.summary_table () in
  check_true "summary table renders"
    (String.length (Core.Prelude.Table.render t) > 0)

(* ------------------------------------------------------------- spans *)

let test_disabled_fast_path () =
  (* No sink installed: with_span is transparent for values and
     exceptions, and attributes are no-ops. *)
  check_true "not tracing by default" (not (Obs.tracing ()));
  check_int "value passes through" 42
    (Obs.with_span "off" (fun () ->
         Obs.add_span_attr "k" (Obs.I 1);
         42));
  Alcotest.check_raises "exception passes through" (Failure "boom")
    (fun () -> Obs.with_span "off" (fun () -> failwith "boom"))

let test_span_structure () =
  let events =
    trace_to_events (fun () ->
        check_true "tracing while sink installed" (Obs.tracing ());
        Obs.with_span ~attrs:[ ("root", Obs.B true) ] "outer" (fun () ->
            Obs.with_span "inner1" (fun () ->
                Obs.add_span_attr "k" (Obs.S "v\"with\nescapes"));
            Obs.with_span "inner2" (fun () ->
                Obs.with_span "leaf" (fun () -> ()));
            try Obs.with_span "boom" (fun () -> failwith "expected")
            with Failure _ -> ()))
  in
  let spans = spans_of events in
  check_int "five spans emitted" 5 (List.length spans);
  let by_name n = List.find (fun s -> span_name s = n) spans in
  let ids = List.map span_id spans in
  check_int "ids unique" 5 (List.length (List.sort_uniq compare ids));
  (* Children close (and are emitted) before their parents. *)
  let pos s =
    let rec go i = function
      | [] -> Alcotest.fail "span not found"
      | x :: rest -> if x == s then i else go (i + 1) rest
    in
    go 0 spans
  in
  List.iter
    (fun s ->
      let p = span_parent s in
      if p <> 0 then begin
        let parent =
          try List.find (fun x -> span_id x = p) spans
          with Not_found -> Alcotest.failf "parent %d missing" p
        in
        check_true
          (Printf.sprintf "%s emitted before its parent %s" (span_name s)
             (span_name parent))
          (pos s < pos parent);
        (* Wall-clock containment with a loose epsilon. *)
        let start x = req "start_s" (Jsonl.mem_num "start_s" x) in
        let dur x = req "dur_s" (Jsonl.mem_num "dur_s" x) in
        let eps = 1e-3 in
        check_true "child starts after parent"
          (start s +. eps >= start parent);
        check_true "child ends before parent"
          (start s +. dur s <= start parent +. dur parent +. eps)
      end)
    spans;
  check_int "outer is a root span" 0 (span_parent (by_name "outer"));
  check_int "inner1 nests under outer" (span_id (by_name "outer"))
    (span_parent (by_name "inner1"));
  check_int "leaf nests under inner2" (span_id (by_name "inner2"))
    (span_parent (by_name "leaf"));
  (* Attribute round-trip, including the escaped string. *)
  check_true "outer keeps its attrs"
    (List.assoc_opt "root" (span_attrs (by_name "outer"))
    = Some (Jsonl.Bool true));
  check_true "add_span_attr lands on innermost span"
    (List.assoc_opt "k" (span_attrs (by_name "inner1"))
    = Some (Jsonl.Str "v\"with\nescapes"));
  (* The raising span reports the failure; the others succeed. *)
  let boom = by_name "boom" in
  check_true "raising span has ok:false"
    (Jsonl.mem_bool "ok" boom = Some false);
  check_true "raising span records the error"
    (match List.assoc_opt "error" (span_attrs boom) with
    | Some (Jsonl.Str e) ->
        (* The exception is rendered via Printexc. *)
        String.length e > 0
    | _ -> false);
  List.iter
    (fun s ->
      if span_name s <> "boom" then
        check_true (span_name s ^ " has ok:true")
          (Jsonl.mem_bool "ok" s = Some true))
    spans

let fuzz_span_nesting =
  (* Random nesting shapes: every emitted span's parent chain must reach
     a root, and every child must appear in the file strictly before its
     parent (spans are emitted on close).  That is exactly
     well-parenthesizedness of the span intervals. *)
  qcheck ~count:30 "span nesting is well-parenthesized in JSONL output"
    QCheck.(list_of_size Gen.(int_range 0 12) (int_bound 2))
    (fun shape ->
      let events =
        trace_to_events (fun () ->
            let rec emit = function
              | [] -> ()
              | 0 :: rest ->
                  Obs.with_span "leaf" (fun () -> ());
                  emit rest
              | _ :: rest -> Obs.with_span "node" (fun () -> emit rest)
            in
            emit shape)
      in
      let spans = spans_of events in
      let arr = Array.of_list spans in
      let index_of_id id =
        let found = ref (-1) in
        Array.iteri (fun i s -> if span_id s = id then found := i) arr;
        !found
      in
      List.length spans = List.length shape
      && Array.for_all
           (fun s ->
             let p = span_parent s in
             p = 0
             ||
             let pi = index_of_id p in
             pi >= 0 && index_of_id (span_id s) < pi)
           arr)

let test_flush_metrics_round_trip () =
  let c = Obs.counter "test.obs.flush.counter" in
  let g = Obs.gauge "test.obs.flush.gauge" in
  let h = Obs.histogram "test.obs.flush.hist" in
  Obs.reset_counter c;
  Obs.add c 7;
  Obs.set_gauge g 1.5;
  List.iter (Obs.observe h) [ 0.25; 4.0; -1.0 ];
  let h_count0 = Obs.histogram_count h in
  let events = trace_to_events (fun () -> Obs.flush_metrics ()) in
  let find_metric ty name =
    List.find_opt
      (fun e ->
        Jsonl.mem_str "type" e = Some ty && Jsonl.mem_str "name" e = Some name)
      events
  in
  (match find_metric "counter" "test.obs.flush.counter" with
  | Some e -> check_float "counter value flushed" 7. (req "value" (Jsonl.mem_num "value" e))
  | None -> Alcotest.fail "counter event missing");
  (match find_metric "gauge" "test.obs.flush.gauge" with
  | Some e -> check_float "gauge value flushed" 1.5 (req "value" (Jsonl.mem_num "value" e))
  | None -> Alcotest.fail "gauge event missing");
  (match find_metric "histogram" "test.obs.flush.hist" with
  | Some e ->
      check_float "histogram count flushed" (float_of_int h_count0)
        (req "count" (Jsonl.mem_num "count" e));
      let buckets =
        match Jsonl.member "buckets" e with
        | Some (Jsonl.Obj kvs) -> kvs
        | _ -> Alcotest.fail "histogram buckets missing"
      in
      let total =
        List.fold_left
          (fun acc (_, v) -> acc + int_of_float (req "bucket" (Jsonl.num v)))
          0 buckets
      in
      check_int "sparse buckets sum to count" h_count0 total;
      (* Sparse encoding: empty buckets are not written. *)
      check_true "no zero buckets emitted"
        (List.for_all (fun (_, v) -> Jsonl.num v <> Some 0.) buckets)
  | None -> Alcotest.fail "histogram event missing");
  (* Every registered metric appears exactly once in a flush. *)
  let flushed =
    List.filter_map
      (fun e ->
        match Jsonl.mem_str "type" e with
        | Some ("counter" | "gauge" | "histogram") -> Jsonl.mem_str "name" e
        | _ -> None)
      events
  in
  check_true "flush covers the registry, once per metric"
    (List.sort compare flushed = Obs.metric_names ())

(* -------------------------------------------------- per-span profiling *)

(* List.init n (fun i -> (i, i)) allocates ~6 words per element (a
   3-word tuple block plus a 3-word cons cell).  Under OCaml 5 part of
   that shows up as promoted/major words once the minor heap cycles, so
   only require the minor-words delta to be >= 1 word per element —
   still four orders of magnitude above what a non-capturing span would
   report. *)
let alloc_elems = 100_000
let min_expected_words = float_of_int alloc_elems

let with_profile f =
  Obs.set_profile true;
  Fun.protect ~finally:(fun () -> Obs.set_profile false) f

let test_profile_captures_gc_deltas () =
  check_false "profiling off by default" (Obs.profiling ());
  let events =
    with_profile (fun () ->
        check_true "profiling on" (Obs.profiling ());
        trace_to_events (fun () ->
            Obs.with_span "alloc" (fun () ->
                let l = List.init alloc_elems (fun i -> (i, i)) in
                ignore (Sys.opaque_identity l))))
  in
  let span = List.hd (spans_of events) in
  let attr k =
    match List.assoc_opt k (span_attrs span) with
    | Some (Jsonl.Num v) -> v
    | _ -> Alcotest.failf "profiled span missing numeric attr %s" k
  in
  let minor = attr "gc.minor_words" in
  check_true "minor_words covers the known allocation"
    (minor >= min_expected_words);
  (* Generous ceiling: the span allocated ~0.6M words; two orders of
     magnitude of slack absorbs List.init internals and GC bookkeeping. *)
  check_true "minor_words not absurdly large"
    (minor <= 100. *. min_expected_words);
  check_true "cpu time sane"
    (attr "cpu_s" >= 0. && attr "cpu_s" < 60.);
  List.iter
    (fun k -> check_true (k ^ " non-negative") (attr k >= 0.))
    [ "gc.major_words"; "gc.promoted_words"; "gc.minor_collections";
      "gc.major_collections"; "gc.heap_words" ];
  (* alloc_bytes is derived from the word deltas. *)
  let words =
    attr "gc.minor_words" +. attr "gc.major_words"
    -. attr "gc.promoted_words"
  in
  check_float ~eps:1.
    "alloc_bytes = (minor + major - promoted) words in bytes"
    (words *. float_of_int (Sys.word_size / 8))
    (attr "gc.alloc_bytes")

let test_no_gc_attrs_without_profile () =
  (* Tracing alone must not change span payloads: no gc.* or cpu_s
     attrs unless profiling was requested. *)
  let events =
    trace_to_events (fun () ->
        Obs.with_span "plain" (fun () ->
            ignore (Sys.opaque_identity (List.init 10_000 Fun.id))))
  in
  let span = List.hd (spans_of events) in
  List.iter
    (fun (k, _) ->
      check_false ("unexpected profiling attr " ^ k)
        (k = "cpu_s" || String.length k >= 3 && String.sub k 0 3 = "gc."))
    (span_attrs span)

let test_unwritable_trace_path () =
  (* The CLI maps this Sys_error to a usage error (exit 2); the library
     contract is that the raise happens eagerly at install time and
     leaves tracing disabled. *)
  check_true "set_trace_file raises on unwritable path"
    (match Obs.set_trace_file "/nonexistent_bg_dir/trace.jsonl" with
    | () -> false
    | exception Sys_error _ -> true);
  check_false "sink not installed after failure" (Obs.tracing ())

(* ------------------------------------ determinism across job counts *)

let memo_counters_for ~jobs =
  Met.clear_caches ();
  let hits = Obs.counter "memo.zeta.hits" in
  let misses = Obs.counter "memo.zeta.misses" in
  let h0 = Obs.counter_value hits and m0 = Obs.counter_value misses in
  KS.reset ();
  let sp = random_space ~n:16 77 in
  let w1 = Met.zeta_witness ~ctx:(Ctx.make ~jobs ()) sp in
  let w2 = Met.zeta_witness ~ctx:(Ctx.make ~jobs ()) sp in
  check_true "cached witness identical"
    (w1.Met.x = w2.Met.x && w1.Met.y = w2.Met.y && w1.Met.z = w2.Met.z
    && Float.equal w1.Met.value w2.Met.value);
  let s = KS.snapshot () in
  ( Obs.counter_value hits - h0,
    Obs.counter_value misses - m0,
    s.KS.sweeps,
    s.KS.triples )

let test_cache_metrics_job_invariant () =
  (* Cache hits/misses and executed-sweep accounting are deterministic
     and must not depend on the parallelism degree. *)
  let a = memo_counters_for ~jobs:1 in
  let b = memo_counters_for ~jobs:4 in
  let (h, m, sweeps, triples) = a in
  check_int "one miss on a cold cache" 1 m;
  check_int "one hit on the warm rerun" 1 h;
  check_int "exactly one executed sweep" 1 sweeps;
  check_int "triples = n(n-1)(n-2)" (16 * 15 * 14) triples;
  check_true "identical metrics at jobs=1 and jobs=4" (a = b)

let test_kernel_stats_deterministic_at_jobs4 () =
  (* Regression for the per-chunk tally merge: before it, the pruning
     counters raced under Parallel and two identical jobs=4 sweeps could
     disagree.  Now a sweep's tally is a pure function of (space, jobs). *)
  let sp = random_space ~n:20 912 in
  let snap jobs =
    KS.reset ();
    ignore (Met.zeta_witness ~ctx:(Ctx.make ~jobs ~cache:false ()) sp);
    KS.snapshot ()
  in
  let a = snap 4 and b = snap 4 in
  check_true "jobs=4 tallies reproducible" (a = b);
  check_int "one sweep per run" 1 a.KS.sweeps;
  check_int "triple coverage recorded" (20 * 19 * 18) a.KS.triples;
  check_true "counters non-negative"
    (a.KS.plain_skips >= 0 && a.KS.cheap_skips >= 0 && a.KS.deep >= 0
    && a.KS.exp_evals >= 0 && a.KS.bisections >= 0 && a.KS.row_prunes >= 0
    && a.KS.pair_prunes >= 0 && a.KS.tile_prunes >= 0);
  check_true "bisections only on deep triples" (a.KS.bisections <= a.KS.deep);
  check_true "deep triples are covered triples" (a.KS.deep <= a.KS.triples);
  let f = KS.pruned_fraction a in
  check_true "pruned fraction in [0,1]" (f >= 0. && f <= 1.);
  (* phi sweeps merge tallies through the same path. *)
  let psnap jobs =
    KS.reset ();
    ignore (Met.phi_witness ~ctx:(Ctx.make ~jobs ~cache:false ()) sp);
    KS.snapshot ()
  in
  check_true "phi jobs=4 tallies reproducible" (psnap 4 = psnap 4)

let test_worker_tally_merge () =
  (* Per-worker task counts are kept per pool and merged on read; the
     process-global counters see every task exactly once. *)
  let m_worker = Obs.counter "parallel.worker_tasks" in
  let m_caller = Obs.counter "parallel.caller_tasks" in
  let pool = Par.create ~num_domains:3 () in
  let n = 16 in
  let w0 = Obs.counter_value m_worker and c0 = Obs.counter_value m_caller in
  let out = Par.run ~pool (Array.init n (fun k () -> k * k)) in
  check_true "results in order" (out = Array.init n (fun k -> k * k));
  let dequeued =
    List.fold_left (fun acc (_, c) -> acc + c) 0 (Par.worker_task_counts pool)
  in
  (* Task 0 runs in the caller without queueing; the other n-1 are
     dequeued by workers or by the helping caller and land in the pool
     tally either way. *)
  check_int "pool tally sees every queued task" (n - 1) dequeued;
  check_int "global counters see every task once" n
    (Obs.counter_value m_worker - w0 + (Obs.counter_value m_caller - c0));
  (* A second batch accumulates. *)
  ignore (Par.run ~pool (Array.init n (fun k () -> k)));
  let dequeued2 =
    List.fold_left (fun acc (_, c) -> acc + c) 0 (Par.worker_task_counts pool)
  in
  check_int "tally accumulates across batches" (2 * (n - 1)) dequeued2;
  check_true "tally keys are sorted domain ids"
    (let ks = List.map fst (Par.worker_task_counts pool) in
     ks = List.sort_uniq compare ks);
  Par.shutdown pool;
  (* Queue-wait histogram observed one sample per queued task (among
     whatever other tests contributed). *)
  check_true "queue wait histogram populated"
    (Obs.histogram_count (Obs.histogram "parallel.queue_wait_s") >= n - 1)

(* ------------------------------------------------------ golden trace *)

(* Normalize a trace to its shape: span names in emission order, each
   with only its string/bool attributes (ids, timings and sizes vary run
   to run; the shape must not). *)
let normalize_spans spans =
  List.map
    (fun s ->
      let keep =
        List.filter_map
          (fun (k, v) ->
            match v with
            | Jsonl.Str x -> Some (Printf.sprintf "%s=%s" k x)
            | Jsonl.Bool b -> Some (Printf.sprintf "%s=%b" k b)
            | _ -> None)
          (span_attrs s)
      in
      match keep with
      | [] -> span_name s
      | ks -> span_name s ^ " " ^ String.concat " " ks)
    spans

let test_golden_e1_trace () =
  (* A cold-cache isolated E1 run produces a stable trace shape: its
     analysis sweeps, then exactly one experiment span carrying the
     verdict.  Committed as test/golden_e1_trace.txt; regenerate with
     `dune runtest` after an intentional trace-shape change and copy the
     diff. *)
  Met.clear_caches ();
  Fad.clear_caches ();
  let entry =
    match Bg_experiments.Registry.find "E1" with
    | Some e -> e
    | None -> Alcotest.fail "E1 not registered"
  in
  let events =
    trace_to_events (fun () ->
        let r = Bg_experiments.Isolate.run_entry entry in
        check_true "E1 passes" (Bg_experiments.Isolate.passed r))
  in
  (* Every line parsed (Jsonl.parse_lines already raised otherwise); the
     trace contains exactly one experiment span, and it carries E1's
     verdict. *)
  let spans = spans_of events in
  let exps = List.filter (fun s -> span_name s = "experiment") spans in
  check_int "exactly one span per experiment run" 1 (List.length exps);
  let e = List.hd exps in
  check_true "experiment span names its id"
    (List.assoc_opt "id" (span_attrs e) = Some (Jsonl.Str "E1"));
  check_true "experiment span records pass"
    (List.assoc_opt "pass" (span_attrs e) = Some (Jsonl.Bool true));
  check_true "experiment span records the verdict"
    (List.assoc_opt "verdict" (span_attrs e) = Some (Jsonl.Str "PASS"));
  check_int "experiment span is the trace root" 0 (span_parent e);
  (* All other spans hang off the experiment span (directly or not). *)
  let ids = List.map span_id spans in
  List.iter
    (fun s ->
      let p = span_parent s in
      check_true (span_name s ^ " linked into the trace")
        (p = 0 || List.mem p ids))
    spans;
  let golden_path =
    (* cwd is _build/default/test under `dune runtest`, but the project
       root under `dune exec test/test_main.exe`. *)
    if Sys.file_exists "golden_e1_trace.txt" then "golden_e1_trace.txt"
    else "test/golden_e1_trace.txt"
  in
  let golden =
    Jsonl.read_file golden_path
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check (list string))
    "trace shape matches the committed golden" golden (normalize_spans spans)

(* ------------------------------------------------- quantile estimation *)

(* The telemetry snapshotter and `bg top` read p50/p99 straight off the
   registry, so the estimator's edges are contract, not detail. *)

let test_quantile_empty () =
  let h = Obs.histogram "test.obs.q_empty" in
  List.iter
    (fun q ->
      check_float
        (Printf.sprintf "empty histogram q=%g is 0" q)
        0.
        (Obs.histogram_quantile h q))
    [ 0.; 0.5; 1. ]

let test_quantile_single_bucket () =
  let h = Obs.histogram "test.obs.q_single" in
  for _ = 1 to 100 do
    Obs.observe h 1.5
  done;
  (* Every rank lands in the one occupied bucket, reported at its
     geometric midpoint. *)
  let mid = Obs.bucket_lower_bound (Obs.bucket_of 1.5) *. Float.sqrt 2. in
  List.iter
    (fun q ->
      check_float ~eps:1e-12
        (Printf.sprintf "q=%g at the geometric midpoint" q)
        mid
        (Obs.histogram_quantile h q))
    [ 0.; 0.5; 0.99; 1. ];
  (* Out-of-range quantiles clamp instead of raising. *)
  check_float ~eps:1e-12 "q<0 clamps to 0" mid (Obs.histogram_quantile h (-1.));
  check_float ~eps:1e-12 "q>1 clamps to 1" mid (Obs.histogram_quantile h 2.)

let test_quantile_overflow_mass () =
  let h = Obs.histogram "test.obs.q_overflow" in
  List.iter (Obs.observe h) [ 1e300; Float.infinity; 1e305 ];
  (* The overflow bucket has no midpoint; its lower bound is the honest
     (under-)estimate. *)
  let lo = Obs.bucket_lower_bound (Obs.num_buckets - 1) in
  check_float "p50 reads the overflow lower bound" lo
    (Obs.histogram_quantile h 0.5);
  check_float "p99 too" lo (Obs.histogram_quantile h 0.99)

let test_quantile_nonpositive_mass () =
  let h = Obs.histogram "test.obs.q_zero" in
  List.iter (Obs.observe h) [ 0.; -1.; Float.nan ];
  check_float "all-nonpositive mass reads as 0" 0.
    (Obs.histogram_quantile h 0.9)

(* ------------------------------------------- backdated spans, snapshot *)

let test_alloc_and_emit_backdated () =
  let reserved = ref 0 in
  let events =
    trace_to_events (fun () ->
      let id = Obs.alloc_span_id () in
      reserved := id;
      check_true "alloc ids advance" (Obs.alloc_span_id () > id);
      check_int "no span open outside with_span" 0 (Obs.current_span_id ());
      Obs.with_span "outer" (fun () ->
          check_true "current_span_id names the open span"
            (Obs.current_span_id () > 0));
      check_int "span close restores no-open state" 0 (Obs.current_span_id ());
      let used =
        Obs.emit_span_at
          ~attrs:[ ("trace_id", Obs.S "t0-r000001") ]
          ~parent:0 ~id ~ok:false ~name:"client.request" ~start_s:1.
          ~dur_s:0.5 ()
      in
      check_int "emit_span_at uses the reserved id" id used)
  in
  match
    List.filter (fun s -> span_name s = "client.request") (spans_of events)
  with
  | [ s ] ->
      check_int "reserved id on the wire" !reserved (span_id s);
      check_int "emitted as a root" 0 (span_parent s);
      check_true "ok:false preserved" (Jsonl.mem_bool "ok" s = Some false);
      check_true "trace_id attribute preserved"
        (List.assoc_opt "trace_id" (span_attrs s)
        = Some (Jsonl.Str "t0-r000001"));
      check_float "backdated start" 1. (req "start" (Jsonl.mem_num "start_s" s));
      check_float "explicit duration" 0.5 (req "dur" (Jsonl.mem_num "dur_s" s))
  | l ->
      Alcotest.failf "expected one client.request span, got %d" (List.length l)

let test_emit_span_at_without_sink () =
  Obs.close_trace ();
  check_int "no sink: emit_span_at is a 0 no-op" 0
    (Obs.emit_span_at ~name:"x" ~start_s:0. ~dur_s:0. ())

let test_snapshot_covers_metrics () =
  let c = Obs.counter "test.obs.snap_counter" in
  Obs.add c 3;
  let g = Obs.gauge "test.obs.snap_gauge" in
  Obs.set_gauge g 1.25;
  let h = Obs.histogram "test.obs.snap_hist" in
  List.iter (Obs.observe h) [ 0.5; 2. ];
  let snap = Obs.snapshot () in
  (match List.assoc_opt "test.obs.snap_counter" snap with
  | Some (Obs.Counter_snapshot n) -> check_int "counter value" 3 n
  | _ -> Alcotest.fail "counter missing from snapshot");
  (match List.assoc_opt "test.obs.snap_gauge" snap with
  | Some (Obs.Gauge_snapshot v) -> check_float "gauge value" 1.25 v
  | _ -> Alcotest.fail "gauge missing from snapshot");
  match List.assoc_opt "test.obs.snap_hist" snap with
  | Some (Obs.Histogram_snapshot { count; sum; buckets }) ->
      check_int "histogram count" 2 count;
      check_float ~eps:1e-12 "histogram sum" 2.5 sum;
      check_int "sparse buckets carry all the mass" 2
        (List.fold_left (fun acc (_, n) -> acc + n) 0 buckets)
  | _ -> Alcotest.fail "histogram missing from snapshot"

let suite =
  [
    ( "obs.metrics",
      [
        case "counter basics" test_counter_basics;
        case "registry idempotent, kind-checked" test_registry_idempotent;
        case "gauge" test_gauge;
        case "histogram basics" test_histogram_basics;
        case "bucket_of specials" test_bucket_of_specials;
        fuzz_bucket_bounds;
        fuzz_histogram_conservation;
        case "summary covers registry" test_summary_table_covers_registry;
        case "quantile: empty histogram" test_quantile_empty;
        case "quantile: single occupied bucket" test_quantile_single_bucket;
        case "quantile: all mass in overflow" test_quantile_overflow_mass;
        case "quantile: non-positive mass" test_quantile_nonpositive_mass;
        case "snapshot covers every metric kind" test_snapshot_covers_metrics;
      ] );
    ( "obs.spans",
      [
        case "disabled fast path is transparent" test_disabled_fast_path;
        case "span structure, attrs, errors" test_span_structure;
        fuzz_span_nesting;
        case "flush_metrics round-trips" test_flush_metrics_round_trip;
        case "alloc + backdated emit_span_at" test_alloc_and_emit_backdated;
        case "emit_span_at without a sink" test_emit_span_at_without_sink;
      ] );
    ( "obs.profiling",
      [
        case "profiled spans carry GC deltas" test_profile_captures_gc_deltas;
        case "no GC attrs without --profile" test_no_gc_attrs_without_profile;
        case "unwritable trace path raises eagerly" test_unwritable_trace_path;
      ] );
    ( "obs.determinism",
      [
        case "cache metrics jobs-invariant" test_cache_metrics_job_invariant;
        case "kernel tallies deterministic at jobs=4"
          test_kernel_stats_deterministic_at_jobs4;
        case "per-worker tallies merge" test_worker_tally_merge;
      ] );
    ("obs.golden", [ case "E1 trace shape" test_golden_e1_trace ]);
  ]
