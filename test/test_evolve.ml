(* Property tests for the Evolve mobility layer and QCheck differential
   coverage of Incremental over random dirty-row sets. *)

module Decay = Core.Decay
module Decay_space = Decay.Decay_space
module Evolve = Decay.Evolve
module Incremental = Decay.Incremental

let cfg ?(n = 10) ?(speed = (0.8, 2.5)) ?(shadow = 4.) () =
  {
    Evolve.default with
    n;
    side = 15.;
    speed_min = fst speed;
    speed_max = snd speed;
    pause_min = 0.3;
    pause_max = 2.;
    corr_dist = 5.;
    shadow_std_db = shadow;
  }

(* ------------------------------------------------------ Evolve physics *)

(* Mixing coefficient: 1 at zero displacement, monotonically decreasing. *)
let prop_mixing_monotone =
  Testutil.qcheck ~count:200 "mixing decays monotonically with delta"
    QCheck.(pair (float_bound_exclusive 50.) (float_bound_exclusive 50.))
    (fun (a, b) ->
      let d1 = Float.min a b and d2 = Float.max a b in
      let m1 = Evolve.mixing ~corr_dist:8. ~delta:d1
      and m2 = Evolve.mixing ~corr_dist:8. ~delta:d2 in
      Evolve.mixing ~corr_dist:8. ~delta:0. = 1.
      && m1 <= 1. && m2 >= 0.
      && (d1 = d2 || m1 >= m2)
      && (d1 = d2 || m1 = m2 || m1 > m2))

(* Shadow-field stationarity: after many steps of constant motion the
   field's empirical variance stays near shadow_std^2 (the Gudmundson
   update is variance-preserving). *)
let test_shadow_stationarity () =
  let c = { (cfg ~n:16 ()) with pause_min = 0.; pause_max = 0. } in
  let ev = Evolve.create ~seed:31 c in
  for _ = 1 to 60 do
    ignore (Evolve.step ev)
  done;
  let field = Evolve.shadow_field ev in
  let sum = ref 0. and sumsq = ref 0. and count = ref 0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          if i <> j then begin
            sum := !sum +. v;
            sumsq := !sumsq +. (v *. v);
            incr count
          end)
        row)
    field;
  let m = float_of_int !count in
  let mean = !sum /. m in
  let var = (!sumsq /. m) -. (mean *. mean) in
  let target = c.Evolve.shadow_std_db ** 2. in
  Testutil.check_true
    (Printf.sprintf "variance %.2f within 40%% of %.2f" var target)
    (var > 0.6 *. target && var < 1.4 *. target)

(* Zero speed: no node ever moves, every step's space is bit-identical
   and every dirty set empty. *)
let prop_zero_speed_identity =
  Testutil.qcheck ~count:20 "zero speed => identical matrices"
    QCheck.(pair small_nat (int_bound 12))
    (fun (seed, steps) ->
      let c = cfg ~n:8 ~speed:(0., 0.) () in
      let ev = Evolve.create ~seed c in
      let d0 = Decay_space.digest (Evolve.space ev) in
      let ok = ref true in
      for _ = 1 to steps do
        let space, dirty = Evolve.step ev in
        ok :=
          !ok && Array.length dirty = 0
          && String.equal (Decay_space.digest space) d0
      done;
      !ok)

(* Same seed => same trajectory, regardless of the ambient job default
   (Evolve is job-independent by construction; assert it stays so). *)
let prop_seed_determinism =
  Testutil.qcheck ~count:15 "same-seed determinism across jobs"
    QCheck.small_nat (fun seed ->
      let run jobs =
        let saved = Core.Prelude.Parallel.default_jobs () in
        Core.Prelude.Parallel.set_default_jobs jobs;
        Fun.protect
          ~finally:(fun () -> Core.Prelude.Parallel.set_default_jobs saved)
          (fun () ->
            let ev = Evolve.create ~seed (cfg ()) in
            let digests = ref [] in
            for _ = 1 to 8 do
              let space, dirty = Evolve.step ev in
              digests :=
                (Decay_space.digest space, Array.to_list dirty) :: !digests
            done;
            !digests)
      in
      run 1 = run 4)

(* Dirty-set contract: cells with both endpoints clean are bit-identical
   to the previous step's. *)
let prop_clean_cells_untouched =
  Testutil.qcheck ~count:25 "clean cells bit-identical across a step"
    QCheck.small_nat (fun seed ->
      let ev = Evolve.create ~seed (cfg ~n:9 ()) in
      let ok = ref true in
      let prev = ref (Evolve.space ev) in
      for _ = 1 to 6 do
        let space, dirty = Evolve.step ev in
        let in_dirty = Array.make 9 false in
        Array.iter (fun i -> in_dirty.(i) <- true) dirty;
        for i = 0 to 8 do
          for j = 0 to 8 do
            if (not in_dirty.(i)) && not in_dirty.(j) then
              ok :=
                !ok
                && Int64.equal
                     (Int64.bits_of_float (Decay_space.decay !prev i j))
                     (Int64.bits_of_float (Decay_space.decay space i j))
          done
        done;
        prev := space
      done;
      !ok)

(* --------------------------------------- Incremental over random dirt *)

(* Random dirty-row sets over random asymmetric spaces: one incremental
   step must match full recompute bit-for-bit at jobs 1 and 4.  The
   perturbation is a pure function of the pair, so the same next-space is
   rebuilt identically for every job count. *)
let prop_random_dirty_rows =
  Testutil.qcheck ~count:40 "incremental = full over random dirty sets"
    QCheck.(pair small_nat (int_bound 1000))
    (fun (seed, salt) ->
      let n = 6 + (seed mod 9) in
      let base = Testutil.random_asym_space ~n (seed + 1) in
      let g = Testutil.rng (seed + (31 * salt)) in
      let k = 1 + Core.Prelude.Rng.int g n in
      let dirty =
        Core.Prelude.Rng.sample g k (Array.init n Fun.id)
      in
      let cell i j =
        (* Deterministic fresh positive cells, decorrelated from base. *)
        let h = ((i * 73856093) lxor (j * 19349663) lxor (salt * 83492791))
                land 0xFFFF in
        0.5 +. (float_of_int h /. 655.36)
      in
      let next = Differential.perturb_space base ~dirty ~cell in
      match Differential.check_one_step ~r:4. base ~dirty next with
      | [] -> true
      | errs -> QCheck.Test.fail_report (String.concat "\n" errs))

(* Multi-step churn with gamma on an asymmetric space, moderate n, to
   shake out stale-table bugs that single steps cannot reach. *)
let test_multi_step_random_dirt () =
  let n = 11 in
  let base = Testutil.random_asym_space ~n 77 in
  let g = Testutil.rng 78 in
  let inc =
    Incremental.create ~ctx:(Differential.ctx_with_jobs 2) ~r:4. base
  in
  let cur = ref base in
  for s = 1 to 30 do
    let k = 1 + Core.Prelude.Rng.int g 4 in
    let dirty = Core.Prelude.Rng.sample g k (Array.init n Fun.id) in
    let cell i j =
      0.5 +. Float.abs (sin (float_of_int ((i * 131) + (j * 17) + s))) *. 40.
    in
    let next = Differential.perturb_space !cur ~dirty ~cell in
    let res = Incremental.step inc ~dirty next in
    (match Differential.mismatches ~r:4. ~label:(Printf.sprintf "s=%d" s)
             res next with
    | [] -> ()
    | errs -> Alcotest.fail (String.concat "\n" errs));
    cur := next
  done

let suite =
  [
    ( "evolve",
      [
        prop_mixing_monotone;
        Testutil.case "shadow-field stationary variance"
          test_shadow_stationarity;
        prop_zero_speed_identity;
        prop_seed_determinism;
        prop_clean_cells_untouched;
        prop_random_dirty_rows;
        Testutil.case "multi-step random dirty sets (jobs 2)"
          test_multi_step_random_dirt;
      ] );
  ]
