(* Differential testing: incremental ζ/φ/γ vs full recompute.

   The reusable checkers here are the PR's core correctness tool: given
   any evolution trace (an [Evolve.t], or an explicit base/next pair with
   a dirty set), they assert that [Incremental]'s values AND witnesses
   are bit-identical to a from-scratch [Metricity] / [Fading] run on the
   current space — at jobs 1 and at jobs 4.  Full recomputes use
   [Ctx.uncached] so the digest-keyed memo caches can neither mask nor
   manufacture a mismatch. *)

module Decay = Core.Decay
module Metricity = Decay.Metricity
module Fading = Decay.Fading
module Incremental = Decay.Incremental
module Evolve = Decay.Evolve
module Ctx = Decay.Ctx

let pp_w (w : Metricity.witness) =
  Printf.sprintf "{x=%d; y=%d; z=%d; value=%h}" w.x w.y w.z w.value

(* Bit-level witness equality: coordinates and the exact float. *)
let witness_equal (a : Metricity.witness) (b : Metricity.witness) =
  a.x = b.x && a.y = b.y && a.z = b.z
  && Int64.equal (Int64.bits_of_float a.value) (Int64.bits_of_float b.value)

let ctx_with_jobs jobs = { Ctx.uncached with jobs = Some jobs }

(* Compare one incremental result against full recomputes of the same
   space at the given job counts.  Returns the list of mismatch
   descriptions (empty = bit-identical). *)
let mismatches ?(jobs_list = [ 1; 4 ]) ?r ~label (res : Incremental.result)
    space =
  List.concat_map
    (fun jobs ->
      let ctx = ctx_with_jobs jobs in
      let zw = Metricity.zeta_witness ~ctx space in
      let pw = Metricity.phi_witness ~ctx space in
      let errs = ref [] in
      let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
      if not (witness_equal res.Incremental.zeta zw) then
        err "%s jobs=%d zeta: incremental %s <> full %s" label jobs
          (pp_w res.Incremental.zeta) (pp_w zw);
      if not (witness_equal res.Incremental.phi pw) then
        err "%s jobs=%d phi: incremental %s <> full %s" label jobs
          (pp_w res.Incremental.phi) (pp_w pw);
      (match (r, res.Incremental.gamma) with
      | None, None -> ()
      | Some r, Some g ->
          let full = Fading.gamma ~ctx space ~r in
          if
            not
              (Int64.equal
                 (Int64.bits_of_float g.Incremental.g_value)
                 (Int64.bits_of_float full))
          then
            err "%s jobs=%d gamma: incremental %h <> full %h" label jobs
              g.Incremental.g_value full
      | Some _, None -> err "%s: incremental result carries no gamma" label
      | None, Some _ -> ());
      List.rev !errs)
    jobs_list

(* Drive [steps] steps of an evolution trace through an incremental state
   per job count, checking bit-identity at every step.  The incremental
   state itself is also rebuilt per job count, so the table updates too
   are exercised at jobs 1 vs 4.  Raises [Failure] with the first few
   mismatches; returns the per-step dirty sizes on success. *)
let check_trace ?(jobs_list = [ 1; 4 ]) ?r ~steps ~seed cfg =
  let dirty_sizes = ref [] in
  List.iter
    (fun jobs ->
      let ev = Evolve.create ~seed cfg in
      let inc =
        Incremental.create ~ctx:(ctx_with_jobs jobs) ?r (Evolve.space ev)
      in
      let errs0 =
        mismatches ~jobs_list:[ jobs ] ?r ~label:"step=0"
          (Incremental.current inc) (Evolve.space ev)
      in
      if errs0 <> [] then failwith (String.concat "\n" errs0);
      for s = 1 to steps do
        let space, dirty = Evolve.step ev in
        if jobs = List.hd jobs_list then
          dirty_sizes := Array.length dirty :: !dirty_sizes;
        let res = Incremental.step inc ~dirty space in
        let errs =
          mismatches ~jobs_list:[ jobs ] ?r
            ~label:(Printf.sprintf "step=%d" s)
            res space
        in
        if errs <> [] then failwith (String.concat "\n" errs)
      done)
    jobs_list;
  List.rev !dirty_sizes

(* Explicit-perturbation variant for the QCheck property: start from
   [base], replace the rows/columns of [dirty] with fresh cells from
   [cell] (a pure function of the pair), leave everything else
   bit-untouched, and check one incremental step against full
   recomputes. *)
let perturb_space base ~dirty ~cell =
  let n = Decay.Decay_space.n base in
  let in_dirty = Array.make n false in
  Array.iter (fun i -> in_dirty.(i) <- true) dirty;
  Decay.Decay_space.of_fn ~name:"perturbed" n (fun i j ->
      if in_dirty.(i) || in_dirty.(j) then cell i j
      else Decay.Decay_space.decay base i j)

let check_one_step ?(jobs_list = [ 1; 4 ]) ?r base ~dirty next =
  List.concat_map
    (fun jobs ->
      let inc = Incremental.create ~ctx:(ctx_with_jobs jobs) ?r base in
      let res = Incremental.step inc ~dirty next in
      mismatches ~jobs_list:[ jobs ] ?r
        ~label:(Printf.sprintf "one-step jobs=%d" jobs)
        res next)
    jobs_list

(* -------------------------------------------------------------- suite *)

let small_cfg =
  {
    Evolve.default with
    n = 18;
    side = 20.;
    speed_min = 0.5;
    speed_max = 2.5;
    pause_min = 0.5;
    pause_max = 3.;
    corr_dist = 6.;
  }

(* The acceptance trace: 100 seeded churn steps, every step checked
   bit-identical to full recompute at jobs 1 and 4, γ included. *)
let test_hundred_step_trace () =
  let dirty =
    check_trace ~jobs_list:[ 1; 4 ] ~r:4. ~steps:100 ~seed:2026 small_cfg
  in
  Testutil.check_int "100 steps checked" 100 (List.length dirty);
  Testutil.check_true "mobility actually produced churn"
    (List.exists (fun k -> k > 0) dirty)

(* Radio-environment base decay (walls + propagation model) through the
   same differential gauntlet — the adapter path must be as exact as the
   geometric default. *)
let test_radio_base_trace () =
  let env =
    Core.Radio.Environment.office ~rooms_x:3 ~rooms_y:3 ~room_size:7.
      Core.Radio.Material.drywall
  in
  let cfg = { small_cfg with n = 12 } in
  List.iter
    (fun jobs ->
      let ev = Core.Radio.Churn.evolve ~seed:9 env cfg in
      let inc =
        Incremental.create ~ctx:(ctx_with_jobs jobs) ~r:3. (Evolve.space ev)
      in
      for s = 1 to 25 do
        let space, dirty = Evolve.step ev in
        let res = Incremental.step inc ~dirty space in
        let errs =
          mismatches ~jobs_list:[ jobs ] ~r:3.
            ~label:(Printf.sprintf "radio step=%d" s)
            res space
        in
        if errs <> [] then Alcotest.fail (String.concat "\n" errs)
      done)
    [ 1; 4 ]

(* Work accounting sanity on the acceptance trace: savings must be
   meaningful (> 1) and the dirty-row counter must match the trace. *)
let test_savings_accounting () =
  let cfg = { small_cfg with n = 24 } in
  let ev = Evolve.create ~seed:5 cfg in
  let inc = Incremental.create ~ctx:Ctx.uncached (Evolve.space ev) in
  let total_dirty = ref 0 in
  for _ = 1 to 40 do
    let space, dirty = Evolve.step ev in
    total_dirty := !total_dirty + Array.length dirty;
    ignore (Incremental.step inc ~dirty space)
  done;
  let st = Incremental.stats inc in
  Testutil.check_int "steps counted" 40 st.Incremental.steps;
  Testutil.check_int "dirty nodes counted" !total_dirty
    st.Incremental.dirty_nodes;
  Testutil.check_true "incremental swept less than full"
    (st.Incremental.triples_swept < st.Incremental.triples_full);
  Testutil.check_true "savings ratio sane" (Incremental.savings st >= 1.)

let suite =
  [
    ( "differential",
      [
        Testutil.case "100-step churn trace bit-identical (jobs 1 and 4)"
          test_hundred_step_trace;
        Testutil.case "radio-environment base trace bit-identical"
          test_radio_base_trace;
        Testutil.case "work accounting and savings" test_savings_accounting;
      ] );
  ]
