(* The fault-tolerance subsystem: Validate diagnose/repair, the strict and
   repairing CSV doors, the supervised pool's error propagation and
   deadlines, experiment isolation, and the fault injector. *)

open Testutil
module D = Core.Decay.Decay_space
module Io = Core.Decay.Decay_io
module V = Core.Decay.Validate
module C = Core.Decay.Corrupt
module Met = Core.Decay.Metricity
module Ctx = Core.Decay.Ctx
module Par = Core.Prelude.Parallel
module Iso = Bg_experiments.Isolate
module Reg = Bg_experiments.Registry

let copy_matrix m = Array.map Array.copy m

(* A valid 4x4 symmetric decay matrix to corrupt in targeted ways. *)
let valid4 () =
  [|
    [| 0.; 2.; 3.; 4. |];
    [| 2.; 0.; 5.; 6. |];
    [| 3.; 5.; 0.; 7. |];
    [| 4.; 6.; 7.; 0. |];
  |]

(* ------------------------------------------------------- Validate.diagnose *)

let test_diagnose_clean () =
  let d = V.diagnose (valid4 ()) in
  check_true "no issues" (d.V.issues = []);
  check_int "nothing truncated" 0 d.V.truncated;
  (match d.V.profile with
  | None -> Alcotest.fail "clean matrix must have a profile"
  | Some p ->
      check_int "n" 4 p.V.n;
      check_int "bad cells" 0 p.V.bad_cells;
      check_int "asymmetric pairs" 0 p.V.asymmetric_pairs;
      check_float "worst asymmetry" 1. p.V.worst_asymmetry);
  check_true "is_valid" (V.is_valid (valid4 ()))

let test_diagnose_cells () =
  let m = valid4 () in
  m.(0).(2) <- Float.nan;
  m.(1).(0) <- -3.;
  m.(2).(2) <- 0.5;
  let d = V.diagnose m in
  check_int "three issues" 3 (List.length d.V.issues);
  let has p = List.exists p d.V.issues in
  check_true "NaN reported"
    (has (function V.Not_finite { i = 0; j = 2; _ } -> true | _ -> false));
  check_true "negative reported"
    (has (function
      | V.Non_positive { i = 1; j = 0; value } -> value = -3.
      | _ -> false));
  check_true "diagonal reported"
    (has (function V.Nonzero_diagonal { i = 2; _ } -> true | _ -> false));
  match d.V.profile with
  | None -> Alcotest.fail "cell defects keep the profile"
  | Some p -> check_int "bad cells counted" 3 p.V.bad_cells

let test_diagnose_shape () =
  let d = V.diagnose [||] in
  check_true "empty reported" (d.V.issues = [ V.Empty ]);
  check_true "no profile for empty" (d.V.profile = None);
  let d = V.diagnose [| [| 0.; 1. |]; [| 1. |] |] in
  check_true "ragged reported"
    (List.exists
       (function
         | V.Ragged { row = 1; expected = 2; got = 1 } -> true | _ -> false)
       d.V.issues);
  check_true "no profile for ragged" (d.V.profile = None)

let test_diagnose_truncation () =
  (* An all-NaN off-diagonal 16x16 matrix has 240 defects; the diagnosis
     keeps max_reported verbatim and counts the rest. *)
  let n = 16 in
  let m =
    Array.init n (fun i ->
        Array.init n (fun j -> if i = j then 0. else Float.nan))
  in
  let d = V.diagnose m in
  check_int "reported prefix" V.max_reported (List.length d.V.issues);
  check_int "rest counted" ((n * (n - 1)) - V.max_reported) d.V.truncated

let test_censoring_profile () =
  let m = valid4 () in
  (* Saturate three off-diagonal cells at a common ceiling. *)
  m.(0).(3) <- 9.;
  m.(3).(0) <- 9.;
  m.(1).(3) <- 9.;
  let d = V.diagnose m in
  match d.V.profile with
  | None -> Alcotest.fail "profile expected"
  | Some p ->
      check_int "censored cells" 3 p.V.censored_cells;
      check_float "censor floor" 9. p.V.censor_floor

(* --------------------------------------------------------- Validate.repair *)

let test_repair_reject () =
  let m = valid4 () in
  (match V.repair ~policy:V.Reject m with
  | Ok (m', r) ->
      check_true "valid input passes through" (m' == m);
      check_int "nothing clamped" 0 r.V.cells_clamped
  | Error _ -> Alcotest.fail "valid matrix must not be rejected");
  m.(0).(1) <- infinity;
  match V.repair ~policy:V.Reject m with
  | Ok _ -> Alcotest.fail "Reject must fail on a defect"
  | Error d -> check_true "diagnosis carried" (d.V.issues <> [])

let test_repair_clamp () =
  let m = valid4 () in
  m.(0).(1) <- infinity;
  m.(2).(3) <- -1.;
  m.(3).(3) <- 4.;
  match V.repair ~policy:(V.Clamp 37.) m with
  | Error _ -> Alcotest.fail "Clamp repairs cell defects"
  | Ok (m', r) ->
      check_true "input not mutated" (m.(0).(1) = infinity);
      check_float "bad cell clamped" 37. m'.(0).(1);
      check_float "negative clamped" 37. m'.(2).(3);
      check_float "diagonal zeroed" 0. m'.(3).(3);
      check_int "clamp count" 2 r.V.cells_clamped;
      check_int "diagonal count" 1 r.V.diagonal_zeroed;
      check_true "result valid" (V.is_valid m')

let test_repair_clamp_bad_value () =
  Alcotest.check_raises "clamp value must be finite positive"
    (Invalid_argument "Validate.repair: clamp value must be finite and \
                       positive") (fun () ->
      ignore (V.repair ~policy:(V.Clamp Float.nan) (valid4 ())))

let test_repair_symmetrize () =
  let m = valid4 () in
  m.(0).(1) <- Float.nan;
  (match V.repair ~policy:V.Symmetrize m with
  | Error _ -> Alcotest.fail "mirror is intact, repair must succeed"
  | Ok (m', r) ->
      check_float "patched from mirror" 2. m'.(0).(1);
      check_int "mirror count" 1 r.V.cells_mirrored;
      check_true "result valid" (V.is_valid m'));
  m.(1).(0) <- infinity;
  match V.repair ~policy:V.Symmetrize m with
  | Ok _ -> Alcotest.fail "both directions bad cannot symmetrize"
  | Error d -> check_true "diagnosis carried" (d.V.issues <> [])

let test_repair_drop_nodes () =
  let m = valid4 () in
  (* Node 2's transceiver died: its whole row and column are garbage. *)
  for j = 0 to 3 do
    if j <> 2 then begin
      m.(2).(j) <- Float.nan;
      m.(j).(2) <- Float.nan
    end
  done;
  (match V.repair ~policy:V.Drop_nodes m with
  | Error _ -> Alcotest.fail "dropping node 2 cleans the matrix"
  | Ok (m', r) ->
      check_true "node 2 dropped" (r.V.dropped = [ 2 ]);
      check_int "3 nodes left" 3 (Array.length m');
      check_true "result valid" (V.is_valid m');
      (* Survivors keep their original decays: (1,3) -> (1,2) after drop. *)
      check_float "surviving decay" 6. m'.(1).(2));
  let tiny = [| [| 0.; Float.nan |]; [| 1.; 0. |] |] in
  match V.repair ~policy:V.Drop_nodes tiny with
  | Ok _ -> Alcotest.fail "fewer than two survivors must fail"
  | Error d -> check_true "diagnosis carried" (d.V.issues <> [])

let test_repair_shape_unrepairable () =
  List.iter
    (fun policy ->
      match V.repair ~policy [| [| 0.; 1. |]; [| 1. |] |] with
      | Ok _ ->
          Alcotest.fail
            ("shape defect repaired under " ^ V.policy_to_string policy)
      | Error d ->
          check_true "ragged diagnosed"
            (List.exists
               (function V.Ragged _ -> true | _ -> false)
               d.V.issues))
    [ V.Reject; V.Clamp 1.; V.Symmetrize; V.Drop_nodes ]

let test_suggested_clamp () =
  let m = valid4 () in
  m.(0).(1) <- infinity;
  check_float "largest finite off-diagonal" 7. (V.suggested_clamp m);
  check_float "fallback when nothing usable" 1.
    (V.suggested_clamp [| [| 0. |] |])

(* --------------------------- witness identity through the validation path *)

let test_witness_identity_through_repair () =
  let s = random_space ~n:8 11 in
  let m = D.matrix s in
  let via policy =
    match D.of_matrix_repaired ~name:"via" ~policy m with
    | Ok (s', _) -> s'
    | Error _ -> Alcotest.fail "valid input must survive every policy"
  in
  List.iter
    (fun policy ->
      let s' = via policy in
      (* Bit-for-bit: zero-eps float compare on values, exact witnesses. *)
      check_float ~eps:0. "zeta identical"
        (Met.zeta ~ctx:Ctx.uncached s) (Met.zeta ~ctx:Ctx.uncached s');
      check_float ~eps:0. "phi identical"
        (Met.phi ~ctx:Ctx.uncached s) (Met.phi ~ctx:Ctx.uncached s');
      let w = Met.zeta_witness ~ctx:Ctx.uncached s
      and w' = Met.zeta_witness ~ctx:Ctx.uncached s' in
      check_true "zeta witness identical" (w = w');
      let p = Met.phi_witness ~ctx:Ctx.uncached s
      and p' = Met.phi_witness ~ctx:Ctx.uncached s' in
      check_true "phi witness identical" (p = p'))
    [ V.Reject; V.Clamp 37.; V.Symmetrize; V.Drop_nodes ]

(* ------------------------------------------------------------ CSV strictness *)

let test_of_csv_empty () =
  Alcotest.check_raises "empty text"
    (Invalid_argument "Decay_io.of_csv: empty matrix (no data rows)")
    (fun () -> ignore (Io.of_csv ""));
  Alcotest.check_raises "only comments"
    (Invalid_argument "Decay_io.of_csv: empty matrix (no data rows)")
    (fun () -> ignore (Io.of_csv "# name: ghost\n\n# nothing\n"))

let test_of_csv_ragged () =
  Alcotest.check_raises "short row"
    (Invalid_argument
       "Decay_io.of_csv: data row 2 has 1 cells, expected 2 (the matrix has \
        2 data rows and must be square)") (fun () ->
      ignore (Io.of_csv "0,1\n1\n"));
  Alcotest.check_raises "rectangular"
    (Invalid_argument
       "Decay_io.of_csv: data row 1 has 3 cells, expected 2 (the matrix has \
        2 data rows and must be square)") (fun () ->
      ignore (Io.of_csv "0,1,2\n1,0,3\n"))

let test_of_csv_repaired_door () =
  let text = "0,inf\n2,0\n" in
  (match Io.of_csv_repaired ~policy:V.Symmetrize text with
  | Ok (s, r) ->
      check_float "patched from mirror" 2. (D.decay s 0 1);
      check_int "mirror count" 1 r.V.cells_mirrored
  | Error _ -> Alcotest.fail "symmetrize repairs a one-sided hole");
  match Io.of_csv_repaired ~policy:V.Reject text with
  | Ok _ -> Alcotest.fail "reject must fail on the hole"
  | Error d -> check_true "diagnosis carried" (d.V.issues <> [])

let test_atomic_save () =
  let dir = Filename.temp_file "bg-robust" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "space.csv" in
  let s = random_space ~n:6 5 in
  Io.save s path;
  let s' = Io.load path in
  check_true "round-trip through disk" (D.matrix s = D.matrix s');
  let leftovers =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> f <> "space.csv")
  in
  check_true "no temp files left behind" (leftovers = []);
  Sys.remove path;
  Unix.rmdir dir

(* ------------------------------------------------------------------- fuzz *)

let fuzz_round_trip =
  qcheck ~count:50 "csv round-trip preserves every decay bit"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let s = random_asym_space ~n:5 seed in
      let s' = Io.of_csv (Io.to_csv s) in
      D.matrix s = D.matrix s')

let fuzz_byte_soup =
  (* Arbitrary bytes either raise a cell-addressed Invalid_argument or
     parse into a fully valid space — never a crash, never an unvalidated
     space. *)
  qcheck ~count:500 "byte soup never escapes unvalidated"
    QCheck.(string_gen_of_size Gen.(0 -- 64) Gen.printable)
    (fun text ->
      match Io.of_csv text with
      | s -> V.is_valid (D.matrix s)
      | exception Invalid_argument _ -> true)

let fuzz_poisoned_cell =
  (* Take a valid space's CSV and poison one cell with NaN/Inf/negative:
     the strict door must always reject. *)
  qcheck ~count:100 "poisoned cells are always rejected"
    QCheck.(triple (int_bound 1000) (int_bound 24) (int_bound 2))
    (fun (seed, cell, kind) ->
      let n = 5 in
      let i = cell / n and j = cell mod n in
      if i = j then true
      else begin
        let s = random_asym_space ~n seed in
        let m = copy_matrix (D.matrix s) in
        m.(i).(j) <-
          (match kind with 0 -> Float.nan | 1 -> infinity | _ -> -1.);
        let text =
          String.concat "\n"
            (Array.to_list
               (Array.map
                  (fun row ->
                    String.concat ","
                      (Array.to_list (Array.map (Printf.sprintf "%.17g") row)))
                  m))
        in
        match Io.of_csv text with
        | _ -> false
        | exception Invalid_argument _ -> true
      end)

(* -------------------------------------------------- Parallel fault paths *)

let sum_range jobs =
  Par.map_reduce_chunks ~jobs ~lo:0 ~hi:100 ~neutral:0
    ~map:(fun lo hi ->
      let s = ref 0 in
      for i = lo to hi - 1 do
        s := !s + i
      done;
      !s)
    ~combine:( + )

let test_map_raise_propagates () =
  (* Acceptance criterion: a raising task re-raises at jobs = 1 and 4, and
     the (shared) pool is fully usable afterwards. *)
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "raise propagates at jobs=%d" jobs)
        (Failure "boom") (fun () ->
          ignore
            (Par.map_reduce_chunks ~jobs ~lo:0 ~hi:100 ~neutral:0
               ~map:(fun lo _ -> if lo >= 0 then failwith "boom" else 0)
               ~combine:( + )));
      check_int
        (Printf.sprintf "pool usable after crash at jobs=%d" jobs)
        4950 (sum_range jobs))
    [ 1; 4 ]

let fuzz_raise_every_job_count =
  qcheck ~count:50 "Parallel.run propagates a raising task at any job count"
    QCheck.(pair (int_range 1 8) (int_bound 7))
    (fun (jobs, bad) ->
      let pool = Par.create ~num_domains:(jobs - 1) () in
      let fns =
        Array.init 8 (fun k ->
            if k = bad then fun () -> failwith "fuzz-boom" else fun () -> k)
      in
      let raised =
        match Par.run ~pool fns with
        | _ -> false
        | exception Failure msg -> msg = "fuzz-boom"
      in
      (* The pool survives its poisoned batch. *)
      let alive =
        Par.run ~pool (Array.init 8 (fun k () -> k)) = Array.init 8 Fun.id
      in
      Par.shutdown pool;
      raised && alive)

let test_run_first_error_wins () =
  (* Sequentially (0-worker pool) "first recorded" is exactly lowest index. *)
  let pool = Par.create ~num_domains:0 () in
  Alcotest.check_raises "lowest index wins sequentially" (Failure "e2")
    (fun () ->
      ignore
        (Par.run ~pool
           [|
             (fun () -> 0);
             (fun () -> failwith "e2");
             (fun () -> failwith "e3");
           |]));
  Par.shutdown pool

let test_with_deadline () =
  (* A busy loop that polls: must be cut off with the typed Timeout. *)
  Alcotest.check_raises "budget enforced" Par.Timeout (fun () ->
      Par.with_deadline ~seconds:0.02 (fun () ->
          while true do
            Par.check_deadline ()
          done));
  (* The ambient deadline is restored afterwards... *)
  Par.check_deadline ();
  check_int "sweeps run normally after a timeout" 4950 (sum_range 1);
  (* ...and nesting takes the minimum: the inner budget cuts off first. *)
  Alcotest.check_raises "nested budgets take the min" Par.Timeout (fun () ->
      Par.with_deadline ~seconds:60. (fun () ->
          Par.with_deadline ~seconds:0.02 (fun () ->
              while true do
                Par.check_deadline ()
              done)))

let test_deadline_cuts_sweeps () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "sweep times out at jobs=%d" jobs)
        Par.Timeout (fun () ->
          Par.with_deadline ~seconds:0.02 (fun () ->
              ignore
                (Par.map_reduce_chunks ~jobs ~lo:0 ~hi:1_000 ~neutral:0
                   ~map:(fun lo hi ->
                     (* A long chunk polls explicitly, like the real
                        sweeps do at their boundaries. *)
                     ignore (Unix.sleepf 0.03);
                     Par.check_deadline ();
                     hi - lo)
                   ~combine:( + )))))
    [ 1; 4 ]

let test_pool_self_heals () =
  let pool = Par.create ~num_domains:2 () in
  check_int "workers up" 2 (Par.num_live pool);
  check_int "no trapped exceptions yet" 0 (Par.trapped_exceptions pool);
  (* run captures task exceptions, so the workers never see them... *)
  (try
     ignore (Par.run ~pool (Array.init 4 (fun _ () -> failwith "x")))
   with Failure _ -> ());
  check_int "workers survive captured errors" 2 (Par.num_live pool);
  (* ...and heal is safe to call on a healthy pool. *)
  Par.heal pool;
  check_int "heal is a no-op when healthy" 2 (Par.num_live pool);
  Par.shutdown pool;
  check_int "shutdown drains the pool" 0 (Par.num_live pool)

(* ---------------------------------------------------------------- Isolate *)

let entry id run = { Reg.id; claim = "test entry"; run }

let test_isolate_finishes () =
  let e =
    entry "OK" (fun () ->
        Bg_experiments.Outcome.make ~detail:"fine" true)
  in
  let r = Iso.run_entry e in
  check_true "passed" (Iso.passed r);
  check_int "single attempt" 1 r.Iso.attempts;
  check_true "verdict PASS" (Iso.verdict r = "PASS");
  check_int "exit code 0" 0 (Iso.exit_code [ r ])

let test_isolate_crash_retries () =
  let calls = ref 0 in
  let e =
    entry "KABOOM" (fun () ->
        incr calls;
        failwith "kaboom")
  in
  let r = Iso.run_entry ~retries:2 ~backoff_s:0.001 e in
  (match r.Iso.status with
  | Iso.Crashed info ->
      check_true "exception text kept"
        (String.length info.Iso.exn > 0
        && String.exists (fun _ -> true) info.Iso.exn)
  | _ -> Alcotest.fail "must be Crashed");
  check_int "retries consumed" 3 r.Iso.attempts;
  check_int "every attempt ran" 3 !calls;
  check_true "verdict CRASH" (Iso.verdict r = "CRASH");
  check_int "exit code 1" 1 (Iso.exit_code [ r ])

let test_isolate_retry_recovers () =
  let calls = ref 0 in
  let e =
    entry "FLAKY" (fun () ->
        incr calls;
        if !calls < 3 then failwith "transient";
        Bg_experiments.Outcome.make ~detail:"recovered" true)
  in
  let r = Iso.run_entry ~retries:5 ~backoff_s:0.001 e in
  check_true "eventually passed" (Iso.passed r);
  check_int "two crashes then success" 3 r.Iso.attempts

let test_isolate_timeout () =
  let e =
    entry "HANG" (fun () ->
        while true do
          Par.check_deadline ()
        done;
        assert false)
  in
  let r = Iso.run_entry ~timeout_s:0.02 e in
  (match r.Iso.status with
  | Iso.Timed_out s -> check_float "budget recorded" 0.02 s
  | _ -> Alcotest.fail "must be Timed_out");
  check_true "verdict TIMEOUT" (Iso.verdict r = "TIMEOUT")

let test_isolate_run_always_completes () =
  let ran = ref [] in
  let mk id status =
    entry id (fun () ->
        ran := id :: !ran;
        match status with
        | `Crash -> failwith "dead"
        | `Fail -> Bg_experiments.Outcome.make ~detail:"no" false
        | `Pass -> Bg_experiments.Outcome.make ~detail:"yes" true)
  in
  let results =
    Iso.run_entries ~backoff_s:0.001
      [ mk "A" `Pass; mk "B" `Crash; mk "C" `Fail; mk "D" `Pass ]
  in
  check_int "every entry ran" 4 (List.length !ran);
  check_int "every entry reported" 4 (List.length results);
  check_true "crash and failure both fail the run" (not (Iso.all_ok results));
  check_int "faithful exit code" 1 (Iso.exit_code results);
  check_true "tail entries still ran"
    (List.mem "D" !ran && List.mem "C" !ran)

(* ---------------------------------------------------------------- Corrupt *)

(* NaN-aware cell equality (NaN <> NaN structurally, but an injected hole
   is the same hole on every run). *)
let same_matrix a b =
  a |> Array.for_all2
         (Array.for_all2 (fun x y ->
              Int64.bits_of_float x = Int64.bits_of_float y))
         b

let test_corrupt_deterministic () =
  let s = random_space ~n:10 21 in
  List.iter
    (fun mode ->
      let a = C.apply ~seed:7 mode s and b = C.apply ~seed:7 mode s in
      check_true (C.label mode ^ " deterministic") (same_matrix a b);
      (* Censoring is a percentile clamp — deterministic by construction,
         so the seed only matters for the randomized modes. *)
      match mode with
      | C.Censor _ -> ()
      | _ ->
          let c = C.apply ~seed:8 mode s in
          check_true (C.label mode ^ " seed matters") (not (same_matrix a c)))
    C.default_suite

let test_corrupt_modes () =
  let s = random_space ~n:12 22 in
  let count p m =
    Array.fold_left
      (fun acc row ->
        acc + Array.fold_left (fun a v -> if p v then a + 1 else a) 0 row)
      0 m
  in
  let drop = C.apply ~seed:3 (C.Dropout 0.3) s in
  check_true "dropout injects infinities"
    (count (fun v -> v = infinity) drop > 0);
  let holes = C.apply ~seed:3 (C.Nan_holes 0.3) s in
  check_true "nan holes injected" (count Float.is_nan holes > 0);
  let censored = C.apply ~seed:3 (C.Censor 60.) s in
  check_true "censoring keeps the matrix valid" (V.is_valid censored);
  let spiked = C.apply ~seed:3 (C.Spikes { prob = 0.3; factor = 100. }) s in
  check_true "spikes stay finite positive" (V.is_valid spiked);
  check_true "spikes moved some cells" (spiked <> D.matrix s)

let suite =
  [
    ( "robustness.validate",
      [
        case "clean diagnosis" test_diagnose_clean;
        case "cell defects addressed" test_diagnose_cells;
        case "shape defects" test_diagnose_shape;
        case "issue list truncation" test_diagnose_truncation;
        case "censoring profile" test_censoring_profile;
        case "repair: reject" test_repair_reject;
        case "repair: clamp" test_repair_clamp;
        case "repair: clamp value checked" test_repair_clamp_bad_value;
        case "repair: symmetrize" test_repair_symmetrize;
        case "repair: drop nodes" test_repair_drop_nodes;
        case "repair: shape unrepairable" test_repair_shape_unrepairable;
        case "suggested clamp" test_suggested_clamp;
        case "witnesses identical through repair path"
          test_witness_identity_through_repair;
      ] );
    ( "robustness.io",
      [
        case "of_csv rejects empty" test_of_csv_empty;
        case "of_csv rejects ragged" test_of_csv_ragged;
        case "of_csv_repaired door" test_of_csv_repaired_door;
        case "atomic save" test_atomic_save;
        fuzz_round_trip;
        fuzz_byte_soup;
        fuzz_poisoned_cell;
      ] );
    ( "robustness.parallel",
      [
        case "raising map re-raises, pool survives" test_map_raise_propagates;
        fuzz_raise_every_job_count;
        case "first error wins" test_run_first_error_wins;
        case "with_deadline cuts busy loops" test_with_deadline;
        case "deadline cuts sweeps" test_deadline_cuts_sweeps;
        case "pool self-heals" test_pool_self_heals;
      ] );
    ( "robustness.isolate",
      [
        case "finished entry" test_isolate_finishes;
        case "crash with retries" test_isolate_crash_retries;
        case "retry recovers a flaky entry" test_isolate_retry_recovers;
        case "cooperative timeout" test_isolate_timeout;
        case "runner always completes" test_isolate_run_always_completes;
      ] );
    ( "robustness.corrupt",
      [
        case "deterministic by seed" test_corrupt_deterministic;
        case "every mode behaves" test_corrupt_modes;
      ] );
  ]
