module D = Bg_decay

type report = {
  name : string;
  n : int;
  symmetric : bool;
  zeta : float;
  zeta_witness : D.Metricity.witness;
  phi : float;
  phi_log : float;
  assouad : float;
  quasi_doubling : float;
  independence : int;
  max_guards : int;
  is_fading_space : bool;
  gamma : (float * float) list;
}

type config = { ctx : D.Ctx.t; gamma_at : float list }

let default = { ctx = D.Ctx.default; gamma_at = [] }

let run ?(config = default) space =
  let module Obs = Bg_prelude.Obs in
  let { ctx; gamma_at } = config in
  let exact_limit = ctx.D.Ctx.exact_limit in
  Obs.with_span
    ~attrs:
      [
        ("space", Obs.S (D.Decay_space.name space));
        ("n", Obs.I (D.Decay_space.n space));
        ("cache", Obs.B ctx.D.Ctx.cache);
      ]
    "analyze"
  @@ fun () ->
  let zeta_witness = D.Metricity.zeta_witness ~ctx space in
  let zeta = zeta_witness.D.Metricity.value in
  let phi = D.Metricity.phi ~ctx space in
  let assouad = D.Dimension.assouad ?exact_limit space in
  {
    name = D.Decay_space.name space;
    n = D.Decay_space.n space;
    symmetric = D.Decay_space.is_symmetric space;
    zeta;
    zeta_witness;
    phi;
    phi_log = Bg_prelude.Numerics.log2 phi;
    assouad;
    quasi_doubling = D.Dimension.quasi_doubling ~zeta space;
    independence = D.Dimension.independence_dimension ?exact_limit space;
    max_guards = D.Dimension.max_guard_count space;
    is_fading_space = assouad < 1.;
    gamma = List.map (fun r -> (r, D.Fading.gamma ~ctx space ~r)) gamma_at;
  }

let to_table r =
  let open Bg_prelude.Table in
  let t = create ~title:("decay space analysis: " ^ r.name) [ "parameter"; "value" ] in
  add_row t [ S "nodes"; I r.n ];
  add_row t [ S "symmetric"; S (string_of_bool r.symmetric) ];
  add_row t [ S "metricity zeta"; F4 r.zeta ];
  add_row t [ S "phi"; F4 r.phi ];
  add_row t [ S "phi_log = lg phi"; F4 r.phi_log ];
  add_row t [ S "assouad dimension (decay)"; F4 r.assouad ];
  add_row t [ S "quasi-metric doubling A'"; F4 r.quasi_doubling ];
  add_row t [ S "independence dimension"; I r.independence ];
  add_row t [ S "max guard-set size"; I r.max_guards ];
  add_row t [ S "fading space (A < 1)"; S (string_of_bool r.is_fading_space) ];
  List.iter
    (fun (sep, g) ->
      add_row t [ S (Printf.sprintf "gamma(r = %g)" sep); F4 g ])
    r.gamma;
  t

let pp fmt r = Format.pp_print_string fmt (Bg_prelude.Table.render (to_table r))
