(** One-call analysis of a decay space: every parameter the paper defines,
    in one report.  This is the "what kind of space am I holding?"
    entry point a downstream user reaches for first. *)

type report = {
  name : string;
  n : int;
  symmetric : bool;
  zeta : float;  (** metricity (Definition 2.2) *)
  zeta_witness : Bg_decay.Metricity.witness;
  phi : float;  (** relaxed-triangle constant (§4.2) *)
  phi_log : float;  (** [lg phi] *)
  assouad : float;  (** decay-space Assouad dimension estimate (Def. 3.2) *)
  quasi_doubling : float;  (** doubling dimension of the quasi-metric (A') *)
  independence : int;  (** independence dimension (Def. 4.1) *)
  max_guards : int;  (** largest greedy guard set (Welzl duality) *)
  is_fading_space : bool;  (** Assouad < 1 (Definition 3.3) *)
  gamma : (float * float) list;
      (** fading parameter [gamma(r)] at the requested separations *)
}

type config = {
  ctx : Bg_decay.Ctx.t;
      (** shared kernel configuration: tolerance, parallelism, memoization
          and the exact-solver size limit ({!Bg_decay.Ctx}).  Results are
          identical at every job count. *)
  gamma_at : float list;
      (** separation values [r] at which to evaluate the fading parameter
          (default: none — it is the costliest field) *)
}
(** Knobs for {!run}.  Build one with record update on {!default} so new
    fields don't break call sites:
    [{ default with ctx = Bg_decay.Ctx.make ~jobs:4 () }]. *)

val default : config
(** No gamma evaluations, {!Bg_decay.Ctx.default} kernel settings. *)

val run : ?config:config -> Bg_decay.Decay_space.t -> report
(** Compute the full report (defaults to {!default}). *)

val to_table : report -> Bg_prelude.Table.t
(** Render as a two-column parameter table. *)

val pp : Format.formatter -> report -> unit
