(** One-call analysis of a decay space: every parameter the paper defines,
    in one report.  This is the "what kind of space am I holding?"
    entry point a downstream user reaches for first. *)

type report = {
  name : string;
  n : int;
  symmetric : bool;
  zeta : float;  (** metricity (Definition 2.2) *)
  zeta_witness : Bg_decay.Metricity.witness;
  phi : float;  (** relaxed-triangle constant (§4.2) *)
  phi_log : float;  (** [lg phi] *)
  assouad : float;  (** decay-space Assouad dimension estimate (Def. 3.2) *)
  quasi_doubling : float;  (** doubling dimension of the quasi-metric (A') *)
  independence : int;  (** independence dimension (Def. 4.1) *)
  max_guards : int;  (** largest greedy guard set (Welzl duality) *)
  is_fading_space : bool;  (** Assouad < 1 (Definition 3.3) *)
  gamma : (float * float) list;
      (** fading parameter [gamma(r)] at the requested separations *)
}

type config = {
  gamma_at : float list;
      (** separation values [r] at which to evaluate the fading parameter
          (default: none — it is the costliest field) *)
  exact_limit : int option;
      (** forwarded to the packing / independence solvers *)
  jobs : int option;
      (** parallelism for the triple sweeps; [None] defers to
          {!Bg_prelude.Parallel.default_jobs}.  Results are identical at
          every job count. *)
  cache : bool;
      (** reuse zeta/phi/gamma results memoized under the space's content
          digest ({!Bg_decay.Decay_space.digest}); a second [run] on a
          bit-identical matrix performs no triple-sweep work (default
          [true]) *)
}
(** Knobs for {!run}.  Build one with record update on {!default} so new
    fields don't break call sites: [{ default with jobs = Some 4 }]. *)

val default : config
(** No gamma evaluations, solver defaults, ambient parallelism. *)

val run : ?config:config -> Bg_decay.Decay_space.t -> report
(** Compute the full report (defaults to {!default}). *)

val analyze :
  ?gamma_at:float list ->
  ?exact_limit:int ->
  ?jobs:int ->
  Bg_decay.Decay_space.t ->
  report
[@@ocaml.deprecated "Use Analysis.run ~config instead."]
(** Thin wrapper over {!run} preserving the historical optional-argument
    signature. *)

val to_table : report -> Bg_prelude.Table.t
(** Render as a two-column parameter table. *)

val pp : Format.formatter -> report -> unit
