(** Loading and saving decay matrices.

    The on-disk format is plain CSV: row [i] holds the decays from node [i]
    to every node (diagonal entries must be 0).  Lines starting with [#]
    are comments; the optional header comment carries the space's name.
    This is the interchange point with real measurement campaigns: dump
    RSSI-derived decays from any tool and analyze them with [bg analyze].

    Real campaign files are messy, so two doors in: the strict one
    ({!of_csv}/{!load}) rejects any defect with a cell-addressed
    [Invalid_argument], and the repairing one
    ({!of_csv_repaired}/{!load_repaired}) routes the raw matrix through
    {!Validate.repair} and reports exactly what it fixed.  {!save} is
    atomic (temp file + rename). *)

val to_csv : Decay_space.t -> string
(** Render as CSV with a [# name: ...] header comment. *)

val parse : ?name:string -> string -> string * float array array
(** Parse CSV text to [(name, raw_matrix)] with {e no} shape or cell
    validation: rows may be ragged and cells may be NaN/Inf/nonpositive
    (those are data-quality issues for {!Validate}).  A [# name:] header
    overrides [name].
    @raise Invalid_argument only for a cell that is not a number at all,
    with its line and column. *)

val of_csv : ?name:string -> string -> Decay_space.t
(** Parse CSV text strictly (comments and blank lines ignored; a
    [# name:] header overrides [name]).  Empty and ragged matrices are
    rejected with a row/cell-addressed message, invalid cells with the
    cell-addressed messages of {!Decay_space.of_matrix}.
    @raise Invalid_argument on malformed input or an invalid matrix. *)

val of_csv_repaired :
  ?name:string ->
  policy:Validate.policy ->
  string ->
  (Decay_space.t * Validate.repair, Validate.diagnosis) result
(** Parse CSV text and build the space through {!Validate.repair} under
    the given policy.  [Ok] carries the repair report; [Error] the full
    diagnosis (including [Ragged]/[Empty], which no policy can repair).
    @raise Invalid_argument only for cells that are not numbers. *)

val with_atomic_out : ?binary:bool -> string -> (out_channel -> unit) -> unit
(** [with_atomic_out path write] runs [write] on a fresh temp file in
    [path]'s directory and renames it into place, so readers never
    observe a torn file and a crash cannot clobber an existing one with
    a truncated one.  On any exception the temp file is removed and the
    destination is untouched.  Every writer in this module uses it; the
    persistent serve store ({!Bg_serve.Store}) reuses it for its
    snapshots.  [binary] (default [false]) selects [open_out_bin]. *)

val save : Decay_space.t -> string -> unit
(** Write to a file path atomically ({!with_atomic_out}). *)

val load : string -> Decay_space.t
(** Read from a file path strictly; the name defaults to the basename. *)

val load_repaired :
  policy:Validate.policy ->
  string ->
  (Decay_space.t * Validate.repair, Validate.diagnosis) result
(** Read from a file path through {!Validate.repair}. *)

(** {1 Raw binary matrices (out-of-core)}

    A second on-disk format for large matrices: a 16-byte header (magic
    tag + node count) followed by the [n*n] float64 cells, row-major,
    little-endian — bit-identical to the space's in-memory Bigarray on
    every supported platform.  {!load_raw_mmap} adopts the file pages by
    [mmap] without copying, so a multi-GB matrix can be analyzed
    out-of-core; the OS pages cells in as the kernels stream over them. *)

val save_raw : Decay_space.t -> string -> unit
(** Write the raw binary format atomically (temp file + rename), like
    {!save}. *)

val save_raw_fn : n:int -> (int -> int -> float) -> string -> unit
(** Write the raw binary format from a cell oracle [f i j] without ever
    materializing the matrix: cells are streamed one row at a time, so
    memory stays O(n) for matrices far beyond RAM.  Atomic like
    {!save_raw}.  No cell validation is performed — pair with
    [load_raw ~validate:true] when the oracle is untrusted.
    @raise Invalid_argument if [n < 1]. *)

val load_raw : ?validate:bool -> string -> Decay_space.t
(** Read a raw binary matrix into fresh memory.  [validate] (default
    [true]) runs the standard cell checks.
    @raise Invalid_argument on a bad header, a size mismatch, or (when
    validating) any invalid cell. *)

val load_raw_mmap : ?validate:bool -> string -> Decay_space.t
(** Memory-map a raw binary matrix read-only, zero-copy
    ({!Decay_space.of_bigarray}).  [validate] defaults to [false]: the
    point of mapping is out-of-core sizes where an eager O(n^2) touch of
    every page defeats it — enable it for untrusted files you could
    afford to {!load_raw} anyway.  The file must outlive the returned
    space unmodified.
    @raise Invalid_argument on a bad header or a size mismatch. *)
