(** Time-varying decay spaces: mobility, correlated shadowing and
    speed-dependent fast fading over a static large-scale base.

    Real signal environments are not only non-geometric — they churn.
    [Evolve] turns a static base loss (geometric path loss by default, or
    any caller-supplied positive decay of two positions, e.g. a radio
    environment with walls) into a {e stream} of decay spaces:

    - {b Mobility}: random-waypoint motion in a [side x side] area — each
      node travels to a uniform waypoint at a per-trip speed drawn from
      [[speed_min, speed_max]], then pauses for a time drawn from
      [[pause_min, pause_max]].  Nodes that did not move in a step leave
      their rows and columns bit-untouched.
    - {b Correlated shadowing}: a per-ordered-link log-normal shadow field
      [S] (dB) updated with the classical Gudmundson mixing
      [S' = c * S + sqrt(1 - c^2) * N(0, shadow_std_db)] where
      [c = exp (-(dp + dq) / corr_dist)] and [dp], [dq] are the step
      displacements of the endpoints.  Stationary links keep their shadow
      exactly; the stationary variance is [shadow_std_db^2] by
      construction.
    - {b Fast fading}: a fresh per-link dB deviate each step a link
      endpoint moves, with sigma picked by the link speed — 0 when
      stationary, [fade_low_db] below [speed_threshold] (m/s of combined
      endpoint motion), [fade_high_db] at or above it.

    Every draw flows through one {!Bg_prelude.Rng.t} seeded at {!create},
    in a fixed iteration order, and no parallelism is involved: a
    trajectory is bit-reproducible from [(config, seed)] at any job
    count.  The per-step dirty set (nodes that moved) is exactly the set
    of rows/columns whose cells may differ from the previous step — the
    contract {!Incremental} relies on. *)

type config = {
  n : int;  (** number of nodes *)
  side : float;  (** side of the square arena (m) *)
  speed_min : float;  (** per-trip speed lower bound (m/s) *)
  speed_max : float;  (** per-trip speed upper bound (m/s) *)
  pause_min : float;  (** waypoint pause lower bound (s) *)
  pause_max : float;  (** waypoint pause upper bound (s) *)
  dt : float;  (** seconds of simulated time per {!step} *)
  corr_dist : float;
      (** shadow decorrelation distance (m): displacement at which the
          mixing coefficient falls to [1/e] *)
  shadow_std_db : float;  (** stationary shadowing std (dB); 0 disables *)
  fade_low_db : float;  (** fast-fade sigma below [speed_threshold] (dB) *)
  fade_high_db : float;  (** fast-fade sigma at/above [speed_threshold] *)
  speed_threshold : float;
      (** combined endpoint speed (m/s) separating slow from fast fading *)
  alpha : float;  (** path-loss exponent of the default geometric base *)
  d_min : float;  (** distance floor of the default base (m) *)
}

val default : config
(** 64 nodes in a 30 m arena, speeds 1–3 m/s, pauses 2–8 s, [dt = 1],
    [corr_dist = 10], 4 dB shadowing, 1/3 dB slow/fast fading split at
    2 m/s, [alpha = 3], [d_min = 1]. *)

type t
(** Mutable evolution state: positions, trip phases, shadow and fade
    fields, and the current decay space. *)

val create :
  ?base:(Bg_geom.Point.t -> Bg_geom.Point.t -> float) ->
  ?name:string ->
  seed:int ->
  config ->
  t
(** Fresh state at simulated time 0.  [base p q] is the large-scale decay
    between two positions — strictly positive and finite for all
    positions in the arena (default: [max d_min (dist p q) ** alpha],
    geometric path loss).  The initial shadow field is drawn at the
    stationary distribution [N(0, shadow_std_db^2)]; fades start at 0.
    @raise Invalid_argument on a non-positive [n], [dt], [side] or a
    negative speed/pause/std. *)

val config : t -> config

val space : t -> Decay_space.t
(** The current decay space (step [t] after [t] calls to {!step}). *)

val positions : t -> Bg_geom.Point.t array
(** Current node positions (a copy). *)

val step_count : t -> int

val step : t -> Decay_space.t * int array
(** Advance simulated time by [dt]: move nodes, mix the shadow field,
    redraw fades on moving links, rebuild the changed cells.  Returns the
    new space together with the sorted array of {e dirty} nodes (nodes
    that moved this step).  Cells [(i, j)] with both [i] and [j] clean
    are bit-identical to the previous space's. *)

val mixing : corr_dist:float -> delta:float -> float
(** The shadow mixing coefficient [exp (-delta / corr_dist)] for a link
    whose endpoints moved a combined [delta] metres — exposed for
    property tests: it is 1 at [delta = 0] and strictly decreasing in
    [delta]. *)

val shadow_field : t -> float array array
(** A copy of the current per-ordered-link shadow field (dB), for
    stationarity diagnostics. *)
