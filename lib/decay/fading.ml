module Memo = Bg_prelude.Memo
module F = Decay_space.Flat

let is_separated d ~r nodes =
  let rec pairs = function
    | [] -> true
    | x :: rest ->
        List.for_all
          (fun y -> Decay_space.decay d x y >= r && Decay_space.decay d y x >= r)
          rest
        && pairs rest
  in
  pairs nodes

let interference_at d ~z ~senders ~power =
  List.fold_left
    (fun acc x -> acc +. (power /. Decay_space.decay d x z))
    0. senders

(* Maximize sum of weights over an independent set of the conflict graph
   [compat]: exact branch and bound with a remaining-weight-sum bound, with
   a node budget that falls back to the greedy incumbent on exhaustion. *)
let weighted_mis ~weights ~compat =
  let k = Array.length weights in
  (* Order candidates by decreasing weight: good incumbents early. *)
  let order = Array.init k Fun.id in
  Array.sort (fun i j -> Float.compare weights.(j) weights.(i)) order;
  (* Greedy incumbent. *)
  let greedy_pick = ref [] in
  Array.iter
    (fun i ->
      if List.for_all (fun j -> compat i j) !greedy_pick then
        greedy_pick := i :: !greedy_pick)
    order;
  let best_set = ref !greedy_pick in
  let best_val =
    ref (List.fold_left (fun a i -> a +. weights.(i)) 0. !greedy_pick)
  in
  let suffix_weight = Array.make (k + 1) 0. in
  for idx = k - 1 downto 0 do
    suffix_weight.(idx) <- suffix_weight.(idx + 1) +. weights.(order.(idx))
  done;
  let budget = ref 2_000_000 in
  let rec go idx current current_val =
    decr budget;
    if !budget > 0 && idx < k then begin
      if current_val +. suffix_weight.(idx) > !best_val then begin
        let i = order.(idx) in
        if List.for_all (fun j -> compat i j) current then begin
          let v = current_val +. weights.(i) in
          if v > !best_val then begin
            best_val := v;
            best_set := i :: current
          end;
          go (idx + 1) (i :: current) v
        end;
        go (idx + 1) current current_val
      end
    end
  in
  go 0 [] 0.;
  (!best_val, !best_set)

let gamma_z ?(exact_limit = 24) d ~z ~r =
  let n = Decay_space.n d in
  (* Flat views: [zrow] is row z of the matrix (decay z -> x) and [zcol]
     is row z of the transpose (decay x -> z).  Built lazily once per
     space (race-free — see {!Decay_space.Flat}) and shared by every
     listener. *)
  let f = F.data d in
  let ft = F.transpose d in
  let zrow = z * n in
  (* The inverse-decay weight row 1/f(x,z), computed once per listener z:
     the candidate weights below and any interference sums index into it
     instead of re-dividing inside the MIS search. *)
  let inv_w = Array.init n (fun x -> 1. /. F.unsafe_get ft (zrow + x)) in
  (* Candidates: nodes r-separated from z itself (z is part of the
     separated configuration, as in Theorem 2's proof where the listener
     belongs to the r-separated set S). *)
  let candidates = ref [] in
  for x = n - 1 downto 0 do
    if
      x <> z
      && F.unsafe_get ft (zrow + x) >= r
      && F.unsafe_get f (zrow + x) >= r
    then candidates := x :: !candidates
  done;
  let arr = Array.of_list !candidates in
  let k = Array.length arr in
  let weights = Array.map (fun x -> Array.unsafe_get inv_w x) arr in
  if k = 0 then (0., [])
  else begin
    let value, set =
      if k <= exact_limit then begin
        (* Tabulate the k x k compatibility relation once, walking the
           candidate rows of the flat views in blocks: the branch-and-
           bound search probes [compat] out of order and many times per
           pair, so it reads a dense byte table instead of striding the
           n-wide matrix rows. *)
        let adj = Bytes.make (k * k) '\000' in
        for i = 0 to k - 1 do
          let ri = arr.(i) * n in
          for j = i + 1 to k - 1 do
            if
              F.unsafe_get f (ri + arr.(j)) >= r
              && F.unsafe_get ft (ri + arr.(j)) >= r
            then begin
              Bytes.unsafe_set adj ((i * k) + j) '\001';
              Bytes.unsafe_set adj ((j * k) + i) '\001'
            end
          done
        done;
        let compat i j =
          i = j || Bytes.unsafe_get adj ((i * k) + j) = '\001'
        in
        weighted_mis ~weights ~compat
      end
      else begin
        let compat i j =
          i = j
          || (F.unsafe_get f ((arr.(i) * n) + arr.(j)) >= r
             && F.unsafe_get f ((arr.(j) * n) + arr.(i)) >= r)
        in
        (* Greedy by weight with one pass of single-swap improvement. *)
        let order = Array.init k Fun.id in
        Array.sort (fun i j -> Float.compare weights.(j) weights.(i)) order;
        let pick = ref [] in
        Array.iter
          (fun i ->
            if List.for_all (fun j -> compat i j) !pick then pick := i :: !pick)
          order;
        let v = List.fold_left (fun a i -> a +. weights.(i)) 0. !pick in
        (v, !pick)
      end
    in
    (r *. value, List.map (fun i -> arr.(i)) set)
  end

let gamma_cache : (string * float * int, float) Memo.t =
  Memo.create ~max_size:512 ~name:"gamma" ()

let gamma_sweep ?exact_limit ~jobs d ~r =
  let module Par = Bg_prelude.Parallel in
  let module Obs = Bg_prelude.Obs in
  (* Warm the views on the caller's thread (construction is race-free
     either way; this keeps the build out of the parallel region). *)
  ignore (F.data d);
  ignore (F.transpose d);
  Obs.with_span
    ~attrs:[ ("n", Obs.I (Decay_space.n d)); ("jobs", Obs.I jobs) ]
    "gamma_sweep"
  @@ fun () ->
  Kernel_stats.record_sweep ~triples:0;
  Par.map_reduce_chunks ~jobs ~lo:0 ~hi:(Decay_space.n d) ~neutral:0.
    ~map:(fun lo hi ->
      let best = ref 0. in
      for z = lo to hi - 1 do
        let v, _ = gamma_z ?exact_limit d ~z ~r in
        if v > !best then best := v
      done;
      !best)
    ~combine:(fun a b -> if b > a then b else a)

let gamma ?(ctx = Ctx.default) d ~r =
  let jobs = Ctx.jobs ctx in
  let exact_limit = ctx.Ctx.exact_limit in
  let compute () = gamma_sweep ?exact_limit ~jobs d ~r in
  if ctx.Ctx.cache then
    let el = match exact_limit with None -> min_int | Some k -> k in
    Memo.find_or_add gamma_cache (Decay_space.digest d, r, el) compute
  else compute ()

(* Deprecated optional-argument compat wrapper (see the mli). *)
let gamma_with ?exact_limit ?jobs ?cache d ~r =
  gamma ~ctx:(Ctx.make ?jobs ?cache ?exact_limit ()) d ~r

let cache_stats () = (Memo.hits gamma_cache, Memo.misses gamma_cache)

let clear_caches () =
  Memo.clear gamma_cache;
  Memo.reset_stats gamma_cache

let theorem2_bound ~c ~a =
  if a >= 1. then invalid_arg "Fading.theorem2_bound: requires A < 1";
  c *. (2. ** (a +. 1.)) *. (Bg_prelude.Numerics.riemann_zeta (2. -. a) -. 1.)
