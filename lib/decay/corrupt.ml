(* Seeded, realistic measurement-fault injection.  Produces *raw* matrices
   (possibly invalid on purpose) so the validation/repair pipeline — not
   the injector — decides what survives. *)

module Rng = Bg_prelude.Rng
module Obs = Bg_prelude.Obs

let m_applications = Obs.counter "corrupt.applications"
let m_cells = Obs.counter "corrupt.cells_corrupted"

type mode =
  | Dropout of float
  | Censor of float
  | Spikes of { prob : float; factor : float }
  | Nan_holes of float

let label = function
  | Dropout p -> Printf.sprintf "dropout(p=%g)" p
  | Censor pct -> Printf.sprintf "censor(p%g)" pct
  | Spikes { prob; factor } -> Printf.sprintf "spikes(p=%g,x%g)" prob factor
  | Nan_holes p -> Printf.sprintf "nan-holes(p=%g)" p

let default_suite =
  [
    Dropout 0.1;
    Censor 80.;
    Spikes { prob = 0.05; factor = 100. };
    Nan_holes 0.08;
  ]

let check_prob ~what p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Corrupt.apply: %s probability out of [0,1]" what)

let apply ~seed mode space =
  let n = Decay_space.n space in
  let m = Decay_space.matrix space in
  let g = Rng.create seed in
  (* Iterate cells in row-major order with one fixed-seed stream, so a
     given (seed, mode, space size) corrupts exactly the same cells on
     every run — faults are reproducible test vectors, not noise. *)
  let changed = ref 0 in
  let each_off_diag f =
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then begin
          let v = m.(i).(j) in
          let v' = f g v in
          (* Float.equal is total (NaN = NaN), so a NaN hole punched into
             an already-NaN cell is correctly not counted as a change. *)
          if not (Float.equal v v') then incr changed;
          m.(i).(j) <- v'
        end
      done
    done
  in
  (match mode with
  | Dropout p ->
      check_prob ~what:"dropout" p;
      (* A link with no usable measurement: infinite decay (no signal). *)
      each_off_diag (fun g v -> if Rng.bernoulli g p then infinity else v)
  | Nan_holes p ->
      check_prob ~what:"nan-holes" p;
      (* A logging hole: the cell exists but holds NaN. *)
      each_off_diag (fun g v -> if Rng.bernoulli g p then Float.nan else v)
  | Censor pct ->
      if not (pct >= 0. && pct <= 100.) then
        invalid_arg "Corrupt.apply: censor percentile out of [0,100]";
      (* Noise-floor censoring: every decay above the floor (the pct-th
         percentile of the off-diagonal decays) is reported as the floor
         itself.  The result is a *valid* matrix with a saturated plateau —
         exactly what Validate's censoring profile is built to flag. *)
      let values = ref [] in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then values := m.(i).(j) :: !values
        done
      done;
      let values = Array.of_list !values in
      if Array.length values > 0 then begin
        let floor_v = Bg_prelude.Stats.percentile values pct in
        each_off_diag (fun _ v -> Float.min v floor_v)
      end
  | Spikes { prob; factor } ->
      check_prob ~what:"spike" prob;
      if not (Float.is_finite factor && factor > 0.) then
        invalid_arg "Corrupt.apply: spike factor must be finite positive";
      (* A multipath outlier: the measured decay is off by a large
         multiplicative factor (alternating up/down per draw). *)
      each_off_diag (fun g v ->
          if Rng.bernoulli g prob then
            if Rng.bernoulli g 0.5 then v *. factor else v /. factor
          else v));
  Obs.incr m_applications;
  Obs.add m_cells !changed;
  m
