let to_csv d =
  let n = Decay_space.n d in
  let buf = Buffer.create (n * n * 8) in
  Buffer.add_string buf ("# name: " ^ Decay_space.name d ^ "\n");
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if j > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%.17g" (Decay_space.decay d i j))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* Raw CSV -> (name, matrix).  Cells must be numbers (NaN/Inf parse fine —
   they are data-quality issues for [Validate], not parse errors) but no
   shape or cell validation happens here: [of_csv] adds the strict shape
   check, [of_csv_repaired] hands the raw matrix to the repair pipeline. *)
let parse ?(name = "csv") text =
  let lines = String.split_on_char '\n' text in
  let name = ref name in
  let rows =
    List.filter_map
      (fun (lineno, line) ->
        let line = String.trim line in
        if line = "" then None
        else if String.length line > 0 && line.[0] = '#' then begin
          let prefix = "# name:" in
          if String.length line > String.length prefix
             && String.sub line 0 (String.length prefix) = prefix
          then
            name :=
              String.trim
                (String.sub line (String.length prefix)
                   (String.length line - String.length prefix));
          None
        end
        else
          Some
            (String.split_on_char ',' line
            |> List.mapi (fun col cell ->
                   match float_of_string_opt (String.trim cell) with
                   | Some v -> v
                   | None ->
                       invalid_arg
                         (Printf.sprintf
                            "Decay_io.of_csv: not a number: %s (line %d, \
                             column %d)"
                            (String.trim cell) lineno (col + 1)))
            |> Array.of_list))
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  (!name, Array.of_list rows)

let check_shape matrix =
  let rows = Array.length matrix in
  if rows = 0 then
    invalid_arg "Decay_io.of_csv: empty matrix (no data rows)";
  Array.iteri
    (fun row r ->
      let got = Array.length r in
      if got <> rows then
        invalid_arg
          (Printf.sprintf
             "Decay_io.of_csv: data row %d has %d cells, expected %d (the \
              matrix has %d data rows and must be square)"
             (row + 1) got rows rows))
    matrix

let of_csv ?name text =
  let name, matrix = parse ?name text in
  check_shape matrix;
  Decay_space.of_matrix ~name matrix

let of_csv_repaired ?name ~policy text =
  let name, matrix = parse ?name text in
  Decay_space.of_matrix_repaired ~name ~policy matrix

(* Atomic: write a temp file in the target directory, then rename over
   the destination, so a crash mid-write can never leave a truncated
   file where a valid one used to be.  Every writer in this module (and
   the persistent serve store) goes through here. *)
let with_atomic_out ?(binary = false) path write =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".decay_io" ".tmp" in
  match
    let oc = (if binary then open_out_bin else open_out) tmp in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc);
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let save d path = with_atomic_out path (fun oc -> output_string oc (to_csv d))

let load path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_csv ~name:(Filename.basename path) text

(* ------------------------------------------------- raw binary matrices *)

(* Fixed 16-byte header: an 8-byte magic tag and the node count as a
   little-endian int64, followed by the n*n float64 cells row-major in
   IEEE-754 little-endian bit patterns — exactly the in-memory layout of
   the space's Bigarray on every supported platform, which is what makes
   {!load_raw_mmap} a zero-copy adoption of the file pages. *)
let raw_magic = "BGDECAY1"
let raw_header_len = 16

let save_raw_fn ~n f path =
  if n < 1 then invalid_arg "Decay_io.save_raw_fn: need n >= 1";
  with_atomic_out ~binary:true path (fun oc ->
      output_string oc raw_magic;
      let hdr = Bytes.create 8 in
      Bytes.set_int64_le hdr 0 (Int64.of_int n);
      output_bytes oc hdr;
      (* One row per write: memory stays O(n) however large the matrix,
         which is what lets [bg generate --raw] emit files far beyond
         RAM for the pay-per-probe geometric constructions. *)
      let row = Bytes.create (8 * n) in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Bytes.set_int64_le row (8 * j) (Int64.bits_of_float (f i j))
        done;
        output_bytes oc row
      done)

let save_raw d path =
  let f = Decay_space.Flat.data d in
  let n = Decay_space.n d in
  save_raw_fn ~n
    (fun i j -> Decay_space.Flat.unsafe_get f ((i * n) + j))
    path

let read_raw_header path fd =
  let hdr = Bytes.create raw_header_len in
  let got = Unix.read fd hdr 0 raw_header_len in
  if got <> raw_header_len || Bytes.sub_string hdr 0 8 <> raw_magic then
    invalid_arg
      (Printf.sprintf "Decay_io.load_raw: %s is not a raw decay matrix" path);
  let n64 = Bytes.get_int64_le hdr 8 in
  let n = Int64.to_int n64 in
  if n < 0 || Int64.of_int n <> n64 then
    invalid_arg
      (Printf.sprintf "Decay_io.load_raw: %s: invalid node count" path);
  let expected = Int64.add (Int64.of_int raw_header_len)
      (Int64.mul 8L (Int64.of_int (n * n))) in
  let size = (Unix.LargeFile.fstat fd).Unix.LargeFile.st_size in
  if size <> expected then
    invalid_arg
      (Printf.sprintf
         "Decay_io.load_raw: %s: truncated or oversized payload (%Ld bytes, \
          expected %Ld for n = %d)"
         path size expected n);
  n

let load_raw ?(validate = true) path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let n = read_raw_header path fd in
      let buf = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout (n * n) in
      let cells = n * n in
      let block = 4096 in
      let chunk = Bytes.create (8 * block) in
      let i = ref 0 in
      while !i < cells do
        let count = min block (cells - !i) in
        let want = 8 * count in
        let got = ref 0 in
        while !got < want do
          let r = Unix.read fd chunk !got (want - !got) in
          if r = 0 then
            invalid_arg
              (Printf.sprintf "Decay_io.load_raw: %s: unexpected EOF" path);
          got := !got + r
        done;
        for j = 0 to count - 1 do
          buf.{!i + j} <- Int64.float_of_bits (Bytes.get_int64_le chunk (8 * j))
        done;
        i := !i + count
      done;
      Decay_space.of_bigarray ~name:(Filename.basename path) ~validate n buf)

let load_raw_mmap ?(validate = false) path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let n = read_raw_header path fd in
      let ga =
        Unix.map_file fd ~pos:(Int64.of_int raw_header_len) Bigarray.Float64
          Bigarray.C_layout false [| n * n |]
      in
      Decay_space.of_bigarray ~name:(Filename.basename path) ~validate n
        (Bigarray.array1_of_genarray ga))

let load_repaired ~policy path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_csv_repaired ~name:(Filename.basename path) ~policy text
