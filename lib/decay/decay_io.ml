let to_csv d =
  let n = Decay_space.n d in
  let buf = Buffer.create (n * n * 8) in
  Buffer.add_string buf ("# name: " ^ Decay_space.name d ^ "\n");
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if j > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%.17g" (Decay_space.decay d i j))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* Raw CSV -> (name, matrix).  Cells must be numbers (NaN/Inf parse fine —
   they are data-quality issues for [Validate], not parse errors) but no
   shape or cell validation happens here: [of_csv] adds the strict shape
   check, [of_csv_repaired] hands the raw matrix to the repair pipeline. *)
let parse ?(name = "csv") text =
  let lines = String.split_on_char '\n' text in
  let name = ref name in
  let rows =
    List.filter_map
      (fun (lineno, line) ->
        let line = String.trim line in
        if line = "" then None
        else if String.length line > 0 && line.[0] = '#' then begin
          let prefix = "# name:" in
          if String.length line > String.length prefix
             && String.sub line 0 (String.length prefix) = prefix
          then
            name :=
              String.trim
                (String.sub line (String.length prefix)
                   (String.length line - String.length prefix));
          None
        end
        else
          Some
            (String.split_on_char ',' line
            |> List.mapi (fun col cell ->
                   match float_of_string_opt (String.trim cell) with
                   | Some v -> v
                   | None ->
                       invalid_arg
                         (Printf.sprintf
                            "Decay_io.of_csv: not a number: %s (line %d, \
                             column %d)"
                            (String.trim cell) lineno (col + 1)))
            |> Array.of_list))
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  (!name, Array.of_list rows)

let check_shape matrix =
  let rows = Array.length matrix in
  if rows = 0 then
    invalid_arg "Decay_io.of_csv: empty matrix (no data rows)";
  Array.iteri
    (fun row r ->
      let got = Array.length r in
      if got <> rows then
        invalid_arg
          (Printf.sprintf
             "Decay_io.of_csv: data row %d has %d cells, expected %d (the \
              matrix has %d data rows and must be square)"
             (row + 1) got rows rows))
    matrix

let of_csv ?name text =
  let name, matrix = parse ?name text in
  check_shape matrix;
  Decay_space.of_matrix ~name matrix

let of_csv_repaired ?name ~policy text =
  let name, matrix = parse ?name text in
  Decay_space.of_matrix_repaired ~name ~policy matrix

let save d path =
  (* Atomic: write a temp file in the target directory, then rename over
     the destination, so a crash mid-write can never leave a truncated
     matrix where a valid one used to be. *)
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".decay_io" ".tmp" in
  match
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_csv d));
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let load path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_csv ~name:(Filename.basename path) text

let load_repaired ~policy path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_csv_repaired ~name:(Filename.basename path) ~policy text
