(* Time-varying decay spaces: random-waypoint mobility, Gudmundson-mixed
   shadowing, speed-dependent fast fading.  See evolve.mli for the model.

   Determinism: one Rng stream, fixed draw order — mobility draws first
   (node index order), then field draws over ordered dirty pairs in lex
   order.  Nothing here is parallel, so trajectories are identical at any
   job count; draw counts depend only on the trajectory itself. *)

module Point = Bg_geom.Point
module Rng = Bg_prelude.Rng

type config = {
  n : int;
  side : float;
  speed_min : float;
  speed_max : float;
  pause_min : float;
  pause_max : float;
  dt : float;
  corr_dist : float;
  shadow_std_db : float;
  fade_low_db : float;
  fade_high_db : float;
  speed_threshold : float;
  alpha : float;
  d_min : float;
}

let default =
  {
    n = 64;
    side = 30.;
    speed_min = 1.;
    speed_max = 3.;
    pause_min = 2.;
    pause_max = 8.;
    dt = 1.;
    corr_dist = 10.;
    shadow_std_db = 4.;
    fade_low_db = 1.;
    fade_high_db = 3.;
    speed_threshold = 2.;
    alpha = 3.;
    d_min = 1.;
  }

(* A node is either dwelling at its last waypoint or en route to the next
   one at a per-trip speed. *)
type phase = Paused of float (* seconds remaining *) | Moving of Point.t * float

type t = {
  cfg : config;
  base : Point.t -> Point.t -> float;
  name : string;
  rng : Rng.t;
  pos : Point.t array;
  phases : phase array;
  shadow : float array array; (* dB, ordered pairs *)
  fade : float array array; (* dB, ordered pairs *)
  cells : float array array; (* current decay matrix *)
  mutable space : Decay_space.t;
  mutable steps : int;
}

let mixing ~corr_dist ~delta =
  if corr_dist <= 0. then if delta = 0. then 1. else 0.
  else exp (-.delta /. corr_dist)

let validate_config c =
  let bad fmt = Printf.ksprintf invalid_arg fmt in
  if c.n <= 0 then bad "Evolve: n must be positive (got %d)" c.n;
  if not (c.side > 0.) then bad "Evolve: side must be positive (got %g)" c.side;
  if not (c.dt > 0.) then bad "Evolve: dt must be positive (got %g)" c.dt;
  if c.speed_min < 0. || c.speed_max < c.speed_min then
    bad "Evolve: need 0 <= speed_min <= speed_max (got %g, %g)" c.speed_min
      c.speed_max;
  if c.pause_min < 0. || c.pause_max < c.pause_min then
    bad "Evolve: need 0 <= pause_min <= pause_max (got %g, %g)" c.pause_min
      c.pause_max;
  if c.shadow_std_db < 0. || c.fade_low_db < 0. || c.fade_high_db < 0. then
    bad "Evolve: dB sigmas must be non-negative";
  if not (c.d_min > 0.) then bad "Evolve: d_min must be positive (got %g)" c.d_min

let default_base cfg p q =
  Float.max cfg.d_min (Point.dist p q) ** cfg.alpha

(* Decay cell from base loss plus dB deviations, clamped to the
   positive-finite range Decay_space.of_matrix accepts. *)
let cell_value t p q db =
  let db = Float.max (-300.) (Float.min 300. db) in
  let v = t.base p q *. (10. ** (db /. 10.)) in
  if v < 1e-300 then 1e-300 else if v > 1e300 then 1e300 else v

let rebuild_space t =
  let name = Printf.sprintf "%s:t=%d" t.name t.steps in
  let space = Decay_space.of_matrix ~name t.cells in
  t.space <- space;
  space

let create ?base ?(name = "evolve") ~seed cfg =
  validate_config cfg;
  let rng = Rng.create seed in
  let base = match base with Some f -> f | None -> default_base cfg in
  let n = cfg.n in
  let pos =
    Array.init n (fun _ ->
        Point.make (Rng.float rng cfg.side) (Rng.float rng cfg.side))
  in
  (* Desynchronised initial dwells so the dirty fraction ramps smoothly
     instead of every node departing on the same step. *)
  let phases =
    Array.init n (fun _ ->
        Paused (Rng.float rng (cfg.pause_min +. cfg.pause_max +. cfg.dt)))
  in
  let shadow =
    Array.init n (fun _ ->
        Array.init n (fun _ ->
            if cfg.shadow_std_db > 0. then
              Rng.gaussian ~sigma:cfg.shadow_std_db rng
            else 0.))
  in
  let fade = Array.make_matrix n n 0. in
  let cells = Array.make_matrix n n 0. in
  let t =
    {
      cfg;
      base;
      name;
      rng;
      pos;
      phases;
      shadow;
      fade;
      cells;
      space = Decay_space.of_matrix [| [| 0. |] |];
      steps = 0;
    }
  in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        t.cells.(i).(j) <- cell_value t pos.(i) pos.(j) shadow.(i).(j)
    done
  done;
  ignore (rebuild_space t);
  t

let config t = t.cfg
let space t = t.space
let positions t = Array.copy t.pos
let step_count t = t.steps

(* Advance one node by dt; returns its displacement this step. *)
let move_node t i =
  let cfg = t.cfg in
  (* Fuel bounds the pause->trip->pause transitions a node may chain
     inside one dt, so degenerate configs (zero pauses, coincident
     waypoints) cannot loop without consuming budget. *)
  let rec go fuel budget =
    if budget <= 0. || fuel <= 0 then 0.
    else
      match t.phases.(i) with
      | Paused rem ->
          if rem > budget then (
            t.phases.(i) <- Paused (rem -. budget);
            0.)
          else
            let target =
              Point.make (Rng.float t.rng cfg.side) (Rng.float t.rng cfg.side)
            in
            let speed = Rng.uniform t.rng cfg.speed_min cfg.speed_max in
            t.phases.(i) <- Moving (target, speed);
            go (fuel - 1) (budget -. rem)
      | Moving (target, speed) ->
          let p = t.pos.(i) in
          let d = Point.dist p target in
          let reach = speed *. budget in
          if speed <= 0. then 0.
          else if reach >= d then (
            t.pos.(i) <- target;
            t.phases.(i) <-
              Paused (Rng.uniform t.rng cfg.pause_min cfg.pause_max);
            d +. go (fuel - 1) (budget -. (d /. speed)))
          else (
            t.pos.(i) <- Point.lerp p target (reach /. d);
            reach)
  in
  go 16 cfg.dt

let step t =
  let cfg = t.cfg in
  let n = cfg.n in
  let delta = Array.make n 0. in
  for i = 0 to n - 1 do
    delta.(i) <- move_node t i
  done;
  let moved = Array.map (fun d -> d > 0.) delta in
  t.steps <- t.steps + 1;
  (* Field + cell refresh for every ordered pair with a moved endpoint,
     in lex order so the draw sequence is canonical. *)
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && (moved.(i) || moved.(j)) then begin
        let dp = delta.(i) +. delta.(j) in
        (if cfg.shadow_std_db > 0. then
           let c = mixing ~corr_dist:cfg.corr_dist ~delta:dp in
           t.shadow.(i).(j) <-
             (c *. t.shadow.(i).(j))
             +. sqrt (Float.max 0. (1. -. (c *. c)))
                *. Rng.gaussian ~sigma:cfg.shadow_std_db t.rng);
        let link_speed = dp /. cfg.dt in
        let sigma =
          if link_speed <= 0. then 0.
          else if link_speed < cfg.speed_threshold then cfg.fade_low_db
          else cfg.fade_high_db
        in
        t.fade.(i).(j) <-
          (if sigma > 0. then Rng.gaussian ~sigma t.rng else 0.);
        t.cells.(i).(j) <-
          cell_value t t.pos.(i) t.pos.(j) (t.shadow.(i).(j) +. t.fade.(i).(j))
      end
    done
  done;
  let dirty =
    Array.of_seq
      (Seq.filter (fun i -> moved.(i)) (Seq.init n (fun i -> i)))
  in
  (rebuild_space t, dirty)

let shadow_field t = Array.map Array.copy t.shadow
