type t = {
  tol : float;
  jobs : int option;
  cache : bool;
  exact_limit : int option;
}

let default = { tol = 1e-9; jobs = None; cache = true; exact_limit = None }

let make ?(tol = 1e-9) ?jobs ?(cache = true) ?exact_limit () =
  { tol; jobs; cache; exact_limit }

let sequential = { default with jobs = Some 1 }
let uncached = { default with cache = false }
let jobs t = Bg_prelude.Parallel.resolve_jobs t.jobs

let pp fmt t =
  Format.fprintf fmt "{tol=%g; jobs=%s; cache=%b; exact_limit=%s}" t.tol
    (match t.jobs with None -> "ambient" | Some j -> string_of_int j)
    t.cache
    (match t.exact_limit with None -> "default" | Some k -> string_of_int k)
