(** Incremental maintenance of ζ, φ and γ under row/column churn.

    A full witness sweep is O(n³); under mobility only the rows and
    columns of the k nodes that moved change between steps.  This module
    keeps, for every ordered pair [(x, y)], the pair's best triple value
    and its first-attaining [z] — so a step re-sweeps only triples that
    touch a dirty node: the O(2kn) dirty pairs in full (O(n) each) and
    the clean pairs against the k dirty [z] only, O(k·n²) total instead
    of O(n³).  γ is maintained per listener: [gamma_z] is recomputed only
    for listeners that moved or whose candidate set gained, lost or moved
    a member (membership is checked against both the previous and the new
    space, so compat and weight changes are always caught).

    The contract — enforced by [test/differential.ml] and the
    [bg evolve --differential] flag — is {e bit-identity}: after any
    sequence of {!step}s, {!zeta_witness}, {!phi_witness} and {!gamma}
    equal what [Metricity.zeta_witness], [Metricity.phi_witness] and
    [Fading.gamma] (uncached) return on the current space, including
    witness coordinates and tie-breaks, at every job count.  This holds
    because per-triple values ([Metricity.zeta_triple], [fxy / (fxz +
    fzy)], [Fading.gamma_z]) are pure functions of cells, skips are only
    taken when provably value-preserving, and ties re-resolve to the
    lexicographically first triple exactly as the sweeps do.

    Callers must uphold one invariant: between consecutive steps, every
    cell [(i, j)] with both [i] and [j] outside the dirty set is
    bit-identical in the old and new space ({!Evolve.step} guarantees
    this for its dirty sets). *)

type gamma_info = {
  g_value : float;  (** [max_z gamma_z(r)] — equals [Fading.gamma] *)
  g_z : int;  (** first listener attaining it, [-1] when the max is 0 *)
}

type result = {
  zeta : Metricity.witness;
  phi : Metricity.witness;
  gamma : gamma_info option;  (** [None] unless [~r] was given *)
}

(** Cumulative work accounting since {!create} (the creation sweep is not
    counted; steps only). *)
type stats = {
  steps : int;
  pairs_full : int;  (** ordered pairs re-swept over every [z] *)
  pairs_patched : int;  (** ordered pairs swept over dirty [z] only *)
  triples_swept : int;  (** z-iterations actually executed (ζ and φ) *)
  triples_full : int;
      (** z-iterations a per-step full recompute of ζ and φ would execute *)
  gamma_recomputed : int;  (** listeners whose [gamma_z] was recomputed *)
  gamma_total : int;  (** listeners a full γ recompute would visit *)
  dirty_nodes : int;  (** sum of per-step dirty-set sizes *)
}

val savings : stats -> float
(** [triples_full / triples_swept] — the headline incremental-vs-full
    sweep-work ratio (1.0 when no steps ran). *)

type t

val create : ?ctx:Ctx.t -> ?r:float -> Decay_space.t -> t
(** Build the pair tables with one full sweep of the given space.  [ctx]
    supplies the bisection tolerance, the job count for the row-parallel
    table builds (results are identical at every job count) and the
    branch-and-bound [exact_limit] for γ; its cache flag is irrelevant
    here (the tables {e are} the cache).  [r] enables γ maintenance at
    that separation. *)

val space : t -> Decay_space.t
(** The space the tables currently reflect. *)

val current : t -> result
(** Current witnesses, assembled from the tables in O(n²). *)

val step : t -> dirty:int array -> Decay_space.t -> result
(** Advance to [next]: re-sweep the triples touching [dirty] nodes,
    update the tables in place, and return the refreshed witnesses.
    [dirty] need not be sorted; out-of-range indices raise.  An empty
    [dirty] array with an identical matrix is a no-op returning
    {!current}.
    @raise Invalid_argument if [next] has a different node count or a
    dirty index is out of range. *)

val stats : t -> stats
