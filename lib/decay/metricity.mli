(** Metricity parameters of a decay space — Definition 2.2 and §4.2.

    The metricity [zeta(D)] is the smallest [z >= 1] such that for every
    triple of distinct nodes
    [f(x,y)^(1/z) <= f(x,z)^(1/z) + f(z,y)^(1/z)].
    For geometric path loss [f = d^alpha] over a metric, [zeta = alpha]; for
    arbitrary measured decays it quantifies how far the space is from
    supporting triangle-inequality arguments.

    The variant [phi] is the smallest value with
    [f(x,z) <= phi * (f(x,y) + f(y,z))] for all triples (the relaxed
    triangle inequality), and [phi_log = lg phi] is the parameter the
    paper's Theorem 6 lower bound is stated in.  Note the paper's displayed
    formula for [phi] is the reciprocal of its prose definition; we
    implement the prose version, under which the paper's own examples check
    out (see DESIGN.md §3 and experiment E9).

    All sweep entry points take one optional {!Ctx.t} carrying tolerance,
    parallelism, caching and solver limits; the historical per-function
    [?tol ?jobs ?cache] signatures survive as deprecated [_with]
    wrappers. *)

type witness = { x : int; y : int; z : int; value : float }
(** The triple achieving an extremal parameter, and the value there. *)

val zeta_triple : ?tol:float -> float -> float -> float -> float
(** [zeta_triple fxy fxz fzy] is the smallest [z >= 1] making the relaxed
    inequality [fxy^(1/z) <= fxz^(1/z) + fzy^(1/z)] hold for one triple of
    decays (bisection; validity is monotone in [z]).  [tol] is the relative
    bisection tolerance, default [1e-9]. *)

val zeta : ?ctx:Ctx.t -> Decay_space.t -> float
(** Exact metricity: maximum of {!zeta_triple} over all ordered triples of
    distinct nodes.  O(n^3) with log-domain incumbent tests, row / pair /
    tile bound pruning and x-panel cache blocking over the flat
    {!Decay_space.Flat} views; triples the bounds cannot dismiss fall back
    to exactly the naive evaluation, so the result (and witness) is
    bit-for-bit the naive sweep's.  Returns [1.] for spaces with fewer
    than three nodes.  [ctx] (default {!Ctx.default}) carries the
    bisection tolerance, the job count (the result is identical at every
    job count) and whether to memoize under the space's content
    {!Decay_space.digest}. *)

val zeta_witness : ?ctx:Ctx.t -> Decay_space.t -> witness
(** The metricity together with a triple attaining it.  On ties the
    lexicographically smallest [(x, y, z)] wins, at every [jobs] count
    and under every internal loop order. *)

val zeta_upper_bound : ?jobs:int -> Decay_space.t -> float
(** The paper's a-priori bound [zeta <= max(1, lg (f_max / f_min))]. *)

val holds_at : ?jobs:int -> Decay_space.t -> float -> bool
(** [holds_at d z] checks the relaxed triangle inequality at parameter [z]
    for all triples (within the bisection tolerance). *)

val phi : ?ctx:Ctx.t -> Decay_space.t -> float
(** The relaxed-triangle-inequality constant
    [max(1, max_{x,y,z} f(x,z) / (f(x,y) + f(y,z)))] over distinct triples.
    Pruned like {!zeta} (the phi bounds are exact in float arithmetic, by
    monotonicity of [+.] and [/.]); cached like {!zeta}. *)

val phi_witness : ?ctx:Ctx.t -> Decay_space.t -> witness
(** [phi] together with an attaining triple (fields [x], [z] are the outer
    pair and [y] the midpoint).  Deterministic across [jobs] like
    {!zeta_witness}. *)

val phi_log : ?ctx:Ctx.t -> Decay_space.t -> float
(** [lg phi], the exponent form used by Theorem 6 ([phi_log <= zeta] always,
    by the argument in §4.2). *)

(** {1 Deprecated compatibility wrappers}

    One-line shims preserving the historical optional-argument signatures.
    New code should pass a {!Ctx.t}; these alert as [deprecated] (an error
    under this project's build flags — suppress locally with
    [[@alert "-deprecated"]] while migrating). *)

val zeta_with :
  ?tol:float -> ?jobs:int -> ?cache:bool -> Decay_space.t -> float
[@@ocaml.deprecated "Use Metricity.zeta ?ctx instead."]

val zeta_witness_with :
  ?tol:float -> ?jobs:int -> ?cache:bool -> Decay_space.t -> witness
[@@ocaml.deprecated "Use Metricity.zeta_witness ?ctx instead."]

val phi_with : ?jobs:int -> ?cache:bool -> Decay_space.t -> float
[@@ocaml.deprecated "Use Metricity.phi ?ctx instead."]

val phi_witness_with : ?jobs:int -> ?cache:bool -> Decay_space.t -> witness
[@@ocaml.deprecated "Use Metricity.phi_witness ?ctx instead."]

val phi_log_with : ?jobs:int -> ?cache:bool -> Decay_space.t -> float
[@@ocaml.deprecated "Use Metricity.phi_log ?ctx instead."]

val zeta_sampled :
  ?tol:float -> samples:int -> Bg_prelude.Rng.t -> Decay_space.t -> float
[@@ocaml.deprecated
  "Use Estimators.zeta_triples (stratified, with confidence bounds) \
   instead."]
(** Lower-bound estimate of the metricity from uniformly sampled triples.
    Superseded by {!Estimators.zeta_triples}, which stratifies the sample
    and reports a confidence interval.  Requires [n >= 3]. *)

val zeta_subsampled :
  ?tol:float -> ?rounds:int -> nodes:int -> Bg_prelude.Rng.t ->
  Decay_space.t -> float
[@@ocaml.deprecated
  "Use Estimators.zeta (stratified node subsampling, with confidence \
   bounds) instead."]
(** Lower-bound estimate from exact metricity of random induced
    sub-spaces.  Superseded by {!Estimators.zeta}.  Requires
    [3 <= nodes <= n]. *)

(** {1 The analysis cache}

    [zeta] and [phi] results are memoized in {!Bg_prelude.Memo} tables
    keyed by {!Decay_space.digest} (plus [tol] for [zeta]): re-analyzing a
    bit-identical decay matrix — whatever its name, at any job count —
    costs a hash lookup instead of an O(n^3) sweep.  Disable per call with
    a [ctx] whose [cache] is [false] (e.g. {!Ctx.uncached}). *)

val cache_stats : unit -> int * int
(** [(hits, misses)] summed over the zeta and phi caches. *)

val clear_caches : unit -> unit
(** Drop all cached zeta/phi results and zero the hit/miss counters. *)
