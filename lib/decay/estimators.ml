module Rng = Bg_prelude.Rng
module Stats = Bg_prelude.Stats
module Obs = Bg_prelude.Obs

type oracle = { n : int; name : string; decay : int -> int -> float }

let oracle ?(name = "oracle") ~n decay =
  if n < 0 then invalid_arg "Estimators.oracle: negative size";
  { n; name; decay }

let of_space d =
  {
    n = Decay_space.n d;
    name = Decay_space.name d;
    decay = (fun i j -> Decay_space.unsafe_get d i j);
  }

let of_points ?(name = "plane") ~alpha points =
  if alpha <= 0. then invalid_arg "Estimators.of_points: alpha must be positive";
  let pts = Array.of_list points in
  {
    n = Array.length pts;
    name;
    decay =
      (fun i j -> Bg_geom.Point.dist pts.(i) pts.(j) ** alpha);
  }

type estimate = {
  point : float;
  lo : float;
  hi : float;
  confidence : float;
  replicates : float array;
}

(* How far past the best replicate the upper bound reaches, in units of
   the confidence-percentile replicate deficit.  Calibrated against exact
   kernels on n <= 256 (test_estimators, experiment E24) so that
   [exact <= hi] holds at >= the stated confidence: the replicate spread
   measures how much one more batch of the same size tends to gain, and
   the true maximum sits within a few such gains of the best batch. *)
let spread_inflation = 3.0

(* A small relative pad covering the case where all replicates agree yet
   none captured the exact extremum: the spread is then 0 and the
   interval would otherwise degenerate to a point. *)
let agreement_pad = 0.02

let interval ~confidence reps =
  if Array.length reps = 0 then
    invalid_arg "Estimators: need at least one replicate";
  if not (confidence > 0. && confidence < 1.) then
    invalid_arg "Estimators: confidence must be in (0, 1)";
  let point = Array.fold_left Float.max neg_infinity reps in
  let deficits = Array.map (fun b -> point -. b) reps in
  let q = Stats.percentile deficits (100. *. confidence) in
  let hi = point +. (spread_inflation *. q) +. (agreement_pad *. point) in
  { point; lo = point; hi; confidence; replicates = reps }

let pp_estimate fmt e =
  Format.fprintf fmt "%.4f in [%.4f, %.4f] @@ %g%% (%d replicates)" e.point
    e.lo e.hi
    (100. *. e.confidence)
    (Array.length e.replicates)

(* Stratified node sample: partition [0, n) into [nodes] contiguous
   strata and draw one node uniformly from each.  Distinctness is by
   construction; stratification keeps every region of the index space
   represented in every replicate (measurement campaigns commonly order
   nodes by location, so uniform-without-replacement sampling can leave
   whole regions untouched). *)
let stratified_nodes rng n nodes =
  Array.init nodes (fun s ->
      let lo = s * n / nodes and hi = (s + 1) * n / nodes in
      lo + Rng.int rng (hi - lo))

(* One draw per replicate, alternating two designs.  Index-stratified
   draws cover every region but can never co-draw two nodes sharing a
   stratum — a violation concentrated on adjacent indices would be
   invisible to them at any replicate count.  Uniform draws without
   replacement give every node subset positive probability.  Alternating
   keeps both guarantees. *)
let replicate_nodes rng n nodes rep =
  if rep mod 2 = 0 then stratified_nodes rng n nodes
  else Rng.sample rng nodes (Array.init n Fun.id)

let sub_space_of_oracle o idx =
  let k = Array.length idx in
  Decay_space.of_fn ~name:(o.name ^ "/est") k (fun i j ->
      o.decay idx.(i) idx.(j))

let check_subspace_args fname o ~nodes ~replicates =
  if nodes < 3 || nodes > o.n then
    invalid_arg (fname ^ ": need 3 <= nodes <= n");
  if replicates < 1 then invalid_arg (fname ^ ": need replicates >= 1")

(* ------------------------------------------------- zeta / phi estimators *)

(* Sub-space replicates: metricity (and phi) are monotone under induced
   sub-spaces — every triple of the sub-space is a triple of the full
   space — so each replicate is a true lower bound and so is their max. *)

let subspace_estimate kernel name ?(ctx = Ctx.default) ?(replicates = 8)
    ?(confidence = 0.9) ~nodes rng o =
  check_subspace_args name o ~nodes ~replicates;
  (* Never memoize random sub-sweeps: they would churn the digest-keyed
     caches without any chance of a future hit. *)
  let ctx = { ctx with Ctx.cache = false } in
  Obs.with_span
    ~attrs:
      [ ("n", Obs.I o.n); ("nodes", Obs.I nodes);
        ("replicates", Obs.I replicates) ]
    (name ^ "_estimate")
  @@ fun () ->
  (* Explicit loop: the rng is drawn in replicate order, so results are
     reproducible regardless of [Array.init]'s evaluation order. *)
  let reps = Array.make replicates 0. in
  for rep = 0 to replicates - 1 do
    let idx = replicate_nodes rng o.n nodes rep in
    reps.(rep) <- kernel ~ctx (sub_space_of_oracle o idx)
  done;
  interval ~confidence reps

let zeta ?ctx ?replicates ?confidence ~nodes rng o =
  subspace_estimate
    (fun ~ctx d -> Metricity.zeta ~ctx d)
    "zeta_sub" ?ctx ?replicates ?confidence ~nodes rng o

let phi ?ctx ?replicates ?confidence ~nodes rng o =
  subspace_estimate
    (fun ~ctx d -> Metricity.phi ~ctx d)
    "phi_sub" ?ctx ?replicates ?confidence ~nodes rng o

(* Stratified triple sampling: cheaper per unit of work than sub-space
   sweeps (no O(k^3) exactness), weaker per sample — the tool of choice
   when even a [nodes^3] sub-sweep is too much.  The x coordinate is
   stratified over contiguous index bands; y, z are uniform.  Every
   sampled triple's threshold is a true lower bound, so the batch maxima
   are, and the interval machinery is shared. *)
let zeta_triples ?(tol = 1e-9) ?(replicates = 8) ?(confidence = 0.9) ~samples
    rng o =
  if o.n < 3 then invalid_arg "Estimators.zeta_triples: need at least 3 nodes";
  if samples < replicates then
    invalid_arg "Estimators.zeta_triples: need samples >= replicates";
  if replicates < 1 then
    invalid_arg "Estimators.zeta_triples: need replicates >= 1";
  let n = o.n in
  let strata = min n 16 in
  let per_rep = samples / replicates in
  Obs.with_span
    ~attrs:
      [ ("n", Obs.I n); ("samples", Obs.I samples);
        ("replicates", Obs.I replicates) ]
    "zeta_triples_estimate"
  @@ fun () ->
  let reps = Array.make replicates 1. in
  for rep = 0 to replicates - 1 do
    let best = ref 1. in
        for s = 0 to per_rep - 1 do
          let stratum = s mod strata in
          let lo = stratum * n / strata and hi = (stratum + 1) * n / strata in
          let x = lo + Rng.int rng (hi - lo) in
          let y = ref (Rng.int rng n) in
          while !y = x do
            y := Rng.int rng n
          done;
          let z = ref (Rng.int rng n) in
          while !z = x || !z = !y do
            z := Rng.int rng n
          done;
          let fxy = o.decay x !y
          and fxz = o.decay x !z
          and fzy = o.decay !z !y in
          if fxy > fxz +. fzy then begin
            let v = Metricity.zeta_triple ~tol fxy fxz fzy in
            if v > !best then best := v
          end
    done;
    reps.(rep) <- !best
  done;
  interval ~confidence reps

(* ------------------------------------------------------ gamma estimator *)

(* Exact fading value of one listener, over the oracle.  Mirrors
   [Fading.gamma_z] (same candidate rule, same weighted-MIS search, same
   greedy fallback) without materializing any matrix: O(n) oracle probes
   for the candidate scan plus O(k^2) for the tabulated compatibility
   relation. *)
let gamma_z_oracle ~exact_limit o ~z ~r =
  let n = o.n in
  let candidates = ref [] in
  for x = n - 1 downto 0 do
    if x <> z && o.decay x z >= r && o.decay z x >= r then
      candidates := x :: !candidates
  done;
  let arr = Array.of_list !candidates in
  let k = Array.length arr in
  if k = 0 then 0.
  else begin
    let weights = Array.map (fun x -> 1. /. o.decay x z) arr in
    let compat_direct i j =
      i = j
      || (o.decay arr.(i) arr.(j) >= r && o.decay arr.(j) arr.(i) >= r)
    in
    let value, _ =
      if k <= exact_limit then begin
        let adj = Bytes.make (k * k) '\000' in
        for i = 0 to k - 1 do
          for j = i + 1 to k - 1 do
            if compat_direct i j then begin
              Bytes.unsafe_set adj ((i * k) + j) '\001';
              Bytes.unsafe_set adj ((j * k) + i) '\001'
            end
          done
        done;
        Fading.weighted_mis ~weights ~compat:(fun i j ->
            i = j || Bytes.unsafe_get adj ((i * k) + j) = '\001')
      end
      else begin
        let order = Array.init k Fun.id in
        Array.sort (fun i j -> Float.compare weights.(j) weights.(i)) order;
        let pick = ref [] in
        Array.iter
          (fun i ->
            if List.for_all (fun j -> compat_direct i j) !pick then
              pick := i :: !pick)
          order;
        (List.fold_left (fun a i -> a +. weights.(i)) 0. !pick, !pick)
      end
    in
    r *. value
  end

(* Listener-sampling replicates: gamma is a maximum over listeners, so
   the exact fading value over any listener subset is a true lower
   bound. *)
let gamma ?(ctx = Ctx.default) ?(replicates = 8) ?(confidence = 0.9)
    ~listeners rng o ~r =
  if listeners < 1 || listeners > o.n then
    invalid_arg "Estimators.gamma: need 1 <= listeners <= n";
  if replicates < 1 then invalid_arg "Estimators.gamma: need replicates >= 1";
  let exact_limit =
    match ctx.Ctx.exact_limit with None -> 24 | Some k -> k
  in
  Obs.with_span
    ~attrs:
      [ ("n", Obs.I o.n); ("listeners", Obs.I listeners);
        ("replicates", Obs.I replicates) ]
    "gamma_estimate"
  @@ fun () ->
  let reps = Array.make replicates 0. in
  for rep = 0 to replicates - 1 do
    let zs = stratified_nodes rng o.n listeners in
    reps.(rep) <-
      Array.fold_left
        (fun best z -> Float.max best (gamma_z_oracle ~exact_limit o ~z ~r))
        0. zs
  done;
  interval ~confidence reps
