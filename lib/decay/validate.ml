(* Structured validation and repair of raw decay matrices.

   This module works on plain [float array array] so that it sits *below*
   [Decay_space] in the dependency order: [Decay_space.of_matrix] routes
   its checks through here, and the repair entry points that return a
   built space live in [Decay_space] ([of_matrix_repaired]) and
   [Decay_io] ([of_csv_repaired]) where the constructor is in scope. *)

type issue =
  | Empty
  | Ragged of { row : int; expected : int; got : int }
  | Not_finite of { i : int; j : int; value : float }
  | Non_positive of { i : int; j : int; value : float }
  | Nonzero_diagonal of { i : int; value : float }

type profile = {
  n : int;
  bad_cells : int;
  asymmetric_pairs : int;
  worst_asymmetry : float;
  censored_cells : int;
  censor_floor : float;
}

type diagnosis = { issues : issue list; truncated : int; profile : profile option }

type policy = Reject | Clamp of float | Symmetrize | Drop_nodes

type repair = {
  applied : policy;
  cells_clamped : int;
  cells_mirrored : int;
  diagonal_zeroed : int;
  dropped : int list;
}

let no_repair policy =
  { applied = policy; cells_clamped = 0; cells_mirrored = 0;
    diagonal_zeroed = 0; dropped = [] }

let issue_to_string = function
  | Empty -> "empty matrix (no rows)"
  | Ragged { row; expected; got } ->
      Printf.sprintf "row %d has %d cells, expected %d (the square matrix has %d rows)"
        row got expected expected
  | Not_finite { i; j; value } ->
      Printf.sprintf "non-finite decay %g at (%d,%d)" value i j
  | Non_positive { i; j; value } ->
      Printf.sprintf "nonpositive decay %g at (%d,%d) between distinct nodes"
        value i j
  | Nonzero_diagonal { i; value } ->
      Printf.sprintf "nonzero diagonal decay %g at (%d,%d)" value i i

let pp_issue fmt i = Format.pp_print_string fmt (issue_to_string i)

let describe d =
  match d.issues with
  | [] -> "valid"
  | first :: rest ->
      let shown = List.length rest + 1 in
      let more = d.truncated in
      if shown = 1 && more = 0 then issue_to_string first
      else
        Printf.sprintf "%s (and %d more issue%s)" (issue_to_string first)
          (shown - 1 + more)
          (if shown - 1 + more = 1 then "" else "s")

let policy_to_string = function
  | Reject -> "reject"
  | Clamp v -> Printf.sprintf "clamp=%g" v
  | Symmetrize -> "symmetrize"
  | Drop_nodes -> "drop-nodes"

let repair_to_string r =
  let parts = [] in
  let parts =
    if r.cells_clamped > 0 then
      Printf.sprintf "%d cell(s) clamped" r.cells_clamped :: parts
    else parts
  in
  let parts =
    if r.cells_mirrored > 0 then
      Printf.sprintf "%d cell(s) mirrored" r.cells_mirrored :: parts
    else parts
  in
  let parts =
    if r.diagonal_zeroed > 0 then
      Printf.sprintf "%d diagonal cell(s) zeroed" r.diagonal_zeroed :: parts
    else parts
  in
  let parts =
    if r.dropped <> [] then
      Printf.sprintf "node(s) %s dropped"
        (String.concat "," (List.map string_of_int r.dropped))
      :: parts
    else parts
  in
  match parts with
  | [] -> Printf.sprintf "policy %s: no repairs needed" (policy_to_string r.applied)
  | ps ->
      Printf.sprintf "policy %s: %s" (policy_to_string r.applied)
        (String.concat ", " (List.rev ps))

(* ------------------------------------------------------------- scanning *)

let cell_ok ~diagonal v =
  if diagonal then v = 0. else Float.is_finite v && v > 0.

let shape_issues m =
  let n = Array.length m in
  if n = 0 then [ Empty ]
  else
    let bad = ref [] in
    for row = n - 1 downto 0 do
      let got = Array.length m.(row) in
      if got <> n then bad := Ragged { row; expected = n; got } :: !bad
    done;
    !bad

(* How many issues [diagnose] keeps verbatim; the rest are only counted
   ([truncated]) so an all-NaN 512-node matrix does not allocate a
   260k-element issue list. *)
let max_reported = 64

let diagnose m =
  match shape_issues m with
  | _ :: _ as issues ->
      { issues; truncated = 0; profile = None }
  | [] ->
      let n = Array.length m in
      let issues = ref [] and kept = ref 0 and dropped = ref 0 in
      let bad_cells = ref 0 in
      let note i =
        incr bad_cells;
        if !kept < max_reported then begin
          issues := i :: !issues;
          incr kept
        end
        else incr dropped
      in
      let max_finite = ref 0. in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let v = m.(i).(j) in
          if i = j then begin
            if v <> 0. then note (Nonzero_diagonal { i; value = v })
          end
          else if not (Float.is_finite v) then
            note (Not_finite { i; j; value = v })
          else if v <= 0. then note (Non_positive { i; j; value = v })
          else if v > !max_finite then max_finite := v
        done
      done;
      (* Measurement profile over the valid off-diagonal cells: worst
         directional asymmetry ratio, and entries sitting exactly at the
         largest observed decay — the signature of a noise-floor-censored
         campaign (the receiver reports "no signal above the floor" as one
         saturated value). *)
      let asymmetric_pairs = ref 0 and worst = ref 1. in
      let censored = ref 0 in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i < j then begin
            let a = m.(i).(j) and b = m.(j).(i) in
            if cell_ok ~diagonal:false a && cell_ok ~diagonal:false b then begin
              let ratio = Float.max (a /. b) (b /. a) in
              if ratio > 1. +. 1e-9 then begin
                incr asymmetric_pairs;
                if ratio > !worst then worst := ratio
              end
            end
          end;
          if i <> j && m.(i).(j) = !max_finite && !max_finite > 0. then
            incr censored
        done
      done;
      {
        issues = List.rev !issues;
        truncated = !dropped;
        profile =
          Some
            {
              n;
              bad_cells = !bad_cells;
              asymmetric_pairs = !asymmetric_pairs;
              worst_asymmetry = !worst;
              censored_cells = (if !censored >= 2 then !censored else 0);
              censor_floor = !max_finite;
            };
      }

let first_issue m =
  match shape_issues m with
  | i :: _ -> Some i
  | [] ->
      let n = Array.length m in
      let found = ref None in
      (try
         for i = 0 to n - 1 do
           for j = 0 to n - 1 do
             let v = m.(i).(j) in
             if i = j then begin
               if v <> 0. then begin
                 found := Some (Nonzero_diagonal { i; value = v });
                 raise Exit
               end
             end
             else if not (Float.is_finite v) then begin
               found := Some (Not_finite { i; j; value = v });
               raise Exit
             end
             else if v <= 0. then begin
               found := Some (Non_positive { i; j; value = v });
               raise Exit
             end
           done
         done
       with Exit -> ());
      !found

let is_valid m = first_issue m = None

let validate_exn ~name m =
  match first_issue m with
  | None -> ()
  | Some issue -> invalid_arg (name ^ ": " ^ issue_to_string issue)

let suggested_clamp m =
  let best = ref 0. in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          if i <> j && Float.is_finite v && v > !best then best := v)
        row)
    m;
  if !best > 0. then !best else 1.

(* --------------------------------------------------------------- repair *)

let copy_matrix m = Array.map Array.copy m

(* Repair accounting in the process-wide registry: one batch update per
   [repair] call, taken straight from the report it already produces. *)
module Obs = Bg_prelude.Obs

let m_clamped = Obs.counter "validate.cells_clamped"
let m_mirrored = Obs.counter "validate.cells_mirrored"
let m_diag_zeroed = Obs.counter "validate.diagonal_zeroed"
let m_nodes_dropped = Obs.counter "validate.nodes_dropped"
let m_repairs = Obs.counter "validate.repairs"
let m_rejects = Obs.counter "validate.rejects"

let repair_impl ?(policy = Reject) m =
  let fail () = Error (diagnose m) in
  match shape_issues m with
  | _ :: _ ->
      (* No cell-level policy can reconstruct missing cells of a ragged or
         empty matrix: the column structure itself is undefined. *)
      fail ()
  | [] -> (
      let n = Array.length m in
      match policy with
      | Reject -> if is_valid m then Ok (m, no_repair Reject) else fail ()
      | Clamp v ->
          if not (Float.is_finite v && v > 0.) then
            invalid_arg "Validate.repair: clamp value must be finite and positive";
          let out = copy_matrix m in
          let clamped = ref 0 and zeroed = ref 0 in
          for i = 0 to n - 1 do
            for j = 0 to n - 1 do
              let x = out.(i).(j) in
              if i = j then begin
                if x <> 0. then begin
                  out.(i).(j) <- 0.;
                  incr zeroed
                end
              end
              else if not (cell_ok ~diagonal:false x) then begin
                out.(i).(j) <- v;
                incr clamped
              end
            done
          done;
          Ok
            ( out,
              { (no_repair policy) with
                cells_clamped = !clamped;
                diagonal_zeroed = !zeroed } )
      | Symmetrize ->
          (* Patch an invalid cell from its mirror: a measurement hole in
             one direction borrows the (valid) reverse-direction decay.
             If both directions are holes the pair is unrepairable. *)
          let out = copy_matrix m in
          let mirrored = ref 0 and zeroed = ref 0 in
          let ok = ref true in
          for i = 0 to n - 1 do
            for j = 0 to n - 1 do
              let x = m.(i).(j) in
              if i = j then begin
                if x <> 0. then begin
                  out.(i).(j) <- 0.;
                  incr zeroed
                end
              end
              else if not (cell_ok ~diagonal:false x) then begin
                let mirror = m.(j).(i) in
                if cell_ok ~diagonal:false mirror then begin
                  out.(i).(j) <- mirror;
                  incr mirrored
                end
                else ok := false
              end
            done
          done;
          if not !ok then fail ()
          else
            Ok
              ( out,
                { (no_repair policy) with
                  cells_mirrored = !mirrored;
                  diagonal_zeroed = !zeroed } )
      | Drop_nodes ->
          (* Greedily remove the node incident to the most invalid cells
             until the induced sub-matrix is clean — the usual treatment of
             a dead or misbehaving transceiver in a campaign. *)
          let alive = Array.make n true in
          let bad_between i j =
            let v = m.(i).(j) in
            if i = j then v <> 0. else not (cell_ok ~diagonal:false v)
          in
          let incidence i =
            let c = ref 0 in
            for j = 0 to n - 1 do
              if alive.(j) then begin
                if bad_between i j then incr c;
                if i <> j && bad_between j i then incr c
              end
            done;
            !c
          in
          let rec prune () =
            let worst = ref (-1) and worst_count = ref 0 in
            for i = 0 to n - 1 do
              if alive.(i) then begin
                let c = incidence i in
                if c > !worst_count then begin
                  worst_count := c;
                  worst := i
                end
              end
            done;
            if !worst >= 0 then begin
              alive.(!worst) <- false;
              prune ()
            end
          in
          prune ();
          let keep =
            Array.to_list (Array.init n Fun.id)
            |> List.filter (fun i -> alive.(i))
          in
          let dropped =
            Array.to_list (Array.init n Fun.id)
            |> List.filter (fun i -> not alive.(i))
          in
          if List.length keep < 2 then fail ()
          else begin
            let keep = Array.of_list keep in
            let k = Array.length keep in
            let out =
              Array.init k (fun i ->
                  Array.init k (fun j -> m.(keep.(i)).(keep.(j))))
            in
            Ok (out, { (no_repair policy) with dropped })
          end)

let repair ?policy m =
  let r = repair_impl ?policy m in
  (match r with
  | Ok (_, rep) ->
      Obs.incr m_repairs;
      Obs.add m_clamped rep.cells_clamped;
      Obs.add m_mirrored rep.cells_mirrored;
      Obs.add m_diag_zeroed rep.diagonal_zeroed;
      Obs.add m_nodes_dropped (List.length rep.dropped)
  | Error _ -> Obs.incr m_rejects);
  r
