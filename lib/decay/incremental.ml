(* Incremental ζ/φ/γ maintenance over dirty rows.  See incremental.mli
   for the contract; correctness notes inline.

   Table semantics, per ordered pair (x, y), x <> y:
     value = max (1., max over z <> x, y of the triple value)
     z     = the first (smallest) z attaining it, -1 when value = 1.
   That is exactly the restriction of the naive lexicographic sweep to
   one pair, so folding pairs in lex order with strict-> improvement
   rebuilds the sweep's global witness including its tie-break. *)

module Par = Bg_prelude.Parallel
module Obs = Bg_prelude.Obs
module F = Decay_space.Flat

type gamma_info = { g_value : float; g_z : int }

type result = {
  zeta : Metricity.witness;
  phi : Metricity.witness;
  gamma : gamma_info option;
}

type stats = {
  steps : int;
  pairs_full : int;
  pairs_patched : int;
  triples_swept : int;
  triples_full : int;
  gamma_recomputed : int;
  gamma_total : int;
  dirty_nodes : int;
}

let savings s =
  if s.triples_swept <= 0 then 1.
  else float_of_int s.triples_full /. float_of_int s.triples_swept

type t = {
  ctx : Ctx.t;
  r : float option;
  n : int;
  mutable cur : Decay_space.t;
  zeta_v : float array; (* pair (x, y) at x * n + y *)
  zeta_z : int array;
  phi_v : float array;
  phi_z : int array;
  gamma_v : float array; (* per listener; empty when r = None *)
  mutable s_steps : int;
  mutable s_pairs_full : int;
  mutable s_pairs_patched : int;
  mutable s_swept : int;
  mutable s_full : int;
  mutable s_gamma_rec : int;
  mutable s_gamma_tot : int;
  mutable s_dirty : int;
}

let c_dirty_rows = Obs.counter "incremental.dirty_rows"
let c_swept = Obs.counter "incremental.triples_swept"
let c_full_equiv = Obs.counter "incremental.triples_full_equiv"
let c_gamma_rec = Obs.counter "incremental.gamma_recomputed"

(* Same float expressions as Metricity's naive path: [zeta_triple] is the
   shared bisection, [triple_holds] the shared predicate (re-stated here
   because Metricity keeps it private; the differential tests pin the
   bit-identity down). *)
let triple_holds ~fxy ~fxz ~fzy z =
  let t = 1. /. z in
  exp (t *. log fxz) +. exp (t *. log fzy) >= exp (t *. log fxy)

(* ---------------------------------------------------- per-pair sweeps *)

(* Full rescan of one pair: the naive sweep restricted to (x, y).  The
   holds-at-incumbent skip is sound here exactly as in the naive sweep: a
   holding triple's bisection value cannot exceed the incumbent, and a
   tie always loses to the incumbent's earlier z. *)
let scan_zeta_pair ~tol f ft n x y =
  let row = x * n and yrow = y * n in
  let fxy = F.unsafe_get f (row + y) in
  let bv = ref 1. and bz = ref (-1) in
  for z = 0 to n - 1 do
    if z <> x && z <> y then begin
      let fxz = F.unsafe_get f (row + z) and fzy = F.unsafe_get ft (yrow + z) in
      if fxy <= fxz +. fzy then ()
      else if triple_holds ~fxy ~fxz ~fzy !bv then ()
      else begin
        let v = Metricity.zeta_triple ~tol fxy fxz fzy in
        if v > !bv then begin
          bv := v;
          bz := z
        end
      end
    end
  done;
  (!bv, !bz)

let scan_phi_pair f ft n x y =
  let row = x * n and yrow = y * n in
  let fxy = F.unsafe_get f (row + y) in
  let bv = ref 1. and bz = ref (-1) in
  for z = 0 to n - 1 do
    if z <> x && z <> y then begin
      let fxz = F.unsafe_get f (row + z) and fzy = F.unsafe_get ft (yrow + z) in
      let v = fxy /. (fxz +. fzy) in
      if v > !bv then begin
        bv := v;
        bz := z
      end
    end
  done;
  (!bv, !bz)

(* Patch a clean pair against the sorted dirty z only.  The stored entry
   (cv, cz) is, by induction, the first-attaining max over the CLEAN z of
   the new space (clean cells are bit-unchanged, and cz itself is clean —
   the caller full-rescans otherwise).  Folding the dirty z in ascending
   order with the tie rule "equal value wins only against a later stored
   z" reproduces the full ascending rescan's first-seen argmax.

   Skips during the fold:
   - plain triangle: value is 1, never beats a >= 1 incumbent strictly,
     and at incumbent 1 the entry has no z to displace — always safe;
   - holds-at-incumbent: value <= incumbent, so only a tie could matter,
     and a tie only matters when this z is SMALLER than the incumbent's —
     so the skip is taken only when z_d > bz or bz = -1. *)
let patch_zeta_pair ~tol f ft n x y ~sorted_dirty cv cz =
  let row = x * n and yrow = y * n in
  let fxy = F.unsafe_get f (row + y) in
  let bv = ref cv and bz = ref cz in
  Array.iter
    (fun zd ->
      if zd <> x && zd <> y then begin
        let fxz = F.unsafe_get f (row + zd)
        and fzy = F.unsafe_get ft (yrow + zd) in
        if fxy <= fxz +. fzy then ()
        else if
          (!bz < 0 || zd > !bz) && triple_holds ~fxy ~fxz ~fzy !bv
        then ()
        else begin
          let v = Metricity.zeta_triple ~tol fxy fxz fzy in
          if v > !bv || (v = !bv && !bz >= 0 && zd < !bz) then begin
            bv := v;
            bz := zd
          end
        end
      end)
    sorted_dirty;
  (!bv, !bz)

let patch_phi_pair f ft n x y ~sorted_dirty cv cz =
  let row = x * n and yrow = y * n in
  let fxy = F.unsafe_get f (row + y) in
  let bv = ref cv and bz = ref cz in
  Array.iter
    (fun zd ->
      if zd <> x && zd <> y then begin
        let fxz = F.unsafe_get f (row + zd)
        and fzy = F.unsafe_get ft (yrow + zd) in
        let v = fxy /. (fxz +. fzy) in
        if v > !bv || (v = !bv && !bz >= 0 && zd < !bz) then begin
          bv := v;
          bz := zd
        end
      end)
    sorted_dirty;
  (!bv, !bz)

(* --------------------------------------------------------------- gamma *)

let is_candidate d ~r ~z i =
  i <> z && Decay_space.decay d i z >= r && Decay_space.decay d z i >= r

(* gamma_z must be recomputed iff its inputs may have changed: the
   listener moved, or some dirty node is a candidate in the old or the
   new space (covers membership, weight and compat changes — a dirty
   non-candidate-in-both touches no input of gamma_z). *)
let gamma_z_dirty ~r ~prev ~next ~sorted_dirty ~in_dirty z =
  in_dirty.(z)
  || Array.exists
       (fun i -> is_candidate prev ~r ~z i || is_candidate next ~r ~z i)
       sorted_dirty

(* ------------------------------------------------------- global folds *)

let assemble t =
  let n = t.n in
  let zbest = ref { Metricity.x = 0; y = 1; z = 2; value = 1. }
  and pbest = ref { Metricity.x = 0; y = 2; z = 1; value = 1. } in
  for x = 0 to n - 1 do
    let row = x * n in
    for y = 0 to n - 1 do
      if y <> x then begin
        let zv = t.zeta_v.(row + y) in
        if zv > (!zbest).Metricity.value then
          zbest := { Metricity.x; y; z = t.zeta_z.(row + y); value = zv };
        let pv = t.phi_v.(row + y) in
        if pv > (!pbest).Metricity.value then
          (* phi witnesses store the midpoint in [z] (see Metricity):
             iterator coords (x, y, zm) persist as {x; y = zm; z = y}. *)
          pbest := { Metricity.x; y = t.phi_z.(row + y); z = y; value = pv }
      end
    done
  done;
  let gamma =
    match t.r with
    | None -> None
    | Some _ ->
        let gv = ref 0. and gz = ref (-1) in
        for z = 0 to n - 1 do
          if t.gamma_v.(z) > !gv then begin
            gv := t.gamma_v.(z);
            gz := z
          end
        done;
        Some { g_value = !gv; g_z = !gz }
  in
  { zeta = !zbest; phi = !pbest; gamma }

let space t = t.cur
let current t = assemble t

let stats t =
  {
    steps = t.s_steps;
    pairs_full = t.s_pairs_full;
    pairs_patched = t.s_pairs_patched;
    triples_swept = t.s_swept;
    triples_full = t.s_full;
    gamma_recomputed = t.s_gamma_rec;
    gamma_total = t.s_gamma_tot;
    dirty_nodes = t.s_dirty;
  }

(* ------------------------------------------------------- construction *)

let create ?(ctx = Ctx.default) ?r d =
  let n = Decay_space.n d in
  let tol = ctx.Ctx.tol in
  let jobs = Ctx.jobs ctx in
  let t =
    {
      ctx;
      r;
      n;
      cur = d;
      zeta_v = Array.make (n * n) 1.;
      zeta_z = Array.make (n * n) (-1);
      phi_v = Array.make (n * n) 1.;
      phi_z = Array.make (n * n) (-1);
      gamma_v = (match r with Some _ -> Array.make n 0. | None -> [||]);
      s_steps = 0;
      s_pairs_full = 0;
      s_pairs_patched = 0;
      s_swept = 0;
      s_full = 0;
      s_gamma_rec = 0;
      s_gamma_tot = 0;
      s_dirty = 0;
    }
  in
  if n >= 2 then begin
    let f = F.data d and ft = F.transpose d in
    Obs.with_span ~attrs:[ ("n", Obs.I n); ("jobs", Obs.I jobs) ]
      "incremental_create"
    @@ fun () ->
    ignore
      (Par.map_reduce_chunks ~jobs ~lo:0 ~hi:n ~neutral:()
         ~map:(fun lo hi ->
           for x = lo to hi - 1 do
             let row = x * n in
             for y = 0 to n - 1 do
               if y <> x then begin
                 let zv, zz = scan_zeta_pair ~tol f ft n x y in
                 t.zeta_v.(row + y) <- zv;
                 t.zeta_z.(row + y) <- zz;
                 let pv, pz = scan_phi_pair f ft n x y in
                 t.phi_v.(row + y) <- pv;
                 t.phi_z.(row + y) <- pz
               end
             done
           done)
         ~combine:(fun () () -> ()));
    match r with
    | None -> ()
    | Some r ->
        ignore
          (Par.map_reduce_chunks ~jobs ~lo:0 ~hi:n ~neutral:()
             ~map:(fun lo hi ->
               for z = lo to hi - 1 do
                 let v, _ =
                   Fading.gamma_z ?exact_limit:ctx.Ctx.exact_limit d ~z ~r
                 in
                 t.gamma_v.(z) <- v
               done)
             ~combine:(fun () () -> ()))
  end;
  t

(* --------------------------------------------------------------- step *)

let step t ~dirty next =
  let n = t.n in
  if Decay_space.n next <> n then
    invalid_arg
      (Printf.sprintf "Incremental.step: node count changed (%d -> %d)" n
         (Decay_space.n next));
  Array.iter
    (fun i ->
      if i < 0 || i >= n then
        invalid_arg
          (Printf.sprintf "Incremental.step: dirty index %d out of range" i))
    dirty;
  let sorted_dirty = Array.copy dirty in
  Array.sort Int.compare sorted_dirty;
  let in_dirty = Array.make n false in
  Array.iter (fun i -> in_dirty.(i) <- true) sorted_dirty;
  let k = Array.length sorted_dirty in
  let tol = t.ctx.Ctx.tol in
  let jobs = Ctx.jobs t.ctx in
  let prev = t.cur in
  Obs.with_span
    ~attrs:[ ("n", Obs.I n); ("k", Obs.I k); ("jobs", Obs.I jobs) ]
    "incremental_step"
  @@ fun () ->
  if n >= 2 then begin
    let f = F.data next and ft = F.transpose next in
    let full, patched, swept =
      Par.map_reduce_chunks ~jobs ~lo:0 ~hi:n ~neutral:(0, 0, 0)
        ~map:(fun lo hi ->
          let c_full = ref 0 and c_patch = ref 0 and c_swept = ref 0 in
          for x = lo to hi - 1 do
            let row = x * n in
            for y = 0 to n - 1 do
              if y <> x then
                if
                  in_dirty.(x) || in_dirty.(y)
                  || (t.zeta_z.(row + y) >= 0 && in_dirty.(t.zeta_z.(row + y)))
                  || (t.phi_z.(row + y) >= 0 && in_dirty.(t.phi_z.(row + y)))
                then begin
                  (* Dirty endpoint, or a stored argmax that went dirty:
                     the clean-baseline induction breaks, rescan. *)
                  incr c_full;
                  c_swept := !c_swept + (2 * (n - 2));
                  let zv, zz = scan_zeta_pair ~tol f ft n x y in
                  t.zeta_v.(row + y) <- zv;
                  t.zeta_z.(row + y) <- zz;
                  let pv, pz = scan_phi_pair f ft n x y in
                  t.phi_v.(row + y) <- pv;
                  t.phi_z.(row + y) <- pz
                end
                else begin
                  incr c_patch;
                  c_swept := !c_swept + (2 * k);
                  let zv, zz =
                    patch_zeta_pair ~tol f ft n x y ~sorted_dirty
                      t.zeta_v.(row + y)
                      t.zeta_z.(row + y)
                  in
                  t.zeta_v.(row + y) <- zv;
                  t.zeta_z.(row + y) <- zz;
                  let pv, pz =
                    patch_phi_pair f ft n x y ~sorted_dirty
                      t.phi_v.(row + y)
                      t.phi_z.(row + y)
                  in
                  t.phi_v.(row + y) <- pv;
                  t.phi_z.(row + y) <- pz
                end
            done
          done;
          (!c_full, !c_patch, !c_swept))
        ~combine:(fun (a, b, c) (a', b', c') -> (a + a', b + b', c + c'))
    in
    t.s_pairs_full <- t.s_pairs_full + full;
    t.s_pairs_patched <- t.s_pairs_patched + patched;
    t.s_swept <- t.s_swept + swept;
    Obs.add c_swept swept;
    (match t.r with
    | None -> ()
    | Some r ->
        let recomputed =
          Par.map_reduce_chunks ~jobs ~lo:0 ~hi:n ~neutral:0
            ~map:(fun lo hi ->
              let c = ref 0 in
              for z = lo to hi - 1 do
                if gamma_z_dirty ~r ~prev ~next ~sorted_dirty ~in_dirty z
                then begin
                  incr c;
                  let v, _ =
                    Fading.gamma_z ?exact_limit:t.ctx.Ctx.exact_limit next ~z
                      ~r
                  in
                  t.gamma_v.(z) <- v
                end
              done;
              !c)
            ~combine:( + )
        in
        t.s_gamma_rec <- t.s_gamma_rec + recomputed;
        t.s_gamma_tot <- t.s_gamma_tot + n;
        Obs.add c_gamma_rec recomputed)
  end;
  t.s_steps <- t.s_steps + 1;
  t.s_full <- t.s_full + (2 * n * (n - 1) * (n - 2));
  t.s_dirty <- t.s_dirty + k;
  Obs.add c_dirty_rows k;
  Obs.add c_full_equiv (2 * n * (n - 1) * (n - 2));
  t.cur <- next;
  assemble t
