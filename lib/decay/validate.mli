(** Structured validation and repair of raw decay matrices.

    Real measurement campaigns — the kind of data the paper argues should
    drive the model — are noisy: links drop out, receivers censor at the
    noise floor, logging produces NaN holes and ragged rows.  This module
    turns "the matrix is bad" into a {e diagnosis} (which cells, why) and
    a {e repair} under an explicit {!policy}, so the analysis pipeline can
    degrade gracefully instead of crashing or silently computing on
    garbage.

    It operates on plain [float array array] so it sits below
    {!Decay_space} in the dependency order; [Decay_space.of_matrix] routes
    its validation through {!validate_exn}, and the repairing constructors
    live where the space constructor is in scope:
    [Decay_space.of_matrix_repaired] and [Decay_io.of_csv_repaired]. *)

(** One defect of a raw matrix, addressed down to the cell. *)
type issue =
  | Empty  (** no rows at all *)
  | Ragged of { row : int; expected : int; got : int }
      (** row length disagrees with the row count (matrix not square) *)
  | Not_finite of { i : int; j : int; value : float }  (** NaN or infinite *)
  | Non_positive of { i : int; j : int; value : float }
      (** zero or negative decay between distinct nodes *)
  | Nonzero_diagonal of { i : int; value : float }

(** Measurement-quality report over the {e valid} cells (informational —
    none of these are errors; all are common in real campaigns). *)
type profile = {
  n : int;  (** node count *)
  bad_cells : int;  (** total invalid cells (issue list may be truncated) *)
  asymmetric_pairs : int;
      (** unordered pairs whose two directions differ beyond 1e-9 relative *)
  worst_asymmetry : float;
      (** max over pairs of [max (f_ij/f_ji) (f_ji/f_ij)]; [1.] if symmetric *)
  censored_cells : int;
      (** off-diagonal cells sitting exactly at the largest finite decay —
          the signature of noise-floor censoring; [0] unless at least two
          cells saturate *)
  censor_floor : float;  (** that largest finite decay (the suspected floor) *)
}

type diagnosis = {
  issues : issue list;  (** first {!val-max_reported} defects, in row order *)
  truncated : int;  (** defects beyond the reported prefix (count only) *)
  profile : profile option;  (** [None] when the shape itself is broken *)
}

(** What to do with an invalid matrix. *)
type policy =
  | Reject  (** no repairs: any issue fails the build *)
  | Clamp of float
      (** replace each invalid off-diagonal cell with the given finite
          positive value (a noise-floor stand-in) and zero the diagonal *)
  | Symmetrize
      (** patch each invalid cell from its mirror [f(j,i)]; fails if both
          directions of a pair are invalid *)
  | Drop_nodes
      (** greedily remove the nodes incident to invalid cells (a dead
          transceiver) until the induced sub-matrix is clean; fails if
          fewer than two nodes survive *)

(** What a repair actually did — returned alongside the repaired matrix so
    no fix-up is ever silent. *)
type repair = {
  applied : policy;
  cells_clamped : int;
  cells_mirrored : int;
  diagonal_zeroed : int;
  dropped : int list;  (** original node indices removed by [Drop_nodes] *)
}

val max_reported : int
(** Cap on the number of issues kept verbatim in a {!diagnosis}; the
    remainder is counted in [truncated]. *)

val diagnose : float array array -> diagnosis
(** Full scan: every defect (up to {!val-max_reported}, the rest counted)
    plus the measurement {!profile} when the shape is sound. *)

val first_issue : float array array -> issue option
(** Early-exit scan: the first defect in row-major order, or [None] for a
    valid matrix.  The cheap check used on the construction hot path. *)

val is_valid : float array array -> bool
(** [first_issue m = None]. *)

val validate_exn : name:string -> float array array -> unit
(** @raise Invalid_argument with a cell-addressed message on the first
    defect; returns unit on a valid matrix. *)

val repair :
  ?policy:policy ->
  float array array ->
  (float array array * repair, diagnosis) result
(** Apply [policy] (default {!Reject}).  [Ok (m', report)] guarantees [m']
    is a valid decay matrix ([m] is never mutated; with [Reject] and a
    valid input it is returned as-is with an all-zero report).  [Error d]
    carries the full diagnosis of the input.  Shape defects
    ([Empty]/[Ragged]) are unrepairable under every policy.
    @raise Invalid_argument if the [Clamp] value is not finite positive. *)

val suggested_clamp : float array array -> float
(** The largest finite off-diagonal value — the natural noise-floor
    stand-in for {!Clamp} (missing data is read as "decay at least as bad
    as the worst observed"); [1.] when no cell is usable. *)

val issue_to_string : issue -> string
(** Cell-addressed one-line rendering. *)

val pp_issue : Format.formatter -> issue -> unit

val describe : diagnosis -> string
(** One line: the first issue plus a count of the rest; ["valid"] for a
    clean diagnosis. *)

val policy_to_string : policy -> string

val repair_to_string : repair -> string
(** One line summarizing the repairs performed, e.g.
    ["policy clamp=37: 3 cell(s) clamped"]. *)
