(** Diagnostics counters for the optimized sweep kernels.

    Process-global, race-safe (atomics, flushed once per parallel chunk),
    and purely observational: they feed the kernel bench's pruning
    hit-rates and the analysis-cache tests, and never influence results.
    [reset] before a measured region, [snapshot] after. *)

type snapshot = {
  sweeps : int;        (** full sweeps actually executed (cache misses) *)
  triples : int;       (** ordered triples covered by executed ζ/ϕ sweeps *)
  plain_skips : int;   (** dismissed by the plain triangle inequality *)
  cheap_skips : int;   (** dismissed by the log-domain incumbent bound *)
  deep : int;          (** reached the exp check / bisection stage *)
  exp_evals : int;     (** ran the 3-exp holds test *)
  bisections : int;    (** ran the full bisection *)
  row_prunes : int;    (** whole rows skipped by the row bound *)
  pair_prunes : int;   (** whole z-loops skipped by the pair bound *)
  tile_prunes : int;   (** z-tiles skipped by the tile bound *)
}

val reset : unit -> unit
val snapshot : unit -> snapshot

val pruned_fraction : snapshot -> float
(** Fraction of covered triples eliminated wholesale by the row/pair/tile
    bounds (never touched by the inner loop). *)

(**/**)

(* Internal: used by the kernels to publish per-chunk tallies. *)

val sweeps : int Atomic.t
val triples : int Atomic.t
val plain_skips : int Atomic.t
val cheap_skips : int Atomic.t
val deep : int Atomic.t
val exp_evals : int Atomic.t
val bisections : int Atomic.t
val row_prunes : int Atomic.t
val pair_prunes : int Atomic.t
val tile_prunes : int Atomic.t
val add : int Atomic.t -> int -> unit
