(** Diagnostics counters for the optimized sweep kernels.

    Backed by the process-wide {!Bg_prelude.Obs} registry under the
    [kernel.*] names, and purely observational: they feed the kernel
    bench's pruning hit-rates and the analysis-cache tests, and never
    influence results.  [reset] before a measured region, [snapshot]
    after.

    Domain-safety: parallel chunks never write shared counters from
    worker domains.  Each chunk fills a private {!tally}, tallies are
    {!merge}d in the deterministic combine of
    {!Bg_prelude.Parallel.map_reduce_chunks}, and the caller
    {!publish}es the total once per sweep. *)

type snapshot = {
  sweeps : int;        (** full sweeps actually executed (cache misses) *)
  triples : int;       (** ordered triples covered by executed ζ/ϕ sweeps *)
  plain_skips : int;   (** dismissed by the plain triangle inequality *)
  cheap_skips : int;   (** dismissed by the log-domain incumbent bound *)
  deep : int;          (** reached the exp check / bisection stage *)
  exp_evals : int;     (** ran the 3-exp holds test *)
  bisections : int;    (** ran the full bisection *)
  row_prunes : int;    (** whole rows skipped by the row bound *)
  pair_prunes : int;   (** whole z-loops skipped by the pair bound *)
  tile_prunes : int;   (** z-tiles skipped by the tile bound *)
}

val reset : unit -> unit
val snapshot : unit -> snapshot

val pruned_fraction : snapshot -> float
(** Fraction of covered triples eliminated wholesale by the row/pair/tile
    bounds (never touched by the inner loop). *)

(**/**)

(* Internal: used by the kernels to accumulate and publish per-chunk
   tallies. *)

type tally = {
  t_plain : int;
  t_cheap : int;
  t_deep : int;
  t_exp : int;
  t_bis : int;
  t_rows : int;
  t_pairs : int;
  t_tiles : int;
}

val empty_tally : tally
val merge : tally -> tally -> tally

val record_sweep : triples:int -> unit
(* Count one executed sweep covering [triples] ordered triples. *)

val publish : tally -> unit
(* Add a merged tally into the registry; when tracing, also attach the
   headline counts to the innermost open span. *)
