type summary = {
  n : int;
  min_db : float;
  max_db : float;
  median_db : float;
  dynamic_range_db : float;
  asymmetry_db : float;
}

let db x = 10. *. log10 x

let decays_db d =
  let n = Decay_space.n d in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then acc := db (Decay_space.decay d i j) :: !acc
    done
  done;
  Array.of_list !acc

let summarize ?(ctx = Ctx.default) d =
  let module Par = Bg_prelude.Parallel in
  let n = Decay_space.n d in
  if n < 2 then invalid_arg "Statistics.summarize: need at least 2 nodes";
  let xs = decays_db d in
  let lo, hi = Bg_prelude.Stats.min_max xs in
  (* Chunk the row sweep; each chunk reports its largest asymmetry and the
     strict [>] in combine keeps the earliest maximizer, matching the
     sequential pass exactly. *)
  let asym =
    Par.map_reduce_chunks ~jobs:(Ctx.jobs ctx) ~lo:0 ~hi:n ~neutral:0.
      ~map:(fun i_lo i_hi ->
        let worst = ref 0. in
        for i = i_lo to i_hi - 1 do
          for j = i + 1 to n - 1 do
            let a =
              Float.abs
                (db (Decay_space.decay d i j /. Decay_space.decay d j i))
            in
            if a > !worst then worst := a
          done
        done;
        !worst)
      ~combine:(fun a b -> if b > a then b else a)
  in
  {
    n;
    min_db = lo;
    max_db = hi;
    median_db = Bg_prelude.Stats.median xs;
    dynamic_range_db = hi -. lo;
    asymmetry_db = asym;
  }

(* Deprecated optional-argument compat wrapper (see the mli). *)
let summarize_with ?jobs d = summarize ~ctx:(Ctx.make ?jobs ()) d

let effective_alpha ~positions d =
  let n = Decay_space.n d in
  if Array.length positions <> n then
    invalid_arg "Statistics.effective_alpha: positions length mismatch";
  let dists = ref [] and decays = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let dist = Bg_geom.Point.dist positions.(i) positions.(j) in
        if dist > 0. then begin
          dists := dist :: !dists;
          decays := Decay_space.decay d i j :: !decays
        end
      end
    done
  done;
  Bg_prelude.Stats.loglog_fit (Array.of_list !dists) (Array.of_list !decays)
