module Num = Bg_prelude.Numerics
module Par = Bg_prelude.Parallel
module Memo = Bg_prelude.Memo
module Obs = Bg_prelude.Obs
module K = Kernel_stats
module F = Decay_space.Flat

type witness = { x : int; y : int; z : int; value : float }

(* Validity of a given zeta for one triple.  Working in log space avoids
   repeated [**] on huge decays. *)
let triple_holds ~fxy ~fxz ~fzy z =
  let t = 1. /. z in
  exp (t *. log fxz) +. exp (t *. log fzy) >= exp (t *. log fxy)

(* The same predicate over precomputed logs.  Bit-identical to
   [triple_holds] whenever [lxy = log fxy] etc., because [log] is
   deterministic: the kernels below rely on this to reproduce the naive
   sweep exactly while never calling [log] inside a loop. *)
let holds_logs ~lxy ~lxz ~lzy z =
  let t = 1. /. z in
  exp (t *. lxz) +. exp (t *. lzy) >= exp (t *. lxy)

let zeta_triple ?(tol = 1e-9) fxy fxz fzy =
  if fxy <= fxz +. fzy then 1.
  else begin
    (* zeta >= lg (fxy / min side) always suffices: at that zeta the larger
       side alone is within a factor 2^(1/zeta) and the two sides add up. *)
    let m = Float.min fxz fzy in
    let p = triple_holds ~fxy ~fxz ~fzy in
    if p 1. then 1.
    else begin
      (* Bisect, returning the LOWER end of the final bracket.  Underestimating
         the threshold (by < tol) keeps the witness sweep's holds-at-incumbent
         fast path exactly consistent with value comparison: a triple that
         holds at z can never bisect above z, so skipping it commutes with
         taking maxima over any chunking of the sweep. *)
      let lo = ref 1.
      and hi = ref (Float.max 1.5 (Num.log2 (fxy /. m) +. 1e-6)) in
      let iters = ref 0 in
      while
        !hi -. !lo > tol *. Float.max 1. (Float.abs !hi) && !iters < 200
      do
        incr iters;
        let mid = 0.5 *. (!lo +. !hi) in
        if p mid then hi := mid else lo := mid
      done;
      !lo
    end
  end

(* [zeta_triple] for a triple already known to violate the plain triangle
   inequality, with the logs precomputed: the bisection predicate reuses
   them, so the loop runs exp-only.  Same control flow, same floats, same
   result as the tail of [zeta_triple]. *)
let zeta_triple_logs ~tol ~fxy ~fxz ~fzy ~lxy ~lxz ~lzy =
  let p z = holds_logs ~lxy ~lxz ~lzy z in
  if p 1. then 1.
  else begin
    let m = Float.min fxz fzy in
    let lo = ref 1.
    and hi = ref (Float.max 1.5 (Num.log2 (fxy /. m) +. 1e-6)) in
    let iters = ref 0 in
    while !hi -. !lo > tol *. Float.max 1. (Float.abs !hi) && !iters < 200 do
      incr iters;
      let mid = 0.5 *. (!lo +. !hi) in
      if p mid then hi := mid else lo := mid
    done;
    !lo
  end

(* ------------------------------------------------- pruning bound tables *)

(* Per-row / per-column extrema of the off-diagonal decays, in both the
   raw and the log domain, plus tile-granular minima when the space is
   large enough for cache-blocked iteration.  O(n^2) to build — noise
   against the O(n^3) sweeps they prune.

   The pruning invariants (see doc page "flat kernels"):

   - zeta: by AM-GM, [fxz^t + fzy^t >= 2 (fxz fzy)^(t/2)] for t = 1/z > 0,
     so the threshold of a violating triple (x,y,z) is at most
     lg2 (fxy / sqrt (fxz * fzy)) — in log domain
     [lxy - (lxz + lzy)/2 <= ln2 * incumbent] proves the triple holds at
     the incumbent and can be skipped.  (This geometric-mean bound strictly
     dominates the min-side bound lg2 (fxy / min (fxz, fzy)): on geometric
     spaces it dismisses every triple whose two legs are within a ~5.8x
     ratio, which is nearly all of them.)  Substituting row/column/tile/
     global minima for [lxz] and [lzy] only weakens (never falsifies) the
     test, giving sound pair-, row- and tile-level skips.
   - phi: [v = fxy /. (fxz +. fzy)] and float [+.], [/.] are monotone, so
     [fxy /. (row_min + col_min)] computed in float arithmetic is an exact
     upper bound for every v in the z-loop — bounds at every granularity
     are safe without any epsilon margin (the skip is on strict [<] so a
     scope that could tie the incumbent is still scanned).
   - Witness determinism is visit-order independent: a skip is only ever
     justified against the CURRENT incumbent, which never decreases, and
     every skip proves its scope strictly below (zeta: margin; phi:
     strict [<]) the incumbent — so no skipped triple can be the final
     maximum or tie it.  Ties among visited triples are resolved
     lexicographically (smallest [(x, y, z)] in iteration coordinates
     wins), which is exactly the naive lexicographic sweep's first-seen
     tie-break.  That frees the kernels to tile and reorder the loops —
     panels over x, blocks over z — while staying bit-identical to
     [test/naive_ref.ml] at every job count. *)

let ln2 = log 2.

(* Margin covering float rounding of the log-domain bound vs the exp-based
   predicate: triples within the margin fall through to the exact check. *)
let prune_margin = 1e-9

let tile_size = 256
let tile_threshold = 512

(* Width of the x-panels the sweeps block over when [n >= tile_threshold]:
   for each y, the transpose rows [ft]/[lt] of y are reused by every x in
   the panel while the panel's own rows stay cache-resident, dividing the
   dominant memory stream by the panel width.  Below the threshold the
   panel degenerates to a single row and the loop nest is the classic
   x-outer sweep. *)
let panel_width = 16

(* Strict lower bounds of [e^(-j/8)] for j = 0..512 (so down to w = -64):
   libm's [exp] is within 1 ulp (~2.3e-16 relative), so scaling by
   (1 - 1e-13) makes every entry a rigorous underestimate.  The sweep
   combines [exp_lb.(j)] with a truncated alternating series for the
   fractional part to lower-bound [e^w] without calling [exp]. *)
let exp_lb =
  Array.init 513 (fun j -> exp (-0.125 *. float_of_int j) *. (1. -. 1e-13))

type bounds = {
  row_lmin : float array;
  row_lmax : float array;
  col_lmin : float array;
  gmin_l : float;
  row_fmin : float array;
  row_fmax : float array;
  col_fmin : float array;
  gmin_f : float;
  ntiles : int; (* 0 = tiling disabled *)
  row_tlmin : float array; (* x * ntiles + t *)
  col_tlmin : float array;
  row_tfmin : float array;
  col_tfmin : float array;
}

let build_bounds d =
  let n = Decay_space.n d in
  let f = F.data d in
  let lg = F.logs d in
  let ft = F.transpose d in
  let lt = F.log_transpose d in
  let ntiles =
    if n >= tile_threshold then (n + tile_size - 1) / tile_size else 0
  in
  let row_lmin = Array.make n infinity
  and row_lmax = Array.make n neg_infinity
  and col_lmin = Array.make n infinity
  and row_fmin = Array.make n infinity
  and row_fmax = Array.make n neg_infinity
  and col_fmin = Array.make n infinity in
  let row_tlmin = Array.make (max 1 (n * ntiles)) infinity
  and col_tlmin = Array.make (max 1 (n * ntiles)) infinity
  and row_tfmin = Array.make (max 1 (n * ntiles)) infinity
  and col_tfmin = Array.make (max 1 (n * ntiles)) infinity in
  for i = 0 to n - 1 do
    let base = i * n in
    for j = 0 to n - 1 do
      if j <> i then begin
        let v = F.unsafe_get f (base + j)
        and l = F.unsafe_get lg (base + j)
        and vt = F.unsafe_get ft (base + j)
        and ltv = F.unsafe_get lt (base + j) in
        if v < row_fmin.(i) then row_fmin.(i) <- v;
        if v > row_fmax.(i) then row_fmax.(i) <- v;
        if l < row_lmin.(i) then row_lmin.(i) <- l;
        if l > row_lmax.(i) then row_lmax.(i) <- l;
        if vt < col_fmin.(i) then col_fmin.(i) <- vt;
        if ltv < col_lmin.(i) then col_lmin.(i) <- ltv;
        if ntiles > 0 then begin
          let t = (i * ntiles) + (j / tile_size) in
          if l < row_tlmin.(t) then row_tlmin.(t) <- l;
          if ltv < col_tlmin.(t) then col_tlmin.(t) <- ltv;
          if v < row_tfmin.(t) then row_tfmin.(t) <- v;
          if vt < col_tfmin.(t) then col_tfmin.(t) <- vt
        end
      end
    done
  done;
  let gmin_l = Array.fold_left Float.min infinity row_lmin
  and gmin_f = Array.fold_left Float.min infinity row_fmin in
  {
    row_lmin; row_lmax; col_lmin; gmin_l;
    row_fmin; row_fmax; col_fmin; gmin_f;
    ntiles; row_tlmin; col_tlmin; row_tfmin; col_tfmin;
  }

(* Lexicographic order on iteration coordinates — the naive sweep's
   first-seen tie-break, made explicit so any visit order agrees with it. *)
let lex_before x y z x' y' z' =
  x < x' || (x = x' && (y < y' || (y = y' && z < z')))

(* Combine chunked best-witnesses: strict value improvement, ties broken
   towards the lexicographically smaller triple.  Associative-enough for
   the chunked fold at any chunking, and exactly the sequential sweep's
   result. *)
let better a b =
  if b.value > a.value then b
  else if b.value = a.value && lex_before b.x b.y b.z a.x a.y a.z then b
  else a

(* phi stores its witness with the y/z roles swapped (see [phi_chunk]);
   its iteration coordinates are [(w.x, w.z, w.y)]. *)
let better_phi a b =
  if b.value > a.value then b
  else if b.value = a.value && lex_before b.x b.z b.y a.x a.z a.y then b
  else a

(* ----------------------------------------------------------- zeta sweep *)

let zeta_chunk ~tol d bb init x_lo x_hi =
  let n = Decay_space.n d in
  let f = F.data d in
  let lg = F.logs d in
  let ft = F.transpose d in
  let lt = F.log_transpose d in
  let c_plain = ref 0 and c_scanned = ref 0 and c_deep = ref 0
  and c_exp = ref 0 and c_bis = ref 0
  and c_rows = ref 0 and c_pairs = ref 0 and c_tiles = ref 0
  and c_phantom = ref 0 in
  let best = ref init in
  (* Mutable hot-loop scalars, kept in a float array so the loop reads
     them unboxed (a [float ref] would box):
       [state.(0)] — the geometric-mean skip threshold [cut],
       [state.(1)] — [1 /. incumbent], the exponent used by the cubic
                     sandwich test.
     Both are refreshed at every (x, y) pair and whenever the incumbent
     grows.  Using a reciprocal computed from an incumbent that was
     current at refresh time is sound even if it could go stale: a
     smaller incumbent only makes every test more conservative. *)
  let state = Array.make 2 0. in
  (* [tcount = 1] with [bb.ntiles = 0] degenerates the tile loop to a
     single untruncated z-range, so small and large n share one kernel
     body (the candidate logic below is deliberately inlined once — as a
     local closure it cost an indirect call plus environment loads per
     candidate, ~25 ns on 2.4M calls at n = 256). *)
  let tcount = if bb.ntiles = 0 then 1 else bb.ntiles in
  let pw = if n >= tile_threshold then panel_width else 1 in
  let row_done = Array.make pw false in
  let p_lo = ref x_lo in
  while !p_lo < x_hi do
    let p0 = !p_lo in
    let p_hi = min x_hi (p0 + pw) in
    (* Row-skip prepass against the incumbent at panel entry.  The row
       bound is monotone in the incumbent, so a row dismissed here stays
       dismissed; a row it cannot dismiss yet is still covered pair by
       pair below (the pair bound dominates the row bound). *)
    for x = p0 to p_hi - 1 do
      let skip =
        bb.row_lmax.(x) -. (0.5 *. (bb.row_lmin.(x) +. bb.gmin_l))
        <= (ln2 *. (!best).value) -. prune_margin
      in
      row_done.(x - p0) <- skip;
      if skip then incr c_rows
    done;
    for y = 0 to n - 1 do
      for x = p0 to p_hi - 1 do
        if (not row_done.(x - p0)) && y <> x then begin
          let row = x * n in
          let fxy = F.unsafe_get f (row + y) in
          let lxy = F.unsafe_get lg (row + y) in
          let psum = 0.5 *. (bb.row_lmin.(x) +. bb.col_lmin.(y)) in
          if lxy -. psum <= (ln2 *. (!best).value) -. prune_margin then
            incr c_pairs
          else begin
            let yrow = y * n in
            (* The z-loop's hot path touches only the two log streams: a
               triple enters the candidate block iff [lxz + lzy < cut],
               i.e. the geometric-mean bound cannot dismiss it at the
               incumbent.  The loop runs over ALL z including x and y —
               the diagonal zeros route those through the plain-triangle
               branch ([fxz = 0], [fzy = fxy], so [fxy <= fxz +. fzy]
               holds) and [c_phantom] backs them out of the counters.
               The raw plain check lives inside the candidate block: a
               sound skip needs no raw loads, and a margin-band
               fall-through that bisects a plain triple is harmless
               because [zeta_triple_logs] re-checks [fxy <= fxz +. fzy]
               and returns 1. *)
            Array.unsafe_set state 0
              (2. *. (lxy -. ((ln2 *. (!best).value) -. prune_margin)));
            Array.unsafe_set state 1 (1. /. (!best).value);
            for t = 0 to tcount - 1 do
              let lo = t * tile_size in
              let hi = if bb.ntiles = 0 then n else min n (lo + tile_size) in
              if
                bb.ntiles > 0
                && lxy
                   -. (0.5
                      *. (bb.row_tlmin.((x * bb.ntiles) + t)
                         +. bb.col_tlmin.((y * bb.ntiles) + t)))
                   <= (ln2 *. (!best).value) -. prune_margin
              then incr c_tiles
              else begin
                for z = lo to hi - 1 do
                  let lxz = F.unsafe_get lg (row + z)
                  and lzy = F.unsafe_get lt (yrow + z) in
                  if lxz +. lzy < Array.unsafe_get state 0 then begin
                    (* Branchless leg split ([Float.abs] compiles to a
                       sign-mask, no data-dependent branch):
                         lmax = (lxz + lzy + |lxz - lzy|) / 2,
                         lmin - lmax = -|lxz - lzy|. *)
                    let dl = Float.abs (lxz -. lzy) in
                    let lmax = 0.5 *. (lxz +. lzy +. dl) in
                    if lxy <= lmax -. prune_margin then
                      (* fxy < max leg with real-math margin, so the
                         naive plain-triangle check passes too: a sound
                         skip with no raw loads. *)
                      incr c_plain
                    else begin
                      (* Normalized log-domain coordinates at the
                         incumbent:  holds <=> u <= g (w),
                         g (w) = ln (1 + e^w), with
                         u = (lxy - lmax)/z >= 0 and
                         w = (lmin - lmax)/z <= 0.  g''' (0) = 0 and
                         g'''' >= -1/8 everywhere, so the order-3 Taylor
                         expansion with its Lagrange remainder gives the
                         arithmetic-only minorant
                           ln2 + w/2 + w^2/8 - w^4/192 <= g (w)
                         and the quartic test can prove 'holds' without
                         transcendentals.  A diagonal z (z = x or z = y)
                         has an infinite log and drifts through here as
                         NaN — every comparison fails and it lands on
                         the exact plain check in the deep block. *)
                      let ti = Array.unsafe_get state 1 in
                      let u = ti *. (lxy -. lmax) in
                      let w = -. (ti *. dl) in
                      let w2 = w *. w in
                      if
                        u
                        <= ln2
                           +. (0.5 *. w)
                           +. (w2 *. (0.125 -. (w2 *. 0.005208333333333334)))
                           -. prune_margin
                      then ()
                      else begin
                        (* Second-chance arithmetic bound for the far
                           tail (w << 0, where the cubic goes negative):
                           split w = -j/8 - r with j integer and
                           r in [0, 1/8); then
                             e^w >= exp_lb.(j) * (1 - r + r^2/2 - r^3/6)
                           (table entries underestimate e^(-j/8); the
                           truncated alternating series underestimates
                           e^(-r)), and with t = p/(p + 2) the artanh
                           series gives
                             g (w) = ln (1 + e^w) >= 2t + 2t^3/3
                           (remaining terms all positive) — a table
                           load, a short polynomial and one divide
                           instead of exp + log1p, within ~1e-5 relative
                           of exact. *)
                        let p =
                          if w >= -64. then begin
                            let j = int_of_float (-8. *. w) in
                            let r = -.w -. (0.125 *. float_of_int j) in
                            Array.unsafe_get exp_lb j
                            *. (1.
                               -. (r
                                  *. (1.
                                     -. (r
                                        *. (0.5
                                           -. (r *. 0.16666666666666666))))))
                          end
                          else 0.
                        in
                        let t' = p /. (2. +. p) in
                        if
                          u
                          <= (t' *. (2. +. (0.6666666666666666 *. t' *. t')))
                             -. prune_margin
                        then ()
                        else begin
                        (* Only now touch the raw streams: the exact
                           plain-triangle test (bit-identical to the
                           naive sweep's) and, past it, the one-exp
                           sandwich against the margin. *)
                        let fxz = F.unsafe_get f (row + z)
                        and fzy = F.unsafe_get ft (yrow + z) in
                        if fxy <= fxz +. fzy then incr c_plain
                        else begin
                        incr c_deep;
                        incr c_exp;
                        let g = Float.log1p (exp w) in
                        let b = !best in
                        let holds =
                          if u <= g -. prune_margin then true
                          else if u > g +. prune_margin then
                            false (* provably fails at the incumbent *)
                          else holds_logs ~lxy ~lxz ~lzy b.value
                        in
                        if not holds then begin
                          incr c_bis;
                          let v =
                            zeta_triple_logs ~tol ~fxy ~fxz ~fzy ~lxy ~lxz
                              ~lzy
                          in
                          if
                            v > b.value
                            || (v = b.value
                               && lex_before x y z b.x b.y b.z)
                          then begin
                            best := { x; y; z; value = v };
                            Array.unsafe_set state 0
                              (2. *. (lxy -. ((ln2 *. v) -. prune_margin)));
                            Array.unsafe_set state 1 (1. /. v)
                          end
                        end
                        end
                      end
                      end
                    end
                  end
                done;
                c_scanned := !c_scanned + (hi - lo);
                if lo <= x && x < hi then incr c_phantom;
                if lo <= y && y < hi then incr c_phantom
              end
            done
          end
        end
      done
    done;
    p_lo := p_hi
  done;
  ( !best,
    {
      K.t_plain = !c_plain - !c_phantom;
      t_cheap = !c_scanned - !c_plain - !c_deep;
      t_deep = !c_deep;
      t_exp = !c_exp;
      t_bis = !c_bis;
      t_rows = !c_rows;
      t_pairs = !c_pairs;
      t_tiles = !c_tiles;
    } )

let zeta_sweep ~tol ~jobs d =
  let n = Decay_space.n d in
  (* Warm the views and bound tables on the caller's thread: construction
     is race-free either way, this just keeps the build cost out of the
     parallel region. *)
  let bb = build_bounds d in
  Obs.with_span ~attrs:[ ("n", Obs.I n); ("jobs", Obs.I jobs) ] "zeta_sweep"
  @@ fun () ->
  K.record_sweep ~triples:(n * (n - 1) * (n - 2));
  let init = { x = 0; y = 1; z = 2; value = 1. } in
  let witness, tally =
    Par.map_reduce_chunks ~jobs ~lo:0 ~hi:n ~neutral:(init, K.empty_tally)
      ~map:(fun x_lo x_hi -> zeta_chunk ~tol d bb init x_lo x_hi)
      ~combine:(fun (w1, t1) (w2, t2) -> (better w1 w2, K.merge t1 t2))
  in
  K.publish tally;
  witness

let zeta_cache : (string * float, witness) Memo.t =
  Memo.create ~max_size:256 ~name:"zeta" ()

let phi_cache : (string, witness) Memo.t =
  Memo.create ~max_size:256 ~name:"phi" ()

let zeta_witness ?(ctx = Ctx.default) d =
  if Decay_space.n d < 3 then { x = 0; y = 0; z = 0; value = 1. }
  else begin
    let jobs = Ctx.jobs ctx in
    let compute () = zeta_sweep ~tol:ctx.Ctx.tol ~jobs d in
    if ctx.Ctx.cache then
      Memo.find_or_add zeta_cache (Decay_space.digest d, ctx.Ctx.tol) compute
    else compute ()
  end

let zeta ?ctx d = (zeta_witness ?ctx d).value

(* Deprecated optional-argument compat wrappers (see the mli). *)
let zeta_witness_with ?tol ?jobs ?cache d =
  zeta_witness ~ctx:(Ctx.make ?tol ?jobs ?cache ()) d

let zeta_with ?tol ?jobs ?cache d =
  zeta ~ctx:(Ctx.make ?tol ?jobs ?cache ()) d

let zeta_sampled ?(tol = 1e-9) ~samples rng d =
  let n = Decay_space.n d in
  if n < 3 then invalid_arg "Metricity.zeta_sampled: need at least 3 nodes";
  let best = ref 1. in
  for _ = 1 to samples do
    let x = Bg_prelude.Rng.int rng n in
    let y = ref (Bg_prelude.Rng.int rng n) in
    while !y = x do
      y := Bg_prelude.Rng.int rng n
    done;
    let z = ref (Bg_prelude.Rng.int rng n) in
    while !z = x || !z = !y do
      z := Bg_prelude.Rng.int rng n
    done;
    let fxy = Decay_space.decay d x !y
    and fxz = Decay_space.decay d x !z
    and fzy = Decay_space.decay d !z !y in
    if fxy > fxz +. fzy && not (triple_holds ~fxy ~fxz ~fzy !best) then begin
      let v = zeta_triple ~tol fxy fxz fzy in
      if v > !best then best := v
    end
  done;
  !best

let zeta_subsampled ?tol ?(rounds = 8) ~nodes rng d =
  let n = Decay_space.n d in
  if nodes < 3 || nodes > n then
    invalid_arg "Metricity.zeta_subsampled: need 3 <= nodes <= n";
  let all = Array.init n Fun.id in
  let best = ref 1. in
  for _ = 1 to rounds do
    let idx = Bg_prelude.Rng.sample rng nodes all in
    let sub = Decay_space.sub_space d idx in
    let w = zeta_witness ~ctx:(Ctx.make ?tol ()) sub in
    if w.value > !best then best := w.value
  done;
  !best

let zeta_upper_bound ?jobs d =
  let n = Decay_space.n d in
  if n < 2 then 1.
  else begin
    let f = F.data d in
    let mn, mx =
      Par.map_reduce_chunks
        ~jobs:(Par.resolve_jobs jobs)
        ~lo:0 ~hi:n ~neutral:(infinity, 0.)
        ~map:(fun lo hi ->
          let mn = ref infinity and mx = ref 0. in
          for i = lo to hi - 1 do
            let base = i * n in
            for j = 0 to n - 1 do
              if i <> j then begin
                let v = F.unsafe_get f (base + j) in
                if v < !mn then mn := v;
                if v > !mx then mx := v
              end
            done
          done;
          (!mn, !mx))
        ~combine:(fun (mn1, mx1) (mn2, mx2) ->
          (Float.min mn1 mn2, Float.max mx1 mx2))
    in
    Float.max 1. (Num.log2 (mx /. mn))
  end

let holds_at ?jobs d z =
  let n = Decay_space.n d in
  n < 3
  ||
  let z' = z +. 1e-7 in
  let bb = build_bounds d in
  let f = F.data d in
  let lg = F.logs d in
  let ft = F.transpose d in
  let lt = F.log_transpose d in
  let chunk x_lo x_hi =
    let ok = ref true in
    let x = ref x_lo in
    while !ok && !x < x_hi do
      let x0 = !x in
      let row = x0 * n in
      if
        not
          (bb.row_lmax.(x0) -. (0.5 *. (bb.row_lmin.(x0) +. bb.gmin_l))
          <= (ln2 *. z') -. prune_margin)
      then begin
        let y = ref 0 in
        while !ok && !y < n do
          let y0 = !y in
          if y0 <> x0 then begin
            let lxy = F.unsafe_get lg (row + y0) in
            let psum = 0.5 *. (bb.row_lmin.(x0) +. bb.col_lmin.(y0)) in
            if not (lxy -. psum <= (ln2 *. z') -. prune_margin) then begin
              let fxy = F.unsafe_get f (row + y0) in
              let yrow = y0 * n in
              let zi = ref 0 in
              while !ok && !zi < n do
                let z0 = !zi in
                if z0 <> x0 && z0 <> y0 then begin
                  let fxz = F.unsafe_get f (row + z0)
                  and fzy = F.unsafe_get ft (yrow + z0) in
                  if fxy > fxz +. fzy then begin
                    let lxz = F.unsafe_get lg (row + z0)
                    and lzy = F.unsafe_get lt (yrow + z0) in
                    if
                      not
                        (lxy -. (0.5 *. (lxz +. lzy))
                        <= (ln2 *. z') -. prune_margin)
                    then
                      if
                        lxy -. Float.max lxz lzy > (ln2 *. z') +. prune_margin
                      then ok := false (* provably fails at z' *)
                      else if not (holds_logs ~lxy ~lxz ~lzy z') then
                        ok := false
                  end
                end;
                incr zi
              done
            end
          end;
          incr y
        done
      end;
      incr x
    done;
    !ok
  in
  Par.map_reduce_chunks
    ~jobs:(Par.resolve_jobs jobs)
    ~lo:0 ~hi:n ~neutral:true ~map:chunk ~combine:( && )

(* ------------------------------------------------------------ phi sweep *)

let phi_chunk d bb init x_lo x_hi =
  let n = Decay_space.n d in
  let f = F.data d in
  let ft = F.transpose d in
  let c_rows = ref 0 and c_pairs = ref 0 and c_tiles = ref 0
  and c_deep = ref 0 in
  let best = ref init in
  let pw = if n >= tile_threshold then panel_width else 1 in
  let row_done = Array.make pw false in
  let p_lo = ref x_lo in
  while !p_lo < x_hi do
    let p0 = !p_lo in
    let p_hi = min x_hi (p0 + pw) in
    (* Float [+.] and [/.] are monotone, so these bounds dominate every v
       in their scope exactly.  Skips are on strict [<]: a scope whose
       bound ties the incumbent is still scanned, so the lex tie-break
       below sees every potential tying triple whatever the visit
       order. *)
    for x = p0 to p_hi - 1 do
      let skip =
        bb.row_fmax.(x) /. (bb.row_fmin.(x) +. bb.gmin_f) < (!best).value
      in
      row_done.(x - p0) <- skip;
      if skip then incr c_rows
    done;
    for y = 0 to n - 1 do
      for x = p0 to p_hi - 1 do
        if (not row_done.(x - p0)) && y <> x then begin
          let row = x * n in
          let fxy = F.unsafe_get f (row + y) in
          if fxy /. (bb.row_fmin.(x) +. bb.col_fmin.(y)) < (!best).value
          then incr c_pairs
          else begin
            let yrow = y * n in
            let scan z_lo z_hi =
              for z = z_lo to z_hi - 1 do
                if z <> x && z <> y then begin
                  let fxz = F.unsafe_get f (row + z)
                  and fzy = F.unsafe_get ft (yrow + z) in
                  incr c_deep;
                  let v = fxy /. (fxz +. fzy) in
                  let b = !best in
                  (* phi compares f(x,z) against f(x,y) + f(y,z): outer
                     pair (x,z) with midpoint y.  The iterator hands us
                     exactly that inequality's decays with roles named
                     (x, y, z) = (start, end, midpoint), so the witness
                     stores the iterator's z as the midpoint field y. *)
                  if
                    v > b.value
                    || (v = b.value && lex_before x y z b.x b.z b.y)
                  then best := { x; y = z; z = y; value = v }
                end
              done
            in
            if bb.ntiles = 0 then scan 0 n
            else
              for t = 0 to bb.ntiles - 1 do
                let tmin =
                  bb.row_tfmin.((x * bb.ntiles) + t)
                  +. bb.col_tfmin.((y * bb.ntiles) + t)
                in
                if fxy /. tmin < (!best).value then incr c_tiles
                else scan (t * tile_size) (min n ((t + 1) * tile_size))
              done
          end
        end
      done
    done;
    p_lo := p_hi
  done;
  ( !best,
    {
      K.empty_tally with
      K.t_deep = !c_deep;
      t_rows = !c_rows;
      t_pairs = !c_pairs;
      t_tiles = !c_tiles;
    } )

let phi_sweep ~jobs d =
  let n = Decay_space.n d in
  let bb = build_bounds d in
  Obs.with_span ~attrs:[ ("n", Obs.I n); ("jobs", Obs.I jobs) ] "phi_sweep"
  @@ fun () ->
  K.record_sweep ~triples:(n * (n - 1) * (n - 2));
  let init = { x = 0; y = 2; z = 1; value = 1. } in
  let witness, tally =
    Par.map_reduce_chunks ~jobs ~lo:0 ~hi:n ~neutral:(init, K.empty_tally)
      ~map:(fun x_lo x_hi -> phi_chunk d bb init x_lo x_hi)
      ~combine:(fun (w1, t1) (w2, t2) -> (better_phi w1 w2, K.merge t1 t2))
  in
  K.publish tally;
  witness

let phi_witness ?(ctx = Ctx.default) d =
  if Decay_space.n d < 3 then { x = 0; y = 0; z = 0; value = 1. }
  else begin
    let jobs = Ctx.jobs ctx in
    let compute () = phi_sweep ~jobs d in
    if ctx.Ctx.cache then
      Memo.find_or_add phi_cache (Decay_space.digest d) compute
    else compute ()
  end

let phi ?ctx d = (phi_witness ?ctx d).value
let phi_log ?ctx d = Num.log2 (phi ?ctx d)

(* Deprecated optional-argument compat wrappers (see the mli). *)
let phi_witness_with ?jobs ?cache d =
  phi_witness ~ctx:(Ctx.make ?jobs ?cache ()) d

let phi_with ?jobs ?cache d = phi ~ctx:(Ctx.make ?jobs ?cache ()) d
let phi_log_with ?jobs ?cache d = phi_log ~ctx:(Ctx.make ?jobs ?cache ()) d

(* ----------------------------------------------------- cache management *)

let cache_stats () =
  ( Memo.hits zeta_cache + Memo.hits phi_cache,
    Memo.misses zeta_cache + Memo.misses phi_cache )

let clear_caches () =
  Memo.clear zeta_cache;
  Memo.clear phi_cache;
  Memo.reset_stats zeta_cache;
  Memo.reset_stats phi_cache
