module Num = Bg_prelude.Numerics
module Par = Bg_prelude.Parallel

type witness = { x : int; y : int; z : int; value : float }

(* Validity of a given zeta for one triple.  Working in log space avoids
   repeated [**] on huge decays. *)
let triple_holds ~fxy ~fxz ~fzy z =
  let t = 1. /. z in
  exp (t *. log fxz) +. exp (t *. log fzy) >= exp (t *. log fxy)

let zeta_triple ?(tol = 1e-9) fxy fxz fzy =
  if fxy <= fxz +. fzy then 1.
  else begin
    (* zeta >= lg (fxy / min side) always suffices: at that zeta the larger
       side alone is within a factor 2^(1/zeta) and the two sides add up. *)
    let m = Float.min fxz fzy in
    let p = triple_holds ~fxy ~fxz ~fzy in
    if p 1. then 1.
    else begin
      (* Bisect, returning the LOWER end of the final bracket.  Underestimating
         the threshold (by < tol) keeps the witness sweep's holds-at-incumbent
         fast path exactly consistent with value comparison: a triple that
         holds at z can never bisect above z, so skipping it commutes with
         taking maxima over any chunking of the sweep. *)
      let lo = ref 1.
      and hi = ref (Float.max 1.5 (Num.log2 (fxy /. m) +. 1e-6)) in
      let iters = ref 0 in
      while
        !hi -. !lo > tol *. Float.max 1. (Float.abs !hi) && !iters < 200
      do
        incr iters;
        let mid = 0.5 *. (!lo +. !hi) in
        if p mid then hi := mid else lo := mid
      done;
      !lo
    end
  end

(* Fold [step] over all ordered triples of distinct nodes whose first
   coordinate lies in [x_lo, x_hi) — the chunkable unit of every triple
   sweep below.  The full sweep is the [0, n) range. *)
let fold_triples_range d ~x_lo ~x_hi init step =
  let n = Decay_space.n d in
  let f = Decay_space.matrix d in
  let acc = ref init in
  for x = x_lo to x_hi - 1 do
    for y = 0 to n - 1 do
      if y <> x then
        for z = 0 to n - 1 do
          if z <> x && z <> y then
            acc := step !acc ~x ~y ~z ~fxy:f.(x).(y) ~fxz:f.(x).(z) ~fzy:f.(z).(y)
        done
    done
  done;
  !acc

(* Combine chunked best-witnesses: strict improvement only, so on ties the
   left (earlier chunk, hence lexicographically smaller (x,y,z)) witness
   survives — exactly the sequential sweep's tie-breaking. *)
let better a b = if b.value > a.value then b else a

let zeta_witness ?(tol = 1e-9) ?jobs d =
  if Decay_space.n d < 3 then { x = 0; y = 0; z = 0; value = 1. }
  else begin
    let init = { x = 0; y = 1; z = 2; value = 1. } in
    let step best ~x ~y ~z ~fxy ~fxz ~fzy =
      (* Fast path: if the inequality already holds at the incumbent zeta,
         this triple cannot raise the maximum (validity is monotone). *)
      if fxy <= fxz +. fzy then best
      else if triple_holds ~fxy ~fxz ~fzy best.value then best
      else begin
        let v = zeta_triple ~tol fxy fxz fzy in
        if v > best.value then { x; y; z; value = v } else best
      end
    in
    Par.map_reduce_chunks
      ~jobs:(Par.resolve_jobs jobs)
      ~lo:0 ~hi:(Decay_space.n d) ~neutral:init
      ~map:(fun x_lo x_hi -> fold_triples_range d ~x_lo ~x_hi init step)
      ~combine:better
  end

let zeta ?tol ?jobs d = (zeta_witness ?tol ?jobs d).value

let zeta_sampled ?(tol = 1e-9) ~samples rng d =
  let n = Decay_space.n d in
  if n < 3 then invalid_arg "Metricity.zeta_sampled: need at least 3 nodes";
  let best = ref 1. in
  for _ = 1 to samples do
    let x = Bg_prelude.Rng.int rng n in
    let y = ref (Bg_prelude.Rng.int rng n) in
    while !y = x do
      y := Bg_prelude.Rng.int rng n
    done;
    let z = ref (Bg_prelude.Rng.int rng n) in
    while !z = x || !z = !y do
      z := Bg_prelude.Rng.int rng n
    done;
    let fxy = Decay_space.decay d x !y
    and fxz = Decay_space.decay d x !z
    and fzy = Decay_space.decay d !z !y in
    if fxy > fxz +. fzy && not (triple_holds ~fxy ~fxz ~fzy !best) then begin
      let v = zeta_triple ~tol fxy fxz fzy in
      if v > !best then best := v
    end
  done;
  !best

let zeta_subsampled ?tol ?(rounds = 8) ~nodes rng d =
  let n = Decay_space.n d in
  if nodes < 3 || nodes > n then
    invalid_arg "Metricity.zeta_subsampled: need 3 <= nodes <= n";
  let all = Array.init n Fun.id in
  let best = ref 1. in
  for _ = 1 to rounds do
    let idx = Bg_prelude.Rng.sample rng nodes all in
    let sub = Decay_space.sub_space d idx in
    let w = zeta_witness ?tol sub in
    if w.value > !best then best := w.value
  done;
  !best

let zeta_upper_bound ?jobs d =
  let n = Decay_space.n d in
  if n < 2 then 1.
  else begin
    let mn, mx =
      Par.map_reduce_chunks
        ~jobs:(Par.resolve_jobs jobs)
        ~lo:0 ~hi:n ~neutral:(infinity, 0.)
        ~map:(fun lo hi ->
          let mn = ref infinity and mx = ref 0. in
          for i = lo to hi - 1 do
            for j = 0 to n - 1 do
              if i <> j then begin
                let v = Decay_space.decay d i j in
                if v < !mn then mn := v;
                if v > !mx then mx := v
              end
            done
          done;
          (!mn, !mx))
        ~combine:(fun (mn1, mx1) (mn2, mx2) ->
          (Float.min mn1 mn2, Float.max mx1 mx2))
    in
    Float.max 1. (Num.log2 (mx /. mn))
  end

let holds_at ?jobs d z =
  Decay_space.n d < 3
  || Par.map_reduce_chunks
       ~jobs:(Par.resolve_jobs jobs)
       ~lo:0 ~hi:(Decay_space.n d) ~neutral:true
       ~map:(fun x_lo x_hi ->
         fold_triples_range d ~x_lo ~x_hi true
           (fun ok ~x:_ ~y:_ ~z:_ ~fxy ~fxz ~fzy ->
             ok
             && (fxy <= fxz +. fzy
                || triple_holds ~fxy ~fxz ~fzy (z +. 1e-7))))
       ~combine:( && )

let phi_witness ?jobs d =
  if Decay_space.n d < 3 then { x = 0; y = 0; z = 0; value = 1. }
  else begin
    (* phi compares f(x,z) against f(x,y) + f(y,z): outer pair (x,z) with
       midpoint y.  The triple iterator hands us exactly that inequality's
       decays with its roles named (x, y, z) = (start, end, midpoint), so
       the witness stores the iterator's z as the midpoint field y. *)
    let init = { x = 0; y = 2; z = 1; value = 1. } in
    let step best ~x ~y ~z ~fxy ~fxz ~fzy =
      let v = fxy /. (fxz +. fzy) in
      if v > best.value then { x; y = z; z = y; value = v } else best
    in
    Par.map_reduce_chunks
      ~jobs:(Par.resolve_jobs jobs)
      ~lo:0 ~hi:(Decay_space.n d) ~neutral:init
      ~map:(fun x_lo x_hi -> fold_triples_range d ~x_lo ~x_hi init step)
      ~combine:better
  end

let phi ?jobs d = (phi_witness ?jobs d).value
let phi_log ?jobs d = Num.log2 (phi ?jobs d)
