(** Shared analysis context — the one record threading tolerance,
    parallelism, caching and solver limits through every kernel entry
    point.

    Historically [Metricity.zeta], [Fading.gamma] and
    [Statistics.summarize] each grew their own [?tol ?jobs ?cache]
    optional arguments; a caller tuning one knob had to know which
    function accepted which subset.  A [Ctx.t] carries all of them at
    once and is accepted (as [?ctx]) by every sweep entry point, by
    {!Estimators} and by [Core.Analysis.run].  Build one with record
    update on {!default} so new fields never break call sites:
    [{ Ctx.default with jobs = Some 4 }]. *)

type t = {
  tol : float;
      (** relative bisection tolerance for the metricity bisection
          (default [1e-9]) *)
  jobs : int option;
      (** parallelism for the triple sweeps; [None] defers to
          {!Bg_prelude.Parallel.default_jobs}.  Results are identical at
          every job count. *)
  cache : bool;
      (** reuse results memoized under the space's content
          {!Decay_space.digest} (default [true]) *)
  exact_limit : int option;
      (** branch-and-bound size cap for the packing / independence /
          MIS solvers; [None] keeps each solver's own default *)
}

val default : t
(** [tol = 1e-9], ambient parallelism, caching on, solver defaults. *)

val make :
  ?tol:float -> ?jobs:int -> ?cache:bool -> ?exact_limit:int -> unit -> t
(** Keyword constructor for call sites that prefer labels over record
    update. *)

val sequential : t
(** {!default} pinned to [jobs = Some 1]. *)

val uncached : t
(** {!default} with [cache = false] — for benchmarks and tests that must
    measure (or witness) the sweep itself. *)

val jobs : t -> int
(** The effective job count: [resolve_jobs t.jobs]. *)

val pp : Format.formatter -> t -> unit
