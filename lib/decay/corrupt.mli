(** Seeded injection of realistic measurement faults.

    The paper's companion testbed data is noisy, censored at the noise
    floor, and missing links; this module reproduces those defects on
    demand so the fault-tolerance pipeline ({!Validate}, the isolated
    experiment runner) can be exercised deterministically.  [apply]
    returns a {e raw} matrix — possibly invalid on purpose — to be pushed
    through {!Decay_space.of_matrix_repaired}; it never mutates the input
    space. *)

(** A corruption model.  [Dropout]/[Nan_holes] produce invalid matrices
    (infinite / NaN cells); [Censor]/[Spikes] produce valid but degenerate
    ones (saturated plateaus, outliers). *)
type mode =
  | Dropout of float
      (** each directed link is lost (decay [infinity]) with this
          probability — a link with no successful measurement *)
  | Censor of float
      (** noise-floor censoring: decays above the given percentile
          (0..100) of the off-diagonal decays are reported as that floor *)
  | Spikes of { prob : float; factor : float }
      (** multipath outliers: with probability [prob] a decay is
          multiplied or divided by [factor] *)
  | Nan_holes of float  (** each cell becomes NaN with this probability *)

val label : mode -> string
(** Short human-readable tag, e.g. ["dropout(p=0.1)"]. *)

val default_suite : mode list
(** One representative instance of each mode — the fault set experiment
    E29 sweeps. *)

val apply : seed:int -> mode -> Decay_space.t -> float array array
(** Corrupt a copy of the space's matrix.  Deterministic: one fixed-seed
    stream drawn over cells in row-major order, so equal
    [(seed, mode, space)] produce bit-equal corrupted matrices.
    @raise Invalid_argument on probabilities outside [0,1], a censor
    percentile outside [0,100], or a non-positive spike factor. *)
