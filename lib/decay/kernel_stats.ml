(* Diagnostics for the optimized sweep kernels, backed by the
   process-wide [Bg_prelude.Obs] metrics registry.

   Parallel chunks do NOT touch shared state from inside worker domains:
   each chunk accumulates a private [tally] in plain locals, the chunks'
   tallies are summed in the deterministic left-to-right [combine] of
   [Parallel.map_reduce_chunks], and the caller publishes the merged
   total into the registry exactly once per sweep.  That keeps the
   per-triple instrumentation cost at zero, makes the published numbers
   independent of worker interleaving, and attributes each sweep's
   counts as one batch (so a trace can carry them as span attributes).

   The numbers are diagnostics (bench hit-rates, cache-effectiveness
   tests), never inputs to any computation. *)

module Obs = Bg_prelude.Obs

let sweeps = Obs.counter "kernel.sweeps"
let triples = Obs.counter "kernel.triples"
let plain_skips = Obs.counter "kernel.plain_skips"
let cheap_skips = Obs.counter "kernel.cheap_skips"
let deep = Obs.counter "kernel.deep"
let exp_evals = Obs.counter "kernel.exp_evals"
let bisections = Obs.counter "kernel.bisections"
let row_prunes = Obs.counter "kernel.row_prunes"
let pair_prunes = Obs.counter "kernel.pair_prunes"
let tile_prunes = Obs.counter "kernel.tile_prunes"

let all =
  [ sweeps; triples; plain_skips; cheap_skips; deep; exp_evals; bisections;
    row_prunes; pair_prunes; tile_prunes ]

let reset () = List.iter Obs.reset_counter all

type snapshot = {
  sweeps : int;
  triples : int;
  plain_skips : int;
  cheap_skips : int;
  deep : int;
  exp_evals : int;
  bisections : int;
  row_prunes : int;
  pair_prunes : int;
  tile_prunes : int;
}

let snapshot () =
  {
    sweeps = Obs.counter_value sweeps;
    triples = Obs.counter_value triples;
    plain_skips = Obs.counter_value plain_skips;
    cheap_skips = Obs.counter_value cheap_skips;
    deep = Obs.counter_value deep;
    exp_evals = Obs.counter_value exp_evals;
    bisections = Obs.counter_value bisections;
    row_prunes = Obs.counter_value row_prunes;
    pair_prunes = Obs.counter_value pair_prunes;
    tile_prunes = Obs.counter_value tile_prunes;
  }

(* Fraction of covered triples never even loaded from memory: everything
   the row/pair/tile bounds eliminated wholesale. *)
let pruned_fraction s =
  if s.triples = 0 then 0.
  else
    float_of_int (s.triples - s.plain_skips - s.cheap_skips - s.deep)
    /. float_of_int s.triples

(* ----------------------------------------------- per-chunk tallies *)

type tally = {
  t_plain : int;
  t_cheap : int;
  t_deep : int;
  t_exp : int;
  t_bis : int;
  t_rows : int;
  t_pairs : int;
  t_tiles : int;
}

let empty_tally =
  { t_plain = 0; t_cheap = 0; t_deep = 0; t_exp = 0; t_bis = 0; t_rows = 0;
    t_pairs = 0; t_tiles = 0 }

let merge a b =
  {
    t_plain = a.t_plain + b.t_plain;
    t_cheap = a.t_cheap + b.t_cheap;
    t_deep = a.t_deep + b.t_deep;
    t_exp = a.t_exp + b.t_exp;
    t_bis = a.t_bis + b.t_bis;
    t_rows = a.t_rows + b.t_rows;
    t_pairs = a.t_pairs + b.t_pairs;
    t_tiles = a.t_tiles + b.t_tiles;
  }

let record_sweep ~triples:tr =
  Obs.incr sweeps;
  Obs.add triples tr

let publish t =
  Obs.add plain_skips t.t_plain;
  Obs.add cheap_skips t.t_cheap;
  Obs.add deep t.t_deep;
  Obs.add exp_evals t.t_exp;
  Obs.add bisections t.t_bis;
  Obs.add row_prunes t.t_rows;
  Obs.add pair_prunes t.t_pairs;
  Obs.add tile_prunes t.t_tiles;
  (* When tracing, pin the sweep's pruning story to its span. *)
  if Obs.tracing () then begin
    Obs.add_span_attr "plain_skips" (Obs.I t.t_plain);
    Obs.add_span_attr "cheap_skips" (Obs.I t.t_cheap);
    Obs.add_span_attr "deep" (Obs.I t.t_deep);
    Obs.add_span_attr "bisections" (Obs.I t.t_bis)
  end
