(* Global diagnostics for the optimized sweep kernels.

   Counters are atomics so parallel chunks can flush without locks; each
   chunk accumulates in plain locals and publishes once on exit, so the
   per-triple cost of instrumentation is zero.  The numbers are
   diagnostics (bench hit-rates, cache-effectiveness tests), never inputs
   to any computation. *)

type snapshot = {
  sweeps : int;        (* full sweeps actually executed (cache misses) *)
  triples : int;       (* ordered triples covered by executed zeta/phi sweeps *)
  plain_skips : int;   (* dismissed by the plain triangle inequality *)
  cheap_skips : int;   (* dismissed by the log-domain incumbent bound *)
  deep : int;          (* reached the exp check / bisection stage *)
  exp_evals : int;     (* ran the 3-exp holds test *)
  bisections : int;    (* ran the full bisection *)
  row_prunes : int;    (* whole rows skipped by the row bound *)
  pair_prunes : int;   (* whole z-loops skipped by the pair bound *)
  tile_prunes : int;   (* z-tiles skipped by the tile bound *)
}

let sweeps = Atomic.make 0
let triples = Atomic.make 0
let plain_skips = Atomic.make 0
let cheap_skips = Atomic.make 0
let deep = Atomic.make 0
let exp_evals = Atomic.make 0
let bisections = Atomic.make 0
let row_prunes = Atomic.make 0
let pair_prunes = Atomic.make 0
let tile_prunes = Atomic.make 0

let all =
  [ sweeps; triples; plain_skips; cheap_skips; deep; exp_evals; bisections;
    row_prunes; pair_prunes; tile_prunes ]

let reset () = List.iter (fun a -> Atomic.set a 0) all

let add a k = if k <> 0 then ignore (Atomic.fetch_and_add a k)

let snapshot () =
  {
    sweeps = Atomic.get sweeps;
    triples = Atomic.get triples;
    plain_skips = Atomic.get plain_skips;
    cheap_skips = Atomic.get cheap_skips;
    deep = Atomic.get deep;
    exp_evals = Atomic.get exp_evals;
    bisections = Atomic.get bisections;
    row_prunes = Atomic.get row_prunes;
    pair_prunes = Atomic.get pair_prunes;
    tile_prunes = Atomic.get tile_prunes;
  }

(* Fraction of covered triples never even loaded from memory: everything
   the row/pair/tile bounds eliminated wholesale. *)
let pruned_fraction s =
  if s.triples = 0 then 0.
  else
    float_of_int (s.triples - s.plain_skips - s.cheap_skips - s.deep)
    /. float_of_int s.triples
