(** Stratified sampling estimators with bootstrap-style confidence bounds
    — the E24 tier.

    The exact kernels ({!Metricity.zeta}, {!Metricity.phi}, {!Fading.gamma})
    are cubic (resp. per-listener exponential) and need the full matrix;
    past a few thousand nodes neither the time nor the n^2 floats fit.
    This module trades exactness for scale: every estimator here

    - consumes an {!oracle} — a pay-per-probe view of the decay function —
      so memory stays bounded by the sample, never by n^2;
    - reports a {e certified lower bound} as its point estimate (each
      replicate evaluates an exact kernel on a sampled restriction, and all
      three quantities are monotone under restriction);
    - attaches a confidence interval [\[lo, hi\]] with [lo = point]
      (lower bounds are exact-sided) and [hi] extrapolated from the spread
      of the stratified replicates, cross-validated against the exact
      kernels on small spaces (see test_estimators and experiment E24).

    Determinism: all randomness flows through the given {!Bg_prelude.Rng.t};
    with an equal seed the result is bit-identical at every job count,
    because the per-replicate exact kernels are themselves job-count
    invariant. *)

type oracle
(** A decay function paying per probe: size [n] plus [decay i j] for
    [i <> j].  Nothing n^2-sized is ever materialized from it. *)

val oracle : ?name:string -> n:int -> (int -> int -> float) -> oracle
(** Wrap an arbitrary decay function.  Probes must return valid decays
    (finite, positive) for all [i <> j] in [\[0, n)]; the diagonal is never
    probed. *)

val of_space : Decay_space.t -> oracle
(** Probe an in-memory (or mmapped, {!Decay_io.load_raw_mmap}) space. *)

val of_points :
  ?name:string -> alpha:float -> Bg_geom.Point.t list -> oracle
(** Geometric path-loss oracle [dist(p, q)^alpha] over point positions —
    n=50k positions cost 2 floats each, while the induced matrix would be
    20 GB.  Points must be pairwise distinct.  [alpha] must be positive. *)

type estimate = {
  point : float;  (** best replicate — a certified lower bound *)
  lo : float;  (** = [point]: the lower side is exact *)
  hi : float;  (** upper confidence bound at [confidence] *)
  confidence : float;  (** nominal coverage of [\[lo, hi\]] *)
  replicates : float array;  (** per-replicate lower bounds, in order *)
}

val pp_estimate : Format.formatter -> estimate -> unit

val zeta :
  ?ctx:Ctx.t ->
  ?replicates:int ->
  ?confidence:float ->
  nodes:int ->
  Bg_prelude.Rng.t ->
  oracle ->
  estimate
(** Metricity via stratified sub-space replicates: each of [replicates]
    (default 8) rounds draws one node per contiguous index stratum
    ([nodes] strata, so [nodes] distinct nodes), materializes the induced
    [nodes]-point space and runs the {e exact} {!Metricity.zeta} on it.
    Memory is O([nodes]^2); time is [replicates] exact sweeps.
    Requires [3 <= nodes <= n].  [confidence] (default 0.9) must be in
    (0, 1).  [ctx] tunes the inner sweeps ([cache] is forced off — random
    restrictions can never hit). *)

val phi :
  ?ctx:Ctx.t ->
  ?replicates:int ->
  ?confidence:float ->
  nodes:int ->
  Bg_prelude.Rng.t ->
  oracle ->
  estimate
(** Relaxed-triangle bound via the same sub-space scheme as {!zeta}
    (phi is likewise monotone under restriction). *)

val zeta_triples :
  ?tol:float ->
  ?replicates:int ->
  ?confidence:float ->
  samples:int ->
  Bg_prelude.Rng.t ->
  oracle ->
  estimate
(** Metricity via stratified {e triple} sampling: [samples] triples split
    over [replicates] batches, [x] stratified over index bands, each
    violating triple resolved by the exact per-triple bisection
    ({!Metricity.zeta_triple} at [tol]).  O(1) memory and O([samples])
    oracle probes — weaker per probe than {!zeta} but usable when even a
    [nodes]^3 sub-sweep is too much.  Requires [n >= 3] and
    [samples >= replicates]. *)

val gamma :
  ?ctx:Ctx.t ->
  ?replicates:int ->
  ?confidence:float ->
  listeners:int ->
  Bg_prelude.Rng.t ->
  oracle ->
  r:float ->
  estimate
(** Fading at threshold [r] via stratified {e listener} sampling: each
    replicate draws one listener per stratum ([listeners] strata) and
    evaluates the exact per-listener fading value over the oracle — same
    candidate rule and weighted-MIS search as {!Fading.gamma}, O(n) probes
    per listener, never a matrix.  [ctx.exact_limit] bounds the exact MIS
    size exactly as in {!Fading.gamma} (default 24; greedy beyond).
    Requires [1 <= listeners <= n]. *)
