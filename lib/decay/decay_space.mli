(** Decay spaces — Definition 2.1 of the paper.

    A decay space is a pair [D = (V, f)] where [V] is a finite set of nodes
    and [f : V x V -> R>=0] assigns a positive decay to every ordered pair
    of distinct nodes ([f(p,p) = 0] by convention; the paper notes the
    diagonal is immaterial).  The channel gain from [p] to [q] is
    [G(p,q) = 1 / f(p,q)]: larger decay, weaker signal.  Decay spaces need
    not be symmetric and need not obey the triangle inequality — they are
    premetrics, and the whole point of the paper is to parameterize how far
    from a metric they are.

    Storage is an unboxed row-major [Bigarray.Array1] of float64, so a
    matrix can also be memory-mapped from disk ({!of_bigarray} together
    with [Decay_io.load_raw_mmap]) for out-of-core spaces.  Kernels read
    it zero-copy through the abstract {!Flat} views. *)

type t
(** An immutable decay space. *)

val of_matrix : ?name:string -> float array array -> t
(** Wrap a square matrix of decays.  Validates: square shape, zero diagonal,
    strictly positive off-diagonal entries, all finite — with the same
    cell-addressed messages as {!Validate.diagnose}.
    @raise Invalid_argument on any violation. *)

val of_matrix_repaired :
  ?name:string ->
  policy:Validate.policy ->
  float array array ->
  (t * Validate.repair, Validate.diagnosis) result
(** Route a possibly-dirty matrix through {!Validate.repair} and build the
    space from the repaired cells.  [Ok] carries the repair report (so no
    fix-up is silent); [Error] carries the full cell-addressed diagnosis.
    With [policy = Reject] and a valid matrix this is exactly
    {!of_matrix} — same cells, bit for bit. *)

val of_bigarray :
  ?name:string ->
  ?validate:bool ->
  int ->
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t ->
  t
(** [of_bigarray n buf] adopts a row-major [n*n] float64 buffer as a decay
    space {e without copying} — the door for memory-mapped out-of-core
    matrices.  The buffer must never be mutated afterwards (the content
    digest, the analysis cache and the lazy views all assume immutability).
    [validate] (default [true]) runs the same cell checks as {!of_matrix};
    pass [~validate:false] only for huge mapped matrices already validated
    at generation time.
    @raise Invalid_argument on a dimension mismatch or (when validating)
    any invalid cell. *)

val of_fn : ?name:string -> int -> (int -> int -> float) -> t
(** [of_fn n f] tabulates [f] over all ordered pairs ([f i i] is ignored and
    stored as [0]). *)

val of_metric : ?name:string -> alpha:float -> Bg_geom.Metric.t -> t
(** Geometric path loss over a metric: [f(p,q) = d(p,q)^alpha].  This embeds
    the classical GEO-SINR model as the special case in which the metricity
    [zeta] equals the path-loss exponent [alpha]. *)

val of_points : ?name:string -> alpha:float -> Bg_geom.Point.t list -> t
(** Euclidean GEO-SINR decay space on planar points. *)

val n : t -> int
(** Number of nodes. *)

val name : t -> string
(** Human-readable label (used in experiment tables). *)

val rename : string -> t -> t
(** Same space under a new label. *)

val decay : t -> int -> int -> float
(** [decay d p q] is [f(p,q)].  Bounds-checked. *)

val unsafe_get : t -> int -> int -> float
(** [unsafe_get d p q] is [f(p,q)] with no bounds check — for inner loops
    whose indices are proven in range by construction. *)

val gain : t -> int -> int -> float
(** [gain d p q = 1 / f(p,q)]; [infinity] when [p = q]. *)

val matrix : t -> float array array
(** A defensive copy of the decay matrix. *)

val is_symmetric : ?eps:float -> t -> bool
(** Whether [f(p,q) = f(q,p)] within relative tolerance. *)

val min_decay : t -> float
(** Smallest off-diagonal decay.  Raises on spaces with fewer than two
    nodes. *)

val max_decay : t -> float
(** Largest off-diagonal decay. *)

val scale : float -> t -> t
(** Multiply all decays by a positive constant.  The metricity is invariant
    under scaling only in the trivial sense that quasi-distances rescale;
    tests cover the exact behaviour. *)

val pow : float -> t -> t
(** [pow e d] raises every decay to the positive power [e]; this multiplies
    the metricity by exactly [e] (for [zeta >= 1] results). *)

val symmetrize : t -> t
(** Replace [f(p,q)] and [f(q,p)] by their maximum, the conservative
    symmetrization (a signal must survive the worse direction). *)

val sub_space : t -> int array -> t
(** Induced decay sub-space on the given node indices (in the given order). *)

val map : (int -> int -> float -> float) -> t -> t
(** Pointwise transformation of off-diagonal decays; the result is
    re-validated. *)

val pp : Format.formatter -> t -> unit
(** Short description: name, size, decay range. *)

(** {1 Zero-copy kernel views}

    The O(n^3) sweeps in {!Metricity} and the MIS loops in {!Fading} read
    the decay matrix through these borrowed views instead of the
    defensively copied {!matrix}.  All views are row-major [n*n] float64
    buffers owned by the space: {b never mutate them}.  The view type is
    abstract (a private [Bigarray.Array1] abbreviation), so callers index
    it through {!Flat.get} / {!Flat.unsafe_get} and can never re-grow a
    dependence on a concrete [float array] layout.

    Lazy companions ({!Flat.logs}, {!Flat.transpose},
    {!Flat.log_transpose}) are built at most once, race-free by
    construction: an atomic slot plus a per-space build mutex means pool
    workers may request any view at any time — whoever arrives first
    builds, everyone else waits or takes the published buffer.  There is
    no force-before-fanout contract anymore; {!Flat.force} remains as a
    warm-up hint only. *)

module Flat : sig
  type buf = private
    (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
  (** A borrowed, read-only, row-major [n*n] view.  The private
      abbreviation keeps the float64 layout statically known (so
      {!unsafe_get} compiles to a direct unboxed load) while preventing
      callers from obtaining a writable [Array1.t] without an explicit —
      and greppable — coercion. *)

  val data : t -> buf
  (** The decay matrix itself: [f(p,q)] at index [p*n + q].  Zero-copy. *)

  val logs : t -> buf
  (** Natural logs of the decays (diagonal: [neg_infinity]), built lazily
      on first use.  Lets the metricity bisection reuse [log f] instead of
      calling [log] per triple. *)

  val transpose : t -> buf
  (** The transposed decay matrix ([f(q,p)] at index [p*n + q]), built
      lazily with a cache-blocked transpose.  Turns the column accesses of
      the triple sweeps into sequential row streams. *)

  val log_transpose : t -> buf
  (** Transpose of {!logs}, built lazily. *)

  val force : t -> unit
  (** Build all lazy companions now.  Purely a warm-up/pre-touch hint —
      concurrent first use is safe without it. *)

  val length : buf -> int
  (** Number of cells ([n*n]). *)

  val get : buf -> int -> float
  (** Bounds-checked read. *)

  external unsafe_get : buf -> int -> float = "%caml_ba_unsafe_ref_1"
  (** Unchecked read — for inner loops whose indices are in range by
      construction.  A compiler primitive, so it compiles to a single
      unboxed float load. *)

  val to_array : buf -> float array
  (** Defensive copy, for callers that genuinely need a [float array]. *)
end

val digest : t -> string
(** A content digest of the decay matrix (MD5 over the raw float bytes),
    computed lazily (race-free, like the views) and cached.  Two spaces
    with bit-identical matrices share a digest regardless of {!name} — the
    key of the analysis cache. *)
