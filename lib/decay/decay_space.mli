(** Decay spaces — Definition 2.1 of the paper.

    A decay space is a pair [D = (V, f)] where [V] is a finite set of nodes
    and [f : V x V -> R>=0] assigns a positive decay to every ordered pair
    of distinct nodes ([f(p,p) = 0] by convention; the paper notes the
    diagonal is immaterial).  The channel gain from [p] to [q] is
    [G(p,q) = 1 / f(p,q)]: larger decay, weaker signal.  Decay spaces need
    not be symmetric and need not obey the triangle inequality — they are
    premetrics, and the whole point of the paper is to parameterize how far
    from a metric they are. *)

type t
(** An immutable decay space. *)

val of_matrix : ?name:string -> float array array -> t
(** Wrap a square matrix of decays.  Validates: square shape, zero diagonal,
    strictly positive off-diagonal entries, all finite — with the same
    cell-addressed messages as {!Validate.diagnose}.
    @raise Invalid_argument on any violation. *)

val of_matrix_repaired :
  ?name:string ->
  policy:Validate.policy ->
  float array array ->
  (t * Validate.repair, Validate.diagnosis) result
(** Route a possibly-dirty matrix through {!Validate.repair} and build the
    space from the repaired cells.  [Ok] carries the repair report (so no
    fix-up is silent); [Error] carries the full cell-addressed diagnosis.
    With [policy = Reject] and a valid matrix this is exactly
    {!of_matrix} — same cells, bit for bit. *)

val of_fn : ?name:string -> int -> (int -> int -> float) -> t
(** [of_fn n f] tabulates [f] over all ordered pairs ([f i i] is ignored and
    stored as [0]). *)

val of_metric : ?name:string -> alpha:float -> Bg_geom.Metric.t -> t
(** Geometric path loss over a metric: [f(p,q) = d(p,q)^alpha].  This embeds
    the classical GEO-SINR model as the special case in which the metricity
    [zeta] equals the path-loss exponent [alpha]. *)

val of_points : ?name:string -> alpha:float -> Bg_geom.Point.t list -> t
(** Euclidean GEO-SINR decay space on planar points. *)

val n : t -> int
(** Number of nodes. *)

val name : t -> string
(** Human-readable label (used in experiment tables). *)

val rename : string -> t -> t
(** Same space under a new label. *)

val decay : t -> int -> int -> float
(** [decay d p q] is [f(p,q)].  Bounds-checked. *)

val unsafe_get : t -> int -> int -> float
(** [unsafe_get d p q] is [f(p,q)] with no bounds check — for inner loops
    whose indices are proven in range by construction. *)

val gain : t -> int -> int -> float
(** [gain d p q = 1 / f(p,q)]; [infinity] when [p = q]. *)

val matrix : t -> float array array
(** A defensive copy of the decay matrix. *)

val is_symmetric : ?eps:float -> t -> bool
(** Whether [f(p,q) = f(q,p)] within relative tolerance. *)

val min_decay : t -> float
(** Smallest off-diagonal decay.  Raises on spaces with fewer than two
    nodes. *)

val max_decay : t -> float
(** Largest off-diagonal decay. *)

val scale : float -> t -> t
(** Multiply all decays by a positive constant.  The metricity is invariant
    under scaling only in the trivial sense that quasi-distances rescale;
    tests cover the exact behaviour. *)

val pow : float -> t -> t
(** [pow e d] raises every decay to the positive power [e]; this multiplies
    the metricity by exactly [e] (for [zeta >= 1] results). *)

val symmetrize : t -> t
(** Replace [f(p,q)] and [f(q,p)] by their maximum, the conservative
    symmetrization (a signal must survive the worse direction). *)

val sub_space : t -> int array -> t
(** Induced decay sub-space on the given node indices (in the given order). *)

val map : (int -> int -> float -> float) -> t -> t
(** Pointwise transformation of off-diagonal decays; the result is
    re-validated. *)

val pp : Format.formatter -> t -> unit
(** Short description: name, size, decay range. *)

(** {1 Zero-copy kernel views}

    The O(n^3) sweeps in {!Metricity} and the MIS loops in {!Fading} read
    the decay matrix through these borrowed views instead of the
    defensively copied {!matrix}.  All views are row-major [n*n] float
    arrays owned by the space: {b never mutate them}.  The lazy companions
    are built at most once, on first request; request them on the calling
    thread before fanning work out over the domain pool. *)

val flat_view : t -> float array
(** The decay matrix itself, row-major: [f(p,q)] at index [p*n + q].
    Borrowed, read-only, zero-copy. *)

val log_flat_view : t -> float array
(** Natural logs of the decays, row-major, built lazily on first use
    (diagonal entries are [neg_infinity]).  Lets the metricity bisection
    reuse [log f] instead of calling [log] per triple. *)

val transpose_view : t -> float array
(** The transposed decay matrix ([f(q,p)] at index [p*n + q]), built
    lazily with a cache-blocked transpose.  Turns the column accesses of
    the triple sweeps into sequential row streams. *)

val log_transpose_view : t -> float array
(** Transpose of {!log_flat_view}, built lazily. *)

val digest : t -> string
(** A content digest of the decay matrix (MD5 over the raw float bytes),
    computed lazily and cached.  Two spaces with bit-identical matrices
    share a digest regardless of {!name} — the key of the analysis
    cache. *)
