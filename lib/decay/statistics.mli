(** Descriptive statistics of decay spaces — the measurement-campaign view
    (§2.2): summary quantities a practitioner computes from a freshly
    measured decay matrix before running any algorithm on it. *)

type summary = {
  n : int;
  min_db : float;  (** smallest off-diagonal decay, in dB *)
  max_db : float;
  median_db : float;
  dynamic_range_db : float;  (** max - min in dB *)
  asymmetry_db : float;
      (** largest |f(i,j)/f(j,i)| in dB over unordered pairs — 0 for
          symmetric spaces *)
}

val summarize : ?ctx:Ctx.t -> Decay_space.t -> summary
(** Requires at least 2 nodes.  [ctx.jobs] chunks the pairwise sweep across
    the domain pool (default {!Bg_prelude.Parallel.default_jobs}); the
    summary is identical at every job count. *)

val summarize_with : ?jobs:int -> Decay_space.t -> summary
[@@ocaml.deprecated "Use Statistics.summarize ?ctx instead."]
(** Deprecated compat wrapper over {!summarize}. *)

val effective_alpha :
  positions:Bg_geom.Point.t array -> Decay_space.t -> Bg_prelude.Stats.fit
(** Log-log regression of decay against inter-node distance: the slope is
    the "effective path-loss exponent" a geometric model would fit to this
    space, and [r2] says how much of the decay variance geometry explains
    (the paper's point is that indoors it explains little). *)

val decays_db : Decay_space.t -> float array
(** All ordered off-diagonal decays in dB (for histograms). *)
