(* A decay space stored as a flat row-major [float array] ([f(p,q)] at
   index [p*n + q]), plus lazily built companion arrays that the O(n^3)
   analysis kernels stream over:

   - [logs]:      natural log of every decay (diagonal: [neg_infinity]),
                  so the metricity bisection never calls [log] per triple;
   - [trans]:     the transpose, so the inner z-loop of a triple sweep
                  reads [f(z,y)] as a sequential row instead of striding
                  [n] floats per step;
   - [log_trans]: the transpose of [logs];
   - [key]:       a content digest (MD5 over the raw float bytes) keying
                  the analysis cache: equal matrices — regardless of name —
                  share cached zeta/phi/gamma results.

   The companions are built at most once, on first request, by whichever
   thread asks first; the kernels request them before fanning out over the
   domain pool, so workers only ever read fully built arrays.  A benign
   race between two top-level callers builds the same content twice and
   keeps either copy.  The flat array itself is never mutated after
   validation, which is what makes the digest stable and the views safe
   to hand out without copying. *)

type t = {
  n : int;
  flat : float array;
  name : string;
  mutable logs : float array;      (* [||] until built *)
  mutable trans : float array;     (* [||] until built *)
  mutable log_trans : float array; (* [||] until built *)
  mutable key : string;            (* "" until built *)
}

(* Cell-level validation shares its diagnosis vocabulary (and exact
   messages) with [Validate], so an [of_matrix] failure and a
   [Validate.diagnose] report always agree down to the cell address. *)
let validate_flat name n flat =
  let fail issue = invalid_arg (name ^ ": " ^ Validate.issue_to_string issue) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let v = flat.((i * n) + j) in
      if i = j then begin
        if v <> 0. then fail (Validate.Nonzero_diagonal { i; value = v })
      end
      else if not (Float.is_finite v) then
        fail (Validate.Not_finite { i; j; value = v })
      else if v <= 0. then fail (Validate.Non_positive { i; j; value = v })
    done
  done

let make name n flat =
  validate_flat name n flat;
  { n; flat; name; logs = [||]; trans = [||]; log_trans = [||]; key = "" }

let of_matrix ?(name = "decay") m =
  let n = Array.length m in
  Array.iteri
    (fun row r ->
      let got = Array.length r in
      if got <> n then
        invalid_arg
          (name ^ ": "
          ^ Validate.issue_to_string (Validate.Ragged { row; expected = n; got })
          ))
    m;
  let flat = Array.make (n * n) 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      flat.((i * n) + j) <- m.(i).(j)
    done
  done;
  make name n flat

let of_matrix_repaired ?(name = "decay") ~policy m =
  match Validate.repair ~policy m with
  | Error _ as e -> e
  | Ok (m', report) -> Ok (of_matrix ~name m', report)

let of_fn ?(name = "decay") n fn =
  let flat = Array.make (max 0 (n * n)) 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      flat.((i * n) + j) <- (if i = j then 0. else fn i j)
    done
  done;
  make name n flat

let of_metric ?(name = "geo") ~alpha (m : Bg_geom.Metric.t) =
  if alpha <= 0. then invalid_arg "Decay_space.of_metric: alpha must be positive";
  of_fn ~name m.Bg_geom.Metric.n (fun i j -> m.Bg_geom.Metric.d.(i).(j) ** alpha)

let of_points ?(name = "plane") ~alpha points =
  of_metric ~name ~alpha (Bg_geom.Metric.of_points points)

let n d = d.n
let name d = d.name
let rename name d = { d with name }

let decay d p q =
  if p < 0 || p >= d.n || q < 0 || q >= d.n then
    invalid_arg "Decay_space.decay: node out of range";
  d.flat.((p * d.n) + q)

let unsafe_get d p q = Array.unsafe_get d.flat ((p * d.n) + q)

let gain d p q =
  let f = decay d p q in
  if f = 0. then infinity else 1. /. f

let matrix d =
  Array.init d.n (fun i -> Array.sub d.flat (i * d.n) d.n)

(* ------------------------------------------------------- internal views *)

let flat_view d = d.flat

let log_flat_view d =
  if Array.length d.logs = 0 && d.n > 0 then begin
    let m = Array.length d.flat in
    let l = Array.make m neg_infinity in
    for i = 0 to m - 1 do
      let v = Array.unsafe_get d.flat i in
      if v > 0. then Array.unsafe_set l i (log v)
    done;
    d.logs <- l
  end;
  d.logs

(* Tiled transpose: process 32x32 blocks so both the source rows and the
   destination rows of a block stay cache-resident while it is turned. *)
let transpose_of n src =
  let dst = Array.make (Array.length src) 0. in
  let b = 32 in
  let ib = ref 0 in
  while !ib < n do
    let i_hi = min n (!ib + b) in
    let jb = ref 0 in
    while !jb < n do
      let j_hi = min n (!jb + b) in
      for i = !ib to i_hi - 1 do
        for j = !jb to j_hi - 1 do
          Array.unsafe_set dst ((j * n) + i)
            (Array.unsafe_get src ((i * n) + j))
        done
      done;
      jb := !jb + b
    done;
    ib := !ib + b
  done;
  dst

let transpose_view d =
  if Array.length d.trans = 0 && d.n > 0 then
    d.trans <- transpose_of d.n d.flat;
  d.trans

let log_transpose_view d =
  if Array.length d.log_trans = 0 && d.n > 0 then
    d.log_trans <- transpose_of d.n (log_flat_view d);
  d.log_trans

let digest d =
  if d.key = "" then begin
    let m = Array.length d.flat in
    let b = Bytes.create (8 * m) in
    for i = 0 to m - 1 do
      Bytes.set_int64_le b (8 * i) (Int64.bits_of_float d.flat.(i))
    done;
    d.key <- Digest.bytes b
  end;
  d.key

(* ----------------------------------------------------------- transforms *)

let is_symmetric ?(eps = 1e-9) d =
  let ok = ref true in
  for i = 0 to d.n - 1 do
    for j = i + 1 to d.n - 1 do
      if
        not
          (Bg_prelude.Numerics.feq ~eps
             d.flat.((i * d.n) + j)
             d.flat.((j * d.n) + i))
      then ok := false
    done
  done;
  !ok

let off_diagonal_fold op init d =
  if d.n < 2 then invalid_arg "Decay_space: need at least two nodes";
  let acc = ref init in
  for i = 0 to d.n - 1 do
    for j = 0 to d.n - 1 do
      if i <> j then acc := op !acc d.flat.((i * d.n) + j)
    done
  done;
  !acc

let min_decay d = off_diagonal_fold Float.min infinity d
let max_decay d = off_diagonal_fold Float.max 0. d

let scale k d =
  if k <= 0. then invalid_arg "Decay_space.scale: factor must be positive";
  {
    n = d.n;
    flat = Array.map (fun x -> k *. x) d.flat;
    name = d.name;
    logs = [||]; trans = [||]; log_trans = [||]; key = "";
  }

let pow e d =
  if e <= 0. then invalid_arg "Decay_space.pow: exponent must be positive";
  {
    n = d.n;
    flat = Array.map (fun x -> if x = 0. then 0. else x ** e) d.flat;
    name = d.name;
    logs = [||]; trans = [||]; log_trans = [||]; key = "";
  }

let symmetrize d =
  of_fn ~name:(d.name ^ "/sym") d.n (fun i j ->
      Float.max d.flat.((i * d.n) + j) d.flat.((j * d.n) + i))

let sub_space d idx =
  Array.iter
    (fun i ->
      if i < 0 || i >= d.n then invalid_arg "Decay_space.sub_space: index range")
    idx;
  of_fn ~name:(d.name ^ "/sub") (Array.length idx) (fun i j ->
      d.flat.((idx.(i) * d.n) + idx.(j)))

let map fn d =
  of_fn ~name:d.name d.n (fun i j -> fn i j d.flat.((i * d.n) + j))

let pp fmt d =
  if d.n < 2 then Format.fprintf fmt "%s: %d node(s)" d.name d.n
  else
    Format.fprintf fmt "%s: %d nodes, decays in [%g, %g]" d.name d.n
      (min_decay d) (max_decay d)
