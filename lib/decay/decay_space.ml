(* A decay space stored as an unboxed row-major [Bigarray.Array1] of
   float64 ([f(p,q)] at index [p*n + q]), plus lazily built companion
   buffers that the O(n^3) analysis kernels stream over:

   - [logs]:      natural log of every decay (diagonal: [neg_infinity]),
                  so the metricity bisection never calls [log] per triple;
   - [trans]:     the transpose, so the inner z-loop of a triple sweep
                  reads [f(z,y)] as a sequential row instead of striding
                  [n] floats per step;
   - [log_trans]: the transpose of [logs];
   - [key]:       a content digest (MD5 over the raw float bytes) keying
                  the analysis cache: equal matrices — regardless of name —
                  share cached zeta/phi/gamma results.

   Bigarray storage buys three things over the previous [float array]:
   the data is unboxed and GC-opaque (no marking cost on multi-GB
   matrices), it can be memory-mapped straight off disk for out-of-core
   spaces ({!of_bigarray} / [Decay_io.load_raw_mmap]), and the kernels
   read it through the abstract {!Flat} views so no caller can ever
   depend on [float array] layout again.

   Each companion is built at most once.  Construction is race-free by
   construction: the slot is an [option Atomic.t] and builds are
   serialized by a per-space mutex with the classic double-checked
   pattern — readers take the fast path on [Atomic.get] (an acquire
   load, so a published buffer is fully visible), and at most one
   builder runs even when pool workers request a view concurrently.
   The flat buffer itself is never mutated after validation, which is
   what makes the digest stable and the views safe to hand out without
   copying. *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let alloc len : buf = Bigarray.Array1.create Float64 C_layout len

type t = {
  n : int;
  flat : buf;
  name : string;
  logs : buf option Atomic.t;
  trans : buf option Atomic.t;
  log_trans : buf option Atomic.t;
  key : string option Atomic.t;
  build_lock : Mutex.t;
}

external ba_unsafe_get : buf -> int -> float = "%caml_ba_unsafe_ref_1"
external ba_unsafe_set : buf -> int -> float -> unit = "%caml_ba_unsafe_set_1"

(* Cell-level validation shares its diagnosis vocabulary (and exact
   messages) with [Validate], so an [of_matrix] failure and a
   [Validate.diagnose] report always agree down to the cell address. *)
let validate_buf name n (flat : buf) =
  let fail issue = invalid_arg (name ^ ": " ^ Validate.issue_to_string issue) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let v = flat.{(i * n) + j} in
      if i = j then begin
        if v <> 0. then fail (Validate.Nonzero_diagonal { i; value = v })
      end
      else if not (Float.is_finite v) then
        fail (Validate.Not_finite { i; j; value = v })
      else if v <= 0. then fail (Validate.Non_positive { i; j; value = v })
    done
  done

let wrap name n flat =
  {
    n;
    flat;
    name;
    logs = Atomic.make None;
    trans = Atomic.make None;
    log_trans = Atomic.make None;
    key = Atomic.make None;
    build_lock = Mutex.create ();
  }

let make name n flat =
  validate_buf name n flat;
  wrap name n flat

let of_bigarray ?(name = "decay") ?(validate = true) n flat =
  if n < 0 then invalid_arg "Decay_space.of_bigarray: negative size";
  if Bigarray.Array1.dim flat <> n * n then
    invalid_arg
      (Printf.sprintf
         "Decay_space.of_bigarray: buffer has %d cells, expected %d (n = %d)"
         (Bigarray.Array1.dim flat) (n * n) n);
  if validate then validate_buf name n flat;
  wrap name n flat

let of_matrix ?(name = "decay") m =
  let n = Array.length m in
  Array.iteri
    (fun row r ->
      let got = Array.length r in
      if got <> n then
        invalid_arg
          (name ^ ": "
          ^ Validate.issue_to_string (Validate.Ragged { row; expected = n; got })
          ))
    m;
  let flat = alloc (n * n) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      flat.{(i * n) + j} <- m.(i).(j)
    done
  done;
  make name n flat

let of_matrix_repaired ?(name = "decay") ~policy m =
  match Validate.repair ~policy m with
  | Error _ as e -> e
  | Ok (m', report) -> Ok (of_matrix ~name m', report)

let of_fn ?(name = "decay") n fn =
  let flat = alloc (max 0 (n * n)) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      flat.{(i * n) + j} <- (if i = j then 0. else fn i j)
    done
  done;
  make name n flat

let of_metric ?(name = "geo") ~alpha (m : Bg_geom.Metric.t) =
  if alpha <= 0. then invalid_arg "Decay_space.of_metric: alpha must be positive";
  of_fn ~name m.Bg_geom.Metric.n (fun i j -> m.Bg_geom.Metric.d.(i).(j) ** alpha)

let of_points ?(name = "plane") ~alpha points =
  of_metric ~name ~alpha (Bg_geom.Metric.of_points points)

let n d = d.n
let name d = d.name
let rename name d = { d with name }

let decay d p q =
  if p < 0 || p >= d.n || q < 0 || q >= d.n then
    invalid_arg "Decay_space.decay: node out of range";
  d.flat.{(p * d.n) + q}

let unsafe_get d p q = ba_unsafe_get d.flat ((p * d.n) + q)

let gain d p q =
  let f = decay d p q in
  if f = 0. then infinity else 1. /. f

let matrix d =
  Array.init d.n (fun i ->
      Array.init d.n (fun j -> ba_unsafe_get d.flat ((i * d.n) + j)))

(* ------------------------------------------------------- internal views *)

(* Double-checked build-once.  [Atomic.get]/[Atomic.set] are
   acquire/release, so a buffer observed through the fast path is fully
   constructed; the mutex makes "at most one build" a guarantee instead
   of a benign race.  Builders must not re-enter [once] on the same
   space (the lock is not reentrant) — dependent views force their
   prerequisites before calling [once]. *)
let once d cell build =
  match Atomic.get cell with
  | Some b -> b
  | None ->
      Mutex.protect d.build_lock (fun () ->
          match Atomic.get cell with
          | Some b -> b
          | None ->
              let b = build () in
              Atomic.set cell (Some b);
              b)

let logs_of (flat : buf) =
  let m = Bigarray.Array1.dim flat in
  let l = alloc m in
  for i = 0 to m - 1 do
    let v = ba_unsafe_get flat i in
    ba_unsafe_set l i (if v > 0. then log v else neg_infinity)
  done;
  l

(* Tiled transpose: process 32x32 blocks so both the source rows and the
   destination rows of a block stay cache-resident while it is turned. *)
let transpose_of n (src : buf) =
  let dst = alloc (Bigarray.Array1.dim src) in
  let b = 32 in
  let ib = ref 0 in
  while !ib < n do
    let i_hi = min n (!ib + b) in
    let jb = ref 0 in
    while !jb < n do
      let j_hi = min n (!jb + b) in
      for i = !ib to i_hi - 1 do
        for j = !jb to j_hi - 1 do
          ba_unsafe_set dst ((j * n) + i) (ba_unsafe_get src ((i * n) + j))
        done
      done;
      jb := !jb + b
    done;
    ib := !ib + b
  done;
  dst

let flat_view d = d.flat
let log_flat_view d = once d d.logs (fun () -> logs_of d.flat)
let transpose_view d = once d d.trans (fun () -> transpose_of d.n d.flat)

let log_transpose_view d =
  match Atomic.get d.log_trans with
  | Some b -> b
  | None ->
      (* Force the prerequisite outside the lock: [once] is not
         reentrant. *)
      let lg = log_flat_view d in
      once d d.log_trans (fun () -> transpose_of d.n lg)

module Flat = struct
  type nonrec buf = buf

  let data = flat_view
  let logs = log_flat_view
  let transpose = transpose_view
  let log_transpose = log_transpose_view

  let force d =
    ignore (logs d);
    ignore (transpose d);
    ignore (log_transpose d)

  let length (b : buf) = Bigarray.Array1.dim b
  let get (b : buf) i = b.{i}

  external unsafe_get : buf -> int -> float = "%caml_ba_unsafe_ref_1"

  let to_array (b : buf) = Array.init (Bigarray.Array1.dim b) (fun i -> b.{i})
end

let digest d =
  match Atomic.get d.key with
  | Some k -> k
  | None ->
      Mutex.protect d.build_lock (fun () ->
          match Atomic.get d.key with
          | Some k -> k
          | None ->
              let m = Bigarray.Array1.dim d.flat in
              let b = Bytes.create (8 * m) in
              for i = 0 to m - 1 do
                Bytes.set_int64_le b (8 * i)
                  (Int64.bits_of_float (ba_unsafe_get d.flat i))
              done;
              let k = Digest.bytes b in
              Atomic.set d.key (Some k);
              k)

(* ----------------------------------------------------------- transforms *)

let is_symmetric ?(eps = 1e-9) d =
  let ok = ref true in
  for i = 0 to d.n - 1 do
    for j = i + 1 to d.n - 1 do
      if
        not
          (Bg_prelude.Numerics.feq ~eps
             d.flat.{(i * d.n) + j}
             d.flat.{(j * d.n) + i})
      then ok := false
    done
  done;
  !ok

let off_diagonal_fold op init d =
  if d.n < 2 then invalid_arg "Decay_space: need at least two nodes";
  let acc = ref init in
  for i = 0 to d.n - 1 do
    for j = 0 to d.n - 1 do
      if i <> j then acc := op !acc d.flat.{(i * d.n) + j}
    done
  done;
  !acc

let min_decay d = off_diagonal_fold Float.min infinity d
let max_decay d = off_diagonal_fold Float.max 0. d

let map_flat fn d =
  let m = Bigarray.Array1.dim d.flat in
  let flat = alloc m in
  for i = 0 to m - 1 do
    ba_unsafe_set flat i (fn (ba_unsafe_get d.flat i))
  done;
  wrap d.name d.n flat

let scale k d =
  if k <= 0. then invalid_arg "Decay_space.scale: factor must be positive";
  map_flat (fun x -> k *. x) d

let pow e d =
  if e <= 0. then invalid_arg "Decay_space.pow: exponent must be positive";
  map_flat (fun x -> if x = 0. then 0. else x ** e) d

let symmetrize d =
  of_fn ~name:(d.name ^ "/sym") d.n (fun i j ->
      Float.max d.flat.{(i * d.n) + j} d.flat.{(j * d.n) + i})

let sub_space d idx =
  Array.iter
    (fun i ->
      if i < 0 || i >= d.n then invalid_arg "Decay_space.sub_space: index range")
    idx;
  of_fn ~name:(d.name ^ "/sub") (Array.length idx) (fun i j ->
      d.flat.{(idx.(i) * d.n) + idx.(j)})

let map fn d =
  of_fn ~name:d.name d.n (fun i j -> fn i j d.flat.{(i * d.n) + j})

let pp fmt d =
  if d.n < 2 then Format.fprintf fmt "%s: %d node(s)" d.name d.n
  else
    Format.fprintf fmt "%s: %d nodes, decays in [%g, %g]" d.name d.n
      (min_decay d) (max_decay d)
